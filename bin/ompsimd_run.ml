(* ompsimd_run — command-line driver for the paper's experiments.

   Every results figure of the paper (and each ablation described in
   DESIGN.md) is one subcommand; `ompsimd_run all` regenerates everything
   EXPERIMENTS.md records. *)

open Cmdliner

let device_term =
  let doc =
    "Simulated device: a zoo name (a100, a100q, amd, small, w8-hw ... \
     w32-l2tiny — see `info --zoo`), key=value,... overrides, or both \
     (e.g. w64-sw,num_sms=4).  Defaults to $(b,OMPSIMD_DEVICE) from the \
     environment, then a100q (quarter-size: relative results match the \
     full device at a quarter the simulation cost)."
  in
  Arg.(value & opt string "" & info [ "device"; "d" ] ~docv:"DEVICE" ~doc)

let scale_term =
  let doc = "Problem-size multiplier (use < 1.0 for quick runs)." in
  Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~docv:"SCALE" ~doc)

(* The single place every subcommand reads its environment: arming the
   sanitizer (workload subcommands launch on the device directly,
   without going through Offload.run, so OMPSIMD_SANITIZE must be
   honored here) and sizing the OMPSIMD_DOMAINS block-simulation pool
   (bit-identical reports either way, see DESIGN.md).  New knob
   families plug in here — `serve` reads its OMPSIMD_SERVE_* scheduler
   knobs through {!Serve.Scheduler.config_of_env} from the same spot. *)
let refresh_env_and_pool () =
  Gpusim.Ompsan.refresh_from_env ();
  Gpusim.Fault.refresh_from_env ();
  Gpusim.Pool.get_default ()

let with_device name f =
  let resolved =
    if String.trim name = "" then Gpusim.Zoo.of_env ()
    else Gpusim.Zoo.resolve name
  in
  match resolved with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok cfg -> f cfg (refresh_env_and_pool ())

let csv_term =
  let doc = "Also write the series as CSV to this file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let write_csv path contents =
  match path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents);
      Printf.printf "csv written to %s\n" path

let fig9_cmd =
  let run device scale csv =
    with_device device (fun cfg pool ->
        let r = Experiments.Fig9.run ~scale ~pool ~cfg () in
        Experiments.Fig9.print r;
        write_csv csv (Experiments.Fig9.to_csv r))
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"E1: simd speedup over two-level baseline (Fig 9)")
    Term.(const run $ device_term $ scale_term $ csv_term)

let fig10_cmd =
  let run device scale csv =
    with_device device (fun cfg pool ->
        let r = Experiments.Fig10.run ~scale ~pool ~cfg () in
        Experiments.Fig10.print r;
        write_csv csv (Experiments.Fig10.to_csv r))
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"E2: execution-mode overhead (Fig 10)")
    Term.(const run $ device_term $ scale_term $ csv_term)

let sharing_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Sharing_ablation.print
          (Experiments.Sharing_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "sharing" ~doc:"E3: sharing-space sizing ablation (S5.3.1)")
    Term.(const run $ device_term $ scale_term)

let dispatch_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Dispatch_ablation.print
          (Experiments.Dispatch_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "dispatch" ~doc:"E4: if-cascade vs indirect dispatch (S5.5)")
    Term.(const run $ device_term $ scale_term)

let amd_cmd =
  let run scale =
    let pool = refresh_env_and_pool () in
    Experiments.Amd_mode.print (Experiments.Amd_mode.run ~scale ~pool ())
  in
  Cmd.v
    (Cmd.info "amd" ~doc:"E5: AMD wavefront-barrier gap (S5.4.1)")
    Term.(const run $ scale_term)

let reduction_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Reduction_ablation.print
          (Experiments.Reduction_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "reduction" ~doc:"E6: simd reduction vs atomic update (S7)")
    Term.(const run $ device_term $ scale_term)

let teams_mode_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Teams_mode_ablation.print
          (Experiments.Teams_mode_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "teamsmode" ~doc:"E7: teams generic vs SPMD occupancy cost")
    Term.(const run $ device_term $ scale_term)

let spmdize_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Spmdization_ablation.print
          (Experiments.Spmdization_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "spmdize"
       ~doc:"E8: SPMDization of parallel regions via guards (S7)")
    Term.(const run $ device_term $ scale_term)

let schedule_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Schedule_ablation.print
          (Experiments.Schedule_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"E9: loop schedules under row imbalance")
    Term.(const run $ device_term $ scale_term)

let kernel_cmd =
  let kernel_arg =
    let doc =
      "Workload: spmv, su3, ideal, laplace3d, transpose or interpol."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)
  in
  let mode_term =
    let doc = "Execution configuration: nosimd, spmd or generic." in
    Arg.(value & opt string "generic" & info [ "mode"; "m" ] ~docv:"MODE" ~doc)
  in
  let simdlen_term =
    let doc = "SIMD group size (divides 32)." in
    Arg.(value & opt int 8 & info [ "simdlen"; "g" ] ~docv:"N" ~doc)
  in
  let trace_term =
    let doc = "Write a Chrome trace-event JSON of block 0 to this file." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run device scale kernel mode simdlen trace_path =
    with_device device (fun cfg pool ->
        let module H = Workloads.Harness in
        let mode3 =
          match mode with
          | "nosimd" -> H.spmd_simd ~group_size:1
          | "spmd" -> H.spmd_simd ~group_size:simdlen
          | "generic" -> H.generic_simd ~group_size:simdlen
          | other ->
              prerr_endline ("unknown mode " ^ other);
              exit 2
        in
        let sc n = max 1 (int_of_float (float_of_int n *. scale)) in
        let teams = 2 * cfg.Gpusim.Config.num_sms in
        let trace = Option.map (fun _ -> Gpusim.Trace.create ()) trace_path in
        let run_with ?trace () =
          match kernel with
          | "spmv" ->
              let t =
                Workloads.Spmv.generate
                  { Workloads.Spmv.default_shape with
                    Workloads.Spmv.rows = sc 8192; cols = sc 8192 }
              in
              let r = Workloads.Spmv.run_simd ~cfg ~pool ?trace ~num_teams:teams ~threads:128 ~mode3 t in
              H.check_or_fail (Workloads.Spmv.verify t r.H.output);
              r
          | "su3" ->
              let t = Workloads.Su3.generate { Workloads.Su3.sites = sc 8192; seed = 2 } in
              let r = Workloads.Su3.run ~cfg ~pool ?trace ~num_teams:teams ~threads:128 ~mode3 t in
              H.check_or_fail (Workloads.Su3.verify t r.H.output);
              r
          | "ideal" ->
              let t =
                Workloads.Ideal.generate
                  { Workloads.Ideal.default_shape with Workloads.Ideal.rows = sc 4096 }
              in
              let r = Workloads.Ideal.run ~cfg ~pool ?trace ~num_teams:teams ~threads:128 ~mode3 t in
              H.check_or_fail (Workloads.Ideal.verify t r.H.output);
              r
          | "laplace3d" ->
              let t = Workloads.Laplace3d.generate { Workloads.Laplace3d.n = sc 50; seed = 4 } in
              let r = Workloads.Laplace3d.run ~cfg ~pool ?trace ~num_teams:teams ~threads:128 ~mode3 t in
              H.check_or_fail (Workloads.Laplace3d.verify t r.H.output);
              r
          | "transpose" ->
              let t =
                Workloads.Muram.generate
                  { Workloads.Muram.ni = sc 48; nj = sc 48; nk = 48; seed = 5 }
              in
              let r = Workloads.Muram.run_transpose ~cfg ~pool ?trace ~num_teams:teams ~threads:128 ~mode3 t in
              H.check_or_fail (Workloads.Muram.verify_transpose t r.H.output);
              r
          | "interpol" ->
              let t =
                Workloads.Muram.generate
                  { Workloads.Muram.ni = sc 48; nj = sc 48; nk = 48; seed = 5 }
              in
              let r = Workloads.Muram.run_interpol ~cfg ~pool ?trace ~num_teams:teams ~threads:128 ~mode3 t in
              H.check_or_fail (Workloads.Muram.verify_interpol t r.H.output);
              r
          | other ->
              prerr_endline ("unknown kernel " ^ other);
              exit 2
        in
        let r = run_with ?trace () in
        Format.printf "%a@." Gpusim.Device.pp_report r.Workloads.Harness.report;
        print_endline "result VERIFIED against the sequential reference";
        match (trace, trace_path) with
        | Some t, Some path ->
            Gpusim.Trace_export.write_file t ~path;
            Printf.printf "trace written to %s (load in chrome://tracing)\n" path
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "kernel" ~doc:"Run one workload and print its device report")
    Term.(
      const run $ device_term $ scale_term $ kernel_arg $ mode_term
      $ simdlen_term $ trace_term)

let compile_cmd =
  let file_arg =
    let doc = "Kernel source file (see examples/rowsum.omp)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let guardize_term =
    let doc = "Apply the SPMDization-by-guarding transform (S7)." in
    Arg.(value & flag & info [ "guardize" ] ~doc)
  in
  let no_fold_term =
    let doc = "Skip constant folding." in
    Arg.(value & flag & info [ "no-fold" ] ~doc)
  in
  let racecheck_term =
    let doc = "Run the static ompsan may-race pass; findings print as remarks." in
    Arg.(value & flag & info [ "racecheck" ] ~doc)
  in
  let run file guardize no_fold racecheck =
    match Ompir.Parse.kernel_of_file file with
    | exception Ompir.Parse.Syntax_error { line; message } ->
        Printf.eprintf "%s:%d: syntax error: %s\n" file line message;
        exit 1
    | kernel -> (
        match
          Openmp.Offload.compile ~guardize ~fold:(not no_fold) ~racecheck kernel
        with
        | Error es ->
            List.iter
              (fun e -> Format.eprintf "%s: error: %a@." file Ompir.Check.pp_error e)
              es;
            exit 1
        | Ok compiled ->
            print_endline "=== lowered kernel ===";
            print_endline
              (Ompir.Printer.kernel_to_string
                 compiled.Openmp.Offload.program.Ompir.Outline.kernel);
            print_newline ();
            print_endline "=== remarks ===";
            List.iter print_endline (Openmp.Offload.remarks compiled))
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Parse, check and lower a kernel source file; print remarks")
    Term.(const run $ file_arg $ guardize_term $ no_fold_term $ racecheck_term)

let info_cmd =
  let zoo_term =
    let doc = "List the device zoo instead of one configuration." in
    Arg.(value & flag & info [ "zoo" ] ~doc)
  in
  let run device zoo =
    if zoo then Format.printf "%a@." Gpusim.Zoo.pp_table ()
    else
      with_device device (fun cfg _pool ->
          Format.printf "%a@.spec: %s@." Gpusim.Config.pp cfg
            (Gpusim.Config.to_spec cfg))
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Print the simulated device configuration (or the zoo registry)")
    Term.(const run $ device_term $ zoo_term)

let sweep_cmd =
  let devices_term =
    let doc =
      "Comma-separated zoo entries to sweep (default: the full zoo, \
       w8-hw ... w32-l2tiny)."
    in
    Arg.(value & opt (some string) None & info [ "devices" ] ~docv:"NAMES" ~doc)
  in
  let run scale csv devices =
    let entries =
      match devices with
      | None -> Gpusim.Zoo.sweep
      | Some s ->
          String.split_on_char ',' s
          |> List.filter (fun n -> String.trim n <> "")
          |> List.map (fun n ->
                 match Gpusim.Zoo.find (String.trim n) with
                 | Some e -> e
                 | None ->
                     Printf.eprintf "sweep: unknown zoo entry %S\n"
                       (String.trim n);
                     exit 2)
    in
    let pool = refresh_env_and_pool () in
    let r = Experiments.Zoo_sweep.run ~scale ~pool ~entries () in
    Experiments.Zoo_sweep.print r;
    write_csv csv (Experiments.Zoo_sweep.to_csv r)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Re-run the paper's headline figures across the device zoo and \
          report which relative claims hold or invert per configuration")
    Term.(const run $ scale_term $ csv_term $ devices_term)

let all_cmd =
  let run device scale =
    with_device device (fun cfg pool ->
        Experiments.Fig9.print (Experiments.Fig9.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Fig10.print (Experiments.Fig10.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Sharing_ablation.print
          (Experiments.Sharing_ablation.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Dispatch_ablation.print
          (Experiments.Dispatch_ablation.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Amd_mode.print (Experiments.Amd_mode.run ~scale ~pool ());
        print_newline ();
        Experiments.Reduction_ablation.print
          (Experiments.Reduction_ablation.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Teams_mode_ablation.print
          (Experiments.Teams_mode_ablation.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Spmdization_ablation.print
          (Experiments.Spmdization_ablation.run ~scale ~pool ~cfg ());
        print_newline ();
        Experiments.Schedule_ablation.print
          (Experiments.Schedule_ablation.run ~scale ~pool ~cfg ()))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in EXPERIMENTS.md")
    Term.(const run $ device_term $ scale_term)

let serve_cmd =
  let requests_term =
    let doc =
      "Replay this request trace (key=value lines, see \
       examples/serve.requests)."
    in
    Arg.(value & opt (some file) None & info [ "requests" ] ~docv:"FILE" ~doc)
  in
  let synthetic_term =
    let doc = "Generate N synthetic requests instead of replaying a trace." in
    Arg.(value & opt (some int) None & info [ "synthetic" ] ~docv:"N" ~doc)
  in
  let seed_term =
    let doc = "Seed for the synthetic generator." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let gap_term =
    let doc = "Mean inter-arrival gap of the synthetic generator, in ticks." in
    Arg.(value & opt float 2000.0 & info [ "gap" ] ~docv:"TICKS" ~doc)
  in
  let traffic_term =
    let doc =
      "Generate N requests with the fleet traffic generator (heavy-tailed \
       arrivals, bursts, diurnal waves, flash crowds; see --profile).  \
       Implies the fleet scheduler."
    in
    Arg.(value & opt (some int) None & info [ "traffic" ] ~docv:"N" ~doc)
  in
  let profile_term =
    let doc =
      "Traffic profile for --traffic: steady, bursty, diurnal, flash or mixed."
    in
    Arg.(value & opt string "mixed" & info [ "profile" ] ~docv:"NAME" ~doc)
  in
  let shards_term =
    let doc =
      "Run the multi-device fleet scheduler with N shards (overrides \
       OMPSIMD_SERVE_SHARDS)."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let batch_term =
    let doc =
      "Fleet launch-batching limit: members per merged grid (overrides \
       OMPSIMD_SERVE_BATCH; implies the fleet scheduler)."
    in
    Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"K" ~doc)
  in
  let json_term =
    let doc = "Also write the full replay snapshot (config, per-request \
               reports, metrics) as JSON to this file."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let results_term =
    let doc =
      "Fleet only: also write the placement-invariant per-request results \
       (outcome, launches, exec, checksum) as JSON to this file — \
       byte-identical across shard counts and batch limits on \
       admission-lossless configs."
    in
    Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE" ~doc)
  in
  let telemetry_term =
    let doc =
      "Fleet only: stream windowed telemetry (per-shard latency \
       percentiles, queue depths, breaker states, autoscaler and SLO \
       admission decisions) as JSONL to this file.  Deterministic: \
       byte-identical across engines, pool widths and device shuffles.  \
       Implies the fleet scheduler; OMPSIMD_SERVE_TELEMETRY=<file> does \
       the same from the environment."
    in
    Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)
  in
  let slo_term =
    let doc =
      "Latency SLO in milliseconds of virtual time (1 ms = 1000 ticks; \
       overrides OMPSIMD_SERVE_SLO_MS).  Arms SLO-aware admission and, \
       in the fleet, the autoscaler."
    in
    Arg.(value & opt (some float) None & info [ "slo" ] ~docv:"MS" ~doc)
  in
  let write path contents what =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents);
    Printf.printf "%s written to %s\n" what path
  in
  let run device requests synthetic seed gap traffic profile shards batch
      json_path results_path telemetry_path slo_ms =
    with_device device (fun cfg pool ->
        let specs =
          match (requests, synthetic, traffic) with
          | Some file, None, None -> (
              try Serve.Request.load_trace file
              with Failure msg ->
                Printf.eprintf "%s: %s\n" file msg;
                exit 1)
          | None, Some n, None -> Serve.Request.synthetic ~n ~seed ~gap ()
          | None, None, Some n -> (
              try Serve.Traffic.(generate (preset profile ~n ~seed))
              with Failure msg ->
                Printf.eprintf "serve: %s\n" msg;
                exit 1)
          | None, None, None ->
              prerr_endline
                "serve: one of --requests, --synthetic or --traffic is \
                 required";
              exit 2
          | _ ->
              prerr_endline
                "serve: --requests, --synthetic and --traffic are exclusive";
              exit 2
        in
        (* The single-device scheduler stays the default path so its
           replay snapshots are untouched; any fleet knob — a flag here
           or OMPSIMD_SERVE_SHARDS in the environment — opts into the
           fleet. *)
        (match slo_ms with
        | Some ms when ms <= 0.0 ->
            prerr_endline "serve: --slo must be a positive millisecond value";
            exit 2
        | _ -> ());
        let fleet_mode =
          shards <> None || batch <> None || traffic <> None
          || telemetry_path <> None
          || Ompsimd_util.Env.var "OMPSIMD_SERVE_SHARDS" <> None
        in
        if fleet_mode then begin
          let fconf =
            try Serve.Fleet.config_of_env ~cfg ()
            with Invalid_argument msg ->
              Printf.eprintf "serve: %s\n" msg;
              exit 2
          in
          let fconf =
            {
              fconf with
              Serve.Fleet.shards =
                Option.value ~default:fconf.Serve.Fleet.shards shards;
              batch = Option.value ~default:fconf.Serve.Fleet.batch batch;
              telemetry = fconf.Serve.Fleet.telemetry || telemetry_path <> None;
            }
          in
          (* a --slo override re-derives the autoscaler knobs: they are
             a function of the SLO (and the final shard count) *)
          let fconf =
            match slo_ms with
            | None -> fconf
            | Some ms ->
                let base =
                  {
                    fconf.Serve.Fleet.base with
                    Serve.Scheduler.slo = Some (ms *. 1000.0);
                  }
                in
                {
                  fconf with
                  Serve.Fleet.base = base;
                  autoscale =
                    Serve.Autoscale.config_of_env
                      ~slo:base.Serve.Scheduler.slo
                      ~shards:fconf.Serve.Fleet.shards
                      ~servers:base.Serve.Scheduler.servers ();
                }
          in
          let res =
            try Serve.Fleet.run fconf ~pool specs
            with Invalid_argument msg ->
              Printf.eprintf "serve: %s\n" msg;
              exit 2
          in
          List.iter
            (fun r -> print_endline (Serve.Fleet.report_line r))
            res.Serve.Fleet.reports;
          print_newline ();
          print_string (Serve.Fleet.to_text res);
          Option.iter
            (fun path ->
              write path (Serve.Fleet.snapshot_json fconf res) "snapshot")
            json_path;
          Option.iter
            (fun path ->
              write path
                (Serve.Fleet.results_json res.Serve.Fleet.reports)
                "results")
            results_path;
          (* --telemetry wins; otherwise the env knob's value is the path *)
          Option.iter
            (fun path -> write path res.Serve.Fleet.telemetry "telemetry")
            (match telemetry_path with
            | Some p -> Some p
            | None -> Ompsimd_util.Env.var "OMPSIMD_SERVE_TELEMETRY")
        end
        else begin
          let conf = Serve.Scheduler.config_of_env ~cfg () in
          let conf =
            match slo_ms with
            | None -> conf
            | Some ms ->
                { conf with Serve.Scheduler.slo = Some (ms *. 1000.0) }
          in
          let reports, metrics = Serve.Scheduler.run conf ~pool specs in
          List.iter
            (fun r -> print_endline (Serve.Scheduler.report_line r))
            reports;
          print_newline ();
          print_string (Serve.Metrics.to_text metrics);
          Option.iter
            (fun path ->
              write path
                (Serve.Scheduler.snapshot_json conf reports metrics
                ^ "\n")
                "snapshot")
            json_path
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent kernel-launch service over a request trace \
          (deterministic replay) or a seeded synthetic workload — \
          single-device by default, or the sharded/batching fleet with \
          --shards/--batch/--traffic")
    Term.(
      const run $ device_term $ requests_term $ synthetic_term $ seed_term
      $ gap_term $ traffic_term $ profile_term $ shards_term $ batch_term
      $ json_term $ results_term $ telemetry_term $ slo_term)

let () =
  let info =
    Cmd.info "ompsimd_run" ~version:"1.0.0"
      ~doc:
        "Reproduce the experiments of 'Implementing OpenMP's SIMD Directive \
         in LLVM's GPU Runtime' (ICPP 2023) on the ompsimd simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig9_cmd;
            fig10_cmd;
            sharing_cmd;
            dispatch_cmd;
            amd_cmd;
            reduction_cmd;
            teams_mode_cmd;
            spmdize_cmd;
            schedule_cmd;
            kernel_cmd;
            serve_cmd;
            sweep_cmd;
            compile_cmd;
            info_cmd;
            all_cmd;
          ]))
