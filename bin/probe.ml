(* probe — developer tool: print full roofline breakdowns for the Fig 9
   kernels under each configuration, for cost-model calibration. *)

module Harness = Workloads.Harness
module Spmv = Workloads.Spmv
module Su3 = Workloads.Su3
module Ideal = Workloads.Ideal

let show name (r : Harness.run) =
  let rep = r.Harness.report in
  let b = rep.Gpusim.Device.breakdown in
  let c = rep.Gpusim.Device.counters in
  Printf.printf
    "%-22s time=%9.0f comp=%9.0f mem=%9.0f lsu=%9.0f lat=%9.0f res=%2d \
     atomics=%8d wbar=%8d bbar=%7d dram=%10.0f txn=%9.0f\n%!"
    name rep.Gpusim.Device.time_cycles b.Gpusim.Occupancy.compute_bound
    b.Gpusim.Occupancy.memory_bound b.Gpusim.Occupancy.lsu_bound
    b.Gpusim.Occupancy.latency_bound b.Gpusim.Occupancy.resident_blocks
    c.Gpusim.Counters.atomics c.Gpusim.Counters.warp_barriers
    c.Gpusim.Counters.block_barriers
    (Gpusim.Counters.dram_bytes c)
    (Gpusim.Counters.lsu_transactions c)

let () =
  let sms = try int_of_string Sys.argv.(1) with _ -> 12 in
  ignore (fun x -> x);
  let cfg = Gpusim.Config.with_sms Gpusim.Config.a100 sms in
  let teams = 4 * sms in
  let lanes = teams * 128 in
  Printf.printf "=== sparse_matvec (rows=%d) ===\n" (2 * lanes);
  let t = Spmv.generate { Spmv.default_shape with Spmv.rows = 2 * lanes; cols = 2 * lanes } in
  show "two-level(32thr,gen)" (Spmv.run_two_level ~cfg ~num_teams:(8 * teams) ~threads:32 t);
  List.iter (fun gs ->
      show (Printf.sprintf "simd gs=%d" gs)
        (Spmv.run_simd ~cfg ~num_teams:teams ~threads:128 ~mode3:(Harness.generic_simd ~group_size:gs) t))
    [2;4;8;16;32];
  Printf.printf "=== su3 (sites=%d) ===\n" (2 * lanes);
  let t = Su3.generate { Su3.sites = 2 * lanes; seed = 2 } in
  show "baseline gs=1" (Su3.run_two_level ~cfg ~num_teams:teams ~threads:128 t);
  List.iter (fun gs ->
      show (Printf.sprintf "simd gs=%d" gs)
        (Su3.run ~cfg ~num_teams:teams ~threads:128 ~mode3:(Harness.spmd_simd ~group_size:gs) t))
    [2;4;8;16;32];
  Printf.printf "=== ideal (rows=%d) ===\n" (2 * lanes);
  let t = Ideal.generate { Ideal.default_shape with Ideal.rows = 2 * lanes } in
  show "baseline gs=1" (Ideal.run_two_level ~cfg ~num_teams:teams ~threads:128 t);
  List.iter (fun gs ->
      show (Printf.sprintf "simd gs=%d" gs)
        (Ideal.run ~cfg ~num_teams:teams ~threads:128 ~mode3:(Harness.generic_simd ~group_size:gs) t))
    [2;4;8;16;32]
