#!/bin/sh
# Per-pass attribution for the optimization pipeline: run the bench once
# per pipeline configuration — the default, each default pass toggled
# off, the empty pipeline, and the full tier-2 spec — and print ms/run
# and minor-GC MB/run for every row side by side.  The deltas attribute
# time and allocation to individual passes.
#
#   tools/opt_report.sh
#
# Environment: OMPSIMD_BENCH_SCALE (default 0.05) and
# OMPSIMD_BENCH_QUOTA (default 1.0) shrink the run exactly as
# tools/bench_compare.sh does.  Everything else is pinned to the same
# defaults bench_compare pins, so rows are comparable with the
# committed baseline.
set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

labels=""

run_one() {
  # run_one <label> <spec>
  echo "== $1 (OMPSIMD_PASSES=\"$2\") =="
  OMPSIMD_SANITIZE=0 \
  OMPSIMD_FAULTS= \
  OMPSIMD_FAULT_SEED= \
  OMPSIMD_WATCHDOG= \
  OMPSIMD_SHARING_BYTES= \
  OMPSIMD_SHARING_DYNAMIC= \
  OMPSIMD_LOCKSTEP= \
  OMPSIMD_DOMAINS=0 \
  OMPSIMD_BENCH_DEDUP=0 \
  OMPSIMD_BENCH_SCALE="${OMPSIMD_BENCH_SCALE:-0.05}" \
  OMPSIMD_BENCH_QUOTA="${OMPSIMD_BENCH_QUOTA:-1.0}" \
  OMPSIMD_BENCH_JSON="$out/$1.json" \
  OMPSIMD_PASSES="$2" \
    dune exec bench/main.exe >/dev/null
  labels="$labels $1"
}

# the default pipeline is fold,unroll:32,dce (spec-language unroll is
# the structure-preserving variant, so the spec below reproduces the
# default exactly); each no-* config drops one pass from it
run_one default   ""
run_one none      "none"
run_one no-fold   "unroll:32,dce"
run_one no-unroll "fold,dce"
run_one no-dce    "fold,unroll:32"
run_one tier2     "fold,licm,strength,collapse,interchange,fuse,tile:32,unroll:32,dce"

python3 - "$out" $labels <<'EOF'
import json, sys
out, labels = sys.argv[1], sys.argv[2:]
data = {l: json.load(open(f"{out}/{l}.json")) for l in labels}
rows = list(data[labels[0]]["ms_per_run"].keys())

def table(title, field, fmt):
    print()
    print(title)
    header = f"{'row':<32}" + "".join(f"{l:>12}" for l in labels)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for l in labels:
            v = data[l].get(field, {}).get(row)
            cells.append("?".rjust(12) if v is None else fmt(v).rjust(12))
        print(f"{row:<32}" + "".join(cells))

table("ms per run (Bechamel estimate; jitter is routinely +/-10%)",
      "ms_per_run", lambda v: f"{v:.1f}")
table("minor-GC MB per run (deterministic single-run measurement)",
      "minor_mb_per_run", lambda v: f"{v:.1f}")
print()
print("deltas vs 'default' attribute each toggled pass; 'none' is the")
print("unoptimized floor and 'tier2' the full scripted pipeline.")
EOF
