#!/bin/sh
# Compare a fresh bench run against the committed baseline, or record a
# new one.
#
#   tools/bench_compare.sh            diff a fresh sequential run
#                                     (OMPSIMD_DOMAINS=0, dedup off)
#                                     against the matching entry in
#                                     BENCH_gpusim.json; exit 1 if any
#                                     row regressed by more than 25%
#   tools/bench_compare.sh --record   regenerate BENCH_gpusim.json: the
#                                     sequential baseline entry plus a
#                                     pooled entry (OMPSIMD_DOMAINS=3,
#                                     dedup on)
#
# The Bechamel stage always runs at its fixed reduced scale — that is
# what the baseline records; OMPSIMD_BENCH_SCALE here only shrinks the
# scientific-output pass that precedes it, which is not measured.
# Machine noise on single Bechamel estimates is routinely ±10%, so the
# 25% gate flags structural regressions, not jitter.
set -eu

cd "$(dirname "$0")/.."
baseline=BENCH_gpusim.json
threshold=1.25

dune build bench/main.exe

run_bench() {
  # run_bench <domains> <dedup 0|1> <json-out>
  # The sanitizer is pinned OFF: benchmarks measure the production path,
  # and the baseline gate below doubles as the proof that carrying the
  # (disabled) sanitizer hooks costs nothing — a hot-path regression in
  # the instrumented loads/stores shows up as an E6 (or any other row)
  # ratio past the threshold.
  # Fault injection is pinned OFF the same way (the "serve faulty" row
  # arms its own plan internally): the baseline doubles as the proof
  # that the disarmed fault hooks cost nothing on the hot path.
  # The sharing knobs are pinned to their defaults (dynamic sizing on,
  # no explicit reservation) so an inherited override can't shift the
  # sharing-sensitive rows against the baseline.
  # The optimization pipeline and the lockstep executor are pinned to
  # their defaults too: the recorded numbers measure the default
  # pipeline (blank OMPSIMD_PASSES) under the fused executor, and an
  # inherited override of either would shift every row.  The "serve
  # warm cache (optimized)" row sets its own explicit spec internally.
  # The fleet knobs are pinned blank the same way: the fleet row builds
  # its explicit config internally, and an inherited shard/batch/steal
  # override must not reshape it against the baseline.
  # The device knobs are pinned blank too: every row benchmarks the
  # seed device, and the hetero fleet row names its own zoo slice
  # internally — an inherited OMPSIMD_DEVICE or fleet device list would
  # shift every simulation row against the baseline.
  # The operability knobs (SLO, telemetry, autoscaler, affinity decay)
  # are pinned blank the same way: the SLO fleet row arms its own
  # config internally, and an inherited OMPSIMD_SERVE_SLO_MS would arm
  # shedding and scaling inside every other serve row.
  OMPSIMD_DEVICE= \
  OMPSIMD_FLEET_DEVICES= \
  OMPSIMD_FLEET_AFFINITY= \
  OMPSIMD_FLEET_DECAY= \
  OMPSIMD_SERVE_SHARDS= \
  OMPSIMD_SERVE_BATCH= \
  OMPSIMD_SERVE_STEAL= \
  OMPSIMD_SERVE_MEMO= \
  OMPSIMD_SERVE_TENANTS= \
  OMPSIMD_SERVE_SLO_MS= \
  OMPSIMD_SERVE_WINDOW= \
  OMPSIMD_SERVE_TELEMETRY= \
  OMPSIMD_SERVE_SHED= \
  OMPSIMD_SERVE_AUTOSCALE= \
  OMPSIMD_SERVE_BUDGET= \
  OMPSIMD_SERVE_COOLDOWN= \
  OMPSIMD_PASSES= \
  OMPSIMD_LOCKSTEP= \
  OMPSIMD_SANITIZE=0 \
  OMPSIMD_FAULTS= \
  OMPSIMD_FAULT_SEED= \
  OMPSIMD_WATCHDOG= \
  OMPSIMD_SHARING_BYTES= \
  OMPSIMD_SHARING_DYNAMIC= \
  OMPSIMD_DOMAINS="$1" \
  OMPSIMD_BENCH_DEDUP="$2" \
  OMPSIMD_BENCH_SCALE="${OMPSIMD_BENCH_SCALE:-0.05}" \
  OMPSIMD_BENCH_QUOTA="${OMPSIMD_BENCH_QUOTA:-1.0}" \
  OMPSIMD_BENCH_JSON="$3" \
    dune exec bench/main.exe
}

if [ "${1:-}" = "--record" ]; then
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  echo "== recording sequential baseline (domains=0, dedup off) =="
  run_bench 0 0 "$out/seq.json"
  echo "== recording pooled entry (domains=3, dedup on) =="
  run_bench 3 1 "$out/pool.json"
  python3 - "$out/seq.json" "$out/pool.json" "$baseline" <<'EOF'
import json, sys
seq, pool, dst = sys.argv[1:4]
entries = [json.load(open(seq)), json.load(open(pool))]
with open(dst, "w") as f:
    json.dump({"entries": entries}, f, indent=2)
    f.write("\n")
print("wrote", dst)
EOF
  exit 0
fi

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT
echo "== fresh sequential run (domains=0, dedup off) =="
run_bench 0 0 "$fresh"

python3 - "$baseline" "$fresh" "$threshold" <<'EOF'
import json, sys
baseline_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
committed = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))
base = next(
    (e for e in committed.get("entries", [committed])
     if e.get("domains") == fresh["domains"] and e.get("dedup") == fresh["dedup"]),
    None,
)
if base is None:
    sys.exit(f"no committed entry matches domains={fresh['domains']} dedup={fresh['dedup']}")
failed = []
# E6 (the reduction ablation) is the sanitizer-sensitive row: its inner
# loop is dominated by the instrumented loads/stores, so a fresh run
# must produce an estimate for it — a silently missing row would let a
# disabled-sanitizer slowdown ship ungated.
if fresh["ms_per_run"].get("reduction ablation (E6)") is None:
    sys.exit("FAIL: fresh run has no estimate for 'reduction ablation (E6)'")
# The fleet row is required the same way: it is the only row exercising
# the sharded scheduler, so a silently missing estimate would let a
# fleet-layer slowdown ship ungated.
if fresh["ms_per_run"].get("serve fleet warm (4 shards)") is None:
    sys.exit("FAIL: fresh run has no estimate for 'serve fleet warm (4 shards)'")
# And the heterogeneous row: the only row exercising device-affinity
# placement, per-device memo partitioning and sub-ring routing.
if fresh["ms_per_run"].get("serve fleet warm (hetero 4 shards)") is None:
    sys.exit("FAIL: fresh run has no estimate for 'serve fleet warm (hetero 4 shards)'")
# And the SLO row: the only row carrying the operability control plane
# (telemetry windows, SLO admission, the autoscaler step) on the hot
# path, so a control-plane slowdown must not ship ungated.
if fresh["ms_per_run"].get("serve fleet SLO (4 shards)") is None:
    sys.exit("FAIL: fresh run has no estimate for 'serve fleet SLO (4 shards)'")
print(f"{'row':<30} {'committed':>10} {'fresh':>10}  ratio")
for name, old in base["ms_per_run"].items():
    new = fresh["ms_per_run"].get(name)
    if old is None or new is None:
        print(f"{name:<30} {'?':>10} {'?':>10}  (missing estimate)")
        continue
    ratio = new / old
    flag = "  <-- REGRESSION" if ratio > threshold else ""
    print(f"{name:<30} {old:>10.1f} {new:>10.1f}  {ratio:4.2f}x{flag}")
    if ratio > threshold:
        failed.append(name)
if failed:
    sys.exit(f"FAIL: {len(failed)} row(s) regressed beyond {threshold:.2f}x: " + ", ".join(failed))
print("bench compare OK: no row regressed beyond %.2fx" % threshold)

# Allocation gate: minor-GC MB per run is measured from a single
# deterministic simulation run, so it is far less noisy than the timing
# estimates — a tighter threshold catches allocation regressions (a
# boxing change, a lost specialization) that timing jitter would hide.
alloc_threshold = 1.10
base_alloc = base.get("minor_mb_per_run")
fresh_alloc = fresh.get("minor_mb_per_run")
if base_alloc and fresh_alloc:
    failed = []
    print(f"{'row':<30} {'committed':>10} {'fresh':>10}  MB/run ratio")
    for name, old in base_alloc.items():
        new = fresh_alloc.get(name)
        if old is None or new is None or old < 1.0:
            # sub-MB rows are all overhead; skip the ratio
            continue
        ratio = new / old
        flag = "  <-- ALLOC REGRESSION" if ratio > alloc_threshold else ""
        print(f"{name:<30} {old:>10.1f} {new:>10.1f}  {ratio:4.2f}x{flag}")
        if ratio > alloc_threshold:
            failed.append(name)
    if failed:
        sys.exit(f"FAIL: {len(failed)} row(s) allocate beyond {alloc_threshold:.2f}x baseline: " + ", ".join(failed))
    print("alloc compare OK: no row allocates beyond %.2fx baseline" % alloc_threshold)
else:
    print("alloc compare skipped: baseline has no minor_mb_per_run entry")
EOF
