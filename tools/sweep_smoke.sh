#!/bin/sh
# Smoke-test the device-zoo sweep harness.
#
# Runs `ompsimd_run sweep` over a three-entry slice of the zoo at tiny
# scale and checks that: the table names every swept device and every
# claim, the CSV carries one row per (device, claim), a rerun is
# byte-identical (the sweep is pure virtual time), the paper's own
# shape (w32-hw) holds every claim, and an unknown zoo entry is
# rejected with a non-zero exit.
#
# Usage: tools/sweep_smoke.sh  (from the repo root), or from dune with
# OMPSIMD_RUN pointing at an already-built ompsimd_run binary.
set -eu

if [ -n "${OMPSIMD_RUN:-}" ]; then
  run="$OMPSIMD_RUN"
else
  cd "$(dirname "$0")/.."
  dune build bin/ompsimd_run.exe
  run=./_build/default/bin/ompsimd_run.exe
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# the sweep builds its own per-entry devices: a caller's device/fleet
# environment must not leak in
export OMPSIMD_DEVICE= OMPSIMD_FLEET_DEVICES= OMPSIMD_FLEET_AFFINITY=

devices="w32-hw,w16-hw,w64-sw"
"$run" sweep --scale 0.05 --devices "$devices" --csv "$out/sweep.csv" \
  > "$out/sweep.txt"

for d in w32-hw w16-hw w64-sw; do
  grep -q "$d" "$out/sweep.txt" \
    || { echo "FAIL: table is missing device $d"; exit 1; }
done
grep -q "fig9" "$out/sweep.txt" && grep -q "fig10" "$out/sweep.txt" \
  && grep -q "E6" "$out/sweep.txt" \
  || { echo "FAIL: table is missing a claim column"; exit 1; }

# header + 3 devices x 3 claims
rows=$(wc -l < "$out/sweep.csv")
[ "$rows" -eq 10 ] \
  || { echo "FAIL: expected 10 CSV lines, got $rows"; exit 1; }

# the sweep runs in virtual time: a rerun is byte-identical
"$run" sweep --scale 0.05 --devices "$devices" --csv "$out/sweep2.csv" \
  > "$out/sweep2.txt"
diff -q "$out/sweep.csv" "$out/sweep2.csv" > /dev/null \
  || { echo "FAIL: sweep CSV not deterministic"; exit 1; }

# the paper's own shape must hold every claim, even at smoke scale
if grep "^w32-hw," "$out/sweep.csv" | grep -q ",false,"; then
  echo "FAIL: w32-hw inverted a claim"
  exit 1
fi

# unknown zoo entries are a hard error
if "$run" sweep --devices nope --scale 0.05 > /dev/null 2>&1; then
  echo "FAIL: unknown device accepted"
  exit 1
fi

echo "sweep smoke OK: table and CSV deterministic, w32-hw holds all claims"
