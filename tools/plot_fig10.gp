# gnuplot script for the Fig 10 reproduction.
#
#   dune exec bin/ompsimd_run.exe -- fig10 --csv fig10.csv
#   gnuplot -e "csv='fig10.csv'" tools/plot_fig10.gp

if (!exists("csv")) csv = "fig10.csv"
set terminal pngcairo size 900,540 enhanced
set output "fig10.png"
set datafile separator ","
set title "Execution-mode relative speedup vs the No-SIMD configuration"
set ylabel "relative speedup"
set style data histogram
set style histogram cluster gap 1
set style fill solid 0.8 border -1
set yrange [0:1.3]
set grid ytics
set key top right
plot csv using ($2 eq "No SIMD" ? $4 : 1/0):xtic(1) title "No SIMD", \
     csv using ($2 eq "SPMD SIMD" ? $4 : 1/0) title "SPMD SIMD", \
     csv using ($2 eq "generic SIMD" ? $4 : 1/0) title "generic SIMD"
