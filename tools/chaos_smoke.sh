#!/bin/sh
# Smoke-test the fault-injection determinism contract.
#
# Replays examples/serve.requests with an armed OMPSIMD_FAULTS chaos
# plan under three fault seeds, each across every OMPSIMD_EVAL x
# OMPSIMD_DOMAINS combination, and diffs the JSON snapshots
# byte-for-byte: injected faults are a pure function of (seed, launch
# nonce, block id), so the failure reports, relaunches and fault
# counters must be identical for any engine and pool width.
#
# Two more gates: an armed plan with all-zero rates must be
# byte-identical to a disarmed run (arming alone perturbs nothing),
# and at least one seed must actually exercise the recovery path.
#
# The final section is a long-run operability soak: a multi-phase
# diurnal chaos schedule over a heterogeneous fleet with the SLO
# admission gate and the autoscaler armed, holding the no-lost-request
# tally exactly, bounding the SLO-violation rate, and replaying the
# telemetry stream byte-for-byte.  CHAOS_SLICE=1 (the runtest wiring)
# shrinks the virtual day; every invariant is unchanged.
#
# Usage: tools/chaos_smoke.sh   (from the repo root)
set -eu

if [ -n "${OMPSIMD_RUN:-}" ]; then
  run="$OMPSIMD_RUN"
else
  cd "$(dirname "$0")/.."
  dune build bin/ompsimd_run.exe
  run=./_build/default/bin/ompsimd_run.exe
fi
trace="$(dirname "$0")/../examples/serve.requests"
plan='abort=0.4,flip=0.3:0.5,stall=0.2'
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Pin the fleet knobs to their unset defaults so the classic
# single-device sections replay byte-identically even if the caller's
# shell exports them; the fleet sections below opt in via flags.
export OMPSIMD_SERVE_SHARDS= OMPSIMD_SERVE_BATCH= OMPSIMD_SERVE_STEAL=
export OMPSIMD_SERVE_MEMO= OMPSIMD_SERVE_TENANTS= OMPSIMD_FLEET_DEVICES=
export OMPSIMD_SERVE_SLO_MS= OMPSIMD_SERVE_WINDOW= OMPSIMD_SERVE_TELEMETRY=
export OMPSIMD_SERVE_SHED= OMPSIMD_SERVE_AUTOSCALE= OMPSIMD_SERVE_BUDGET=
export OMPSIMD_SERVE_COOLDOWN= OMPSIMD_FLEET_DECAY=

failures_seen=0
for seed in 1 7 42; do
  ref=""
  for engine in compile walk; do
    for domains in 0 3; do
      json="$out/chaos_${seed}_${engine}_${domains}.json"
      echo "== seed=$seed OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
      OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED="$seed" \
      OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
        "$run" serve --requests "$trace" --json "$json" > /dev/null
      if [ -z "$ref" ]; then
        ref="$json"
      else
        diff -q "$ref" "$json" \
          || { echo "FAIL: seed $seed snapshot differs from $ref"; exit 1; }
      fi
    done
  done
  grep -q '"device_failures": 0,' "$ref" || failures_seen=1
done

[ "$failures_seen" = 1 ] \
  || { echo "FAIL: no seed injected a device failure"; exit 1; }

# arming a zero-rate plan only switches deadlock capture on; it must not
# perturb a fault-free replay by a single byte
OMPSIMD_FAULTS="" \
  "$run" serve --requests "$trace" --json "$out/off.json" > /dev/null
OMPSIMD_FAULTS="abort=0" OMPSIMD_FAULT_SEED=7 \
  "$run" serve --requests "$trace" --json "$out/armed_zero.json" > /dev/null
diff -q "$out/off.json" "$out/armed_zero.json" \
  || { echo "FAIL: a zero-rate plan perturbed a fault-free replay"; exit 1; }

# --- the fleet scheduler, armed ----------------------------------------
# Fault nonces are pinned per (request, attempt), so the armed fleet
# snapshot must also be byte-identical across engines and pools, and on
# an admission-lossless breaker-free config the per-request results
# (outcome, launches, checksum) must not change with the shard count or
# batch limit — every request meets the exact same fault stream no
# matter which shard replays it or which merged grid carries it.
fref=""
for engine in compile walk; do
  for domains in 0 3; do
    json="$out/chaos_fleet_${engine}_${domains}.json"
    echo "== fleet seed=7 OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
    OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED=7 \
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --requests "$trace" --shards 4 --batch 8 --json "$json" \
      > /dev/null
    if [ -z "$fref" ]; then
      fref="$json"
    else
      diff -q "$fref" "$json" \
        || { echo "FAIL: armed fleet snapshot differs from $fref"; exit 1; }
    fi
  done
done
grep -q '"device_failures": 0,' "$fref" \
  && { echo "FAIL: armed fleet run injected no device failure"; exit 1; }

for combo in "1 1" "4 8"; do
  set -- $combo
  OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED=7 \
  OMPSIMD_SERVE_QUEUE=100000 OMPSIMD_SERVE_BREAKER=0 \
    "$run" serve --traffic 120 --profile flash --seed 5 \
    --shards "$1" --batch "$2" --results "$out/chaos_results_$1_$2.json" \
    > /dev/null
done
diff -q "$out/chaos_results_1_1.json" "$out/chaos_results_4_8.json" \
  || { echo "FAIL: armed results changed with the shard/batch shape"; exit 1; }

grep -o '"recovery": {[^}]*}' "$out/chaos_7_compile_0.json"

# --- long-run operability: a diurnal chaos day -------------------------
# Three phases of a virtual day — overnight steady trickle, the daytime
# diurnal wave, a lunchtime flash crowd — each over a heterogeneous
# 4-shard fleet with the fault plan, SLO-aware admission and the
# autoscaler all armed.  Per phase: the no-lost-request tally must be
# exact (admitted = completed + rejected + shed + shed-slo + timed-out
# + failed + degraded), the SLO-violation rate (late completions plus
# SLO sheds) must stay bounded, and the telemetry JSONL must replay
# byte-identically on the other engine and pool width.
if [ "${CHAOS_SLICE:-0}" = 1 ]; then day=400; else day=4000; fi
hetero=a100,a100q,amd,small
phase_no=0
for phase in "steady 11 4" "diurnal 23 1" "flash 5 2"; do
  set -- $phase
  profile=$1; pseed=$2; n=$((day / $3))
  json="$out/day_${profile}.json"
  tele="$out/day_${profile}.jsonl"
  echo "== diurnal phase $phase_no: $profile n=$n seed=$pseed =="
  OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED="$pseed" \
  OMPSIMD_FLEET_DEVICES="$hetero" \
    "$run" serve --traffic "$n" --profile "$profile" --seed "$pseed" \
    --shards 4 --slo 25 --telemetry "$tele" --json "$json" > /dev/null
  python3 - "$json" "$profile" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
lost = m["requests"] - (m["completed"] + m["rejected"] + m["shed"]
        + m["shed_slo"] + m["timed_out"] + m["failed"]
        + m["recovery"]["degraded"])
assert lost == 0, f"{sys.argv[2]}: lost {lost} of {m['requests']} requests"
rate = (m["slo"]["violations"] + m["shed_slo"]) / max(m["requests"], 1)
assert rate <= 0.35, f"{sys.argv[2]}: SLO-violation rate {rate:.3f} > 0.35"
print(f"   {sys.argv[2]}: {m['requests']} requests, 0 lost, "
      f"violation rate {rate:.3f}")
EOF
  OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED="$pseed" \
  OMPSIMD_FLEET_DEVICES="$hetero" \
  OMPSIMD_EVAL=walk OMPSIMD_DOMAINS=3 \
    "$run" serve --traffic "$n" --profile "$profile" --seed "$pseed" \
    --shards 4 --slo 25 --telemetry "$tele.replay" > /dev/null
  diff -q "$tele" "$tele.replay" \
    || { echo "FAIL: $profile telemetry did not replay byte-identically"; exit 1; }
  phase_no=$((phase_no + 1))
done

# The autoscaler must earn its keep: under the flash crowd with
# admission shedding off, scaling against the SLO has to beat the fixed
# fleet on late completions, not just match it.
for auto in 1 0; do
  OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED=23 \
  OMPSIMD_FLEET_DEVICES="$hetero" \
  OMPSIMD_SERVE_SHED=0 OMPSIMD_SERVE_AUTOSCALE="$auto" \
    "$run" serve --traffic "$day" --profile flash --seed 23 \
    --shards 4 --slo 8 --json "$out/asc_$auto.json" > /dev/null
done
python3 - "$out/asc_1.json" "$out/asc_0.json" <<'EOF'
import json, sys
on = json.load(open(sys.argv[1]))["metrics"]
off = json.load(open(sys.argv[2]))["metrics"]
assert on["autoscale"]["grows"] > 0, "autoscaler never grew under overload"
assert off["autoscale"]["grows"] == 0, "fixed arm scaled"
assert on["slo"]["violations"] < off["slo"]["violations"], (
    f"autoscaling did not reduce SLO violations: "
    f"{on['slo']['violations']} vs {off['slo']['violations']}")
print(f"   autoscale on/off violations: "
      f"{on['slo']['violations']}/{off['slo']['violations']} "
      f"(grows {on['autoscale']['grows']}, shrinks {on['autoscale']['shrinks']})")
EOF

echo "chaos smoke OK: fault snapshots bit-identical across engines and pools,"
echo "  diurnal chaos day lost nothing and telemetry replayed byte-for-byte"
