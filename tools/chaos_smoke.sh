#!/bin/sh
# Smoke-test the fault-injection determinism contract.
#
# Replays examples/serve.requests with an armed OMPSIMD_FAULTS chaos
# plan under three fault seeds, each across every OMPSIMD_EVAL x
# OMPSIMD_DOMAINS combination, and diffs the JSON snapshots
# byte-for-byte: injected faults are a pure function of (seed, launch
# nonce, block id), so the failure reports, relaunches and fault
# counters must be identical for any engine and pool width.
#
# Two more gates: an armed plan with all-zero rates must be
# byte-identical to a disarmed run (arming alone perturbs nothing),
# and at least one seed must actually exercise the recovery path.
#
# Usage: tools/chaos_smoke.sh   (from the repo root)
set -eu

cd "$(dirname "$0")/.."
trace=examples/serve.requests
plan='abort=0.4,flip=0.3:0.5,stall=0.2'
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

dune build bin/ompsimd_run.exe
run=./_build/default/bin/ompsimd_run.exe

failures_seen=0
for seed in 1 7 42; do
  ref=""
  for engine in compile walk; do
    for domains in 0 3; do
      json="$out/chaos_${seed}_${engine}_${domains}.json"
      echo "== seed=$seed OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
      OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED="$seed" \
      OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
        "$run" serve --requests "$trace" --json "$json" > /dev/null
      if [ -z "$ref" ]; then
        ref="$json"
      else
        diff -q "$ref" "$json" \
          || { echo "FAIL: seed $seed snapshot differs from $ref"; exit 1; }
      fi
    done
  done
  grep -q '"device_failures": 0,' "$ref" || failures_seen=1
done

[ "$failures_seen" = 1 ] \
  || { echo "FAIL: no seed injected a device failure"; exit 1; }

# arming a zero-rate plan only switches deadlock capture on; it must not
# perturb a fault-free replay by a single byte
OMPSIMD_FAULTS="" \
  "$run" serve --requests "$trace" --json "$out/off.json" > /dev/null
OMPSIMD_FAULTS="abort=0" OMPSIMD_FAULT_SEED=7 \
  "$run" serve --requests "$trace" --json "$out/armed_zero.json" > /dev/null
diff -q "$out/off.json" "$out/armed_zero.json" \
  || { echo "FAIL: a zero-rate plan perturbed a fault-free replay"; exit 1; }

grep -o '"recovery": {[^}]*}' "$out/chaos_7_compile_0.json"
echo "chaos smoke OK: fault snapshots bit-identical across engines and pools"
