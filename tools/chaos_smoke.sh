#!/bin/sh
# Smoke-test the fault-injection determinism contract.
#
# Replays examples/serve.requests with an armed OMPSIMD_FAULTS chaos
# plan under three fault seeds, each across every OMPSIMD_EVAL x
# OMPSIMD_DOMAINS combination, and diffs the JSON snapshots
# byte-for-byte: injected faults are a pure function of (seed, launch
# nonce, block id), so the failure reports, relaunches and fault
# counters must be identical for any engine and pool width.
#
# Two more gates: an armed plan with all-zero rates must be
# byte-identical to a disarmed run (arming alone perturbs nothing),
# and at least one seed must actually exercise the recovery path.
#
# Usage: tools/chaos_smoke.sh   (from the repo root)
set -eu

cd "$(dirname "$0")/.."
trace=examples/serve.requests
plan='abort=0.4,flip=0.3:0.5,stall=0.2'
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Pin the fleet knobs to their unset defaults so the classic
# single-device sections replay byte-identically even if the caller's
# shell exports them; the fleet section below opts in via flags.
export OMPSIMD_SERVE_SHARDS= OMPSIMD_SERVE_BATCH= OMPSIMD_SERVE_STEAL=
export OMPSIMD_SERVE_MEMO= OMPSIMD_SERVE_TENANTS=

dune build bin/ompsimd_run.exe
run=./_build/default/bin/ompsimd_run.exe

failures_seen=0
for seed in 1 7 42; do
  ref=""
  for engine in compile walk; do
    for domains in 0 3; do
      json="$out/chaos_${seed}_${engine}_${domains}.json"
      echo "== seed=$seed OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
      OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED="$seed" \
      OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
        "$run" serve --requests "$trace" --json "$json" > /dev/null
      if [ -z "$ref" ]; then
        ref="$json"
      else
        diff -q "$ref" "$json" \
          || { echo "FAIL: seed $seed snapshot differs from $ref"; exit 1; }
      fi
    done
  done
  grep -q '"device_failures": 0,' "$ref" || failures_seen=1
done

[ "$failures_seen" = 1 ] \
  || { echo "FAIL: no seed injected a device failure"; exit 1; }

# arming a zero-rate plan only switches deadlock capture on; it must not
# perturb a fault-free replay by a single byte
OMPSIMD_FAULTS="" \
  "$run" serve --requests "$trace" --json "$out/off.json" > /dev/null
OMPSIMD_FAULTS="abort=0" OMPSIMD_FAULT_SEED=7 \
  "$run" serve --requests "$trace" --json "$out/armed_zero.json" > /dev/null
diff -q "$out/off.json" "$out/armed_zero.json" \
  || { echo "FAIL: a zero-rate plan perturbed a fault-free replay"; exit 1; }

# --- the fleet scheduler, armed ----------------------------------------
# Fault nonces are pinned per (request, attempt), so the armed fleet
# snapshot must also be byte-identical across engines and pools, and on
# an admission-lossless breaker-free config the per-request results
# (outcome, launches, checksum) must not change with the shard count or
# batch limit — every request meets the exact same fault stream no
# matter which shard replays it or which merged grid carries it.
fref=""
for engine in compile walk; do
  for domains in 0 3; do
    json="$out/chaos_fleet_${engine}_${domains}.json"
    echo "== fleet seed=7 OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
    OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED=7 \
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --requests "$trace" --shards 4 --batch 8 --json "$json" \
      > /dev/null
    if [ -z "$fref" ]; then
      fref="$json"
    else
      diff -q "$fref" "$json" \
        || { echo "FAIL: armed fleet snapshot differs from $fref"; exit 1; }
    fi
  done
done
grep -q '"device_failures": 0,' "$fref" \
  && { echo "FAIL: armed fleet run injected no device failure"; exit 1; }

for combo in "1 1" "4 8"; do
  set -- $combo
  OMPSIMD_FAULTS="$plan" OMPSIMD_FAULT_SEED=7 \
  OMPSIMD_SERVE_QUEUE=100000 OMPSIMD_SERVE_BREAKER=0 \
    "$run" serve --traffic 120 --profile flash --seed 5 \
    --shards "$1" --batch "$2" --results "$out/chaos_results_$1_$2.json" \
    > /dev/null
done
diff -q "$out/chaos_results_1_1.json" "$out/chaos_results_4_8.json" \
  || { echo "FAIL: armed results changed with the shard/batch shape"; exit 1; }

grep -o '"recovery": {[^}]*}' "$out/chaos_7_compile_0.json"
echo "chaos smoke OK: fault snapshots bit-identical across engines and pools"
