# gnuplot script for the Fig 9 reproduction.
#
#   dune exec bin/ompsimd_run.exe -- fig9 --csv fig9.csv
#   gnuplot -e "csv='fig9.csv'" tools/plot_fig9.gp
#
# Produces fig9.png: speedup over the two-level baseline per SIMD group
# size, one line per kernel — the same series as the paper's figure.

if (!exists("csv")) csv = "fig9.csv"
set terminal pngcairo size 900,540 enhanced
set output "fig9.png"
set datafile separator ","
set title "Three-level simd speedup over the two-level baseline"
set xlabel "SIMD group size (simdlen)"
set ylabel "speedup"
set logscale x 2
set xtics (2, 4, 8, 16, 32)
set key top left
set grid ytics
plot csv using 2:($1 eq "sparse_matvec" ? $5 : 1/0) with linespoints lw 2 pt 7 title "sparse\\_matvec", \
     csv using 2:($1 eq "su3_bench" ? $5 : 1/0) with linespoints lw 2 pt 5 title "su3\\_bench", \
     csv using 2:($1 eq "ideal_kernel" ? $5 : 1/0) with linespoints lw 2 pt 9 title "ideal kernel", \
     1 with lines dt 2 lc rgb "gray" notitle
