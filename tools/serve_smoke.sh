#!/bin/sh
# Smoke-test the launch service's determinism contract.
#
# Replays examples/serve.requests under every OMPSIMD_EVAL x
# OMPSIMD_DOMAINS combination (staged/walk engine, sequential/pooled
# block simulation) and diffs the JSON snapshots byte-for-byte: the
# service runs in virtual time, so per-request reports (including
# checksums) and metrics must be identical everywhere.  A synthetic
# replay with a fixed seed is checked the same way.
#
# Usage: tools/serve_smoke.sh   (from the repo root)
set -eu

cd "$(dirname "$0")/.."
trace=examples/serve.requests
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

dune build bin/ompsimd_run.exe
run=./_build/default/bin/ompsimd_run.exe

ref=""
for engine in compile walk; do
  for domains in 0 3; do
    json="$out/serve_${engine}_${domains}.json"
    echo "== OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --requests "$trace" --json "$json" \
      > "$out/serve_${engine}_${domains}.log"
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --synthetic 24 --seed 11 --json "$json.synth" \
      > /dev/null
    if [ -z "$ref" ]; then
      ref="$json"
    else
      diff -q "$ref" "$json" \
        || { echo "FAIL: trace snapshot differs from $ref"; exit 1; }
      diff -q "$ref.synth" "$json.synth" \
        || { echo "FAIL: synthetic snapshot differs"; exit 1; }
    fi
  done
done

# the replay must have exercised the interesting paths: cache hits and
# at least one enforced deadline
grep -q '"cache_hits": 0,' "$ref" \
  && { echo "FAIL: trace produced no cache hits"; exit 1; }
grep -q '"timed_out": 0,' "$ref" \
  && { echo "FAIL: trace enforced no deadline"; exit 1; }

tail -n 8 "$out/serve_compile_0.log"
echo "serve smoke OK: snapshots bit-identical across engines and pools"
