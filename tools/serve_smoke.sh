#!/bin/sh
# Smoke-test the launch service's determinism contract.
#
# Replays examples/serve.requests under every OMPSIMD_EVAL x
# OMPSIMD_DOMAINS combination (staged/walk engine, sequential/pooled
# block simulation) and diffs the JSON snapshots byte-for-byte: the
# service runs in virtual time, so per-request reports (including
# checksums) and metrics must be identical everywhere.  A synthetic
# replay with a fixed seed is checked the same way.
#
# Usage: tools/serve_smoke.sh   (from the repo root)
set -eu

cd "$(dirname "$0")/.."
trace=examples/serve.requests
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Pin the fleet knobs to their unset defaults so the classic
# single-device sections below replay byte-identically even if the
# caller's shell exports them (a set OMPSIMD_SERVE_SHARDS would route
# `serve` through the fleet scheduler).  The device knobs are pinned
# the same way: every section below replays on the seed device, and
# the heterogeneous section sets its own device list explicitly.
export OMPSIMD_SERVE_SHARDS= OMPSIMD_SERVE_BATCH= OMPSIMD_SERVE_STEAL=
export OMPSIMD_SERVE_MEMO= OMPSIMD_SERVE_TENANTS=
export OMPSIMD_DEVICE= OMPSIMD_FLEET_DEVICES= OMPSIMD_FLEET_AFFINITY=
# The operability knobs are pinned the same way: an inherited SLO would
# arm admission shedding and the autoscaler and reshape every snapshot.
export OMPSIMD_SERVE_SLO_MS= OMPSIMD_SERVE_WINDOW= OMPSIMD_SERVE_TELEMETRY=
export OMPSIMD_SERVE_SHED= OMPSIMD_SERVE_AUTOSCALE= OMPSIMD_SERVE_BUDGET=
export OMPSIMD_SERVE_COOLDOWN= OMPSIMD_FLEET_DECAY=

dune build bin/ompsimd_run.exe
run=./_build/default/bin/ompsimd_run.exe

ref=""
for engine in compile walk; do
  for domains in 0 3; do
    json="$out/serve_${engine}_${domains}.json"
    echo "== OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --requests "$trace" --json "$json" \
      > "$out/serve_${engine}_${domains}.log"
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --synthetic 24 --seed 11 --json "$json.synth" \
      > /dev/null
    if [ -z "$ref" ]; then
      ref="$json"
    else
      diff -q "$ref" "$json" \
        || { echo "FAIL: trace snapshot differs from $ref"; exit 1; }
      diff -q "$ref.synth" "$json.synth" \
        || { echo "FAIL: synthetic snapshot differs"; exit 1; }
    fi
  done
done

# the replay must have exercised the interesting paths: cache hits and
# at least one enforced deadline
grep -q '"cache_hits": 0,' "$ref" \
  && { echo "FAIL: trace produced no cache hits"; exit 1; }
grep -q '"timed_out": 0,' "$ref" \
  && { echo "FAIL: trace enforced no deadline"; exit 1; }

# --- the fleet scheduler -----------------------------------------------
# Same contract, fleet edition: the sharded/batching scheduler's full
# snapshot (per-request reports with shard/batch attribution, per-shard
# and per-tenant breakdowns) must be byte-identical across every engine
# x pool combination, for both the example trace and generated traffic.
fref=""
for engine in compile walk; do
  for domains in 0 3; do
    json="$out/fleet_${engine}_${domains}.json"
    echo "== fleet OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --requests "$trace" --shards 4 --batch 8 --json "$json" \
      > "$out/fleet_${engine}_${domains}.log"
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      "$run" serve --traffic 200 --profile mixed --seed 7 \
      --shards 4 --batch 8 --json "$json.traffic" > /dev/null
    if [ -z "$fref" ]; then
      fref="$json"
    else
      diff -q "$fref" "$json" \
        || { echo "FAIL: fleet trace snapshot differs from $fref"; exit 1; }
      diff -q "$fref.traffic" "$json.traffic" \
        || { echo "FAIL: fleet traffic snapshot differs"; exit 1; }
    fi
  done
done

# Placement invariance: on an admission-lossless config the per-request
# results (outcome, launches, exec, checksum) must not change with the
# shard count or the batch limit — only the timing may.
for combo in "1 1" "4 8" "6 2"; do
  set -- $combo
  OMPSIMD_SERVE_QUEUE=100000 \
    "$run" serve --traffic 200 --profile flash --seed 11 \
    --shards "$1" --batch "$2" --results "$out/results_$1_$2.json" > /dev/null
done
diff -q "$out/results_1_1.json" "$out/results_4_8.json" \
  || { echo "FAIL: results changed with the shard/batch shape"; exit 1; }
diff -q "$out/results_1_1.json" "$out/results_6_2.json" \
  || { echo "FAIL: results changed with the shard/batch shape"; exit 1; }

# --- the heterogeneous fleet -------------------------------------------
# Four shards carrying four zoo devices with affinity placement on.
# Two contracts: the full snapshot is byte-identical across engine x
# pool like everything else, and shuffling the device multiset over
# shard ids moves no byte of the per-request results (placement,
# stealing and affinity key on device names, never shard ids).
zoo="w32-hw,w64-hw,w16-sw,w32-l2tiny"
href=""
for engine in compile walk; do
  for domains in 0 3; do
    json="$out/hetero_${engine}_${domains}.json"
    echo "== hetero OMPSIMD_EVAL=$engine OMPSIMD_DOMAINS=$domains =="
    OMPSIMD_EVAL="$engine" OMPSIMD_DOMAINS="$domains" \
      OMPSIMD_FLEET_DEVICES="$zoo" \
      "$run" serve --traffic 200 --profile mixed --seed 7 \
      --shards 4 --batch 8 --json "$json" > "$out/hetero_${engine}_${domains}.log"
    if [ -z "$href" ]; then
      href="$json"
    else
      diff -q "$href" "$json" \
        || { echo "FAIL: hetero snapshot differs from $href"; exit 1; }
    fi
  done
done

# device-shuffle identity, on an admission-lossless config
for perm in "$zoo" "w32-l2tiny,w32-hw,w64-hw,w16-sw" "w16-sw,w32-l2tiny,w32-hw,w64-hw"; do
  OMPSIMD_SERVE_QUEUE=100000 OMPSIMD_FLEET_DEVICES="$perm" \
    "$run" serve --traffic 200 --profile flash --seed 11 \
    --shards 4 --batch 8 --results "$out/hetero_perm.json" > /dev/null
  if [ ! -f "$out/hetero_perm_ref.json" ]; then
    mv "$out/hetero_perm.json" "$out/hetero_perm_ref.json"
  else
    diff -q "$out/hetero_perm_ref.json" "$out/hetero_perm.json" \
      || { echo "FAIL: results moved under device shuffle ($perm)"; exit 1; }
  fi
done

# the hetero replay must actually have routed off the plain ring
hstats="$(grep -o '"fleet": {[^}]*}' "$href")"
case "$hstats" in
  *'"affinity_moves": 0'*)
    echo "FAIL: hetero replay never exercised affinity placement"; exit 1 ;;
esac

# the fleet replay must have exercised its machinery
fstats="$(grep -o '"fleet": {[^}]*}' "$fref.traffic")"
case "$fstats" in
  *'"batches": 0,'*) echo "FAIL: fleet traffic produced no merged grids"; exit 1 ;;
esac
case "$fstats" in
  *'"steals": 0,'*) echo "FAIL: fleet traffic produced no steals"; exit 1 ;;
esac

tail -n 8 "$out/serve_compile_0.log"
tail -n 4 "$out/fleet_compile_0.log"
echo "serve smoke OK: snapshots bit-identical across engines and pools"
