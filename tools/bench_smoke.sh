#!/bin/sh
# Smoke-test the bench harness under both pool settings at tiny scale.
#
# Runs bench/main.exe twice — sequential (OMPSIMD_DOMAINS=0) and with a
# two-domain pool — each writing its Bechamel estimates to JSON, and
# checks both runs complete and produce the JSON.  This is a harness
# check (does the pool path survive a full bench sweep?), not a
# performance measurement: use BENCH_gpusim.json and a full-quota run
# for numbers.
#
# Usage: tools/bench_smoke.sh   (from the repo root)
set -eu

scale="${OMPSIMD_BENCH_SCALE:-0.05}"
quota="${OMPSIMD_BENCH_QUOTA:-0.1}"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

dune build bench/main.exe

for domains in 0 2; do
  json="$out/bench_domains_$domains.json"
  echo "== OMPSIMD_DOMAINS=$domains (scale $scale, quota ${quota}s) =="
  OMPSIMD_DOMAINS="$domains" \
  OMPSIMD_BENCH_SCALE="$scale" \
  OMPSIMD_BENCH_QUOTA="$quota" \
  OMPSIMD_BENCH_JSON="$json" \
    dune exec bench/main.exe > "$out/bench_domains_$domains.log" 2>&1
  test -s "$json" || { echo "FAIL: $json missing or empty"; exit 1; }
  grep -q '"ms_per_run"' "$json" || { echo "FAIL: $json malformed"; exit 1; }
  tail -n 12 "$out/bench_domains_$domains.log"
done

echo "bench smoke OK: both domain settings completed"
