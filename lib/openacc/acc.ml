type ctx = Omprt.Team.ctx

let parallel ~cfg ?(num_gangs = 0) ?(num_workers = 4) ?(vector_length = 32)
    ?(mode = Omprt.Mode.Spmd) body =
  let num_gangs =
    if num_gangs > 0 then num_gangs else 2 * cfg.Gpusim.Config.num_sms
  in
  if vector_length <= 0 || cfg.Gpusim.Config.warp_size mod vector_length <> 0
  then invalid_arg "Acc.parallel: vector_length must divide the warp";
  if num_workers <= 0 then invalid_arg "Acc.parallel: num_workers";
  (* hardware blocks are warp multiples: round the worker*vector product
     up, as real OpenACC implementations do *)
  let ws = cfg.Gpusim.Config.warp_size in
  let team_threads = (((num_workers * vector_length) + ws - 1) / ws) * ws in
  let clauses =
    Openmp.Clause.(
      none |> num_teams num_gangs
      |> num_threads team_threads
      |> simdlen vector_length |> parallel_mode mode)
  in
  Openmp.Omp.target_teams ~cfg ~clauses body

let loop_gang ctx ~trip f =
  (* one contiguous chunk per gang, iterated by each gang's workers'
     region code — the distribute level *)
  Omprt.Workshare.distribute ctx ~trip f

let loop_worker ctx ~trip f = Omprt.Workshare.omp_for ctx ~trip f

let loop_gang_worker ctx ~trip f =
  Omprt.Workshare.distribute_parallel_for ctx ~trip f

let loop_vector ctx ~trip f =
  Omprt.Simd.simd ctx ~fn_id:2 ~trip (fun _ iv _ -> f iv)

let loop_vector_sum ctx ~trip f =
  Omprt.Simd.simd_sum ctx ~fn_id:3 ~trip (fun _ iv _ -> f iv)

let gang_num = Openmp.Omp.team_num
let worker_num = Openmp.Omp.thread_num
let vector_lane = Openmp.Omp.simd_lane
