(** OpenACC-flavoured facade over the three-level runtime.

    The paper's §1 lines up the hierarchies: OpenACC's {e gang} maps to
    OpenMP's [teams] (thread blocks), {e worker} to [parallel] threads
    (warps / SIMD groups), and {e vector} to [simd] lanes.  Several of the
    paper's benchmarks were "adapted from OpenACC which has a mature
    three-leveled parallel implementation" — this module lets those
    adaptations read like their sources while executing on the same
    simulated device runtime.

    [vector_length] plays OpenACC's role of the paper's [simdlen]: it
    becomes the SIMD group size and must divide the warp. *)

type ctx = Omprt.Team.ctx

val parallel :
  cfg:Gpusim.Config.t ->
  ?num_gangs:int ->
  ?num_workers:int ->
  ?vector_length:int ->
  ?mode:Omprt.Mode.t ->
  (ctx -> unit) ->
  Gpusim.Device.report
(** [acc parallel] — launch a compute region.  [num_workers] is the count
    of OpenACC workers per gang (each backed by one SIMD group of
    [vector_length] lanes, so the team runs
    [num_workers * vector_length] threads).  [mode] picks the paper's
    execution model for worker-level code (default SPMD). *)

val loop_gang : ctx -> trip:int -> (int -> unit) -> unit
(** [acc loop gang] — split across gangs (= teams). *)

val loop_worker : ctx -> trip:int -> (int -> unit) -> unit
(** [acc loop worker] — split across the gang's workers. *)

val loop_gang_worker : ctx -> trip:int -> (int -> unit) -> unit
(** [acc loop gang worker] — the combined distribution. *)

val loop_vector : ctx -> trip:int -> (int -> unit) -> unit
(** [acc loop vector] — lockstep across the worker's vector lanes (the
    paper's simd level). *)

val loop_vector_sum : ctx -> trip:int -> (int -> float) -> float
(** [acc loop vector reduction(+:x)]. *)

val gang_num : ctx -> int
val worker_num : ctx -> int
val vector_lane : ctx -> int
