(** The paper's purpose-built benchmarking kernel (§6.3): "a small inner
    loop that fits into a single warp, but is not collapsible with the
    outer-loop nest".

    Each outer iteration computes a row-dependent base value in region
    code (this is the non-collapsible data dependency), then a 32-trip
    inner loop does arithmetic-heavy work per element.  The paper runs the
    teams region SPMD and the parallel region generic, reporting a 2.15x
    speedup at SIMD group size 32. *)

type shape = { rows : int; inner : int; flops_per_elem : int; seed : int }

val default_shape : shape
(** 32-trip inner loop, compute-heavy body. *)

type instance

val generate : shape -> instance
val shape_of : instance -> shape
val reference : instance -> float array

val run :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  ?dedup:bool ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run
(** [pool] simulates teams on several host domains; [dedup] (default
    false) additionally declares the grid homogeneous — every row costs
    the same, so teams are classed by their distribute-chunk length
    ({!Omprt.Workshare.distribute_extent}).  Neither changes the report;
    [dedup] skips redundant blocks, so use it for timing sweeps only
    (the skipped teams' output rows stay unwritten). *)

val run_two_level :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?num_teams:int ->
  ?threads:int ->
  ?dedup:bool ->
  instance ->
  Harness.run
(** Serial inner loop (group size 1) — the paper's two-level baseline. *)

val verify : instance -> float array -> (unit, string) result
