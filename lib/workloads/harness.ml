type mode3 = {
  teams_mode : Omprt.Mode.t;
  parallel_mode : Omprt.Mode.t;
  group_size : int;
}

let spmd_simd ~group_size =
  {
    teams_mode = Omprt.Mode.Spmd;
    parallel_mode = Omprt.Mode.Spmd;
    group_size;
  }

let generic_simd ~group_size =
  {
    teams_mode = Omprt.Mode.Spmd;
    parallel_mode = Omprt.Mode.Generic;
    group_size;
  }

type run = { report : Gpusim.Device.report; output : float array }

let time r = r.report.Gpusim.Device.time_cycles

let verify_close ?(tolerance = 1e-6) ~expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d"
         (Array.length expected) (Array.length actual))
  else
    let bad = ref None in
    Array.iteri
      (fun i e ->
        if !bad = None then
          let a = actual.(i) in
          let scale = Float.max 1.0 (abs_float e) in
          if abs_float (a -. e) > tolerance *. scale then bad := Some (i, e, a))
      expected;
    match !bad with
    | None -> Ok ()
    | Some (i, e, a) ->
        Error (Printf.sprintf "mismatch at %d: expected %.9g, got %.9g" i e a)

let check_or_fail = function Ok () -> () | Error msg -> failwith msg
