module Prng = Ompsimd_util.Prng
module Memory = Gpusim.Memory
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type shape = { rows : int; inner : int; flops_per_elem : int; seed : int }

let default_shape = { rows = 8192; inner = 32; flops_per_elem = 128; seed = 3 }

type instance = {
  shape : shape;
  input : Memory.farray;
  output : Memory.farray;
}

let generate shape =
  if shape.rows <= 0 || shape.inner <= 0 then
    invalid_arg "Ideal.generate: rows and inner must be positive";
  let g = Prng.create ~seed:shape.seed in
  let n = shape.rows * shape.inner in
  let space = Memory.space () in
  {
    shape;
    input = Memory.of_float_array space (Array.init n (fun _ -> Prng.float g 1.0));
    output = Memory.falloc space n;
  }

let shape_of t = t.shape

(* The row-dependent base value: a short chain the compiler cannot fold
   into the inner loop (it depends only on the outer index). *)
let base_of_row r =
  let x = float_of_int (r + 1) in
  1.0 +. (1.0 /. x)

(* Per-element polynomial evaluation: [flops_per_elem]/2 fused steps. *)
let poly ~steps base v =
  let acc = ref v in
  for _ = 1 to steps do
    acc := (!acc *. base) +. 0.5
  done;
  !acc

let reference t =
  let input = Memory.to_float_array t.input in
  let steps = t.shape.flops_per_elem / 2 in
  Array.init
    (t.shape.rows * t.shape.inner)
    (fun idx ->
      let r = idx / t.shape.inner in
      poly ~steps (base_of_row r) input.(idx))

let run ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 256)
    ?(threads = 128) ?(dedup = false) ~(mode3 : Harness.mode3) t =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.output);
  Memory.fill t.output 0.0;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = mode3.Harness.teams_mode;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload =
    Payload.of_list [ Payload.Farr t.input; Payload.Farr t.output ]
  in
  (* Every row costs the same, so teams are distinguished only by how
     many rows their distribute chunk holds. *)
  let block_class =
    if dedup then
      Some (Workshare.distribute_extent ~trip:t.shape.rows ~num_teams)
    else None
  in
  let steps = t.shape.flops_per_elem / 2 in
  let report =
    Target.launch ~cfg ?pool ?trace ?block_class ~params
      ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:mode3.Harness.parallel_mode
          ~simd_len:mode3.Harness.group_size ~payload ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:t.shape.rows
              (fun r ->
                (* region code: the non-collapsible per-row base value *)
                Team.charge_special ctx 1;
                Team.charge_flops ctx 2;
                let base = base_of_row r in
                Simd.simd ctx ~payload ~fn_id:1 ~trip:t.shape.inner
                  (fun ctx j _ ->
                    let th = ctx.Team.th in
                    let idx = (r * t.shape.inner) + j in
                    let v = Memory.fget t.input th idx in
                    Team.charge_flops ctx t.shape.flops_per_elem;
                    Memory.fset t.output th idx (poly ~steps base v)))))
  in
  { Harness.report; output = Memory.to_float_array t.output }

let run_two_level ~cfg ?pool ?num_teams ?threads ?dedup t =
  run ~cfg ?pool ?num_teams ?threads ?dedup
    ~mode3:(Harness.spmd_simd ~group_size:1) t

let verify t output =
  Harness.verify_close ~tolerance:1e-6 ~expected:(reference t) output
