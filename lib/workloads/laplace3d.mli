(** laplace3d — 3-D heat-diffusion (7-point Jacobi) kernel (§6.4).

    Three nested parallelizable loops over the grid interior: the outer
    two are flattened across teams x OpenMP threads, the innermost (k,
    unit stride) is the [simd] loop.  Used in the paper to measure the
    cost of the execution modes, not a simd win: "No SIMD" (two-level,
    group size 1), "SPMD SIMD" and "generic SIMD" should all be within a
    few percent, generic trailing by roughly 15%. *)

type shape = { n : int; seed : int }

val default_shape : shape

type instance

val generate : shape -> instance
val shape_of : instance -> shape

val reference : instance -> float array
(** One Jacobi sweep over the interior; boundaries carried through. *)

val run :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  ?dedup:bool ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run
(** [pool] simulates teams on several host domains; [dedup] (default
    false) declares the Jacobi grid homogeneous — teams are classed by
    their distribute-chunk length over the flattened (i,j) interior
    ({!Omprt.Workshare.distribute_extent}).  Neither changes the report;
    [dedup] is for timing sweeps only (skipped teams' output stays
    unwritten). *)

val run_no_simd :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?num_teams:int ->
  ?threads:int ->
  ?dedup:bool ->
  instance ->
  Harness.run
(** The paper's "No SIMD" reference point: two-level, serial k loop. *)

val verify : instance -> float array -> (unit, string) result
