(** Shared plumbing for the benchmark workloads: the three-level mode
    descriptor, run results, and verification helpers. *)

type mode3 = {
  teams_mode : Omprt.Mode.t;
  parallel_mode : Omprt.Mode.t;
  group_size : int;  (** SIMD group size ([simdlen]) *)
}

val spmd_simd : group_size:int -> mode3
(** teams SPMD + parallel SPMD — the paper's "SPMD SIMD" configuration. *)

val generic_simd : group_size:int -> mode3
(** teams SPMD + parallel generic — the paper's "generic SIMD"
    configuration (workers reached through the SIMD state machine). *)

type run = { report : Gpusim.Device.report; output : float array }

val time : run -> float
(** Simulated kernel cycles. *)

val verify_close :
  ?tolerance:float -> expected:float array -> float array -> (unit, string) result
(** Element-wise comparison with a relative/absolute tolerance; the error
    message pinpoints the first mismatch. *)

val check_or_fail : (unit, string) result -> unit
(** @raise Failure with the message on [Error]. *)
