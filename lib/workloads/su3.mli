(** SU3_bench — lattice QCD SU(3) matrix-matrix multiply (§6.3).

    For every lattice site and each of the four directions, a 3x3 complex
    matrix product C = A x B.  Flattened, that is a 36-iteration inner
    loop (4 directions x 9 output elements) which the original benchmark
    "executed serially by each thread"; the paper applies [simd] to it.
    Both the teams and the parallel region run in SPMD mode, so the
    baseline is simply the SIMD variant with group size 1. *)

type shape = { sites : int; seed : int }

val default_shape : shape

val inner_trip : int
(** 36 — the paper's fixed inner trip count. *)

type instance

val generate : shape -> instance
val shape_of : instance -> shape

val reference : instance -> float array
(** Sequential host result: C as interleaved re/im floats. *)

val run :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  ?dedup:bool ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run
(** Three-level kernel; [group_size = 1] reproduces the serial-inner-loop
    baseline.  [pool] simulates teams on several host domains; [dedup]
    (default false) declares the grid homogeneous — teams are classed by
    (chunk extent, first-site parity), the parity capturing the line
    phase of the 576-byte site records.  Neither changes the report;
    [dedup] is for timing sweeps only (skipped teams' C stays
    unwritten). *)

val run_two_level :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?num_teams:int ->
  ?threads:int ->
  ?dedup:bool ->
  instance ->
  Harness.run
(** Convenience: [run] with SPMD/SPMD and group size 1. *)

val verify : instance -> float array -> (unit, string) result
