(** sparse_matvec — CSR sparse matrix-vector product (§6.3).

    Adapted, like the paper's version, from the OpenACC best-practices
    kernel: for every row, a short data-dependent inner loop over the
    row's nonzeros.  The paper could not use a reduction clause, so both
    variants accumulate into [y.(row)] with atomic updates; the
    reduction-clause variant is provided separately as the E6 extension.

    Two-level structure (the baseline): [teams distribute] over rows —
    which forces the teams region into generic mode — with an inner
    [parallel for] over the row's nonzeros on 32-thread teams.

    Three-level structure: combined [teams distribute parallel for] over
    rows (teams SPMD), [simd] over the nonzeros, parallel region generic. *)

type profile =
  | Uniform of int  (** every row has exactly this many nonzeros *)
  | Banded of { mean : int; spread : int }
      (** row length uniform in \[mean-spread, mean+spread\] *)
  | Power_law of { max_nnz : int; s : float }
      (** zipf-distributed row lengths — high variance, like the paper's
          "varies based on the sparsity" matrices *)

type shape = {
  rows : int;
  cols : int;
  profile : profile;
  band : int;  (** column indices fall within +/- band of the diagonal *)
  seed : int;
}

val default_shape : shape

type instance

val generate : shape -> instance
val shape_of : instance -> shape
val nnz : instance -> int
val row_lengths : instance -> int array

val reference : instance -> float array
(** Sequential host SpMV. *)

val run_two_level :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  instance ->
  Harness.run
(** [reset_l2] defaults to [true] (cold caches); pass [false] to measure
    a warm re-run, the paper's average-of-10 methodology.  [pool] fans
    the teams over host domains; row lengths are data-dependent, so spmv
    never declares a [block_class] — every block simulates. *)

val run_simd :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  ?schedule:Omprt.Workshare.schedule ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run
(** [schedule] applies to the within-team half of the combined rows loop
    (default static); [Dynamic] lets OpenMP threads steal rows, which
    matters for power-law row-length distributions. *)

val run_simd_reduction :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run
(** E6 extension: the inner product accumulated with the warp-shuffle
    reduction ({!Omprt.Simd.simd_sum}) instead of atomics. *)

val verify : instance -> float array -> (unit, string) result
