module Prng = Ompsimd_util.Prng
module Memory = Gpusim.Memory
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type shape = { ni : int; nj : int; nk : int; seed : int }

let default_shape = { ni = 48; nj = 48; nk = 48; seed = 5 }

type instance = {
  shape : shape;
  input : Memory.farray;
  output : Memory.farray;
}

let generate shape =
  if shape.ni <= 0 || shape.nj <= 0 || shape.nk <= 0 then
    invalid_arg "Muram.generate: dimensions must be positive";
  let g = Prng.create ~seed:shape.seed in
  let n = shape.ni * shape.nj * shape.nk in
  let space = Memory.space () in
  {
    shape;
    input = Memory.of_float_array space (Array.init n (fun _ -> Prng.float g 1.0));
    output = Memory.falloc space n;
  }

let shape_of t = t.shape

let in_idx s ~i ~j ~k = (((i * s.nj) + j) * s.nk) + k
let tr_idx s ~i ~j ~k = (((j * s.ni) + i) * s.nk) + k

let reference_transpose t =
  let s = t.shape in
  let input = Memory.to_float_array t.input in
  let out = Array.make (Array.length input) 0.0 in
  for i = 0 to s.ni - 1 do
    for j = 0 to s.nj - 1 do
      for k = 0 to s.nk - 1 do
        out.(tr_idx s ~i ~j ~k) <- input.(in_idx s ~i ~j ~k)
      done
    done
  done;
  out

(* Fourth-order interpolation weights along k (cell-centered to face). *)
let w0 = -0.0625
let w1 = 0.5625
let w2 = 0.5625
let w3 = -0.0625

let clamp lo hi v = max lo (min hi v)

let reference_interpol t =
  let s = t.shape in
  let input = Memory.to_float_array t.input in
  let out = Array.make (Array.length input) 0.0 in
  let at ~i ~j k = input.(in_idx s ~i ~j ~k:(clamp 0 (s.nk - 1) k)) in
  for i = 0 to s.ni - 1 do
    for j = 0 to s.nj - 1 do
      for k = 0 to s.nk - 1 do
        out.(in_idx s ~i ~j ~k) <-
          (w0 *. at ~i ~j (k - 1))
          +. (w1 *. at ~i ~j k)
          +. (w2 *. at ~i ~j (k + 1))
          +. (w3 *. at ~i ~j (k + 2))
      done
    done
  done;
  out

let launch ~cfg ?pool ?trace ~reset_l2 ~num_teams ~threads ~(mode3 : Harness.mode3) t body =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.output);
  Memory.fill t.output 0.0;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = mode3.Harness.teams_mode;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload =
    Payload.of_list [ Payload.Farr t.input; Payload.Farr t.output ]
  in
  let s = t.shape in
  let report =
    Target.launch ~cfg ?pool ?trace ~params ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:mode3.Harness.parallel_mode
          ~simd_len:mode3.Harness.group_size ~payload ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:(s.ni * s.nj)
              (fun ij ->
                Team.charge_alu ctx 4;
                let i = ij / s.nj and j = ij mod s.nj in
                Simd.simd ctx ~payload ~fn_id:1 ~trip:s.nk (fun ctx k _ ->
                    body ctx ~i ~j ~k))))
  in
  { Harness.report; output = Memory.to_float_array t.output }

let run_transpose ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 216) ?(threads = 128) ~mode3 t =
  let s = t.shape in
  launch ~cfg ?pool ?trace ~reset_l2 ~num_teams ~threads ~mode3 t (fun ctx ~i ~j ~k ->
      let th = ctx.Team.th in
      let v = Memory.fget t.input th (in_idx s ~i ~j ~k) in
      Team.charge_alu ctx 2 (* index arithmetic *);
      Memory.fset t.output th (tr_idx s ~i ~j ~k) v)

let run_interpol ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 216) ?(threads = 128) ~mode3 t =
  let s = t.shape in
  launch ~cfg ?pool ?trace ~reset_l2 ~num_teams ~threads ~mode3 t (fun ctx ~i ~j ~k ->
      let th = ctx.Team.th in
      let at k' =
        Memory.fget t.input th (in_idx s ~i ~j ~k:(clamp 0 (s.nk - 1) k'))
      in
      let v =
        (w0 *. at (k - 1)) +. (w1 *. at k) +. (w2 *. at (k + 1))
        +. (w3 *. at (k + 2))
      in
      Team.charge_flops ctx 7;
      Memory.fset t.output th (in_idx s ~i ~j ~k) v)

let verify_transpose t output =
  Harness.verify_close ~tolerance:1e-6 ~expected:(reference_transpose t) output

let verify_interpol t output =
  Harness.verify_close ~tolerance:1e-6 ~expected:(reference_interpol t) output
