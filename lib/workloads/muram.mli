(** muram_transpose and muram_interpol — kernels adapted (like the
    paper's) from the MURaM radiative-MHD code's OpenACC port (§6.4).

    [transpose] permutes the leading two axes of a 3-D field with the
    unit-stride axis innermost; [interpol] is a fourth-order interpolation
    stencil along the innermost axis.  Both have three parallelizable
    loops and are used to compare execution-mode overhead (Fig 10). *)

type shape = { ni : int; nj : int; nk : int; seed : int }

val default_shape : shape

type instance

val generate : shape -> instance
val shape_of : instance -> shape

val reference_transpose : instance -> float array
val reference_interpol : instance -> float array

val run_transpose :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run

val run_interpol :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?reset_l2:bool ->
  ?num_teams:int ->
  ?threads:int ->
  mode3:Harness.mode3 ->
  instance ->
  Harness.run

val verify_transpose : instance -> float array -> (unit, string) result
val verify_interpol : instance -> float array -> (unit, string) result
