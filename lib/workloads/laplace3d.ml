module Prng = Ompsimd_util.Prng
module Memory = Gpusim.Memory
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type shape = { n : int; seed : int }

let default_shape = { n = 48; seed = 4 }

type instance = {
  shape : shape;
  u : Memory.farray;
  unew : Memory.farray;
}

let idx ~n ~i ~j ~k = (((i * n) + j) * n) + k

let generate shape =
  if shape.n < 3 then invalid_arg "Laplace3d.generate: n must be >= 3";
  let g = Prng.create ~seed:shape.seed in
  let n3 = shape.n * shape.n * shape.n in
  let space = Memory.space () in
  {
    shape;
    u = Memory.of_float_array space (Array.init n3 (fun _ -> Prng.float g 1.0));
    unew = Memory.falloc space n3;
  }

let shape_of t = t.shape

let reference t =
  let n = t.shape.n in
  let u = Memory.to_float_array t.u in
  let out = Array.copy u in
  for i = 1 to n - 2 do
    for j = 1 to n - 2 do
      for k = 1 to n - 2 do
        out.(idx ~n ~i ~j ~k) <-
          (u.(idx ~n ~i:(i - 1) ~j ~k)
          +. u.(idx ~n ~i:(i + 1) ~j ~k)
          +. u.(idx ~n ~i ~j:(j - 1) ~k)
          +. u.(idx ~n ~i ~j:(j + 1) ~k)
          +. u.(idx ~n ~i ~j ~k:(k - 1))
          +. u.(idx ~n ~i ~j ~k:(k + 1)))
          /. 6.0
      done
    done
  done;
  out

let run ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 216)
    ?(threads = 128) ?(dedup = false) ~(mode3 : Harness.mode3) t =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.unew);
  let n = t.shape.n in
  (* boundaries are carried over unchanged, as in the reference *)
  let src = Memory.to_float_array t.u in
  Array.iteri (fun i v -> Memory.host_set t.unew i v) src;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = mode3.Harness.teams_mode;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload = Payload.of_list [ Payload.Farr t.u; Payload.Farr t.unew ] in
  let interior = n - 2 in
  (* Every (i,j) column sweeps the same-length unit-stride k row, so
     teams differ only in how many columns their chunk holds and where
     the chunk sits relative to the j wrap-around (columns adjacent in j
     share stencil lines; a chunk crossing a row boundary breaks the
     chain at a position given by [base mod interior]). *)
  let block_class =
    if dedup then
      let trip = interior * interior in
      Some
        (fun b ->
          let base, stop = Workshare.distribute_bounds ~trip ~num_teams b in
          ((stop - base) * interior) + (base mod interior))
    else None
  in
  let report =
    Target.launch ~cfg ?pool ?trace ?block_class ~params
      ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:mode3.Harness.parallel_mode
          ~simd_len:mode3.Harness.group_size ~payload ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:(interior * interior)
              (fun ij ->
                Team.charge_alu ctx 4 (* i/j decode *);
                let i = (ij / interior) + 1 and j = (ij mod interior) + 1 in
                Simd.simd ctx ~payload ~fn_id:1 ~trip:interior
                  (fun ctx kk _ ->
                    let th = ctx.Team.th in
                    let k = kk + 1 in
                    let s =
                      Memory.fget t.u th (idx ~n ~i:(i - 1) ~j ~k)
                      +. Memory.fget t.u th (idx ~n ~i:(i + 1) ~j ~k)
                      +. Memory.fget t.u th (idx ~n ~i ~j:(j - 1) ~k)
                      +. Memory.fget t.u th (idx ~n ~i ~j:(j + 1) ~k)
                      +. Memory.fget t.u th (idx ~n ~i ~j ~k:(k - 1))
                      +. Memory.fget t.u th (idx ~n ~i ~j ~k:(k + 1))
                    in
                    Team.charge_flops ctx 7;
                    Memory.fset t.unew th (idx ~n ~i ~j ~k) (s /. 6.0)))))
  in
  { Harness.report; output = Memory.to_float_array t.unew }

let run_no_simd ~cfg ?pool ?num_teams ?threads ?dedup t =
  run ~cfg ?pool ?num_teams ?threads ?dedup
    ~mode3:(Harness.spmd_simd ~group_size:1) t

let verify t output =
  Harness.verify_close ~tolerance:1e-6 ~expected:(reference t) output
