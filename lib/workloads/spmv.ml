module Prng = Ompsimd_util.Prng
module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type profile =
  | Uniform of int
  | Banded of { mean : int; spread : int }
  | Power_law of { max_nnz : int; s : float }

type shape = {
  rows : int;
  cols : int;
  profile : profile;
  band : int;
  seed : int;
}

let default_shape =
  {
    rows = 4096;
    cols = 4096;
    profile = Banded { mean = 24; spread = 16 };
    band = 512;
    seed = 1;
  }

type instance = {
  shape : shape;
  row_ptr : Memory.iarray;
  col_idx : Memory.iarray;
  values : Memory.farray;
  x : Memory.farray;
  y : Memory.farray;
  nnz : int;
  lengths : int array;
}

let row_length g profile =
  match profile with
  | Uniform n -> n
  | Banded { mean; spread } ->
      max 0 (Prng.int_in g ~lo:(mean - spread) ~hi:(mean + spread))
  | Power_law { max_nnz; s } -> Prng.zipf g ~n:max_nnz ~s

let generate shape =
  if shape.rows <= 0 || shape.cols <= 0 then
    invalid_arg "Spmv.generate: rows and cols must be positive";
  let g = Prng.create ~seed:shape.seed in
  let lengths = Array.init shape.rows (fun _ -> row_length g shape.profile) in
  let nnz = Array.fold_left ( + ) 0 lengths in
  let row_ptr = Array.make (shape.rows + 1) 0 in
  for r = 0 to shape.rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r) + lengths.(r)
  done;
  let col_idx = Array.make (max 1 nnz) 0 in
  let values = Array.make (max 1 nnz) 0.0 in
  for r = 0 to shape.rows - 1 do
    for k = row_ptr.(r) to row_ptr.(r + 1) - 1 do
      (* columns land within a band around the diagonal, scaled to cols *)
      let center = r * shape.cols / shape.rows in
      let lo = max 0 (center - shape.band) in
      let hi = min (shape.cols - 1) (center + shape.band) in
      col_idx.(k) <- Prng.int_in g ~lo ~hi;
      values.(k) <- Prng.float g 2.0 -. 1.0
    done
  done;
  let space = Memory.space () in
  {
    shape;
    row_ptr = Memory.of_int_array space row_ptr;
    col_idx = Memory.of_int_array space col_idx;
    values = Memory.of_float_array space values;
    x = Memory.of_float_array space (Array.init shape.cols (fun i -> sin (float_of_int i)));
    y = Memory.falloc space shape.rows;
    nnz;
    lengths;
  }

let shape_of t = t.shape
let nnz t = t.nnz
let row_lengths t = Array.copy t.lengths

let reference t =
  let row_ptr = Memory.to_int_array t.row_ptr in
  let col_idx = Memory.to_int_array t.col_idx in
  let values = Memory.to_float_array t.values in
  let x = Memory.to_float_array t.x in
  Array.init t.shape.rows (fun r ->
      let acc = ref 0.0 in
      for k = row_ptr.(r) to row_ptr.(r + 1) - 1 do
        acc := !acc +. (values.(k) *. x.(col_idx.(k)))
      done;
      !acc)

(* The outlined inner loop captures the five CSR arrays plus the scalar
   loop state (row, lo, hi, n) — nine pointer-sized slots, which is what
   makes the sharing-space slice size matter at large group counts
   (§5.3.1): at 2 KiB split over 33+ groups a slice can no longer hold
   this payload and every simd region pays the global fallback. *)
let payload_of t =
  Payload.of_list
    [
      Payload.Iarr t.row_ptr;
      Payload.Iarr t.col_idx;
      Payload.Farr t.values;
      Payload.Farr t.x;
      Payload.Farr t.y;
      Payload.Int (ref 0);
      Payload.Int (ref 0);
      Payload.Int (ref 0);
      Payload.Int (ref t.shape.rows);
    ]

(* One nonzero: load value and column, gather x, multiply-accumulate. *)
let element ctx ~k ~row t =
  let th = ctx.Team.th in
  let v = Memory.fget t.values th k in
  let c = Memory.iget t.col_idx th k in
  let xv = Memory.fget t.x th c in
  Team.charge_flops ctx 2;
  let (_ : float) = Memory.atomic_fadd t.y th row (v *. xv) in
  ()

let result t report =
  { Harness.report; output = Memory.to_float_array t.y }

let run_two_level ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 256) ?(threads = 32) t =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.y);
  Memory.fill t.y 0.0;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = Mode.Generic;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload = payload_of t in
  let report =
    Target.launch ~cfg ?pool ?trace ~params ~dispatch_table_size:2 (fun ctx ->
        (* teams distribute over rows: the team main walks its rows and
           opens a parallel region per row (generic teams mode). *)
        Workshare.distribute ctx ~trip:t.shape.rows (fun row ->
            let th = ctx.Team.th in
            let lo = Memory.iget t.row_ptr th row in
            let hi = Memory.iget t.row_ptr th (row + 1) in
            Parallel.parallel ctx ~mode:Mode.Spmd ~simd_len:1 ~payload
              ~fn_id:0 (fun ctx _ ->
                Workshare.omp_for ctx ~trip:(hi - lo) (fun j ->
                    element ctx ~k:(lo + j) ~row t))))
  in
  result t report

let run_simd ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 256) ?(threads = 128)
    ?(schedule = Workshare.Static) ~(mode3 : Harness.mode3) t =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.y);
  Memory.fill t.y 0.0;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = mode3.Harness.teams_mode;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload = payload_of t in
  let report =
    Target.launch ~cfg ?pool ?trace ~params ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:mode3.Harness.parallel_mode
          ~simd_len:mode3.Harness.group_size ~payload ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~schedule ~trip:t.shape.rows
              (fun row ->
                let th = ctx.Team.th in
                let lo = Memory.iget t.row_ptr th row in
                let hi = Memory.iget t.row_ptr th (row + 1) in
                Simd.simd ctx ~payload ~fn_id:1 ~trip:(hi - lo)
                  (fun ctx j _ -> element ctx ~k:(lo + j) ~row t))))
  in
  result t report

let run_simd_reduction ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 256) ?(threads = 128)
    ~(mode3 : Harness.mode3) t =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.y);
  Memory.fill t.y 0.0;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = mode3.Harness.teams_mode;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload = payload_of t in
  let report =
    Target.launch ~cfg ?pool ?trace ~params ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:mode3.Harness.parallel_mode
          ~simd_len:mode3.Harness.group_size ~payload ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:t.shape.rows
              (fun row ->
                let th = ctx.Team.th in
                let lo = Memory.iget t.row_ptr th row in
                let hi = Memory.iget t.row_ptr th (row + 1) in
                let dot =
                  Simd.simd_sum ctx ~payload ~fn_id:1 ~trip:(hi - lo)
                    (fun ctx j _ ->
                      let th = ctx.Team.th in
                      let k = lo + j in
                      let v = Memory.fget t.values th k in
                      let c = Memory.iget t.col_idx th k in
                      let xv = Memory.fget t.x th c in
                      Team.charge_flops ctx 2;
                      v *. xv)
                in
                (* single store per row: in SPMD mode every lane holds the
                   total, so only the group leader writes *)
                let g = Team.geometry ctx.Team.team in
                if
                  Omprt.Simd_group.is_simd_group_leader g
                    ~tid:th.Gpusim.Thread.tid
                then Memory.fset t.y th row dot)))
  in
  result t report

let verify t output =
  Harness.verify_close ~tolerance:1e-6 ~expected:(reference t) output
