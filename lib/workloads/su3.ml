module Prng = Ompsimd_util.Prng
module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type shape = { sites : int; seed : int }

let default_shape = { sites = 4096; seed = 2 }
let inner_trip = 36

(* Complex 3x3 matrices stored as interleaved re/im doubles.
   A: sites x 4 x 9 x 2, B: 4 x 9 x 2 (shared across sites), C like A. *)
type instance = {
  shape : shape;
  a : Memory.farray;
  b : Memory.farray;
  c : Memory.farray;
}

let a_floats sites = sites * 4 * 9 * 2
let b_floats = 4 * 9 * 2

let generate shape =
  if shape.sites <= 0 then invalid_arg "Su3.generate: sites must be positive";
  let g = Prng.create ~seed:shape.seed in
  let space = Memory.space () in
  let rand n = Array.init n (fun _ -> Prng.float g 2.0 -. 1.0) in
  {
    shape;
    a = Memory.of_float_array space (rand (a_floats shape.sites));
    b = Memory.of_float_array space (rand b_floats);
    c = Memory.falloc space (a_floats shape.sites);
  }

let shape_of t = t.shape

(* Index helpers over the flattened complex layout. *)
let a_idx ~site ~dir ~i ~k = 2 * ((((site * 4) + dir) * 9) + (i * 3) + k)
let b_idx ~dir ~k ~j = 2 * ((dir * 9) + (k * 3) + j)
let c_idx = a_idx

let reference t =
  let a = Memory.to_float_array t.a in
  let b = Memory.to_float_array t.b in
  let c = Array.make (a_floats t.shape.sites) 0.0 in
  for site = 0 to t.shape.sites - 1 do
    for dir = 0 to 3 do
      for i = 0 to 2 do
        for j = 0 to 2 do
          let re = ref 0.0 and im = ref 0.0 in
          for k = 0 to 2 do
            let ai = a_idx ~site ~dir ~i ~k and bi = b_idx ~dir ~k ~j in
            let ar = a.(ai) and ai' = a.(ai + 1) in
            let br = b.(bi) and bi' = b.(bi + 1) in
            re := !re +. ((ar *. br) -. (ai' *. bi'));
            im := !im +. ((ar *. bi') +. (ai' *. br))
          done;
          let ci = c_idx ~site ~dir ~i ~k:j in
          c.(ci) <- !re;
          c.(ci + 1) <- !im
        done
      done
    done
  done;
  c

(* One of the 36 inner iterations: decode (dir, i, j), do the 3-term
   complex dot product. *)
let element ctx ~site ~e t =
  let th = ctx.Team.th in
  let dir = e / 9 in
  let rem = e mod 9 in
  let i = rem / 3 and j = rem mod 3 in
  Team.charge_alu ctx 4 (* index decode *);
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to 2 do
    let ai = a_idx ~site ~dir ~i ~k and bi = b_idx ~dir ~k ~j in
    let ar = Memory.fget t.a th ai and ai' = Memory.fget t.a th (ai + 1) in
    let br = Memory.fget t.b th bi and bi' = Memory.fget t.b th (bi + 1) in
    re := !re +. ((ar *. br) -. (ai' *. bi'));
    im := !im +. ((ar *. bi') +. (ai' *. br));
    Team.charge_flops ctx 8
  done;
  let ci = c_idx ~site ~dir ~i ~k:j in
  Memory.fset t.c th ci !re;
  Memory.fset t.c th (ci + 1) !im

let run ~cfg ?pool ?trace ?(reset_l2 = true) ?(num_teams = 256)
    ?(threads = 128) ?(dedup = false) ~(mode3 : Harness.mode3) t =
  if reset_l2 then Memory.l2_reset (Memory.space_of_farray t.c);
  Memory.fill t.c 0.0;
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = mode3.Harness.teams_mode;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let payload =
    Payload.of_list [ Payload.Farr t.a; Payload.Farr t.b; Payload.Farr t.c ]
  in
  (* Every site does the same 36-element complex product, but a site
     record is 576 bytes = 4.5 cache lines, so the line phase of a
     team's chunk alternates with the parity of its first site: class =
     (chunk extent, start parity). *)
  let block_class =
    if dedup then
      Some
        (fun b ->
          let base, stop =
            Workshare.distribute_bounds ~trip:t.shape.sites ~num_teams b
          in
          (2 * (stop - base)) + (base land 1))
    else None
  in
  let report =
    Target.launch ~cfg ?pool ?trace ?block_class ~params
      ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:mode3.Harness.parallel_mode
          ~simd_len:mode3.Harness.group_size ~payload ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:t.shape.sites
              (fun site ->
                Simd.simd ctx ~payload ~fn_id:1 ~trip:inner_trip
                  (fun ctx e _ -> element ctx ~site ~e t))))
  in
  { Harness.report; output = Memory.to_float_array t.c }

let run_two_level ~cfg ?pool ?num_teams ?threads ?dedup t =
  run ~cfg ?pool ?num_teams ?threads ?dedup
    ~mode3:(Harness.spmd_simd ~group_size:1) t

let verify t output =
  Harness.verify_close ~tolerance:1e-6 ~expected:(reference t) output
