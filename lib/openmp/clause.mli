(** Directive clauses — the knobs a pragma line carries, assembled into
    the runtime's launch parameters.

    [simdlen] must divide the warp; [num_threads] must be a warp
    multiple; defaults follow LLVM's: 128 threads per team, SPMD
    everywhere the program shape allows, simdlen 1 (two-level
    compatibility) unless a [simd] construct appears. *)

type schedule = Static | Static_chunked of int | Dynamic of int

type t = {
  num_teams : int option;
  num_threads : int option;
  teams_mode : Omprt.Mode.t option;  (** force generic/SPMD teams *)
  parallel_mode : Omprt.Mode.t option;
  simdlen : int option;
  schedule : schedule;
  sharing_bytes : int option;
}

val none : t

val num_teams : int -> t -> t
val num_threads : int -> t -> t
val teams_mode : Omprt.Mode.t -> t -> t
val parallel_mode : Omprt.Mode.t -> t -> t
val simdlen : int -> t -> t
val schedule : schedule -> t -> t
val sharing_bytes : int -> t -> t

val resolve :
  cfg:Gpusim.Config.t -> t -> Omprt.Team.params * Omprt.Mode.t * int
(** Launch parameters, the parallel-region mode, and the simdlen, with
    defaults filled in (teams = 2 per SM, threads = 128, everything
    SPMD, simdlen 1).
    @raise Invalid_argument on clause values the runtime would reject. *)

val workshare_schedule : t -> Omprt.Workshare.schedule
