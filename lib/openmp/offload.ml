type compiled = {
  program : Ompir.Outline.program;
  globalization : Ompir.Globalize.report list;
  region_modes : (string * Omprt.Mode.t) list;
  guards_inserted : int;
  may_races : Ompir.Racecheck.finding list;
}

type knobs = {
  guardize : bool;
  fold : bool;
  racecheck : bool;
  passes : string;
}

let default_knobs =
  { guardize = false; fold = true; racecheck = false; passes = "" }

(* A blank [passes] spec defers to OMPSIMD_PASSES (per the Env
   convention, unset and blank both mean "default"), so the env knob
   flows through every call site — including the serve scheduler, whose
   config carries [default_knobs] — without each one re-reading it.
   Resolution happens in BOTH [cache_key] and [compile_with], so the key
   and the artifact always agree and flipping the variable can never
   alias a differently-optimized cached variant. *)
let effective_passes knobs =
  if knobs.passes <> "" then knobs.passes
  else
    match Ompsimd_util.Env.var "OMPSIMD_PASSES" with
    | Some spec -> spec
    | None -> ""

(* The cache identity of a compilation: the content digest of the IR
   plus every knob that changes what [compile] produces, plus the
   evaluation engine (the staged evaluator and the walker are
   bit-identical by contract, but a service replay pins the engine into
   the key so switching OMPSIMD_EVAL can never alias a cached artifact
   from the other engine). *)
let cache_key ?(knobs = default_knobs) kernel =
  let engine =
    match Ompir.Compile.engine_of_env () with
    | Ompir.Compile.Staged -> "staged"
    | Ompir.Compile.Walk -> "walk"
  in
  let passes =
    (* validate eagerly — a malformed spec must fail fast naming the
       variable, not surface later as a compile of something else *)
    let spec = effective_passes knobs in
    ignore (Ompir.Passes.pipeline_of_spec spec);
    match String.trim spec with "" -> "default" | s -> s
  in
  Printf.sprintf "%s:g%db%dr%d:p[%s]:%s"
    (Ompir.Kdigest.hex kernel)
    (Bool.to_int knobs.guardize) (Bool.to_int knobs.fold)
    (Bool.to_int knobs.racecheck) passes engine

let compile ?(guardize = false) ?(fold = true) ?(racecheck = false)
    ?(passes = "") kernel =
  match Ompir.Check.kernel kernel with
  | Error es -> Error es
  | Ok () ->
      let pipeline =
        if not fold then []
        else
          Ompir.Passes.pipeline_of_spec
            (effective_passes { guardize; fold; racecheck; passes })
      in
      match Ompir.Passes.run_verified pipeline kernel with
      | Error (_pass, es) -> Error es
      | Ok kernel ->
      let kernel, guards =
        if guardize then Ompir.Spmdize.guardize kernel else (kernel, 0)
      in
      (* the static ompsan layer analyzes the kernel the device will run:
         after folding and guardization, before outlining *)
      let may_races =
        if racecheck then Ompir.Racecheck.check_kernel kernel else []
      in
      let program = Ompir.Outline.run kernel in
      Ok
        {
          program;
          globalization = Ompir.Globalize.run program;
          region_modes = Ompir.Spmdize.analyze kernel;
          guards_inserted = guards;
          may_races;
        }

let compile_with ~knobs kernel =
  compile ~guardize:knobs.guardize ~fold:knobs.fold ~racecheck:knobs.racecheck
    ~passes:knobs.passes kernel

let remarks c =
  let outlined =
    List.map
      (fun (o : Ompir.Outline.outlined) ->
        Printf.sprintf "outlined fn %d (%s over %s): captures [%s]"
          o.Ompir.Outline.fn_id
          (match o.Ompir.Outline.kind with
          | `Simd -> "simd"
          | `Simd_sum -> "simd reduction(+)"
          | `Parallel_for -> "parallel for"
          | `Distribute_parallel_for -> "distribute parallel for")
          o.Ompir.Outline.loop_var
          (String.concat ", " o.Ompir.Outline.captures))
      c.program.Ompir.Outline.outlined
  in
  let globalized =
    List.concat_map
      (fun (r : Ompir.Globalize.report) ->
        List.map
          (fun name ->
            Printf.sprintf
              "fn %d: local %s globalized to shared memory (S4.3)"
              r.Ompir.Globalize.fn_id name)
          r.Ompir.Globalize.globalized)
      c.globalization
  in
  let modes =
    List.map
      (fun (var, mode) ->
        Printf.sprintf "parallel region over %s: %s mode" var
          (Omprt.Mode.to_string mode))
      c.region_modes
  in
  let guards =
    if c.guards_inserted > 0 then
      [
        Printf.sprintf
          "SPMDized with %d guard block(s): side effects execute on SIMD \
           mains and declared values broadcast (S7 / [16])"
          c.guards_inserted;
      ]
    else []
  in
  let races =
    List.map Ompir.Racecheck.finding_to_string c.may_races
  in
  outlined @ globalized @ modes @ guards @ races

(* Dynamic sharing-space sizing (§5.3.1): the globalization pass knows
   the largest payload this kernel will ever publish, and the launch
   geometry bounds how many publishers can hold a slice at once (one per
   SIMD group, plus the team main).  Reserving exactly that — instead of
   the full default slab — frees block shared memory for occupancy.
   Shrink-only: the clause/default budget is never exceeded, so a kernel
   whose payloads outgrow the budget degrades to the same global
   fallbacks it always had.

   [OMPSIMD_SHARING_BYTES] pins the reservation to an explicit byte
   count; [OMPSIMD_SHARING_DYNAMIC=0] disables the heuristic and uses
   the budget unchanged.  Sizing is a launch-time decision, not a
   compile-time one: it deliberately stays out of {!cache_key}. *)
let sharing_reservation ~budget ~num_threads ~simd_len program =
  match Ompsimd_util.Env.int "OMPSIMD_SHARING_BYTES" ~default:0 with
  | v when v > 0 -> v
  | v when v < 0 ->
      invalid_arg
        (Printf.sprintf "OMPSIMD_SHARING_BYTES must be positive, got %d" v)
  | _ ->
      if not (Ompsimd_util.Env.flag "OMPSIMD_SHARING_DYNAMIC" ~default:true)
      then budget
      else
        let footprint = Ompir.Globalize.footprint_bytes program in
        let publishers = (num_threads / max 1 simd_len) + 1 in
        max Omprt.Sharing.min_bytes (min budget (footprint * publishers))

let run ~cfg ?pool ?trace ?(clauses = Clause.none) ~bindings c =
  Gpusim.Ompsan.refresh_from_env ();
  Gpusim.Fault.refresh_from_env ();
  if !Gpusim.Ompsan.enabled then
    Gpusim.Ompsan.set_kernel c.program.Ompir.Outline.kernel.Ompir.Ir.kname;
  let params, _, simdlen = Clause.resolve ~cfg clauses in
  let sharing_bytes =
    sharing_reservation ~budget:params.Omprt.Team.sharing_bytes
      ~num_threads:params.Omprt.Team.num_threads ~simd_len:simdlen c.program
  in
  let parallel_mode =
    match clauses.Clause.parallel_mode with
    | Some m -> `Force m
    | None -> `Auto
  in
  let options =
    {
      Ompir.Eval.num_teams = params.Omprt.Team.num_teams;
      num_threads = params.Omprt.Team.num_threads;
      teams_mode = params.Omprt.Team.teams_mode;
      parallel_mode;
      simd_len = simdlen;
      sharing_bytes;
    }
  in
  match Ompir.Compile.engine_of_env () with
  | Ompir.Compile.Staged ->
      Ompir.Compile.run ~cfg ?pool ?trace ~options ~bindings c.program
  | Ompir.Compile.Walk ->
      Ompir.Eval.run ~cfg ?pool ?trace ~options ~bindings c.program
