type task_id = int

type pending = {
  p_id : task_id;
  p_name : string;
  p_kind : [ `Kernel | `H2d | `D2h ];
  p_depends : task_id list;
  p_run : unit -> float;  (* returns the duration *)
}

type entry = {
  id : task_id;
  name : string;
  kind : [ `Kernel | `H2d | `D2h ];
  start : float;
  finish : float;
}

type timeline = { entries : entry list; makespan : float }

type t = {
  bw : float;
  mutable next_id : int;
  mutable pending : pending list;  (* reversed *)
  mutable result : timeline option;
}

let create ?(interconnect_bytes_per_cycle = 23.0) () =
  if interconnect_bytes_per_cycle <= 0.0 then
    invalid_arg "Tasks.create: bandwidth must be positive";
  { bw = interconnect_bytes_per_cycle; next_id = 0; pending = []; result = None }

let add t ~depends ~name ~kind run =
  if t.result <> None then
    invalid_arg "Tasks: the queue was already waited on";
  List.iter
    (fun d ->
      if d < 0 || d >= t.next_id then
        invalid_arg "Tasks: dependence on an unknown task")
    depends;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.pending <-
    { p_id = id; p_name = name; p_kind = kind; p_depends = depends; p_run = run }
    :: t.pending;
  id

let kernel t ?(depends = []) ~name thunk =
  add t ~depends ~name ~kind:`Kernel (fun () ->
      (thunk ()).Gpusim.Device.time_cycles)

let transfer t ?(depends = []) ?(direction = `H2d) ~name ~bytes () =
  if bytes < 0 then invalid_arg "Tasks.transfer: negative bytes";
  let kind = (direction :> [ `Kernel | `H2d | `D2h ]) in
  add t ~depends ~name ~kind (fun () -> float_of_int bytes /. t.bw)

(* Engines: the device runs one kernel at a time; each copy direction has
   its own engine.  Tasks are enqueued in program order and scheduled
   earliest-ready-first, which is what a stream-per-task helper-thread
   implementation converges to for DAG-shaped programs. *)
let wait_all t =
  match t.result with
  | Some timeline -> timeline
  | None ->
      let tasks = Array.of_list (List.rev t.pending) in
      let finish_times = Hashtbl.create 16 in
      let engine_free = Hashtbl.create 4 in
      let engine_of = function `Kernel -> 0 | `H2d -> 1 | `D2h -> 2 in
      let free_at e = try Hashtbl.find engine_free e with Not_found -> 0.0 in
      let entries =
        Array.to_list tasks
        |> List.map (fun p ->
               let ready =
                 List.fold_left
                   (fun acc d -> Float.max acc (Hashtbl.find finish_times d))
                   0.0 p.p_depends
               in
               let engine = engine_of p.p_kind in
               let start = Float.max ready (free_at engine) in
               let duration = p.p_run () in
               let finish = start +. duration in
               Hashtbl.replace finish_times p.p_id finish;
               Hashtbl.replace engine_free engine finish;
               {
                 id = p.p_id;
                 name = p.p_name;
                 kind = p.p_kind;
                 start;
                 finish;
               })
      in
      let makespan =
        List.fold_left (fun acc e -> Float.max acc e.finish) 0.0 entries
      in
      let timeline = { entries; makespan } in
      t.result <- Some timeline;
      timeline

let makespan timeline = timeline.makespan

let find timeline id =
  List.find (fun e -> e.id = id) timeline.entries

let serial_time timeline =
  List.fold_left (fun acc e -> acc +. (e.finish -. e.start)) 0.0 timeline.entries
