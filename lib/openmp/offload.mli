(** The compile-and-offload pipeline for IR kernels: the front-end route
    through the codegen layer (§4), ending on the simulated device.

    [compile] runs the checker, the outliner, the globalization analysis
    and the SPMD-ization analysis; [run] executes the compiled kernel.
    Diagnostics mirror what a compiler would print with optimization
    remarks enabled. *)

type compiled = {
  program : Ompir.Outline.program;
  globalization : Ompir.Globalize.report list;
  region_modes : (string * Omprt.Mode.t) list;
      (** SPMD-ization verdict per parallel-level directive *)
  guards_inserted : int;
      (** guard blocks added by the [guardize] transform (0 without it) *)
  may_races : Ompir.Racecheck.finding list;
      (** static may-race findings (empty unless compiled with
          [~racecheck:true]) *)
}

type knobs = {
  guardize : bool;
  fold : bool;
  racecheck : bool;
  passes : string;
      (** optimization-pipeline spec ({!Ompir.Passes.pipeline_of_spec});
          [""] defers to the [OMPSIMD_PASSES] environment variable, and a
          blank variable means {!Ompir.Passes.default_pipeline} *)
}
(** The compile-relevant knobs, bundled so cache layers can key on
    them; see {!cache_key}. *)

val default_knobs : knobs
(** [{ guardize = false; fold = true; racecheck = false; passes = "" }]
    — the defaults of {!compile}. *)

val effective_passes : knobs -> string
(** The pipeline spec a compilation with [knobs] will actually run:
    [knobs.passes], or the [OMPSIMD_PASSES] environment variable when
    that is blank ([""] when both are). *)

val cache_key : ?knobs:knobs -> Ompir.Ir.kernel -> string
(** The identity of a compilation for caching: content digest of the
    kernel ({!Ompir.Kdigest}), the knobs — with the pipeline spec
    resolved through {!effective_passes}, so an optimized variant is a
    distinct tier-2 artifact and flipping [OMPSIMD_PASSES] can never
    alias a cached kernel compiled under a different pipeline — and the
    engine selected by [OMPSIMD_EVAL].  Two calls return equal keys iff
    [compile_with] would produce an interchangeable artifact.
    @raise Invalid_argument on a malformed pipeline spec; the message
    names [OMPSIMD_PASSES] and the offending item. *)

val compile_with :
  knobs:knobs ->
  Ompir.Ir.kernel ->
  (compiled, Ompir.Check.error list) result
(** {!compile} with the knobs bundled — the entry point cache layers
    use so key and compilation can never disagree. *)

val compile :
  ?guardize:bool ->
  ?fold:bool ->
  ?racecheck:bool ->
  ?passes:string ->
  Ompir.Ir.kernel ->
  (compiled, Ompir.Check.error list) result
(** [guardize] (default false) applies {!Ompir.Spmdize.guardize} first:
    side-effecting sequential statements of parallel bodies are wrapped in
    guard blocks so the regions become SPMD-safe — the paper's §7 plan for
    SPMDizing parallel regions.  [fold] (default true) runs the
    optimization pipeline before outlining: the spec in [passes] (default
    [""], deferring to [OMPSIMD_PASSES], which blank means
    {!Ompir.Passes.default_pipeline}), applied through
    {!Ompir.Passes.run_verified} so a pass that broke well-formedness
    surfaces as a compile error instead of a miscompile.  [fold:false]
    disables the pipeline entirely.  [racecheck] (default false)
    additionally runs the static ompsan layer ({!Ompir.Racecheck}) on
    the post-pipeline, post-guardize kernel; findings land in
    [may_races] and in {!remarks}.
    @raise Invalid_argument on a malformed [passes] spec; the message
    names [OMPSIMD_PASSES] and the offending item. *)

val remarks : compiled -> string list
(** Human-readable optimization remarks: outlined regions, captured
    payloads, globalized variables, chosen execution modes. *)

val sharing_reservation :
  budget:int ->
  num_threads:int ->
  simd_len:int ->
  Ompir.Outline.program ->
  int
(** The sharing-space bytes {!run} reserves per team (§5.3.1):
    [Globalize.footprint_bytes] times the concurrent-publisher bound
    (one per SIMD group plus the team main), floored at
    {!Omprt.Sharing.min_bytes} and capped at [budget] (the clause or
    default reservation) — shrink-only, so dynamic sizing can reclaim
    shared memory but never introduce fallbacks the budget would have
    avoided.  [OMPSIMD_SHARING_BYTES] pins an explicit byte count;
    [OMPSIMD_SHARING_DYNAMIC=0] returns [budget] unchanged.  A
    launch-time decision, deliberately outside {!cache_key}. *)

val run :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?clauses:Clause.t ->
  bindings:(string * Ompir.Eval.binding) list ->
  compiled ->
  Gpusim.Device.report
(** Execute on the device.  Unless the clauses force a parallel mode, each
    region uses its SPMD-ization verdict — SPMD when tightly nested,
    generic otherwise (§3.2).  Re-reads [OMPSIMD_SANITIZE] on entry: when
    the sanitizer is enabled the returned report carries
    [sanitizer = Some _] with any dynamic findings. *)
