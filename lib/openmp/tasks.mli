(** Deferred target tasks — [target nowait] with [depend] clauses.

    The paper builds on a runtime where offloaded regions can execute
    asynchronously (its reference [26], "Concurrent Execution of Deferred
    OpenMP Target Tasks with Hidden Helper Threads").  This module
    reproduces that substrate's scheduling behaviour on the simulated
    device: tasks form a DAG through their dependences; kernels serialize
    on the device engine while host-device transfers run on separate copy
    engines (one per direction), so independent transfers overlap
    computation exactly as hidden helper threads allow.

    Typical shape:

    {[
      let q = Tasks.create () in
      let h2d = Tasks.transfer q ~name:"x to device" ~bytes:(8*n) () in
      let k = Tasks.kernel q ~depends:[h2d] ~name:"saxpy"
                (fun () -> Omp.target_teams ~cfg ... ) in
      let _d2h = Tasks.transfer q ~depends:[k] ~name:"y back" ~bytes:(8*n) () in
      let timeline = Tasks.wait_all q in
      Tasks.makespan timeline
    ]}

    Durations: a kernel's is the simulated cycles of the report its thunk
    produces; a transfer's is bytes over the interconnect bandwidth. *)

type t
type task_id

type entry = {
  id : task_id;
  name : string;
  kind : [ `Kernel | `H2d | `D2h ];
  start : float;
  finish : float;
}

type timeline = { entries : entry list; makespan : float }

val create : ?interconnect_bytes_per_cycle:float -> unit -> t
(** A fresh queue with an idle device engine and two copy engines. *)

val kernel :
  t ->
  ?depends:task_id list ->
  name:string ->
  (unit -> Gpusim.Device.report) ->
  task_id
(** Enqueue a [target nowait] region.  The thunk runs when the task is
    scheduled (during {!wait_all}); its simulated time is the task's
    duration.  @raise Invalid_argument on an unknown dependence. *)

val transfer :
  t ->
  ?depends:task_id list ->
  ?direction:[ `H2d | `D2h ] ->
  name:string ->
  bytes:int ->
  unit ->
  task_id
(** Enqueue an asynchronous map-clause transfer (default host→device). *)

val wait_all : t -> timeline
(** The [taskwait]: schedule everything, earliest-ready-first per engine,
    and return the resulting timeline.  Idempotent (a second call returns
    the same timeline without re-running thunks). *)

val makespan : timeline -> float
val find : timeline -> task_id -> entry

val serial_time : timeline -> float
(** Sum of all durations — what a fully synchronous program would take;
    the overlap win is [serial_time /. makespan]. *)
