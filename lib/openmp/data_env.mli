(** The host-side data environment: [target data] regions and map
    clauses (§3).

    The host allocates device buffers, moves data over the interconnect
    (cost-modelled from byte counts), and hands device arrays to kernels.
    Transfers are tracked so benchmark reports can separate kernel time
    from movement, as the paper's kernel-only timings do. *)

type t

val create : ?interconnect_bytes_per_cycle:float -> unit -> t
(** A fresh device data environment (own address space and L2).
    The default interconnect bandwidth models PCIe-4 x16 at A100 clocks
    (~23 bytes/cycle). *)

val space : t -> Gpusim.Memory.space

type 'a mapping = private {
  device : 'a;
  name : string;
  bytes : int;
  mutable mapped_back : bool;
}

val map_to : t -> name:string -> float array -> Gpusim.Memory.farray mapping
(** [map(to:)] — allocate and copy host→device. *)

val map_to_int : t -> name:string -> int array -> Gpusim.Memory.iarray mapping

val map_alloc : t -> name:string -> int -> Gpusim.Memory.farray mapping
(** [map(alloc:)] — device allocation, no transfer. *)

val map_from : t -> Gpusim.Memory.farray mapping -> float array
(** [map(from:)] at region end — copy device→host. *)

val transfer_cycles : t -> float
(** Total interconnect cycles spent on mapping traffic so far. *)

val h2d_bytes : t -> int
val d2h_bytes : t -> int

val with_target_data :
  t -> (t -> 'a) -> 'a * float
(** Run a target-data region and return its result together with the
    transfer cycles incurred inside it. *)
