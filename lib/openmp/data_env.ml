type t = {
  space : Gpusim.Memory.space;
  bw : float;
  mutable h2d : int;
  mutable d2h : int;
}

type 'a mapping = {
  device : 'a;
  name : string;
  bytes : int;
  mutable mapped_back : bool;
}

let create ?(interconnect_bytes_per_cycle = 23.0) () =
  if interconnect_bytes_per_cycle <= 0.0 then
    invalid_arg "Data_env.create: bandwidth must be positive";
  { space = Gpusim.Memory.space (); bw = interconnect_bytes_per_cycle; h2d = 0; d2h = 0 }

let space t = t.space

let map_to t ~name host =
  let bytes = 8 * Array.length host in
  t.h2d <- t.h2d + bytes;
  {
    device = Gpusim.Memory.of_float_array t.space host;
    name;
    bytes;
    mapped_back = false;
  }

let map_to_int t ~name host =
  let bytes = 8 * Array.length host in
  t.h2d <- t.h2d + bytes;
  {
    device = Gpusim.Memory.of_int_array t.space host;
    name;
    bytes;
    mapped_back = false;
  }

let map_alloc t ~name n =
  if n < 0 then invalid_arg "Data_env.map_alloc: negative length";
  { device = Gpusim.Memory.falloc t.space n; name; bytes = 8 * n; mapped_back = false }

let map_from t mapping =
  t.d2h <- t.d2h + mapping.bytes;
  mapping.mapped_back <- true;
  Gpusim.Memory.to_float_array mapping.device

let transfer_cycles t = float_of_int (t.h2d + t.d2h) /. t.bw
let h2d_bytes t = t.h2d
let d2h_bytes t = t.d2h

let with_target_data t f =
  let before = transfer_cycles t in
  let result = f t in
  (result, transfer_cycles t -. before)
