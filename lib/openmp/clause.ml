type schedule = Static | Static_chunked of int | Dynamic of int

type t = {
  num_teams : int option;
  num_threads : int option;
  teams_mode : Omprt.Mode.t option;
  parallel_mode : Omprt.Mode.t option;
  simdlen : int option;
  schedule : schedule;
  sharing_bytes : int option;
}

let none =
  {
    num_teams = None;
    num_threads = None;
    teams_mode = None;
    parallel_mode = None;
    simdlen = None;
    schedule = Static;
    sharing_bytes = None;
  }

let num_teams n t = { t with num_teams = Some n }
let num_threads n t = { t with num_threads = Some n }
let teams_mode m t = { t with teams_mode = Some m }
let parallel_mode m t = { t with parallel_mode = Some m }
let simdlen n t = { t with simdlen = Some n }
let schedule s t = { t with schedule = s }
let sharing_bytes n t = { t with sharing_bytes = Some n }

let resolve ~(cfg : Gpusim.Config.t) t =
  let num_teams =
    match t.num_teams with
    | Some n when n > 0 -> n
    | Some _ -> invalid_arg "Clause.resolve: num_teams must be positive"
    | None -> 2 * cfg.Gpusim.Config.num_sms
  in
  let num_threads = Option.value t.num_threads ~default:128 in
  let simdlen = Option.value t.simdlen ~default:1 in
  if simdlen <= 0 || cfg.Gpusim.Config.warp_size mod simdlen <> 0 then
    invalid_arg "Clause.resolve: simdlen must divide the warp size";
  let params =
    {
      Omprt.Team.num_teams;
      num_threads;
      teams_mode = Option.value t.teams_mode ~default:Omprt.Mode.Spmd;
      sharing_bytes =
        Option.value t.sharing_bytes ~default:Omprt.Sharing.default_bytes;
    }
  in
  let parallel_mode = Option.value t.parallel_mode ~default:Omprt.Mode.Spmd in
  (params, parallel_mode, simdlen)

let workshare_schedule t =
  match t.schedule with
  | Static -> Omprt.Workshare.Static
  | Static_chunked n -> Omprt.Workshare.Chunked n
  | Dynamic n -> Omprt.Workshare.Dynamic n
