type ctx = Omprt.Team.ctx

let target_teams ~cfg ?trace ?(clauses = Clause.none)
    ?(payload = Omprt.Payload.empty) body =
  let params, parallel_mode, simdlen = Clause.resolve ~cfg clauses in
  Omprt.Target.launch ~cfg ?trace ~params ~dispatch_table_size:4 (fun ctx ->
      Omprt.Parallel.parallel ctx ~mode:parallel_mode ~simd_len:simdlen
        ~payload ~fn_id:0 (fun ctx _ -> body ctx))

let target_teams_distribute ~cfg ?trace ?(clauses = Clause.none) ~trip body =
  let params, _, _ = Clause.resolve ~cfg clauses in
  let params = { params with Omprt.Team.teams_mode = Omprt.Mode.Generic } in
  Omprt.Target.launch ~cfg ?trace ~params ~dispatch_table_size:4 (fun ctx ->
      Omprt.Workshare.distribute ctx
        ~schedule:(Clause.workshare_schedule clauses)
        ~trip
        (fun i -> body ctx i))

let parallel_for ctx ?(clauses = Clause.none)
    ?(payload = Omprt.Payload.empty) ~trip body =
  let mode = Option.value clauses.Clause.parallel_mode ~default:Omprt.Mode.Spmd in
  let simd_len = Option.value clauses.Clause.simdlen ~default:1 in
  Omprt.Parallel.parallel ctx ~mode ~simd_len ~payload ~fn_id:1 (fun ctx _ ->
      Omprt.Workshare.omp_for ctx
        ~schedule:(Clause.workshare_schedule clauses)
        ~trip body)

let distribute_parallel_for ctx ?(schedule = Clause.Static) ~trip body =
  let schedule =
    Clause.workshare_schedule { Clause.none with Clause.schedule } in
  Omprt.Workshare.distribute_parallel_for ctx ~schedule ~trip body

let for_ ctx ?(schedule = Clause.Static) ~trip body =
  let schedule =
    Clause.workshare_schedule { Clause.none with Clause.schedule } in
  Omprt.Workshare.omp_for ctx ~schedule ~trip body

let simd ctx ?payload ~trip body =
  Omprt.Simd.simd ctx ?payload ~fn_id:2 ~trip (fun _ iv _ -> body iv)

let simd_sum ctx ?payload ~trip body =
  Omprt.Simd.simd_sum ctx ?payload ~fn_id:3 ~trip (fun _ iv _ -> body iv)

let barrier = Omprt.Team.region_barrier_wait
let single = Omprt.Workshare.single
let master = Omprt.Workshare.master

let team_num (ctx : ctx) = ctx.Omprt.Team.team.Omprt.Team.block_id

let num_teams (ctx : ctx) =
  ctx.Omprt.Team.team.Omprt.Team.params.Omprt.Team.num_teams

let geometry (ctx : ctx) = Omprt.Team.geometry ctx.Omprt.Team.team

let thread_num (ctx : ctx) =
  Omprt.Simd_group.get_simd_group (geometry ctx)
    ~tid:ctx.Omprt.Team.th.Gpusim.Thread.tid

let num_threads (ctx : ctx) = (geometry ctx).Omprt.Simd_group.num_groups

let simd_lane (ctx : ctx) =
  Omprt.Simd_group.get_simd_group_id (geometry ctx)
    ~tid:ctx.Omprt.Team.th.Gpusim.Thread.tid

let simd_width (ctx : ctx) =
  Omprt.Simd_group.get_simd_group_size (geometry ctx)

let collapse2 ~n1 ~n2 k =
  if n1 < 0 || n2 <= 0 then invalid_arg "Omp.collapse2: bad extents";
  k (fun flat -> (flat / n2, flat mod n2))

let collapse3 ~n1 ~n2 ~n3 k =
  if n1 < 0 || n2 <= 0 || n3 <= 0 then invalid_arg "Omp.collapse3: bad extents";
  k (fun flat -> (flat / (n2 * n3), flat / n3 mod n2, flat mod n3))
