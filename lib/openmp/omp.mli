(** The user-facing directive API — the OCaml rendering of the pragmas.

    A typical three-level kernel reads like its OpenMP source:

    {[
      let report =
        Omp.target_teams ~cfg
          ~clauses:Clause.(none |> num_threads 128 |> simdlen 8
                           |> parallel_mode Omprt.Mode.Generic)
          (fun ctx ->
            Omp.distribute_parallel_for ctx ~trip:rows (fun row ->
                ...sequential per-row code...
                Omp.simd ctx ~trip:row_nnz (fun k -> ...)))
    ]}

    [target_teams] opens the offloaded region ([omp target teams]) and
    implicitly the parallel region described by the clauses — mirroring
    the combined [target teams distribute parallel for] constructs the
    paper's kernels use.  Explicit [parallel] nesting (for [teams
    distribute] + inner [parallel for], the two-level baseline shape) is
    available through {!target_teams_distribute}. *)

type ctx = Omprt.Team.ctx

val target_teams :
  cfg:Gpusim.Config.t ->
  ?trace:Gpusim.Trace.t ->
  ?clauses:Clause.t ->
  ?payload:Omprt.Payload.t ->
  (ctx -> unit) ->
  Gpusim.Device.report
(** Launch the combined construct: the body runs inside one parallel
    region configured by the clauses (mode, simdlen, threads). *)

val target_teams_distribute :
  cfg:Gpusim.Config.t ->
  ?trace:Gpusim.Trace.t ->
  ?clauses:Clause.t ->
  trip:int ->
  (ctx -> int -> unit) ->
  Gpusim.Device.report
(** [omp target teams distribute] — generic teams mode: the team main
    iterates its chunk; the body typically opens {!parallel_for} regions
    (the paper's two-level sparse_matvec shape). *)

val parallel_for :
  ctx ->
  ?clauses:Clause.t ->
  ?payload:Omprt.Payload.t ->
  trip:int ->
  (int -> unit) ->
  unit
(** An inner [parallel for] region — only meaningful from a
    {!target_teams_distribute} body. *)

val distribute_parallel_for :
  ctx -> ?schedule:Clause.schedule -> trip:int -> (int -> unit) -> unit
(** Workshare across teams x OpenMP threads, from a {!target_teams}
    body. *)

val for_ : ctx -> ?schedule:Clause.schedule -> trip:int -> (int -> unit) -> unit
(** [omp for] across the region's OpenMP threads. *)

val simd : ctx -> ?payload:Omprt.Payload.t -> trip:int -> (int -> unit) -> unit
(** The paper's contribution: the innermost level.  Iterations run in
    lockstep across the calling thread's SIMD group. *)

val simd_sum :
  ctx -> ?payload:Omprt.Payload.t -> trip:int -> (int -> float) -> float
(** [simd reduction(+:x)] (extension, §7). *)

val barrier : ctx -> unit
(** [omp barrier] over the region's executing threads. *)

val single : ctx -> (unit -> unit) -> unit
(** [omp single] — one thread executes, implicit barrier after. *)

val master : ctx -> (unit -> unit) -> unit
(** [omp master] — thread 0 executes, no barrier. *)

val team_num : ctx -> int
val num_teams : ctx -> int
val thread_num : ctx -> int
(** OpenMP thread id = SIMD group index (§5.1). *)

val num_threads : ctx -> int
(** OpenMP thread count = number of SIMD groups. *)

val simd_lane : ctx -> int
val simd_width : ctx -> int

val collapse2 : n1:int -> n2:int -> ((int -> int * int) -> 'a) -> 'a
(** [collapse(2)]: flatten two loop extents; the continuation receives the
    decoder from the flat index.  Usage:
    [collapse2 ~n1 ~n2 (fun decode -> dpf ctx ~trip:(n1*n2) (fun f -> let i, j = decode f in ...))]. *)

val collapse3 : n1:int -> n2:int -> n3:int -> ((int -> int * int * int) -> 'a) -> 'a
