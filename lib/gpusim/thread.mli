(** Per-thread (per-lane) execution context.

    Every simulated GPU thread carries a virtual clock.  Compute and memory
    costs advance the clock directly — no scheduler round-trip — so only
    synchronization suspends a fiber.  [clock] is the latency leg of the
    roofline (critical path); [busy] excludes barrier wait and feeds the
    throughput leg. *)

type warp_state = {
  warp_index : int;
  lines : Linebuf.t;  (** coalescing window shared by the warp's lanes *)
  atomic_epoch : (int, int) Hashtbl.t;
      (** atomics per line since the last block barrier; models RMW
          serialization contention *)
}

type t = {
  block_id : int;
  tid : int;  (** thread index within the block *)
  lane : int;  (** [tid mod warp_size] *)
  warp : warp_state;
  cfg : Config.t;
  counters : Counters.t;
  trace : Trace.t option;
  mutable clock : float;
  mutable busy : float;
  mutable simt_factor : float;
      (** Issue-slot inflation for divergent execution.  A warp instruction
          occupies the whole warp's issue slots no matter how many lanes are
          active, so a thread running code that only 1-in-N of its warp's
          lanes executes (a SIMD main in a generic region, the team main
          alone in its warp) is charged N lane-cycles of throughput per
          cycle of latency.  1.0 when the warp is fully converged. *)
}

val make_warp : cfg:Config.t -> warp_index:int -> warp_state

val create :
  cfg:Config.t ->
  counters:Counters.t ->
  ?trace:Trace.t ->
  block_id:int ->
  tid:int ->
  warp:warp_state ->
  unit ->
  t

val tick : t -> float -> unit
(** Advance clock and busy time by a compute cost; the busy (throughput)
    charge is scaled by [simt_factor]. *)

val with_simt_factor : t -> float -> (unit -> 'a) -> 'a
(** Run a section under a given divergence factor, restoring the previous
    factor afterwards (exception-safe).
    @raise Invalid_argument if the factor is < 1. *)

val tick_wait : t -> float -> unit
(** Advance the clock only (stall, not issuing work). *)

val align_clock : t -> float -> unit
(** Raise the clock to at least the given time (barrier release). *)

val trace : t -> tag:string -> string -> unit
(** Record an event against this thread's clock if tracing is on. *)
