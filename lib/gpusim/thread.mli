(** Per-thread (per-lane) execution context.

    Every simulated GPU thread carries a virtual clock.  Compute and memory
    costs advance the clock directly — no scheduler round-trip — so only
    synchronization suspends a fiber.  [clock] is the latency leg of the
    roofline (critical path); [busy] excludes barrier wait and feeds the
    throughput leg. *)

type engine_sched = ..
(** Extensible stash for the engine's per-domain scheduler: the engine
    adds its own constructor and parks a reference on every warp of the
    running block, turning the Domain.DLS lookup on each barrier
    arrival into a field load.  Reset to {!No_sched} when the block's
    [Engine.run_block] returns. *)

type engine_sched += No_sched

type mem_session = ..
(** Same pattern for the memory system's per-block L2 session; see
    {!Memory}. *)

type mem_session += No_session

type warp_state = {
  warp_index : int;
  lines : Linebuf.t;  (** coalescing window shared by the warp's lanes *)
  mutable esched : engine_sched;
  mutable msession : mem_session;
  mutable ae_keys : int array;
  mutable ae_gen : int array;
  mutable ae_cnt : int array;
  mutable ae_mask : int;
  mutable ae_filled : int;
      (** atomics per line since the last sync point (models RMW
          serialization contention), as an open-addressing table keyed
          by line+1 (0 = empty); entries are valid only while their
          [ae_gen] slot matches [atomic_gen], so bumping the generation
          at a barrier clears the table in O(1) *)
  mutable atomic_gen : int;
  memo_base : int array;
  memo_lo : int array;
  memo_line : int array;
  mutable memo_next : int;
      (** small LRU memoizing the address→line (coalescing key)
          computation for strided re-accesses; see {!Memory} *)
}

type state = {
  mutable clock : float;
  mutable busy : float;
  mutable simt_factor : float;
}
(** Timing state, nested in an all-float record so mutating it on the
    per-instruction hot path does not allocate.  [simt_factor] is the
    issue-slot inflation for divergent execution: a warp instruction
    occupies the whole warp's issue slots no matter how many lanes are
    active, so a thread running code that only 1-in-N of its warp's
    lanes executes (a SIMD main in a generic region, the team main
    alone in its warp) is charged N lane-cycles of throughput per cycle
    of latency.  1.0 when the warp is fully converged. *)

type t = {
  block_id : int;
  tid : int;  (** thread index within the block *)
  lane : int;  (** [tid mod warp_size] *)
  warp : warp_state;
  cfg : Config.t;
  counters : Counters.t;
  trace : Trace.t option;
  st : state;
}

val make_warp : cfg:Config.t -> warp_index:int -> warp_state

val ae_bump : warp_state -> int -> int
(** [ae_bump w line] counts an atomic to [line] in the current epoch and
    returns how many the warp had already issued to that line since the
    last sync point (0 for the first). *)

val create :
  cfg:Config.t ->
  counters:Counters.t ->
  ?trace:Trace.t ->
  block_id:int ->
  tid:int ->
  warp:warp_state ->
  unit ->
  t

val clock : t -> float
(** Current virtual time (latency leg). *)

val busy : t -> float
(** Issue work so far (throughput leg; excludes barrier wait). *)

val simt_factor : t -> float
(** Current divergence factor. *)

val tick : t -> float -> unit
(** Advance clock and busy time by a compute cost; the busy (throughput)
    charge is scaled by [simt_factor]. *)

val with_simt_factor : t -> float -> (unit -> 'a) -> 'a
(** Run a section under a given divergence factor, restoring the previous
    factor afterwards (exception-safe).
    @raise Invalid_argument if the factor is < 1. *)

val set_simt_factor : t -> float -> unit
(** Raw, unchecked divergence-factor store, for hand-inlined
    save/restore on hot paths where the [with_simt_factor] thunk would
    force the accumulator into a heap cell.  Callers own the restore;
    an exception between set and restore leaves the factor dirty (the
    runtime only does this where an exception aborts the whole
    simulation anyway). *)

val tick_wait : t -> float -> unit
(** Advance the clock only (stall, not issuing work). *)

val align_clock : t -> float -> unit
(** Raise the clock to at least the given time (barrier release). *)

val tracing : t -> bool
(** Whether tracing is on — guard for callers whose event detail is
    costly to format (the formatting would otherwise run even when
    [trace] discards it). *)

val trace : t -> tag:string -> string -> unit
(** Record an event against this thread's clock if tracing is on. *)
