(* Deterministic fault injection for the simulated device.

   A fault plan is parsed from OMPSIMD_FAULTS ("kind=rate" tokens, comma
   separated) and seeded by OMPSIMD_FAULT_SEED.  Every decision — does
   this block fail, which thread, at which cycle — is drawn once at
   block start from a Prng seeded by (plan seed, launch nonce,
   block_id), so faults are a pure function of the plan and the block,
   never of the host: pooled runs inject exactly what sequential runs
   inject, and both engines fail at the same access of the same thread
   at the same clock (the simulator's bit-identity contract makes the
   access/clock sequence identical).

   The launch nonce makes *relaunches* draw fresh faults — a recovered
   request would otherwise re-fail forever — while staying
   deterministic: launches are host-sequential, the nonce just counts
   them.  [reset] rewinds it so a replay of a whole trace (the serve
   scheduler, determinism tests) sees the identical fault sequence.

   Kinds:
   - abort:   the victim thread aborts the block at its first global
              access at or after the drawn trigger cycle;
   - flip:    a bit flip on the victim's memory traffic; an
              ECC-correctable flip only counts (data is repaired in the
              line buffer, results are untouched), a fatal one aborts
              the block ("flip=rate:frac" sets the fatal fraction);
   - stall:   one thread of the victim warp parks on a private,
              never-released barrier instead of its real rendezvous —
              the block deadlocks and surfaces as a structured
              barrier-stall failure;
   - exhaust: every sharing-space acquire in the block is forced onto
              the omprt global-memory fallback path.

   Arming the plan (a non-blank spec, or a positive OMPSIMD_WATCHDOG
   cycle budget) also switches Device.launch from raising
   Engine.Deadlock to converting hung blocks into structured failure
   reports.  With the plan disarmed every hook is one load-and-branch
   and reports are bit-identical to a build without this module. *)

module Env = Ompsimd_util.Env
module Prng = Ompsimd_util.Prng

type kind = Block_abort | Ecc_fatal | Barrier_stall | Watchdog

let kind_label = function
  | Block_abort -> "abort"
  | Ecc_fatal -> "ecc-fatal"
  | Barrier_stall -> "barrier-stall"
  | Watchdog -> "watchdog"

type failure = {
  f_kind : kind;
  f_block : int;
  f_warp : int;  (* -1 when not warp-specific *)
  f_tid : int;  (* -1 when not thread-specific *)
  f_barrier : string;  (* "" when no barrier is involved *)
  f_cycle : float;
}

let failure_to_string f =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "%s block %d" (kind_label f.f_kind) f.f_block);
  if f.f_warp >= 0 then Buffer.add_string b (Printf.sprintf " warp %d" f.f_warp);
  if f.f_tid >= 0 then Buffer.add_string b (Printf.sprintf " tid %d" f.f_tid);
  if f.f_barrier <> "" then
    Buffer.add_string b (Printf.sprintf " at %s" f.f_barrier);
  Buffer.add_string b (Printf.sprintf " cycle %.0f" f.f_cycle);
  Buffer.contents b

type stats = {
  corrected : int;  (* ECC-correctable flips, repaired in place *)
  fatal : int;  (* injected aborts + uncorrectable flips *)
  stalls : int;  (* barrier-stall failures (injected or genuine) *)
  exhausts : int;  (* sharing-space acquires forced onto the fallback *)
  watchdogs : int;  (* blocks over the cycle budget *)
}

let zero_stats = { corrected = 0; fatal = 0; stalls = 0; exhausts = 0; watchdogs = 0 }

let add_stats a b =
  {
    corrected = a.corrected + b.corrected;
    fatal = a.fatal + b.fatal;
    stalls = a.stalls + b.stalls;
    exhausts = a.exhausts + b.exhausts;
    watchdogs = a.watchdogs + b.watchdogs;
  }

type events = {
  ev_corrected : int;
  ev_exhausts : int;
  ev_stall : failure option;  (* the injected stall, when one fired *)
}

let no_events = { ev_corrected = 0; ev_exhausts = 0; ev_stall = None }

exception Fatal of failure

(* --- the plan ---------------------------------------------------------- *)

type plan = {
  abort_rate : float;
  flip_rate : float;
  flip_fatal_frac : float;
  stall_rate : float;
  exhaust_rate : float;
  seed : int;
}

let disarmed =
  {
    abort_rate = 0.0;
    flip_rate = 0.0;
    flip_fatal_frac = 0.25;
    stall_rate = 0.0;
    exhaust_rate = 0.0;
    seed = 0;
  }

let rate_of name s =
  match float_of_string_opt s with
  | Some r when r >= 0.0 && r <= 1.0 -> r
  | _ ->
      invalid_arg
        (Printf.sprintf "OMPSIMD_FAULTS: %s rate %S not in [0,1]" name s)

let parse_spec ~seed spec =
  let p = ref { disarmed with seed } in
  String.split_on_char ',' spec
  |> List.iter (fun tok ->
         let tok = String.trim tok in
         if tok <> "" then
           match String.index_opt tok '=' with
           | None ->
               invalid_arg
                 (Printf.sprintf "OMPSIMD_FAULTS: token %S is not kind=rate"
                    tok)
           | Some i -> (
               let kind = String.sub tok 0 i in
               let v = String.sub tok (i + 1) (String.length tok - i - 1) in
               match kind with
               | "abort" -> p := { !p with abort_rate = rate_of kind v }
               | "stall" -> p := { !p with stall_rate = rate_of kind v }
               | "exhaust" -> p := { !p with exhaust_rate = rate_of kind v }
               | "flip" -> (
                   match String.index_opt v ':' with
                   | None -> p := { !p with flip_rate = rate_of kind v }
                   | Some j ->
                       let r = String.sub v 0 j in
                       let fr =
                         String.sub v (j + 1) (String.length v - j - 1)
                       in
                       p :=
                         {
                           !p with
                           flip_rate = rate_of kind r;
                           flip_fatal_frac = rate_of "flip fatal fraction" fr;
                         })
               | _ ->
                   invalid_arg
                     (Printf.sprintf "OMPSIMD_FAULTS: unknown fault kind %S"
                        kind)));
  !p

(* Armed = a spec is present (even all-zero rates: that arms structured
   deadlock capture without injecting anything).  The watchdog budget is
   independent so divergence reporting can be turned on alone. *)
let armed = ref false
let current : plan ref = ref disarmed
let watchdog = ref 0.0

(* Counts armed launches; see the header note on relaunch determinism.
   Atomic only for memory-model hygiene — launches are host-sequential. *)
let nonce = Atomic.make 0
let reset () = Atomic.set nonce 0

let refresh_from_env () =
  watchdog := Env.float "OMPSIMD_WATCHDOG" ~default:0.0;
  let next =
    match Env.var "OMPSIMD_FAULTS" with
    | None -> None
    | Some spec ->
        Some (parse_spec ~seed:(Env.int "OMPSIMD_FAULT_SEED" ~default:0) spec)
  in
  match next with
  | None ->
      armed := false;
      current := disarmed;
      reset ()
  | Some p ->
      (* an unchanged plan keeps the nonce: launches within one armed
         process keep drawing fresh faults across refreshes *)
      if (not !armed) || p <> !current then begin
        current := p;
        reset ()
      end;
      armed := true

let watchdog_budget () = !watchdog
let capture_deadlocks () = !armed || !watchdog > 0.0
let launch_begin () = if !armed then ignore (Atomic.fetch_and_add nonce 1 : int)

(* The fleet scheduler pins each member launch of a batch to a nonce
   derived from the request identity, so the faults a request draws are
   a pure function of (plan, request, attempt) — independent of where
   the fleet placed it, whether it was batched, and what launched
   before it.  launch_begin stores old+1 and block_begin reads the
   stored value, so landing on [n] means setting the counter to n-1. *)
let with_nonce n f =
  if not !armed then f ()
  else begin
    let saved = Atomic.get nonce in
    Atomic.set nonce (n - 1);
    Fun.protect ~finally:(fun () -> Atomic.set nonce saved) f
  end

(* --- per-block decisions ----------------------------------------------- *)

(* Trigger cycles are drawn uniformly in [0, 2000): early enough that
   kernels of a few thousand cycles almost always reach them, so the
   realized failure rate tracks the plan rate.  A block that finishes
   before its trigger simply does not fail — the draw is part of the
   plan, the kernel decides whether it materializes. *)
let trigger_horizon = 2000.0

type bstate = {
  b_block : int;
  b_threads : int;
  b_ws : int;
  mutable abort_at : float;  (* infinity = armed but not drawn / spent *)
  abort_tid : int;
  mutable flip_at : float;
  flip_tid : int;
  flip_fatal : bool;
  mutable stall_at : float;
  stall_warp : int;
  exhaust : bool;
  mutable corrected : int;
  mutable exhausts : int;
  mutable stall_rec : failure option;
}

let state_slot : bstate option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let block_begin ~block_id ~num_threads ~warp_size =
  if !armed then begin
    let p = !current in
    let seed =
      (((p.seed * 1_000_003) + Atomic.get nonce) * 1_000_003) + block_id
    in
    let g = Prng.create ~seed in
    (* fixed draw order, all draws unconditional: the decision stream
       depends only on (seed, nonce, block_id), never on the rates *)
    let abort_hit = Prng.uniform g < p.abort_rate in
    let abort_at = Prng.float g trigger_horizon in
    let abort_tid = Prng.int g num_threads in
    let flip_hit = Prng.uniform g < p.flip_rate in
    let flip_at = Prng.float g trigger_horizon in
    let flip_tid = Prng.int g num_threads in
    let flip_fatal = Prng.uniform g < p.flip_fatal_frac in
    let num_warps = (num_threads + warp_size - 1) / warp_size in
    let stall_hit = Prng.uniform g < p.stall_rate in
    let stall_at = Prng.float g trigger_horizon in
    let stall_warp = Prng.int g num_warps in
    let exhaust = Prng.uniform g < p.exhaust_rate in
    let slot = Domain.DLS.get state_slot in
    (match !slot with
    | Some _ -> invalid_arg "Fault.block_begin: fault state already open"
    | None -> ());
    slot :=
      Some
        {
          b_block = block_id;
          b_threads = num_threads;
          b_ws = warp_size;
          abort_at = (if abort_hit then abort_at else infinity);
          abort_tid;
          flip_at = (if flip_hit then flip_at else infinity);
          flip_tid;
          flip_fatal;
          stall_at = (if stall_hit then stall_at else infinity);
          stall_warp;
          exhaust;
          corrected = 0;
          exhausts = 0;
          stall_rec = None;
        }
  end

let close_block () =
  let slot = Domain.DLS.get state_slot in
  match !slot with
  | None -> no_events
  | Some b ->
      slot := None;
      { ev_corrected = b.corrected; ev_exhausts = b.exhausts; ev_stall = b.stall_rec }

let block_end () = close_block ()
let block_abort () = close_block ()

(* --- hooks ------------------------------------------------------------- *)

(* Global-access tap (Memory.account).  The victim fails at its first
   access at or after the trigger cycle — both the access sequence and
   the clocks are deterministic, so so is the failure point. *)
let on_access (th : Thread.t) =
  match !(Domain.DLS.get state_slot) with
  | None -> ()
  | Some b ->
      let tid = th.Thread.tid in
      let clk = Thread.clock th in
      if tid = b.abort_tid && clk >= b.abort_at then begin
        b.abort_at <- infinity;
        raise
          (Fatal
             {
               f_kind = Block_abort;
               f_block = b.b_block;
               f_warp = tid / b.b_ws;
               f_tid = tid;
               f_barrier = "";
               f_cycle = clk;
             })
      end;
      if tid = b.flip_tid && clk >= b.flip_at then begin
        b.flip_at <- infinity;
        if b.flip_fatal then
          raise
            (Fatal
               {
                 f_kind = Ecc_fatal;
                 f_block = b.b_block;
                 f_warp = tid / b.b_ws;
                 f_tid = tid;
                 f_barrier = "";
                 f_cycle = clk;
               })
        else begin
          b.corrected <- b.corrected + 1;
          Counters.bump th.Thread.counters "fault.ecc_corrected" 1.0
        end
      end

(* Barrier tap (Engine.barrier_wait).  When the arriving thread is the
   block's stall victim, return a private barrier that can never
   complete ([expected] exceeds the thread count); the engine parks the
   thread there instead of its real rendezvous and the block surfaces
   as a deadlock, which Device converts into this recorded failure. *)
let stall_here (th : Thread.t) ~abandoned =
  match !(Domain.DLS.get state_slot) with
  | None -> None
  | Some b ->
      if b.stall_at = infinity then None
      else
        let tid = th.Thread.tid in
        let warp = tid / b.b_ws in
        if warp <> b.stall_warp || Thread.clock th < b.stall_at then None
        else begin
          b.stall_at <- infinity;
          b.stall_rec <-
            Some
              {
                f_kind = Barrier_stall;
                f_block = b.b_block;
                f_warp = warp;
                f_tid = tid;
                f_barrier = Barrier.name abandoned;
                f_cycle = Thread.clock th;
              };
          Some
            (Barrier.create ~name:"fault.stall" ~expected:(b.b_threads + 1)
               ~cost:0.0 ())
        end

(* Sharing-space tap (Omprt.Sharing.acquire): true forces the global
   fallback regardless of the payload fitting the slice. *)
let exhaust_here () =
  match !(Domain.DLS.get state_slot) with
  | None -> false
  | Some b ->
      if b.exhaust then b.exhausts <- b.exhausts + 1;
      b.exhaust
