(* The device zoo: named configurations sweeping the architecture axes
   the paper's single testbed holds constant — warp width (8/16/32/64),
   warp-barrier implementation (hardware, software-emulated, absent),
   shared-memory size and L2 geometry.  Every entry is validated at
   module initialization (Config.checked), so a sweep can never build an
   impossible device.

   All zoo entries are quarter-scale (27 SMs, like Config.a100_quarter):
   per-SM behaviour and therefore every relative result matches the
   full-size device at a quarter of the simulation cost, and the sweep
   multiplies whole-figure runs by the zoo size. *)

type entry = { name : string; config : Config.t; blurb : string }

let q = Config.a100_quarter

let mk ~name ~blurb config =
  { name; config = Config.checked { config with Config.name }; blurb }

let sweep =
  [
    mk ~name:"w8-hw"
      ~blurb:"narrow 8-lane warps, hardware masked sync"
      { q with Config.warp_size = 8 };
    mk ~name:"w16-hw"
      ~blurb:"16-lane warps, hardware masked sync"
      { q with Config.warp_size = 16 };
    mk ~name:"w32-hw"
      ~blurb:"the paper's shape: 32-lane warps, hardware masked sync"
      q;
    mk ~name:"w64-hw"
      ~blurb:"AMD-style 64-lane wavefronts with a hardware masked sync"
      { q with Config.warp_size = 64 };
    mk ~name:"w16-sw"
      ~blurb:"16-lane warps, software-emulated masked barrier"
      { q with Config.warp_size = 16; barrier_impl = Config.Sw_barrier };
    mk ~name:"w32-sw"
      ~blurb:"32-lane warps, software-emulated masked barrier (Vortex path)"
      { q with Config.barrier_impl = Config.Sw_barrier };
    mk ~name:"w64-sw"
      ~blurb:"64-lane wavefronts, software-emulated masked barrier"
      { q with Config.warp_size = 64; barrier_impl = Config.Sw_barrier };
    mk ~name:"w32-none"
      ~blurb:"no masked sync at all: the Sec.5.4.1 degrade path"
      { q with Config.barrier_impl = Config.No_barrier };
    mk ~name:"w32-smem8"
      ~blurb:"tight shared memory: 8 KiB/block, 32 KiB/SM"
      {
        q with
        Config.shared_mem_per_block = 8 * 1024;
        shared_mem_per_sm = 32 * 1024;
      };
    mk ~name:"w32-l2tiny"
      ~blurb:"tiny L2 and residency: 1/16 sectors, 32-line warp share"
      {
        q with
        Config.l2_sectors = max 1 (q.Config.l2_sectors / 16);
        linebuf_lines = 32;
      };
  ]

(* The pre-zoo device names keep working everywhere a device is named. *)
let aliases =
  [
    { name = "a100"; config = Config.a100; blurb = "full 108-SM A100-like" };
    {
      name = "a100q";
      config = Config.a100_quarter;
      blurb = "quarter-scale A100-like (default)";
    };
    {
      name = "amd";
      config = Config.amd_like;
      blurb = "full-size device without a masked warp sync";
    };
    { name = "small"; config = Config.small; blurb = "tiny 4-SM test device" };
  ]

let all = aliases @ sweep
let names = List.map (fun e -> e.name) all
let find name = List.find_opt (fun e -> e.name = name) all

(* A device spec is a zoo name, [key=value,...] overrides over the
   default device, or both: ["w64-sw,num_sms=4"].  This is the syntax of
   OMPSIMD_DEVICE and of the CLI --device flag. *)
let resolve ?(default = Config.a100_quarter) spec =
  let spec = String.trim spec in
  if spec = "" then Ok default
  else
    let head, rest =
      match String.index_opt spec ',' with
      | None -> (spec, "")
      | Some i ->
          ( String.sub spec 0 i,
            String.sub spec (i + 1) (String.length spec - i - 1) )
    in
    let head = String.trim head in
    if String.contains head '=' then
      (* pure key=value overrides over the default device *)
      Config.of_spec ~base:default spec
    else
      match find head with
      | None ->
          Error
            (Printf.sprintf "unknown device %S (known: %s)" head
               (String.concat "|" names))
      | Some e ->
          if String.trim rest = "" then Ok e.config
          else Config.of_spec ~base:e.config rest

let env_var = "OMPSIMD_DEVICE"

let of_env ?(default = Config.a100_quarter) () =
  match Ompsimd_util.Env.var env_var with
  | None -> Ok default
  | Some spec -> (
      match resolve ~default spec with
      | Ok cfg -> Ok cfg
      | Error msg -> Error (Printf.sprintf "%s: %s" env_var msg))

let pp_table ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-12s warp %2d  barrier %-4s  %s@ " e.name
        e.config.Config.warp_size
        (Config.barrier_impl_to_string e.config.Config.barrier_impl)
        e.blurb)
    all;
  Format.fprintf ppf "@]"
