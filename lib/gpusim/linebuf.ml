type stamp = { mutable vtime : float; mutable lanes : int (* bitmask *) }

type t = {
  capacity : int;
  coalesce_window : float;
  stamps : (int, stamp) Hashtbl.t;  (* line -> latest touch burst *)
  base : (int, stamp) Hashtbl.t option;
      (* frozen parent stamps a fork reads through to (never written) *)
  mutable misses : int;
  mutable max_vtime : float;
}

type outcome = Coalesced | Hit | Miss

let is_resident = function Coalesced | Hit -> true | Miss -> false

let create ~capacity ~coalesce_window =
  if capacity <= 0 then invalid_arg "Linebuf.create: capacity must be positive";
  if coalesce_window < 0.0 then
    invalid_arg "Linebuf.create: coalesce_window must be non-negative";
  {
    capacity;
    coalesce_window;
    stamps = Hashtbl.create 64;
    base = None;
    misses = 0;
    max_vtime = 0.0;
  }

(* A fork shares the parent's stamp table read-only and writes its own
   overlay, seeded with the parent's residency statistics.  O(1) to
   create, O(own touches) in memory — cheap enough to make one per
   (block, space) pair per launch.  The parent must not be mutated while
   forks of it are live; concurrent [find_opt] reads of the frozen parent
   table from several domains are safe. *)
let fork parent =
  let base =
    (* flatten chains so a fork of a fork still reads one level deep;
       forks are created from the committed device L2 only *)
    match parent.base with
    | Some _ -> invalid_arg "Linebuf.fork: cannot fork a fork"
    | None -> Some parent.stamps
  in
  {
    capacity = parent.capacity;
    coalesce_window = parent.coalesce_window;
    stamps = Hashtbl.create 64;
    base;
    misses = parent.misses;
    max_vtime = parent.max_vtime;
  }

let window t =
  if t.misses <= t.capacity || t.max_vtime <= 0.0 then Float.infinity
  else
    (* rate = distinct-line fetches per virtual cycle; a line stays
       resident for the time it takes the warp to pull [capacity] fresh
       lines through the cache. *)
    float_of_int t.capacity *. t.max_vtime /. float_of_int t.misses

(* Bound the table: when it grows far past capacity, drop entries that
   fell out of the residency window (they can only miss anyway). *)
let compact t =
  if Hashtbl.length t.stamps > 8 * t.capacity then begin
    let w = window t in
    let horizon = t.max_vtime -. w in
    let stale =
      Hashtbl.fold
        (fun line st acc -> if st.vtime < horizon then line :: acc else acc)
        t.stamps []
    in
    List.iter (Hashtbl.remove t.stamps) stale
  end

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* A "burst" is the set of lanes touching the line within the coalesce
   window of each other — the per-lane view of one warp instruction (or a
   short run of them) accessing the line in lockstep.  The first lane of a
   burst opens the transaction; a new lane joining rides it for free; a
   lane re-touching inside the burst is a fresh instruction whose
   transaction is shared by every lane of the burst, so it is charged
   1/|burst|.  A lane running alone therefore pays full price per touch,
   which is exactly the uncoalesced baseline pattern. *)
let touch t ~vtime ~lane line =
  if vtime > t.max_vtime then t.max_vtime <- vtime;
  let lane_bit = 1 lsl (lane land 31) in
  let resident =
    match Hashtbl.find_opt t.stamps line with
    | Some _ as r -> r
    | None -> (
        (* copy-on-write read-through: promote the frozen base stamp into
           the overlay so later touches see and mutate the private copy *)
        match t.base with
        | None -> None
        | Some b -> (
            match Hashtbl.find_opt b line with
            | None -> None
            | Some bst ->
                let st = { vtime = bst.vtime; lanes = bst.lanes } in
                Hashtbl.replace t.stamps line st;
                Some st))
  in
  let result =
    match resident with
    | None ->
        Hashtbl.replace t.stamps line { vtime; lanes = lane_bit };
        (Miss, 1.0)
    | Some st ->
        let gap = vtime -. st.vtime in
        let in_burst = Float.abs gap <= t.coalesce_window in
        let outcome_weight =
          if in_burst then
            if st.lanes land lane_bit <> 0 then
              (Hit, 1.0 /. float_of_int (popcount st.lanes))
            else begin
              st.lanes <- st.lanes lor lane_bit;
              (Coalesced, 0.0)
            end
          else begin
            st.lanes <- lane_bit;
            if gap <= window t then (Hit, 1.0) else (Miss, 1.0)
          end
        in
        if vtime > st.vtime then st.vtime <- vtime;
        outcome_weight
  in
  (match result with
  | Miss, _ ->
      t.misses <- t.misses + 1;
      compact t
  | (Coalesced | Hit), _ -> ());
  result

let misses t = t.misses

let clear t =
  Hashtbl.reset t.stamps;
  t.misses <- 0;
  t.max_vtime <- 0.0

let size t = Hashtbl.length t.stamps
let capacity t = t.capacity
