(* Stamp storage is an open-addressing hash table over flat arrays
   (keys as line+1 with 0 = empty, linear probing over a power-of-two
   size, vtimes in an unboxed floatarray).  The former
   [(int, stamp) Hashtbl.t] of mixed int/float records paid a bucket
   walk plus a boxed-float write per touch — the single hottest
   allocation site of the simulator.  Slots are probed via a Fibonacci
   multiplicative hash (see [hash] below): line numbers come in
   contiguous per-array runs, which the multiply scatters across the
   table instead of letting them clump into long probe clusters. *)

type tbl = {
  mutable keys : int array;  (* line + 1; 0 = empty *)
  mutable vtimes : floatarray;
  mutable lanes : int array;  (* bitmask *)
  mutable mask : int;  (* size - 1, size a power of two *)
  mutable count : int;
}

let tbl_make size =
  {
    keys = Array.make size 0;
    vtimes = Float.Array.make size 0.0;
    lanes = Array.make size 0;
    mask = size - 1;
    count = 0;
  }

(* Fibonacci-style multiplicative mix.  Line numbers come in contiguous
   runs (one per array), so an identity hash would fill contiguous slot
   runs that merge into huge probe clusters as soon as two arrays' ranges
   alias mod the table size; the odd-constant multiply spreads a run
   across the whole table. *)
let hash line mask =
  let h = line * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land mask

(* Slot holding the key, or the empty slot where it would go.  The load
   factor is kept under 3/4, so a run of occupied slots always ends.
   Indices are masked, hence always in bounds: this probe loop and the
   slot reads/writes below run once or more per simulated memory access,
   so they use the unchecked accessors. *)
let tbl_slot t line =
  let key = line + 1 in
  let mask = t.mask in
  let keys = t.keys in
  let i = ref (hash line mask) in
  let k = ref (Array.unsafe_get keys !i) in
  while !k <> 0 && !k <> key do
    i := (!i + 1) land mask;
    k := Array.unsafe_get keys !i
  done;
  !i

let tbl_put t line vtime lanes =
  let s = tbl_slot t line in
  if Array.unsafe_get t.keys s = 0 then begin
    Array.unsafe_set t.keys s (line + 1);
    t.count <- t.count + 1
  end;
  Float.Array.unsafe_set t.vtimes s vtime;
  Array.unsafe_set t.lanes s lanes

let tbl_grow t =
  let old_keys = t.keys and old_v = t.vtimes and old_l = t.lanes in
  (* quadruple: a rebuild re-inserts every live entry, so growing by 4x
     halves the number of rebuilds a small-starting table pays on its way
     to its final size, at a worst-case 4x space overshoot on tables that
     are overlay-sized anyway *)
  let size = 4 * (t.mask + 1) in
  t.keys <- Array.make size 0;
  t.vtimes <- Float.Array.make size 0.0;
  t.lanes <- Array.make size 0;
  t.mask <- size - 1;
  t.count <- 0;
  Array.iteri
    (fun i k ->
      if k <> 0 then tbl_put t (k - 1) (Float.Array.get old_v i) old_l.(i))
    old_keys

let tbl_ensure_room t =
  if 4 * (t.count + 1) > 3 * (t.mask + 1) then tbl_grow t

type t = {
  capacity : int;
  coalesce_window : float;
  isz : int;
      (* floor table size (power of two, derived from capacity): starting
         and compacting to this avoids rebuild chains 64 -> ... -> 2K on
         every grow/compact cycle of a warp-sized buffer *)
  tbl : tbl;  (* line -> latest touch burst *)
  base : tbl option;
      (* frozen parent stamps a fork reads through to (never written) *)
  now : floatarray;
      (* two unboxed float cells: slot 0 stages the touch timestamp
         (callers store it with an unboxed floatarray write and the touch
         body reads it back, so the float never crosses a function
         boundary as a boxed argument); slot 1 is the running max vtime —
         as a mutable float field of this mixed record every monotone
         update would box a fresh float *)
  mutable misses : int;
}

(* The cap keeps warp-sized buffers small; a device L2 with hundreds of
   thousands of sectors still starts large enough that a launch's
   footprint does not drag it through a 4K -> 8K -> ... rebuild chain on
   every reset/commit cycle. *)
let floor_size capacity =
  let target = Int.min 65536 (Int.max 64 (2 * capacity)) in
  let s = ref 64 in
  while !s < target do
    s := 2 * !s
  done;
  !s

type outcome = Coalesced | Hit | Miss

let is_resident = function Coalesced | Hit -> true | Miss -> false

let[@inline] max_vtime t = Float.Array.unsafe_get t.now 1

let make ~capacity ~coalesce_window ~isz =
  if capacity <= 0 then invalid_arg "Linebuf.create: capacity must be positive";
  if coalesce_window < 0.0 then
    invalid_arg "Linebuf.create: coalesce_window must be non-negative";
  {
    capacity;
    coalesce_window;
    isz;
    tbl = tbl_make isz;
    base = None;
    now = Float.Array.make 2 0.0;
    misses = 0;
  }

let create ~capacity ~coalesce_window =
  make ~capacity ~coalesce_window ~isz:(floor_size capacity)

(* Same behaviour, but the table starts at the minimum size and grows to
   demand instead of to [capacity].  For short-lived per-block buffers
   (an L2 view of one block's traffic) whose footprint is far below the
   modeled capacity: sizing those from an L2 with tens of thousands of
   sectors allocated three multi-hundred-KiB arrays per block. *)
let create_small ~capacity ~coalesce_window =
  make ~capacity ~coalesce_window ~isz:64

(* A fork shares the parent's stamp table read-only and writes its own
   overlay, seeded with the parent's residency statistics.  O(1) to
   create, O(own touches) in memory — cheap enough to make one per
   (block, space) pair per launch.  The parent must not be mutated while
   forks of it are live; concurrent reads of the frozen parent table
   from several domains are safe. *)
let fork parent =
  let base =
    (* flatten chains so a fork of a fork still reads one level deep;
       forks are created from the committed device L2 only *)
    match parent.base with
    | Some _ -> invalid_arg "Linebuf.fork: cannot fork a fork"
    | None -> Some parent.tbl
  in
  (* the overlay holds only this fork's own traffic — one block's, not
     the whole device's — so start at the minimum and let it grow to
     demand.  Sizing it from the parent (a device L2 with a 64K-slot
     table) made every fork three ~4K-element arrays: 96 KiB of zeroing
     per (block, space) pair, allocated straight into the major heap —
     the dominant allocation of the big experiments.  The grow chain a
     small start pays instead is amortized O(entries). *)
  let isz = 64 in
  {
    capacity = parent.capacity;
    coalesce_window = parent.coalesce_window;
    isz;
    tbl = tbl_make isz;
    base;
    now =
      (let a = Float.Array.make 2 0.0 in
       Float.Array.set a 1 (max_vtime parent);
       a);
    misses = parent.misses;
  }

let window t =
  if t.misses <= t.capacity || max_vtime t <= 0.0 then Float.infinity
  else
    (* rate = distinct-line fetches per virtual cycle; a line stays
       resident for the time it takes the warp to pull [capacity] fresh
       lines through the cache. *)
    float_of_int t.capacity *. max_vtime t /. float_of_int t.misses

(* Bound the table: when it grows far past capacity, drop entries that
   fell out of the residency window (they can only miss anyway). *)
let compact t =
  let tb = t.tbl in
  if tb.count > 8 * t.capacity then begin
    let w = window t in
    let horizon = max_vtime t -. w in
    let old_keys = tb.keys and old_v = tb.vtimes and old_l = tb.lanes in
    let kept = ref 0 in
    Array.iteri
      (fun i k ->
        if k <> 0 && Float.Array.get old_v i >= horizon then incr kept)
      old_keys;
    (* never shrink: re-using the current size avoids an immediate
       regrow chain when the kept set expands back toward the threshold *)
    let size = ref (Int.max t.isz (tb.mask + 1)) in
    while 2 * !kept >= !size do
      size := 2 * !size
    done;
    tb.keys <- Array.make !size 0;
    tb.vtimes <- Float.Array.make !size 0.0;
    tb.lanes <- Array.make !size 0;
    tb.mask <- !size - 1;
    tb.count <- 0;
    Array.iteri
      (fun i k ->
        if k <> 0 && Float.Array.get old_v i >= horizon then
          tbl_put tb (k - 1) (Float.Array.get old_v i) old_l.(i))
      old_keys
  end

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* A "burst" is the set of lanes touching the line within the coalesce
   window of each other — the per-lane view of one warp instruction (or a
   short run of them) accessing the line in lockstep.  The first lane of a
   burst opens the transaction; a new lane joining rides it for free; a
   lane re-touching inside the burst is a fresh instruction whose
   transaction is shared by every lane of the burst, so it is charged
   1/|burst|.  A lane running alone therefore pays full price per touch,
   which is exactly the uncoalesced baseline pattern. *)
(* Integer-coded classification — the hot path returns an immediate
   instead of an (outcome * float) tuple with a boxed weight:
   0 = Coalesced (weight 0), 1 = Hit weight 1, 2 = Miss weight 1,
   k >= 3 = burst re-touch Hit of a (k-2)-lane burst, weight 1/(k-2). *)
let code_coalesced = 0
let code_hit = 1
let code_miss = 2

(* The timestamp arrives through [t.now] (see the field comment): the
   account path runs millions of times per launch, and a boxed float
   argument here was the simulator's second-hottest allocation site. *)
let touch_line t ~lane line =
  let vtime = Float.Array.unsafe_get t.now 0 in
  if vtime > Float.Array.unsafe_get t.now 1 then Float.Array.unsafe_set t.now 1 vtime;
  let lane_bit = 1 lsl (lane land 31) in
  let tb = t.tbl in
  let s = tbl_slot tb line in
  let code =
    if Array.unsafe_get tb.keys s <> 0 then begin
      (* resident in the overlay: classify and mutate in place *)
      let st_vtime = Float.Array.unsafe_get tb.vtimes s in
      let st_lanes = Array.unsafe_get tb.lanes s in
      let gap = vtime -. st_vtime in
      let code =
        if Float.abs gap <= t.coalesce_window then
          if st_lanes land lane_bit <> 0 then popcount st_lanes + 2
          else begin
            Array.unsafe_set tb.lanes s (st_lanes lor lane_bit);
            code_coalesced
          end
        else begin
          Array.unsafe_set tb.lanes s lane_bit;
          if gap <= window t then code_hit else code_miss
        end
      in
      if vtime > st_vtime then Float.Array.unsafe_set tb.vtimes s vtime;
      code
    end
    else begin
      (* copy-on-write read-through: classify against the frozen base
         stamp if there is one, then write the private copy *)
      let based =
        match t.base with
        | None -> None
        | Some b ->
            let bs = tbl_slot b line in
            if Array.unsafe_get b.keys bs = 0 then None
            else
              Some (Float.Array.unsafe_get b.vtimes bs, Array.unsafe_get b.lanes bs)
      in
      match based with
      | None ->
          tbl_ensure_room tb;
          tbl_put tb line vtime lane_bit;
          code_miss
      | Some (bvt, blanes) ->
          let gap = vtime -. bvt in
          let code, lanes' =
            if Float.abs gap <= t.coalesce_window then
              if blanes land lane_bit <> 0 then (popcount blanes + 2, blanes)
              else (code_coalesced, blanes lor lane_bit)
            else if gap <= window t then (code_hit, lane_bit)
            else (code_miss, lane_bit)
          in
          tbl_ensure_room tb;
          tbl_put tb line (Float.max bvt vtime) lanes';
          code
    end
  in
  if code = code_miss then begin
    t.misses <- t.misses + 1;
    compact t
  end;
  code

let[@inline] code_outcome code =
  if code = code_coalesced then Coalesced
  else if code = code_miss then Miss
  else Hit

let[@inline] code_weight code =
  if code = code_coalesced then 0.0
  else if code <= code_miss then 1.0
  else 1.0 /. float_of_int (code - 2)

let[@inline] set_now t vtime = Float.Array.unsafe_set t.now 0 vtime

let[@inline] touch_code t ~vtime ~lane line =
  Float.Array.unsafe_set t.now 0 vtime;
  touch_line t ~lane line

let touch t ~vtime ~lane line =
  let code = touch_code t ~vtime ~lane line in
  (code_outcome code, code_weight code)

let misses t = t.misses

let clear t =
  let tb = t.tbl in
  tb.keys <- Array.make t.isz 0;
  tb.vtimes <- Float.Array.make t.isz 0.0;
  tb.lanes <- Array.make t.isz 0;
  tb.mask <- t.isz - 1;
  tb.count <- 0;
  t.misses <- 0;
  Float.Array.set t.now 1 0.0

let size t = t.tbl.count
let capacity t = t.capacity
