type event = { time : float; block : int; tid : int; tag : string; detail : string }

type t = { mutable events : event list (* reversed *) }

let create () = { events = [] }

let record t ~time ~block ~tid ~tag detail =
  match t with
  | None -> ()
  | Some t -> t.events <- { time; block; tid; tag; detail } :: t.events

let events t = List.rev t.events

let count t ~tag =
  List.fold_left (fun acc e -> if e.tag = tag then acc + 1 else acc) 0 t.events

let find_all t ~tag = List.filter (fun e -> e.tag = tag) (events t)

let clear t = t.events <- []

let pp_event ppf e =
  Format.fprintf ppf "[%8.1f] b%d t%d %s %s" e.time e.block e.tid e.tag e.detail
