type block_cost = {
  critical : float;
  busy : float;
  dram_bytes : float;
  lsu_transactions : float;
  active_lanes : int;
  threads : int;
  smem_bytes : int;
}

let of_result (r : Engine.block_result) ~smem_bytes =
  {
    critical = r.Engine.critical_cycles;
    busy = r.Engine.busy_cycles;
    dram_bytes = Counters.dram_bytes r.Engine.counters;
    lsu_transactions = Counters.lsu_transactions r.Engine.counters;
    active_lanes = r.Engine.active_lanes;
    threads = r.Engine.num_threads;
    smem_bytes;
  }

type breakdown = {
  time : float;
  compute_bound : float;
  memory_bound : float;
  lsu_bound : float;
  latency_bound : float;
  resident_blocks : int;
  num_waves : int;
}

let blocks_per_sm (cfg : Config.t) ~threads_per_block ~smem_per_block =
  if threads_per_block <= 0 then
    invalid_arg "Occupancy.blocks_per_sm: threads_per_block must be positive";
  if threads_per_block > cfg.Config.max_threads_per_block
     || smem_per_block > cfg.Config.shared_mem_per_block
  then 0
  else
    let by_threads = cfg.Config.max_threads_per_sm / threads_per_block in
    let by_smem =
      if smem_per_block <= 0 then cfg.Config.max_blocks_per_sm
      else cfg.Config.shared_mem_per_sm / smem_per_block
    in
    min cfg.Config.max_blocks_per_sm (min by_threads by_smem)

let kernel_time (cfg : Config.t) blocks =
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Occupancy.kernel_time: no blocks";
  let max_threads =
    Array.fold_left (fun acc b -> max acc b.threads) 0 blocks
  in
  let max_smem = Array.fold_left (fun acc b -> max acc b.smem_bytes) 0 blocks in
  let resident =
    blocks_per_sm cfg ~threads_per_block:max_threads ~smem_per_block:max_smem
  in
  if resident = 0 then
    invalid_arg
      (Printf.sprintf
         "Occupancy.kernel_time: block (%d threads, %d B smem) cannot launch"
         max_threads max_smem);
  (* Round-robin assignment of blocks to SMs; per-SM the three roofline
     legs accumulate independently. *)
  let sms = cfg.Config.num_sms in
  let busy = Array.make sms 0.0 in
  let dram = Array.make sms 0.0 in
  let lsu = Array.make sms 0.0 in
  let busy_max = Array.make sms 0.0 in
  let eff_weighted = Array.make sms 0.0 in
  let nblocks = Array.make sms 0 in
  let crit_sum = Array.make sms 0.0 in
  let crit_max = Array.make sms 0.0 in
  Array.iteri
    (fun i b ->
      let s = i mod sms in
      busy.(s) <- busy.(s) +. b.busy;
      dram.(s) <- dram.(s) +. b.dram_bytes;
      lsu.(s) <- lsu.(s) +. b.lsu_transactions;
      busy_max.(s) <- Float.max busy_max.(s) b.busy;
      (* Little's law: a block's average issuing parallelism is its total
         lane-busy time over its duration. *)
      if b.critical > 0.0 then
        eff_weighted.(s) <- eff_weighted.(s) +. (b.busy *. (b.busy /. b.critical));
      nblocks.(s) <- nblocks.(s) + 1;
      crit_sum.(s) <- crit_sum.(s) +. b.critical;
      crit_max.(s) <- Float.max crit_max.(s) b.critical)
    blocks;
  let issue = float_of_int cfg.Config.issue_lanes_per_sm in
  let fold f init a = Array.fold_left f init a in
  (* Issue efficiency: a lane retires one op per [issue_dep_stall] cycles,
     so an SM only sustains full width with enough concurrently-issuing
     lanes.  Concurrency = (effective busy blocks co-resident, capped by
     the occupancy limit) x (busy-weighted mean per-block parallelism);
     blocks with negligible work retire instantly and hide nothing. *)
  let compute_bound = ref 0.0 in
  for s = 0 to sms - 1 do
    if nblocks.(s) > 0 && busy.(s) > 0.0 then begin
      let n_eff =
        if busy_max.(s) > 0.0 then busy.(s) /. busy_max.(s) else 1.0
      in
      let eff_mean = eff_weighted.(s) /. busy.(s) in
      let concurrent = Float.min (float_of_int resident) n_eff *. eff_mean in
      let retire =
        Float.min issue
          (Float.max 1.0 (concurrent /. cfg.Config.issue_dep_stall))
      in
      compute_bound := Float.max !compute_bound (busy.(s) /. retire)
    end
  done;
  let compute_bound = !compute_bound in
  let mem_per_sm =
    fold (fun acc v -> Float.max acc (v /. cfg.Config.dram_bw_per_sm)) 0.0 dram
  in
  let total_dram = Array.fold_left (fun acc b -> acc +. b.dram_bytes) 0.0 blocks in
  let mem_device = total_dram /. cfg.Config.dram_bw_device in
  let memory_bound = Float.max mem_per_sm mem_device in
  let lsu_bound =
    fold (fun acc v -> Float.max acc (v /. cfg.Config.l1_txn_per_cycle)) 0.0 lsu
  in
  let latency_bound =
    let r = float_of_int resident in
    Array.to_seqi crit_sum
    |> Seq.fold_left
         (fun acc (s, sum) -> Float.max acc (Float.max crit_max.(s) (sum /. r)))
         0.0
  in
  let per_sm_time =
    let legs = [ compute_bound; memory_bound; lsu_bound; latency_bound ] in
    let dominant = List.fold_left Float.max 0.0 legs in
    let rest = List.fold_left ( +. ) 0.0 legs -. dominant in
    dominant +. (cfg.Config.overlap_alpha *. rest)
  in
  let num_waves = (n + (sms * resident) - 1) / (sms * resident) in
  {
    time = per_sm_time +. cfg.Config.cost.Config.launch_overhead;
    compute_bound;
    memory_bound;
    lsu_bound;
    latency_bound;
    resident_blocks = resident;
    num_waves;
  }
