open Effect
open Effect.Deep

exception Deadlock of string

type block_result = {
  block_id : int;
  num_threads : int;
  critical_cycles : float;
  busy_cycles : float;
  active_lanes : int;  (** lanes that did any work *)
  counters : Counters.t;
}

(* Structured companion to the Deadlock message, stashed domain-locally
   just before the raise so Device can build a failure report without
   parsing the string.  Stuck barriers are listed by display name (ids
   are process-unique atomics whose order depends on pool interleaving;
   names and waiter counts are deterministic), sorted for a canonical
   rendering. *)
type stuck = { stuck_name : string; stuck_waiting : int; stuck_expected : int }

type stall_info = {
  stall_block : int;
  stall_completed : int;
  stall_threads : int;
  stall_cycle : float;  (* max thread clock at detection *)
  stall_stuck : stuck list;
}

let stall_slot : stall_info option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_stall () =
  let slot = Domain.DLS.get stall_slot in
  let s = !slot in
  slot := None;
  s

type _ Effect.t += Wait : Barrier.t * Thread.t -> unit Effect.t

(* The barrier-park hot path performs [Yield] — a constant constructor,
   so the perform itself allocates nothing — with the arrival stashed in
   the scheduler state; [Wait] carries its payload explicitly and remains
   for the cold paths (fault-injected stalls, arrivals outside a
   run_block).  Released waiters are queued in a fixed ring of parallel
   thread/continuation arrays (capacity [num_threads + 1]: a thread is
   parked at most once) and consumed FIFO; [live] tracks barriers with
   parked threads for the deadlock report. *)
type _ Effect.t += Yield : unit Effect.t

type sched = {
  mutable rths : Thread.t array;  (* released-waiter ring *)
  mutable rks : (unit, unit) continuation array;  (* lazily created *)
  mutable head : int;
  mutable tail : int;
  cap : int;
  live : (int, Barrier.t) Hashtbl.t;
  (* the arrival being parked by the in-flight [Yield] *)
  mutable pending_bar : Barrier.t;
  mutable pending_th : Thread.t;
}

let sched_slot : sched option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* The running block's scheduler, stashed on each of its warps (see
   Thread.engine_sched): barrier arrivals are the simulator's single
   most frequent event, and the stash turns the per-arrival DLS lookup
   into a field load.  [run_block] sets it after building [s] and
   resets it on every exit path, so a warp never carries a stale
   scheduler. *)
type Thread.engine_sched += Sched of sched

let sched_push s th k =
  if Array.length s.rks = 0 then s.rks <- Array.make s.cap k;
  s.rths.(s.tail) <- th;
  s.rks.(s.tail) <- k;
  let tail = s.tail + 1 in
  s.tail <- (if tail = s.cap then 0 else tail)

(* Resume order matches the historical list-based scheduler: batches are
   FIFO across releases, and within a release the most recently parked
   waiter runs first. *)
let push_release s bar =
  for i = Barrier.waiting bar - 1 downto 0 do
    sched_push s (Barrier.waiter_th bar i) (Barrier.waiter_k bar i)
  done;
  Barrier.clear bar

let barrier_wait bar th =
  (* Any synchronization orders the warp's outstanding atomics: contention
     is only counted between consecutive sync points.  Bumping the
     generation invalidates every per-line count in O(1). *)
  let warp = th.Thread.warp in
  warp.Thread.atomic_gen <- warp.Thread.atomic_gen + 1;
  (* Injected stall: the victim parks on a private, never-completing
     barrier instead of arriving here — its mask-mates wait forever and
     the block surfaces as a (captured) deadlock. *)
  (if !Fault.armed then
     match Fault.stall_here th ~abandoned:bar with
     | Some stalled -> perform (Wait (stalled, th))
     | None -> ());
  match warp.Thread.esched with
  | Sched s ->
      (* fast path: the last expected arriver releases the barrier and
         keeps running — no continuation capture, no queue round-trip *)
      if Barrier.try_complete bar th then push_release s bar
      else begin
        s.pending_bar <- bar;
        s.pending_th <- th;
        perform Yield
      end
  | _ -> (
      (* warp not created by a live run_block (a bare test harness, or a
         foreign thread arriving mid-run): fall back to the domain-local
         scheduler, exactly the pre-stash behaviour *)
      match !(Domain.DLS.get sched_slot) with
      | Some s ->
          if Barrier.try_complete bar th then push_release s bar
          else begin
            s.pending_bar <- bar;
            s.pending_th <- th;
            perform Yield
          end
      | None -> perform (Wait (bar, th)))

let park_arrival s bar th k =
  (* [barrier_wait] already tried to complete: this arrival cannot be
     the last, so it always parks *)
  Barrier.park bar th k;
  if not (Barrier.live_mark bar) then begin
    Barrier.set_live_mark bar;
    Hashtbl.replace s.live (Barrier.id bar) bar
  end

let run_block ~cfg ?trace ~block_id ~num_threads body =
  if num_threads <= 0 then
    invalid_arg "Engine.run_block: num_threads must be positive";
  if num_threads > cfg.Config.max_threads_per_block then
    invalid_arg "Engine.run_block: block exceeds max_threads_per_block";
  let counters = Counters.create () in
  let ws = cfg.Config.warp_size in
  let num_warps = (num_threads + ws - 1) / ws in
  let warps = Array.init num_warps (fun w -> Thread.make_warp ~cfg ~warp_index:w) in
  let threads =
    Array.init num_threads (fun tid ->
        Thread.create ~cfg ~counters ?trace ~block_id ~tid ~warp:warps.(tid / ws) ())
  in
  (* [live] is keyed by unique barrier id: two live barriers may share a
     display name (e.g. per-warp barriers created in a loop), and colliding
     on the name used to drop one of them from the deadlock report.
     Entries stay registered after release (the live_mark is never
     cleared), so the deadlock formatter below must skip barriers with
     zero parked waiters to report only the actually-stuck ones. *)
  let s =
    {
      rths = Array.make (num_threads + 1) threads.(0);
      rks = [||];
      head = 0;
      tail = 0;
      cap = num_threads + 1;
      live = Hashtbl.create 8;
      pending_bar = Barrier.create ~name:"engine.none" ~expected:1 ~cost:0.0 ();
      pending_th = threads.(0);
    }
  in
  let slot = Domain.DLS.get sched_slot in
  let saved_slot = !slot in
  slot := Some s;
  Array.iter (fun w -> w.Thread.esched <- Sched s) warps;
  let completed = ref 0 in
  (* The Yield handler is the single hottest closure in the simulator
     (every barrier park goes through it); allocating it — and the [Some]
     around it — once per block instead of once per perform keeps the
     park path allocation-free outside the continuation itself.  The
     whole handler record is likewise shared by all of the block's
     fibers. *)
  let on_yield : ((unit, unit) continuation -> unit) option =
    Some (fun k -> park_arrival s s.pending_bar s.pending_th k)
  in
  let handler =
    {
      retc = (fun () -> incr completed);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) :
             ((a, unit) continuation -> unit) option ->
          match eff with
          | Yield -> on_yield
          | Wait (bar, arriving) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  park_arrival s bar arriving k)
          | _ -> None);
    }
  in
  let run_fiber th = match_with body th handler in
  let finally () =
    slot := saved_slot;
    Array.iter (fun w -> w.Thread.esched <- Thread.No_sched) warps
  in
  (try
     (* initial fibers run in tid order; resumptions queue behind them *)
     Array.iter run_fiber threads;
     while s.head <> s.tail do
       let k = s.rks.(s.head) in
       let head = s.head + 1 in
       s.head <- (if head = s.cap then 0 else head);
       continue k ()
     done
   with e ->
     finally ();
     raise e);
  finally ();
  if !completed <> num_threads then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "block %d: %d/%d threads finished; stuck barriers:"
         block_id !completed num_threads);
    let stuck = ref [] in
    Hashtbl.iter
      (fun _ bar ->
        if Barrier.waiting bar > 0 then begin
          Buffer.add_string buf
            (Printf.sprintf " [%s#%d %d/%d]" (Barrier.name bar)
               (Barrier.id bar) (Barrier.waiting bar) (Barrier.expected bar));
          stuck :=
            {
              stuck_name = Barrier.name bar;
              stuck_waiting = Barrier.waiting bar;
              stuck_expected = Barrier.expected bar;
            }
            :: !stuck
        end)
      s.live;
    let stall =
      {
        stall_block = block_id;
        stall_completed = !completed;
        stall_threads = num_threads;
        stall_cycle =
          Array.fold_left
            (fun acc th -> Float.max acc (Thread.clock th))
            0.0 threads;
        stall_stuck = List.sort compare !stuck;
      }
    in
    Domain.DLS.get stall_slot := Some stall;
    raise (Deadlock (Buffer.contents buf))
  end;
  let critical =
    Array.fold_left (fun acc th -> Float.max acc (Thread.clock th)) 0.0 threads
  in
  let active_lanes =
    Array.fold_left
      (fun acc th -> if Thread.busy th > 0.0 then acc + 1 else acc)
      0 threads
  in
  {
    block_id;
    num_threads;
    critical_cycles = critical;
    busy_cycles = Counters.busy_cycles counters;
    active_lanes;
    counters;
  }
