open Effect
open Effect.Deep

exception Deadlock of string

type block_result = {
  block_id : int;
  num_threads : int;
  critical_cycles : float;
  busy_cycles : float;
  active_lanes : int;  (** lanes that did any work *)
  counters : Counters.t;
}

type _ Effect.t += Wait : Barrier.t * Thread.t -> unit Effect.t

let barrier_wait bar th =
  (* Any synchronization orders the warp's outstanding atomics: contention
     is only counted between consecutive sync points. *)
  Hashtbl.reset th.Thread.warp.Thread.atomic_epoch;
  perform (Wait (bar, th))

let run_block ~cfg ?trace ~block_id ~num_threads body =
  if num_threads <= 0 then
    invalid_arg "Engine.run_block: num_threads must be positive";
  if num_threads > cfg.Config.max_threads_per_block then
    invalid_arg "Engine.run_block: block exceeds max_threads_per_block";
  let counters = Counters.create () in
  let ws = cfg.Config.warp_size in
  let num_warps = (num_threads + ws - 1) / ws in
  let warps = Array.init num_warps (fun w -> Thread.make_warp ~cfg ~warp_index:w) in
  let threads =
    Array.init num_threads (fun tid ->
        Thread.create ~cfg ~counters ?trace ~block_id ~tid ~warp:warps.(tid / ws) ())
  in
  let ready : (unit -> unit) Queue.t = Queue.create () in
  let completed = ref 0 in
  (* keyed by unique barrier id: two live barriers may share a display
     name (e.g. per-warp barriers created in a loop), and colliding on the
     name used to drop one of them from the deadlock report *)
  let live_barriers : (int, Barrier.t) Hashtbl.t = Hashtbl.create 8 in
  let release waiters =
    List.iter
      (fun (w : Barrier.waiter) -> Queue.add (fun () -> continue w.k ()) ready)
      waiters
  in
  let run_fiber th =
    match_with body th
      {
        retc = (fun () -> incr completed);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait (bar, arriving) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Barrier.arrive bar arriving k with
                    | None ->
                        Hashtbl.replace live_barriers (Barrier.id bar) bar
                    | Some waiters ->
                        Hashtbl.remove live_barriers (Barrier.id bar);
                        release waiters)
            | _ -> None);
      }
  in
  Array.iter (fun th -> Queue.add (fun () -> run_fiber th) ready) threads;
  let rec drain () =
    match Queue.take_opt ready with
    | Some job ->
        job ();
        drain ()
    | None -> ()
  in
  drain ();
  if !completed <> num_threads then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "block %d: %d/%d threads finished; stuck barriers:"
         block_id !completed num_threads);
    Hashtbl.iter
      (fun _ bar ->
        if Barrier.waiting bar > 0 then
          Buffer.add_string buf
            (Printf.sprintf " [%s %d/%d]" (Barrier.name bar)
               (Barrier.waiting bar) (Barrier.expected bar)))
      live_barriers;
    raise (Deadlock (Buffer.contents buf))
  end;
  let critical =
    Array.fold_left (fun acc th -> Float.max acc th.Thread.clock) 0.0 threads
  in
  let active_lanes =
    Array.fold_left
      (fun acc th -> if th.Thread.busy > 0.0 then acc + 1 else acc)
      0 threads
  in
  {
    block_id;
    num_threads;
    critical_cycles = critical;
    busy_cycles = counters.Counters.lane_busy_cycles;
    active_lanes;
    counters;
  }
