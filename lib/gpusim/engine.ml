open Effect
open Effect.Deep

exception Deadlock of string

type block_result = {
  block_id : int;
  num_threads : int;
  critical_cycles : float;
  busy_cycles : float;
  active_lanes : int;  (** lanes that did any work *)
  counters : Counters.t;
}

(* Structured companion to the Deadlock message, stashed domain-locally
   just before the raise so Device can build a failure report without
   parsing the string.  Stuck barriers are listed by display name (ids
   are process-unique atomics whose order depends on pool interleaving;
   names and waiter counts are deterministic), sorted for a canonical
   rendering. *)
type stuck = { stuck_name : string; stuck_waiting : int; stuck_expected : int }

type stall_info = {
  stall_block : int;
  stall_completed : int;
  stall_threads : int;
  stall_cycle : float;  (* max thread clock at detection *)
  stall_stuck : stuck list;
}

let stall_slot : stall_info option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_stall () =
  let slot = Domain.DLS.get stall_slot in
  let s = !slot in
  slot := None;
  s

type _ Effect.t += Wait : Barrier.t * Thread.t -> unit Effect.t

(* Per-block scheduler state.  Released waiters are queued as the lists
   the barrier produced (one cons per release, not per waiter) and
   consumed FIFO; [live] tracks barriers with parked threads for the
   deadlock report.  The state is published in domain-local storage so
   that [barrier_wait]'s fast path — the last arriver completing the
   barrier inline, without performing an effect — can reschedule the
   released waiters. *)
type sched = {
  mutable cur : Barrier.waiter list;  (* list being consumed *)
  mutable front : Barrier.waiter list list;
  mutable back : Barrier.waiter list list;  (* reversed *)
  live : (int, Barrier.t) Hashtbl.t;
}

let sched_slot : sched option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sched_push s ws = if ws <> [] then s.back <- ws :: s.back

let rec sched_pop s =
  match s.cur with
  | w :: tl ->
      s.cur <- tl;
      Some w
  | [] -> (
      match s.front with
      | l :: tl ->
          s.front <- tl;
          s.cur <- l;
          sched_pop s
      | [] -> (
          match s.back with
          | [] -> None
          | b ->
              s.front <- List.rev b;
              s.back <- [];
              sched_pop s))

let barrier_wait bar th =
  (* Any synchronization orders the warp's outstanding atomics: contention
     is only counted between consecutive sync points.  Bumping the
     generation invalidates every per-line count in O(1). *)
  let warp = th.Thread.warp in
  warp.Thread.atomic_gen <- warp.Thread.atomic_gen + 1;
  (* Injected stall: the victim parks on a private, never-completing
     barrier instead of arriving here — its mask-mates wait forever and
     the block surfaces as a (captured) deadlock. *)
  (if !Fault.armed then
     match Fault.stall_here th ~abandoned:bar with
     | Some stalled -> perform (Wait (stalled, th))
     | None -> ());
  match !(Domain.DLS.get sched_slot) with
  | Some s -> (
      (* fast path: the last expected arriver releases the barrier and
         keeps running — no continuation capture, no queue round-trip *)
      match Barrier.try_complete bar th with
      | Some waiters -> sched_push s waiters
      | None -> perform (Wait (bar, th)))
  | None -> perform (Wait (bar, th))

let run_block ~cfg ?trace ~block_id ~num_threads body =
  if num_threads <= 0 then
    invalid_arg "Engine.run_block: num_threads must be positive";
  if num_threads > cfg.Config.max_threads_per_block then
    invalid_arg "Engine.run_block: block exceeds max_threads_per_block";
  let counters = Counters.create () in
  let ws = cfg.Config.warp_size in
  let num_warps = (num_threads + ws - 1) / ws in
  let warps = Array.init num_warps (fun w -> Thread.make_warp ~cfg ~warp_index:w) in
  let threads =
    Array.init num_threads (fun tid ->
        Thread.create ~cfg ~counters ?trace ~block_id ~tid ~warp:warps.(tid / ws) ())
  in
  (* keyed by unique barrier id: two live barriers may share a display
     name (e.g. per-warp barriers created in a loop), and colliding on the
     name used to drop one of them from the deadlock report.  Entries stay
     registered after release (the live_mark is never cleared), so the
     deadlock formatter below must skip barriers with zero parked waiters
     to report only the actually-stuck ones. *)
  let s = { cur = []; front = []; back = []; live = Hashtbl.create 8 } in
  let slot = Domain.DLS.get sched_slot in
  let saved_slot = !slot in
  slot := Some s;
  let completed = ref 0 in
  let run_fiber th =
    match_with body th
      {
        retc = (fun () -> incr completed);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait (bar, arriving) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    (* [barrier_wait] already tried to complete: this
                       arrival cannot be the last, so it always parks *)
                    Barrier.park bar arriving k;
                    if not (Barrier.live_mark bar) then begin
                      Barrier.set_live_mark bar;
                      Hashtbl.replace s.live (Barrier.id bar) bar
                    end)
            | _ -> None);
      }
  in
  let finally () = slot := saved_slot in
  (try
     (* initial fibers run in tid order; resumptions queue behind them *)
     Array.iter run_fiber threads;
     let rec drain () =
       match sched_pop s with
       | Some w ->
           continue w.Barrier.k ();
           drain ()
       | None -> ()
     in
     drain ()
   with e ->
     finally ();
     raise e);
  finally ();
  if !completed <> num_threads then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "block %d: %d/%d threads finished; stuck barriers:"
         block_id !completed num_threads);
    let stuck = ref [] in
    Hashtbl.iter
      (fun _ bar ->
        if Barrier.waiting bar > 0 then begin
          Buffer.add_string buf
            (Printf.sprintf " [%s#%d %d/%d]" (Barrier.name bar)
               (Barrier.id bar) (Barrier.waiting bar) (Barrier.expected bar));
          stuck :=
            {
              stuck_name = Barrier.name bar;
              stuck_waiting = Barrier.waiting bar;
              stuck_expected = Barrier.expected bar;
            }
            :: !stuck
        end)
      s.live;
    let stall =
      {
        stall_block = block_id;
        stall_completed = !completed;
        stall_threads = num_threads;
        stall_cycle =
          Array.fold_left
            (fun acc th -> Float.max acc (Thread.clock th))
            0.0 threads;
        stall_stuck = List.sort compare !stuck;
      }
    in
    Domain.DLS.get stall_slot := Some stall;
    raise (Deadlock (Buffer.contents buf))
  end;
  let critical =
    Array.fold_left (fun acc th -> Float.max acc (Thread.clock th)) 0.0 threads
  in
  let active_lanes =
    Array.fold_left
      (fun acc th -> if Thread.busy th > 0.0 then acc + 1 else acc)
      0 threads
  in
  {
    block_id;
    num_threads;
    critical_cycles = critical;
    busy_cycles = Counters.busy_cycles counters;
    active_lanes;
    counters;
  }
