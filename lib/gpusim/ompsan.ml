(* Dynamic data-race and barrier-divergence sanitizer.

   Shadow memory over the simulated global and shared address spaces
   records, per cell, the last write and the last read: who performed it
   (block, warp, lane), in which epoch, with which access kind, and at
   which source site.  Epochs advance at barrier releases — block/warp
   barriers and the `__simd` state-machine hand-off rendezvous all funnel
   through [barrier_arrive] — so two accesses conflict iff they touch the
   same cell from different lanes, at least one is a plain (non-atomic)
   write, and no barrier whose participant set covers both lanes released
   between them.  Atomic-vs-atomic pairs are exempt.

   Lanes are identified by their logical ACTOR, not their physical tid:
   in SPMD mode every lane of a SIMD group redundantly executes the
   region code of one OpenMP thread, so region-level accesses by
   group-mates are the same logical thread and must not race with each
   other (uniform redundant stores are how SIMT executes scalar code).
   The runtime switches a lane's actor to its own tid only inside simd
   loop bodies, where iterations genuinely belong to distinct lanes, and
   to the group leader's tid while executing region code on a group's
   behalf.

   Synchronization is tracked exactly (per ordered pair of block
   threads), not transitively: [sync.(t*n+u)] holds the epoch of the
   last release of a barrier both t and u participated in.  Every
   sharing hand-off in this runtime synchronizes the communicating pair
   directly (the publishing main is in the mask its workers wait on), so
   the pairwise relation covers all legal patterns; chained hand-offs
   through a third thread would over-report, which is the conservative
   direction for a sanitizer.

   Everything below is gated on [enabled]: with the sanitizer off the
   hooks reduce to one load-and-branch, the shadow state is never
   allocated, and no thread clock or counter is ever touched — the
   existing bit-identity tests double as the proof. *)

type access_kind = Read | Write | Atomic

let kind_label = function Read -> "read" | Write -> "write" | Atomic -> "atomic"

(* --- enable switch ---------------------------------------------------- *)

let env_enabled () =
  (* blank = unset = off; anything else falls back to off as well — the
     sanitizer is opt-in and must never arm by accident *)
  match Ompsimd_util.Env.var "OMPSIMD_SANITIZE" with
  | Some ("1" | "on" | "true" | "yes") -> true
  | Some _ | None -> false

let enabled = ref (env_enabled ())
let refresh_from_env () = enabled := env_enabled ()

(* --- site registry ----------------------------------------------------

   Sites are interned statement labels ("store out[(r*8)+j]").  Ids are
   process-local and may differ between runs (the walker engine interns
   lazily, in block execution order); labels are what reports print, so
   formatted reports are identical across engines and pool sizes. *)

let site_mutex = Mutex.create ()
let site_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let site_labels : string array ref = ref (Array.make 64 "")
let site_count = ref 0

let register_site label =
  Mutex.lock site_mutex;
  let id =
    match Hashtbl.find_opt site_ids label with
    | Some id -> id
    | None ->
        let id = !site_count in
        let cap = Array.length !site_labels in
        if id = cap then begin
          let bigger = Array.make (2 * cap) "" in
          Array.blit !site_labels 0 bigger 0 cap;
          site_labels := bigger
        end;
        !site_labels.(id) <- label;
        site_count := id + 1;
        Hashtbl.add site_ids label id;
        id
  in
  Mutex.unlock site_mutex;
  id

let runtime_site = register_site "<runtime>"

let site_label id =
  Mutex.lock site_mutex;
  let l = if id >= 0 && id < !site_count then !site_labels.(id) else "<?>" in
  Mutex.unlock site_mutex;
  l

(* --- findings --------------------------------------------------------- *)

type access = {
  a_block : int;
  a_tid : int;
  a_warp : int;
  a_lane : int;
  a_kind : access_kind;
  a_site : int;
}

type finding =
  | Race of {
      shared : bool;  (** shared (team) space rather than global memory *)
      space : int;  (** space / arena id *)
      addr : int;  (** byte address of the cell *)
      first : access;  (** earlier access (from the shadow record) *)
      second : access;  (** current access that completed the race *)
    }
  | Cross_race of { space : int; addr : int; first : access; second : access }
  | Divergence of {
      block : int;
      warp : int;
      stalled_tid : int;
      stalled_bar : string;  (** barrier the sibling lane is parked at *)
      arriving_tid : int;
      arriving_bar : string;  (** different barrier its mask-mate reached *)
    }

type report = { kernel : string; findings : finding list; blocks : int }

let is_clean r = r.findings = []

let pp_access ppf a =
  Format.fprintf ppf "%s by block %d tid %d (warp %d lane %d) at %s"
    (kind_label a.a_kind) a.a_block a.a_tid a.a_warp a.a_lane
    (site_label a.a_site)

let pp_finding ppf = function
  | Race { shared; space; addr; first; second } ->
      Format.fprintf ppf "data race on %s space#%d addr 0x%x: %a vs %a"
        (if shared then "shared" else "global")
        space addr pp_access first pp_access second
  | Cross_race { space; addr; first; second } ->
      Format.fprintf ppf "cross-block data race on global space#%d addr 0x%x: %a vs %a"
        space addr pp_access first pp_access second
  | Divergence { block; warp; stalled_tid; stalled_bar; arriving_tid; arriving_bar }
    ->
      Format.fprintf ppf
        "barrier divergence in block %d warp %d: tid %d parked at [%s] while \
         mask-mate tid %d reached [%s]"
        block warp stalled_tid stalled_bar arriving_tid arriving_bar

let finding_to_string f = Format.asprintf "%a" pp_finding f

let pp_report ppf r =
  if r.findings = [] then
    Format.fprintf ppf "ompsan: kernel %s: clean (%d blocks)" r.kernel r.blocks
  else begin
    Format.fprintf ppf "ompsan: kernel %s: %d finding(s) over %d blocks"
      r.kernel (List.length r.findings) r.blocks;
    List.iter (fun f -> Format.fprintf ppf "@\n  %a" pp_finding f) r.findings
  end

let report_strings r = List.map finding_to_string r.findings

(* --- per-block shadow state ------------------------------------------- *)

type cell = {
  mutable w_tid : int;  (* -1 = no write recorded *)
  mutable w_actor : int;
  mutable w_time : int;
  mutable w_kind : access_kind;
  mutable w_site : int;
  mutable r_tid : int;  (* -1 = no read recorded *)
  mutable r_actor : int;
  mutable r_time : int;
  mutable r_site : int;
}

type cell_key = { ck_shared : bool; ck_id : int; ck_addr : int }

(* cross-block per-cell access summary (global space only) *)
let f_read = 1
and f_write = 2
and f_atomic = 4

type summary = {
  mutable s_flags : int;
  mutable s_r : access option;
  mutable s_w : access option;
  mutable s_a : access option;
}

type parked = {
  p_warp : int;
  p_mask : int;
  p_block_scope : bool;
  p_bar : int;
  p_name : string;
  p_sm : bool;  (* parked inside the __simd state machine: exempt *)
}

type pending = { pend_expected : int; mutable pend_tids : int list }

type state = {
  st_block : int;
  st_threads : int;
  st_ws : int;  (* warp size, to reconstruct warp/lane of recorded tids *)
  sync : int array;  (* st_threads^2 pairwise last-sync epochs *)
  actors : int array;
      (* logical owner of tid's current accesses: its own tid in simd
         loop bodies, the group leader's tid in redundant region code *)
  mutable now : int;  (* current epoch; accesses are stamped with it *)
  mutable cur_site : int;
  cells : (cell_key, cell) Hashtbl.t;
  summaries : (cell_key, summary) Hashtbl.t;
  parked : parked option array;  (* indexed by tid *)
  pendings : (int, pending) Hashtbl.t;  (* barrier id -> arrivals *)
  sm_flag : bool array;  (* tid is executing the __simd state machine *)
  mutable findings_rev : finding list;
  mutable nfindings : int;
  dedup : (int * int * int, unit) Hashtbl.t;
}

type block_report = {
  br_block : int;
  br_findings : finding list;  (* discovery order *)
  br_summaries : (cell_key * summary) list;  (* sorted by cell key *)
}

let max_findings_per_block = 64

let state_slot : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let block_begin ~block_id ~num_threads ~warp_size =
  if !enabled then begin
    let slot = Domain.DLS.get state_slot in
    (match !slot with
    | Some _ -> invalid_arg "Ompsan.block_begin: shadow state already open"
    | None -> ());
    slot :=
      Some
        {
          st_block = block_id;
          st_threads = num_threads;
          st_ws = warp_size;
          sync = Array.make (num_threads * num_threads) 0;
          actors = Array.init num_threads Fun.id;
          now = 1;
          cur_site = runtime_site;
          cells = Hashtbl.create 256;
          summaries = Hashtbl.create 64;
          parked = Array.make num_threads None;
          pendings = Hashtbl.create 16;
          sm_flag = Array.make num_threads false;
          findings_rev = [];
          nfindings = 0;
          dedup = Hashtbl.create 16;
        }
  end

let close_block () =
  let slot = Domain.DLS.get state_slot in
  match !slot with
  | None -> None
  | Some st ->
      slot := None;
      let summaries =
        Hashtbl.fold (fun k s acc -> (k, s) :: acc) st.summaries []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Some
        {
          br_block = st.st_block;
          br_findings = List.rev st.findings_rev;
          br_summaries = summaries;
        }

let block_end () = close_block ()

(* Findings that would be lost to an in-flight exception (a sanitized
   kernel that deadlocks — e.g. genuine barrier divergence — never
   reaches the launch epilogue).  [block_abort] stashes them here. *)
let aborted_mutex = Mutex.create ()
let aborted_rev : finding list ref = ref []

let block_abort () =
  match close_block () with
  | None -> ()
  | Some br ->
      Mutex.lock aborted_mutex;
      aborted_rev := List.rev_append br.br_findings !aborted_rev;
      Mutex.unlock aborted_mutex

let take_aborted () =
  Mutex.lock aborted_mutex;
  let fs = List.rev !aborted_rev in
  aborted_rev := [];
  Mutex.unlock aborted_mutex;
  fs

let set_site id =
  match !(Domain.DLS.get state_slot) with
  | Some st -> st.cur_site <- id
  | None -> ()

let set_actor (th : Thread.t) actor =
  match !(Domain.DLS.get state_slot) with
  | Some st ->
      let tid = th.Thread.tid in
      let prev = st.actors.(tid) in
      st.actors.(tid) <- actor;
      prev
  | None -> actor

(* --- access checking -------------------------------------------------- *)

(* A pair of accesses conflicts iff at least one side is a plain write:
   R/R never, A/A and A/R are exempt (the paper's atomics carveout), and
   W against anything races. *)
let conflicts k1 k2 = k1 = Write || k2 = Write

let synced st t u time = st.sync.((t * st.st_threads) + u) >= time

let add_finding st key f =
  if st.nfindings < max_findings_per_block && not (Hashtbl.mem st.dedup key)
  then begin
    Hashtbl.add st.dedup key ();
    st.findings_rev <- f :: st.findings_rev;
    st.nfindings <- st.nfindings + 1
  end

let mk_access st ~tid ~kind ~site =
  {
    a_block = st.st_block;
    a_tid = tid;
    a_warp = tid / st.st_ws;
    a_lane = tid mod st.st_ws;
    a_kind = kind;
    a_site = site;
  }

let fresh_cell () =
  {
    w_tid = -1;
    w_actor = -1;
    w_time = 0;
    w_kind = Read;
    w_site = 0;
    r_tid = -1;
    r_actor = -1;
    r_time = 0;
    r_site = 0;
  }

let record st ~shared ~id ~addr ~tid ~kind =
  let site = st.cur_site in
  let actor = st.actors.(tid) in
  let key = { ck_shared = shared; ck_id = id; ck_addr = addr } in
  if not shared then begin
    let s =
      match Hashtbl.find_opt st.summaries key with
      | Some s -> s
      | None ->
          let s = { s_flags = 0; s_r = None; s_w = None; s_a = None } in
          Hashtbl.add st.summaries key s;
          s
    in
    let a () = Some (mk_access st ~tid ~kind ~site) in
    (match kind with
    | Read ->
        if s.s_flags land f_read = 0 then s.s_r <- a ();
        s.s_flags <- s.s_flags lor f_read
    | Write ->
        if s.s_flags land f_write = 0 then s.s_w <- a ();
        s.s_flags <- s.s_flags lor f_write
    | Atomic ->
        if s.s_flags land f_atomic = 0 then s.s_a <- a ();
        s.s_flags <- s.s_flags lor f_atomic)
  end;
  let c =
    match Hashtbl.find_opt st.cells key with
    | Some c -> c
    | None ->
        let c = fresh_cell () in
        Hashtbl.add st.cells key c;
        c
  in
  let race ~first_tid ~first_kind ~first_site =
    let first = mk_access st ~tid:first_tid ~kind:first_kind ~site:first_site in
    let second = mk_access st ~tid ~kind ~site in
    let tag = if shared then 1 else 0 in
    add_finding st (tag, first_site, site)
      (Race { shared; space = id; addr; first; second })
  in
  (* against the last write; same-actor accesses are one logical lane's
     redundant work and never conflict *)
  if
    c.w_tid >= 0 && c.w_tid <> tid && c.w_actor <> actor
    && conflicts c.w_kind kind
    && not (synced st tid c.w_tid c.w_time)
  then race ~first_tid:c.w_tid ~first_kind:c.w_kind ~first_site:c.w_site;
  (* a write also races with the last read *)
  if
    kind = Write && c.r_tid >= 0 && c.r_tid <> tid && c.r_actor <> actor
    && not (synced st tid c.r_tid c.r_time)
  then race ~first_tid:c.r_tid ~first_kind:Read ~first_site:c.r_site;
  match kind with
  | Read ->
      c.r_tid <- tid;
      c.r_actor <- actor;
      c.r_time <- st.now;
      c.r_site <- site
  | Write | Atomic ->
      c.w_tid <- tid;
      c.w_actor <- actor;
      c.w_time <- st.now;
      c.w_kind <- kind;
      c.w_site <- site

let global_access (th : Thread.t) ~sid ~addr ~kind =
  match !(Domain.DLS.get state_slot) with
  | None -> ()
  | Some st -> record st ~shared:false ~id:sid ~addr ~tid:th.Thread.tid ~kind

let shared_access (th : Thread.t) ~aid ~addr ~kind =
  match !(Domain.DLS.get state_slot) with
  | None -> ()
  | Some st -> record st ~shared:true ~id:aid ~addr ~tid:th.Thread.tid ~kind

(* --- barriers and epochs ---------------------------------------------- *)

let enter_state_machine (th : Thread.t) =
  match !(Domain.DLS.get state_slot) with
  | Some st -> st.sm_flag.(th.Thread.tid) <- true
  | None -> ()

let leave_state_machine (th : Thread.t) =
  match !(Domain.DLS.get state_slot) with
  | Some st -> st.sm_flag.(th.Thread.tid) <- false
  | None -> ()

(* Divergence: a lane arriving at barrier B while a mask-mate sits parked
   at a *different* warp-scope barrier whose mask covers (or overlaps)
   the arriver means the two lanes disagree about which rendezvous comes
   next — mismatched masks or trip counts.  Arrivals and parked entries
   inside the __simd state machine are exempt: workers legitimately wait
   at the hand-off barrier (whose mask includes their main) while the
   main runs region code and crosses block-scope barriers. *)
let check_divergence st ~tid ~warp ~mask ~block_scope ~bar_id ~bar_name =
  if not st.sm_flag.(tid) then
    let lane = tid mod st.st_ws in
    Array.iteri
      (fun ptid entry ->
        match entry with
        | Some p
          when ptid <> tid && (not p.p_block_scope) && (not p.p_sm)
               && p.p_warp = warp && p.p_bar <> bar_id
               && (if block_scope then Ompsimd_util.Mask.mem p.p_mask lane
                   else not (Ompsimd_util.Mask.disjoint p.p_mask mask)) ->
            add_finding st (3, p.p_bar, bar_id)
              (Divergence
                 {
                   block = st.st_block;
                   warp;
                   stalled_tid = ptid;
                   stalled_bar = p.p_name;
                   arriving_tid = tid;
                   arriving_bar = bar_name;
                 })
        | _ -> ())
      st.parked

let barrier_arrive (th : Thread.t) ~block_scope ~mask ~bar_id ~bar_name
    ~expected ~participants =
  match !(Domain.DLS.get state_slot) with
  | None -> ()
  | Some st ->
      let tid = th.Thread.tid in
      let warp = th.Thread.warp.Thread.warp_index in
      check_divergence st ~tid ~warp ~mask ~block_scope ~bar_id ~bar_name;
      let pend =
        match Hashtbl.find_opt st.pendings bar_id with
        | Some p -> p
        | None ->
            let p = { pend_expected = expected; pend_tids = [] } in
            Hashtbl.add st.pendings bar_id p;
            p
      in
      pend.pend_tids <- tid :: pend.pend_tids;
      if List.length pend.pend_tids >= pend.pend_expected then begin
        (* release: everyone in the participant set synchronizes pairwise
           at the current epoch; later accesses belong to the next one *)
        let t = st.now in
        let n = st.st_threads in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a <> b && a < n && b < n then st.sync.((a * n) + b) <- t)
              participants)
          participants;
        st.now <- t + 1;
        List.iter
          (fun p -> if p < n then st.parked.(p) <- None)
          pend.pend_tids;
        Hashtbl.remove st.pendings bar_id
      end
      else
        st.parked.(tid) <-
          Some
            {
              p_warp = warp;
              p_mask = mask;
              p_block_scope = block_scope;
              p_bar = bar_id;
              p_name = bar_name;
              p_sm = st.sm_flag.(tid);
            }

(* --- launch-level composition ----------------------------------------- *)

let kernel_name = ref "<kernel>"
let set_kernel n = kernel_name := n

(* Cross-block conflicts from the per-block summaries, folded in
   ascending block id.  A block's non-atomic write races with any access
   to the same cell from an earlier block; its atomic races with an
   earlier plain write (blocks only synchronize through kernel
   boundaries).  With the homogeneous-grid dedup fast path the same
   [block_report] stands in for every member of its class, so a class
   with more than one member whose representative writes a fixed cell
   correctly races with itself. *)
let cross_block_findings per_block =
  let acc : (cell_key, summary) Hashtbl.t = Hashtbl.create 64 in
  let dedup = Hashtbl.create 16 in
  let findings = ref [] in
  let nf = ref 0 in
  let emit key f =
    if !nf < max_findings_per_block && not (Hashtbl.mem dedup key) then begin
      Hashtbl.add dedup key ();
      findings := f :: !findings;
      incr nf
    end
  in
  Array.iter
    (fun br_opt ->
      match br_opt with
      | None -> ()
      | Some br ->
          List.iter
            (fun (key, s) ->
              (match Hashtbl.find_opt acc key with
              | None -> ()
              | Some prior ->
                  let pair first second =
                    match (first, second) with
                    | Some first, Some second ->
                        emit
                          (2, first.a_site, second.a_site)
                          (Cross_race
                             {
                               space = key.ck_id;
                               addr = key.ck_addr;
                               first;
                               second;
                             })
                    | _ -> ()
                  in
                  if s.s_flags land f_write <> 0 then begin
                    if prior.s_flags land f_write <> 0 then pair prior.s_w s.s_w;
                    if prior.s_flags land f_read <> 0 then pair prior.s_r s.s_w;
                    if prior.s_flags land f_atomic <> 0 then
                      pair prior.s_a s.s_w
                  end;
                  if
                    s.s_flags land f_read <> 0
                    && prior.s_flags land f_write <> 0
                  then pair prior.s_w s.s_r;
                  if
                    s.s_flags land f_atomic <> 0
                    && prior.s_flags land f_write <> 0
                  then pair prior.s_w s.s_a);
              (* fold this block's summary into the accumulator, keeping
                 the earliest representative access per kind *)
              match Hashtbl.find_opt acc key with
              | None ->
                  Hashtbl.add acc key
                    {
                      s_flags = s.s_flags;
                      s_r = s.s_r;
                      s_w = s.s_w;
                      s_a = s.s_a;
                    }
              | Some prior ->
                  if prior.s_flags land f_read = 0 then prior.s_r <- s.s_r;
                  if prior.s_flags land f_write = 0 then prior.s_w <- s.s_w;
                  if prior.s_flags land f_atomic = 0 then prior.s_a <- s.s_a;
                  prior.s_flags <- prior.s_flags lor s.s_flags)
            br.br_summaries)
    per_block;
  List.rev !findings

(* [per_block.(b)] is block b's report; with grid dedup the same report
   (physically) may appear under several block ids — intra-block findings
   are merged once per distinct report, summaries once per member. *)
let launch_report (per_block : block_report option array) =
  let seen = ref [] in
  let intra = ref [] in
  Array.iter
    (fun br_opt ->
      match br_opt with
      | Some br when not (List.memq br !seen) ->
          seen := br :: !seen;
          intra := List.rev_append br.br_findings !intra
      | _ -> ())
    per_block;
  {
    kernel = !kernel_name;
    findings = List.rev !intra @ cross_block_findings per_block;
    blocks = Array.length per_block;
  }
