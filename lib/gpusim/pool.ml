(* A fixed pool of OCaml 5 domains for block-parallel simulation.

   Design constraints (see DESIGN.md "Host-side parallel simulation"):
   - no dependencies beyond the stdlib (Domain / Mutex / Condition / Atomic);
   - deterministic results: workers race only for *indices* (an atomic
     fetch-add over [0, n)); slot [i] of the result array is always filled
     by the computation for index [i], so the caller observes the same
     array no matter which domain ran which index;
   - a pool with zero workers degrades to a plain [Array.init], which is
     the sequential reference path. *)

type job = {
  n : int;
  next : int Atomic.t;  (* next unclaimed index *)
  completed : int Atomic.t;
  run : int -> unit;  (* wrapped task: stores result / records exception *)
}

type t = {
  workers : int;
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  work : Condition.t;  (* new job published *)
  finished : Condition.t;  (* all indices of the current job completed *)
  mutable gen : int;  (* bumped once per published job *)
  mutable job : job option;
  mutable stop : bool;
}

let size t = t.workers

let drain job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.run i;
      go ()
    end
  in
  go ()

let worker t =
  let mygen = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while t.gen = !mygen && not t.stop do
      Condition.wait t.work t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      mygen := t.gen;
      let job = t.job in
      Mutex.unlock t.m;
      (match job with Some j -> drain j | None -> ());
      loop ()
    end
  in
  loop ()

let create ?(domains = 0) () =
  if domains < 0 then invalid_arg "Pool.create: domains must be >= 0";
  (* Cap at a sane multiple of the machine: a pool wider than the host
     only adds scheduling noise. *)
  let workers = min domains (4 * Domain.recommended_domain_count ()) in
  let t =
    {
      workers;
      domains = [||];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      gen = 0;
      job = None;
      stop = false;
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.domains

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if t.workers = 0 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    (* first_exn keeps the lowest-index failure so the caller sees the
       same exception the sequential path would raise first *)
    let first_exn = ref None in
    let completed = Atomic.make 0 in
    let run_one i =
      (try results.(i) <- Some (f i)
       with e ->
         Mutex.lock t.m;
         (match !first_exn with
         | Some (j, _) when j < i -> ()
         | _ -> first_exn := Some (i, e));
         Mutex.unlock t.m);
      if Atomic.fetch_and_add completed 1 = n - 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end
    in
    let job = { n; next = Atomic.make 0; completed; run = run_one } in
    Mutex.lock t.m;
    t.job <- Some job;
    t.gen <- t.gen + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (* the submitting domain simulates too *)
    drain job;
    Mutex.lock t.m;
    while Atomic.get completed < n do
      Condition.wait t.finished t.m
    done;
    t.job <- None;
    Mutex.unlock t.m;
    (match !first_exn with Some (_, e) -> raise e | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> failwith "Pool.parallel_init: missing result")
      results
  end

let env_var = "OMPSIMD_DOMAINS"

let domains_of_env () =
  (* The simulation is compute-bound and allocation-heavy, so domains
     beyond the physical cores only add stop-the-world GC coordination:
     the policy layer caps any request at cores - 1 (the submitting
     domain simulates too).  [create] itself stays exact for callers
     that oversubscribe deliberately (tests).  A blank value means
     unset ({!Ompsimd_util.Env}). *)
  let cap = max 0 (Domain.recommended_domain_count () - 1) in
  match Ompsimd_util.Env.var env_var with
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 0 -> min d cap
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "Pool: %s must be a non-negative integer, got %S"
               env_var s))
  | None -> cap

let default = ref None

let get_default () =
  match !default with
  | Some p -> p
  | None ->
      let p = create ~domains:(domains_of_env ()) () in
      default := Some p;
      p
