(** The device zoo — named configurations sweeping the architecture axes
    the paper's single testbed holds constant: warp width (8/16/32/64),
    warp-barrier implementation ({!Config.barrier_impl}), shared-memory
    size and L2 geometry.

    Every entry passes {!Config.checked} at module initialization, so a
    sweep (or a heterogeneous fleet) can never run on an impossible
    device.  Zoo entries are quarter-scale like {!Config.a100_quarter}:
    relative results match the full-size shapes at a quarter of the
    simulation cost. *)

type entry = {
  name : string;
  config : Config.t;
  blurb : string;  (** one-line description for listings *)
}

val sweep : entry list
(** The zoo proper — the ten swept configurations ([w8-hw] … [w32-l2tiny]),
    in sweep order. *)

val aliases : entry list
(** The pre-zoo device names ([a100], [a100q], [amd], [small]). *)

val all : entry list
(** [aliases @ sweep]. *)

val names : string list

val find : string -> entry option

val resolve : ?default:Config.t -> string -> (Config.t, string) result
(** Resolve a device spec: a zoo name ([w64-sw]), [key=value,...]
    overrides over [default] (itself defaulting to
    {!Config.a100_quarter}), or a name followed by overrides
    ([w64-sw,num_sms=4]).  Errors name the unknown device or the bad
    key, and the result is always validated. *)

val env_var : string
(** ["OMPSIMD_DEVICE"]. *)

val of_env : ?default:Config.t -> unit -> (Config.t, string) result
(** Resolve [OMPSIMD_DEVICE] (blank or unset means [default]), prefixing
    errors with the variable name. *)

val pp_table : Format.formatter -> unit -> unit
(** Render the registry as a listing (name, warp, barrier, blurb). *)
