(** A small fixed pool of OCaml 5 domains for block-parallel simulation.

    Thread blocks are independent by construction (each owns its
    {!Shared.arena}, {!Counters.t} and warp caches), so {!Device.launch}
    can fan their simulation out over host cores.  The pool keeps the
    scheduling deterministic-by-construction: workers race only for
    {e indices}; the result for index [i] always lands in slot [i], so the
    caller sees the same array regardless of which domain ran what.

    Worker count is configured explicitly or via the [OMPSIMD_DOMAINS]
    environment variable ([0] = sequential; unset defaults to
    [Domain.recommended_domain_count () - 1]; explicit values are capped
    at the same quantity — see {!domains_of_env}). *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (default [0], a
    sequential pool).  The submitting domain participates in
    {!parallel_init} as well, but a zero-worker pool runs everything
    inline with no synchronization at all.
    @raise Invalid_argument on a negative [domains]. *)

val size : t -> int
(** Number of worker domains (0 for a sequential pool). *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is observably [Array.init n f]: slot [i]
    holds [f i].  Indices are claimed by an atomic fetch-add, so any
    domain may run any index, but all [n] tasks complete before the call
    returns.  If one or more tasks raise, the exception with the {e
    lowest} index is re-raised (matching what a sequential left-to-right
    run would surface first); the remaining tasks still run to
    completion.  Not reentrant: [f] must not call [parallel_init] on the
    same pool. *)

val shutdown : t -> unit
(** Join all worker domains.  The pool must not be used afterwards.
    Leaving a pool running at process exit is harmless (workers are
    parked on a condition variable), but explicit shutdown keeps e.g.
    benchmark harnesses tidy. *)

val env_var : string
(** ["OMPSIMD_DOMAINS"]. *)

val domains_of_env : unit -> int
(** Worker count requested by the environment: [OMPSIMD_DOMAINS] if set
    (must parse as a non-negative integer), otherwise — and as an upper
    cap on explicit values — [Domain.recommended_domain_count () - 1].
    The cap exists because the simulation is compute-bound and
    allocation-heavy: domains beyond the physical cores only add
    stop-the-world GC coordination (on a single-core host every request
    degrades to the sequential path).  Use {!create} directly to
    oversubscribe deliberately.
    @raise Invalid_argument on an unparsable value. *)

val get_default : unit -> t
(** The process-wide pool, created from {!domains_of_env} on first use.
    Intended for entry points (benchmarks, experiment drivers); library
    code takes an explicit pool argument instead. *)
