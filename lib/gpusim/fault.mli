(** Deterministic fault injection and failure capture.

    A fault plan parsed from [OMPSIMD_FAULTS] ("kind=rate" tokens,
    comma separated; kinds [abort], [flip] (optionally [flip=rate:frac]
    with [frac] the fatal fraction), [stall], [exhaust]) and seeded by
    [OMPSIMD_FAULT_SEED].  Every decision is drawn at block start from
    (plan seed, launch nonce, block_id), so injected faults are
    bit-identical across [OMPSIMD_DOMAINS] and both [OMPSIMD_EVAL]
    engines; the nonce counts armed launches so a relaunch of a failed
    request draws fresh faults, and {!reset} rewinds it so replaying a
    whole trace reproduces the identical fault sequence.

    Arming a plan — any non-blank spec, even with all-zero rates — or
    setting a positive [OMPSIMD_WATCHDOG] cycle budget also switches
    {!Device.launch} from raising {!Engine.Deadlock} to reporting hung
    blocks as structured {!failure}s.  Disarmed, every hook is a single
    load-and-branch and reports are bit-identical to a build without
    this module. *)

type kind =
  | Block_abort  (** injected asynchronous block abort *)
  | Ecc_fatal  (** uncorrectable bit flip *)
  | Barrier_stall  (** a thread parked forever short of a rendezvous *)
  | Watchdog  (** block exceeded the cycle budget *)

val kind_label : kind -> string

type failure = {
  f_kind : kind;
  f_block : int;
  f_warp : int;  (** -1 when not warp-specific *)
  f_tid : int;  (** -1 when not thread-specific *)
  f_barrier : string;
      (** display name(s) of the involved barrier(s); "" when none.
          Deliberately the {e name}, not {!Barrier.id}: ids are
          process-unique atomics whose allocation order depends on the
          pool interleaving, names are deterministic. *)
  f_cycle : float;
}

val failure_to_string : failure -> string
(** Deterministic one-line rendering (used by reports and tests). *)

type stats = {
  corrected : int;  (** ECC-correctable flips, repaired in place *)
  fatal : int;  (** injected aborts + uncorrectable flips *)
  stalls : int;  (** barrier-stall failures (injected or genuine) *)
  exhausts : int;  (** sharing acquires forced onto the global fallback *)
  watchdogs : int;  (** blocks over the [OMPSIMD_WATCHDOG] budget *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

type events = {
  ev_corrected : int;
  ev_exhausts : int;
  ev_stall : failure option;  (** the injected stall, when one fired *)
}

val no_events : events

exception Fatal of failure
(** Raised by {!on_access} inside the victim thread's fiber; caught by
    [Device.simulate_block] and turned into a failed block. *)

val armed : bool ref
(** Hot-path gate: hooks are behind [if !Fault.armed]. *)

val refresh_from_env : unit -> unit
(** Re-read [OMPSIMD_FAULTS] / [OMPSIMD_FAULT_SEED] /
    [OMPSIMD_WATCHDOG].  An unchanged plan keeps the launch nonce; a
    changed (or cleared) plan resets it.
    @raise Invalid_argument on a malformed spec. *)

val reset : unit -> unit
(** Rewind the launch nonce so the next armed launch replays the fault
    sequence from the start (trace replays, determinism tests). *)

val watchdog_budget : unit -> float
(** The per-block cycle budget; 0 = watchdog off. *)

val capture_deadlocks : unit -> bool
(** Whether [Device.launch] converts deadlocks into structured failures
    (armed plan or positive watchdog budget) instead of re-raising. *)

val launch_begin : unit -> unit
(** Called once per [Device.launch]; bumps the nonce when armed. *)

val with_nonce : int -> (unit -> 'a) -> 'a
(** [with_nonce n f] runs [f] with the next armed launch drawing its
    faults at exactly nonce [n], restoring the counter afterwards so
    surrounding sequential launches are unaffected.  This is how the
    fleet scheduler makes injection a pure function of (plan, request,
    attempt) instead of global dispatch order: batched, sharded and
    solo replays of the same request inject identical faults.  A no-op
    when disarmed. *)

val block_begin : block_id:int -> num_threads:int -> warp_size:int -> unit
(** Draw this block's fault decisions (no-op when disarmed).
    @raise Invalid_argument if a block is already open on this domain. *)

val block_end : unit -> events
val block_abort : unit -> events
(** Close the block and return what fired; {!block_abort} is the
    exception-path variant (same behaviour, named for symmetry with
    {!Ompsan}). *)

val on_access : Thread.t -> unit
(** Global-access tap: aborts/flips fire at the victim's first access at
    or after the drawn trigger cycle.  @raise Fatal on a fatal fault. *)

val stall_here : Thread.t -> abandoned:Barrier.t -> Barrier.t option
(** Barrier-arrival tap: [Some b] directs the arriving thread to park on
    the never-completing barrier [b] instead of [abandoned]. *)

val exhaust_here : unit -> bool
(** Sharing-space tap: [true] forces the global-memory fallback. *)
