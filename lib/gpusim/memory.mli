(** Simulated global (device) memory.

    Arrays carry both real OCaml storage (so kernels compute real results
    that tests can verify against references) and a base byte address (so
    the coalescing model can reason about lines).  Every device-side access
    goes through a [Thread.t] and is charged to its clock and counters;
    host-side accessors ([host_get] etc.) are free and used for
    initialization and verification only.

    Elements are modelled as 8 bytes (double / 64-bit index) which matches
    the paper's workloads. *)

type space
(** A device's global address space (an address allocator). *)

val space : unit -> space

val space_id : space -> int
(** Process-unique id; keys the sanitizer's shadow memory. *)

val element_bytes : int
(** 8 *)

type farray
type iarray

val falloc : space -> int -> farray
(** Zero-initialized float array of the given length.
    @raise Invalid_argument on negative length. *)

val ialloc : space -> int -> iarray

val of_float_array : space -> float array -> farray
(** Copy host data to a fresh device array. *)

val of_int_array : space -> int array -> iarray

val flength : farray -> int
val ilength : iarray -> int

val space_of_farray : farray -> space
val space_of_iarray : iarray -> space

val l2_reset : space -> unit
(** Cold-start the device-level L2 model.  Benchmark runners call this
    before each kernel launch so that back-to-back runs over the same
    data measure the same thing. *)

(** {2 Per-block L2 sessions}

    The device L2 is the only simulator state shared between thread
    blocks.  {!Device.launch} brackets each block's simulation in a
    session: while a session is open on the current domain, L2 lookups
    hit a private fork of the committed L2 (its state as of launch
    start) and the touch sequence is logged.  The launcher commits all
    block logs in ascending block_id order once every block is done,
    which makes block simulation order-independent — the prerequisite
    for both multicore fan-out and the homogeneous-grid dedup fast path.
    Without an open session (e.g. a bare {!Engine.run_block}) accesses
    touch the committed L2 directly. *)

type block_session

val session_begin : unit -> unit
(** Open a session on the calling domain.
    @raise Invalid_argument if one is already open. *)

val session_end : unit -> block_session
(** Close the current domain's session and return it for a later
    {!session_commit}.  @raise Invalid_argument if none is open. *)

val session_commit : block_session -> unit
(** Replay the session's L2 touches into the committed L2.  Call once
    per session, from a single domain, in ascending block_id order. *)

val line_memo_enabled : bool ref
(** The address→line (coalescing key) computation is memoized per warp
    (small LRU keyed by array base, serving strided re-accesses within a
    line).  The memo is exact — on by default; the flag exists so tests
    can demonstrate counter equality against the unmemoized path. *)

val fget : farray -> Thread.t -> int -> float
(** Device load: charged issue cost, plus a transaction (line bytes +
    latency) when the warp had not touched the line recently.
    @raise Invalid_argument on out-of-bounds. *)

val fset : farray -> Thread.t -> int -> float -> unit
val iget : iarray -> Thread.t -> int -> int
val iset : iarray -> Thread.t -> int -> int -> unit

val atomic_fadd : farray -> Thread.t -> int -> float -> float
(** Atomic read-modify-write add; returns the previous value.  Charged the
    atomic cost plus a contention penalty growing with the number of
    atomics already performed on the same line by this warp since the last
    block-wide barrier. *)

val atomic_fmax : farray -> Thread.t -> int -> float -> float
val atomic_iadd : iarray -> Thread.t -> int -> int -> int

val set_rmw_locking : bool -> unit
(** Whether device atomics take the host-side read-modify-write lock.
    [Device.launch] turns it off for sequential launches (no pool, or a
    zero-worker pool): the lock only guards against lost updates when
    blocks simulate on several domains, and costs two futex operations
    per atomic.  Never affects simulated results. *)

val host_get : farray -> int -> float
(** Cost-free host access (verification / init). *)

val host_set : farray -> int -> float -> unit
val host_geti : iarray -> int -> int
val host_seti : iarray -> int -> int -> unit
val to_float_array : farray -> float array
val to_int_array : iarray -> int array
val fill : farray -> float -> unit
