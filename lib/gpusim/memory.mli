(** Simulated global (device) memory.

    Arrays carry both real OCaml storage (so kernels compute real results
    that tests can verify against references) and a base byte address (so
    the coalescing model can reason about lines).  Every device-side access
    goes through a [Thread.t] and is charged to its clock and counters;
    host-side accessors ([host_get] etc.) are free and used for
    initialization and verification only.

    Elements are modelled as 8 bytes (double / 64-bit index) which matches
    the paper's workloads. *)

type space
(** A device's global address space (an address allocator). *)

val space : unit -> space

val element_bytes : int
(** 8 *)

type farray
type iarray

val falloc : space -> int -> farray
(** Zero-initialized float array of the given length.
    @raise Invalid_argument on negative length. *)

val ialloc : space -> int -> iarray

val of_float_array : space -> float array -> farray
(** Copy host data to a fresh device array. *)

val of_int_array : space -> int array -> iarray

val flength : farray -> int
val ilength : iarray -> int

val space_of_farray : farray -> space
val space_of_iarray : iarray -> space

val l2_reset : space -> unit
(** Cold-start the device-level L2 model.  Benchmark runners call this
    before each kernel launch so that back-to-back runs over the same
    data measure the same thing. *)

val fget : farray -> Thread.t -> int -> float
(** Device load: charged issue cost, plus a transaction (line bytes +
    latency) when the warp had not touched the line recently.
    @raise Invalid_argument on out-of-bounds. *)

val fset : farray -> Thread.t -> int -> float -> unit
val iget : iarray -> Thread.t -> int -> int
val iset : iarray -> Thread.t -> int -> int -> unit

val atomic_fadd : farray -> Thread.t -> int -> float -> float
(** Atomic read-modify-write add; returns the previous value.  Charged the
    atomic cost plus a contention penalty growing with the number of
    atomics already performed on the same line by this warp since the last
    block-wide barrier. *)

val atomic_fmax : farray -> Thread.t -> int -> float -> float
val atomic_iadd : iarray -> Thread.t -> int -> int -> int

val host_get : farray -> int -> float
(** Cost-free host access (verification / init). *)

val host_set : farray -> int -> float -> unit
val host_geti : iarray -> int -> int
val host_seti : iarray -> int -> int -> unit
val to_float_array : farray -> float array
val to_int_array : iarray -> int array
val fill : farray -> float -> unit
