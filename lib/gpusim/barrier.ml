type t = {
  id : int;
  name : string;
  expected : int;
  cost : float;
  spin : bool;
      (* software spin barrier: the whole cost retires instructions, so
         all of it is issue-occupying busy time (no hidden stall part) *)
  (* Parked threads and continuations as two parallel flat arrays (SoA):
     a park is two array stores and a release walks the arrays in place —
     no per-waiter record, no list cell, no closure.  The arrays are
     created lazily from the first parked values (a typed fill, so no
     dummy element is needed) and sized [expected - 1]: the completing
     arriver never parks. *)
  mutable ths : Thread.t array;
  mutable ks : (unit, unit) Effect.Deep.continuation array;
  mutable nwaiters : int;
  mutable live_mark : bool;
      (* set when the engine registers the barrier in its live table, so
         re-registration (every round of a reused barrier) is a flag
         check instead of a hash insert.  Never cleared: a barrier is
         only ever driven by one engine run. *)
}

(* Process-unique ids; atomic because blocks simulate on several domains
   and runtime layers create barriers mid-simulation.  Ids never reach
   reports, so the allocation order does not affect determinism. *)
let next_id = Atomic.make 0

let create ?(name = "barrier") ?(spin = false) ~expected ~cost () =
  if expected <= 0 then invalid_arg "Barrier.create: expected must be positive";
  {
    id = Atomic.fetch_and_add next_id 1;
    name;
    expected;
    cost;
    spin;
    ths = [||];
    ks = [||];
    nwaiters = 0;
    live_mark = false;
  }

let id t = t.id
let name t = t.name
let expected t = t.expected
let waiting t = t.nwaiters
let live_mark t = t.live_mark
let set_live_mark t = t.live_mark <- true

(* The release: clocks of all participants are aligned to the max arrival
   clock and advanced by [cost].  The barrier instruction itself issues (a
   cycle or two); the rest of the cost is pipeline-drain stall, which
   occupies no issue slots and can be hidden by other resident blocks. *)
let charge t tmax th =
  Thread.align_clock th tmax;
  if t.cost > 0.0 then begin
    let busy_part = if t.spin then t.cost else Float.min t.cost 2.0 in
    Thread.tick th busy_part;
    Thread.tick_wait th (t.cost -. busy_part)
  end

let release t last =
  let tmax = ref (Thread.clock last) in
  let ths = t.ths in
  for i = 0 to t.nwaiters - 1 do
    let c = Thread.clock ths.(i) in
    if c > !tmax then tmax := c
  done;
  let tmax = !tmax in
  charge t tmax last;
  for i = 0 to t.nwaiters - 1 do
    charge t tmax ths.(i)
  done

let park t th k =
  if Array.length t.ths = 0 then begin
    t.ths <- Array.make (t.expected - 1) th;
    t.ks <- Array.make (t.expected - 1) k
  end
  else begin
    t.ths.(t.nwaiters) <- th;
    t.ks.(t.nwaiters) <- k
  end;
  t.nwaiters <- t.nwaiters + 1

let try_complete t th =
  if t.nwaiters + 1 < t.expected then false
  else begin
    release t th;
    true
  end

let waiter_th t i = t.ths.(i)
let waiter_k t i = t.ks.(i)
let clear t = t.nwaiters <- 0
