type waiter = {
  th : Thread.t;
  k : (unit, unit) Effect.Deep.continuation;
}

type t = {
  id : int;
  name : string;
  expected : int;
  cost : float;
  mutable waiters : waiter list;
}

(* Process-unique ids; atomic because blocks simulate on several domains
   and runtime layers create barriers mid-simulation.  Ids never reach
   reports, so the allocation order does not affect determinism. *)
let next_id = Atomic.make 0

let create ?(name = "barrier") ~expected ~cost () =
  if expected <= 0 then invalid_arg "Barrier.create: expected must be positive";
  { id = Atomic.fetch_and_add next_id 1; name; expected; cost; waiters = [] }

let id t = t.id
let name t = t.name
let expected t = t.expected
let waiting t = List.length t.waiters

let arrive t th k =
  let me = { th; k } in
  if List.length t.waiters + 1 < t.expected then begin
    t.waiters <- me :: t.waiters;
    None
  end
  else begin
    let all = me :: t.waiters in
    t.waiters <- [];
    let tmax = List.fold_left (fun acc w -> Float.max acc w.th.Thread.clock) 0.0 all in
    (* The barrier instruction itself issues (a cycle or two); the rest of
       the cost is pipeline-drain stall, which occupies no issue slots and
       can be hidden by other resident blocks. *)
    List.iter
      (fun w ->
        Thread.align_clock w.th tmax;
        let busy_part = Float.min t.cost 2.0 in
        Thread.tick w.th busy_part;
        Thread.tick_wait w.th (t.cost -. busy_part))
      all;
    Some all
  end
