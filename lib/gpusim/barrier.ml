type waiter = {
  th : Thread.t;
  k : (unit, unit) Effect.Deep.continuation;
}

type t = {
  id : int;
  name : string;
  expected : int;
  cost : float;
  mutable waiters : waiter list;
  mutable nwaiters : int;  (* = List.length waiters, kept O(1) *)
  mutable live_mark : bool;
      (* set when the engine registers the barrier in its live table, so
         re-registration (every round of a reused barrier) is a flag
         check instead of a hash insert.  Never cleared: a barrier is
         only ever driven by one engine run. *)
}

(* Process-unique ids; atomic because blocks simulate on several domains
   and runtime layers create barriers mid-simulation.  Ids never reach
   reports, so the allocation order does not affect determinism. *)
let next_id = Atomic.make 0

let create ?(name = "barrier") ~expected ~cost () =
  if expected <= 0 then invalid_arg "Barrier.create: expected must be positive";
  {
    id = Atomic.fetch_and_add next_id 1;
    name;
    expected;
    cost;
    waiters = [];
    nwaiters = 0;
    live_mark = false;
  }

let id t = t.id
let name t = t.name
let expected t = t.expected
let waiting t = t.nwaiters
let live_mark t = t.live_mark
let set_live_mark t = t.live_mark <- true

(* The release: clocks of all participants are aligned to the max arrival
   clock and advanced by [cost].  The barrier instruction itself issues (a
   cycle or two); the rest of the cost is pipeline-drain stall, which
   occupies no issue slots and can be hidden by other resident blocks. *)
let release t last parked =
  let tmax =
    List.fold_left
      (fun acc w -> Float.max acc (Thread.clock w.th))
      (Thread.clock last) parked
  in
  let charge th =
    Thread.align_clock th tmax;
    if t.cost > 0.0 then begin
      let busy_part = Float.min t.cost 2.0 in
      Thread.tick th busy_part;
      Thread.tick_wait th (t.cost -. busy_part)
    end
  in
  charge last;
  List.iter (fun w -> charge w.th) parked

let park t th k =
  t.waiters <- { th; k } :: t.waiters;
  t.nwaiters <- t.nwaiters + 1

let try_complete t th =
  if t.nwaiters + 1 < t.expected then None
  else begin
    let parked = t.waiters in
    t.waiters <- [];
    t.nwaiters <- 0;
    release t th parked;
    Some parked
  end

let arrive t th k =
  match try_complete t th with
  | Some parked -> Some ({ th; k } :: parked)
  | None ->
      park t th k;
      None
