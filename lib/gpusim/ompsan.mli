(** Dynamic data-race and barrier-divergence sanitizer ([ompsan]).

    Shadow memory over the simulated global and shared address spaces
    records, per cell, the last (block, warp, lane, epoch, access kind,
    site).  Epochs advance at barrier releases (block and warp barriers
    and the [__simd] state-machine hand-off all funnel through
    {!barrier_arrive}), so two accesses conflict iff they touch the same
    cell from different lanes with at least one plain write and no
    separating synchronization; atomics are exempt.  A second check
    reports barrier divergence: a lane arriving at one barrier while a
    mask-mate is parked at a different warp-scope barrier.

    Enabled via [OMPSIMD_SANITIZE=1] (or the {!enabled} flag directly).
    When disabled every hook is a single load-and-branch: no shadow
    state is allocated and no clock or counter is touched, so sanitized
    builds stay bit-identical to the seed — the existing determinism
    tests are the proof. *)

type access_kind = Read | Write | Atomic

val kind_label : access_kind -> string

val enabled : bool ref
(** Initialized from [OMPSIMD_SANITIZE]; tests may flip it directly. *)

val refresh_from_env : unit -> unit
(** Re-read [OMPSIMD_SANITIZE] (launch entry points call this so the
    environment knob works without re-linking). *)

(** {2 Sites}

    Sites are interned statement labels (e.g. ["store out[(r*8)+j]"]).
    Ids are process-local; reports print labels, which are identical
    across eval engines and pool sizes. *)

val register_site : string -> int
val site_label : int -> string

val runtime_site : int
(** Site 0: accesses issued by the runtime rather than kernel IR. *)

val set_site : int -> unit
(** Attribute subsequent accesses of the current block to this site. *)

val set_actor : Thread.t -> int -> int
(** [set_actor th actor] attributes the thread's subsequent accesses to
    the logical lane [actor] and returns the previous attribution so the
    caller can restore it.  Accesses by the same actor never conflict:
    in SPMD mode all lanes of a SIMD group redundantly execute region
    code as one logical OpenMP thread, so the runtime points them at the
    group leader there and back at their own tid inside simd loop
    bodies.  A no-op (echoing [actor]) when no block is open. *)

(** {2 Reports} *)

type access = {
  a_block : int;
  a_tid : int;
  a_warp : int;
  a_lane : int;
  a_kind : access_kind;
  a_site : int;
}

type finding =
  | Race of {
      shared : bool;
      space : int;
      addr : int;
      first : access;
      second : access;
    }
  | Cross_race of { space : int; addr : int; first : access; second : access }
  | Divergence of {
      block : int;
      warp : int;
      stalled_tid : int;
      stalled_bar : string;
      arriving_tid : int;
      arriving_bar : string;
    }

type report = { kernel : string; findings : finding list; blocks : int }

val is_clean : report -> bool
val pp_access : Format.formatter -> access -> unit
val pp_finding : Format.formatter -> finding -> unit
val finding_to_string : finding -> string
val pp_report : Format.formatter -> report -> unit

val report_strings : report -> string list
(** Formatted findings, in deterministic discovery order. *)

val set_kernel : string -> unit
(** Name stamped on the next {!launch_report}. *)

(** {2 Block lifecycle} (driven by {!Device.launch}) *)

type block_report

val block_begin : block_id:int -> num_threads:int -> warp_size:int -> unit
(** Open the per-block shadow state on the calling domain.  No-op when
    the sanitizer is disabled.
    @raise Invalid_argument if a shadow state is already open. *)

val block_end : unit -> block_report option
(** Close and return the block's findings and cross-block access
    summaries ([None] when the sanitizer was disabled). *)

val block_abort : unit -> unit
(** Exception path: close the shadow state and stash its findings for
    {!take_aborted} (a divergent kernel deadlocks before the launch
    epilogue can run). *)

val take_aborted : unit -> finding list

val launch_report : block_report option array -> report
(** Compose the launch-level report: per-block findings merged in
    ascending block id, then cross-block conflicts derived from the
    per-cell summaries.  Index [b] holds block [b]'s report; with grid
    dedup the same report may stand in for several blocks (a multi-member
    class whose representative writes a fixed cell races with itself). *)

(** {2 Hooks} — all no-ops unless {!enabled} and a block is open. *)

val global_access : Thread.t -> sid:int -> addr:int -> kind:access_kind -> unit
val shared_access : Thread.t -> aid:int -> addr:int -> kind:access_kind -> unit

val barrier_arrive :
  Thread.t ->
  block_scope:bool ->
  mask:int ->
  bar_id:int ->
  bar_name:string ->
  expected:int ->
  participants:int list ->
  unit
(** Record an arrival at a barrier.  When the arrival count reaches
    [expected] the participant set synchronizes pairwise and the epoch
    advances.  [mask] is the warp-scope lane mask ([0] for block scope);
    [participants] lists the tids expected at this rendezvous. *)

val enter_state_machine : Thread.t -> unit
(** Mark the calling thread as parked-capable inside the [__simd]
    state machine: its hand-off waits are exempt from the divergence
    check (its main legitimately crosses block-scope barriers while the
    worker waits). *)

val leave_state_machine : Thread.t -> unit
