type warp_state = {
  warp_index : int;
  lines : Linebuf.t;
  atomic_epoch : (int, int) Hashtbl.t;
}

type t = {
  block_id : int;
  tid : int;
  lane : int;
  warp : warp_state;
  cfg : Config.t;
  counters : Counters.t;
  trace : Trace.t option;
  mutable clock : float;
  mutable busy : float;
  mutable simt_factor : float;
}

let make_warp ~(cfg : Config.t) ~warp_index =
  {
    warp_index;
    lines =
      Linebuf.create ~capacity:cfg.linebuf_lines
        ~coalesce_window:cfg.coalesce_window;
    atomic_epoch = Hashtbl.create 16;
  }

let create ~cfg ~counters ?trace ~block_id ~tid ~warp () =
  {
    block_id;
    tid;
    lane = tid mod cfg.Config.warp_size;
    warp;
    cfg;
    counters;
    trace;
    clock = 0.0;
    busy = 0.0;
    simt_factor = 1.0;
  }

let tick t c =
  t.clock <- t.clock +. c;
  let charged = c *. t.simt_factor in
  t.busy <- t.busy +. charged;
  t.counters.Counters.lane_busy_cycles <-
    t.counters.Counters.lane_busy_cycles +. charged

let with_simt_factor t factor f =
  if factor < 1.0 then invalid_arg "Thread.with_simt_factor: factor < 1";
  let saved = t.simt_factor in
  t.simt_factor <- factor;
  Fun.protect ~finally:(fun () -> t.simt_factor <- saved) f

let tick_wait t c = t.clock <- t.clock +. c

let align_clock t target = if t.clock < target then t.clock <- target

let trace t ~tag detail =
  Trace.record t.trace ~time:t.clock ~block:t.block_id ~tid:t.tid ~tag detail
