(* Per-warp stash slots for the layers above (the engine's scheduler,
   the memory system's block session).  Both live in Domain.DLS, but a
   DLS lookup costs ~5ns against <1ns for a field load, and the barrier
   and L2 paths consult them millions of times per launch.  The types
   are extensible because those layers depend on [Thread], not the other
   way round; each layer adds its own constructor and owns the
   invariant that a stashed value never outlives the block that set it
   (warps are created per [Engine.run_block] and die with it). *)
type engine_sched = ..
type engine_sched += No_sched
type mem_session = ..
type mem_session += No_session

type warp_state = {
  warp_index : int;
  lines : Linebuf.t;
  mutable esched : engine_sched;
  mutable msession : mem_session;
  (* per-line atomic counts since the last sync point, as an
     open-addressing table over flat int arrays (keys as line+1 with
     0 = empty).  Each entry carries the generation it was written in:
     bumping [atomic_gen] at a barrier "clears" the table in O(1), and
     stale slots are reused in place / dropped on grow. *)
  mutable ae_keys : int array;
  mutable ae_gen : int array;
  mutable ae_cnt : int array;
  mutable ae_mask : int;
  mutable ae_filled : int;
  mutable atomic_gen : int;
  (* line-computation memo: 4-slot LRU of (base, line-start-addr, line),
     round-robin replacement; see Memory.account *)
  memo_base : int array;
  memo_lo : int array;
  memo_line : int array;
  mutable memo_next : int;
}

(* Timing state nested in an all-float record: flat storage, so the
   per-instruction clock/busy writes in [tick] do not allocate.  The
   same fields as mutable floats of the mixed outer record would box a
   fresh float each write. *)
type state = {
  mutable clock : float;
  mutable busy : float;
  mutable simt_factor : float;
}

type t = {
  block_id : int;
  tid : int;
  lane : int;
  warp : warp_state;
  cfg : Config.t;
  counters : Counters.t;
  trace : Trace.t option;
  st : state;
}

let make_warp ~(cfg : Config.t) ~warp_index =
  {
    warp_index;
    lines =
      Linebuf.create ~capacity:cfg.linebuf_lines
        ~coalesce_window:cfg.coalesce_window;
    esched = No_sched;
    msession = No_session;
    ae_keys = Array.make 64 0;
    ae_gen = Array.make 64 0;
    ae_cnt = Array.make 64 0;
    ae_mask = 63;
    ae_filled = 0;
    atomic_gen = 0;
    memo_base = Array.make 4 min_int;
    memo_lo = Array.make 4 0;
    memo_line = Array.make 4 0;
    memo_next = 0;
  }

let ae_hash line mask =
  let h = line * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land mask

(* Rebuild the epoch table keeping only current-generation entries;
   doubles when the live footprint itself is what filled the table. *)
let ae_grow w =
  let old_keys = w.ae_keys and old_gen = w.ae_gen and old_cnt = w.ae_cnt in
  let gen = w.atomic_gen in
  let live = ref 0 in
  Array.iteri (fun i k -> if k <> 0 && old_gen.(i) = gen then incr live) old_keys;
  let size = ref 64 in
  while 4 * (!live + 1) > 3 * !size do
    size := 2 * !size
  done;
  let keys = Array.make !size 0 in
  let gens = Array.make !size 0 in
  let cnts = Array.make !size 0 in
  let mask = !size - 1 in
  Array.iteri
    (fun i k ->
      if k <> 0 && old_gen.(i) = gen then begin
        let s = ref (ae_hash (k - 1) mask) in
        while keys.(!s) <> 0 do
          s := (!s + 1) land mask
        done;
        keys.(!s) <- k;
        gens.(!s) <- gen;
        cnts.(!s) <- old_cnt.(i)
      end)
    old_keys;
  w.ae_keys <- keys;
  w.ae_gen <- gens;
  w.ae_cnt <- cnts;
  w.ae_mask <- mask;
  w.ae_filled <- !live

(* Count an atomic on [line]; returns how many the warp already issued to
   that line this epoch.  Stale-generation slots count as free for
   insertion: overwriting one keeps the slot non-empty, so probe chains
   through it stay intact, and the entry it shadowed was dead anyway. *)
let ae_bump w line =
  let key = line + 1 in
  let gen = w.atomic_gen in
  let mask = w.ae_mask in
  let keys = w.ae_keys in
  let gens = w.ae_gen in
  let i = ref (ae_hash line mask) in
  let reuse = ref (-1) in
  let result = ref (-1) in
  while !result < 0 do
    let k = keys.(!i) in
    if k = 0 then begin
      (* not present: insert at the first stale slot seen, else here *)
      let s = if !reuse >= 0 then !reuse else i.contents in
      if keys.(s) = 0 then w.ae_filled <- w.ae_filled + 1;
      keys.(s) <- key;
      gens.(s) <- gen;
      w.ae_cnt.(s) <- 1;
      result := 0
    end
    else if k = key then
      if gens.(!i) = gen then begin
        let p = w.ae_cnt.(!i) in
        w.ae_cnt.(!i) <- p + 1;
        result := p
      end
      else begin
        gens.(!i) <- gen;
        w.ae_cnt.(!i) <- 1;
        result := 0
      end
    else begin
      if !reuse < 0 && gens.(!i) <> gen then reuse := !i;
      i := (!i + 1) land mask
    end
  done;
  if 4 * (w.ae_filled + 1) > 3 * (mask + 1) then ae_grow w;
  !result

let create ~cfg ~counters ?trace ~block_id ~tid ~warp () =
  {
    block_id;
    tid;
    lane = tid mod cfg.Config.warp_size;
    warp;
    cfg;
    counters;
    trace;
    st = { clock = 0.0; busy = 0.0; simt_factor = 1.0 };
  }

let[@inline] clock t = t.st.clock
let[@inline] busy t = t.st.busy
let[@inline] simt_factor t = t.st.simt_factor

let[@inline] tick t c =
  let st = t.st in
  st.clock <- st.clock +. c;
  let charged = c *. st.simt_factor in
  st.busy <- st.busy +. charged;
  let f = t.counters.Counters.f in
  f.Counters.lane_busy_cycles <- f.Counters.lane_busy_cycles +. charged

let with_simt_factor t factor f =
  if factor < 1.0 then invalid_arg "Thread.with_simt_factor: factor < 1";
  let st = t.st in
  let saved = st.simt_factor in
  st.simt_factor <- factor;
  match f () with
  | v ->
      st.simt_factor <- saved;
      v
  | exception e ->
      st.simt_factor <- saved;
      raise e

let[@inline] set_simt_factor t factor = t.st.simt_factor <- factor
let[@inline] tick_wait t c = t.st.clock <- t.st.clock +. c

let[@inline] align_clock t target = if t.st.clock < target then t.st.clock <- target

let[@inline] tracing t = match t.trace with None -> false | Some _ -> true

let trace t ~tag detail =
  Trace.record t.trace ~time:t.st.clock ~block:t.block_id ~tid:t.tid ~tag detail
