(** Occupancy and kernel-time composition.

    Blocks are simulated independently; this module combines their costs
    into a kernel time, modelling the two hardware effects the paper's
    results depend on:

    - occupancy: how many blocks are resident per SM, limited by threads,
      shared memory and the block-count cap.  The extra main-thread warp
      that generic-mode teams carry (§5.1) reaches this as a larger block;
    - the roofline: per SM, time is bounded below by issue throughput
      (total busy lane-cycles / issue width), by DRAM bandwidth, and by
      latency (critical paths overlap only as far as resident blocks allow:
      [sum(critical)/resident], never below [max(critical)]). *)

type block_cost = {
  critical : float;
  busy : float;
  dram_bytes : float;
  lsu_transactions : float;
  active_lanes : int;
  threads : int;
  smem_bytes : int;
}

val of_result : Engine.block_result -> smem_bytes:int -> block_cost

type breakdown = {
  time : float;  (** final kernel cycles, incl. launch overhead *)
  compute_bound : float;  (** max-over-SMs throughput bound *)
  memory_bound : float;  (** max of per-SM and device-wide DRAM bounds *)
  lsu_bound : float;
      (** L1 transaction-throughput bound: uncoalesced warps pay here even
          when DRAM traffic is identical *)
  latency_bound : float;
  resident_blocks : int;  (** per SM *)
  num_waves : int;  (** ceil(blocks / (SMs * resident)) *)
}

val blocks_per_sm :
  Config.t -> threads_per_block:int -> smem_per_block:int -> int
(** Resident-block limit (>= 0; 0 means the block cannot launch at all). *)

val kernel_time : Config.t -> block_cost array -> breakdown
(** @raise Invalid_argument on an empty array or an unlaunchable block. *)
