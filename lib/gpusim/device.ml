type report = {
  cfg : Config.t;
  grid : int;
  block : int;
  time_cycles : float;
  breakdown : Occupancy.breakdown;
  counters : Counters.t;
  block_costs : Occupancy.block_cost array;
}

let launch ~cfg ?trace ~grid ~block ~init ~body () =
  if grid <= 0 then invalid_arg "Device.launch: grid must be positive";
  if block <= 0 then invalid_arg "Device.launch: block must be positive";
  if block > cfg.Config.max_threads_per_block then
    invalid_arg "Device.launch: block exceeds device limit";
  let merged = Counters.create () in
  let block_costs =
    Array.init grid (fun block_id ->
        let arena = Shared.arena cfg in
        let state = init ~block_id arena in
        let result =
          Engine.run_block ~cfg ?trace ~block_id ~num_threads:block
            (fun th -> body state th)
        in
        Counters.merge_into ~dst:merged result.Engine.counters;
        Occupancy.of_result result ~smem_bytes:(Shared.high_water arena))
  in
  let breakdown = Occupancy.kernel_time cfg block_costs in
  {
    cfg;
    grid;
    block;
    time_cycles = breakdown.Occupancy.time;
    breakdown;
    counters = merged;
    block_costs;
  }

let pp_report ppf r =
  let b = r.breakdown in
  Format.fprintf ppf
    "@[<v>kernel on %s: grid=%d block=%d time=%.0f cycles@ bounds: \
     compute=%.0f memory=%.0f lsu=%.0f latency=%.0f resident=%d waves=%d@ %a@]"
    r.cfg.Config.name r.grid r.block r.time_cycles b.Occupancy.compute_bound
    b.Occupancy.memory_bound b.Occupancy.lsu_bound b.Occupancy.latency_bound
    b.Occupancy.resident_blocks b.Occupancy.num_waves Counters.pp r.counters
