type report = {
  cfg : Config.t;
  grid : int;
  block : int;
  time_cycles : float;
  breakdown : Occupancy.breakdown;
  counters : Counters.t;
  block_costs : Occupancy.block_cost array;
  sanitizer : Ompsan.report option;
  failures : Fault.failure list;
  faults : Fault.stats;
}

(* A failed block contributes nothing to the epilogue: no L2 commit, no
   counters, a zero cost entry.  Its failure record is the report. *)
type sim_result =
  | B_ok of
      Occupancy.block_cost
      * Counters.t
      * Memory.block_session
      * Ompsan.block_report option
      * Fault.events
  | B_failed of Fault.failure * Fault.events

(* One block's simulation, bracketed in a memory session so its L2
   traffic is order-independent (see Memory).  Runs on whichever domain
   the pool hands the index to; everything it touches is block-local.
   The sanitizer's shadow state shares the bracket; on the exception
   path its findings are stashed for [Ompsan.take_aborted] (a divergent
   kernel deadlocks before the epilogue runs).

   Failure capture: an injected fatal fault (Fault.Fatal) always yields
   a failed block.  A deadlock — injected stall or genuine divergence —
   yields one only when capture is armed (fault plan set, or a watchdog
   budget); otherwise it re-raises, preserving the historical
   Engine.Deadlock contract for unarmed callers. *)
let simulate_block ~cfg ?trace ~block ~init ~body block_id =
  Memory.session_begin ();
  Ompsan.block_begin ~block_id ~num_threads:block
    ~warp_size:cfg.Config.warp_size;
  Fault.block_begin ~block_id ~num_threads:block
    ~warp_size:cfg.Config.warp_size;
  match
    let arena = Shared.arena cfg in
    let state = init ~block_id arena in
    let result =
      Engine.run_block ~cfg ?trace ~block_id ~num_threads:block (fun th ->
          body state th)
    in
    (* A software-barrier device pays shared-memory residency for its
       per-block flag arrays on top of whatever the kernel allocated. *)
    (Occupancy.of_result result
       ~smem_bytes:
         (Shared.high_water arena
         + Config.sw_barrier_smem_bytes cfg ~threads:block),
     result.Engine.counters)
  with
  | exception Fault.Fatal f ->
      let ev = Fault.block_abort () in
      Ompsan.block_abort ();
      ignore (Memory.session_end ());
      B_failed (f, ev)
  | exception Engine.Deadlock _ when Fault.capture_deadlocks () ->
      let stall = Engine.take_stall () in
      let ev = Fault.block_abort () in
      Ompsan.block_abort ();
      ignore (Memory.session_end ());
      let f =
        match ev.Fault.ev_stall with
        | Some f -> f  (* the injected stall that caused this deadlock *)
        | None ->
            (* genuine divergence, reported by the watchdog *)
            let barrier, cycle =
              match stall with
              | None -> ("", 0.0)
              | Some si ->
                  ( String.concat "+"
                      (List.map
                         (fun (s : Engine.stuck) ->
                           Printf.sprintf "%s(%d/%d)" s.Engine.stuck_name
                             s.Engine.stuck_waiting s.Engine.stuck_expected)
                         si.Engine.stall_stuck),
                    si.Engine.stall_cycle )
            in
            {
              Fault.f_kind = Fault.Barrier_stall;
              f_block = block_id;
              f_warp = -1;
              f_tid = -1;
              f_barrier = barrier;
              f_cycle = cycle;
            }
      in
      B_failed (f, ev)
  | exception e ->
      ignore (Fault.block_abort () : Fault.events);
      Ompsan.block_abort ();
      ignore (Memory.session_end ());
      raise e
  | cost, counters ->
      let san = Ompsan.block_end () in
      let ev = Fault.block_end () in
      B_ok (cost, counters, Memory.session_end (), san, ev)

let launch ~cfg ?pool ?trace ?block_class ~grid ~block ~init ~body () =
  if grid <= 0 then invalid_arg "Device.launch: grid must be positive";
  if block <= 0 then invalid_arg "Device.launch: block must be positive";
  if block > cfg.Config.max_threads_per_block then
    invalid_arg "Device.launch: block exceeds device limit";
  Fault.launch_begin ();
  let tracing = Option.is_some trace in
  (* Tracing forces the full sequential path: Trace.t is one shared
     mutable log, and a deduplicated trace would misrepresent the grid. *)
  let class_of =
    match block_class with Some f when not tracing -> f | _ -> fun b -> b
  in
  (* Representative of each equivalence class = its lowest block_id. *)
  let rep_index = Hashtbl.create 16 in
  let rep_of = Array.make grid 0 in
  let rev_reps = ref [] in
  let nreps = ref 0 in
  for b = 0 to grid - 1 do
    let key = class_of b in
    match Hashtbl.find_opt rep_index key with
    | Some ri -> rep_of.(b) <- ri
    | None ->
        Hashtbl.add rep_index key !nreps;
        rep_of.(b) <- !nreps;
        rev_reps := b :: !rev_reps;
        incr nreps
  done;
  let reps = Array.of_list (List.rev !rev_reps) in
  let simulate = simulate_block ~cfg ?trace ~block ~init ~body in
  let results =
    match pool with
    | Some p when not tracing && Pool.size p > 0 ->
        Memory.set_rmw_locking true;
        Pool.parallel_init p (Array.length reps) (fun i -> simulate reps.(i))
    | _ ->
        (* single-domain block phase: device atomics need no host lock *)
        Memory.set_rmw_locking false;
        Array.init (Array.length reps) (fun i -> simulate reps.(i))
  in
  (* Deterministic epilogue, in ascending block_id order regardless of
     which domain simulated what: commit the per-block L2 logs, then
     merge counters (float sums are order-sensitive, so the order is part
     of the determinism contract).  A class's counters are merged once
     per member block, which keeps the merged report bit-identical to a
     full simulation of a truly homogeneous grid.  Failed blocks commit
     and merge nothing — an aborted block's partial traffic must not
     perturb the survivors' timing. *)
  Array.iter
    (function
      | B_ok (_, _, session, _, _) -> Memory.session_commit session
      | B_failed _ -> ())
    results;
  let merged = Counters.create () in
  for b = 0 to grid - 1 do
    match results.(rep_of.(b)) with
    | B_ok (_, counters, _, _, _) -> Counters.merge_into ~dst:merged counters
    | B_failed _ -> ()
  done;
  let zero_cost =
    {
      Occupancy.critical = 0.0;
      busy = 0.0;
      dram_bytes = 0.0;
      lsu_transactions = 0.0;
      active_lanes = 0;
      threads = block;
      smem_bytes = 0;
    }
  in
  let block_costs =
    Array.init grid (fun b ->
        match results.(rep_of.(b)) with
        | B_ok (cost, _, _, _, _) -> cost
        | B_failed _ -> zero_cost)
  in
  (* Sanitizer composition follows the same determinism recipe as the
     counters: per-block findings in ascending block_id, then the
     cross-block pass over per-cell summaries (per class member, so a
     deduplicated homogeneous grid still self-detects fixed-cell
     writes). *)
  let sanitizer =
    if not !Ompsan.enabled then None
    else
      Some
        (Ompsan.launch_report
           (Array.init grid (fun b ->
                match results.(rep_of.(b)) with
                | B_ok (_, _, _, san, _) -> san
                | B_failed _ -> None)))
  in
  (* Failures and fault statistics, once per representative in ascending
     block order (with dedup a class fails as one unit — faults are
     drawn per representative).  The watchdog check runs here: a block
     whose critical path exceeds the budget completed, but is reported
     hung. *)
  let wd = Fault.watchdog_budget () in
  let rev_failures = ref [] in
  let stats = ref Fault.zero_stats in
  Array.iteri
    (fun i result ->
      match result with
      | B_failed (f, ev) ->
          rev_failures := f :: !rev_failures;
          stats :=
            Fault.add_stats !stats
              {
                Fault.zero_stats with
                Fault.corrected = ev.Fault.ev_corrected;
                exhausts = ev.Fault.ev_exhausts;
                fatal =
                  (match f.Fault.f_kind with
                  | Fault.Block_abort | Fault.Ecc_fatal -> 1
                  | _ -> 0);
                stalls =
                  (match f.Fault.f_kind with Fault.Barrier_stall -> 1 | _ -> 0);
              }
      | B_ok (cost, _, _, _, ev) ->
          stats :=
            Fault.add_stats !stats
              {
                Fault.zero_stats with
                Fault.corrected = ev.Fault.ev_corrected;
                exhausts = ev.Fault.ev_exhausts;
              };
          if wd > 0.0 && cost.Occupancy.critical > wd then begin
            rev_failures :=
              {
                Fault.f_kind = Fault.Watchdog;
                f_block = reps.(i);
                f_warp = -1;
                f_tid = -1;
                f_barrier = "";
                f_cycle = cost.Occupancy.critical;
              }
              :: !rev_failures;
            stats :=
              Fault.add_stats !stats { Fault.zero_stats with Fault.watchdogs = 1 }
          end)
    results;
  let failures = List.rev !rev_failures in
  let breakdown = Occupancy.kernel_time cfg block_costs in
  {
    cfg;
    grid;
    block;
    time_cycles = breakdown.Occupancy.time;
    breakdown;
    counters = merged;
    block_costs;
    sanitizer;
    failures;
    faults = !stats;
  }

let pp_report ppf r =
  let b = r.breakdown in
  Format.fprintf ppf
    "@[<v>kernel on %s: grid=%d block=%d time=%.0f cycles@ bounds: \
     compute=%.0f memory=%.0f lsu=%.0f latency=%.0f resident=%d waves=%d@ %a"
    r.cfg.Config.name r.grid r.block r.time_cycles b.Occupancy.compute_bound
    b.Occupancy.memory_bound b.Occupancy.lsu_bound b.Occupancy.latency_bound
    b.Occupancy.resident_blocks b.Occupancy.num_waves Counters.pp r.counters;
  (* only when the runtime used the sharing space: kernels that never
     acquire keep their report text unchanged *)
  let grants = Counters.get_extra r.counters "sharing.shared_grants" in
  let fallbacks = Counters.get_extra r.counters "sharing.global_fallbacks" in
  let reuses = Counters.get_extra r.counters "sharing.pool_reuses" in
  if grants <> 0.0 || fallbacks <> 0.0 then
    Format.fprintf ppf
      "@ sharing: shared_grants=%.0f global_fallbacks=%.0f pool_reuses=%.0f"
      grants fallbacks reuses;
  (match r.sanitizer with
  | None -> ()
  | Some san when Ompsan.is_clean san ->
      Format.fprintf ppf "@ sanitizer: clean"
  | Some san ->
      List.iter
        (fun line -> Format.fprintf ppf "@ sanitizer: %s" line)
        (Ompsan.report_strings san));
  (* only with something to say: an unarmed launch's report text stays
     byte-identical to a build without the fault layer *)
  if r.failures <> [] || r.faults <> Fault.zero_stats then begin
    Format.fprintf ppf
      "@ faults: corrected=%d fatal=%d stalls=%d exhausts=%d watchdogs=%d"
      r.faults.Fault.corrected r.faults.Fault.fatal r.faults.Fault.stalls
      r.faults.Fault.exhausts r.faults.Fault.watchdogs;
    List.iter
      (fun f ->
        Format.fprintf ppf "@ failure: %s" (Fault.failure_to_string f))
      r.failures
  end;
  Format.fprintf ppf "@]"
