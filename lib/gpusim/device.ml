type report = {
  cfg : Config.t;
  grid : int;
  block : int;
  time_cycles : float;
  breakdown : Occupancy.breakdown;
  counters : Counters.t;
  block_costs : Occupancy.block_cost array;
  sanitizer : Ompsan.report option;
}

(* One block's simulation, bracketed in a memory session so its L2
   traffic is order-independent (see Memory).  Runs on whichever domain
   the pool hands the index to; everything it touches is block-local.
   The sanitizer's shadow state shares the bracket; on the exception
   path its findings are stashed for [Ompsan.take_aborted] (a divergent
   kernel deadlocks before the epilogue runs). *)
let simulate_block ~cfg ?trace ~block ~init ~body block_id =
  Memory.session_begin ();
  Ompsan.block_begin ~block_id ~num_threads:block
    ~warp_size:cfg.Config.warp_size;
  match
    let arena = Shared.arena cfg in
    let state = init ~block_id arena in
    let result =
      Engine.run_block ~cfg ?trace ~block_id ~num_threads:block (fun th ->
          body state th)
    in
    (Occupancy.of_result result ~smem_bytes:(Shared.high_water arena),
     result.Engine.counters)
  with
  | exception e ->
      Ompsan.block_abort ();
      ignore (Memory.session_end ());
      raise e
  | cost, counters ->
      let san = Ompsan.block_end () in
      (cost, counters, Memory.session_end (), san)

let launch ~cfg ?pool ?trace ?block_class ~grid ~block ~init ~body () =
  if grid <= 0 then invalid_arg "Device.launch: grid must be positive";
  if block <= 0 then invalid_arg "Device.launch: block must be positive";
  if block > cfg.Config.max_threads_per_block then
    invalid_arg "Device.launch: block exceeds device limit";
  let tracing = Option.is_some trace in
  (* Tracing forces the full sequential path: Trace.t is one shared
     mutable log, and a deduplicated trace would misrepresent the grid. *)
  let class_of =
    match block_class with Some f when not tracing -> f | _ -> fun b -> b
  in
  (* Representative of each equivalence class = its lowest block_id. *)
  let rep_index = Hashtbl.create 16 in
  let rep_of = Array.make grid 0 in
  let rev_reps = ref [] in
  let nreps = ref 0 in
  for b = 0 to grid - 1 do
    let key = class_of b in
    match Hashtbl.find_opt rep_index key with
    | Some ri -> rep_of.(b) <- ri
    | None ->
        Hashtbl.add rep_index key !nreps;
        rep_of.(b) <- !nreps;
        rev_reps := b :: !rev_reps;
        incr nreps
  done;
  let reps = Array.of_list (List.rev !rev_reps) in
  let simulate = simulate_block ~cfg ?trace ~block ~init ~body in
  let results =
    match pool with
    | Some p when not tracing ->
        Pool.parallel_init p (Array.length reps) (fun i -> simulate reps.(i))
    | _ -> Array.init (Array.length reps) (fun i -> simulate reps.(i))
  in
  (* Deterministic epilogue, in ascending block_id order regardless of
     which domain simulated what: commit the per-block L2 logs, then
     merge counters (float sums are order-sensitive, so the order is part
     of the determinism contract).  A class's counters are merged once
     per member block, which keeps the merged report bit-identical to a
     full simulation of a truly homogeneous grid. *)
  Array.iter (fun (_, _, session, _) -> Memory.session_commit session) results;
  let merged = Counters.create () in
  for b = 0 to grid - 1 do
    let _, counters, _, _ = results.(rep_of.(b)) in
    Counters.merge_into ~dst:merged counters
  done;
  let block_costs =
    Array.init grid (fun b ->
        let cost, _, _, _ = results.(rep_of.(b)) in
        cost)
  in
  (* Sanitizer composition follows the same determinism recipe as the
     counters: per-block findings in ascending block_id, then the
     cross-block pass over per-cell summaries (per class member, so a
     deduplicated homogeneous grid still self-detects fixed-cell
     writes). *)
  let sanitizer =
    if not !Ompsan.enabled then None
    else
      Some
        (Ompsan.launch_report
           (Array.init grid (fun b ->
                let _, _, _, san = results.(rep_of.(b)) in
                san)))
  in
  let breakdown = Occupancy.kernel_time cfg block_costs in
  {
    cfg;
    grid;
    block;
    time_cycles = breakdown.Occupancy.time;
    breakdown;
    counters = merged;
    block_costs;
    sanitizer;
  }

let pp_report ppf r =
  let b = r.breakdown in
  Format.fprintf ppf
    "@[<v>kernel on %s: grid=%d block=%d time=%.0f cycles@ bounds: \
     compute=%.0f memory=%.0f lsu=%.0f latency=%.0f resident=%d waves=%d@ %a"
    r.cfg.Config.name r.grid r.block r.time_cycles b.Occupancy.compute_bound
    b.Occupancy.memory_bound b.Occupancy.lsu_bound b.Occupancy.latency_bound
    b.Occupancy.resident_blocks b.Occupancy.num_waves Counters.pp r.counters;
  (match r.sanitizer with
  | None -> ()
  | Some san when Ompsan.is_clean san ->
      Format.fprintf ppf "@ sanitizer: clean"
  | Some san ->
      List.iter
        (fun line -> Format.fprintf ppf "@ sanitizer: %s" line)
        (Ompsan.report_strings san));
  Format.fprintf ppf "@]"
