(** Optional event trace.

    When a trace sink is attached to a launch, the engine and the layers
    above it record timestamped events (barrier arrivals, state-machine
    transitions, sharing-space fallbacks...).  Tests use traces to assert
    ordering properties; benchmarks run without one. *)

type event = { time : float; block : int; tid : int; tag : string; detail : string }

type t

val create : unit -> t

val record : t option -> time:float -> block:int -> tid:int -> tag:string -> string -> unit
(** No-op on [None], so call sites can stay unconditional. *)

val events : t -> event list
(** In recording order. *)

val count : t -> tag:string -> int

val find_all : t -> tag:string -> event list

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
