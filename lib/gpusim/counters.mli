(** Performance counters accumulated while a block executes.

    One instance is shared by all threads of a block; the launcher merges
    block counters into a kernel-level report.  Hot-path counters are fixed
    mutable fields; layered components (e.g. the OpenMP runtime) may record
    their own events under string keys via [bump]. *)

type t = {
  mutable lane_busy_cycles : float;
      (** total cycles in which some lane was executing (the throughput
          leg of the roofline) *)
  mutable dram_bytes : float;  (** global-memory transaction traffic *)
  mutable smem_bytes : float;
  mutable global_loads : int;
  mutable global_stores : int;
  mutable line_hits : int;  (** resident accesses (coalesced or L1 hits) *)
  mutable line_misses : int;  (** accesses that went to DRAM *)
  mutable lsu_transactions : float;
      (** L1 lookups issued (hits + misses, excluding coalesced riders) —
          drives the transaction-throughput roofline leg *)
  mutable l2_hits : int;  (** warp-cache misses served by the device L2 *)
  mutable atomics : int;
  mutable warp_barriers : int;
  mutable block_barriers : int;
  mutable calls : int;
  extras : (string, float ref) Hashtbl.t;
      (** cells are mutated in place so [bump] costs one lookup on the
          hot path; read through {!get_extra} *)
}

val create : unit -> t
val bump : t -> string -> float -> unit
val get_extra : t -> string -> float
(** 0.0 when the key was never bumped. *)

val equal : t -> t -> bool
(** Bit-exact equality of every counter, including extras (a key bumped
    to 0.0 on one side and absent on the other counts as equal). *)

val merge_into : dst:t -> t -> unit
(** Add every counter of the source into [dst]. *)

val copy : t -> t

val coalescing_ratio : t -> float
(** hits / (hits + misses); 1.0 when there were no accesses. *)

val pp : Format.formatter -> t -> unit
