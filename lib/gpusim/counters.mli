(** Performance counters accumulated while a block executes.

    One instance is shared by all threads of a block; the launcher merges
    block counters into a kernel-level report.  Hot-path counters are fixed
    mutable fields; layered components (e.g. the OpenMP runtime) may record
    their own events under string keys via [bump]. *)

type floats = {
  mutable lane_busy_cycles : float;
      (** total cycles in which some lane was executing (the throughput
          leg of the roofline) *)
  mutable dram_bytes : float;  (** global-memory transaction traffic *)
  mutable smem_bytes : float;
  mutable lsu_transactions : float;
      (** L1 lookups issued (hits + misses, excluding coalesced riders) —
          drives the transaction-throughput roofline leg *)
}
(** The float counters, nested in an all-float record so OCaml stores
    them flat: mutating them does not allocate.  Mutate via [t.f] on the
    simulator's hot paths; read through the named accessors elsewhere. *)

type cell = { mutable c : float }
(** An extras counter cell — a single-field float record (stored flat)
    rather than a [float ref] (a pointer to a boxed float), so a [bump]
    mutates in place instead of allocating. *)

type t = {
  f : floats;
  mutable global_loads : int;
  mutable global_stores : int;
  mutable line_hits : int;  (** resident accesses (coalesced or L1 hits) *)
  mutable line_misses : int;  (** accesses that went to DRAM *)
  mutable l2_hits : int;  (** warp-cache misses served by the device L2 *)
  mutable atomics : int;
  mutable warp_barriers : int;
  mutable block_barriers : int;
  mutable calls : int;
  extras : (string, cell) Hashtbl.t;
      (** cells are mutated in place so [bump] costs one lookup on the
          hot path; read through {!get_extra} *)
  mutable memo_k1 : string;
  mutable memo_c1 : cell;
  mutable memo_k2 : string;
  mutable memo_c2 : cell;
      (** two-entry physical-equality memo over [extras]: call sites
          bump literal keys, so most bumps skip the string hash *)
}

val create : unit -> t

val busy_cycles : t -> float
val dram_bytes : t -> float
val smem_bytes : t -> float
val lsu_transactions : t -> float

val add_busy : t -> float -> unit
val add_dram : t -> float -> unit
val add_smem : t -> float -> unit
val add_lsu : t -> float -> unit

val bump : t -> string -> float -> unit
val get_extra : t -> string -> float
(** 0.0 when the key was never bumped. *)

val equal : t -> t -> bool
(** Bit-exact equality of every counter, including extras (a key bumped
    to 0.0 on one side and absent on the other counts as equal). *)

val merge_into : dst:t -> t -> unit
(** Add every counter of the source into [dst]. *)

val copy : t -> t

val coalescing_ratio : t -> float
(** hits / (hits + misses); 1.0 when there were no accesses. *)

val pp : Format.formatter -> t -> unit
