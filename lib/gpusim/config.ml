type cost = {
  alu : float;
  flop : float;
  special : float;
  mem_issue : float;
  mem_miss_latency : float;
  smem_access : float;
  atomic : float;
  atomic_contend : float;
  warp_barrier : float;
  block_barrier : float;
  branch : float;
  call : float;
  icmp_cascade : float;
  indirect_call : float;
  launch_overhead : float;
}

type t = {
  name : string;
  warp_size : int;
  num_sms : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_block : int;
  shared_mem_per_sm : int;
  issue_lanes_per_sm : int;
  dram_bw_per_sm : float;
  dram_bw_device : float;
  line_bytes : int;
  linebuf_lines : int;
  coalesce_window : float;
  l1_txn_per_cycle : float;
  l2_sectors : int;
  issue_dep_stall : float;
  overlap_alpha : float;
  has_warp_barrier : bool;
  cost : cost;
}

let default_cost =
  {
    alu = 1.0;
    flop = 2.0;
    special = 8.0;
    mem_issue = 4.0;
    mem_miss_latency = 28.0;
    smem_access = 2.0;
    atomic = 30.0;
    atomic_contend = 8.0;
    warp_barrier = 2.0;
    block_barrier = 48.0;
    branch = 1.0;
    call = 4.0;
    icmp_cascade = 1.0;
    indirect_call = 24.0;
    launch_overhead = 2000.0;
  }

let a100 =
  {
    name = "sim-a100";
    warp_size = 32;
    num_sms = 108;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    shared_mem_per_block = 48 * 1024;
    shared_mem_per_sm = 164 * 1024;
    issue_lanes_per_sm = 128;
    dram_bw_per_sm = 10.0;
    dram_bw_device = 1100.0;
    line_bytes = 32;
    linebuf_lines = 128;
    coalesce_window = 200.0;
    l1_txn_per_cycle = 3.0;
    l2_sectors = 1_300_000;
    issue_dep_stall = 4.0;
    overlap_alpha = 0.15;
    has_warp_barrier = true;
    cost = default_cost;
  }

let with_sms t n =
  if n <= 0 then invalid_arg "Config.with_sms: SM count must be positive";
  {
    t with
    name = Printf.sprintf "%s-%dsm" t.name n;
    num_sms = n;
    dram_bw_device = t.dram_bw_device *. float_of_int n /. float_of_int t.num_sms;
    l2_sectors = max 1 (t.l2_sectors * n / t.num_sms);
  }

let amd_like = { a100 with name = "sim-amd"; has_warp_barrier = false }

let a100_quarter = { (with_sms a100 27) with name = "sim-a100-quarter" }

let small =
  {
    a100 with
    name = "sim-small";
    num_sms = 4;
    max_threads_per_block = 512;
    max_threads_per_sm = 512;
    max_blocks_per_sm = 8;
    shared_mem_per_sm = 32 * 1024;
    shared_mem_per_block = 16 * 1024;
  }

let validate t =
  let check cond msg acc = if cond then acc else Error msg in
  Ok ()
  |> check (t.warp_size > 0 && t.warp_size <= 32) "warp_size must be in [1,32]"
  |> check (t.num_sms > 0) "num_sms must be positive"
  |> check
       (t.max_threads_per_block mod t.warp_size = 0)
       "max_threads_per_block must be a warp multiple"
  |> check
       (t.max_threads_per_sm >= t.max_threads_per_block)
       "SM thread capacity below block limit"
  |> check (t.max_blocks_per_sm > 0) "max_blocks_per_sm must be positive"
  |> check (t.shared_mem_per_block > 0) "shared_mem_per_block must be positive"
  |> check
       (t.shared_mem_per_sm >= t.shared_mem_per_block)
       "SM shared memory below block limit"
  |> check (t.issue_lanes_per_sm > 0) "issue_lanes_per_sm must be positive"
  |> check (t.dram_bw_per_sm > 0.0) "dram_bw_per_sm must be positive"
  |> check (t.dram_bw_device > 0.0) "dram_bw_device must be positive"
  |> check (t.line_bytes > 0) "line_bytes must be positive"
  |> check (t.linebuf_lines > 0) "linebuf_lines must be positive"
  |> check
       (t.overlap_alpha >= 0.0 && t.overlap_alpha <= 1.0)
       "overlap_alpha must be in [0,1]"
  |> check (t.coalesce_window >= 0.0) "coalesce_window must be non-negative"
  |> check (t.l1_txn_per_cycle > 0.0) "l1_txn_per_cycle must be positive"
  |> check (t.l2_sectors > 0) "l2_sectors must be positive"
  |> check (t.issue_dep_stall >= 1.0) "issue_dep_stall must be >= 1"

let pp ppf t =
  Format.fprintf ppf
    "@[<v>device %s: %d SMs, warp %d, <=%d thr/block, <=%d thr/SM,@ %d B \
     smem/block, %d B smem/SM, issue %d lanes/cycle,@ bw %.1f B/cyc/SM \
     (%.0f device), warp-barrier=%b@]"
    t.name t.num_sms t.warp_size t.max_threads_per_block t.max_threads_per_sm
    t.shared_mem_per_block t.shared_mem_per_sm t.issue_lanes_per_sm
    t.dram_bw_per_sm t.dram_bw_device t.has_warp_barrier
