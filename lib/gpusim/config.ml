type cost = {
  alu : float;
  flop : float;
  special : float;
  mem_issue : float;
  mem_miss_latency : float;
  smem_access : float;
  atomic : float;
  atomic_contend : float;
  warp_barrier : float;
  block_barrier : float;
  branch : float;
  call : float;
  icmp_cascade : float;
  indirect_call : float;
  launch_overhead : float;
}

type barrier_impl = Hw_barrier | Sw_barrier | No_barrier

let barrier_impl_to_string = function
  | Hw_barrier -> "hw"
  | Sw_barrier -> "sw"
  | No_barrier -> "none"

let barrier_impl_of_string = function
  | "hw" -> Ok Hw_barrier
  | "sw" -> Ok Sw_barrier
  | "none" -> Ok No_barrier
  | s -> Error (Printf.sprintf "unknown barrier impl %S (hw|sw|none)" s)

type t = {
  name : string;
  warp_size : int;
  num_sms : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_block : int;
  shared_mem_per_sm : int;
  issue_lanes_per_sm : int;
  dram_bw_per_sm : float;
  dram_bw_device : float;
  line_bytes : int;
  linebuf_lines : int;
  coalesce_window : float;
  l1_txn_per_cycle : float;
  l2_sectors : int;
  issue_dep_stall : float;
  overlap_alpha : float;
  barrier_impl : barrier_impl;
  cost : cost;
}

let default_cost =
  {
    alu = 1.0;
    flop = 2.0;
    special = 8.0;
    mem_issue = 4.0;
    mem_miss_latency = 28.0;
    smem_access = 2.0;
    atomic = 30.0;
    atomic_contend = 8.0;
    warp_barrier = 2.0;
    block_barrier = 48.0;
    branch = 1.0;
    call = 4.0;
    icmp_cascade = 1.0;
    indirect_call = 24.0;
    launch_overhead = 2000.0;
  }

let a100 =
  {
    name = "sim-a100";
    warp_size = 32;
    num_sms = 108;
    max_threads_per_block = 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    shared_mem_per_block = 48 * 1024;
    shared_mem_per_sm = 164 * 1024;
    issue_lanes_per_sm = 128;
    dram_bw_per_sm = 10.0;
    dram_bw_device = 1100.0;
    line_bytes = 32;
    linebuf_lines = 128;
    coalesce_window = 200.0;
    l1_txn_per_cycle = 3.0;
    l2_sectors = 1_300_000;
    issue_dep_stall = 4.0;
    overlap_alpha = 0.15;
    barrier_impl = Hw_barrier;
    cost = default_cost;
  }

let with_sms t n =
  if n <= 0 then invalid_arg "Config.with_sms: SM count must be positive";
  {
    t with
    name = Printf.sprintf "%s-%dsm" t.name n;
    num_sms = n;
    dram_bw_device = t.dram_bw_device *. float_of_int n /. float_of_int t.num_sms;
    l2_sectors = max 1 (t.l2_sectors * n / t.num_sms);
  }

let amd_like = { a100 with name = "sim-amd"; barrier_impl = No_barrier }

let a100_quarter = { (with_sms a100 27) with name = "sim-a100-quarter" }

let small =
  {
    a100 with
    name = "sim-small";
    num_sms = 4;
    max_threads_per_block = 512;
    max_threads_per_sm = 512;
    max_blocks_per_sm = 8;
    shared_mem_per_sm = 32 * 1024;
    shared_mem_per_block = 16 * 1024;
  }

let max_warp_size = Ompsimd_util.Mask.max_lanes

let validate t =
  let check cond msg acc = if cond then acc else Error msg in
  Ok ()
  |> check
       (t.warp_size > 0 && t.warp_size <= max_warp_size)
       (Printf.sprintf "warp_size must be in [1,%d]" max_warp_size)
  |> check (t.num_sms > 0) "num_sms must be positive"
  |> check
       (t.max_threads_per_block > 0
       (* the guard keeps [mod] total: every condition in this chain is
          evaluated even after an earlier check has failed *)
       && t.warp_size > 0
       && t.max_threads_per_block mod t.warp_size = 0)
       "max_threads_per_block must be a positive warp multiple"
  |> check
       (t.max_threads_per_sm >= t.max_threads_per_block)
       "SM thread capacity below block limit"
  |> check (t.max_blocks_per_sm > 0) "max_blocks_per_sm must be positive"
  |> check (t.shared_mem_per_block > 0) "shared_mem_per_block must be positive"
  |> check
       (t.shared_mem_per_sm >= t.shared_mem_per_block)
       "SM shared memory below block limit"
  |> check (t.issue_lanes_per_sm > 0) "issue_lanes_per_sm must be positive"
  |> check (t.dram_bw_per_sm > 0.0) "dram_bw_per_sm must be positive"
  |> check (t.dram_bw_device > 0.0) "dram_bw_device must be positive"
  |> check (t.line_bytes > 0) "line_bytes must be positive"
  |> check (t.linebuf_lines > 0) "linebuf_lines must be positive"
  |> check
       (t.overlap_alpha >= 0.0 && t.overlap_alpha <= 1.0)
       "overlap_alpha must be in [0,1]"
  |> check (t.coalesce_window >= 0.0) "coalesce_window must be non-negative"
  |> check (t.l1_txn_per_cycle > 0.0) "l1_txn_per_cycle must be positive"
  |> check (t.l2_sectors > 0) "l2_sectors must be positive"
  |> check (t.issue_dep_stall >= 1.0) "issue_dep_stall must be >= 1"

let checked t =
  match validate t with
  | Ok () -> t
  | Error msg ->
      invalid_arg (Printf.sprintf "Config %S invalid: %s" t.name msg)

(* --- software-emulated masked barriers --------------------------------- *)

(* A device without a hardware masked warp sync can still give the generic
   state machine a blocking rendezvous by spinning on shared-memory flags
   (the Vortex software path): every participant stores its arrival flag,
   the leader scans the group, then every lane loads the release flag.
   Contrast with the hardware barrier: the cost scales with the
   participant count, and all of it occupies issue slots (a spin loop
   retires instructions), where the hardware barrier is mostly hideable
   pipeline-drain stall. *)

let warp_barrier_cost t ~participants =
  match t.barrier_impl with
  | No_barrier -> 0.0
  | Hw_barrier -> t.cost.warp_barrier
  | Sw_barrier ->
      t.cost.warp_barrier
      +. (t.cost.smem_access *. (2.0 +. (2.0 *. float_of_int participants)))

let warp_barrier_spins t =
  match t.barrier_impl with
  | Sw_barrier -> true
  | Hw_barrier | No_barrier -> false

(* Per-block shared-memory footprint of the software barrier's flag
   arrays: one 4-byte flag per thread plus one release word per warp.
   Charged against shared-memory occupancy so a sw-barrier device pays
   residency for its synchronization scaffolding. *)
let sw_barrier_smem_bytes t ~threads =
  match t.barrier_impl with
  | Hw_barrier | No_barrier -> 0
  | Sw_barrier -> (4 * threads) + (4 * ((threads + t.warp_size - 1) / t.warp_size))

(* --- spec strings ------------------------------------------------------ *)

(* [key=value,...] overrides over a base device — the OMPSIMD_DEVICE
   syntax.  Keys cover the shape fields; costs stay with the base.  The
   emitted spec round-trips: [of_spec ~base (to_spec t) = Ok t] whenever
   [t] shares [base]'s cost table. *)

let to_spec t =
  String.concat ","
    [
      Printf.sprintf "name=%s" t.name;
      Printf.sprintf "warp_size=%d" t.warp_size;
      Printf.sprintf "num_sms=%d" t.num_sms;
      Printf.sprintf "max_threads_per_block=%d" t.max_threads_per_block;
      Printf.sprintf "max_threads_per_sm=%d" t.max_threads_per_sm;
      Printf.sprintf "max_blocks_per_sm=%d" t.max_blocks_per_sm;
      Printf.sprintf "shared_mem_per_block=%d" t.shared_mem_per_block;
      Printf.sprintf "shared_mem_per_sm=%d" t.shared_mem_per_sm;
      Printf.sprintf "issue_lanes_per_sm=%d" t.issue_lanes_per_sm;
      Printf.sprintf "dram_bw_per_sm=%g" t.dram_bw_per_sm;
      Printf.sprintf "dram_bw_device=%g" t.dram_bw_device;
      Printf.sprintf "line_bytes=%d" t.line_bytes;
      Printf.sprintf "linebuf_lines=%d" t.linebuf_lines;
      Printf.sprintf "coalesce_window=%g" t.coalesce_window;
      Printf.sprintf "l1_txn_per_cycle=%g" t.l1_txn_per_cycle;
      Printf.sprintf "l2_sectors=%d" t.l2_sectors;
      Printf.sprintf "issue_dep_stall=%g" t.issue_dep_stall;
      Printf.sprintf "overlap_alpha=%g" t.overlap_alpha;
      Printf.sprintf "barrier=%s" (barrier_impl_to_string t.barrier_impl);
    ]

let of_spec ~base spec =
  let ( let* ) = Result.bind in
  let parse_int key v =
    match int_of_string_opt (String.trim v) with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "key %S: %S is not an integer" key v)
  in
  let parse_float key v =
    match float_of_string_opt (String.trim v) with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "key %S: %S is not a number" key v)
  in
  let apply acc item =
    let* t = acc in
    let item = String.trim item in
    if item = "" then Ok t
    else
      match String.index_opt item '=' with
      | None ->
          Error
            (Printf.sprintf "item %S is not a key=value pair" item)
      | Some i -> (
          let key = String.trim (String.sub item 0 i) in
          let v = String.sub item (i + 1) (String.length item - i - 1) in
          match key with
          | "name" -> Ok { t with name = String.trim v }
          | "warp_size" ->
              let* n = parse_int key v in
              Ok { t with warp_size = n }
          | "num_sms" ->
              let* n = parse_int key v in
              Ok { t with num_sms = n }
          | "max_threads_per_block" ->
              let* n = parse_int key v in
              Ok { t with max_threads_per_block = n }
          | "max_threads_per_sm" ->
              let* n = parse_int key v in
              Ok { t with max_threads_per_sm = n }
          | "max_blocks_per_sm" ->
              let* n = parse_int key v in
              Ok { t with max_blocks_per_sm = n }
          | "shared_mem_per_block" ->
              let* n = parse_int key v in
              Ok { t with shared_mem_per_block = n }
          | "shared_mem_per_sm" ->
              let* n = parse_int key v in
              Ok { t with shared_mem_per_sm = n }
          | "issue_lanes_per_sm" ->
              let* n = parse_int key v in
              Ok { t with issue_lanes_per_sm = n }
          | "dram_bw_per_sm" ->
              let* f = parse_float key v in
              Ok { t with dram_bw_per_sm = f }
          | "dram_bw_device" ->
              let* f = parse_float key v in
              Ok { t with dram_bw_device = f }
          | "line_bytes" ->
              let* n = parse_int key v in
              Ok { t with line_bytes = n }
          | "linebuf_lines" ->
              let* n = parse_int key v in
              Ok { t with linebuf_lines = n }
          | "coalesce_window" ->
              let* f = parse_float key v in
              Ok { t with coalesce_window = f }
          | "l1_txn_per_cycle" ->
              let* f = parse_float key v in
              Ok { t with l1_txn_per_cycle = f }
          | "l2_sectors" ->
              let* n = parse_int key v in
              Ok { t with l2_sectors = n }
          | "issue_dep_stall" ->
              let* f = parse_float key v in
              Ok { t with issue_dep_stall = f }
          | "overlap_alpha" ->
              let* f = parse_float key v in
              Ok { t with overlap_alpha = f }
          | "barrier" ->
              let* b = barrier_impl_of_string (String.trim v) in
              Ok { t with barrier_impl = b }
          | _ -> Error (Printf.sprintf "unknown key %S" key))
  in
  let* t =
    List.fold_left apply (Ok base) (String.split_on_char ',' spec)
  in
  let* () = validate t in
  Ok t

let pp ppf t =
  Format.fprintf ppf
    "@[<v>device %s: %d SMs, warp %d, <=%d thr/block, <=%d thr/SM,@ %d B \
     smem/block, %d B smem/SM, issue %d lanes/cycle,@ bw %.1f B/cyc/SM \
     (%.0f device), warp-barrier=%s@]"
    t.name t.num_sms t.warp_size t.max_threads_per_block t.max_threads_per_sm
    t.shared_mem_per_block t.shared_mem_per_sm t.issue_lanes_per_sm
    t.dram_bw_per_sm t.dram_bw_device
    (barrier_impl_to_string t.barrier_impl)
