(** Cooperative fiber engine for one thread block.

    Each GPU thread is an OCaml 5 effect fiber.  Fibers run until they
    synchronize; [barrier_wait] performs an effect that parks the fiber in
    the barrier, and a barrier release re-enqueues all participants.  The
    execution order between synchronization points is unspecified — exactly
    like real intra-block concurrency for race-free programs — while
    barrier semantics (max-of-arrival clocks) are exact. *)

exception Deadlock of string
(** Raised when runnable fibers are exhausted but some threads neither
    finished nor can be released — i.e. a barrier is waited on by fewer
    threads than it expects.  The message lists the stuck barriers. *)

type stuck = { stuck_name : string; stuck_waiting : int; stuck_expected : int }
(** One stuck barrier, identified by its display name (ids are
    process-unique atomics whose allocation order depends on the pool
    interleaving; names and waiter counts are deterministic). *)

type stall_info = {
  stall_block : int;
  stall_completed : int;  (** threads that finished *)
  stall_threads : int;
  stall_cycle : float;  (** max thread clock at detection *)
  stall_stuck : stuck list;  (** sorted: a canonical ordering *)
}

val take_stall : unit -> stall_info option
(** The structured companion of the last {!Deadlock} raised on the
    calling domain, stashed just before the raise; reading clears it.
    [Device.launch] consumes it to build a failure report when fault
    capture is armed (see {!Fault.capture_deadlocks}). *)

type block_result = {
  block_id : int;
  num_threads : int;
  critical_cycles : float;  (** max final lane clock: the latency leg *)
  busy_cycles : float;  (** sum of lane busy time: the throughput leg *)
  active_lanes : int;
      (** lanes that executed any work — feeds the issue-efficiency model
          (an underfilled SM cannot retire at full width) *)
  counters : Counters.t;
}

val barrier_wait : Barrier.t -> Thread.t -> unit
(** Suspend the calling fiber until the barrier releases.  Must be called
    from inside [run_block]'s dynamic extent.  Also clears the calling
    warp's atomic-contention epoch: contention is counted between
    consecutive synchronization points only. *)

val run_block :
  cfg:Config.t ->
  ?trace:Trace.t ->
  block_id:int ->
  num_threads:int ->
  (Thread.t -> unit) ->
  block_result
(** Create [num_threads] fibers (grouped into warps of [cfg.warp_size]),
    run the body in each, and return the block's timing summary.
    @raise Invalid_argument if [num_threads] is not positive or exceeds
    [cfg.max_threads_per_block].
    @raise Deadlock on unreleased barriers. *)
