(** Per-block shared ("team") memory.

    The arena models capacity — allocations consume bytes, the high-water
    mark feeds the occupancy calculation — while value storage stays on the
    OCaml side of whoever allocated.  Allocation is stack-disciplined
    ([mark]/[release]) because the runtime frees sharing space at the end of
    each parallel region (§5.3.1). *)

type arena

val arena : Config.t -> arena
(** Fresh arena with the device's per-block capacity. *)

val arena_of_capacity : int -> arena
(** For tests. *)

val id : arena -> int
(** Process-unique id; keys the sanitizer's shared-space shadow. *)

val capacity : arena -> int
val used : arena -> int
val high_water : arena -> int
(** Maximum [used] ever observed; this is the block's shared-memory
    footprint for occupancy purposes. *)

val alloc : arena -> bytes:int -> int option
(** Offset of a fresh allocation, or [None] when it would overflow — the
    caller is expected to fall back to global memory (cf. §5.3.1).
    @raise Invalid_argument on non-positive [bytes]. *)

val mark : arena -> int
val release : arena -> int -> unit
(** [release a m] pops every allocation made since [mark] returned [m].
    @raise Invalid_argument if [m] is not a valid mark. *)

val touch : Thread.t -> bytes:int -> unit
(** Charge a shared-memory access of the given width to a thread. *)
