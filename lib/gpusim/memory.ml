type space = {
  sid : int;  (* process-unique id: shadow-memory key for the sanitizer *)
  mutable next_addr : int;
  mutable l2 : Linebuf.t option;  (* created lazily from the first accessing device's config *)
  l2_order : floatarray;
      (* monotonic touch counter (order-based LRU proxy), as a 1-cell
         floatarray: a mutable float field of this mixed record would box
         a fresh float on every L2 touch *)
}

let next_sid = Atomic.make 0

let space () =
  {
    sid = Atomic.fetch_and_add next_sid 1;
    next_addr = 0;
    l2 = None;
    l2_order = Float.Array.make 1 0.0;
  }

let space_id space = space.sid

let l2_of space (cfg : Config.t) =
  match space.l2 with
  | Some l2 -> l2
  | None ->
      let l2 =
        Linebuf.create ~capacity:cfg.Config.l2_sectors ~coalesce_window:0.0
      in
      space.l2 <- Some l2;
      l2

let element_bytes = 8

type farray = { fbase : int; fdata : float array; fspace : space }
type iarray = { ibase : int; idata : int array; ispace : space }

(* Keep distinct arrays on distinct lines so the coalescing window never
   conflates them; align every allocation to a line boundary. *)
let alloc_bytes space n =
  let align = 128 in
  let base = (space.next_addr + align - 1) / align * align in
  space.next_addr <- base + n;
  base

let falloc space n =
  if n < 0 then invalid_arg "Memory.falloc: negative length";
  {
    fbase = alloc_bytes space (n * element_bytes);
    fdata = Array.make n 0.0;
    fspace = space;
  }

let ialloc space n =
  if n < 0 then invalid_arg "Memory.ialloc: negative length";
  {
    ibase = alloc_bytes space (n * element_bytes);
    idata = Array.make n 0;
    ispace = space;
  }

let of_float_array space a =
  let arr = falloc space (Array.length a) in
  Array.blit a 0 arr.fdata 0 (Array.length a);
  arr

let of_int_array space a =
  let arr = ialloc space (Array.length a) in
  Array.blit a 0 arr.idata 0 (Array.length a);
  arr

let flength a = Array.length a.fdata
let ilength a = Array.length a.idata
let space_of_farray a = a.fspace
let space_of_iarray a = a.ispace

let l2_reset space =
  (match space.l2 with Some l2 -> Linebuf.clear l2 | None -> ());
  Float.Array.set space.l2_order 0 0.0

(* --- per-block L2 sessions -------------------------------------------- *)

(* The device L2 is the one piece of simulator state shared by all thread
   blocks of a launch.  To make block simulation order-independent (and
   therefore safe and deterministic to run on several domains), each block
   runs inside a session: L2 lookups go to a per-block fork of the
   committed L2 (its state as of launch start), and the block's touch
   sequence is logged.  After every block has finished, the launcher
   commits the logs into the real L2 in ascending block_id order, so the
   post-launch L2 (what the next launch's forks see) is canonical.

   A block therefore never observes L2 lines fetched by a concurrently
   launched sibling block — the launch-start snapshot plus its own
   traffic.  Warm-cache behaviour across launches is unchanged: anything
   resident before the launch is resident in every fork. *)

type l2_view = {
  vspace : space;
  vcfg : Config.t;  (* config to materialize the committed L2 on commit *)
  vfork : Linebuf.t;
  vorder : floatarray;  (* private continuation of the touch counter (1 cell) *)
  (* touch log as a growable int array: the commit replay walks millions
     of entries on the big experiments, and a cons per touch plus a full
     List.rev per commit was measurable GC traffic *)
  mutable vlog : int array;
  mutable vlen : int;
}

let vlog_push v line =
  let cap = Array.length v.vlog in
  if v.vlen = cap then begin
    let bigger = Array.make (Int.max 256 (2 * cap)) 0 in
    Array.blit v.vlog 0 bigger 0 cap;
    v.vlog <- bigger
  end;
  v.vlog.(v.vlen) <- line;
  v.vlen <- v.vlen + 1

type block_session = {
  mutable views : l2_view list;  (* reversed creation order *)
  (* 1-slot view cache: a block's consults cluster by space, so most
     lookups hit the space consulted last and skip the list walk *)
  mutable vmemo : l2_view option;
}

let session_slot : block_session option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Warp-stashed answer to "is a session open on this domain?" (see
   Thread.mem_session): the L2 consult on every warp-cache miss would
   otherwise pay a Domain.DLS lookup.  Safe to memoize per warp because
   sessions bracket whole blocks (Device opens one before
   Engine.run_block creates the warps and closes it after run_block
   returns), so the answer is constant for a warp's entire lifetime —
   [Bare_l2] records the no-session case for blocks run outside a
   session. *)
type Thread.mem_session += Session of block_session | Bare_l2

let session_of_warp (w : Thread.warp_state) =
  match w.Thread.msession with
  | Thread.No_session ->
      let b =
        match !(Domain.DLS.get session_slot) with
        | Some s -> Session s
        | None -> Bare_l2
      in
      w.Thread.msession <- b;
      b
  | b -> b

let session_begin () =
  let slot = Domain.DLS.get session_slot in
  (match !slot with
  | Some _ -> invalid_arg "Memory.session_begin: session already open"
  | None -> ());
  slot := Some { views = []; vmemo = None }

let session_end () =
  let slot = Domain.DLS.get session_slot in
  match !slot with
  | None -> invalid_arg "Memory.session_end: no open session"
  | Some s ->
      slot := None;
      s

let rec find_view space = function
  | [] -> None
  | v :: rest -> if v.vspace == space then Some v else find_view space rest

let view_of_slow session space (cfg : Config.t) =
  let v =
    match find_view space session.views with
    | Some v -> v
    | None ->
      (* The committed L2 is frozen for the whole parallel phase, so
         reading [space.l2] and forking it here is domain-safe. *)
      let vfork =
        match space.l2 with
        | Some l2 -> Linebuf.fork l2
        | None ->
            (* first launch over this space: no committed stamps to fork
               yet.  The view only ever holds this one block's traffic,
               so it must NOT be pre-sized to the device capacity — that
               made the first launch allocate a device-scale table per
               (block, space) pair. *)
            Linebuf.create_small ~capacity:cfg.Config.l2_sectors
              ~coalesce_window:0.0
      in
      let v =
        {
          vspace = space;
          vcfg = cfg;
          vfork;
          vorder = Float.Array.make 1 (Float.Array.get space.l2_order 0);
          vlog = [||];
          vlen = 0;
        }
      in
      session.views <- v :: session.views;
      v
  in
  session.vmemo <- Some v;
  v

let[@inline] view_of session space (cfg : Config.t) =
  match session.vmemo with
  | Some v when v.vspace == space -> v
  | _ -> view_of_slow session space cfg

let session_commit s =
  List.iter
    (fun v ->
      let l2 = l2_of v.vspace v.vcfg in
      let log = v.vlog in
      let order = v.vspace.l2_order in
      (* the replay walks millions of entries across a launch; the order
         cell is a 1-element floatarray, so index 0 is always in bounds *)
      for i = 0 to v.vlen - 1 do
        let o = Float.Array.unsafe_get order 0 +. 1.0 in
        Float.Array.unsafe_set order 0 o;
        Linebuf.set_now l2 o;
        ignore (Linebuf.touch_line l2 ~lane:0 (Array.unsafe_get log i))
      done)
    (List.rev s.views)

let check name len i =
  if i < 0 || i >= len then
    invalid_arg (Printf.sprintf "Memory.%s: index %d out of bounds [0,%d)" name i len)

(* The address → line (coalescing key) computation.  Strided accesses in
   a burst revisit the same few (base, line) pairs, so a 4-slot LRU on
   the warp (one slot per recently seen base, round-robin replacement)
   answers most of them with a compare instead of the division chain.
   [line_memo_enabled] exists for the unit test that shows counters are
   identical with the memo off. *)
let line_memo_enabled = ref true

let line_of (th : Thread.t) ~base ~index =
  let lb = th.cfg.Config.line_bytes in
  let addr = base + (index * element_bytes) in
  if not !line_memo_enabled then addr / lb
  else begin
    let w = th.Thread.warp in
    let mb = w.Thread.memo_base in
    (* unrolled 4-slot scan: a local rec function here would be a real
       closure allocation per call in classic (non-flambda) ocamlopt *)
    let k =
      if mb.(0) = base then 0
      else if mb.(1) = base then 1
      else if mb.(2) = base then 2
      else if mb.(3) = base then 3
      else -1
    in
    if k < 0 then begin
      let line = addr / lb in
      let k = w.Thread.memo_next in
      w.Thread.memo_next <- (k + 1) land 3;
      mb.(k) <- base;
      w.Thread.memo_line.(k) <- line;
      w.Thread.memo_lo.(k) <- line * lb;
      line
    end
    else begin
      let off = addr - w.Thread.memo_lo.(k) in
      if off >= 0 && off < lb then w.Thread.memo_line.(k)
      else begin
        let line = addr / lb in
        w.Thread.memo_line.(k) <- line;
        w.Thread.memo_lo.(k) <- line * lb;
        line
      end
    end
  end

(* Charge a global access.  Issue cost always; then the warp-level cache
   decides whether the access coalesces, hits, or opens a transaction —
   and a transaction that misses the warp cache still has a chance in the
   device-wide L2 before counting as DRAM traffic. *)
let account (th : Thread.t) ~space ~base ~index ~is_store =
  (* Fault tap: like the sanitizer's, one load-and-branch when disarmed.
     Aborts and bit flips fire here — the global-access path is where
     every kernel's traffic funnels, and thread clocks at each access
     are deterministic, so the failure point is too. *)
  if !Fault.armed then Fault.on_access th;
  let cfg = th.cfg in
  let cost = cfg.Config.cost in
  let c = th.counters in
  let line = line_of th ~base ~index in
  if is_store then c.Counters.global_stores <- c.Counters.global_stores + 1
  else c.Counters.global_loads <- c.Counters.global_loads + 1;
  Thread.tick th cost.Config.mem_issue;
  let lines = th.Thread.warp.Thread.lines in
  Linebuf.set_now lines (Thread.clock th);
  let code = Linebuf.touch_line lines ~lane:th.Thread.lane line in
  (* codes: 0 coalesced, 1 hit w=1, 2 miss, k>=3 burst hit w=1/(k-2) *)
  if code <> 2 then begin
    c.Counters.line_hits <- c.Counters.line_hits + 1;
    if code <> 0 then Counters.add_lsu c (Linebuf.code_weight code)
  end
  else begin
    Counters.add_lsu c 1.0;
    let l2_resident =
      match session_of_warp th.Thread.warp with
      | Session s ->
          let v = view_of s space cfg in
          let o = Float.Array.unsafe_get v.vorder 0 +. 1.0 in
          Float.Array.unsafe_set v.vorder 0 o;
          vlog_push v line;
          Linebuf.set_now v.vfork o;
          Linebuf.touch_line v.vfork ~lane:0 line <> 2
      | _ ->
          (* no session (bare Engine.run_block): touch the committed L2
             directly, the pre-session behaviour *)
          let l2 = l2_of space cfg in
          Float.Array.set space.l2_order 0
            (Float.Array.get space.l2_order 0 +. 1.0);
          Linebuf.set_now l2 (Float.Array.get space.l2_order 0);
          Linebuf.touch_line l2 ~lane:0 line <> 2
    in
    if l2_resident then begin
      c.Counters.l2_hits <- c.Counters.l2_hits + 1;
      Thread.tick_wait th (cost.Config.mem_miss_latency /. 2.0)
    end
    else begin
      c.Counters.line_misses <- c.Counters.line_misses + 1;
      Counters.add_dram c (float_of_int cfg.Config.line_bytes);
      Thread.tick_wait th cost.Config.mem_miss_latency
    end
  end;
  line

(* Sanitizer taps: one load-and-branch when disabled, never touching
   clocks or counters, so reports stay bit-identical either way. *)
let[@inline] sanitize th space ~base ~index ~kind =
  if !Ompsan.enabled then
    Ompsan.global_access th ~sid:space.sid
      ~addr:(base + (index * element_bytes))
      ~kind

let[@inline] fget a th i =
  check "fget" (Array.length a.fdata) i;
  let (_ : int) =
    account th ~space:a.fspace ~base:a.fbase ~index:i ~is_store:false
  in
  sanitize th a.fspace ~base:a.fbase ~index:i ~kind:Ompsan.Read;
  a.fdata.(i)

let[@inline] fset a th i v =
  check "fset" (Array.length a.fdata) i;
  let (_ : int) =
    account th ~space:a.fspace ~base:a.fbase ~index:i ~is_store:true
  in
  sanitize th a.fspace ~base:a.fbase ~index:i ~kind:Ompsan.Write;
  a.fdata.(i) <- v

let[@inline] iget a th i =
  check "iget" (Array.length a.idata) i;
  let (_ : int) =
    account th ~space:a.ispace ~base:a.ibase ~index:i ~is_store:false
  in
  sanitize th a.ispace ~base:a.ibase ~index:i ~kind:Ompsan.Read;
  a.idata.(i)

let[@inline] iset a th i v =
  check "iset" (Array.length a.idata) i;
  let (_ : int) =
    account th ~space:a.ispace ~base:a.ibase ~index:i ~is_store:true
  in
  sanitize th a.ispace ~base:a.ibase ~index:i ~kind:Ompsan.Write;
  a.idata.(i) <- v

(* Device atomics may target the same cell from blocks running on
   different domains; a host-side lock keeps the read-modify-write
   atomic so no update is lost.  (The *order* of same-cell updates from
   different blocks is unordered on real hardware too — kernels that
   need a deterministic float sum must not reduce through a single cell
   across blocks.)  Cost accounting stays outside the lock: it only
   touches block-local state. *)
let rmw_lock = Mutex.create ()

(* The lock only matters when blocks simulate on several domains; a
   sequential launch (no pool, or a zero-worker pool) pays two futex ops
   per device atomic for nothing.  [Device.launch] flips this before the
   block phase of every launch, so the flag always reflects the current
   launch's domain usage.  Results are unaffected either way — the lock
   guards host-side read-modify-write only, never timing. *)
let rmw_locking = ref true
let set_rmw_locking on = rmw_locking := on

let atomic_cost (th : Thread.t) line =
  let cost = th.cfg.Config.cost in
  let prior = Thread.ae_bump th.Thread.warp line in
  th.counters.Counters.atomics <- th.counters.Counters.atomics + 1;
  (* The RMW itself issues; waiting behind other lanes' RMWs on the same
     line is serialization stall, not issue work. *)
  Thread.tick th cost.Config.atomic;
  Thread.tick_wait th (float_of_int prior *. cost.Config.atomic_contend)

let[@inline] atomic_fadd a th i v =
  check "atomic_fadd" (Array.length a.fdata) i;
  let line = account th ~space:a.fspace ~base:a.fbase ~index:i ~is_store:true in
  sanitize th a.fspace ~base:a.fbase ~index:i ~kind:Ompsan.Atomic;
  atomic_cost th line;
  if !rmw_locking then Mutex.lock rmw_lock;
  let prev = a.fdata.(i) in
  a.fdata.(i) <- prev +. v;
  if !rmw_locking then Mutex.unlock rmw_lock;
  prev

let atomic_fmax a th i v =
  check "atomic_fmax" (Array.length a.fdata) i;
  let line = account th ~space:a.fspace ~base:a.fbase ~index:i ~is_store:true in
  sanitize th a.fspace ~base:a.fbase ~index:i ~kind:Ompsan.Atomic;
  atomic_cost th line;
  if !rmw_locking then Mutex.lock rmw_lock;
  let prev = a.fdata.(i) in
  if v > prev then a.fdata.(i) <- v;
  if !rmw_locking then Mutex.unlock rmw_lock;
  prev

let atomic_iadd a th i v =
  check "atomic_iadd" (Array.length a.idata) i;
  let line = account th ~space:a.ispace ~base:a.ibase ~index:i ~is_store:true in
  sanitize th a.ispace ~base:a.ibase ~index:i ~kind:Ompsan.Atomic;
  atomic_cost th line;
  if !rmw_locking then Mutex.lock rmw_lock;
  let prev = a.idata.(i) in
  a.idata.(i) <- prev + v;
  if !rmw_locking then Mutex.unlock rmw_lock;
  prev

let host_get a i =
  check "host_get" (Array.length a.fdata) i;
  a.fdata.(i)

let host_set a i v =
  check "host_set" (Array.length a.fdata) i;
  a.fdata.(i) <- v

let host_geti a i =
  check "host_geti" (Array.length a.idata) i;
  a.idata.(i)

let host_seti a i v =
  check "host_seti" (Array.length a.idata) i;
  a.idata.(i) <- v

let to_float_array a = Array.copy a.fdata
let to_int_array a = Array.copy a.idata
let fill a v = Array.fill a.fdata 0 (Array.length a.fdata) v
