(** Chrome trace-event export.

    Converts a recorded {!Trace.t} into the JSON array format that
    [chrome://tracing] / Perfetto load directly: each simulator event
    becomes an instant event, with blocks as processes and threads as
    threads, timestamped by the virtual clock (cycles as microseconds).
    Useful for eyeballing state-machine hand-offs and barrier convoys. *)

val to_json : Trace.t -> string
(** The complete JSON document. *)

val write_file : Trace.t -> path:string -> unit
(** @raise Sys_error on I/O failure. *)
