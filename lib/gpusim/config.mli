(** Device configuration for the simulated GPU.

    All cost constants are in abstract "cycles".  They are calibrated so
    that the *relative* results of the paper's experiments (speedup shapes,
    mode overheads) reproduce; absolute values carry no meaning.  Every
    experiment receives its device through this record, so ablations (e.g.
    the AMD wavefront-barrier gap of §5.4.1) are plain field overrides. *)

type cost = {
  alu : float;  (** integer/logic op, per lane *)
  flop : float;  (** floating-point op, per lane *)
  special : float;  (** sqrt/exp/div and friends *)
  mem_issue : float;  (** issue cost of any global-memory access *)
  mem_miss_latency : float;
      (** additional lane latency when the access opens a new 128 B line
          transaction (i.e. it did not coalesce with a recent one) *)
  smem_access : float;  (** shared-memory load/store *)
  atomic : float;  (** global atomic RMW *)
  atomic_contend : float;  (** extra cost per prior atomic on the same line
                               within the current barrier epoch *)
  warp_barrier : float;  (** masked warp-level synchronization *)
  block_barrier : float;  (** block-wide (team-wide) barrier *)
  branch : float;
  call : float;  (** direct call of an outlined function *)
  icmp_cascade : float;  (** per comparison in the if-cascade dispatcher *)
  indirect_call : float;  (** fallback indirect function-pointer call *)
  launch_overhead : float;  (** fixed kernel-launch cost in cycles *)
}

type barrier_impl =
  | Hw_barrier
      (** NVIDIA-style hardware masked warp sync: fixed cost, mostly
          hideable pipeline-drain stall. *)
  | Sw_barrier
      (** Software-emulated masked barrier (the Vortex path): lanes spin
          on shared-memory flags, so the cost scales with the participant
          count, occupies issue slots for its full duration, and charges
          a per-block shared-memory flag footprint against occupancy. *)
  | No_barrier
      (** No masked warp sync at all.  Models the AMD gap of §5.4.1: the
          runtime degrades generic-mode simd loops to sequential
          execution on the SIMD main thread. *)

val barrier_impl_to_string : barrier_impl -> string
(** ["hw"], ["sw"], ["none"] — the spec-string encoding. *)

val barrier_impl_of_string : string -> (barrier_impl, string) result

type t = {
  name : string;
  warp_size : int;
  num_sms : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_block : int;  (** bytes *)
  shared_mem_per_sm : int;  (** bytes *)
  issue_lanes_per_sm : int;
      (** lane-ops retired per cycle per SM (schedulers x warp width); the
          throughput leg of the roofline *)
  dram_bw_per_sm : float;  (** bytes per cycle per SM *)
  dram_bw_device : float;  (** device-wide bytes per cycle *)
  line_bytes : int;
      (** DRAM transaction granularity in bytes — a 32 B sector, the unit
          real devices actually fetch; strided access that uses 8 of every
          32 bytes therefore pays 4x traffic once its sectors fall out of
          residency *)
  linebuf_lines : int;
      (** per-warp cache-residency capacity in 128 B lines (the warp's
          fair share of L1/L2); see {!Linebuf} for the model *)
  coalesce_window : float;
      (** touches of one line by a warp within this many virtual cycles
          belong to the same memory instruction and coalesce into one L1
          transaction *)
  l1_txn_per_cycle : float;
      (** L1/LSU lookup throughput per SM, in sector transactions per
          cycle — the roofline leg that punishes uncoalesced access
          patterns even when DRAM traffic is equal *)
  l2_sectors : int;
      (** device-wide L2 capacity in sectors; data whose footprint fits
          here is fetched from DRAM once no matter how many blocks
          re-read it *)
  issue_dep_stall : float;
      (** average cycles a lane waits between dependent instructions; an
          SM can only retire [concurrently-active lanes / this] lane-ops
          per cycle, so an underfilled device cannot reach peak issue —
          the "thread level does not provide enough parallelism" effect
          of the paper's S1 *)
  overlap_alpha : float;
      (** imperfect-overlap factor in \[0,1\]: per-SM time is the dominant
          roofline leg plus [alpha] times the remaining legs.  0 models
          perfect compute/memory/latency overlap; real devices leak a
          fraction of the hidden legs into wall time. *)
  barrier_impl : barrier_impl;
      (** How (and whether) the device implements the masked warp sync
          the generic state machine rendezvous needs. *)
  cost : cost;
}

val default_cost : cost

val a100 : t
(** NVIDIA A100-40GB-like device (the paper's testbed), 108 SMs. *)

val amd_like : t
(** Same shape but [barrier_impl = No_barrier] (cf. §5.4.1). *)

val a100_quarter : t
(** A 27-SM quarter of the A100 with proportional device bandwidth — the
    default benchmarking device: per-SM behaviour and therefore all
    relative results are identical to the full device, at a quarter of
    the simulation cost. *)

val small : t
(** Tiny 4-SM device for fast unit tests. *)

val with_sms : t -> int -> t
(** Scale the device to a given SM count, keeping per-SM resources and
    scaling device-wide DRAM bandwidth proportionally.  Experiments use
    this to run shape-faithful sweeps on a smaller device.
    @raise Invalid_argument on non-positive counts. *)

val max_warp_size : int
(** Widest representable warp (64) — bounded by {!Ompsimd_util.Mask}. *)

val validate : t -> (unit, string) result
(** Structural sanity: warp size divides [max_threads_per_block],
    capacities positive, etc. *)

val checked : t -> t
(** Identity on valid configs.
    @raise Invalid_argument naming the device and the failed invariant
    otherwise — the construction-time guard zoo entries and spec parsing
    go through, so a sweep can never build an impossible device. *)

val warp_barrier_cost : t -> participants:int -> float
(** Cost in cycles of one masked warp rendezvous with the given number of
    participating lanes under the device's {!barrier_impl}: the flat
    [cost.warp_barrier] on hardware, participant-scaled shared-memory
    flag traffic on the software emulation, [0] when there is no barrier
    (the runtime never creates one then). *)

val warp_barrier_spins : t -> bool
(** Whether the warp barrier's cost occupies issue slots for its full
    duration (software spin loops do; hardware barriers hide all but the
    issue of the instruction itself). *)

val sw_barrier_smem_bytes : t -> threads:int -> int
(** Per-block shared-memory footprint of the software barrier's flag
    arrays ([0] unless [barrier_impl = Sw_barrier]). *)

val to_spec : t -> string
(** Render the shape fields as a [key=value,...] spec string.  Costs are
    not included; [of_spec ~base (to_spec t)] rebuilds [t] exactly when
    [t.cost == base.cost]. *)

val of_spec : base:t -> string -> (t, string) result
(** Apply [key=value,...] overrides to [base] and validate the result.
    Unknown keys, malformed values and invalid shapes all fail fast with
    a message naming the offending key (the [OMPSIMD_DEVICE] contract). *)

val pp : Format.formatter -> t -> unit
