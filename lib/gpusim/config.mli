(** Device configuration for the simulated GPU.

    All cost constants are in abstract "cycles".  They are calibrated so
    that the *relative* results of the paper's experiments (speedup shapes,
    mode overheads) reproduce; absolute values carry no meaning.  Every
    experiment receives its device through this record, so ablations (e.g.
    the AMD wavefront-barrier gap of §5.4.1) are plain field overrides. *)

type cost = {
  alu : float;  (** integer/logic op, per lane *)
  flop : float;  (** floating-point op, per lane *)
  special : float;  (** sqrt/exp/div and friends *)
  mem_issue : float;  (** issue cost of any global-memory access *)
  mem_miss_latency : float;
      (** additional lane latency when the access opens a new 128 B line
          transaction (i.e. it did not coalesce with a recent one) *)
  smem_access : float;  (** shared-memory load/store *)
  atomic : float;  (** global atomic RMW *)
  atomic_contend : float;  (** extra cost per prior atomic on the same line
                               within the current barrier epoch *)
  warp_barrier : float;  (** masked warp-level synchronization *)
  block_barrier : float;  (** block-wide (team-wide) barrier *)
  branch : float;
  call : float;  (** direct call of an outlined function *)
  icmp_cascade : float;  (** per comparison in the if-cascade dispatcher *)
  indirect_call : float;  (** fallback indirect function-pointer call *)
  launch_overhead : float;  (** fixed kernel-launch cost in cycles *)
}

type t = {
  name : string;
  warp_size : int;
  num_sms : int;
  max_threads_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_block : int;  (** bytes *)
  shared_mem_per_sm : int;  (** bytes *)
  issue_lanes_per_sm : int;
      (** lane-ops retired per cycle per SM (schedulers x warp width); the
          throughput leg of the roofline *)
  dram_bw_per_sm : float;  (** bytes per cycle per SM *)
  dram_bw_device : float;  (** device-wide bytes per cycle *)
  line_bytes : int;
      (** DRAM transaction granularity in bytes — a 32 B sector, the unit
          real devices actually fetch; strided access that uses 8 of every
          32 bytes therefore pays 4x traffic once its sectors fall out of
          residency *)
  linebuf_lines : int;
      (** per-warp cache-residency capacity in 128 B lines (the warp's
          fair share of L1/L2); see {!Linebuf} for the model *)
  coalesce_window : float;
      (** touches of one line by a warp within this many virtual cycles
          belong to the same memory instruction and coalesce into one L1
          transaction *)
  l1_txn_per_cycle : float;
      (** L1/LSU lookup throughput per SM, in sector transactions per
          cycle — the roofline leg that punishes uncoalesced access
          patterns even when DRAM traffic is equal *)
  l2_sectors : int;
      (** device-wide L2 capacity in sectors; data whose footprint fits
          here is fetched from DRAM once no matter how many blocks
          re-read it *)
  issue_dep_stall : float;
      (** average cycles a lane waits between dependent instructions; an
          SM can only retire [concurrently-active lanes / this] lane-ops
          per cycle, so an underfilled device cannot reach peak issue —
          the "thread level does not provide enough parallelism" effect
          of the paper's S1 *)
  overlap_alpha : float;
      (** imperfect-overlap factor in \[0,1\]: per-SM time is the dominant
          roofline leg plus [alpha] times the remaining legs.  0 models
          perfect compute/memory/latency overlap; real devices leak a
          fraction of the hidden legs into wall time. *)
  has_warp_barrier : bool;
      (** NVIDIA-style masked warp sync available.  [false] models the AMD
          gap of §5.4.1: the runtime then degrades generic-mode simd loops
          to sequential execution on the SIMD main thread. *)
  cost : cost;
}

val default_cost : cost

val a100 : t
(** NVIDIA A100-40GB-like device (the paper's testbed), 108 SMs. *)

val amd_like : t
(** Same shape but [has_warp_barrier = false] (cf. §5.4.1). *)

val a100_quarter : t
(** A 27-SM quarter of the A100 with proportional device bandwidth — the
    default benchmarking device: per-SM behaviour and therefore all
    relative results are identical to the full device, at a quarter of
    the simulation cost. *)

val small : t
(** Tiny 4-SM device for fast unit tests. *)

val with_sms : t -> int -> t
(** Scale the device to a given SM count, keeping per-SM resources and
    scaling device-wide DRAM bandwidth proportionally.  Experiments use
    this to run shape-faithful sweeps on a smaller device.
    @raise Invalid_argument on non-positive counts. *)

val validate : t -> (unit, string) result
(** Structural sanity: warp size divides limits, capacities positive, etc. *)

val pp : Format.formatter -> t -> unit
