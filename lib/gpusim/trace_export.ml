let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_json (e : Trace.event) =
  Printf.sprintf
    {|{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"detail":"%s"}}|}
    (escape e.Trace.tag) e.Trace.time e.Trace.block e.Trace.tid
    (escape e.Trace.detail)

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf (event_json e))
    (Trace.events t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let write_file t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))
