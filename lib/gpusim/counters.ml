type t = {
  mutable lane_busy_cycles : float;
  mutable dram_bytes : float;
  mutable smem_bytes : float;
  mutable global_loads : int;
  mutable global_stores : int;
  mutable line_hits : int;
  mutable line_misses : int;
  mutable lsu_transactions : float;
  mutable l2_hits : int;
  mutable atomics : int;
  mutable warp_barriers : int;
  mutable block_barriers : int;
  mutable calls : int;
  extras : (string, float ref) Hashtbl.t;
}

let create () =
  {
    lane_busy_cycles = 0.0;
    dram_bytes = 0.0;
    smem_bytes = 0.0;
    global_loads = 0;
    global_stores = 0;
    line_hits = 0;
    line_misses = 0;
    lsu_transactions = 0.0;
    l2_hits = 0;
    atomics = 0;
    warp_barriers = 0;
    block_barriers = 0;
    calls = 0;
    extras = Hashtbl.create 8;
  }

(* Hot path: one hash lookup per bump once a key exists (the cell is
   mutated in place); only the first bump of a key pays the insert. *)
let bump t key v =
  match Hashtbl.find_opt t.extras key with
  | Some cell -> cell := !cell +. v
  | None -> Hashtbl.replace t.extras key (ref v)

let get_extra t key =
  match Hashtbl.find_opt t.extras key with Some cell -> !cell | None -> 0.0

let merge_into ~dst src =
  dst.lane_busy_cycles <- dst.lane_busy_cycles +. src.lane_busy_cycles;
  dst.dram_bytes <- dst.dram_bytes +. src.dram_bytes;
  dst.smem_bytes <- dst.smem_bytes +. src.smem_bytes;
  dst.global_loads <- dst.global_loads + src.global_loads;
  dst.global_stores <- dst.global_stores + src.global_stores;
  dst.line_hits <- dst.line_hits + src.line_hits;
  dst.line_misses <- dst.line_misses + src.line_misses;
  dst.lsu_transactions <- dst.lsu_transactions +. src.lsu_transactions;
  dst.l2_hits <- dst.l2_hits + src.l2_hits;
  dst.atomics <- dst.atomics + src.atomics;
  dst.warp_barriers <- dst.warp_barriers + src.warp_barriers;
  dst.block_barriers <- dst.block_barriers + src.block_barriers;
  dst.calls <- dst.calls + src.calls;
  Hashtbl.iter (fun k v -> bump dst k !v) src.extras

(* Bit-exact comparison (floats compared with [=], so 0.0 = -0.0 but no
   tolerance): the determinism tests lean on this to assert that
   sequential, pooled and deduplicated launches produce the same report. *)
let equal a b =
  let extras_subset x y =
    Hashtbl.fold
      (fun k v acc -> acc && match Hashtbl.find_opt y k with
        | Some w -> !v = !w
        | None -> !v = 0.0)
      x true
  in
  a.lane_busy_cycles = b.lane_busy_cycles
  && a.dram_bytes = b.dram_bytes
  && a.smem_bytes = b.smem_bytes
  && a.global_loads = b.global_loads
  && a.global_stores = b.global_stores
  && a.line_hits = b.line_hits
  && a.line_misses = b.line_misses
  && a.lsu_transactions = b.lsu_transactions
  && a.l2_hits = b.l2_hits
  && a.atomics = b.atomics
  && a.warp_barriers = b.warp_barriers
  && a.block_barriers = b.block_barriers
  && a.calls = b.calls
  && extras_subset a.extras b.extras
  && extras_subset b.extras a.extras

let copy t =
  let fresh = create () in
  merge_into ~dst:fresh t;
  fresh

let coalescing_ratio t =
  let total = t.line_hits + t.line_misses in
  if total = 0 then 1.0 else float_of_int t.line_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "@[<v>busy=%.0f dram=%.0fB smem=%.0fB loads=%d stores=%d hit/miss=%d/%d \
     atomics=%d wbar=%d bbar=%d calls=%d@]"
    t.lane_busy_cycles t.dram_bytes t.smem_bytes t.global_loads t.global_stores
    t.line_hits t.line_misses t.atomics t.warp_barriers t.block_barriers t.calls
