(* The four float counters live in a nested all-float record: OCaml
   stores all-float records flat (unboxed), so the hot-path [<-] writes
   mutate in place.  Keeping them as fields of the mixed int/float outer
   record would box a fresh float on every write — one allocation per
   Thread.tick, measurable on the slow experiments. *)
type floats = {
  mutable lane_busy_cycles : float;
  mutable dram_bytes : float;
  mutable smem_bytes : float;
  mutable lsu_transactions : float;
}

(* extras cells: a single-field all-float record is stored flat, so the
   per-bump [<-] mutates in place; a [float ref] here would be a pointer
   to a boxed float re-allocated on every bump. *)
type cell = { mutable c : float }

type t = {
  f : floats;
  mutable global_loads : int;
  mutable global_stores : int;
  mutable line_hits : int;
  mutable line_misses : int;
  mutable l2_hits : int;
  mutable atomics : int;
  mutable warp_barriers : int;
  mutable block_barriers : int;
  mutable calls : int;
  extras : (string, cell) Hashtbl.t;
  mutable memo_k1 : string;
  mutable memo_c1 : cell;
  mutable memo_k2 : string;
  mutable memo_c2 : cell;
}

(* Physical-equality memo sentinel: never [==] to any caller string. *)
let memo_sentinel = String.make 1 '\000'
let memo_dummy = { c = 0.0 }

let create () =
  {
    f =
      {
        lane_busy_cycles = 0.0;
        dram_bytes = 0.0;
        smem_bytes = 0.0;
        lsu_transactions = 0.0;
      };
    global_loads = 0;
    global_stores = 0;
    line_hits = 0;
    line_misses = 0;
    l2_hits = 0;
    atomics = 0;
    warp_barriers = 0;
    block_barriers = 0;
    calls = 0;
    extras = Hashtbl.create 8;
    memo_k1 = memo_sentinel;
    memo_c1 = memo_dummy;
    memo_k2 = memo_sentinel;
    memo_c2 = memo_dummy;
  }

let busy_cycles t = t.f.lane_busy_cycles
let dram_bytes t = t.f.dram_bytes
let smem_bytes t = t.f.smem_bytes
let lsu_transactions t = t.f.lsu_transactions
let[@inline] add_busy t v = t.f.lane_busy_cycles <- t.f.lane_busy_cycles +. v
let[@inline] add_dram t v = t.f.dram_bytes <- t.f.dram_bytes +. v
let[@inline] add_smem t v = t.f.smem_bytes <- t.f.smem_bytes +. v
let[@inline] add_lsu t v = t.f.lsu_transactions <- t.f.lsu_transactions +. v

(* Hot path: call sites bump a small set of literal keys over and over,
   so a two-entry physical-equality memo answers almost every bump
   without hashing the string; the hash table is the slow path and the
   ground truth. *)
let[@inline] bump t key v =
  if key == t.memo_k1 then t.memo_c1.c <- t.memo_c1.c +. v
  else if key == t.memo_k2 then t.memo_c2.c <- t.memo_c2.c +. v
  else begin
    let cell =
      match Hashtbl.find_opt t.extras key with
      | Some cell -> cell
      | None ->
          let cell = { c = 0.0 } in
          Hashtbl.replace t.extras key cell;
          cell
    in
    cell.c <- cell.c +. v;
    t.memo_k2 <- t.memo_k1;
    t.memo_c2 <- t.memo_c1;
    t.memo_k1 <- key;
    t.memo_c1 <- cell
  end

let get_extra t key =
  match Hashtbl.find_opt t.extras key with Some cell -> cell.c | None -> 0.0

let merge_into ~dst src =
  dst.f.lane_busy_cycles <- dst.f.lane_busy_cycles +. src.f.lane_busy_cycles;
  dst.f.dram_bytes <- dst.f.dram_bytes +. src.f.dram_bytes;
  dst.f.smem_bytes <- dst.f.smem_bytes +. src.f.smem_bytes;
  dst.global_loads <- dst.global_loads + src.global_loads;
  dst.global_stores <- dst.global_stores + src.global_stores;
  dst.line_hits <- dst.line_hits + src.line_hits;
  dst.line_misses <- dst.line_misses + src.line_misses;
  dst.f.lsu_transactions <- dst.f.lsu_transactions +. src.f.lsu_transactions;
  dst.l2_hits <- dst.l2_hits + src.l2_hits;
  dst.atomics <- dst.atomics + src.atomics;
  dst.warp_barriers <- dst.warp_barriers + src.warp_barriers;
  dst.block_barriers <- dst.block_barriers + src.block_barriers;
  dst.calls <- dst.calls + src.calls;
  Hashtbl.iter (fun k v -> bump dst k v.c) src.extras

(* Bit-exact comparison (floats compared with [=], so 0.0 = -0.0 but no
   tolerance): the determinism tests lean on this to assert that
   sequential, pooled and deduplicated launches produce the same report. *)
let equal a b =
  let extras_subset x y =
    Hashtbl.fold
      (fun k v acc -> acc && match Hashtbl.find_opt y k with
        | Some w -> v.c = w.c
        | None -> v.c = 0.0)
      x true
  in
  a.f.lane_busy_cycles = b.f.lane_busy_cycles
  && a.f.dram_bytes = b.f.dram_bytes
  && a.f.smem_bytes = b.f.smem_bytes
  && a.global_loads = b.global_loads
  && a.global_stores = b.global_stores
  && a.line_hits = b.line_hits
  && a.line_misses = b.line_misses
  && a.f.lsu_transactions = b.f.lsu_transactions
  && a.l2_hits = b.l2_hits
  && a.atomics = b.atomics
  && a.warp_barriers = b.warp_barriers
  && a.block_barriers = b.block_barriers
  && a.calls = b.calls
  && extras_subset a.extras b.extras
  && extras_subset b.extras a.extras

let copy t =
  let fresh = create () in
  merge_into ~dst:fresh t;
  fresh

let coalescing_ratio t =
  let total = t.line_hits + t.line_misses in
  if total = 0 then 1.0 else float_of_int t.line_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "@[<v>busy=%.0f dram=%.0fB smem=%.0fB loads=%d stores=%d hit/miss=%d/%d \
     atomics=%d wbar=%d bbar=%d calls=%d@]"
    t.f.lane_busy_cycles t.f.dram_bytes t.f.smem_bytes t.global_loads
    t.global_stores t.line_hits t.line_misses t.atomics t.warp_barriers
    t.block_barriers t.calls
