(** Reusable rendezvous barriers.

    A barrier releases all participants once [expected] threads have
    arrived, setting every participant's clock to the *maximum* arrival
    clock plus [cost].  This max-rule is what makes idle-lane waste and
    state-machine hand-off overhead visible in simulated time: a lane that
    arrives early simply absorbs the latest arriver's clock.

    Barriers are reusable (generation-style): after a release the barrier is
    empty and can be waited on again, which is how the SIMD state machine
    loops on the same masked barrier.

    Parked waiters live in flat parallel arrays rather than a list of
    waiter records: the barrier path runs hundreds of thousands of times
    per launch, and the SoA layout keeps each park/release allocation-free
    (see the engine's scheduler ring for the other half). *)

type t

val create : ?name:string -> ?spin:bool -> expected:int -> cost:float -> unit -> t
(** [spin] (default [false]) marks a software spin barrier: its whole
    [cost] occupies issue slots (a spin loop retires instructions),
    where a hardware barrier's cost beyond the issue of the instruction
    itself is hideable pipeline-drain stall.
    @raise Invalid_argument if [expected <= 0]. *)

val id : t -> int
(** Process-unique identity, stable for the barrier's lifetime.  Two
    distinct barriers never share an id even when they share a [name] —
    bookkeeping (e.g. the engine's live-barrier table) must key on this,
    not on the display name. *)

val name : t -> string
val expected : t -> int
val waiting : t -> int
(** Threads currently parked. *)

val try_complete : t -> Thread.t -> bool
(** [try_complete t th] checks whether [th]'s arrival is the last one
    expected.  If so it performs the release — every participant's clock
    (including [th]'s) is aligned to the max and advanced by [cost] — and
    returns [true]; the caller must then drain the parked waiters with
    {!waiter_th}/{!waiter_k} and {!clear}.  Otherwise returns [false]
    without touching the barrier: the caller must park [th]'s
    continuation with {!park}.  Letting the last arriver skip the
    suspend/capture round-trip entirely is the engine's barrier fast
    path. *)

val waiter_th : t -> int -> Thread.t
val waiter_k : t -> int -> (unit, unit) Effect.Deep.continuation
(** Parked waiter [i] (0 <= i < {!waiting}), in arrival order.  Only
    meaningful between a successful {!try_complete} and the matching
    {!clear}. *)

val clear : t -> unit
(** Reset the waiter count after draining a completed release. *)

val live_mark : t -> bool
val set_live_mark : t -> unit
(** One-shot registration flag for the engine's live-barrier table (the
    deadlock report).  Set once, never cleared — a barrier is only ever
    driven by one engine run. *)

val park : t -> Thread.t -> (unit, unit) Effect.Deep.continuation -> unit
(** Park a thread's continuation (an arrival that did not complete the
    barrier). *)
