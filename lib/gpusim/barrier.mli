(** Reusable rendezvous barriers.

    A barrier releases all participants once [expected] threads have
    arrived, setting every participant's clock to the *maximum* arrival
    clock plus [cost].  This max-rule is what makes idle-lane waste and
    state-machine hand-off overhead visible in simulated time: a lane that
    arrives early simply absorbs the latest arriver's clock.

    Barriers are reusable (generation-style): after a release the barrier is
    empty and can be waited on again, which is how the SIMD state machine
    loops on the same masked barrier. *)

type waiter = {
  th : Thread.t;
  k : (unit, unit) Effect.Deep.continuation;
}

type t

val create : ?name:string -> expected:int -> cost:float -> unit -> t
(** @raise Invalid_argument if [expected <= 0]. *)

val id : t -> int
(** Process-unique identity, stable for the barrier's lifetime.  Two
    distinct barriers never share an id even when they share a [name] —
    bookkeeping (e.g. the engine's live-barrier table) must key on this,
    not on the display name. *)

val name : t -> string
val expected : t -> int
val waiting : t -> int
(** Threads currently parked. *)

val arrive :
  t -> Thread.t -> (unit, unit) Effect.Deep.continuation -> waiter list option
(** [arrive t th k] parks the thread ([None]) or — when it is the last
    expected participant — performs the release: clocks of all participants
    (including [th]) are aligned to the max and advanced by [cost] (counted
    as busy time, a real synchronization instruction), the barrier resets,
    and all waiters including [th]'s are returned for rescheduling. *)
