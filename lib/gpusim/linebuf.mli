(** Per-warp cached-lines model — the coalescing and L1-residency
    stand-in.

    Two effects are modelled on a line touch:

    - {b coalescing}: the first touch of a 128 B line by a warp is a full
      transaction (miss); nearby re-touches are free riders (hits).
      Lanes reading consecutive addresses therefore coalesce.
    - {b residency under concurrency}: the simulator runs each lane fiber
      to its next barrier, so lanes execute serially in host order even
      though their {e virtual} clocks overlap.  A real warp in lockstep
      keeps all lanes' working sets in cache simultaneously; to reproduce
      that pressure, a line only counts as resident if it was touched
      within the warp's residency window of {e virtual} time —
      [capacity / line-fetch-rate], where the rate is the warp's observed
      distinct-line fetches per virtual cycle.  A warp streaming many
      lines concurrently (e.g. one independent site per lane) evicts
      quickly; a SIMD group sharing one site keeps its lines resident.

    The window is infinite until the warp has fetched [capacity] distinct
    lines, so small working sets never thrash. *)

type t

type outcome =
  | Coalesced
      (** a {e new} lane joining an open burst: rides the transaction *)
  | Hit  (** resident in cache; charged a (possibly fractional) lookup *)
  | Miss  (** new transaction that also goes to DRAM *)

val create : capacity:int -> coalesce_window:float -> t
(** @raise Invalid_argument if capacity <= 0 or the window is negative. *)

val create_small : capacity:int -> coalesce_window:float -> t
(** Behaviourally identical to {!create}, but the stamp table starts at
    the minimum size and grows with the observed footprint instead of
    being pre-sized to [capacity].  For short-lived per-block buffers
    (one block's L2 view) whose traffic is far below the modeled
    capacity — pre-sizing those from a device-scale capacity allocated
    hundreds of KiB per block.
    @raise Invalid_argument if capacity <= 0 or the window is negative. *)

val fork : t -> t
(** [fork parent] is a snapshot view of [parent]: touches consult the
    parent's state as of the fork read-only and record updates privately,
    so several forks of one parent can be touched from different domains
    concurrently.  The parent must not be mutated (touched, cleared)
    while forks of it are in use.  Used by {!Memory} to give every
    simulated thread block its own launch-start view of the device L2.
    @raise Invalid_argument when applied to a fork. *)

val touch_code : t -> vtime:float -> lane:int -> int -> int
(** Allocation-free variant of {!touch}: returns an integer code —
    0 = [Coalesced] (weight 0), 1 = [Hit] weight 1, 2 = [Miss] weight 1,
    and [k >= 3] a burst re-touch [Hit] of a [(k-2)]-lane burst, weight
    [1/(k-2)].  Decode with {!code_outcome} / {!code_weight}.  The hot
    accounting path uses this directly to avoid a tuple + boxed-float
    allocation per memory access. *)

val code_outcome : int -> outcome
val code_weight : int -> float

val touch : t -> vtime:float -> lane:int -> int -> outcome * float
(** [touch t ~vtime ~lane line] classifies the access and returns the
    transaction weight to charge: 1.0 for a lane touching alone, 0.0 for
    a new lane riding an open burst, and 1/(burst size) for re-touches
    inside a burst — so a group of k lanes walking a shared line in
    lockstep pays one transaction per instruction, k times less per lane
    than k independent walkers.  [vtime] is the accessing lane's virtual
    clock. *)

val is_resident : outcome -> bool
(** [Coalesced] or [Hit]. *)

val window : t -> float
(** Current residency window in virtual cycles ([infinity] while the
    footprint is below capacity). *)

val misses : t -> int
(** Distinct-line fetches so far. *)

val clear : t -> unit
val size : t -> int
val capacity : t -> int

val set_now : t -> float -> unit
(** Store the timestamp for a subsequent {!touch_line} (unboxed when the
    call inlines). *)

val touch_line : t -> lane:int -> int -> int
(** {!touch_code} with the timestamp taken from the last {!set_now}. *)
