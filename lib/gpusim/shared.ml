type arena = {
  aid : int;  (* process-unique id: shadow-memory key for the sanitizer *)
  capacity : int;
  mutable used : int;
  mutable high_water : int;
}

let next_aid = Atomic.make 0

let arena (cfg : Config.t) =
  {
    aid = Atomic.fetch_and_add next_aid 1;
    capacity = cfg.Config.shared_mem_per_block;
    used = 0;
    high_water = 0;
  }

let arena_of_capacity capacity =
  if capacity <= 0 then invalid_arg "Shared.arena_of_capacity: capacity";
  { aid = Atomic.fetch_and_add next_aid 1; capacity; used = 0; high_water = 0 }

let id a = a.aid
let capacity a = a.capacity
let used a = a.used
let high_water a = a.high_water

let alloc a ~bytes =
  if bytes <= 0 then invalid_arg "Shared.alloc: bytes must be positive";
  if a.used + bytes > a.capacity then None
  else begin
    let offset = a.used in
    a.used <- a.used + bytes;
    if a.used > a.high_water then a.high_water <- a.used;
    Some offset
  end

let mark a = a.used

let release a m =
  if m < 0 || m > a.used then invalid_arg "Shared.release: invalid mark";
  a.used <- m

let touch (th : Thread.t) ~bytes =
  let cost = th.Thread.cfg.Config.cost in
  Counters.add_smem th.Thread.counters (float_of_int bytes);
  Thread.tick th cost.Config.smem_access
