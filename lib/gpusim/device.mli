(** Kernel launcher: ties the fiber engine, shared-memory arenas and the
    occupancy model together.

    Thread blocks only interact through global atomics, so each is
    simulated in isolation — sequentially by default, or fanned out over
    a {!Pool} of host domains — and composed into a kernel time by
    {!Occupancy.kernel_time}.

    {b Determinism contract.}  A launch produces a bit-identical [report]
    whether it ran sequentially, on a pool of any size, or through the
    homogeneous-grid fast path (for a grid whose blocks really are
    uniform): every block simulates against the launch-start L2 snapshot
    (see {!Memory} sessions), and per-block counters, costs and L2 logs
    are combined in ascending block_id order after all blocks finish. *)

type report = {
  cfg : Config.t;
  grid : int;  (** number of blocks launched *)
  block : int;  (** threads per block *)
  time_cycles : float;
  breakdown : Occupancy.breakdown;
  counters : Counters.t;  (** merged over all blocks, ascending block_id *)
  block_costs : Occupancy.block_cost array;
  sanitizer : Ompsan.report option;
      (** [Some] iff the sanitizer was enabled for this launch: findings
          merged in ascending block_id plus cross-block conflicts.  Always
          [None] when disabled — the report stays bit-identical to a build
          without the sanitizer. *)
  failures : Fault.failure list;
      (** Failed blocks in ascending block_id order: injected fatal
          faults, captured barrier stalls (injected or genuine
          divergence, when {!Fault.capture_deadlocks} is armed), and
          watchdog findings for blocks whose critical path exceeded the
          [OMPSIMD_WATCHDOG] budget.  A failed block contributes no
          counters, no L2 traffic and a zero cost entry — its failure
          record {e is} its contribution.  Always [[]] when disarmed. *)
  faults : Fault.stats;
      (** Corrected/fatal/stall/exhaust/watchdog totals over the launch
          (per representative under dedup).  {!Fault.zero_stats} when
          disarmed — the report stays bit-identical. *)
}

val launch :
  cfg:Config.t ->
  ?pool:Pool.t ->
  ?trace:Trace.t ->
  ?block_class:(int -> int) ->
  grid:int ->
  block:int ->
  init:(block_id:int -> Shared.arena -> 'a) ->
  body:('a -> Thread.t -> unit) ->
  unit ->
  report
(** [launch ~cfg ~grid ~block ~init ~body ()] runs [grid] blocks of [block]
    threads.  [init] runs once per block (e.g. building the team state and
    reserving static shared memory); [body] runs in every thread fiber.

    [pool] fans block simulation out across the pool's domains; the
    report is bit-identical to the sequential run.  When [trace] is set
    the launch always simulates every block sequentially on the calling
    domain ([Trace.t] is a single shared log).

    [block_class] is the opt-in homogeneous-grid fast path: blocks whose
    keys are equal are declared {e equivalent} (same per-block cost and
    counters), only the lowest block_id of each class is simulated, and
    its cost/counters stand in for the whole class — turning O(grid)
    simulation into O(classes).  The caller is responsible for the
    declaration being true (uniform workloads keyed by e.g. the team's
    chunk length; irregular grids should key by block_id, which disables
    deduplication).  Skipped blocks do not execute, so their global-memory
    writes do not happen and only representative L2 traffic is committed —
    use it to regenerate timing sweeps, not to produce data.

    With fault capture armed (see {!Fault.capture_deadlocks}) a block
    that deadlocks or takes a fatal injected fault does not raise — it
    lands in [report.failures].  Disarmed, genuine divergence raises
    {!Engine.Deadlock} exactly as before.
    @raise Invalid_argument on non-positive [grid]/[block] or a block larger
    than the device allows. *)

val pp_report : Format.formatter -> report -> unit
(** Appends a fault section (totals plus one line per failure) only
    when a launch actually armed faults or failed — unarmed report text
    is byte-identical to the pre-fault-layer rendering. *)
