(** Kernel launcher: ties the fiber engine, shared-memory arenas and the
    occupancy model together.

    Thread blocks only interact through global atomics, so they are
    simulated one at a time (keeping simulation cost linear in total work)
    and composed into a kernel time by {!Occupancy.kernel_time}. *)

type report = {
  cfg : Config.t;
  grid : int;  (** number of blocks launched *)
  block : int;  (** threads per block *)
  time_cycles : float;
  breakdown : Occupancy.breakdown;
  counters : Counters.t;  (** merged over all blocks *)
  block_costs : Occupancy.block_cost array;
}

val launch :
  cfg:Config.t ->
  ?trace:Trace.t ->
  grid:int ->
  block:int ->
  init:(block_id:int -> Shared.arena -> 'a) ->
  body:('a -> Thread.t -> unit) ->
  unit ->
  report
(** [launch ~cfg ~grid ~block ~init ~body ()] runs [grid] blocks of [block]
    threads.  [init] runs once per block (e.g. building the team state and
    reserving static shared memory); [body] runs in every thread fiber.
    @raise Invalid_argument on non-positive [grid]/[block] or a block larger
    than the device allows. *)

val pp_report : Format.formatter -> report -> unit
