let binop_str = function
  | Ir.Add -> "+"
  | Ir.Sub -> "-"
  | Ir.Mul -> "*"
  | Ir.Div -> "/"
  | Ir.Mod -> "%"
  | Ir.Min -> "min"
  | Ir.Max -> "max"
  | Ir.Lt -> "<"
  | Ir.Le -> "<="
  | Ir.Gt -> ">"
  | Ir.Ge -> ">="
  | Ir.Eq -> "=="
  | Ir.Ne -> "!="
  | Ir.And -> "&&"
  | Ir.Or -> "||"

let unop_str = function
  | Ir.Neg -> "-"
  | Ir.Not -> "!"
  | Ir.To_float -> "(double)"
  | Ir.To_int -> "(int)"
  | Ir.Sqrt -> "sqrt"
  | Ir.Exp -> "exp"
  | Ir.Log -> "log"
  | Ir.Abs -> "fabs"

let rec pp_expr ppf (e : Ir.expr) =
  match e with
  | Ir.Int_lit n -> Format.pp_print_int ppf n
  | Ir.Float_lit x ->
      (* keep float literals lexically float so printed kernels reparse
         with the same types *)
      if Float.is_integer x && Float.abs x < 1e15 then
        Format.fprintf ppf "%.1f" x
      else Format.fprintf ppf "%g" x
  | Ir.Var name -> Format.pp_print_string ppf name
  | Ir.Binop ((Ir.Min | Ir.Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Ir.Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Ir.Unop (((Ir.Sqrt | Ir.Exp | Ir.Log | Ir.Abs) as op), a) ->
      Format.fprintf ppf "%s(%a)" (unop_str op) pp_expr a
  | Ir.Unop (op, a) -> Format.fprintf ppf "%s%a" (unop_str op) pp_expr a
  | Ir.Load (arr, idx) | Ir.Load_int (arr, idx) ->
      Format.fprintf ppf "%s[%a]" arr pp_expr idx

let rec pp_block ppf body =
  Format.fprintf ppf "{@;<1 2>@[<v>%a@]@ }"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
    body

and pp_loop ppf ~pragma (d : Ir.loop_directive) =
  let sched =
    match d.Ir.sched with
    | Ir.Sched_static -> ""
    | Ir.Sched_chunked n -> Printf.sprintf " schedule(static,%d)" n
    | Ir.Sched_dynamic n -> Printf.sprintf " schedule(dynamic,%d)" n
  in
  Format.fprintf ppf "@[<v>#pragma omp %s%s%s@,for (int %s = %a; %s < %a; %s++) %a@]"
    pragma sched
    (if d.Ir.fn_id >= 0 then Printf.sprintf "  /* fn_id %d */" d.Ir.fn_id
     else "")
    d.Ir.loop_var pp_expr d.Ir.lo d.Ir.loop_var pp_expr d.Ir.hi d.Ir.loop_var
    pp_block d.Ir.body

and pp_stmt ppf (s : Ir.stmt) =
  match s with
  | Ir.Decl { name; ty; init } ->
      Format.fprintf ppf "%s %s = %a;"
        (match ty with Ir.Tint -> "int" | Ir.Tfloat -> "double")
        name pp_expr init
  | Ir.Assign (name, e) -> Format.fprintf ppf "%s = %a;" name pp_expr e
  | Ir.Store (arr, idx, value) | Ir.Store_int (arr, idx, value) ->
      Format.fprintf ppf "%s[%a] = %a;" arr pp_expr idx pp_expr value
  | Ir.Atomic_add (arr, idx, value) ->
      Format.fprintf ppf "#pragma omp atomic@,%s[%a] += %a;" arr pp_expr idx
        pp_expr value
  | Ir.If (cond, then_, else_) ->
      if else_ = [] then
        Format.fprintf ppf "@[<v>if (%a) %a@]" pp_expr cond pp_block then_
      else
        Format.fprintf ppf "@[<v>if (%a) %a else %a@]" pp_expr cond pp_block
          then_ pp_block else_
  | Ir.While (cond, body) ->
      Format.fprintf ppf "@[<v>while (%a) %a@]" pp_expr cond pp_block body
  | Ir.For { var; lo; hi; body } ->
      Format.fprintf ppf "@[<v>for (int %s = %a; %s < %a; %s++) %a@]" var
        pp_expr lo var pp_expr hi var pp_block body
  | Ir.Distribute_parallel_for d ->
      pp_loop ppf ~pragma:"teams distribute parallel for" d
  | Ir.Parallel_for d -> pp_loop ppf ~pragma:"parallel for" d
  | Ir.Simd d -> pp_loop ppf ~pragma:"simd" d
  | Ir.Simd_sum { acc; value; dir = d } ->
      (* printed in the concrete syntax the parser accepts: the summand
         as a trailing `acc += value;` inside the loop *)
      let with_sum =
        { d with Ir.body = d.Ir.body @ [ Ir.Assign (acc, Ir.Binop (Ir.Add, Ir.Var acc, value)) ] }
      in
      pp_loop ppf ~pragma:(Printf.sprintf "simd reduction(+:%s)" acc) with_sum
  | Ir.Guarded body ->
      Format.fprintf ppf
        "@[<v>/* SIMD main only, then broadcast */@,guarded %a@]" pp_block body
  | Ir.Sync -> Format.pp_print_string ppf "#pragma omp barrier"

let pp_kernel ppf (k : Ir.kernel) =
  let param ppf (p : Ir.param) =
    Format.fprintf ppf "%s %s"
      (match p.Ir.pty with
      | Ir.P_farray -> "double*"
      | Ir.P_iarray -> "int*"
      | Ir.P_int -> "int"
      | Ir.P_float -> "double")
      p.Ir.pname
  in
  Format.fprintf ppf "@[<v>void %s(%a)@,@[<v>%a@]@]" k.Ir.kname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       param)
    k.Ir.params pp_block k.Ir.body

let kernel_to_string k = Format.asprintf "%a" pp_kernel k
