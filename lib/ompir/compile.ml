(* The staged evaluator: checked IR is compiled once per launch into a
   tree of OCaml closures, shared read-only by every simulated lane and
   block.  Compilation resolves each variable reference to a
   (frame-depth, slot) pair over array-backed frames — replacing the
   walker's per-reference assoc-list scan — and hoists static lookups
   (array parameters, outlined-region metadata, region modes, schedules)
   out of the execution path entirely.

   The contract with {!Eval} is bit-identical observable behaviour:
   every cost charge, memory account, barrier, broadcast and reduction
   happens in the same order with the same magnitude, so a launch under
   either engine yields equal reports and equal {!Gpusim.Counters}.  The
   walker stays as the reference interpreter (OMPSIMD_EVAL=walk). *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type value = Eval.value = V_int of int | V_float of float

let err fmt = Printf.ksprintf (fun s -> raise (Eval.Error s)) fmt

type engine = Walk | Staged

let engine_of_env () =
  (* blank = unset ({!Ompsimd_util.Env}), the shared convention for
     every OMPSIMD_* knob *)
  match Ompsimd_util.Env.var "OMPSIMD_EVAL" with
  | Some "walk" -> Walk
  | Some "compile" | Some "staged" | None -> Staged
  | Some other ->
      invalid_arg
        (Printf.sprintf "OMPSIMD_EVAL=%s (expected \"compile\" or \"walk\")"
           other)

(* ------------------------------------------------------------------ *)
(* Runtime representation                                              *)

type cell = value ref

(* Innermost frame first, mirroring the walker's scope list; cells keep
   the walker's sharing semantics (a [For] loop mutates one cell that
   every iteration's body frame sees, workers of a parallel region read
   the creating thread's cells through the captured env). *)
type env = cell array list

let dummy_cell : cell = ref (V_int 0)

let rec nth_frame env d =
  match env with
  | frame :: rest -> if d = 0 then frame else nth_frame rest (d - 1)
  | [] -> err "internal: frame depth out of range"

(* ------------------------------------------------------------------ *)
(* Compile-time scope                                                  *)

(* A compile-time frame mirrors one runtime frame array: an assoc of
   name -> slot with the most recent declaration first, so shadowing
   resolves exactly like the walker's cons-front scan. *)
type senv = (string * int) list list

let resolve senv name =
  let rec go depth = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt name frame with
        | Some slot -> Some (depth, slot)
        | None -> go (depth + 1) rest)
  in
  go 0 senv

(* Number of slots a block's frame needs: its initial bindings plus its
   top-level declarations.  Nested constructs get their own frames;
   [Guarded] pushes a separate persistent frame, so it does not count. *)
let decl_count stmts =
  List.fold_left
    (fun n -> function Ir.Decl _ -> n + 1 | _ -> n)
    0 stmts

type statics = {
  farrays : (string, Memory.farray) Hashtbl.t;
  iarrays : (string, Memory.iarray) Hashtbl.t;
  guard_broadcasts : (int, (string * value) list) Hashtbl.t array;
      (* indexed by block_id, group -> values a guarded block's SIMD main
         published.  One table per block: a block simulates entirely on a
         single domain (Device.simulate_block), so per-block tables keep
         concurrent blocks from mutating a shared Hashtbl across domains. *)
}

let farray statics name =
  match Hashtbl.find_opt statics.farrays name with
  | Some a -> a
  | None -> err "unbound float array %s" name

let iarray statics name =
  match Hashtbl.find_opt statics.iarrays name with
  | Some a -> a
  | None -> err "unbound int array %s" name

let as_int name = function
  | V_int n -> n
  | V_float _ -> err "%s: expected an int" name

let as_float name = function
  | V_float x -> x
  | V_int _ -> err "%s: expected a float" name

let charge (ctx : Team.ctx) c = Gpusim.Thread.tick ctx.Team.th c

let cost (ctx : Team.ctx) = ctx.Team.team.Team.cfg.Gpusim.Config.cost

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)

type cexpr = Team.ctx -> env -> value

let compile_var senv name : cexpr =
  match resolve senv name with
  | None -> err "unbound variable %s" name
  | Some (0, s) -> fun _ env -> !((List.hd env).(s))
  | Some (1, s) -> fun _ env -> !((List.hd (List.tl env)).(s))
  | Some (d, s) -> fun _ env -> !((nth_frame env d).(s))

let cell_ref senv name : (env -> cell) option =
  match resolve senv name with
  | None -> None
  | Some (0, s) -> Some (fun env -> (List.hd env).(s))
  | Some (1, s) -> Some (fun env -> (List.hd (List.tl env)).(s))
  | Some (d, s) -> Some (fun env -> (nth_frame env d).(s))

let rec compile_expr statics senv (e : Ir.expr) : cexpr =
  match e with
  | Ir.Int_lit n ->
      let v = V_int n in
      fun _ _ -> v
  | Ir.Float_lit x ->
      let v = V_float x in
      fun _ _ -> v
  | Ir.Var name -> compile_var senv name
  | Ir.Load (arr, idx) ->
      let a = farray statics arr in
      let cidx = compile_expr statics senv idx in
      (* site ids are interned once at compile time; the running closure
         only pays a flag test when the sanitizer is off *)
      let site = Sites.load arr idx in
      fun ctx env ->
        let i = as_int arr (cidx ctx env) in
        if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site site;
        V_float (Memory.fget a ctx.Team.th i)
  | Ir.Load_int (arr, idx) ->
      let a = iarray statics arr in
      let cidx = compile_expr statics senv idx in
      let site = Sites.load arr idx in
      fun ctx env ->
        let i = as_int arr (cidx ctx env) in
        if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site site;
        V_int (Memory.iget a ctx.Team.th i)
  | Ir.Unop (op, a) -> (
      let ca = compile_expr statics senv a in
      match op with
      | Ir.Neg ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.alu;
            (match va with V_int n -> V_int (-n) | V_float x -> V_float (-.x))
      | Ir.Not ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.alu;
            V_int (if as_int "!" va = 0 then 1 else 0)
      | Ir.To_float ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.alu;
            V_float (float_of_int (as_int "(double)" va))
      | Ir.To_int ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.alu;
            V_int (int_of_float (as_float "(int)" va))
      | Ir.Sqrt ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.special;
            V_float (sqrt (as_float "sqrt" va))
      | Ir.Exp ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.special;
            V_float (exp (as_float "exp" va))
      | Ir.Log ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.special;
            V_float (log (as_float "log" va))
      | Ir.Abs ->
          fun ctx env ->
            let va = ca ctx env in
            charge ctx (cost ctx).Gpusim.Config.alu;
            (match va with
            | V_int n -> V_int (abs n)
            | V_float x -> V_float (abs_float x)))
  | Ir.Binop (op, a, b) ->
      let ca = compile_expr statics senv a in
      let cb = compile_expr statics senv b in
      fun ctx env ->
        let va = ca ctx env in
        let vb = cb ctx env in
        let c = cost ctx in
        let bool_ r = V_int (if r then 1 else 0) in
        (match (va, vb) with
        | V_int x, V_int y -> (
            charge ctx c.Gpusim.Config.alu;
            match op with
            | Ir.Add -> V_int (x + y)
            | Ir.Sub -> V_int (x - y)
            | Ir.Mul -> V_int (x * y)
            | Ir.Div -> if y = 0 then err "division by zero" else V_int (x / y)
            | Ir.Mod -> if y = 0 then err "mod by zero" else V_int (x mod y)
            | Ir.Min -> V_int (min x y)
            | Ir.Max -> V_int (max x y)
            | Ir.Lt -> bool_ (x < y)
            | Ir.Le -> bool_ (x <= y)
            | Ir.Gt -> bool_ (x > y)
            | Ir.Ge -> bool_ (x >= y)
            | Ir.Eq -> bool_ (x = y)
            | Ir.Ne -> bool_ (x <> y)
            | Ir.And -> bool_ (x <> 0 && y <> 0)
            | Ir.Or -> bool_ (x <> 0 || y <> 0))
        | V_float x, V_float y -> (
            charge ctx c.Gpusim.Config.flop;
            match op with
            | Ir.Add -> V_float (x +. y)
            | Ir.Sub -> V_float (x -. y)
            | Ir.Mul -> V_float (x *. y)
            | Ir.Div ->
                charge ctx (c.Gpusim.Config.special -. c.Gpusim.Config.flop);
                V_float (x /. y)
            | Ir.Min -> V_float (Float.min x y)
            | Ir.Max -> V_float (Float.max x y)
            | Ir.Lt -> bool_ (x < y)
            | Ir.Le -> bool_ (x <= y)
            | Ir.Gt -> bool_ (x > y)
            | Ir.Ge -> bool_ (x >= y)
            | Ir.Eq -> bool_ (x = y)
            | Ir.Ne -> bool_ (x <> y)
            | Ir.And | Ir.Or -> err "logic op on floats"
            | Ir.Mod -> err "mod on floats")
        | _ -> err "mixed operand types")

(* ------------------------------------------------------------------ *)
(* Payload construction (resolved at compile time)                     *)

let compile_captures statics senv captures =
  let slot name =
    match Hashtbl.find_opt statics.farrays name with
    | Some a ->
        let p = Payload.Farr a in
        fun _env -> p
    | None -> (
        match Hashtbl.find_opt statics.iarrays name with
        | Some a ->
            let p = Payload.Iarr a in
            fun _env -> p
        | None -> (
            match cell_ref senv name with
            | Some get ->
                fun env -> (
                  match !(get env) with
                  | V_int n -> Payload.Int (ref n)
                  | V_float x -> Payload.Float (ref x))
            | None -> err "capture %s is unbound" name))
  in
  let slots = List.map slot captures in
  fun env -> Payload.of_list (List.map (fun f -> f env) slots)

let find_outlined outlined fn_id =
  List.find (fun (o : Outline.outlined) -> o.Outline.fn_id = fn_id) outlined

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)

(* A compiled statement returns the (possibly extended) env: [Guarded]
   pushes a persistent frame visible to the statements after it, exactly
   like the walker's scope threading. *)
type cstmt = Team.ctx -> env -> env

type options = Eval.options

let schedule_of (d : Ir.loop_directive) =
  match d.Ir.sched with
  | Ir.Sched_static -> Workshare.Static
  | Ir.Sched_chunked n -> Workshare.Chunked n
  | Ir.Sched_dynamic n -> Workshare.Dynamic n

let region_mode (options : options) (d : Ir.loop_directive) =
  match options.Eval.parallel_mode with
  | `Force m -> m
  | `Auto -> Spmdize.directive_mode d

(* Top-level [Decl]s in the statements after a [Guarded] block land in
   the guard's persistent frame (the walker threads the extended scope
   through), so the guard frame must reserve slots for them.  The count
   stops at the next [Guarded]: its frame hosts the decls after it. *)
let decls_until_guard stmts =
  let rec go n = function
    | [] | Ir.Guarded _ :: _ -> n
    | Ir.Decl _ :: rest -> go (n + 1) rest
    | _ :: rest -> go n rest
  in
  go 0 stmts

(* Compile [stmts] to run inside a fresh frame seeded with [init] (given
   in the walker's frame order: first element is scanned first on
   lookup).  Returns the frame size and a closure that executes the
   block given the pre-filled frame array pushed by the caller. *)
let rec compile_block statics outlined options senv ~init stmts =
  let ninit = List.length init in
  let nslots = ninit + decl_count stmts in
  let frame0 = List.mapi (fun i n -> (n, i)) init in
  let rec go senv acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let guard_extra =
          match s with Ir.Guarded _ -> decls_until_guard rest | _ -> 0
        in
        let senv', cs =
          compile_stmt statics outlined options ~guard_extra senv s
        in
        go senv' (cs :: acc) rest
  in
  let compiled = Array.of_list (go (frame0 :: senv) [] stmts) in
  let run ctx env frame =
    let env = frame :: env in
    let e = ref env in
    Array.iter (fun cs -> e := cs ctx !e) compiled;
    ()
  in
  (nslots, run)

(* A body executed in an empty fresh frame (If branches, While bodies). *)
and compile_anon_block statics outlined options senv stmts =
  let nslots, run = compile_block statics outlined options senv ~init:[] stmts in
  if nslots = 0 then fun ctx env -> run ctx env [||]
  else fun ctx env -> run ctx env (Array.make nslots dummy_cell)

and compile_parallel statics outlined options senv (d : Ir.loop_directive)
    ~workshare : cstmt =
  let o = find_outlined outlined d.Ir.fn_id in
  let mk_payload = compile_captures statics senv o.Outline.captures in
  let clo = compile_expr statics senv d.Ir.lo in
  let chi = compile_expr statics senv d.Ir.hi in
  let mode = region_mode options d in
  let schedule = schedule_of d in
  let fn_id = d.Ir.fn_id in
  let simd_len = options.Eval.simd_len in
  let nslots, run_body =
    compile_block statics outlined options senv ~init:[ d.Ir.loop_var ] d.Ir.body
  in
  fun ctx env ->
    let payload = mk_payload env in
    let lo = as_int d.Ir.loop_var (clo ctx env) in
    let hi = as_int d.Ir.loop_var (chi ctx env) in
    let trip = max 0 (hi - lo) in
    Parallel.parallel ctx ~mode ~simd_len ~payload ~fn_id (fun ctx _ ->
        workshare ctx ~schedule ~trip (fun iv ->
            let frame = Array.make nslots dummy_cell in
            frame.(0) <- ref (V_int (lo + iv));
            run_body ctx env frame));
    env

and compile_stmt statics outlined options ~guard_extra senv (s : Ir.stmt) :
    senv * cstmt =
  match s with
  | Ir.Decl { name; init; _ } ->
      let ce = compile_expr statics senv init in
      let frame, rest =
        match senv with f :: r -> (f, r) | [] -> ([], [])
      in
      let slot = List.length frame in
      let senv' = ((name, slot) :: frame) :: rest in
      ( senv',
        fun ctx env ->
          let v = ce ctx env in
          charge ctx (cost ctx).Gpusim.Config.alu;
          (List.hd env).(slot) <- ref v;
          env )
  | Ir.Assign (name, e) ->
      let ce = compile_expr statics senv e in
      let get =
        match cell_ref senv name with
        | Some get -> get
        | None -> err "assignment to unbound %s" name
      in
      ( senv,
        fun ctx env ->
          let v = ce ctx env in
          charge ctx (cost ctx).Gpusim.Config.alu;
          get env := v;
          env )
  | Ir.Store (arr, idx, value) ->
      let a = farray statics arr in
      let cidx = compile_expr statics senv idx in
      let cval = compile_expr statics senv value in
      let site = Sites.store arr idx in
      ( senv,
        fun ctx env ->
          let i = as_int arr (cidx ctx env) in
          let v = as_float arr (cval ctx env) in
          if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site site;
          Memory.fset a ctx.Team.th i v;
          env )
  | Ir.Store_int (arr, idx, value) ->
      let a = iarray statics arr in
      let cidx = compile_expr statics senv idx in
      let cval = compile_expr statics senv value in
      let site = Sites.store arr idx in
      ( senv,
        fun ctx env ->
          let i = as_int arr (cidx ctx env) in
          let v = as_int arr (cval ctx env) in
          if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site site;
          Memory.iset a ctx.Team.th i v;
          env )
  | Ir.Atomic_add (arr, idx, value) ->
      let a = farray statics arr in
      let cidx = compile_expr statics senv idx in
      let cval = compile_expr statics senv value in
      let site = Sites.atomic arr idx in
      ( senv,
        fun ctx env ->
          let i = as_int arr (cidx ctx env) in
          let v = as_float arr (cval ctx env) in
          if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site site;
          let (_ : float) = Memory.atomic_fadd a ctx.Team.th i v in
          env )
  | Ir.If (cond, then_, else_) ->
      let ccond = compile_expr statics senv cond in
      let cthen = compile_anon_block statics outlined options senv then_ in
      let celse = compile_anon_block statics outlined options senv else_ in
      ( senv,
        fun ctx env ->
          charge ctx (cost ctx).Gpusim.Config.branch;
          if as_int "if" (ccond ctx env) <> 0 then cthen ctx env
          else celse ctx env;
          env )
  | Ir.While (cond, body) ->
      let ccond = compile_expr statics senv cond in
      let cbody = compile_anon_block statics outlined options senv body in
      ( senv,
        fun ctx env ->
          let rec loop () =
            charge ctx (cost ctx).Gpusim.Config.branch;
            if as_int "while" (ccond ctx env) <> 0 then begin
              cbody ctx env;
              loop ()
            end
          in
          loop ();
          env )
  | Ir.For { var; lo; hi; body } ->
      let clo = compile_expr statics senv lo in
      let chi = compile_expr statics senv hi in
      let nslots, run_body =
        compile_block statics outlined options senv ~init:[ var ] body
      in
      ( senv,
        fun ctx env ->
          let lo = as_int var (clo ctx env) in
          let hi = as_int var (chi ctx env) in
          let cell = ref (V_int lo) in
          let c = cost ctx in
          let step = c.Gpusim.Config.alu +. c.Gpusim.Config.branch in
          for iv = lo to hi - 1 do
            charge ctx step;
            cell := V_int iv;
            let frame = Array.make nslots dummy_cell in
            frame.(0) <- cell;
            run_body ctx env frame
          done;
          env )
  | Ir.Distribute_parallel_for d ->
      ( senv,
        compile_parallel statics outlined options senv d
          ~workshare:(fun ctx ~schedule ~trip f ->
            Workshare.distribute_parallel_for ctx ~schedule ~trip f) )
  | Ir.Parallel_for d ->
      ( senv,
        compile_parallel statics outlined options senv d
          ~workshare:(fun ctx ~schedule ~trip f ->
            Workshare.omp_for ctx ~schedule ~trip f) )
  | Ir.Simd d ->
      let o = find_outlined outlined d.Ir.fn_id in
      let mk_payload = compile_captures statics senv o.Outline.captures in
      let clo = compile_expr statics senv d.Ir.lo in
      let chi = compile_expr statics senv d.Ir.hi in
      let fn_id = d.Ir.fn_id in
      let nslots, run_body =
        compile_block statics outlined options senv ~init:[ d.Ir.loop_var ]
          d.Ir.body
      in
      ( senv,
        fun ctx env ->
          let payload = mk_payload env in
          let lo = as_int d.Ir.loop_var (clo ctx env) in
          let hi = as_int d.Ir.loop_var (chi ctx env) in
          let trip = max 0 (hi - lo) in
          Simd.simd ctx ~payload ~fn_id ~trip (fun ctx iv _ ->
              let frame = Array.make nslots dummy_cell in
              frame.(0) <- ref (V_int (lo + iv));
              run_body ctx env frame);
          env )
  | Ir.Simd_sum { acc; value; dir = d } ->
      let o = find_outlined outlined d.Ir.fn_id in
      let mk_payload = compile_captures statics senv o.Outline.captures in
      let clo = compile_expr statics senv d.Ir.lo in
      let chi = compile_expr statics senv d.Ir.hi in
      let fn_id = d.Ir.fn_id in
      (* as in the walker: a synthesized trailing assignment into a
         per-iteration cell lets the summand see the body's decls *)
      let red = "__red" in
      let stmts_with_sum = d.Ir.body @ [ Ir.Assign (red, value) ] in
      let nslots, run_body =
        compile_block statics outlined options senv
          ~init:[ d.Ir.loop_var; red ] stmts_with_sum
      in
      let acc_get =
        match cell_ref senv acc with
        | Some get -> get
        | None -> err "reduction accumulator %s is unbound" acc
      in
      ( senv,
        fun ctx env ->
          let payload = mk_payload env in
          let lo = as_int d.Ir.loop_var (clo ctx env) in
          let hi = as_int d.Ir.loop_var (chi ctx env) in
          let trip = max 0 (hi - lo) in
          let total =
            Simd.simd_sum ctx ~payload ~fn_id ~trip (fun ctx iv _ ->
                let red_cell = ref (V_float 0.0) in
                let frame = Array.make nslots dummy_cell in
                frame.(0) <- ref (V_int (lo + iv));
                frame.(1) <- red_cell;
                run_body ctx env frame;
                as_float red !red_cell)
          in
          acc_get env := V_float total;
          env )
  | Ir.Guarded body ->
      (* The guarded decls live in a persistent frame pushed for the
         statements after the block — in both dynamic paths, so the
         compiled layout does not depend on the group geometry.  (The
         walker extends the current frame on the single-executor path;
         both layouts resolve identically.) *)
      let nslots, run_body =
        compile_block statics outlined options senv ~init:[] body
      in
      (* room for the enclosing block's later decls (see above) *)
      let nslots = nslots + guard_extra in
      let gsenv =
        (* slots of the guarded frame, computed like compile_block did *)
        let _, compiled_names =
          List.fold_left
            (fun (i, acc) s ->
              match s with
              | Ir.Decl { name; _ } -> (i + 1, (name, i) :: acc)
              | _ -> (i, acc))
            (0, []) body
        in
        compiled_names
      in
      (* broadcast entries in walker order: most recent decl first *)
      let entry_slots = gsenv in
      let senv' = gsenv :: senv in
      ( senv',
        fun ctx env ->
          let team = ctx.Team.team in
          let g = Team.geometry team in
          let gs = Omprt.Simd_group.get_simd_group_size g in
          let generic_task =
            match team.Team.active_task with
            | Some task -> task.Team.task_mode = Mode.Generic
            | None -> false
          in
          let frame = Array.make nslots dummy_cell in
          if gs = 1 || generic_task then begin
            (* a single executor per group already: the guard is free *)
            run_body ctx env frame;
            frame :: env
          end
          else begin
            let tid = ctx.Team.th.Gpusim.Thread.tid in
            let group = Omprt.Simd_group.get_simd_group g ~tid in
            let bcasts = statics.guard_broadcasts.(team.Team.block_id) in
            let smem_cost entries =
              List.iter
                (fun _ -> Gpusim.Shared.touch ctx.Team.th ~bytes:8)
                entries
            in
            if Omprt.Simd_group.is_simd_group_leader g ~tid then begin
              Gpusim.Thread.with_simt_factor ctx.Team.th (float_of_int gs)
                (fun () -> run_body ctx env frame);
              let entries =
                List.map (fun (n, slot) -> (n, !(frame.(slot)))) entry_slots
              in
              smem_cost entries;
              Hashtbl.replace bcasts group entries;
              Gpusim.Counters.bump ctx.Team.th.Gpusim.Thread.counters
                "guard.blocks" 1.0;
              Team.sync_warp ctx;
              (* the closing barrier keeps this block's broadcast slot
                 alive until every lane has read it *)
              Team.sync_warp ctx;
              frame :: env
            end
            else begin
              Team.sync_warp ctx;
              let entries =
                try Hashtbl.find bcasts group with Not_found -> []
              in
              smem_cost entries;
              Team.sync_warp ctx;
              List.iter
                (fun (n, v) ->
                  match List.assoc_opt n entry_slots with
                  | Some slot -> frame.(slot) <- ref v
                  | None -> ())
                entries;
              frame :: env
            end
          end )
  | Ir.Sync ->
      ( senv,
        fun ctx env ->
          Team.region_barrier_wait ctx;
          env )

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)

let run ~cfg ?pool ?trace ~(options : options) ~bindings (p : Outline.program)
    =
  let statics =
    {
      farrays = Hashtbl.create 8;
      iarrays = Hashtbl.create 8;
      guard_broadcasts =
        Array.init (max 0 options.Eval.num_teams) (fun _ -> Hashtbl.create 8);
    }
  in
  let root = ref [] in
  List.iter
    (fun (prm : Ir.param) ->
      match (prm.Ir.pty, List.assoc_opt prm.Ir.pname bindings) with
      | _, None -> err "parameter %s is not bound" prm.Ir.pname
      | Ir.P_farray, Some (Eval.B_farr a) ->
          Hashtbl.replace statics.farrays prm.Ir.pname a
      | Ir.P_iarray, Some (Eval.B_iarr a) ->
          Hashtbl.replace statics.iarrays prm.Ir.pname a
      | Ir.P_int, Some (Eval.B_int n) ->
          root := (prm.Ir.pname, V_int n) :: !root
      | Ir.P_float, Some (Eval.B_float x) ->
          root := (prm.Ir.pname, V_float x) :: !root
      | _, Some _ -> err "parameter %s bound with the wrong kind" prm.Ir.pname)
    p.Outline.kernel.Ir.params;
  let root = !root in
  (* root frame layout: scalar params in binding order; the body block is
     compiled against it once, shared by every thread and block *)
  let root_names = List.map fst root in
  let root_values = Array.of_list (List.map snd root) in
  let nroot = Array.length root_values in
  let senv0 : senv = [] in
  let nslots, run_block_body =
    compile_block statics p.Outline.outlined options senv0 ~init:root_names
      p.Outline.kernel.Ir.body
  in
  let params =
    {
      Team.num_teams = options.Eval.num_teams;
      num_threads = options.Eval.num_threads;
      teams_mode = options.Eval.teams_mode;
      sharing_bytes = options.Eval.sharing_bytes;
    }
  in
  Target.launch ~cfg ?pool ?trace ~params
    ~dispatch_table_size:(Outline.dispatch_table_size p) (fun ctx ->
      (* every executing thread owns a private copy of the region scope *)
      let frame = Array.make nslots dummy_cell in
      for i = 0 to nroot - 1 do
        frame.(i) <- ref root_values.(i)
      done;
      run_block_body ctx [] frame)
