(** Pretty-printer: renders a kernel as pragma-annotated pseudo-C, the
    way the corresponding OpenMP source would read.  Useful in examples
    and for golden tests of the passes. *)

val pp_expr : Format.formatter -> Ir.expr -> unit
val pp_stmt : Format.formatter -> Ir.stmt -> unit
val pp_kernel : Format.formatter -> Ir.kernel -> unit
val kernel_to_string : Ir.kernel -> string
