(** Static checks over a kernel — the front-end diagnostics a compiler
    would emit before attempting codegen.

    Verified properties: every referenced name is a parameter or an
    in-scope declaration; no duplicate declarations in one scope; array
    operations target array parameters of the right element kind;
    expression types are consistent ([Tint] indices, boolean-as-int
    conditions); loop variables are not assigned; worksharing directives
    are properly positioned ([distribute parallel for] / [parallel for]
    at region level, [simd] innermost — no directive nests inside a
    [simd] body); and [simd] bodies do not assign captured scalars (they
    may only write through arrays or atomics), which is what makes
    variable sharing one-directional (§4.3, §5.3.1). *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

val kernel : Ir.kernel -> (unit, error list) result
(** All diagnostics, not just the first. *)

val expr_type :
  params:(string * Ir.param_ty) list ->
  locals:(string * Ir.ty) list ->
  Ir.expr ->
  (Ir.ty, string) result
(** Type of an expression in the given environment — exposed for tests. *)
