module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

exception Error of string

type binding =
  | B_farr of Memory.farray
  | B_iarr of Memory.iarray
  | B_int of int
  | B_float of float

type options = {
  num_teams : int;
  num_threads : int;
  teams_mode : Mode.t;
  parallel_mode : [ `Auto | `Force of Mode.t ];
  simd_len : int;
  sharing_bytes : int;
}

let default_options =
  {
    num_teams = 2;
    num_threads = 64;
    teams_mode = Mode.Spmd;
    parallel_mode = `Auto;
    simd_len = 8;
    sharing_bytes = Omprt.Sharing.default_bytes;
  }

type value = V_int of int | V_float of float

type cell = value ref

(* Thread-private lexical scope: innermost frame first.  Array parameters
   live in a static table; scalar parameters are seeded into the root
   frame. *)
type scope = { frames : (string * cell) list list }

type statics = {
  farrays : (string, Memory.farray) Hashtbl.t;
  iarrays : (string, Memory.iarray) Hashtbl.t;
  guard_broadcasts : (int, (string * value) list) Hashtbl.t array;
      (* indexed by block_id, group -> values a guarded block's SIMD main
         published.  One table per block: a block simulates entirely on a
         single domain (Device.simulate_block), so per-block tables keep
         concurrent blocks from mutating a shared Hashtbl across domains. *)
}

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let lookup scope name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt name frame with
        | Some cell -> Some cell
        | None -> go rest)
  in
  go scope.frames

let as_int name = function
  | V_int n -> n
  | V_float _ -> err "%s: expected an int" name

let as_float name = function
  | V_float x -> x
  | V_int _ -> err "%s: expected a float" name

let farray statics name =
  match Hashtbl.find_opt statics.farrays name with
  | Some a -> a
  | None -> err "unbound float array %s" name

let iarray statics name =
  match Hashtbl.find_opt statics.iarrays name with
  | Some a -> a
  | None -> err "unbound int array %s" name

let charge (ctx : Team.ctx) c = Gpusim.Thread.tick ctx.Team.th c

let cost (ctx : Team.ctx) =
  ctx.Team.team.Team.cfg.Gpusim.Config.cost

let rec eval_expr ctx statics scope (e : Ir.expr) =
  match e with
  | Ir.Int_lit n -> V_int n
  | Ir.Float_lit x -> V_float x
  | Ir.Var name -> (
      match lookup scope name with
      | Some cell -> !cell
      | None -> err "unbound variable %s" name)
  | Ir.Load (arr, idx) ->
      let i = as_int arr (eval_expr ctx statics scope idx) in
      if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site (Sites.load arr idx);
      V_float (Memory.fget (farray statics arr) ctx.Team.th i)
  | Ir.Load_int (arr, idx) ->
      let i = as_int arr (eval_expr ctx statics scope idx) in
      if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_site (Sites.load arr idx);
      V_int (Memory.iget (iarray statics arr) ctx.Team.th i)
  | Ir.Unop (op, a) -> (
      let va = eval_expr ctx statics scope a in
      let c = cost ctx in
      match op with
      | Ir.Neg ->
          charge ctx c.Gpusim.Config.alu;
          (match va with
          | V_int n -> V_int (-n)
          | V_float x -> V_float (-.x))
      | Ir.Not ->
          charge ctx c.Gpusim.Config.alu;
          V_int (if as_int "!" va = 0 then 1 else 0)
      | Ir.To_float ->
          charge ctx c.Gpusim.Config.alu;
          V_float (float_of_int (as_int "(double)" va))
      | Ir.To_int ->
          charge ctx c.Gpusim.Config.alu;
          V_int (int_of_float (as_float "(int)" va))
      | Ir.Sqrt ->
          charge ctx c.Gpusim.Config.special;
          V_float (sqrt (as_float "sqrt" va))
      | Ir.Exp ->
          charge ctx c.Gpusim.Config.special;
          V_float (exp (as_float "exp" va))
      | Ir.Log ->
          charge ctx c.Gpusim.Config.special;
          V_float (log (as_float "log" va))
      | Ir.Abs -> (
          charge ctx c.Gpusim.Config.alu;
          match va with
          | V_int n -> V_int (abs n)
          | V_float x -> V_float (abs_float x)))
  | Ir.Binop (op, a, b) -> (
      let va = eval_expr ctx statics scope a in
      let vb = eval_expr ctx statics scope b in
      let c = cost ctx in
      let bool_ r = V_int (if r then 1 else 0) in
      match (va, vb) with
      | V_int x, V_int y -> (
          charge ctx c.Gpusim.Config.alu;
          match op with
          | Ir.Add -> V_int (x + y)
          | Ir.Sub -> V_int (x - y)
          | Ir.Mul -> V_int (x * y)
          | Ir.Div -> if y = 0 then err "division by zero" else V_int (x / y)
          | Ir.Mod -> if y = 0 then err "mod by zero" else V_int (x mod y)
          | Ir.Min -> V_int (min x y)
          | Ir.Max -> V_int (max x y)
          | Ir.Lt -> bool_ (x < y)
          | Ir.Le -> bool_ (x <= y)
          | Ir.Gt -> bool_ (x > y)
          | Ir.Ge -> bool_ (x >= y)
          | Ir.Eq -> bool_ (x = y)
          | Ir.Ne -> bool_ (x <> y)
          | Ir.And -> bool_ (x <> 0 && y <> 0)
          | Ir.Or -> bool_ (x <> 0 || y <> 0))
      | V_float x, V_float y -> (
          charge ctx c.Gpusim.Config.flop;
          match op with
          | Ir.Add -> V_float (x +. y)
          | Ir.Sub -> V_float (x -. y)
          | Ir.Mul -> V_float (x *. y)
          | Ir.Div ->
              charge ctx (c.Gpusim.Config.special -. c.Gpusim.Config.flop);
              V_float (x /. y)
          | Ir.Min -> V_float (Float.min x y)
          | Ir.Max -> V_float (Float.max x y)
          | Ir.Lt -> bool_ (x < y)
          | Ir.Le -> bool_ (x <= y)
          | Ir.Gt -> bool_ (x > y)
          | Ir.Ge -> bool_ (x >= y)
          | Ir.Eq -> bool_ (x = y)
          | Ir.Ne -> bool_ (x <> y)
          | Ir.And | Ir.Or -> err "logic op on floats"
          | Ir.Mod -> err "mod on floats")
      | _ -> err "mixed operand types")

(* Build the runtime payload for an outlined region: array captures ride
   as array pointers, scalar captures as the creating thread's cells —
   which is precisely the sharing semantics of §4.3 (workers read the
   main thread's storage). *)
let payload_of_captures statics scope captures =
  let slot name =
    match Hashtbl.find_opt statics.farrays name with
    | Some a -> Payload.Farr a
    | None -> (
        match Hashtbl.find_opt statics.iarrays name with
        | Some a -> Payload.Iarr a
        | None -> (
            match lookup scope name with
            | Some cell -> (
                match !cell with
                | V_int n -> Payload.Int (ref n)
                | V_float x -> Payload.Float (ref x))
            | None -> err "capture %s is unbound" name))
  in
  Payload.of_list (List.map slot captures)

let find_outlined outlined fn_id =
  List.find
    (fun (o : Outline.outlined) -> o.Outline.fn_id = fn_id)
    outlined

let rec eval_stmts ctx statics outlined options scope body =
  ignore
    (List.fold_left
       (fun scope s -> eval_stmt ctx statics outlined options scope s)
       scope body)

and eval_body_in_frame ctx statics outlined options scope ~frame body =
  eval_stmts ctx statics outlined options
    { frames = frame :: scope.frames }
    body

and loop_bounds ctx statics scope (d : Ir.loop_directive) =
  let lo = as_int d.Ir.loop_var (eval_expr ctx statics scope d.Ir.lo) in
  let hi = as_int d.Ir.loop_var (eval_expr ctx statics scope d.Ir.hi) in
  (lo, max 0 (hi - lo))

and region_mode options (d : Ir.loop_directive) =
  match options.parallel_mode with
  | `Force m -> m
  | `Auto -> Spmdize.directive_mode d

and schedule_of (d : Ir.loop_directive) =
  match d.Ir.sched with
  | Ir.Sched_static -> Workshare.Static
  | Ir.Sched_chunked n -> Workshare.Chunked n
  | Ir.Sched_dynamic n -> Workshare.Dynamic n

and run_parallel ctx statics outlined options scope d ~workshare =
  let o = find_outlined outlined d.Ir.fn_id in
  let payload = payload_of_captures statics scope o.Outline.captures in
  let lo, trip = loop_bounds ctx statics scope d in
  let mode = region_mode options d in
  Parallel.parallel ctx ~mode ~simd_len:options.simd_len ~payload
    ~fn_id:d.Ir.fn_id (fun ctx _ ->
      workshare ctx ~schedule:(schedule_of d) ~trip (fun iv ->
          let frame = [ (d.Ir.loop_var, ref (V_int (lo + iv))) ] in
          eval_body_in_frame ctx statics outlined options scope ~frame
            d.Ir.body))

and eval_stmt ctx statics outlined options scope (s : Ir.stmt) =
  let c = cost ctx in
  match s with
  | Ir.Decl { name; init; _ } ->
      let v = eval_expr ctx statics scope init in
      charge ctx c.Gpusim.Config.alu;
      (match scope.frames with
      | frame :: rest -> { frames = ((name, ref v) :: frame) :: rest }
      | [] -> { frames = [ [ (name, ref v) ] ] })
  | Ir.Assign (name, e) ->
      let v = eval_expr ctx statics scope e in
      charge ctx c.Gpusim.Config.alu;
      (match lookup scope name with
      | Some cell -> cell := v
      | None -> err "assignment to unbound %s" name);
      scope
  | Ir.Store (arr, idx, value) ->
      let i = as_int arr (eval_expr ctx statics scope idx) in
      let v = as_float arr (eval_expr ctx statics scope value) in
      if !Gpusim.Ompsan.enabled then
        Gpusim.Ompsan.set_site (Sites.store arr idx);
      Memory.fset (farray statics arr) ctx.Team.th i v;
      scope
  | Ir.Store_int (arr, idx, value) ->
      let i = as_int arr (eval_expr ctx statics scope idx) in
      let v = as_int arr (eval_expr ctx statics scope value) in
      if !Gpusim.Ompsan.enabled then
        Gpusim.Ompsan.set_site (Sites.store arr idx);
      Memory.iset (iarray statics arr) ctx.Team.th i v;
      scope
  | Ir.Atomic_add (arr, idx, value) ->
      let i = as_int arr (eval_expr ctx statics scope idx) in
      let v = as_float arr (eval_expr ctx statics scope value) in
      if !Gpusim.Ompsan.enabled then
        Gpusim.Ompsan.set_site (Sites.atomic arr idx);
      let (_ : float) = Memory.atomic_fadd (farray statics arr) ctx.Team.th i v in
      scope
  | Ir.If (cond, then_, else_) ->
      charge ctx c.Gpusim.Config.branch;
      let taken =
        if as_int "if" (eval_expr ctx statics scope cond) <> 0 then then_
        else else_
      in
      eval_body_in_frame ctx statics outlined options scope ~frame:[] taken;
      scope
  | Ir.While (cond, body) ->
      let rec loop () =
        charge ctx c.Gpusim.Config.branch;
        if as_int "while" (eval_expr ctx statics scope cond) <> 0 then begin
          eval_body_in_frame ctx statics outlined options scope ~frame:[] body;
          loop ()
        end
      in
      loop ();
      scope
  | Ir.For { var; lo; hi; body } ->
      let lo = as_int var (eval_expr ctx statics scope lo) in
      let hi = as_int var (eval_expr ctx statics scope hi) in
      let cell = ref (V_int lo) in
      for iv = lo to hi - 1 do
        charge ctx (c.Gpusim.Config.alu +. c.Gpusim.Config.branch);
        cell := V_int iv;
        eval_body_in_frame ctx statics outlined options scope
          ~frame:[ (var, cell) ] body
      done;
      scope
  | Ir.Distribute_parallel_for d ->
      run_parallel ctx statics outlined options scope d
        ~workshare:(fun ctx ~schedule ~trip f ->
          Workshare.distribute_parallel_for ctx ~schedule ~trip f);
      scope
  | Ir.Parallel_for d ->
      run_parallel ctx statics outlined options scope d
        ~workshare:(fun ctx ~schedule ~trip f ->
          Workshare.omp_for ctx ~schedule ~trip f);
      scope
  | Ir.Simd d ->
      let o = find_outlined outlined d.Ir.fn_id in
      let payload = payload_of_captures statics scope o.Outline.captures in
      let lo, trip = loop_bounds ctx statics scope d in
      Simd.simd ctx ~payload ~fn_id:d.Ir.fn_id ~trip (fun ctx iv _ ->
          let frame = [ (d.Ir.loop_var, ref (V_int (lo + iv))) ] in
          eval_body_in_frame ctx statics outlined options scope ~frame
            d.Ir.body);
      scope
  | Ir.Simd_sum { acc; value; dir = d } ->
      let o = find_outlined outlined d.Ir.fn_id in
      let payload = payload_of_captures statics scope o.Outline.captures in
      let lo, trip = loop_bounds ctx statics scope d in
      (* The summand is evaluated after the body, in the body's scope: a
         synthesized trailing assignment into a per-iteration cell keeps
         the body's declarations visible to it. *)
      let red = "__red" in
      let stmts_with_sum = d.Ir.body @ [ Ir.Assign (red, value) ] in
      let total =
        Simd.simd_sum ctx ~payload ~fn_id:d.Ir.fn_id ~trip (fun ctx iv _ ->
            let red_cell = ref (V_float 0.0) in
            let frame =
              [ (d.Ir.loop_var, ref (V_int (lo + iv))); (red, red_cell) ]
            in
            eval_body_in_frame ctx statics outlined options scope ~frame
              stmts_with_sum;
            as_float red !red_cell)
      in
      (match lookup scope acc with
      | Some cell -> cell := V_float total
      | None -> err "reduction accumulator %s is unbound" acc);
      scope
  | Ir.Guarded body ->
      let team = ctx.Team.team in
      let g = Team.geometry team in
      let gs = Omprt.Simd_group.get_simd_group_size g in
      let fold_scope from_scope =
        List.fold_left
          (fun sc st -> eval_stmt ctx statics outlined options sc st)
          from_scope body
      in
      let generic_task =
        match team.Team.active_task with
        | Some task -> task.Team.task_mode = Mode.Generic
        | None -> false
      in
      if gs = 1 || generic_task then
        (* a single executor per group already: the guard is free *)
        fold_scope scope
      else begin
        let tid = ctx.Team.th.Gpusim.Thread.tid in
        let group = Omprt.Simd_group.get_simd_group g ~tid in
        let bcasts = statics.guard_broadcasts.(team.Team.block_id) in
        let smem_cost entries =
          List.iter (fun _ -> Gpusim.Shared.touch ctx.Team.th ~bytes:8) entries
        in
        if Omprt.Simd_group.is_simd_group_leader g ~tid then begin
          (* the SIMD main executes the block alone: full-group issue
             width per instruction *)
          let scope' =
            Gpusim.Thread.with_simt_factor ctx.Team.th (float_of_int gs)
              (fun () -> fold_scope { frames = [] :: scope.frames })
          in
          let entries =
            match scope'.frames with
            | frame :: _ -> List.map (fun (n, cell) -> (n, !cell)) frame
            | [] -> []
          in
          smem_cost entries;
          Hashtbl.replace bcasts group entries;
          Gpusim.Counters.bump ctx.Team.th.Gpusim.Thread.counters
            "guard.blocks" 1.0;
          Team.sync_warp ctx;
          (* the closing barrier keeps this block's broadcast slot alive
             until every lane has read it *)
          Team.sync_warp ctx;
          scope'
        end
        else begin
          Team.sync_warp ctx;
          let entries =
            try Hashtbl.find bcasts group with Not_found -> []
          in
          smem_cost entries;
          Team.sync_warp ctx;
          { frames = List.map (fun (n, v) -> (n, ref v)) entries :: scope.frames }
        end
      end
  | Ir.Sync ->
      Team.region_barrier_wait ctx;
      scope

let run ~cfg ?pool ?trace ~options ~bindings (p : Outline.program) =
  let statics =
    {
      farrays = Hashtbl.create 8;
      iarrays = Hashtbl.create 8;
      guard_broadcasts =
        Array.init (max 0 options.num_teams) (fun _ -> Hashtbl.create 8);
    }
  in
  let root_frame = ref [] in
  List.iter
    (fun (prm : Ir.param) ->
      match (prm.Ir.pty, List.assoc_opt prm.Ir.pname bindings) with
      | _, None -> err "parameter %s is not bound" prm.Ir.pname
      | Ir.P_farray, Some (B_farr a) ->
          Hashtbl.replace statics.farrays prm.Ir.pname a
      | Ir.P_iarray, Some (B_iarr a) ->
          Hashtbl.replace statics.iarrays prm.Ir.pname a
      | Ir.P_int, Some (B_int n) ->
          root_frame := (prm.Ir.pname, ref (V_int n)) :: !root_frame
      | Ir.P_float, Some (B_float x) ->
          root_frame := (prm.Ir.pname, ref (V_float x)) :: !root_frame
      | _, Some _ -> err "parameter %s bound with the wrong kind" prm.Ir.pname)
    p.Outline.kernel.Ir.params;
  let params =
    {
      Team.num_teams = options.num_teams;
      num_threads = options.num_threads;
      teams_mode = options.teams_mode;
      sharing_bytes = options.sharing_bytes;
    }
  in
  Target.launch ~cfg ?pool ?trace ~params
    ~dispatch_table_size:(Outline.dispatch_table_size p) (fun ctx ->
      (* every executing thread owns a private copy of the region scope *)
      let scope = { frames = [ List.map (fun (n, c) -> (n, ref !c)) !root_frame ] } in
      eval_stmts ctx statics p.Outline.outlined options scope
        p.Outline.kernel.Ir.body)
