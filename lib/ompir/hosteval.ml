module Memory = Gpusim.Memory

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type value = V_int of int | V_float of float

type env = {
  farrays : (string, Memory.farray) Hashtbl.t;
  iarrays : (string, Memory.iarray) Hashtbl.t;
  mutable scope : (string * value ref) list;
}

let as_int name = function
  | V_int n -> n
  | V_float _ -> err "%s: expected an int" name

let as_float name = function
  | V_float x -> x
  | V_int _ -> err "%s: expected a float" name

let lookup env name =
  match List.assoc_opt name env.scope with
  | Some cell -> cell
  | None -> err "unbound variable %s" name

let farray env name =
  try Hashtbl.find env.farrays name with Not_found -> err "unbound array %s" name

let iarray env name =
  try Hashtbl.find env.iarrays name with Not_found -> err "unbound array %s" name

let rec eval env (e : Ir.expr) =
  match e with
  | Ir.Int_lit n -> V_int n
  | Ir.Float_lit x -> V_float x
  | Ir.Var name -> !(lookup env name)
  | Ir.Load (arr, idx) ->
      V_float (Memory.host_get (farray env arr) (as_int arr (eval env idx)))
  | Ir.Load_int (arr, idx) ->
      V_int (Memory.host_geti (iarray env arr) (as_int arr (eval env idx)))
  | Ir.Unop (op, a) -> (
      let va = eval env a in
      match op with
      | Ir.Neg -> (
          match va with V_int n -> V_int (-n) | V_float x -> V_float (-.x))
      | Ir.Not -> V_int (if as_int "!" va = 0 then 1 else 0)
      | Ir.To_float -> V_float (float_of_int (as_int "(double)" va))
      | Ir.To_int -> V_int (int_of_float (as_float "(int)" va))
      | Ir.Sqrt -> V_float (sqrt (as_float "sqrt" va))
      | Ir.Exp -> V_float (exp (as_float "exp" va))
      | Ir.Log -> V_float (log (as_float "log" va))
      | Ir.Abs -> (
          match va with
          | V_int n -> V_int (abs n)
          | V_float x -> V_float (abs_float x)))
  | Ir.Binop (op, a, b) -> (
      let va = eval env a and vb = eval env b in
      let bool_ r = V_int (if r then 1 else 0) in
      match (va, vb) with
      | V_int x, V_int y -> (
          match op with
          | Ir.Add -> V_int (x + y)
          | Ir.Sub -> V_int (x - y)
          | Ir.Mul -> V_int (x * y)
          | Ir.Div -> if y = 0 then err "division by zero" else V_int (x / y)
          | Ir.Mod -> if y = 0 then err "mod by zero" else V_int (x mod y)
          | Ir.Min -> V_int (min x y)
          | Ir.Max -> V_int (max x y)
          | Ir.Lt -> bool_ (x < y)
          | Ir.Le -> bool_ (x <= y)
          | Ir.Gt -> bool_ (x > y)
          | Ir.Ge -> bool_ (x >= y)
          | Ir.Eq -> bool_ (x = y)
          | Ir.Ne -> bool_ (x <> y)
          | Ir.And -> bool_ (x <> 0 && y <> 0)
          | Ir.Or -> bool_ (x <> 0 || y <> 0))
      | V_float x, V_float y -> (
          match op with
          | Ir.Add -> V_float (x +. y)
          | Ir.Sub -> V_float (x -. y)
          | Ir.Mul -> V_float (x *. y)
          | Ir.Div -> V_float (x /. y)
          | Ir.Min -> V_float (Float.min x y)
          | Ir.Max -> V_float (Float.max x y)
          | Ir.Lt -> bool_ (x < y)
          | Ir.Le -> bool_ (x <= y)
          | Ir.Gt -> bool_ (x > y)
          | Ir.Ge -> bool_ (x >= y)
          | Ir.Eq -> bool_ (x = y)
          | Ir.Ne -> bool_ (x <> y)
          | Ir.And | Ir.Or -> err "logic op on floats"
          | Ir.Mod -> err "mod on floats")
      | _ -> err "mixed operand types")

let rec exec env (s : Ir.stmt) =
  match s with
  | Ir.Decl { name; init; _ } ->
      env.scope <- (name, ref (eval env init)) :: env.scope
  | Ir.Assign (name, e) -> lookup env name := eval env e
  | Ir.Store (arr, idx, value) ->
      Memory.host_set (farray env arr)
        (as_int arr (eval env idx))
        (as_float arr (eval env value))
  | Ir.Store_int (arr, idx, value) ->
      Memory.host_seti (iarray env arr)
        (as_int arr (eval env idx))
        (as_int arr (eval env value))
  | Ir.Atomic_add (arr, idx, value) ->
      let a = farray env arr in
      let i = as_int arr (eval env idx) in
      Memory.host_set a i (Memory.host_get a i +. as_float arr (eval env value))
  | Ir.If (cond, then_, else_) ->
      exec_block env (if as_int "if" (eval env cond) <> 0 then then_ else else_)
  | Ir.While (cond, body) ->
      while as_int "while" (eval env cond) <> 0 do
        exec_block env body
      done
  | Ir.For { var; lo; hi; body } ->
      let lo = as_int var (eval env lo) and hi = as_int var (eval env hi) in
      run_loop env ~var ~lo ~hi body
  | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
      let lo = as_int d.Ir.loop_var (eval env d.Ir.lo) in
      let hi = as_int d.Ir.loop_var (eval env d.Ir.hi) in
      run_loop env ~var:d.Ir.loop_var ~lo ~hi d.Ir.body
  | Ir.Simd_sum { acc; value; dir = d } ->
      let lo = as_int d.Ir.loop_var (eval env d.Ir.lo) in
      let hi = as_int d.Ir.loop_var (eval env d.Ir.hi) in
      let total = ref 0.0 in
      let saved = env.scope in
      let cell = ref (V_int lo) in
      env.scope <- (d.Ir.loop_var, cell) :: env.scope;
      for iv = lo to hi - 1 do
        cell := V_int iv;
        let mark = env.scope in
        exec_block_no_reset env d.Ir.body;
        total := !total +. as_float acc (eval env value);
        env.scope <- mark
      done;
      env.scope <- saved;
      lookup env acc := V_float !total
  | Ir.Guarded body ->
      (* one executor, scope-transparent *)
      List.iter (exec env) body
  | Ir.Sync -> ()

and run_loop env ~var ~lo ~hi body =
  let saved = env.scope in
  let cell = ref (V_int lo) in
  env.scope <- (var, cell) :: env.scope;
  for iv = lo to hi - 1 do
    cell := V_int iv;
    exec_block env body
  done;
  env.scope <- saved

and exec_block env body =
  let saved = env.scope in
  List.iter (exec env) body;
  env.scope <- saved

and exec_block_no_reset env body = List.iter (exec env) body

let run ~bindings (k : Ir.kernel) =
  let env =
    { farrays = Hashtbl.create 8; iarrays = Hashtbl.create 8; scope = [] }
  in
  List.iter
    (fun (prm : Ir.param) ->
      match (prm.Ir.pty, List.assoc_opt prm.Ir.pname bindings) with
      | _, None -> err "parameter %s is not bound" prm.Ir.pname
      | Ir.P_farray, Some (Eval.B_farr a) ->
          Hashtbl.replace env.farrays prm.Ir.pname a
      | Ir.P_iarray, Some (Eval.B_iarr a) ->
          Hashtbl.replace env.iarrays prm.Ir.pname a
      | Ir.P_int, Some (Eval.B_int n) ->
          env.scope <- (prm.Ir.pname, ref (V_int n)) :: env.scope
      | Ir.P_float, Some (Eval.B_float x) ->
          env.scope <- (prm.Ir.pname, ref (V_float x)) :: env.scope
      | _, Some _ -> err "parameter %s bound with the wrong kind" prm.Ir.pname)
    k.Ir.params;
  exec_block env k.Ir.body
