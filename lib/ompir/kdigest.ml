(* Content digest of a kernel — the identity under which the service
   layer caches compilation.

   The digest is an MD5 over an injective byte serialization of the
   kernel structure: every constructor writes a distinct tag, strings
   are length-prefixed, ints are written in full 64-bit width and floats
   as their IEEE bit patterns, so two kernels collide only if they are
   structurally equal (up to MD5 itself).  The [fn_id] annotation that
   {!Outline.run} stamps onto directives is deliberately excluded:
   outlining is deterministic given the structure, and excluding the ids
   makes the digest identical before and after annotation — the same
   kernel text always maps to the same digest whether it arrives fresh
   from the parser or round-trips through the pipeline. *)

let add_int buf n =
  let n = Int64.of_int n in
  for shift = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * shift)) 0xFFL)))
  done

let add_float buf x = add_int buf (Int64.to_int (Int64.bits_of_float x))

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_tag buf c = Buffer.add_char buf c

let tag_of_binop = function
  | Ir.Add -> 'a' | Ir.Sub -> 'b' | Ir.Mul -> 'c' | Ir.Div -> 'd'
  | Ir.Mod -> 'e' | Ir.Min -> 'f' | Ir.Max -> 'g' | Ir.Lt -> 'h'
  | Ir.Le -> 'i' | Ir.Gt -> 'j' | Ir.Ge -> 'k' | Ir.Eq -> 'l'
  | Ir.Ne -> 'm' | Ir.And -> 'n' | Ir.Or -> 'o'

let tag_of_unop = function
  | Ir.Neg -> 'p' | Ir.Not -> 'q' | Ir.To_float -> 'r' | Ir.To_int -> 's'
  | Ir.Sqrt -> 't' | Ir.Exp -> 'u' | Ir.Log -> 'v' | Ir.Abs -> 'w'

let rec add_expr buf = function
  | Ir.Int_lit n ->
      add_tag buf 'I';
      add_int buf n
  | Ir.Float_lit x ->
      add_tag buf 'F';
      add_float buf x
  | Ir.Var name ->
      add_tag buf 'V';
      add_string buf name
  | Ir.Binop (op, a, b) ->
      add_tag buf 'B';
      add_tag buf (tag_of_binop op);
      add_expr buf a;
      add_expr buf b
  | Ir.Unop (op, a) ->
      add_tag buf 'U';
      add_tag buf (tag_of_unop op);
      add_expr buf a
  | Ir.Load (arr, idx) ->
      add_tag buf 'L';
      add_string buf arr;
      add_expr buf idx
  | Ir.Load_int (arr, idx) ->
      add_tag buf 'M';
      add_string buf arr;
      add_expr buf idx

let add_sched buf = function
  | Ir.Sched_static -> add_tag buf '0'
  | Ir.Sched_chunked c ->
      add_tag buf '1';
      add_int buf c
  | Ir.Sched_dynamic c ->
      add_tag buf '2';
      add_int buf c

(* [fn_id] is intentionally NOT serialized — see the header comment. *)
let rec add_dir buf (d : Ir.loop_directive) =
  add_string buf d.Ir.loop_var;
  add_expr buf d.Ir.lo;
  add_expr buf d.Ir.hi;
  add_sched buf d.Ir.sched;
  add_stmts buf d.Ir.body

and add_stmts buf stmts =
  add_int buf (List.length stmts);
  List.iter (add_stmt buf) stmts

and add_stmt buf = function
  | Ir.Decl { name; ty; init } ->
      add_tag buf 'D';
      add_string buf name;
      add_tag buf (match ty with Ir.Tint -> 'i' | Ir.Tfloat -> 'f');
      add_expr buf init
  | Ir.Assign (name, e) ->
      add_tag buf 'A';
      add_string buf name;
      add_expr buf e
  | Ir.Store (arr, idx, v) ->
      add_tag buf 'S';
      add_string buf arr;
      add_expr buf idx;
      add_expr buf v
  | Ir.Store_int (arr, idx, v) ->
      add_tag buf 'T';
      add_string buf arr;
      add_expr buf idx;
      add_expr buf v
  | Ir.Atomic_add (arr, idx, v) ->
      add_tag buf '@';
      add_string buf arr;
      add_expr buf idx;
      add_expr buf v
  | Ir.If (cond, then_, else_) ->
      add_tag buf '?';
      add_expr buf cond;
      add_stmts buf then_;
      add_stmts buf else_
  | Ir.While (cond, body) ->
      add_tag buf 'W';
      add_expr buf cond;
      add_stmts buf body
  | Ir.For { var; lo; hi; body } ->
      add_tag buf 'R';
      add_string buf var;
      add_expr buf lo;
      add_expr buf hi;
      add_stmts buf body
  | Ir.Distribute_parallel_for d ->
      add_tag buf 'P';
      add_dir buf d
  | Ir.Parallel_for d ->
      add_tag buf 'p';
      add_dir buf d
  | Ir.Simd d ->
      add_tag buf 's';
      add_dir buf d
  | Ir.Simd_sum { acc; value; dir } ->
      add_tag buf '+';
      add_string buf acc;
      add_expr buf value;
      add_dir buf dir
  | Ir.Guarded body ->
      add_tag buf 'G';
      add_stmts buf body
  | Ir.Sync -> add_tag buf '!'

let add_param buf (p : Ir.param) =
  add_string buf p.Ir.pname;
  add_tag buf
    (match p.Ir.pty with
    | Ir.P_farray -> 'f'
    | Ir.P_iarray -> 'i'
    | Ir.P_int -> 'n'
    | Ir.P_float -> 'x')

let bytes_of_kernel (k : Ir.kernel) =
  let buf = Buffer.create 512 in
  add_string buf k.Ir.kname;
  add_int buf (List.length k.Ir.params);
  List.iter (add_param buf) k.Ir.params;
  add_stmts buf k.Ir.body;
  Buffer.contents buf

let hex k = Stdlib.Digest.to_hex (Stdlib.Digest.string (bytes_of_kernel k))

(* Structural size, used by the service layer as a deterministic proxy
   for compile cost (virtual ticks must not depend on the host). *)
let weight (k : Ir.kernel) =
  let rec expr n = function
    | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> n + 1
    | Ir.Binop (_, a, b) -> expr (expr (n + 1) a) b
    | Ir.Unop (_, a) | Ir.Load (_, a) | Ir.Load_int (_, a) -> expr (n + 1) a
  in
  let rec stmts n body = List.fold_left stmt n body
  and dir n (d : Ir.loop_directive) =
    stmts (expr (expr n d.Ir.lo) d.Ir.hi) d.Ir.body
  and stmt n = function
    | Ir.Decl { init = e; _ } | Ir.Assign (_, e) -> expr (n + 1) e
    | Ir.Store (_, i, v) | Ir.Store_int (_, i, v) | Ir.Atomic_add (_, i, v) ->
        expr (expr (n + 1) i) v
    | Ir.If (c, a, b) -> stmts (stmts (expr (n + 1) c) a) b
    | Ir.While (c, body) -> stmts (expr (n + 1) c) body
    | Ir.For { lo; hi; body; _ } -> stmts (expr (expr (n + 1) lo) hi) body
    | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
        dir (n + 1) d
    | Ir.Simd_sum { value; dir = d; _ } -> dir (expr (n + 1) value) d
    | Ir.Guarded body -> stmts (n + 1) body
    | Ir.Sync -> n + 1
  in
  stmts (List.length k.Ir.params) k.Ir.body
