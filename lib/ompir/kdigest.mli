(** Content digest of kernels — the identity under which the service
    layer ({!module:Serve} in [lib/serve]) caches compilation.

    Structurally equal kernels digest equally; the serialization behind
    the digest is injective, so structurally different kernels digest
    differently (up to MD5 collisions).  The [fn_id] annotations stamped
    by {!Outline.run} are excluded: a kernel digests the same before and
    after outlining, so the digest of freshly parsed source equals the
    digest of the same kernel anywhere later in the pipeline. *)

val hex : Ir.kernel -> string
(** 32-character lowercase hex digest. *)

val bytes_of_kernel : Ir.kernel -> string
(** The canonical serialization itself (exposed for tests). *)

val weight : Ir.kernel -> int
(** Structural node count (params + statements + expression nodes) — a
    deterministic, host-independent proxy for compilation cost, used to
    charge virtual compile time in the service layer. *)
