(** Outlining (§4.1–§4.2): isolate each worksharing directive's body into
    a "loop task" with an explicit captured-variable payload.

    This is the OpenMP IR Builder step: the front-end supplies the trip
    count and the body; the pass assigns every directive a function id
    (its position in the translation unit's if-cascade dispatch table,
    §5.5) and records which variables the outlined body captures — those
    become the [void**] payload that the runtime shares between main
    threads and workers. *)

type outlined = {
  fn_id : int;
  kind : [ `Simd | `Simd_sum | `Parallel_for | `Distribute_parallel_for ];
  loop_var : string;
  captures : string list;
      (** free variables of the body (arrays and scalars), sorted *)
}

type program = {
  kernel : Ir.kernel;  (** directives annotated with their fn_ids *)
  outlined : outlined list;  (** in fn_id order *)
}

val run : Ir.kernel -> program
(** Assign ids in syntactic order and compute captures.  Idempotent. *)

val dispatch_table_size : program -> int

val find : program -> fn_id:int -> outlined
(** @raise Not_found for unknown ids. *)
