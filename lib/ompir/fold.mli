(** Constant folding and algebraic simplification.

    A standard cleanup pass run before outlining: folds literal
    arithmetic, applies safe identities (x+0, x*1, x*0 when x is pure),
    resolves constant branches, and drops loops and directives whose
    iteration spaces are statically empty.  Semantics-preserving for
    checked kernels; the differential suite cross-checks folded against
    unfolded programs. *)

val expr : Ir.expr -> Ir.expr
(** Folded expression (idempotent). *)

val kernel : Ir.kernel -> Ir.kernel

val is_pure : Ir.expr -> bool
(** No loads — safe to delete when its value is unused. *)
