type ty = Tint | Tfloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not | To_float | To_int | Sqrt | Exp | Log | Abs

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Load of string * expr
  | Load_int of string * expr

type schedule = Sched_static | Sched_chunked of int | Sched_dynamic of int

type stmt =
  | Decl of { name : string; ty : ty; init : expr }
  | Assign of string * expr
  | Store of string * expr * expr
  | Store_int of string * expr * expr
  | Atomic_add of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { var : string; lo : expr; hi : expr; body : stmt list }
  | Distribute_parallel_for of loop_directive
  | Parallel_for of loop_directive
  | Simd of loop_directive
  | Simd_sum of { acc : string; value : expr; dir : loop_directive }
  | Guarded of stmt list
  | Sync

and loop_directive = {
  loop_var : string;
  lo : expr;
  hi : expr;
  body : stmt list;
  fn_id : int;
  sched : schedule;
}

type param_ty = P_farray | P_iarray | P_int | P_float

type param = { pname : string; pty : param_ty }

type kernel = { kname : string; params : param list; body : stmt list }

let kernel ~name ~params body = { kname = name; params; body }

let directive ?(sched = Sched_static) ~var ~lo ~hi body =
  { loop_var = var; lo; hi; body; fn_id = -1; sched }

let simd ~var ~lo ~hi body = Simd (directive ~var ~lo ~hi body)

let simd_sum ~acc ~var ~lo ~hi ~value body =
  Simd_sum { acc; value; dir = directive ~var ~lo ~hi body }

let parallel_for ?sched ~var ~lo ~hi body =
  Parallel_for (directive ?sched ~var ~lo ~hi body)

let distribute_parallel_for ?sched ~var ~lo ~hi body =
  Distribute_parallel_for (directive ?sched ~var ~lo ~hi body)

(* collapse(n): flatten nested rectangular loops into one worksharing
   loop, recovering the source indices by division and modulo — the
   standard lowering. *)
let collapsed_distribute_parallel_for ?sched ~vars body =
  if List.length vars < 2 then
    invalid_arg "Ir.collapsed_distribute_parallel_for: needs >= 2 loops";
  let flat = "__flat" in
  let total =
    List.fold_left
      (fun acc (_, extent) -> Binop (Mul, acc, extent))
      (Int_lit 1) vars
  in
  (* v_i = flat / (prod of inner extents) mod extent_i *)
  let rec decoders rem_vars =
    match rem_vars with
    | [] -> []
    | (var, extent) :: rest ->
        let inner =
          List.fold_left
            (fun acc (_, e) -> Binop (Mul, acc, e))
            (Int_lit 1) rest
        in
        Decl
          {
            name = var;
            ty = Tint;
            init = Binop (Mod, Binop (Div, Var flat, inner), extent);
          }
        :: decoders rest
  in
  Distribute_parallel_for
    (directive ?sched ~var:flat ~lo:(Int_lit 0) ~hi:total
       (decoders vars @ body))

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( = ) a b = Binop (Eq, a, b)
let i n = Int_lit n
let f x = Float_lit x
let v name = Var name

module Names = Set.Make (String)

let rec expr_vars acc = function
  | Int_lit _ | Float_lit _ -> acc
  | Var name -> Names.add name acc
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Unop (_, a) -> expr_vars acc a
  | Load (arr, idx) | Load_int (arr, idx) -> expr_vars (Names.add arr acc) idx

(* Free variables: referenced but not bound by a Decl / loop variable in
   the enclosing statement list. *)
let free_vars stmts =
  let rec go_stmts bound acc stmts =
    let _, acc =
      List.fold_left
        (fun (bound, acc) stmt -> go_stmt bound acc stmt)
        (bound, acc) stmts
    in
    acc
  and use bound acc e =
    Names.fold
      (fun name acc -> if Names.mem name bound then acc else Names.add name acc)
      (expr_vars Names.empty e)
      acc
  and go_stmt bound acc stmt =
    match stmt with
    | Decl { name; init; _ } ->
        let acc = use bound acc init in
        (Names.add name bound, acc)
    | Assign (name, e) ->
        let acc = use bound acc e in
        let acc = if Names.mem name bound then acc else Names.add name acc in
        (bound, acc)
    | Store (arr, idx, value)
    | Store_int (arr, idx, value)
    | Atomic_add (arr, idx, value) ->
        let acc = if Names.mem arr bound then acc else Names.add arr acc in
        let acc = use bound acc idx in
        (bound, use bound acc value)
    | If (cond, then_, else_) ->
        let acc = use bound acc cond in
        let acc = go_stmts bound acc then_ in
        (bound, go_stmts bound acc else_)
    | While (cond, body) ->
        let acc = use bound acc cond in
        (bound, go_stmts bound acc body)
    | For { var; lo; hi; body } ->
        let acc = use bound acc lo in
        let acc = use bound acc hi in
        (bound, go_stmts (Names.add var bound) acc body)
    | Distribute_parallel_for d | Parallel_for d | Simd d ->
        let acc = use bound acc d.lo in
        let acc = use bound acc d.hi in
        (bound, go_stmts (Names.add d.loop_var bound) acc d.body)
    | Simd_sum { acc = acc_name; value; dir = d } ->
        let acc = use bound acc d.lo in
        let acc = use bound acc d.hi in
        let acc =
          if Names.mem acc_name bound then acc else Names.add acc_name acc
        in
        let bound' = Names.add d.loop_var bound in
        let acc = go_stmts bound' acc d.body in
        (* [value] sees the body's declarations; conservatively treat all
           its variables except the loop var and acc as free unless bound
           outside — body decls are not visible here, so approximate by
           free vars of the body-plus-value sequence *)
        let acc =
          Names.fold
            (fun name acc ->
              if Names.mem name bound' then acc else Names.add name acc)
            (expr_vars Names.empty value)
            acc
        in
        (bound, acc)
    | Guarded body ->
        (* scope-transparent: declarations inside remain bound after *)
        let bound', acc =
          List.fold_left
            (fun (bound, acc) stmt -> go_stmt bound acc stmt)
            (bound, acc) body
        in
        (bound', acc)
    | Sync -> (bound, acc)
  in
  Names.elements (go_stmts Names.empty Names.empty stmts)

let fold_directives f init stmts =
  let rec go acc stmt =
    let acc = f acc stmt in
    match stmt with
    | If (_, a, b) -> List.fold_left go (List.fold_left go acc a) b
    | While (_, body) | For { body; _ } -> List.fold_left go acc body
    | Distribute_parallel_for d | Parallel_for d | Simd d ->
        List.fold_left go acc d.body
    | Simd_sum { dir; _ } -> List.fold_left go acc dir.body
    | Guarded body -> List.fold_left go acc body
    | Decl _ | Assign _ | Store _ | Store_int _ | Atomic_add _ | Sync -> acc
  in
  List.fold_left go init stmts
