(** Parser for the kernel language — the textual front door of the
    compiler pipeline.

    The syntax is the pragma-annotated C subset that {!Printer} emits
    (minus its annotations); a kernel file looks like the OpenMP source
    the paper's benchmarks are written in:

    {v
kernel saxpy(double* x, double* y, double a, int n) {
  #pragma omp teams distribute parallel for
  for (i = 0; i < n; i++) {
    #pragma omp simd
    for (j = 0; j < 8; j++) {
      y[(i * 8) + j] = a * x[(i * 8) + j] + y[(i * 8) + j];
    }
  }
}
    v}

    Statements: declarations ([int v = e;] / [double v = e;]),
    assignments, array stores, [if]/[else], [while], plain [for] loops,
    [#pragma omp atomic] before [a\[e\] += e;], worksharing pragmas
    ([teams distribute parallel for], [parallel for], [simd], each with an
    optional [schedule(static|dynamic,N)] clause and, for simd,
    [reduction(+:acc)] — whose loop body must end with [acc += e;]), and
    [guarded { ... }] blocks.

    Expressions follow C precedence with the intrinsics [sqrt], [exp],
    [log], [fabs], [min], [max] and casts [(int)] / [(double)].  Array
    loads type themselves from the parameter declarations. *)

exception Syntax_error of { line : int; message : string }

val kernel : string -> Ir.kernel
(** Parse a kernel from source text.
    @raise Syntax_error with a 1-based line number on malformed input. *)

val kernel_of_file : string -> Ir.kernel
(** @raise Sys_error on I/O failure, {!Syntax_error} on malformed input. *)
