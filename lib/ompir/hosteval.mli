(** Sequential host-side reference interpreter.

    Executes a kernel with plain loop semantics — worksharing directives
    become ordinary loops, [Guarded] blocks run once, [Simd_sum]
    accumulates in iteration order — with no device, no costs and no
    parallelism.  Race-free kernels must produce exactly the same array
    contents under {!Eval} (any mode, any geometry) and under this
    interpreter; the differential test suite exercises that on random
    programs. *)

exception Error of string

val run :
  bindings:(string * Eval.binding) list -> Ir.kernel -> unit
(** Mutates the bound device arrays in place (host-side, cost-free).
    @raise Error on binding/type failures, like {!Eval}. *)
