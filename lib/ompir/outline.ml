type outlined = {
  fn_id : int;
  kind : [ `Simd | `Simd_sum | `Parallel_for | `Distribute_parallel_for ];
  loop_var : string;
  captures : string list;
}

type program = { kernel : Ir.kernel; outlined : outlined list }

let capture_of ~kind ~fn_id (d : Ir.loop_directive) =
  (* The loop variable is rebound by the runtime per iteration; everything
     else the body references must travel in the payload — including the
     variables of the bound expressions, since the outlined task maps the
     normalized iteration number back to the source index. *)
  let module S = Set.Make (String) in
  let bound_vars e = Ir.free_vars [ Ir.Assign ("__sink", e) ] in
  let names =
    S.union
      (S.of_list (Ir.free_vars d.Ir.body))
      (S.union (S.of_list (bound_vars d.Ir.lo)) (S.of_list (bound_vars d.Ir.hi)))
  in
  let captures =
    S.elements (S.filter (fun n -> n <> d.Ir.loop_var && n <> "__sink") names)
  in
  { fn_id; kind; loop_var = d.Ir.loop_var; captures }

let run (k : Ir.kernel) =
  let counter = ref 0 in
  let acc_ref = ref [] in
  let fresh kind d =
    let fn_id = !counter in
    incr counter;
    acc_ref := capture_of ~kind ~fn_id d :: !acc_ref;
    fn_id
  in
  let rec stmts body = List.map stmt body
  and stmt (s : Ir.stmt) =
    match s with
    | Ir.Distribute_parallel_for d ->
        let fn_id = fresh `Distribute_parallel_for d in
        Ir.Distribute_parallel_for { d with Ir.fn_id; body = stmts d.Ir.body }
    | Ir.Parallel_for d ->
        let fn_id = fresh `Parallel_for d in
        Ir.Parallel_for { d with Ir.fn_id; body = stmts d.Ir.body }
    | Ir.Simd d ->
        let fn_id = fresh `Simd d in
        Ir.Simd { d with Ir.fn_id; body = stmts d.Ir.body }
    | Ir.Simd_sum { acc; value; dir = d } ->
        (* the summand is part of the outlined body for capture purposes *)
        let with_value =
          { d with Ir.body = d.Ir.body @ [ Ir.Assign ("__red", value) ] }
        in
        let fn_id = !counter in
        incr counter;
        let cap = capture_of ~kind:`Simd_sum ~fn_id with_value in
        let cap =
          { cap with captures = List.filter (fun n -> n <> "__red" && n <> acc) cap.captures }
        in
        acc_ref := cap :: !acc_ref;
        Ir.Simd_sum { acc; value; dir = { d with Ir.fn_id; body = stmts d.Ir.body } }
    | Ir.If (c, a, b) -> Ir.If (c, stmts a, stmts b)
    | Ir.While (c, body) -> Ir.While (c, stmts body)
    | Ir.For { var; lo; hi; body } -> Ir.For { var; lo; hi; body = stmts body }
    | Ir.Guarded body -> Ir.Guarded (stmts body)
    | (Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _
      | Ir.Atomic_add _ | Ir.Sync) as s ->
        s
  in
  let body = stmts k.Ir.body in
  { kernel = { k with Ir.body }; outlined = List.rev !acc_ref }

let dispatch_table_size p = List.length p.outlined

let find p ~fn_id = List.find (fun o -> o.fn_id = fn_id) p.outlined
