(** The kernel IR — a small block-structured language standing in for the
    LLVM IR that Clang's OpenMP codegen produces (§4).

    A {!kernel} is the body of one [target teams] region.  Worksharing
    directives are first-class statements; the {!Outline} pass later
    isolates their bodies into "loop tasks" with explicit captured-variable
    payloads, exactly as the OpenMP IR Builder does, and {!Eval} executes
    the result on the simulated GPU runtime. *)

type ty = Tint | Tfloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not | To_float | To_int | Sqrt | Exp | Log | Abs

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Load of string * expr  (** float-array parameter element *)
  | Load_int of string * expr  (** int-array parameter element *)

type schedule = Sched_static | Sched_chunked of int | Sched_dynamic of int

type stmt =
  | Decl of { name : string; ty : ty; init : expr }
      (** local variable (an alloca); candidates for globalization *)
  | Assign of string * expr
  | Store of string * expr * expr  (** array, index, value *)
  | Store_int of string * expr * expr
  | Atomic_add of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { var : string; lo : expr; hi : expr; body : stmt list }
      (** plain sequential loop *)
  | Distribute_parallel_for of loop_directive
      (** combined teams-level worksharing loop *)
  | Parallel_for of loop_directive
  | Simd of loop_directive
  | Simd_sum of { acc : string; value : expr; dir : loop_directive }
      (** [simd reduction(+:acc)] — §7's future work, implemented: run the
          directive's body per iteration, evaluate [value], sum across the
          group, assign the total to the (outer, float) local [acc] *)
  | Guarded of stmt list
      (** thread guarding + variable broadcasting in the style of [16]:
          inside an SPMD parallel region, only each group's SIMD main
          executes the block (so its side effects happen once); the values
          it declares are broadcast to the group's other lanes, whose
          scopes they then extend.  Inserted by {!Spmdize.guardize}; the
          mechanism the paper's §7 plans for SPMDizing parallel regions. *)
  | Sync  (** a region-level barrier *)

and loop_directive = {
  loop_var : string;
  lo : expr;
  hi : expr;  (** exclusive; trip count is [hi - lo] *)
  body : stmt list;
  fn_id : int;  (** assigned by {!Outline}; -1 before outlining *)
  sched : schedule;  (** schedule clause for the worksharing levels *)
}

type param_ty = P_farray | P_iarray | P_int | P_float

type param = { pname : string; pty : param_ty }

type kernel = { kname : string; params : param list; body : stmt list }

val kernel : name:string -> params:param list -> stmt list -> kernel

(* Convenience constructors so kernels read almost like the pragmas. *)
val simd : var:string -> lo:expr -> hi:expr -> stmt list -> stmt

val simd_sum :
  acc:string -> var:string -> lo:expr -> hi:expr -> value:expr -> stmt list -> stmt
(** [simd reduction(+:acc)]: per iteration the body runs, then [value] is
    accumulated; the group total is assigned to [acc]. *)

val parallel_for :
  ?sched:schedule -> var:string -> lo:expr -> hi:expr -> stmt list -> stmt

val distribute_parallel_for :
  ?sched:schedule -> var:string -> lo:expr -> hi:expr -> stmt list -> stmt

val collapsed_distribute_parallel_for :
  ?sched:schedule -> vars:(string * expr) list -> stmt list -> stmt
(** [collapse(n)] desugared the way a compiler lowers it: one flat
    worksharing loop over the product of the extents, with declarations
    recovering each source index by division/modulo.  Extents must be
    positive at runtime.  @raise Invalid_argument on fewer than two
    loops. *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val i : int -> expr
val f : float -> expr
val v : string -> expr

val free_vars : stmt list -> string list
(** Variables read or written by the statements that are not bound within
    them (loop variables and local declarations bind); sorted, without
    duplicates.  Array parameters count — they become payload pointers. *)

val fold_directives : ('a -> stmt -> 'a) -> 'a -> stmt list -> 'a
(** Fold over every statement, recursing into all bodies. *)
