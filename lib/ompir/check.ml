type error = { where : string; what : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

type env = {
  params : (string * Ir.param_ty) list;
  locals : (string * Ir.ty) list;  (** innermost first *)
  loop_vars : string list;
}

let scalar_param_ty = function
  | Ir.P_int -> Some Ir.Tint
  | Ir.P_float -> Some Ir.Tfloat
  | Ir.P_farray | Ir.P_iarray -> None

let lookup_var env name =
  match List.assoc_opt name env.locals with
  | Some ty -> Ok ty
  | None -> (
      if List.mem name env.loop_vars then Ok Ir.Tint
      else
        match List.assoc_opt name env.params with
        | Some pty -> (
            match scalar_param_ty pty with
            | Some ty -> Ok ty
            | None ->
                Error
                  (Printf.sprintf "%s is an array parameter used as a scalar"
                     name))
        | None -> Error (Printf.sprintf "unbound variable %s" name))

let rec type_of env (e : Ir.expr) =
  match e with
  | Ir.Int_lit _ -> Ok Ir.Tint
  | Ir.Float_lit _ -> Ok Ir.Tfloat
  | Ir.Var name -> lookup_var env name
  | Ir.Load (arr, idx) -> array_ref env ~arr ~idx ~expect:Ir.P_farray Ir.Tfloat
  | Ir.Load_int (arr, idx) -> array_ref env ~arr ~idx ~expect:Ir.P_iarray Ir.Tint
  | Ir.Unop (op, a) -> (
      match type_of env a with
      | Error _ as e -> e
      | Ok ty -> (
          match op with
          | Ir.Neg -> Ok ty
          | Ir.Not -> if ty = Ir.Tint then Ok Ir.Tint else Error "not on float"
          | Ir.To_float -> Ok Ir.Tfloat
          | Ir.To_int -> Ok Ir.Tint
          | Ir.Sqrt | Ir.Exp | Ir.Log ->
              if ty = Ir.Tfloat then Ok Ir.Tfloat
              else Error "math intrinsic on int"
          | Ir.Abs -> Ok ty))
  | Ir.Binop (op, a, b) -> (
      match (type_of env a, type_of env b) with
      | Ok ta, Ok tb ->
          if ta <> tb then Error "operand types differ"
          else (
            match op with
            | Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Min | Ir.Max -> Ok ta
            | Ir.Mod ->
                if ta = Ir.Tint then Ok Ir.Tint else Error "mod on float"
            | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.Eq | Ir.Ne -> Ok Ir.Tint
            | Ir.And | Ir.Or ->
                if ta = Ir.Tint then Ok Ir.Tint
                else Error "logic op on float")
      | (Error _ as e), _ | _, (Error _ as e) -> e)

and array_ref env ~arr ~idx ~expect result_ty =
  match List.assoc_opt arr env.params with
  | None -> Error (Printf.sprintf "unknown array %s" arr)
  | Some pty when pty <> expect ->
      Error (Printf.sprintf "array %s has the wrong element kind" arr)
  | Some _ -> (
      match type_of env idx with
      | Ok Ir.Tint -> Ok result_ty
      | Ok Ir.Tfloat -> Error (Printf.sprintf "index of %s is not an int" arr)
      | Error _ as e -> e)

let expr_type ~params ~locals e =
  type_of { params; locals; loop_vars = [] } e

type position =
  | Region_level
  | Inside_parallel
  | Inside_simd of (string * Ir.ty) list
      (* the locals visible at simd entry: assigning one of those from the
         outlined body would race the sharing protocol *)
  | Inside_guard of (string * Ir.ty) list
      (* locals visible at guard entry: only the SIMD main executes the
         block, so assigning an outer local would leave the other lanes'
         copies stale (declarations broadcast instead) *)

let kernel (k : Ir.kernel) =
  let errors = ref [] in
  let report where what = errors := { where; what } :: !errors in
  let check_expr_is env ~where ~want e =
    match type_of env e with
    | Ok ty when ty = want -> ()
    | Ok _ -> report where "wrong type"
    | Error what -> report where what
  in
  (* duplicate parameter names *)
  let () =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (p : Ir.param) ->
        if Hashtbl.mem seen p.Ir.pname then
          report p.Ir.pname "duplicate parameter"
        else Hashtbl.add seen p.Ir.pname ())
      k.Ir.params
  in
  let params = List.map (fun (p : Ir.param) -> (p.Ir.pname, p.Ir.pty)) k.Ir.params in
  let rec stmts env ~position ~scope_names body =
    ignore
      (List.fold_left
         (fun (env, scope_names) s -> stmt env ~position ~scope_names s)
         (env, scope_names) body)
  and directive_ok env ~position ~where (d : Ir.loop_directive) expected_pos =
    if position <> expected_pos then
      report where "worksharing directive in an illegal position";
    (match d.Ir.sched with
    | Ir.Sched_chunked n | Ir.Sched_dynamic n ->
        if n <= 0 then report where "schedule chunk must be positive"
    | Ir.Sched_static -> ());
    check_expr_is env ~where ~want:Ir.Tint d.Ir.lo;
    check_expr_is env ~where ~want:Ir.Tint d.Ir.hi
  and stmt env ~position ~scope_names (s : Ir.stmt) =
    match s with
    | Ir.Decl { name; ty; init } ->
        let where = "decl " ^ name in
        if List.mem name scope_names then report where "duplicate declaration";
        if List.mem_assoc name env.params then
          report where "shadows a parameter";
        check_expr_is env ~where ~want:ty init;
        ({ env with locals = (name, ty) :: env.locals }, name :: scope_names)
    | Ir.Assign (name, e) ->
        let where = "assign " ^ name in
        if List.mem name env.loop_vars then
          report where "assignment to a loop variable";
        (match lookup_var env name with
        | Error what -> report where what
        | Ok ty -> check_expr_is env ~where ~want:ty e);
        (match position with
        | Inside_simd outer when List.mem_assoc name outer ->
            report where
              "simd body assigns a captured scalar (sharing is one-directional)"
        | Inside_guard outer when List.mem_assoc name outer ->
            report where
              "guarded block assigns an outer local (declare and broadcast instead)"
        | Inside_simd _ | Inside_guard _ | Region_level | Inside_parallel -> ());
        (env, scope_names)
    | Ir.Store (arr, idx, value) ->
        let where = "store " ^ arr in
        (match array_ref env ~arr ~idx ~expect:Ir.P_farray Ir.Tfloat with
        | Ok _ -> ()
        | Error what -> report where what);
        check_expr_is env ~where ~want:Ir.Tfloat value;
        (env, scope_names)
    | Ir.Store_int (arr, idx, value) ->
        let where = "store " ^ arr in
        (match array_ref env ~arr ~idx ~expect:Ir.P_iarray Ir.Tint with
        | Ok _ -> ()
        | Error what -> report where what);
        check_expr_is env ~where ~want:Ir.Tint value;
        (env, scope_names)
    | Ir.Atomic_add (arr, idx, value) ->
        let where = "atomic " ^ arr in
        (match array_ref env ~arr ~idx ~expect:Ir.P_farray Ir.Tfloat with
        | Ok _ -> ()
        | Error what -> report where what);
        check_expr_is env ~where ~want:Ir.Tfloat value;
        (env, scope_names)
    | Ir.If (cond, then_, else_) ->
        check_expr_is env ~where:"if" ~want:Ir.Tint cond;
        stmts env ~position ~scope_names:[] then_;
        stmts env ~position ~scope_names:[] else_;
        (env, scope_names)
    | Ir.While (cond, body) ->
        check_expr_is env ~where:"while" ~want:Ir.Tint cond;
        stmts env ~position ~scope_names:[] body;
        (env, scope_names)
    | Ir.For { var; lo; hi; body } ->
        check_expr_is env ~where:("for " ^ var) ~want:Ir.Tint lo;
        check_expr_is env ~where:("for " ^ var) ~want:Ir.Tint hi;
        stmts
          { env with loop_vars = var :: env.loop_vars }
          ~position ~scope_names:[] body;
        (env, scope_names)
    | Ir.Distribute_parallel_for d ->
        let where = "distribute parallel for " ^ d.Ir.loop_var in
        directive_ok env ~position ~where d Region_level;
        stmts
          { env with loop_vars = d.Ir.loop_var :: env.loop_vars }
          ~position:Inside_parallel ~scope_names:[] d.Ir.body;
        (env, scope_names)
    | Ir.Parallel_for d ->
        let where = "parallel for " ^ d.Ir.loop_var in
        directive_ok env ~position ~where d Region_level;
        stmts
          { env with loop_vars = d.Ir.loop_var :: env.loop_vars }
          ~position:Inside_parallel ~scope_names:[] d.Ir.body;
        (env, scope_names)
    | Ir.Simd d ->
        let where = "simd " ^ d.Ir.loop_var in
        (if position <> Inside_parallel then
           report where "worksharing directive in an illegal position");
        check_expr_is env ~where ~want:Ir.Tint d.Ir.lo;
        check_expr_is env ~where ~want:Ir.Tint d.Ir.hi;
        stmts
          { env with loop_vars = d.Ir.loop_var :: env.loop_vars }
          ~position:(Inside_simd env.locals) ~scope_names:[] d.Ir.body;
        (env, scope_names)
    | Ir.Simd_sum { acc; value; dir = d } ->
        let where = "simd reduction " ^ acc in
        (if position <> Inside_parallel then
           report where "worksharing directive in an illegal position");
        check_expr_is env ~where ~want:Ir.Tint d.Ir.lo;
        check_expr_is env ~where ~want:Ir.Tint d.Ir.hi;
        (* the accumulator must be an assignable float in the region scope *)
        (match lookup_var env acc with
        | Ok Ir.Tfloat -> ()
        | Ok Ir.Tint -> report where "reduction accumulator must be a float"
        | Error what -> report where what);
        if List.mem acc env.loop_vars then
          report where "reduction into a loop variable";
        (* the body and summand see the loop variable; the summand is
           checked in an environment extended with the body's declarations *)
        let inner =
          { env with loop_vars = d.Ir.loop_var :: env.loop_vars }
        in
        stmts inner ~position:(Inside_simd env.locals) ~scope_names:[]
          d.Ir.body;
        let body_locals =
          List.filter_map
            (function Ir.Decl { name; ty; _ } -> Some (name, ty) | _ -> None)
            d.Ir.body
        in
        check_expr_is
          { inner with locals = body_locals @ inner.locals }
          ~where ~want:Ir.Tfloat value;
        (env, scope_names)
    | Ir.Guarded body ->
        (match position with
        | Inside_parallel -> ()
        | Region_level | Inside_simd _ | Inside_guard _ ->
            report "guarded" "guarded block outside a parallel region body");
        (* scope-transparent: its declarations extend the enclosing scope *)
        let env', names' =
          List.fold_left
            (fun (env, names) s ->
              stmt env ~position:(Inside_guard env.locals) ~scope_names:names s)
            (env, scope_names) body
        in
        (env', names')
    | Ir.Sync ->
        (match position with
        | Inside_simd _ | Inside_guard _ -> report "sync" "barrier inside simd"
        | Region_level | Inside_parallel -> ());
        (env, scope_names)
  in
  stmts { params; locals = []; loop_vars = [] } ~position:Region_level
    ~scope_names:[] k.Ir.body;
  match List.rev !errors with [] -> Ok () | es -> Error es
