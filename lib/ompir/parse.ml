exception Syntax_error of { line : int; message : string }

(* --- lexer -------------------------------------------------------------- *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Punct of string  (* operators and delimiters, longest-match *)
  | Pragma of string list  (* the words of a #pragma line *)
  | Eof

type lexed = { token : token; line : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let puncts =
  (* longest first *)
  [ "+="; "=="; "!="; "<="; ">="; "&&"; "||"; "++";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; ":";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!" ]

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let fail message = raise (Syntax_error { line = !line; message }) in
  let emit token = tokens := { token; line = !line } :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos + 1 < n do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated comment"
    end
    else if c = '#' then begin
      (* a pragma line: collect its words up to end of line, keeping
         punctuation as separate words *)
      let stop = try String.index_from src !pos '\n' with Not_found -> n in
      let text = String.sub src !pos (stop - !pos) in
      let words = ref [] in
      let i = ref 0 in
      let m = String.length text in
      while !i < m do
        let ch = text.[!i] in
        if ch = ' ' || ch = '\t' || ch = '#' then incr i
        else if is_ident_start ch || is_digit ch then begin
          let j = ref !i in
          while !j < m && (is_ident text.[!j] || text.[!j] = '.') do
            incr j
          done;
          words := String.sub text !i (!j - !i) :: !words;
          i := !j
        end
        else begin
          words := String.make 1 ch :: !words;
          incr i
        end
      done;
      emit (Pragma (List.rev !words));
      pos := stop
    end
    else if is_digit c then begin
      let j = ref !pos in
      let isfloat = ref false in
      while
        !j < n
        && (is_digit src.[!j] || src.[!j] = '.' || src.[!j] = 'e'
           || src.[!j] = 'E'
           || ((src.[!j] = '+' || src.[!j] = '-')
              && !j > !pos
              && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')))
      do
        if src.[!j] = '.' || src.[!j] = 'e' || src.[!j] = 'E' then
          isfloat := true;
        incr j
      done;
      let text = String.sub src !pos (!j - !pos) in
      (if !isfloat then
         match float_of_string_opt text with
         | Some f -> emit (Float f)
         | None -> fail ("bad number " ^ text)
       else
         match int_of_string_opt text with
         | Some k -> emit (Int k)
         | None -> fail ("bad number " ^ text));
      pos := !j
    end
    else if is_ident_start c then begin
      let j = ref !pos in
      while !j < n && is_ident src.[!j] do
        incr j
      done;
      emit (Ident (String.sub src !pos (!j - !pos)));
      pos := !j
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !pos + l <= n && String.sub src !pos l = p)
          puncts
      in
      match matched with
      | Some p ->
          emit (Punct p);
          pos := !pos + String.length p
      | None -> fail (Printf.sprintf "unexpected character %c" c)
    end
  done;
  emit Eof;
  List.rev !tokens

(* --- parser state -------------------------------------------------------- *)

type state = {
  mutable toks : lexed list;
  mutable params : (string * Ir.param_ty) list;
}

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let advance st =
  match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let fail_at st message =
  raise (Syntax_error { line = (peek st).line; message })

let expect_punct st p =
  match (peek st).token with
  | Punct q when q = p -> advance st
  | _ -> fail_at st (Printf.sprintf "expected %S" p)

let expect_ident st =
  match (peek st).token with
  | Ident name ->
      advance st;
      name
  | _ -> fail_at st "expected an identifier"

let expect_keyword st kw =
  match (peek st).token with
  | Ident name when name = kw -> advance st
  | _ -> fail_at st (Printf.sprintf "expected %S" kw)

let eat_punct st p =
  match (peek st).token with
  | Punct q when q = p ->
      advance st;
      true
  | _ -> false

(* --- expressions: precedence climbing ------------------------------------ *)

let array_kind st name =
  match List.assoc_opt name st.params with
  | Some Ir.P_farray -> `F
  | Some Ir.P_iarray -> `I
  | Some _ -> fail_at st (name ^ " is not an array")
  | None -> fail_at st ("unknown array " ^ name)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while eat_punct st "||" do
    lhs := Ir.Binop (Ir.Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while eat_punct st "&&" do
    lhs := Ir.Binop (Ir.And, !lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).token with
    | Punct "<" -> Some Ir.Lt
    | Punct "<=" -> Some Ir.Le
    | Punct ">" -> Some Ir.Gt
    | Punct ">=" -> Some Ir.Ge
    | Punct "==" -> Some Ir.Eq
    | Punct "!=" -> Some Ir.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ir.Binop (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec go () =
    if eat_punct st "+" then begin
      lhs := Ir.Binop (Ir.Add, !lhs, parse_mul st);
      go ()
    end
    else if eat_punct st "-" then begin
      lhs := Ir.Binop (Ir.Sub, !lhs, parse_mul st);
      go ()
    end
  in
  go ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    if eat_punct st "*" then begin
      lhs := Ir.Binop (Ir.Mul, !lhs, parse_unary st);
      go ()
    end
    else if eat_punct st "/" then begin
      lhs := Ir.Binop (Ir.Div, !lhs, parse_unary st);
      go ()
    end
    else if eat_punct st "%" then begin
      lhs := Ir.Binop (Ir.Mod, !lhs, parse_unary st);
      go ()
    end
  in
  go ();
  !lhs

and parse_unary st =
  if eat_punct st "-" then Ir.Unop (Ir.Neg, parse_unary st)
  else if eat_punct st "!" then Ir.Unop (Ir.Not, parse_unary st)
  else parse_postfix st

and parse_postfix st =
  match (peek st).token with
  | Int n ->
      advance st;
      Ir.Int_lit n
  | Float x ->
      advance st;
      Ir.Float_lit x
  | Punct "(" -> (
      advance st;
      (* a cast or a parenthesized expression *)
      match (peek st).token with
      | Ident "int" ->
          advance st;
          expect_punct st ")";
          Ir.Unop (Ir.To_int, parse_unary st)
      | Ident "double" ->
          advance st;
          expect_punct st ")";
          Ir.Unop (Ir.To_float, parse_unary st)
      | _ ->
          let e = parse_expr st in
          expect_punct st ")";
          e)
  | Ident name -> (
      advance st;
      match (peek st).token with
      | Punct "(" -> (
          advance st;
          let arg1 = parse_expr st in
          let intrinsic1 op =
            expect_punct st ")";
            Ir.Unop (op, arg1)
          in
          match name with
          | "sqrt" -> intrinsic1 Ir.Sqrt
          | "exp" -> intrinsic1 Ir.Exp
          | "log" -> intrinsic1 Ir.Log
          | "fabs" | "abs" -> intrinsic1 Ir.Abs
          | "min" | "max" ->
              expect_punct st ",";
              let arg2 = parse_expr st in
              expect_punct st ")";
              Ir.Binop ((if name = "min" then Ir.Min else Ir.Max), arg1, arg2)
          | _ -> fail_at st ("unknown function " ^ name))
      | Punct "[" ->
          advance st;
          let idx = parse_expr st in
          expect_punct st "]";
          (match array_kind st name with
          | `F -> Ir.Load (name, idx)
          | `I -> Ir.Load_int (name, idx))
      | _ -> Ir.Var name)
  | _ -> fail_at st "expected an expression"

(* --- pragmas -------------------------------------------------------------- *)

type pragma = {
  construct : [ `Dpf | `Parallel_for | `Simd ];
  sched : Ir.schedule;
  reduction : string option;
}

let parse_pragma_words st line words =
  let fail message = raise (Syntax_error { line; message }) in
  let words =
    match words with
    | "pragma" :: "omp" :: rest -> rest
    | _ -> fail "expected #pragma omp ..."
  in
  let construct, rest =
    match words with
    | "teams" :: "distribute" :: "parallel" :: "for" :: rest -> (`Dpf, rest)
    | "parallel" :: "for" :: rest -> (`Parallel_for, rest)
    | "simd" :: rest -> (`Simd, rest)
    | _ -> fail "unsupported pragma (teams distribute parallel for | parallel for | simd)"
  in
  let sched = ref Ir.Sched_static in
  let reduction = ref None in
  let rec clauses = function
    | [] -> ()
    | "schedule" :: "(" :: kind :: "," :: n :: ")" :: rest ->
        (match (kind, int_of_string_opt n) with
        | "static", Some k -> sched := Ir.Sched_chunked k
        | "dynamic", Some k -> sched := Ir.Sched_dynamic k
        | _ -> fail "bad schedule clause");
        clauses rest
    | "schedule" :: "(" :: "static" :: ")" :: rest ->
        sched := Ir.Sched_static;
        clauses rest
    | "reduction" :: "(" :: "+" :: ":" :: acc :: ")" :: rest ->
        reduction := Some acc;
        clauses rest
    | w :: _ -> fail ("unsupported clause " ^ w)
  in
  clauses rest;
  ignore st;
  { construct; sched = !sched; reduction = !reduction }

(* --- statements ------------------------------------------------------------ *)

let rec parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (eat_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_for_header st =
  expect_keyword st "for";
  expect_punct st "(";
  (* optional "int" *)
  (match (peek st).token with
  | Ident "int" -> advance st
  | _ -> ());
  let var = expect_ident st in
  expect_punct st "=";
  let lo = parse_expr st in
  expect_punct st ";";
  let var2 = expect_ident st in
  if var2 <> var then fail_at st "loop condition must test the loop variable";
  expect_punct st "<";
  let hi = parse_expr st in
  expect_punct st ";";
  let var3 = expect_ident st in
  if var3 <> var then fail_at st "loop increment must bump the loop variable";
  expect_punct st "++";
  expect_punct st ")";
  (var, lo, hi)

and parse_stmt st =
  match (peek st).token with
  | Pragma words -> (
      let line = (peek st).line in
      advance st;
      match words with
      | [ "pragma"; "omp"; "atomic" ] -> (
          (* a[e] += e; *)
          let arr = expect_ident st in
          expect_punct st "[";
          let idx = parse_expr st in
          expect_punct st "]";
          expect_punct st "+=";
          let value = parse_expr st in
          expect_punct st ";";
          match array_kind st arr with
          | `F -> Ir.Atomic_add (arr, idx, value)
          | `I -> fail_at st "atomic += supports float arrays")
      | [ "pragma"; "omp"; "barrier" ] -> Ir.Sync
      | _ -> (
          let p = parse_pragma_words st line words in
          let var, lo, hi = parse_for_header st in
          let body = parse_block st in
          match (p.construct, p.reduction) with
          | `Dpf, None ->
              Ir.Distribute_parallel_for
                { loop_var = var; lo; hi; body; fn_id = -1; sched = p.sched }
          | `Parallel_for, None ->
              Ir.Parallel_for
                { loop_var = var; lo; hi; body; fn_id = -1; sched = p.sched }
          | `Simd, None ->
              Ir.Simd
                { loop_var = var; lo; hi; body; fn_id = -1; sched = p.sched }
          | `Simd, Some acc -> (
              (* the body's last statement must be [acc += value;] parsed
                 as an assignment [acc = acc + value] or given via += *)
              match List.rev body with
              | Ir.Assign (a, Ir.Binop (Ir.Add, Ir.Var a', value)) :: prefix
                when a = acc && a' = acc ->
                  Ir.Simd_sum
                    {
                      acc;
                      value;
                      dir =
                        {
                          loop_var = var;
                          lo;
                          hi;
                          body = List.rev prefix;
                          fn_id = -1;
                          sched = p.sched;
                        };
                    }
              | _ ->
                  raise
                    (Syntax_error
                       {
                         line;
                         message =
                           "a reduction simd loop must end with '" ^ acc
                           ^ " += <expr>;'";
                       }))
          | (`Dpf | `Parallel_for), Some _ ->
              raise
                (Syntax_error
                   { line; message = "reduction is only supported on simd" })))
  | Ident "guarded" ->
      advance st;
      Ir.Guarded (parse_block st)
  | Ident "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let then_ = parse_block st in
      let else_ =
        match (peek st).token with
        | Ident "else" ->
            advance st;
            parse_block st
        | _ -> []
      in
      Ir.If (cond, then_, else_)
  | Ident "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      Ir.While (cond, parse_block st)
  | Ident "for" ->
      let var, lo, hi = parse_for_header st in
      Ir.For { var; lo; hi; body = parse_block st }
  | Ident ("int" | "double") ->
      let ty =
        match (peek st).token with
        | Ident "int" -> Ir.Tint
        | _ -> Ir.Tfloat
      in
      advance st;
      let name = expect_ident st in
      expect_punct st "=";
      let init = parse_expr st in
      expect_punct st ";";
      Ir.Decl { name; ty; init }
  | Ident name -> (
      advance st;
      match (peek st).token with
      | Punct "[" -> (
          advance st;
          let idx = parse_expr st in
          expect_punct st "]";
          let kind = array_kind st name in
          if eat_punct st "+=" then begin
            (* sugar: a[e] += v  desugars to a load-add-store *)
            let value = parse_expr st in
            expect_punct st ";";
            match kind with
            | `F ->
                Ir.Store
                  (name, idx, Ir.Binop (Ir.Add, Ir.Load (name, idx), value))
            | `I ->
                Ir.Store_int
                  (name, idx, Ir.Binop (Ir.Add, Ir.Load_int (name, idx), value))
          end
          else begin
            expect_punct st "=";
            let value = parse_expr st in
            expect_punct st ";";
            match kind with
            | `F -> Ir.Store (name, idx, value)
            | `I -> Ir.Store_int (name, idx, value)
          end)
      | Punct "+=" ->
          advance st;
          let value = parse_expr st in
          expect_punct st ";";
          Ir.Assign (name, Ir.Binop (Ir.Add, Ir.Var name, value))
      | Punct "=" ->
          advance st;
          let value = parse_expr st in
          expect_punct st ";";
          Ir.Assign (name, value)
      | _ -> fail_at st "expected an assignment or store")
  | _ -> fail_at st "expected a statement"

(* --- kernel --------------------------------------------------------------- *)

let parse_param st =
  match (peek st).token with
  | Ident "double" ->
      advance st;
      if eat_punct st "*" then
        { Ir.pname = expect_ident st; pty = Ir.P_farray }
      else { Ir.pname = expect_ident st; pty = Ir.P_float }
  | Ident "int" ->
      advance st;
      if eat_punct st "*" then
        { Ir.pname = expect_ident st; pty = Ir.P_iarray }
      else { Ir.pname = expect_ident st; pty = Ir.P_int }
  | _ -> fail_at st "expected a parameter type (int/double, * for arrays)"

let kernel src =
  let st = { toks = lex src; params = [] } in
  (match (peek st).token with
  | Ident ("kernel" | "void") -> advance st
  | _ -> fail_at st "expected 'kernel' (or 'void')");
  let name = expect_ident st in
  expect_punct st "(";
  let params = ref [] in
  if not (eat_punct st ")") then begin
    let rec more () =
      params := parse_param st :: !params;
      if eat_punct st "," then more () else expect_punct st ")"
    in
    more ()
  end;
  let params = List.rev !params in
  st.params <- List.map (fun (p : Ir.param) -> (p.Ir.pname, p.Ir.pty)) params;
  let body = parse_block st in
  (match (peek st).token with
  | Eof -> ()
  | _ -> fail_at st "trailing input after the kernel");
  Ir.kernel ~name ~params body

let kernel_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> kernel (really_input_string ic (in_channel_length ic)))
