(** The IR evaluator — the stand-in for the machine code Clang would have
    generated.  It executes an outlined program on the simulated GPU
    through the device runtime: sequential statements run per-thread
    (redundantly under SPMD, on main threads under generic mode, exactly
    as the runtime dictates), worksharing directives call into
    {!Omprt.Parallel}, {!Omprt.Workshare} and {!Omprt.Simd} with the
    outlined bodies and their captured payloads, and every operation
    charges its simulated cost (ALU/FPU ticks, memory accounting through
    {!Gpusim.Memory}). *)

exception Error of string
(** Runtime type or binding failure — {!Check.kernel} accepts exactly the
    kernels that cannot raise this. *)

type binding =
  | B_farr of Gpusim.Memory.farray
  | B_iarr of Gpusim.Memory.iarray
  | B_int of int
  | B_float of float

type value = V_int of int | V_float of float
(** Runtime scalar values, shared with the staged evaluator
    ({!Compile}) so the two engines are differentially comparable. *)

type options = {
  num_teams : int;
  num_threads : int;
  teams_mode : Omprt.Mode.t;
  parallel_mode : [ `Auto | `Force of Omprt.Mode.t ];
      (** [`Auto] uses the {!Spmdize} analysis per region *)
  simd_len : int;
  sharing_bytes : int;
}

val default_options : options
(** 2 teams x 64 threads, SPMD teams, [`Auto] parallel, simdlen 8. *)

val run :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  options:options ->
  bindings:(string * binding) list ->
  Outline.program ->
  Gpusim.Device.report
(** Launch the kernel.  Every parameter must be bound with the matching
    kind.  @raise Error on binding mismatches. *)
