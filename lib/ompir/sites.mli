(** Sanitizer site labels for IR memory accesses.

    Shared by both evaluation engines so that a given access site is
    registered under an identical label string — sanitizer reports are
    compared textually across engines.  Each function interns a label of
    the form ["store a[i + 1]"] in {!Gpusim.Ompsan}'s site registry and
    returns the site id. *)

val load : string -> Ir.expr -> int
(** [load arr idx] registers ["load arr[<idx>]"]. *)

val store : string -> Ir.expr -> int
(** [store arr idx] registers ["store arr[<idx>]"]. *)

val atomic : string -> Ir.expr -> int
(** [atomic arr idx] registers ["atomic arr[<idx>]"]. *)
