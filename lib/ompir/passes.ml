type pass = { name : string; transform : Ir.kernel -> Ir.kernel }

let fold = { name = "fold"; transform = Fold.kernel }

(* --- dead code elimination ---------------------------------------------- *)

module Names = Set.Make (String)

let rec expr_reads acc (e : Ir.expr) =
  match e with
  | Ir.Var name -> Names.add name acc
  | Ir.Int_lit _ | Ir.Float_lit _ -> acc
  | Ir.Binop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ir.Unop (_, a) -> expr_reads acc a
  | Ir.Load (_, idx) | Ir.Load_int (_, idx) -> expr_reads acc idx

(* All scalar reads anywhere in a statement list. *)
let stmt_list_reads body =
  let rec go acc stmts = List.fold_left stmt acc stmts
  and stmt acc (s : Ir.stmt) =
    match s with
    | Ir.Decl { init; _ } -> expr_reads acc init
    | Ir.Assign (_, e) -> expr_reads acc e
    | Ir.Store (_, idx, v) | Ir.Store_int (_, idx, v) | Ir.Atomic_add (_, idx, v)
      ->
        expr_reads (expr_reads acc idx) v
    | Ir.If (c, a, b) -> go (go (expr_reads acc c) a) b
    | Ir.While (c, b) -> go (expr_reads acc c) b
    | Ir.For { lo; hi; body; _ } ->
        go (expr_reads (expr_reads acc lo) hi) body
    | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
        go (expr_reads (expr_reads acc d.Ir.lo) d.Ir.hi) d.Ir.body
    | Ir.Simd_sum { acc = red_acc; value; dir } ->
        (* the accumulator is written, not read, but keep it: removing the
           decl would orphan the reduction *)
        let acc = Names.add red_acc acc in
        go (expr_reads (expr_reads (expr_reads acc value) dir.Ir.lo) dir.Ir.hi)
          dir.Ir.body
    | Ir.Guarded body -> go acc body
    | Ir.Sync -> acc
  in
  go Names.empty body

(* Remove Decls and Assigns of scalars that no later statement reads.
   Conservative: a name read anywhere in the enclosing body (even before
   the site) keeps it — loops make flow-sensitive liveness subtle and the
   win does not justify it here. *)
let rec dce_body body =
  let reads = stmt_list_reads body in
  body
  |> List.filter_map (fun (s : Ir.stmt) ->
         match s with
         | Ir.Decl { name; init; _ }
           when (not (Names.mem name reads)) && Fold.is_pure init ->
             None
         | Ir.Assign (name, e)
           when (not (Names.mem name reads)) && Fold.is_pure e ->
             None
         | Ir.If (c, a, b) -> Some (Ir.If (c, dce_body a, dce_body b))
         | Ir.While (c, b) -> Some (Ir.While (c, dce_body b))
         | Ir.For { var; lo; hi; body } ->
             Some (Ir.For { var; lo; hi; body = dce_body body })
         | Ir.Distribute_parallel_for d ->
             Some (Ir.Distribute_parallel_for { d with Ir.body = dce_body d.Ir.body })
         | Ir.Parallel_for d ->
             Some (Ir.Parallel_for { d with Ir.body = dce_body d.Ir.body })
         | Ir.Simd d -> Some (Ir.Simd { d with Ir.body = dce_body d.Ir.body })
         | Ir.Simd_sum { acc; value; dir } ->
             Some
               (Ir.Simd_sum
                  { acc; value; dir = { dir with Ir.body = dce_body dir.Ir.body } })
         | Ir.Guarded b -> Some (Ir.Guarded (dce_body b))
         | s -> Some s)

let dce =
  {
    name = "dce";
    transform = (fun k -> { k with Ir.body = dce_body k.Ir.body });
  }

(* --- simd unrolling ------------------------------------------------------ *)

(* Unrolling replicates the body as region code, so it is only sound for
   bodies whose replicas are idempotent under SPMD's redundant execution:
   atomics are out. *)
let rec has_atomic body =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Atomic_add _ -> true
      | Ir.If (_, a, b) -> has_atomic a || has_atomic b
      | Ir.While (_, b) | Ir.For { body = b; _ } | Ir.Guarded b -> has_atomic b
      | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
          has_atomic d.Ir.body
      | Ir.Simd_sum { dir; _ } -> has_atomic dir.Ir.body
      | Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Sync ->
          false)
    body

(* Freshen the body's declarations per replica so replicas do not collide
   in one scope. *)
let rename_decls ~suffix body =
  let decls =
    List.filter_map
      (function Ir.Decl { name; _ } -> Some name | _ -> None)
      body
  in
  List.fold_left
    (fun body name ->
      let fresh = name ^ suffix in
      Subst.stmts ~var:name ~by:(Ir.Var fresh)
        (List.map
           (fun (s : Ir.stmt) ->
             match s with
             | Ir.Decl { name = n; ty; init } when n = name ->
                 Ir.Decl { name = fresh; ty; init }
             | s -> s)
           body))
    body decls

let unroll ?(max_trip = 8) () =
  let rec stmts body = List.concat_map stmt body
  and stmt (s : Ir.stmt) =
    match s with
    | Ir.Simd d -> (
        match (d.Ir.lo, d.Ir.hi) with
        | Ir.Int_lit lo, Ir.Int_lit hi
          when hi - lo >= 1 && hi - lo <= max_trip
               && not (has_atomic d.Ir.body) ->
            List.concat_map
              (fun iv ->
                let body = stmts d.Ir.body in
                let body = rename_decls ~suffix:(Printf.sprintf "__u%d" iv) body in
                Subst.stmts ~var:d.Ir.loop_var ~by:(Ir.Int_lit iv) body)
              (List.init (hi - lo) (fun k -> lo + k))
        | _ -> [ Ir.Simd { d with Ir.body = stmts d.Ir.body } ])
    | Ir.If (c, a, b) -> [ Ir.If (c, stmts a, stmts b) ]
    | Ir.While (c, b) -> [ Ir.While (c, stmts b) ]
    | Ir.For { var; lo; hi; body } -> [ Ir.For { var; lo; hi; body = stmts body } ]
    | Ir.Distribute_parallel_for d ->
        [ Ir.Distribute_parallel_for { d with Ir.body = stmts d.Ir.body } ]
    | Ir.Parallel_for d -> [ Ir.Parallel_for { d with Ir.body = stmts d.Ir.body } ]
    | Ir.Guarded b -> [ Ir.Guarded (stmts b) ]
    | (Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _
      | Ir.Simd_sum _ | Ir.Sync) as s ->
        [ s ]
  in
  {
    name = Printf.sprintf "unroll(%d)" max_trip;
    transform = (fun k -> { k with Ir.body = stmts k.Ir.body });
  }

let default_pipeline = [ fold; dce ]

let run passes kernel =
  List.fold_left (fun k p -> p.transform k) kernel passes

let run_verified passes kernel =
  List.fold_left
    (fun acc p ->
      match acc with
      | Error _ as e -> e
      | Ok k -> (
          let k = p.transform k in
          match Check.kernel k with
          | Ok () -> Ok k
          | Error es -> Error (p.name, es)))
    (Ok kernel) passes
