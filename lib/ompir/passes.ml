type pass = { name : string; transform : Ir.kernel -> Ir.kernel }

let fold = { name = "fold"; transform = Fold.kernel }

(* --- dead code elimination ---------------------------------------------- *)

module Names = Set.Make (String)

let rec expr_reads acc (e : Ir.expr) =
  match e with
  | Ir.Var name -> Names.add name acc
  | Ir.Int_lit _ | Ir.Float_lit _ -> acc
  | Ir.Binop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ir.Unop (_, a) -> expr_reads acc a
  | Ir.Load (_, idx) | Ir.Load_int (_, idx) -> expr_reads acc idx

(* All scalar reads anywhere in a statement list. *)
let stmt_list_reads body =
  let rec go acc stmts = List.fold_left stmt acc stmts
  and stmt acc (s : Ir.stmt) =
    match s with
    | Ir.Decl { init; _ } -> expr_reads acc init
    | Ir.Assign (_, e) -> expr_reads acc e
    | Ir.Store (_, idx, v) | Ir.Store_int (_, idx, v) | Ir.Atomic_add (_, idx, v)
      ->
        expr_reads (expr_reads acc idx) v
    | Ir.If (c, a, b) -> go (go (expr_reads acc c) a) b
    | Ir.While (c, b) -> go (expr_reads acc c) b
    | Ir.For { lo; hi; body; _ } ->
        go (expr_reads (expr_reads acc lo) hi) body
    | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
        go (expr_reads (expr_reads acc d.Ir.lo) d.Ir.hi) d.Ir.body
    | Ir.Simd_sum { acc = red_acc; value; dir } ->
        (* the accumulator is written, not read, but keep it: removing the
           decl would orphan the reduction *)
        let acc = Names.add red_acc acc in
        go (expr_reads (expr_reads (expr_reads acc value) dir.Ir.lo) dir.Ir.hi)
          dir.Ir.body
    | Ir.Guarded body -> go acc body
    | Ir.Sync -> acc
  in
  go Names.empty body

(* Remove Decls and Assigns of scalars that no later statement reads.
   Conservative: a name read anywhere in the enclosing body (even before
   the site) keeps it — loops make flow-sensitive liveness subtle and the
   win does not justify it here. *)
let rec dce_body body =
  let reads = stmt_list_reads body in
  body
  |> List.filter_map (fun (s : Ir.stmt) ->
         match s with
         | Ir.Decl { name; init; _ }
           when (not (Names.mem name reads)) && Fold.is_pure init ->
             None
         | Ir.Assign (name, e)
           when (not (Names.mem name reads)) && Fold.is_pure e ->
             None
         | Ir.If (c, a, b) -> Some (Ir.If (c, dce_body a, dce_body b))
         | Ir.While (c, b) -> Some (Ir.While (c, dce_body b))
         | Ir.For { var; lo; hi; body } ->
             Some (Ir.For { var; lo; hi; body = dce_body body })
         | Ir.Distribute_parallel_for d ->
             Some (Ir.Distribute_parallel_for { d with Ir.body = dce_body d.Ir.body })
         | Ir.Parallel_for d ->
             Some (Ir.Parallel_for { d with Ir.body = dce_body d.Ir.body })
         | Ir.Simd d -> Some (Ir.Simd { d with Ir.body = dce_body d.Ir.body })
         | Ir.Simd_sum { acc; value; dir } ->
             Some
               (Ir.Simd_sum
                  { acc; value; dir = { dir with Ir.body = dce_body dir.Ir.body } })
         | Ir.Guarded b -> Some (Ir.Guarded (dce_body b))
         | s -> Some s)

let dce =
  {
    name = "dce";
    transform = (fun k -> { k with Ir.body = dce_body k.Ir.body });
  }

(* --- simd unrolling ------------------------------------------------------ *)

(* Unrolling replicates the body as region code, so it is only sound for
   bodies whose replicas are idempotent under SPMD's redundant execution:
   atomics are out. *)
let rec has_atomic body =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Atomic_add _ -> true
      | Ir.If (_, a, b) -> has_atomic a || has_atomic b
      | Ir.While (_, b) | Ir.For { body = b; _ } | Ir.Guarded b -> has_atomic b
      | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
          has_atomic d.Ir.body
      | Ir.Simd_sum { dir; _ } -> has_atomic dir.Ir.body
      | Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Sync ->
          false)
    body

(* Freshen the body's declarations per replica so replicas do not collide
   in one scope. *)
let rename_decls ~suffix body =
  let decls =
    List.filter_map
      (function Ir.Decl { name; _ } -> Some name | _ -> None)
      body
  in
  List.fold_left
    (fun body name ->
      let fresh = name ^ suffix in
      Subst.stmts ~var:name ~by:(Ir.Var fresh)
        (List.map
           (fun (s : Ir.stmt) ->
             match s with
             | Ir.Decl { name = n; ty; init } when n = name ->
                 Ir.Decl { name = fresh; ty; init }
             | s -> s)
           body))
    body decls

(* --- targeting mini-language -------------------------------------------- *)

(* OptiTrust-style loop addressing: a transform applies to every loop
   ([T_all]), to loops with a given induction variable ([T_var]), or to
   the [n]th loop in pre-order ([T_nth], 0-based).  Positions count every
   For / Parallel_for / Distribute_parallel_for / Simd / Simd_sum header
   in pre-order; replacement statements are not revisited, so a transform
   that rewrites loop [n] leaves later positions stable. *)
type target = T_all | T_var of string | T_nth of int

let hits target ~pos ~var =
  match target with
  | T_all -> true
  | T_var v -> String.equal v var
  | T_nth n -> pos = n

(* Pre-order loop walker: [f ~pos ~var stmt] returns [Some replacement]
   to rewrite the loop (children of the replacement are not revisited) or
   [None] to descend.  The position counter threads through the whole
   kernel body. *)
let map_loops f body =
  let pos = ref (-1) in
  let rec stmts body = List.concat_map stmt body
  and dir (d : Ir.loop_directive) = { d with Ir.body = stmts d.Ir.body }
  and stmt (s : Ir.stmt) =
    match s with
    | Ir.For { var; _ }
    | Ir.Distribute_parallel_for { Ir.loop_var = var; _ }
    | Ir.Parallel_for { Ir.loop_var = var; _ }
    | Ir.Simd { Ir.loop_var = var; _ }
    | Ir.Simd_sum { dir = { Ir.loop_var = var; _ }; _ } -> (
        incr pos;
        match f ~pos:!pos ~var s with
        | Some replacement -> replacement
        | None -> (
            match s with
            | Ir.For { var; lo; hi; body } ->
                [ Ir.For { var; lo; hi; body = stmts body } ]
            | Ir.Distribute_parallel_for d ->
                [ Ir.Distribute_parallel_for (dir d) ]
            | Ir.Parallel_for d -> [ Ir.Parallel_for (dir d) ]
            | Ir.Simd d -> [ Ir.Simd (dir d) ]
            | Ir.Simd_sum { acc; value; dir = d } ->
                [ Ir.Simd_sum { acc; value; dir = dir d } ]
            | _ -> assert false))
    | Ir.If (c, a, b) -> [ Ir.If (c, stmts a, stmts b) ]
    | Ir.While (c, b) -> [ Ir.While (c, stmts b) ]
    | Ir.Guarded b -> [ Ir.Guarded (stmts b) ]
    | (Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _
      | Ir.Sync) as s ->
        [ s ]
  in
  stmts body

(* --- shared analyses ----------------------------------------------------- *)

(* Scalars assigned anywhere in a body (Assign targets and Simd_sum
   accumulators; Decls are bindings, not mutations). *)
let rec mutated_in acc body =
  List.fold_left
    (fun acc (s : Ir.stmt) ->
      match s with
      | Ir.Assign (name, _) -> Names.add name acc
      | Ir.If (_, a, b) -> mutated_in (mutated_in acc a) b
      | Ir.While (_, b) | Ir.For { body = b; _ } | Ir.Guarded b ->
          mutated_in acc b
      | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
          mutated_in acc d.Ir.body
      | Ir.Simd_sum { acc = red; dir; _ } ->
          mutated_in (Names.add red acc) dir.Ir.body
      | Ir.Decl _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _ | Ir.Sync ->
          acc)
    acc body

(* Array names read / written anywhere in a body (atomics count as both). *)
let array_rw body =
  let rec expr (r, w) (e : Ir.expr) =
    match e with
    | Ir.Load (a, idx) | Ir.Load_int (a, idx) -> expr (Names.add a r, w) idx
    | Ir.Binop (_, x, y) -> expr (expr (r, w) x) y
    | Ir.Unop (_, x) -> expr (r, w) x
    | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> (r, w)
  in
  let rec go acc body = List.fold_left stmt acc body
  and stmt acc (s : Ir.stmt) =
    match s with
    | Ir.Decl { init; _ } -> expr acc init
    | Ir.Assign (_, e) -> expr acc e
    | Ir.Store (a, idx, v) | Ir.Store_int (a, idx, v) ->
        let r, w = expr (expr acc idx) v in
        (r, Names.add a w)
    | Ir.Atomic_add (a, idx, v) ->
        let r, w = expr (expr acc idx) v in
        (Names.add a r, Names.add a w)
    | Ir.If (c, a, b) -> go (go (expr acc c) a) b
    | Ir.While (c, b) -> go (expr acc c) b
    | Ir.For { lo; hi; body; _ } -> go (expr (expr acc lo) hi) body
    | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
        go (expr (expr acc d.Ir.lo) d.Ir.hi) d.Ir.body
    | Ir.Simd_sum { value; dir; _ } ->
        go (expr (expr (expr acc value) dir.Ir.lo) dir.Ir.hi) dir.Ir.body
    | Ir.Guarded b -> go acc b
    | Ir.Sync -> acc
  in
  go (Names.empty, Names.empty) body

let rec contains_sync body =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Sync -> true
      | Ir.If (_, a, b) -> contains_sync a || contains_sync b
      | Ir.While (_, b) | Ir.For { body = b; _ } | Ir.Guarded b ->
          contains_sync b
      | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
          contains_sync d.Ir.body
      | Ir.Simd_sum { dir; _ } -> contains_sync dir.Ir.body
      | Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _
      | Ir.Atomic_add _ ->
          false)
    body

(* Assignments to scalars not declared inside the body itself — the
   writes a transform must not duplicate or reorder.  Scope tracking
   mirrors {!Subst}: a Decl binds the rest of its list, loop variables
   bind their bodies, Guarded is scope-transparent.  Simd_sum's
   accumulator counts as an assignment when bound outside. *)
let free_assigns body =
  let rec go bound acc body =
    let _, acc =
      List.fold_left (fun (bound, acc) s -> stmt bound acc s) (bound, acc) body
    in
    acc
  and stmt bound acc (s : Ir.stmt) =
    match s with
    | Ir.Decl { name; _ } -> (Names.add name bound, acc)
    | Ir.Assign (name, _) ->
        (bound, if Names.mem name bound then acc else Names.add name acc)
    | Ir.If (_, a, b) -> (bound, go bound (go bound acc a) b)
    | Ir.While (_, b) -> (bound, go bound acc b)
    | Ir.For { var; body = b; _ } -> (bound, go (Names.add var bound) acc b)
    | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
        (bound, go (Names.add d.Ir.loop_var bound) acc d.Ir.body)
    | Ir.Simd_sum { acc = red; dir; _ } ->
        let acc = if Names.mem red bound then acc else Names.add red acc in
        (bound, go (Names.add dir.Ir.loop_var bound) acc dir.Ir.body)
    | Ir.Guarded b ->
        List.fold_left (fun (bound, acc) s -> stmt bound acc s) (bound, acc) b
    | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _ | Ir.Sync -> (bound, acc)
  in
  go Names.empty Names.empty body

let top_decl_names body =
  List.fold_left
    (fun acc (s : Ir.stmt) ->
      match s with Ir.Decl { name; _ } -> Names.add name acc | _ -> acc)
    Names.empty body

(* Safe to evaluate speculatively (hoist out of a possibly-zero-trip
   loop): no division or modulo except by a provably nonzero literal,
   and — unless [loads] — no array accesses (an out-of-loop load could
   read an index the loop would never have touched). *)
let rec trap_free ~loads (e : Ir.expr) =
  match e with
  | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> true
  | Ir.Binop ((Ir.Div | Ir.Mod), a, b) ->
      (match b with
      | Ir.Int_lit n -> n <> 0
      | Ir.Float_lit f -> f <> 0.0
      | _ -> false)
      && trap_free ~loads a
  | Ir.Binop (_, a, b) -> trap_free ~loads a && trap_free ~loads b
  | Ir.Unop (_, a) -> trap_free ~loads a
  | Ir.Load (_, idx) | Ir.Load_int (_, idx) -> loads && trap_free ~loads idx

(* Invariant in a loop body: reads no scalar in [mutated] (pass the
   body's mutated set plus the loop variable). *)
let invariant_in ~mutated e =
  Names.is_empty (Names.inter (expr_reads Names.empty e) mutated)

(* Every name appearing anywhere in a kernel, for capture-free freshening. *)
let all_names (k : Ir.kernel) =
  let rec expr acc (e : Ir.expr) =
    match e with
    | Ir.Var n -> Names.add n acc
    | Ir.Load (a, idx) | Ir.Load_int (a, idx) -> expr (Names.add a acc) idx
    | Ir.Binop (_, x, y) -> expr (expr acc x) y
    | Ir.Unop (_, x) -> expr acc x
    | Ir.Int_lit _ | Ir.Float_lit _ -> acc
  in
  let rec go acc body = List.fold_left stmt acc body
  and stmt acc (s : Ir.stmt) =
    match s with
    | Ir.Decl { name; init; _ } -> expr (Names.add name acc) init
    | Ir.Assign (n, e) -> expr (Names.add n acc) e
    | Ir.Store (a, i, v) | Ir.Store_int (a, i, v) | Ir.Atomic_add (a, i, v) ->
        expr (expr (Names.add a acc) i) v
    | Ir.If (c, a, b) -> go (go (expr acc c) a) b
    | Ir.While (c, b) -> go (expr acc c) b
    | Ir.For { var; lo; hi; body } ->
        go (expr (expr (Names.add var acc) lo) hi) body
    | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
        go (expr (expr (Names.add d.Ir.loop_var acc) d.Ir.lo) d.Ir.hi) d.Ir.body
    | Ir.Simd_sum { acc = red; value; dir } ->
        go
          (expr
             (expr
                (expr (Names.add red (Names.add dir.Ir.loop_var acc)) value)
                dir.Ir.lo)
             dir.Ir.hi)
          dir.Ir.body
    | Ir.Guarded b -> go acc b
    | Ir.Sync -> acc
  in
  let acc =
    List.fold_left
      (fun acc (p : Ir.param) -> Names.add p.Ir.pname acc)
      Names.empty k.Ir.params
  in
  go acc k.Ir.body

(* First-unused-index fresh-name generator over a kernel's name universe. *)
let freshener k =
  let used = ref (all_names k) in
  fun base ->
    let rec try_i i =
      let cand = Printf.sprintf "%s__%d" base i in
      if Names.mem cand !used then try_i (i + 1)
      else begin
        used := Names.add cand !used;
        cand
      end
    in
    if Names.mem base !used then try_i 0
    else begin
      used := Names.add base !used;
      base
    end

(* Map [f] over every expression in a statement list, stopping — exactly
   like {!Subst.stmts} — at sites that rebind [var]: a Decl of [var]
   shadows the rest of the list, a loop over [var] shadows its body,
   Guarded is scope-transparent. *)
let map_exprs_shadow ~var f stmts0 =
  let rec go = function
    | [] -> []
    | s :: rest -> (
        match (s : Ir.stmt) with
        | Ir.Decl { name; ty; init } ->
            let s' = Ir.Decl { name; ty; init = f init } in
            if String.equal name var then s' :: rest else s' :: go rest
        | Ir.Assign (n, e) -> Ir.Assign (n, f e) :: go rest
        | Ir.Store (a, i, v) -> Ir.Store (a, f i, f v) :: go rest
        | Ir.Store_int (a, i, v) -> Ir.Store_int (a, f i, f v) :: go rest
        | Ir.Atomic_add (a, i, v) -> Ir.Atomic_add (a, f i, f v) :: go rest
        | Ir.If (c, a, b) -> Ir.If (f c, go a, go b) :: go rest
        | Ir.While (c, b) -> Ir.While (f c, go b) :: go rest
        | Ir.For { var = v; lo; hi; body } ->
            let body = if String.equal v var then body else go body in
            Ir.For { var = v; lo = f lo; hi = f hi; body } :: go rest
        | Ir.Distribute_parallel_for d ->
            Ir.Distribute_parallel_for (dir d) :: go rest
        | Ir.Parallel_for d -> Ir.Parallel_for (dir d) :: go rest
        | Ir.Simd d -> Ir.Simd (dir d) :: go rest
        | Ir.Simd_sum { acc; value; dir = d } ->
            let value =
              if String.equal d.Ir.loop_var var then value else f value
            in
            Ir.Simd_sum { acc; value; dir = dir d } :: go rest
        | Ir.Guarded b -> Ir.Guarded (go b) :: go rest
        | Ir.Sync -> Ir.Sync :: go rest)
  and dir (d : Ir.loop_directive) =
    let body =
      if String.equal d.Ir.loop_var var then d.Ir.body else go d.Ir.body
    in
    { d with Ir.lo = f d.Ir.lo; Ir.hi = f d.Ir.hi; Ir.body = body }
  in
  go stmts0

let rec fixpoint n f k =
  if n <= 0 then k
  else
    let k' = f k in
    if k' = k then k else fixpoint (n - 1) f k'

(* --- racecheck-preserving combinator ------------------------------------- *)

(* No pass may introduce a may-race finding: run the static racecheck on
   both sides and revert the transform unless the transformed kernel's
   finding set (compared as rendered strings) is a subset of the
   original's.  De-collapsing and strength reduction can defeat the
   conservative dependence analysis and surface pre-existing findings;
   reverting in that case keeps the invariant by construction. *)
let preserving name transform =
  let transform k =
    let k' = transform k in
    if k' = k then k
    else
      let strings kk =
        List.fold_left
          (fun acc f -> Names.add (Racecheck.finding_to_string f) acc)
          Names.empty
          (Racecheck.check_kernel kk)
      in
      if Names.subset (strings k') (strings k) then k' else k
  in
  { name; transform }

let unroll ?(max_trip = 8) ?simd_trip ?(target = T_all) () =
  (* Simd replication rewrites parallel structure — the loop's lanes
     become straight region code, changing SPMD verdicts and hiding the
     loop from the sanitizers — so it keeps its own small limit and the
     default pipeline turns it off entirely ([simd_trip = 0]); explicit
     OMPSIMD_PASSES specs get the historical cap. *)
  let simd_trip = match simd_trip with Some n -> n | None -> min max_trip 8 in
  let transform (k : Ir.kernel) =
    let pos = ref (-1) in
    let replicate ~loop_var body (lo, hi) =
      List.concat_map
        (fun iv ->
          let body = rename_decls ~suffix:(Printf.sprintf "__u%d" iv) body in
          Subst.stmts ~var:loop_var ~by:(Ir.Int_lit iv) body)
        (List.init (hi - lo) (fun k -> lo + k))
    in
    let rec stmts body = List.concat_map stmt body
    and stmt (s : Ir.stmt) =
      match s with
      | Ir.Simd d -> (
          incr pos;
          let on = hits target ~pos:!pos ~var:d.Ir.loop_var in
          let body = stmts d.Ir.body in
          (* Unrolled simd replicas become region code every lane runs:
             atomic replicas would multiply their updates — decline. *)
          match (d.Ir.lo, d.Ir.hi) with
          | Ir.Int_lit lo, Ir.Int_lit hi
            when on && hi - lo >= 1 && hi - lo <= simd_trip
                 && not (has_atomic body) ->
              replicate ~loop_var:d.Ir.loop_var body (lo, hi)
          | _ -> [ Ir.Simd { d with Ir.body = body } ])
      | Ir.For { var; lo; hi; body } -> (
          incr pos;
          let on = hits target ~pos:!pos ~var in
          let body = stmts body in
          (* Sequential replication is exact, atomics included — this is
             what makes collapse-produced literal inner loops unrollable. *)
          match (lo, hi) with
          | Ir.Int_lit l, Ir.Int_lit h
            when on && h - l >= 1 && h - l <= max_trip ->
              replicate ~loop_var:var body (l, h)
          | _ -> [ Ir.For { var; lo; hi; body } ])
      | Ir.If (c, a, b) -> [ Ir.If (c, stmts a, stmts b) ]
      | Ir.While (c, b) -> [ Ir.While (c, stmts b) ]
      | Ir.Distribute_parallel_for d ->
          incr pos;
          [ Ir.Distribute_parallel_for { d with Ir.body = stmts d.Ir.body } ]
      | Ir.Parallel_for d ->
          incr pos;
          [ Ir.Parallel_for { d with Ir.body = stmts d.Ir.body } ]
      | Ir.Simd_sum { acc; value; dir } ->
          incr pos;
          [ Ir.Simd_sum { acc; value; dir = { dir with Ir.body = stmts dir.Ir.body } } ]
      | Ir.Guarded b -> [ Ir.Guarded (stmts b) ]
      | (Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _
        | Ir.Sync) as s ->
          [ s ]
    in
    { k with Ir.body = stmts k.Ir.body }
  in
  { name = Printf.sprintf "unroll(%d)" max_trip; transform }

(* --- loop-invariant code motion ------------------------------------------ *)

let rec load_arrays acc (e : Ir.expr) =
  match e with
  | Ir.Load (a, idx) | Ir.Load_int (a, idx) -> load_arrays (Names.add a acc) idx
  | Ir.Binop (_, x, y) -> load_arrays (load_arrays acc x) y
  | Ir.Unop (_, x) -> load_arrays acc x
  | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> acc

(* Hoist top-level Decls whose initializer is invariant in the loop out in
   front of it, under a fresh name (the loop's scope may already have the
   original).  Loads hoist only when the trip count is provably positive —
   speculating a load a zero-trip loop never performs could touch an index
   the program never meant to.  A few rounds of the whole-kernel rewrite
   hoist chains of dependent decls and multi-level nests. *)
let licm ?(target = T_all) () =
  let transform (k : Ir.kernel) =
    let fresh = freshener k in
    let hoist_from ~var ~lo ~hi body =
      let trip_positive =
        match (Fold.expr lo, Fold.expr hi) with
        | Ir.Int_lit l, Ir.Int_lit h -> h > l
        | _ -> false
      in
      let muts = Names.add var (mutated_in Names.empty body) in
      let _, written = array_rw body in
      let binds = top_decl_names body in
      let hoistable name init =
        let reads = expr_reads Names.empty init in
        Names.is_empty
          (Names.inter reads (Names.union muts (Names.remove name binds)))
        && (not (Names.mem name muts))
        && trap_free ~loads:trip_positive init
        && Names.is_empty (Names.inter (load_arrays Names.empty init) written)
      in
      let hoisted, rest =
        List.partition_map
          (fun (s : Ir.stmt) ->
            match s with
            | Ir.Decl { name; ty; init } when hoistable name init ->
                Left (name, ty, init)
            | s -> Right s)
          body
      in
      if hoisted = [] then None
      else
        let decls, rest =
          List.fold_left
            (fun (ds, b) (name, ty, init) ->
              let fresh_name = fresh name in
              ( Ir.Decl { name = fresh_name; ty; init } :: ds,
                Subst.stmts ~var:name ~by:(Ir.Var fresh_name) b ))
            ([], rest) hoisted
        in
        Some (List.rev decls, rest)
    in
    let body =
      map_loops
        (fun ~pos ~var s ->
          if not (hits target ~pos ~var) then None
          else
            let rebuild (d : Ir.loop_directive) body = { d with Ir.body = body } in
            match s with
            | Ir.For { var; lo; hi; body } -> (
                match hoist_from ~var ~lo ~hi body with
                | None -> None
                | Some (decls, body) ->
                    Some (decls @ [ Ir.For { var; lo; hi; body } ]))
            | Ir.Simd d -> (
                match hoist_from ~var:d.Ir.loop_var ~lo:d.Ir.lo ~hi:d.Ir.hi d.Ir.body with
                | None -> None
                | Some (decls, body) -> Some (decls @ [ Ir.Simd (rebuild d body) ]))
            | Ir.Parallel_for d -> (
                match hoist_from ~var:d.Ir.loop_var ~lo:d.Ir.lo ~hi:d.Ir.hi d.Ir.body with
                | None -> None
                | Some (decls, body) ->
                    Some (decls @ [ Ir.Parallel_for (rebuild d body) ]))
            | Ir.Distribute_parallel_for d -> (
                match hoist_from ~var:d.Ir.loop_var ~lo:d.Ir.lo ~hi:d.Ir.hi d.Ir.body with
                | None -> None
                | Some (decls, body) ->
                    Some (decls @ [ Ir.Distribute_parallel_for (rebuild d body) ]))
            | _ -> None)
        k.Ir.body
    in
    { k with Ir.body = body }
  in
  preserving "licm" (fun k -> fixpoint 3 transform k)

(* --- strength reduction --------------------------------------------------- *)

(* Rewrite [i * stride] recurrences in sequential loops into an
   accumulator initialized to [lo * stride] and bumped by [stride] at the
   end of each iteration — the index-math half of the classic transform.
   Restricted to integer strides (a literal, or an integer parameter) so
   the rewrite is bit-exact; floats would trade a multiplication for a
   rounding-divergent addition chain. *)
let strength_reduce ?(target = T_all) () =
  let transform (k : Ir.kernel) =
    let fresh = freshener k in
    let param_ints =
      List.fold_left
        (fun acc (p : Ir.param) ->
          match p.Ir.pty with
          | Ir.P_int -> Names.add p.Ir.pname acc
          | _ -> acc)
        Names.empty k.Ir.params
    in
    let ok_stride (e : Ir.expr) =
      match e with
      | Ir.Int_lit n -> n <> 0 && n <> 1
      | Ir.Var v -> Names.mem v param_ints
      | _ -> false
    in
    (* every [i * stride] / [stride * i] with an eligible stride *)
    let rec collect_expr i acc (e : Ir.expr) =
      let acc =
        match e with
        | Ir.Binop (Ir.Mul, Ir.Var v, s) when String.equal v i && ok_stride s ->
            if List.mem s acc then acc else s :: acc
        | Ir.Binop (Ir.Mul, s, Ir.Var v) when String.equal v i && ok_stride s ->
            if List.mem s acc then acc else s :: acc
        | _ -> acc
      in
      match e with
      | Ir.Binop (_, a, b) -> collect_expr i (collect_expr i acc a) b
      | Ir.Unop (_, a) | Ir.Load (_, a) | Ir.Load_int (_, a) ->
          collect_expr i acc a
      | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> acc
    in
    let rec collect_body i acc body = List.fold_left (collect_stmt i) acc body
    and collect_stmt i acc (s : Ir.stmt) =
      match s with
      | Ir.Decl { init; _ } -> collect_expr i acc init
      | Ir.Assign (_, e) -> collect_expr i acc e
      | Ir.Store (_, a, b) | Ir.Store_int (_, a, b) | Ir.Atomic_add (_, a, b)
        ->
          collect_expr i (collect_expr i acc a) b
      | Ir.If (c, a, b) -> collect_body i (collect_body i (collect_expr i acc c) a) b
      | Ir.While (c, b) -> collect_body i (collect_expr i acc c) b
      | Ir.For { var; lo; hi; body } ->
          let acc = collect_expr i (collect_expr i acc lo) hi in
          if String.equal var i then acc else collect_body i acc body
      | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
          let acc = collect_expr i (collect_expr i acc d.Ir.lo) d.Ir.hi in
          if String.equal d.Ir.loop_var i then acc
          else collect_body i acc d.Ir.body
      | Ir.Simd_sum { value; dir; _ } ->
          let acc = collect_expr i (collect_expr i acc dir.Ir.lo) dir.Ir.hi in
          if String.equal dir.Ir.loop_var i then acc
          else collect_body i (collect_expr i acc value) dir.Ir.body
      | Ir.Guarded b -> collect_body i acc b
      | Ir.Sync -> acc
    in
    (* the body must not rebind the induction variable anywhere, or the
       textual replacement could cross a shadowing boundary *)
    let rec rebinds i body =
      List.exists
        (fun (s : Ir.stmt) ->
          match s with
          | Ir.Decl { name; _ } -> String.equal name i
          | Ir.For { var; body = b; _ } -> String.equal var i || rebinds i b
          | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
              String.equal d.Ir.loop_var i || rebinds i d.Ir.body
          | Ir.Simd_sum { dir; _ } ->
              String.equal dir.Ir.loop_var i || rebinds i dir.Ir.body
          | Ir.If (_, a, b) -> rebinds i a || rebinds i b
          | Ir.While (_, b) | Ir.Guarded b -> rebinds i b
          | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _
          | Ir.Sync ->
              false)
        body
    in
    let body =
      map_loops
        (fun ~pos ~var s ->
          match s with
          | Ir.For { var = i; lo; hi; body }
            when hits target ~pos ~var
                 && (not (rebinds i body))
                 && trap_free ~loads:false lo -> (
              match List.rev (collect_body i [] body) with
              | [] -> None
              | strides ->
                  let strides =
                    List.filteri (fun idx _ -> idx < 4) strides
                  in
                  let decls, body =
                    List.fold_left
                      (fun (ds, body) stride ->
                        let a = fresh (i ^ "_sr") in
                        let rec replace (e : Ir.expr) =
                          match e with
                          | Ir.Binop (Ir.Mul, Ir.Var v, s)
                            when String.equal v i && s = stride ->
                              Ir.Var a
                          | Ir.Binop (Ir.Mul, s, Ir.Var v)
                            when String.equal v i && s = stride ->
                              Ir.Var a
                          | Ir.Binop (op, x, y) ->
                              Ir.Binop (op, replace x, replace y)
                          | Ir.Unop (op, x) -> Ir.Unop (op, replace x)
                          | Ir.Load (arr, x) -> Ir.Load (arr, replace x)
                          | Ir.Load_int (arr, x) -> Ir.Load_int (arr, replace x)
                          | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> e
                        in
                        let body = map_exprs_shadow ~var:i replace body in
                        let body =
                          body
                          @ [ Ir.Assign (a, Ir.Binop (Ir.Add, Ir.Var a, stride)) ]
                        in
                        ( Ir.Decl
                            {
                              name = a;
                              ty = Ir.Tint;
                              init = Fold.expr (Ir.Binop (Ir.Mul, lo, stride));
                            }
                          :: ds,
                          body ))
                      ([], body) strides
                  in
                  Some (List.rev decls @ [ Ir.For { var = i; lo; hi; body } ]))
          | _ -> None)
        k.Ir.body
    in
    { k with Ir.body = body }
  in
  preserving "strength" (fun k -> fixpoint 3 transform k)

(* --- collapse de-flattening ----------------------------------------------- *)

(* Recognize the div/mod decoder prologue {!Ir.collapsed_distribute_parallel_for}
   emits (before or after constant folding) and rebuild the explicit
   rectangular nest: the outermost recovered index becomes the parallel
   dimension, the rest become plain [For] loops — no division or modulo
   left on the hot path. *)
let collapse ?(target = T_all) () =
  let transform (k : Ir.kernel) =
    let body =
      map_loops
        (fun ~pos ~var s ->
          if not (hits target ~pos ~var) then None
          else
            let try_dir rebuild (d : Ir.loop_directive) =
              let fv = d.Ir.loop_var in
              if Fold.expr d.Ir.lo <> Ir.Int_lit 0 then None
              else
                (* peel leading decoder Decls: v = flat / inner mod extent *)
                let factor_out hi inner =
                  (* hi = extent * inner (either operand order),
                     structurally after folding *)
                  match hi with
                  | Ir.Binop (Ir.Mul, a, b) when b = inner -> Some a
                  | Ir.Binop (Ir.Mul, a, b) when a = inner -> Some b
                  | _ -> None
                in
                let rec peel acc body =
                  match (body : Ir.stmt list) with
                  | Ir.Decl { name; ty = Ir.Tint; init } :: rest -> (
                      match Fold.expr init with
                      | Ir.Binop
                          (Ir.Mod, Ir.Binop (Ir.Div, Ir.Var v, inner), extent)
                        when String.equal v fv ->
                          peel ((name, inner, extent) :: acc) rest
                      | Ir.Binop (Ir.Mod, Ir.Var v, extent)
                        when String.equal v fv ->
                          peel ((name, Ir.Int_lit 1, extent) :: acc) rest
                      | Ir.Binop (Ir.Div, Ir.Var v, inner)
                        when String.equal v fv && acc = [] -> (
                          (* the outermost decoder needs no [mod] when the
                             flat bound is exact, so hand-collapsed sources
                             (and clang's collapse lowering) write it as a
                             bare division — recover its extent by peeling
                             the divisor off the flat bound *)
                          match
                            factor_out (Fold.expr d.Ir.hi) (Fold.expr inner)
                          with
                          | Some extent -> peel [ (name, inner, extent) ] rest
                          | None -> (List.rev acc, body))
                      | _ -> (List.rev acc, body))
                  | _ -> (List.rev acc, body)
                in
                let decoders, rest = peel [] d.Ir.body in
                if List.length decoders < 2 then None
                else
                  let extents = List.map (fun (_, _, e) -> e) decoders in
                  let product es =
                    Fold.expr
                      (List.fold_left
                         (fun acc e -> Ir.Binop (Ir.Mul, acc, e))
                         (Ir.Int_lit 1) es)
                  in
                  (* each decoder's divisor must be the product of the
                     extents inner to it, and the flat bound the product
                     of all of them *)
                  let rec inners_ok = function
                    | [] -> true
                    | (_, inner, _) :: rest_d ->
                        Fold.expr inner
                        = product (List.map (fun (_, _, e) -> e) rest_d)
                        && inners_ok rest_d
                  in
                  let vars = List.map (fun (v, _, _) -> v) decoders in
                  let var_set = Names.of_list vars in
                  let rest_reads = stmt_list_reads rest in
                  let rest_muts = mutated_in Names.empty rest in
                  let _, rest_written = array_rw rest in
                  let rec decl_names_deep acc body =
                    List.fold_left
                      (fun acc (st : Ir.stmt) ->
                        match st with
                        | Ir.Decl { name; _ } -> Names.add name acc
                        | Ir.If (_, a, b) ->
                            decl_names_deep (decl_names_deep acc a) b
                        | Ir.While (_, b)
                        | Ir.For { body = b; _ }
                        | Ir.Guarded b ->
                            decl_names_deep acc b
                        | Ir.Distribute_parallel_for dd
                        | Ir.Parallel_for dd
                        | Ir.Simd dd ->
                            decl_names_deep acc dd.Ir.body
                        | Ir.Simd_sum { dir; _ } ->
                            decl_names_deep acc dir.Ir.body
                        | _ -> acc)
                      acc body
                  in
                  let extent_ok e =
                    let reads = expr_reads Names.empty e in
                    Names.is_empty (Names.inter reads var_set)
                    && Names.is_empty (Names.inter reads rest_muts)
                    && Names.is_empty
                         (Names.inter (load_arrays Names.empty e) rest_written)
                  in
                  if
                    inners_ok decoders
                    && Fold.expr d.Ir.hi = product extents
                    && (not (Names.mem fv rest_reads))
                    && List.for_all extent_ok extents
                    && Names.is_empty (Names.inter var_set rest_muts)
                    && Names.is_empty
                         (Names.inter var_set (decl_names_deep Names.empty rest))
                  then
                    match decoders with
                    | (v1, _, e1) :: inner_decoders ->
                        let nest =
                          List.fold_right
                            (fun (v, _, e) inner_body ->
                              [
                                Ir.For
                                  {
                                    var = v;
                                    lo = Ir.Int_lit 0;
                                    hi = e;
                                    body = inner_body;
                                  };
                              ])
                            inner_decoders rest
                        in
                        Some
                          [
                            rebuild
                              {
                                d with
                                Ir.loop_var = v1;
                                Ir.lo = Ir.Int_lit 0;
                                Ir.hi = e1;
                                Ir.body = nest;
                              };
                          ]
                    | [] -> None
                  else None
            in
            match s with
            | Ir.Distribute_parallel_for d ->
                try_dir (fun d -> Ir.Distribute_parallel_for d) d
            | Ir.Parallel_for d -> try_dir (fun d -> Ir.Parallel_for d) d
            | _ -> None)
        k.Ir.body
    in
    { k with Ir.body = body }
  in
  preserving "collapse" transform

(* --- loop interchange ------------------------------------------------------ *)

(* Swap a perfect sequential 2-nest.  Sound when iterations are provably
   independent: the body only declares locals and stores through affine
   row-major indices [outer*w + inner] with the inner range a literal
   subrange of [0, w) — distinct iterations then hit distinct cells, so
   any execution order produces the same memory. *)
let interchange ?(target = T_all) () =
  let transform (k : Ir.kernel) =
    let affine_ok ~outer ~inner idx =
      match Fold.expr idx with
      | Ir.Binop (Ir.Add, Ir.Binop (Ir.Mul, Ir.Var a, Ir.Int_lit w), Ir.Var b)
      | Ir.Binop (Ir.Add, Ir.Binop (Ir.Mul, Ir.Int_lit w, Ir.Var a), Ir.Var b)
        when String.equal a outer && String.equal b inner && w > 0 ->
          Some w
      | _ -> None
    in
    let body =
      map_loops
        (fun ~pos ~var s ->
          match s with
          | Ir.For
              {
                var = i;
                lo = ilo;
                hi = ihi;
                body = [ Ir.For { var = j; lo = jlo; hi = jhi; body } ];
              }
            when hits target ~pos ~var -> (
              let bounds_ok =
                List.for_all (trap_free ~loads:false) [ ilo; ihi; jlo; jhi ]
                && (not (Names.mem i (expr_reads Names.empty jlo)))
                && not (Names.mem i (expr_reads Names.empty jhi))
              in
              let jrange =
                match (Fold.expr jlo, Fold.expr jhi) with
                | Ir.Int_lit l, Ir.Int_lit h when l >= 0 -> Some (l, h)
                | _ -> None
              in
              let r, w = array_rw body in
              let rec stores_ok stmts =
                List.for_all
                  (fun (st : Ir.stmt) ->
                    match st with
                    | Ir.Decl _ | Ir.Assign _ -> true
                    | Ir.Store (_, idx, _) | Ir.Store_int (_, idx, _) -> (
                        match (affine_ok ~outer:i ~inner:j idx, jrange) with
                        | Some width, Some (_, h) -> h <= width
                        | _ -> false)
                    | Ir.If (_, a, b) -> stores_ok a && stores_ok b
                    | _ -> false)
                  stmts
              in
              match jrange with
              | Some _
                when bounds_ok
                     && Names.is_empty (Names.inter r w)
                     && Names.is_empty (free_assigns body)
                     && (not (has_atomic body))
                     && (not (contains_sync body))
                     && stores_ok body ->
                  Some
                    [
                      Ir.For
                        {
                          var = j;
                          lo = jlo;
                          hi = jhi;
                          body =
                            [ Ir.For { var = i; lo = ilo; hi = ihi; body } ];
                        };
                    ]
              | _ -> None)
          | _ -> None)
        k.Ir.body
    in
    { k with Ir.body = body }
  in
  preserving "interchange" transform

(* --- loop fusion ----------------------------------------------------------- *)

let rec decl_names_anywhere acc body =
  List.fold_left
    (fun acc (s : Ir.stmt) ->
      match s with
      | Ir.Decl { name; _ } -> Names.add name acc
      | Ir.If (_, a, b) -> decl_names_anywhere (decl_names_anywhere acc a) b
      | Ir.While (_, b) | Ir.For { body = b; _ } | Ir.Guarded b ->
          decl_names_anywhere acc b
      | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
          decl_names_anywhere acc d.Ir.body
      | Ir.Simd_sum { dir; _ } -> decl_names_anywhere acc dir.Ir.body
      | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _ | Ir.Sync
        ->
          acc)
    acc body

(* Fuse adjacent loops over the same iteration space.  The second body is
   renamed apart, checked for independence — the first loop's writes must
   not feed the second's reads or overlap its writes, and vice versa, or
   interleaving the iterations would let one loop observe the other's
   partial progress — then concatenated with its induction variable
   mapped onto the first's.  Chains fuse: the result is reconsidered
   against the next statement. *)
let fuse ?(target = T_all) () =
  let transform (k : Ir.kernel) =
    let pos = ref (-1) in
    let fcount = ref 0 in
    let can_fuse ~v1 ~b1 ~v2 ~b2' =
      let r1, w1 = array_rw b1 in
      let r2, w2 = array_rw b2' in
      let reads2 = stmt_list_reads b2' in
      Names.is_empty (Names.inter w1 (Names.union r2 w2))
      && Names.is_empty (Names.inter w2 r1)
      && (not (contains_sync b1))
      && (not (contains_sync b2'))
      && Names.is_empty (free_assigns b1)
      && Names.is_empty (free_assigns b2')
      && Names.is_empty (Names.inter (top_decl_names b1) reads2)
      && (String.equal v1 v2
         || (not (Names.mem v1 reads2))
            && not (Names.mem v1 (decl_names_anywhere Names.empty b2')))
    in
    let fuse_bodies ~v1 ~b1 ~v2 ~b2 =
      incr fcount;
      let b2' = rename_decls ~suffix:(Printf.sprintf "__f%d" !fcount) b2 in
      if not (can_fuse ~v1 ~b1 ~v2 ~b2') then None
      else
        let b2' =
          if String.equal v1 v2 then b2'
          else Subst.stmts ~var:v2 ~by:(Ir.Var v1) b2'
        in
        Some (b1 @ b2')
    in
    let same_bounds lo1 hi1 lo2 hi2 =
      Fold.expr lo1 = Fold.expr lo2 && Fold.expr hi1 = Fold.expr hi2
    in
    let rec stmts (body : Ir.stmt list) =
      match body with
      | Ir.Simd d1 :: Ir.Simd d2 :: rest
        when hits target ~pos:(!pos + 1) ~var:d1.Ir.loop_var
             && same_bounds d1.Ir.lo d1.Ir.hi d2.Ir.lo d2.Ir.hi
             && d1.Ir.sched = d2.Ir.sched -> (
          match
            fuse_bodies ~v1:d1.Ir.loop_var ~b1:d1.Ir.body ~v2:d2.Ir.loop_var
              ~b2:d2.Ir.body
          with
          | Some body -> stmts (Ir.Simd { d1 with Ir.body = body } :: rest)
          | None -> descend (Ir.Simd d1) :: stmts (Ir.Simd d2 :: rest))
      | Ir.For { var = v1; lo = lo1; hi = hi1; body = b1 }
        :: Ir.For { var = v2; lo = lo2; hi = hi2; body = b2 }
        :: rest
        when hits target ~pos:(!pos + 1) ~var:v1
             && same_bounds lo1 hi1 lo2 hi2 -> (
          match fuse_bodies ~v1 ~b1 ~v2 ~b2 with
          | Some body ->
              stmts (Ir.For { var = v1; lo = lo1; hi = hi1; body } :: rest)
          | None ->
              descend (Ir.For { var = v1; lo = lo1; hi = hi1; body = b1 })
              :: stmts
                   (Ir.For { var = v2; lo = lo2; hi = hi2; body = b2 } :: rest))
      | s :: rest -> descend s :: stmts rest
      | [] -> []
    and descend (s : Ir.stmt) =
      match s with
      | Ir.For { var; lo; hi; body } ->
          incr pos;
          Ir.For { var; lo; hi; body = stmts body }
      | Ir.Simd d ->
          incr pos;
          Ir.Simd { d with Ir.body = stmts d.Ir.body }
      | Ir.Parallel_for d ->
          incr pos;
          Ir.Parallel_for { d with Ir.body = stmts d.Ir.body }
      | Ir.Distribute_parallel_for d ->
          incr pos;
          Ir.Distribute_parallel_for { d with Ir.body = stmts d.Ir.body }
      | Ir.Simd_sum { acc; value; dir } ->
          incr pos;
          Ir.Simd_sum
            { acc; value; dir = { dir with Ir.body = stmts dir.Ir.body } }
      | Ir.If (c, a, b) -> Ir.If (c, stmts a, stmts b)
      | Ir.While (c, b) -> Ir.While (c, stmts b)
      | Ir.Guarded b -> Ir.Guarded (stmts b)
      | (Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _
        | Ir.Atomic_add _ | Ir.Sync) as s ->
          s
    in
    { k with Ir.body = stmts k.Ir.body }
  in
  preserving "fuse" transform

(* --- tiling to warp width -------------------------------------------------- *)

let warp_width = 32

(* Split a simd loop into warp-width tiles: an outer sequential loop over
   tiles with an inner simd loop of at most [width] iterations, so each
   round maps one-to-one onto a full warp.  Bounds are snapshotted into
   fresh scalars so re-evaluating them per tile cannot observe the body's
   stores.  Literal trips at or under the width are left alone — they
   already fit one round. *)
let tile ?(width = warp_width) ?(target = T_all) () =
  if width <= 0 then invalid_arg "Passes.tile: width must be positive";
  let transform (k : Ir.kernel) =
    let fresh = freshener k in
    let already_tiled (lo : Ir.expr) =
      match lo with
      | Ir.Binop (Ir.Add, Ir.Var _, Ir.Binop (Ir.Mul, Ir.Var _, Ir.Int_lit w))
        ->
          w = width
      | _ -> false
    in
    let body =
      map_loops
        (fun ~pos ~var s ->
          match s with
          | Ir.Simd d
            when hits target ~pos ~var
                 && (not (has_atomic d.Ir.body))
                 && (not (already_tiled d.Ir.lo))
                 &&
                 match (Fold.expr d.Ir.lo, Fold.expr d.Ir.hi) with
                 | Ir.Int_lit l, Ir.Int_lit h -> h - l > width
                 | _ -> true ->
              let v = d.Ir.loop_var in
              let lo_n = fresh (v ^ "_lo") in
              let hi_n = fresh (v ^ "_hi") in
              let tiles_n = fresh (v ^ "_tiles") in
              let t = fresh (v ^ "_t") in
              let wm1 = width - 1 in
              let open Ir in
              Some
                [
                  Decl { name = lo_n; ty = Tint; init = d.lo };
                  Decl { name = hi_n; ty = Tint; init = d.hi };
                  Decl
                    {
                      name = tiles_n;
                      ty = Tint;
                      init =
                        Binop
                          ( Div,
                            Binop
                              ( Add,
                                Binop (Sub, Var hi_n, Var lo_n),
                                Int_lit wm1 ),
                            Int_lit width );
                    };
                  For
                    {
                      var = t;
                      lo = Int_lit 0;
                      hi = Var tiles_n;
                      body =
                        [
                          Simd
                            {
                              d with
                              lo =
                                Binop
                                  ( Add,
                                    Var lo_n,
                                    Binop (Mul, Var t, Int_lit width) );
                              hi =
                                Binop
                                  ( Min,
                                    Var hi_n,
                                    Binop
                                      ( Add,
                                        Var lo_n,
                                        Binop
                                          ( Mul,
                                            Binop (Add, Var t, Int_lit 1),
                                            Int_lit width ) ) );
                            };
                        ];
                    };
                ]
          | _ -> None)
        k.Ir.body
    in
    { k with Ir.body = body }
  in
  preserving (Printf.sprintf "tile(%d)" width) transform

(* --- auto-SPMDization upgrade ---------------------------------------------- *)

(* When the static racecheck proves nothing suspicious and some region
   still falls back to generic mode, apply {!Spmdize.guardize}: the
   sequential side effects get wrapped in Guarded blocks and every region
   becomes SPMD — the tier-2 counterpart of the paper's §7 plan. *)
let spmdize_upgrade =
  {
    name = "spmdize";
    transform =
      (fun k ->
        if Racecheck.check_kernel k = [] && not (Spmdize.all_spmd k) then
          fst (Spmdize.guardize k)
        else k);
  }

let default_pipeline =
  [ fold; unroll ~max_trip:warp_width ~simd_trip:0 (); dce ]

(* --- pipeline specs (OMPSIMD_PASSES) --------------------------------------- *)

let known_passes =
  [
    "fold"; "dce"; "unroll"; "licm"; "strength"; "collapse"; "interchange";
    "fuse"; "tile"; "spmdize";
  ]

let target_of_string spec s =
  if s = "" then
    invalid_arg
      (Printf.sprintf "OMPSIMD_PASSES: empty target in %S (use pass@var or pass@#n)" spec)
  else if s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 -> T_nth n
    | _ ->
        invalid_arg
          (Printf.sprintf
             "OMPSIMD_PASSES: bad loop position %S in %S (want #<non-negative int>)"
             s spec)
  else T_var s

let pass_of_spec item =
  let base, target =
    match String.index_opt item '@' with
    | None -> (item, T_all)
    | Some i ->
        ( String.sub item 0 i,
          target_of_string item
            (String.sub item (i + 1) (String.length item - i - 1)) )
  in
  let name, arg =
    match String.index_opt base ':' with
    | None -> (base, None)
    | Some i -> (
        let a = String.sub base (i + 1) (String.length base - i - 1) in
        match int_of_string_opt a with
        | Some n when n > 0 -> (String.sub base 0 i, Some n)
        | _ ->
            invalid_arg
              (Printf.sprintf
                 "OMPSIMD_PASSES: bad argument %S for pass %S (want a positive int)"
                 a item))
  in
  let no_arg p =
    match arg with
    | None -> p
    | Some _ ->
        invalid_arg
          (Printf.sprintf "OMPSIMD_PASSES: pass %S takes no argument" name)
  in
  let no_target p =
    match target with
    | T_all -> p
    | _ ->
        invalid_arg
          (Printf.sprintf "OMPSIMD_PASSES: pass %S takes no target" name)
  in
  match name with
  | "fold" -> no_arg (no_target fold)
  | "dce" -> no_arg (no_target dce)
  | "spmdize" -> no_arg (no_target spmdize_upgrade)
  (* spec-language unroll is the structure-preserving variant: simd
     replication erases parallel structure, so it stays API-only and the
     default pipeline is expressible as a spec (fold,unroll:32,dce) *)
  | "unroll" -> unroll ?max_trip:arg ~simd_trip:0 ~target ()
  | "licm" -> no_arg (licm ~target ())
  | "strength" -> no_arg (strength_reduce ~target ())
  | "collapse" -> no_arg (collapse ~target ())
  | "interchange" -> no_arg (interchange ~target ())
  | "fuse" -> no_arg (fuse ~target ())
  | "tile" -> tile ?width:arg ~target ()
  | "" -> invalid_arg "OMPSIMD_PASSES: empty pass name"
  | _ ->
      invalid_arg
        (Printf.sprintf "OMPSIMD_PASSES: unknown pass %S (known: %s)" name
           (String.concat ", " known_passes))

let pipeline_of_spec spec =
  match String.trim spec with
  | "" | "default" -> default_pipeline
  | "none" -> []
  | spec ->
      String.split_on_char ',' spec
      |> List.map (fun item ->
             let item = String.trim item in
             if item = "" then
               invalid_arg
                 (Printf.sprintf "OMPSIMD_PASSES: empty pass name in %S" spec)
             else pass_of_spec item)

let run passes kernel =
  List.fold_left (fun k p -> p.transform k) kernel passes

let run_verified passes kernel =
  List.fold_left
    (fun acc p ->
      match acc with
      | Error _ as e -> e
      | Ok k -> (
          let k = p.transform k in
          match Check.kernel k with
          | Ok () -> Ok k
          | Error es -> Error (p.name, es)))
    (Ok kernel) passes
