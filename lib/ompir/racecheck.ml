(* Static may-race analysis (the ompsan compile-time layer).

   The rule mirrors what the dynamic sanitizer observes at runtime: a
   plain (non-atomic) array store executed under workshared or SIMD
   loops whose index is invariant in at least one enclosing parallel
   induction variable may land on the same cell from different lanes of
   that loop.  Reduction accumulators are scalars (never array stores)
   and atomic updates are exempt by construction, so neither is
   flagged.

   Dependence is tracked through scalar [Decl]/[Assign] chains: a
   variable's dependence set is the union of the parallel induction
   variables reachable from its defining expression.  A sequential [For]
   variable inherits the dependence of its bounds — `for k = i*4 ...`
   keeps stores through [k] quiet when [i] is parallel, while a loop
   with invariant bounds contributes nothing (every lane walks the same
   range, so a store indexed only by it still collides).

   The pass is conservative in the may-race direction: depending on a
   parallel induction variable in any way silences the warning for that
   loop, so overlapping-range patterns (`a[i/2]`, `a[i]` with `a[i+1]`)
   can go unreported; a lane-invariant index is never exempted.  The
   differential suite cross-validates the two layers on generated
   kernels. *)

module S = Set.Make (String)

type finding = {
  array : string;  (** array written *)
  site : string;  (** pretty-printed access, e.g. ["store out[0]"] *)
  parallel_vars : string list;
      (** enclosing parallel induction variables, outermost first *)
  reason : string;  (** human-readable explanation *)
}

let pp_finding ppf f =
  Format.fprintf ppf "may-race: %s under %s: %s" f.site
    (String.concat ", " f.parallel_vars)
    f.reason

let finding_to_string f = Format.asprintf "%a" pp_finding f

(* Scalar environment: variable -> set of parallel induction vars its
   value depends on.  Innermost frame first; lookup scans outward like
   the evaluators do. *)
type env = (string * S.t) list list

let lookup env name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt name frame with
        | Some s -> Some s
        | None -> go rest)
  in
  go env

let rec expr_deps env (e : Ir.expr) =
  match e with
  | Ir.Int_lit _ | Ir.Float_lit _ -> S.empty
  | Ir.Var name -> ( match lookup env name with Some s -> s | None -> S.empty)
  | Ir.Unop (_, a) -> expr_deps env a
  | Ir.Binop (_, a, b) -> S.union (expr_deps env a) (expr_deps env b)
  | Ir.Load (_, idx) | Ir.Load_int (_, idx) ->
      (* a gather through a parallel-indexed table still varies per lane *)
      expr_deps env idx

let bind frame name deps = (name, deps) :: frame

(* [parallel] is the stack of enclosing parallel induction variables,
   outermost first.  [findings] accumulates in reverse source order. *)
let rec check_stmts env ~parallel findings stmts =
  let frame, outer = match env with f :: r -> (f, r) | [] -> ([], []) in
  let _, findings =
    List.fold_left
      (fun (frame, findings) s ->
        check_stmt (frame :: outer) ~parallel findings s)
      (frame, findings) stmts
  in
  findings

and check_store env ~parallel findings ~array ~idx ~label =
  if parallel = [] then findings
  else
    let deps = expr_deps env idx in
    (* the index must vary with EVERY enclosing parallel loop: an index
       invariant in some parallel induction variable is written by every
       lane of that loop *)
    let missing = List.filter (fun v -> not (S.mem v deps)) parallel in
    if missing = [] then findings
    else
      let site = Format.asprintf "%s %s[%a]" label array Printer.pp_expr idx in
      {
        array;
        site;
        parallel_vars = List.rev parallel;
        reason =
          Format.asprintf
            "index is invariant in parallel induction variable%s %s; \
             distinct lanes may write the same element of %s"
            (if List.length missing > 1 then "s" else "")
            (String.concat ", " (List.rev missing))
            array;
      }
      :: findings

and check_directive env ~parallel findings (d : Ir.loop_directive) =
  let deps = S.union (expr_deps env d.Ir.lo) (expr_deps env d.Ir.hi) in
  let frame = bind [] d.Ir.loop_var (S.add d.Ir.loop_var deps) in
  (* A statically single-trip directive assigns every lane the same
     (single) iteration, so its induction variable partitions nothing:
     stores need not depend on it.  This keeps the common trip-1 simd
     broadcast-store idiom out of the report. *)
  let single_trip =
    match (d.Ir.lo, d.Ir.hi) with
    | Ir.Int_lit lo, Ir.Int_lit hi -> hi - lo <= 1
    | _ -> false
  in
  let parallel =
    if single_trip then parallel else d.Ir.loop_var :: parallel
  in
  check_stmts (frame :: env) ~parallel findings d.Ir.body

and check_stmt env ~parallel findings (s : Ir.stmt) :
    (string * S.t) list * finding list =
  let frame, outer = match env with f :: r -> (f, r) | [] -> ([], []) in
  match s with
  | Ir.Decl { name; init; _ } ->
      (bind frame name (expr_deps env init), findings)
  | Ir.Assign (name, e) ->
      (* overwrite wherever the name is visible: record in this frame *)
      (bind frame name (expr_deps env e), findings)
  | Ir.Store (arr, idx, value) ->
      let findings = check_store env ~parallel findings ~array:arr ~idx ~label:"store" in
      ignore value;
      (frame, findings)
  | Ir.Store_int (arr, idx, value) ->
      let findings = check_store env ~parallel findings ~array:arr ~idx ~label:"store" in
      ignore value;
      (frame, findings)
  | Ir.Atomic_add _ -> (frame, findings) (* atomics never race *)
  | Ir.If (_, then_, else_) ->
      let findings = check_stmts ([] :: env) ~parallel findings then_ in
      let findings = check_stmts ([] :: env) ~parallel findings else_ in
      (frame, findings)
  | Ir.While (_, body) ->
      (frame, check_stmts ([] :: env) ~parallel findings body)
  | Ir.For { var; lo; hi; body } ->
      let deps = S.union (expr_deps env lo) (expr_deps env hi) in
      let bframe = bind [] var deps in
      (frame, check_stmts (bframe :: env) ~parallel findings body)
  | Ir.Distribute_parallel_for d | Ir.Parallel_for d | Ir.Simd d ->
      (frame, check_directive env ~parallel findings d)
  | Ir.Simd_sum { acc; value; dir = d } ->
      (* the accumulator is privatized per lane and combined by the
         runtime reduction: the summand expression itself cannot race *)
      let findings = check_directive env ~parallel findings d in
      ignore value;
      (bind frame acc S.empty, findings)
  | Ir.Guarded body ->
      (* one leader per SIMD group executes, but leaders of different
         groups, teams and blocks still run concurrently: the body is
         checked under the same parallel context *)
      (frame, check_stmts ([] :: env) ~parallel findings body)
  | Ir.Sync -> (frame, findings)

let check_kernel (k : Ir.kernel) =
  (* scalar params are lane-invariant: empty dependence sets *)
  let frame =
    List.filter_map
      (fun (p : Ir.param) ->
        match p.Ir.pty with
        | Ir.P_int | Ir.P_float -> Some (p.Ir.pname, S.empty)
        | Ir.P_farray | Ir.P_iarray -> None)
      k.Ir.params
  in
  List.rev (check_stmts [ frame ] ~parallel:[] [] k.Ir.body)
