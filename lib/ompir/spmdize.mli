(** SPMD-ization analysis (§3.2, [16]'s tight-nesting criterion).

    A parallel region may run in SPMD mode — every thread executing the
    region code redundantly — only when the sequential code around its
    simd loops produces no side effects, since it will run once per lane
    instead of once.  The tractable sufficient condition the compilers
    use, and which this pass implements, is: every store, atomic, or
    assignment to a captured scalar inside the parallel body must be
    {e inside} a simd loop; everything outside may only compute values.
    Regions that pass are marked [Spmd]; the rest stay [Generic]. *)

val directive_mode : Ir.loop_directive -> Omprt.Mode.t
(** Mode for one [parallel for] / [distribute parallel for] body. *)

val analyze : Ir.kernel -> (string * Omprt.Mode.t) list
(** Mode per parallel-level directive, keyed by loop variable, in
    syntactic order. *)

val all_spmd : Ir.kernel -> bool

val guardize : Ir.kernel -> Ir.kernel * int
(** The transform the paper's §7 plans (extending [16] to parallel
    regions): wrap every side-effecting statement in the sequential part
    of a parallel body in a {!Ir.Guarded} block, making the region
    SPMD-safe at the price of per-block guarding and value broadcasting.
    Returns the rewritten kernel and the number of guards inserted.
    Statements already inside simd loops are untouched. *)
