(** Capture-avoiding variable substitution over expressions and
    statement lists — the support machinery for unrolling and other
    body-duplicating transforms. *)

val expr : var:string -> by:Ir.expr -> Ir.expr -> Ir.expr
(** Replace every free occurrence of [var]. *)

val stmts : var:string -> by:Ir.expr -> Ir.stmt list -> Ir.stmt list
(** Substitution stops at rebinding sites: a [Decl] of [var], or a loop /
    directive whose loop variable is [var], shadows it for the remainder
    of the scope. *)
