(** Variable globalization (§4.3).

    When a simd loop executes in generic mode, its outlined body runs on
    SIMD worker threads, so every captured variable must live in memory
    that all of them can reach.  Array parameters are already in global
    memory; {e local} scalar declarations of the enclosing region are
    not — this pass identifies them.  A real compiler would rewrite the
    allocas into shared-memory slots (and the evaluator charges that cost
    through the runtime's sharing space); here the analysis records, per
    outlined simd region, which captures required globalization. *)

type report = {
  fn_id : int;
  globalized : string list;  (** local scalars promoted to shared memory *)
  already_global : string list;  (** array params / scalar params *)
}

val run : Outline.program -> report list
(** One report per outlined [`Simd] / [`Simd_sum] region, in fn_id
    order. *)

val total_globalized : report list -> int

val footprint_bytes : Outline.program -> int
(** Largest outlined-payload footprint in the program, in bytes (8 per
    captured variable over every outlined function, parallel and simd
    regions alike).  The input to the runtime's dynamic sharing-space
    sizing: the reservation must hold this once per concurrent
    publisher. *)
