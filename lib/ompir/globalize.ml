type report = {
  fn_id : int;
  globalized : string list;
  already_global : string list;
}

let run (p : Outline.program) =
  let param_names =
    List.map (fun (pm : Ir.param) -> pm.Ir.pname) p.Outline.kernel.Ir.params
  in
  (* Loop variables of enclosing directives are thread-private values the
     runtime rebinds; they are passed by value, not globalized. *)
  let loop_vars =
    List.map (fun (o : Outline.outlined) -> o.Outline.loop_var) p.Outline.outlined
  in
  p.Outline.outlined
  |> List.filter (fun (o : Outline.outlined) ->
         match o.Outline.kind with
         | `Simd | `Simd_sum -> true
         | `Parallel_for | `Distribute_parallel_for -> false)
  |> List.map (fun (o : Outline.outlined) ->
         let global, local =
           List.partition
             (fun name -> List.mem name param_names || List.mem name loop_vars)
             o.Outline.captures
         in
         {
           fn_id = o.Outline.fn_id;
           globalized = local;
           already_global = global;
         })

let total_globalized reports =
  List.fold_left (fun acc r -> acc + List.length r.globalized) 0 reports

(* §5.3.1 sizing input: every outlined payload — parallel-region and
   simd-region alike — travels through the sharing space in generic
   mode, one pointer-sized slot per capture.  The reservation needs to
   hold the largest payload once per concurrent publisher; the runtime
   multiplies by the publisher count. *)
let footprint_bytes (p : Outline.program) =
  List.fold_left
    (fun acc (o : Outline.outlined) ->
      max acc (8 * List.length o.Outline.captures))
    0 p.Outline.outlined
