type report = {
  fn_id : int;
  globalized : string list;
  already_global : string list;
}

let run (p : Outline.program) =
  let param_names =
    List.map (fun (pm : Ir.param) -> pm.Ir.pname) p.Outline.kernel.Ir.params
  in
  (* Loop variables of enclosing directives are thread-private values the
     runtime rebinds; they are passed by value, not globalized. *)
  let loop_vars =
    List.map (fun (o : Outline.outlined) -> o.Outline.loop_var) p.Outline.outlined
  in
  p.Outline.outlined
  |> List.filter (fun (o : Outline.outlined) ->
         match o.Outline.kind with
         | `Simd | `Simd_sum -> true
         | `Parallel_for | `Distribute_parallel_for -> false)
  |> List.map (fun (o : Outline.outlined) ->
         let global, local =
           List.partition
             (fun name -> List.mem name param_names || List.mem name loop_vars)
             o.Outline.captures
         in
         {
           fn_id = o.Outline.fn_id;
           globalized = local;
           already_global = global;
         })

let total_globalized reports =
  List.fold_left (fun acc r -> acc + List.length r.globalized) 0 reports
