(** The staged evaluator.

    [run] compiles the checked program once per launch into a tree of
    OCaml closures — every variable reference resolved to a
    (frame-depth, slot) pair over array-backed frames, array parameters
    and outlined-region metadata hoisted into the closures — and then
    executes that compiled form on the simulated device.  The compiled
    form is immutable and shared by all lanes and blocks; only the
    per-thread frame arrays are private.

    Observable behaviour is bit-identical to the {!Eval} tree walker:
    same values, same cost charges in the same order, same memory
    accounting, so reports and {!Gpusim.Counters} are equal across
    engines.  The walker remains the reference interpreter, selectable
    with [OMPSIMD_EVAL=walk]. *)

type value = Eval.value = V_int of int | V_float of float

type engine = Walk | Staged

val engine_of_env : unit -> engine
(** Engine selected by the [OMPSIMD_EVAL] environment variable:
    ["walk"] is the tree walker, ["compile"]/["staged"] (and unset) the
    staged evaluator.  @raise Invalid_argument on other values. *)

val run :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  options:Eval.options ->
  bindings:(string * Eval.binding) list ->
  Outline.program ->
  Gpusim.Device.report
(** Compile and launch the kernel; drop-in replacement for {!Eval.run}.
    @raise Eval.Error on binding mismatches. *)
