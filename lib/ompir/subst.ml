let rec expr ~var ~by (e : Ir.expr) =
  match e with
  | Ir.Var name when name = var -> by
  | Ir.Var _ | Ir.Int_lit _ | Ir.Float_lit _ -> e
  | Ir.Binop (op, a, b) -> Ir.Binop (op, expr ~var ~by a, expr ~var ~by b)
  | Ir.Unop (op, a) -> Ir.Unop (op, expr ~var ~by a)
  | Ir.Load (arr, idx) -> Ir.Load (arr, expr ~var ~by idx)
  | Ir.Load_int (arr, idx) -> Ir.Load_int (arr, expr ~var ~by idx)

let rec stmts ~var ~by body =
  let rec go = function
    | [] -> []
    | s :: rest -> (
        match s with
        | Ir.Decl { name; ty; init } ->
            let s = Ir.Decl { name; ty; init = expr ~var ~by init } in
            if name = var then s :: rest (* shadowed from here on *)
            else s :: go rest
        | Ir.Assign (name, e) -> Ir.Assign (name, expr ~var ~by e) :: go rest
        | Ir.Store (arr, idx, value) ->
            Ir.Store (arr, expr ~var ~by idx, expr ~var ~by value) :: go rest
        | Ir.Store_int (arr, idx, value) ->
            Ir.Store_int (arr, expr ~var ~by idx, expr ~var ~by value) :: go rest
        | Ir.Atomic_add (arr, idx, value) ->
            Ir.Atomic_add (arr, expr ~var ~by idx, expr ~var ~by value) :: go rest
        | Ir.If (cond, a, b) ->
            Ir.If (expr ~var ~by cond, stmts ~var ~by a, stmts ~var ~by b)
            :: go rest
        | Ir.While (cond, b) ->
            Ir.While (expr ~var ~by cond, stmts ~var ~by b) :: go rest
        | Ir.For { var = v; lo; hi; body } ->
            let lo = expr ~var ~by lo and hi = expr ~var ~by hi in
            let body = if v = var then body else stmts ~var ~by body in
            Ir.For { var = v; lo; hi; body } :: go rest
        | Ir.Distribute_parallel_for d ->
            Ir.Distribute_parallel_for (directive d) :: go rest
        | Ir.Parallel_for d -> Ir.Parallel_for (directive d) :: go rest
        | Ir.Simd d -> Ir.Simd (directive d) :: go rest
        | Ir.Simd_sum { acc; value; dir } ->
            let value =
              if dir.Ir.loop_var = var then value else expr ~var ~by value
            in
            Ir.Simd_sum { acc; value; dir = directive dir } :: go rest
        | Ir.Guarded body ->
            (* scope-transparent: a Decl of [var] inside shadows the rest *)
            let body' = stmts ~var ~by body in
            let shadows =
              List.exists
                (function Ir.Decl { name; _ } -> name = var | _ -> false)
                body
            in
            if shadows then Ir.Guarded body' :: rest
            else Ir.Guarded body' :: go rest
        | Ir.Sync -> Ir.Sync :: go rest)
  and directive (d : Ir.loop_directive) =
    let lo = expr ~var ~by d.Ir.lo and hi = expr ~var ~by d.Ir.hi in
    let body =
      if d.Ir.loop_var = var then d.Ir.body else stmts ~var ~by d.Ir.body
    in
    { d with Ir.lo; hi; body }
  in
  go body
