(* A statement is innocuous outside a simd loop if it cannot write
   anything observable: declarations and pure control flow are fine,
   stores/atomics are not, and assignments only touch region-local
   declarations (each redundant thread owns its copy). *)
let rec side_effect_free_outside_simd ~locals stmts =
  let stmt locals (s : Ir.stmt) =
    match s with
    | Ir.Decl { name; _ } -> (true, name :: locals)
    | Ir.Assign (name, _) -> (List.mem name locals, locals)
    | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _ -> (false, locals)
    | Ir.Sync -> (true, locals)
    | Ir.Simd _ -> (true, locals) (* side effects inside simd are the point *)
    | Ir.Simd_sum { acc; _ } ->
        (* the group total lands in [acc] on the executing threads: safe
           exactly when [acc] is region-local *)
        (List.mem acc locals, locals)
    | Ir.Guarded body ->
        (* guarding is exactly what makes the block SPMD-safe; its
           declarations extend the enclosing scope *)
        let decls =
          List.filter_map
            (function Ir.Decl { name; _ } -> Some name | _ -> None)
            body
        in
        (true, decls @ locals)
    | Ir.If (_, a, b) ->
        ( side_effect_free_outside_simd ~locals a
          && side_effect_free_outside_simd ~locals b,
          locals )
    | Ir.While (_, body) | Ir.For { body; _ } ->
        (side_effect_free_outside_simd ~locals body, locals)
    | Ir.Parallel_for _ | Ir.Distribute_parallel_for _ ->
        (* nested parallelism is outside this analysis: stay generic *)
        (false, locals)
  in
  let ok, _ =
    List.fold_left
      (fun (ok, locals) s ->
        if not ok then (false, locals)
        else
          let ok', locals = stmt locals s in
          (ok && ok', locals))
      (true, locals) stmts
  in
  ok

let directive_mode (d : Ir.loop_directive) =
  if side_effect_free_outside_simd ~locals:[] d.Ir.body then Omprt.Mode.Spmd
  else Omprt.Mode.Generic

let analyze (k : Ir.kernel) =
  Ir.fold_directives
    (fun acc s ->
      match s with
      | Ir.Parallel_for d | Ir.Distribute_parallel_for d ->
          acc @ [ (d.Ir.loop_var, directive_mode d) ]
      | _ -> acc)
    [] k.Ir.body

let all_spmd k =
  List.for_all (fun (_, m) -> m = Omprt.Mode.Spmd) (analyze k)


(* --- guardize: the transform of [16] applied at the parallel level ----

   Wrap every side-effecting statement of a parallel body's sequential
   part in a [Guarded] block, making the region SPMD-safe: the SIMD main
   executes the guarded code once and broadcasts declared values.  Only
   statement runs *outside* simd loops are touched. *)

let rec contains_directive body =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Simd _ | Ir.Simd_sum _ | Ir.Parallel_for _
      | Ir.Distribute_parallel_for _ ->
          true
      | Ir.If (_, a, b) -> contains_directive a || contains_directive b
      | Ir.While (_, b) | Ir.For { body = b; _ } | Ir.Guarded b ->
          contains_directive b
      | Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _
      | Ir.Atomic_add _ | Ir.Sync ->
          false)
    body

let rec is_offender ~locals (s : Ir.stmt) =
  match s with
  | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _ -> true
  | Ir.Assign (name, _) -> not (List.mem name locals)
  | Ir.If (_, a, b) ->
      (* a control structure is only guardable when no worksharing
         directive hides inside: guarding a simd loop would desynchronize
         its group protocol *)
      (not (contains_directive a || contains_directive b))
      && (List.exists (is_offender ~locals) a
         || List.exists (is_offender ~locals) b)
  | Ir.While (_, body) | Ir.For { body; _ } ->
      (not (contains_directive body))
      && List.exists (is_offender ~locals) body
  | Ir.Decl _ | Ir.Simd _ | Ir.Simd_sum _ | Ir.Guarded _ | Ir.Sync -> false
  | Ir.Parallel_for _ | Ir.Distribute_parallel_for _ -> false

let guardize_body body =
  let guards = ref 0 in
  let flush pending acc =
    match pending with
    | [] -> acc
    | run ->
        incr guards;
        Ir.Guarded (List.rev run) :: acc
  in
  let rec go locals pending acc = function
    | [] -> List.rev (flush pending acc)
    | s :: rest ->
        if is_offender ~locals s then go locals (s :: pending) acc rest
        else
          let locals =
            match s with Ir.Decl { name; _ } -> name :: locals | _ -> locals
          in
          go locals [] (s :: flush pending acc) rest
  in
  let result = go [] [] [] body in
  (result, !guards)

let guardize (k : Ir.kernel) =
  let total = ref 0 in
  let rec stmts body = List.map stmt body
  and stmt (s : Ir.stmt) =
    match s with
    | Ir.Parallel_for d ->
        let body, n = guardize_body d.Ir.body in
        total := Stdlib.( + ) !total n;
        Ir.Parallel_for { d with Ir.body }
    | Ir.Distribute_parallel_for d ->
        let body, n = guardize_body d.Ir.body in
        total := Stdlib.( + ) !total n;
        Ir.Distribute_parallel_for { d with Ir.body }
    | Ir.If (c, a, b) -> Ir.If (c, stmts a, stmts b)
    | Ir.While (c, body) -> Ir.While (c, stmts body)
    | Ir.For { var; lo; hi; body } -> Ir.For { var; lo; hi; body = stmts body }
    | ( Ir.Decl _ | Ir.Assign _ | Ir.Store _ | Ir.Store_int _ | Ir.Atomic_add _
      | Ir.Simd _ | Ir.Simd_sum _ | Ir.Guarded _ | Ir.Sync ) as s ->
        s
  in
  let body = stmts k.Ir.body in
  ({ k with Ir.body }, !total)
