let rec is_pure (e : Ir.expr) =
  match e with
  | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> true
  | Ir.Binop (_, a, b) -> is_pure a && is_pure b
  | Ir.Unop (_, a) -> is_pure a
  | Ir.Load _ | Ir.Load_int _ -> false

let int_op (op : Ir.binop) x y =
  let bool_ r = Some (if r then 1 else 0) in
  match op with
  | Ir.Add -> Some (x + y)
  | Ir.Sub -> Some (x - y)
  | Ir.Mul -> Some (x * y)
  | Ir.Div -> if y = 0 then None else Some (x / y)
  | Ir.Mod -> if y = 0 then None else Some (x mod y)
  | Ir.Min -> Some (min x y)
  | Ir.Max -> Some (max x y)
  | Ir.Lt -> bool_ (x < y)
  | Ir.Le -> bool_ (x <= y)
  | Ir.Gt -> bool_ (x > y)
  | Ir.Ge -> bool_ (x >= y)
  | Ir.Eq -> bool_ (x = y)
  | Ir.Ne -> bool_ (x <> y)
  | Ir.And -> bool_ (x <> 0 && y <> 0)
  | Ir.Or -> bool_ (x <> 0 || y <> 0)

let float_op (op : Ir.binop) x y =
  match op with
  | Ir.Add -> Some (Ir.Float_lit (x +. y))
  | Ir.Sub -> Some (Ir.Float_lit (x -. y))
  | Ir.Mul -> Some (Ir.Float_lit (x *. y))
  | Ir.Div -> Some (Ir.Float_lit (x /. y))
  | Ir.Min -> Some (Ir.Float_lit (Float.min x y))
  | Ir.Max -> Some (Ir.Float_lit (Float.max x y))
  | Ir.Lt -> Some (Ir.Int_lit (if x < y then 1 else 0))
  | Ir.Le -> Some (Ir.Int_lit (if x <= y then 1 else 0))
  | Ir.Gt -> Some (Ir.Int_lit (if x > y then 1 else 0))
  | Ir.Ge -> Some (Ir.Int_lit (if x >= y then 1 else 0))
  | Ir.Eq -> Some (Ir.Int_lit (if x = y then 1 else 0))
  | Ir.Ne -> Some (Ir.Int_lit (if x <> y then 1 else 0))
  | Ir.And | Ir.Or | Ir.Mod -> None

let rec expr (e : Ir.expr) =
  match e with
  | Ir.Int_lit _ | Ir.Float_lit _ | Ir.Var _ -> e
  | Ir.Load (arr, idx) -> Ir.Load (arr, expr idx)
  | Ir.Load_int (arr, idx) -> Ir.Load_int (arr, expr idx)
  | Ir.Unop (op, a) -> (
      let a = expr a in
      match (op, a) with
      | Ir.Neg, Ir.Int_lit n -> Ir.Int_lit (-n)
      | Ir.Neg, Ir.Float_lit x -> Ir.Float_lit (-.x)
      | Ir.Not, Ir.Int_lit n -> Ir.Int_lit (if n = 0 then 1 else 0)
      | Ir.To_float, Ir.Int_lit n -> Ir.Float_lit (float_of_int n)
      | Ir.To_int, Ir.Float_lit x -> Ir.Int_lit (int_of_float x)
      | Ir.Abs, Ir.Int_lit n -> Ir.Int_lit (abs n)
      | Ir.Abs, Ir.Float_lit x -> Ir.Float_lit (abs_float x)
      | Ir.Sqrt, Ir.Float_lit x when x >= 0.0 -> Ir.Float_lit (sqrt x)
      | _ -> Ir.Unop (op, a))
  | Ir.Binop (op, a, b) -> (
      let a = expr a and b = expr b in
      match (a, b) with
      | Ir.Int_lit x, Ir.Int_lit y -> (
          match int_op op x y with
          | Some r -> Ir.Int_lit r
          | None -> Ir.Binop (op, a, b))
      | Ir.Float_lit x, Ir.Float_lit y -> (
          match float_op op x y with
          | Some folded -> folded
          | None -> Ir.Binop (op, a, b))
      | _ -> (
          (* safe identities; x*0 only when x is pure (a load may trap
             on a bad index, so it must stay) *)
          match (op, a, b) with
          | Ir.Add, Ir.Int_lit 0, x | Ir.Add, x, Ir.Int_lit 0 -> x
          | Ir.Add, Ir.Float_lit 0.0, x | Ir.Add, x, Ir.Float_lit 0.0 -> x
          | Ir.Sub, x, Ir.Int_lit 0 -> x
          | Ir.Sub, x, Ir.Float_lit 0.0 -> x
          | Ir.Mul, Ir.Int_lit 1, x | Ir.Mul, x, Ir.Int_lit 1 -> x
          | Ir.Mul, Ir.Float_lit 1.0, x | Ir.Mul, x, Ir.Float_lit 1.0 -> x
          | Ir.Mul, (Ir.Int_lit 0 as z), x when is_pure x -> z
          | Ir.Mul, x, (Ir.Int_lit 0 as z) when is_pure x -> z
          | Ir.Div, x, Ir.Int_lit 1 -> x
          | Ir.Div, x, Ir.Float_lit 1.0 -> x
          | _ -> Ir.Binop (op, a, b)))

let constant_trip lo hi =
  match (lo, hi) with
  | Ir.Int_lit l, Ir.Int_lit h -> Some (h - l)
  | _ -> None

let rec stmts body = List.concat_map stmt body

and fold_directive (d : Ir.loop_directive) =
  { d with Ir.lo = expr d.Ir.lo; hi = expr d.Ir.hi; body = stmts d.Ir.body }

and stmt (s : Ir.stmt) =
  match s with
  | Ir.Decl { name; ty; init } -> [ Ir.Decl { name; ty; init = expr init } ]
  | Ir.Assign (name, e) -> [ Ir.Assign (name, expr e) ]
  | Ir.Store (arr, idx, value) -> [ Ir.Store (arr, expr idx, expr value) ]
  | Ir.Store_int (arr, idx, value) ->
      [ Ir.Store_int (arr, expr idx, expr value) ]
  | Ir.Atomic_add (arr, idx, value) ->
      [ Ir.Atomic_add (arr, expr idx, expr value) ]
  | Ir.If (cond, then_, else_) -> (
      match expr cond with
      | Ir.Int_lit 0 -> stmts else_
      | Ir.Int_lit _ -> stmts then_
      | cond -> [ Ir.If (cond, stmts then_, stmts else_) ])
  | Ir.While (cond, body) -> (
      match expr cond with
      | Ir.Int_lit 0 -> []
      | cond -> [ Ir.While (cond, stmts body) ])
  | Ir.For { var; lo; hi; body } -> (
      let lo = expr lo and hi = expr hi in
      match constant_trip lo hi with
      | Some t when t <= 0 -> []
      | _ -> [ Ir.For { var; lo; hi; body = stmts body } ])
  | Ir.Distribute_parallel_for d -> (
      let d = fold_directive d in
      match constant_trip d.Ir.lo d.Ir.hi with
      | Some t when t <= 0 -> []
      | _ -> [ Ir.Distribute_parallel_for d ])
  | Ir.Parallel_for d -> (
      let d = fold_directive d in
      match constant_trip d.Ir.lo d.Ir.hi with
      | Some t when t <= 0 -> []
      | _ -> [ Ir.Parallel_for d ])
  | Ir.Simd d ->
      (* an empty simd loop still synchronizes its group in generic mode;
         keep it unless the body also vanished *)
      let d = fold_directive d in
      (match (constant_trip d.Ir.lo d.Ir.hi, d.Ir.body) with
      | Some t, [] when t <= 0 -> []
      | _ -> [ Ir.Simd d ])
  | Ir.Simd_sum { acc; value; dir } ->
      [ Ir.Simd_sum { acc; value = expr value; dir = fold_directive dir } ]
  | Ir.Guarded body -> (
      match stmts body with [] -> [] | body -> [ Ir.Guarded body ])
  | Ir.Sync -> [ Ir.Sync ]

let kernel (k : Ir.kernel) = { k with Ir.body = stmts k.Ir.body }
