(* Sanitizer site labels for IR memory accesses.

   Both engines intern labels here so a given access site carries the
   same provenance string whether the kernel runs under the walker or
   the staged compiler — the differential suite compares formatted
   sanitizer reports across engines, so the text must match exactly.
   Labels render the index expression with {!Printer.pp_expr}; the
   registry in {!Gpusim.Ompsan} dedups repeated registrations. *)

let expr_str e = Format.asprintf "%a" Printer.pp_expr e

let load arr idx =
  Gpusim.Ompsan.register_site (Printf.sprintf "load %s[%s]" arr (expr_str idx))

let store arr idx =
  Gpusim.Ompsan.register_site
    (Printf.sprintf "store %s[%s]" arr (expr_str idx))

let atomic arr idx =
  Gpusim.Ompsan.register_site
    (Printf.sprintf "atomic %s[%s]" arr (expr_str idx))
