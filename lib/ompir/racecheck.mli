(** Static may-race analysis — the compile-time half of ompsan.

    Flags plain (non-atomic) array stores that execute under parallel or
    SIMD loops while their index is invariant in at least one enclosing
    parallel induction variable: every lane of that loop then writes the
    same element.  Dependence is traced through scalar declaration and
    assignment chains, sequential loop bounds included.  Atomic updates
    and reduction accumulators are exempt.

    The analysis is conservative in the may-race direction — an index
    that depends on each enclosing parallel induction variable in any
    way is accepted — so it can miss overlapping-range stores, but it
    never reports a properly lane-partitioned index.  The dynamic
    sanitizer ({!Gpusim.Ompsan}) cross-validates it at runtime. *)

type finding = {
  array : string;  (** array written *)
  site : string;  (** pretty-printed access, e.g. ["store out[0]"] *)
  parallel_vars : string list;
      (** enclosing parallel induction variables, outermost first *)
  reason : string;  (** human-readable explanation *)
}

val pp_finding : Format.formatter -> finding -> unit
val finding_to_string : finding -> string

val check_kernel : Ir.kernel -> finding list
(** Findings in source order; empty means no write the pass can prove
    suspicious (not a race-freedom proof). *)
