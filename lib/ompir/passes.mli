(** The optimization pipeline: named semantics-preserving kernel
    transforms, composable and individually testable.

    Passes operate before outlining.  Each is checked to preserve
    well-formedness when the input was well-formed; the differential test
    suite cross-checks results against unoptimized execution, and no pass
    may introduce a static may-race finding ({!Racecheck}) — transforms
    that would are reverted.

    Pipelines are described by a small spec language (the
    [OMPSIMD_PASSES] environment variable): a comma-separated list of
    pass names, each optionally carrying an integer argument
    ([unroll:16], [tile:8]) and an OptiTrust-style loop target
    ([licm@i] applies to loops over [i]; [fuse@#2] to the loop at
    pre-order position 2). *)

type pass = { name : string; transform : Ir.kernel -> Ir.kernel }

(** {1 Loop targeting} *)

type target =
  | T_all  (** every loop *)
  | T_var of string  (** loops with this induction variable *)
  | T_nth of int  (** the [n]th loop in pre-order, 0-based *)

val warp_width : int
(** The warp width the pipeline tiles and unrolls against (32). *)

(** {1 Passes} *)

val fold : pass
(** Constant folding / simplification ({!Fold}). *)

val dce : pass
(** Dead-code elimination: drops declarations never read and assignments
    to scalars never read afterwards, when the right-hand side is pure
    (loads stay — they can trap). *)

val unroll : ?max_trip:int -> ?simd_trip:int -> ?target:target -> unit -> pass
(** Full unrolling of loops with a small literal trip count.  Sequential
    [For] loops replicate exactly up to [max_trip] (default 8)
    iterations, atomics included — which is what unrolls the
    literal-bound inner loops the {!collapse} pass leaves behind.  [simd]
    loops are replicated into straight region code up to [simd_trip]
    trips (default [min max_trip 8]; every lane executes every replica,
    and the rewrite erases the loop's parallel structure, so the default
    pipeline and the spec language run with [simd_trip = 0] — simd
    replication is API-only). *)

val licm : ?target:target -> unit -> pass
(** Loop-invariant code motion: hoists invariant top-level declarations
    out of [For], [simd] and parallel loops under fresh names.  Loads
    hoist only out of provably non-empty loops. *)

val strength_reduce : ?target:target -> unit -> pass
(** Rewrite [i * stride] index math in sequential loops into an additive
    recurrence (integer strides only, so the result is bit-exact). *)

val collapse : ?target:target -> unit -> pass
(** De-flatten the div/mod decoder prologue emitted by
    {!Ir.collapsed_distribute_parallel_for} back into an explicit
    rectangular nest: the outermost recovered index keeps the parallel
    directive, inner indices become plain [For] loops, and the hot path
    loses its divisions and modulos. *)

val interchange : ?target:target -> unit -> pass
(** Swap a perfect sequential [For] 2-nest when iterations are provably
    independent (local-only scalars, affine row-major stores, no
    atomics or syncs). *)

val fuse : ?target:target -> unit -> pass
(** Fuse adjacent [simd] (or adjacent sequential [For]) loops over the
    same iteration space whose bodies are independent; chains fuse.  The
    second body is renamed apart and its induction variable mapped onto
    the first's. *)

val tile : ?width:int -> ?target:target -> unit -> pass
(** Tile a [simd] loop to the warp width (default {!warp_width}): an
    outer sequential tile loop around a [simd] loop of at most [width]
    iterations, so each round maps one-to-one onto a full warp.
    @raise Invalid_argument if [width <= 0]. *)

val spmdize_upgrade : pass
(** When {!Racecheck} finds nothing and some region is still generic,
    apply {!Spmdize.guardize} so every region runs SPMD. *)

(** {1 Pipelines} *)

val default_pipeline : pass list
(** [fold; unroll; dce] — what {!Openmp.Offload.compile} applies by
    default.  [unroll] is promoted with the sequential-loop limit raised
    to {!warp_width} and simd replication off (structure-preserving). *)

val known_passes : string list
(** Spec-language pass names, for error messages and tooling. *)

val pass_of_spec : string -> pass
(** One spec item, e.g. ["unroll:16@i"].
    @raise Invalid_argument on an unknown pass, malformed argument or
    malformed target; messages name [OMPSIMD_PASSES]. *)

val pipeline_of_spec : string -> pass list
(** A full comma-separated spec.  [""] and ["default"] give
    {!default_pipeline}; ["none"] gives the empty pipeline.
    @raise Invalid_argument as {!pass_of_spec}, plus on empty items. *)

val run : pass list -> Ir.kernel -> Ir.kernel

val run_verified :
  pass list -> Ir.kernel -> (Ir.kernel, string * Check.error list) result
(** Like {!run} but re-checks well-formedness after every pass, reporting
    the name of the first pass that broke the kernel — a pass-author
    debugging aid. *)
