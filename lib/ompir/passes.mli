(** The optimization pipeline: named semantics-preserving kernel
    transforms, composable and individually testable.

    Passes operate before outlining.  Each is checked to preserve
    well-formedness when the input was well-formed; the differential test
    suite cross-checks results against unoptimized execution. *)

type pass = { name : string; transform : Ir.kernel -> Ir.kernel }

val fold : pass
(** Constant folding / simplification ({!Fold}). *)

val dce : pass
(** Dead-code elimination: drops declarations never read and assignments
    to scalars never read afterwards, when the right-hand side is pure
    (loads stay — they can trap). *)

val unroll : ?max_trip:int -> unit -> pass
(** Full unrolling of [simd] loops with a small constant trip count
    (default limit 8): the body is replicated with the loop variable
    substituted.  Mirrors what a vectorizing compiler does to expose the
    lanes; in the simulator's terms the unrolled loop becomes straight
    region code (every lane executes every replica), so this is only
    profitable for tiny trips — which is why the limit is small. *)

val default_pipeline : pass list
(** [fold; dce] — the pipeline {!Openmp.Offload.compile} applies. *)

val run : pass list -> Ir.kernel -> Ir.kernel

val run_verified :
  pass list -> Ir.kernel -> (Ir.kernel, string * Check.error list) result
(** Like {!run} but re-checks after every pass, reporting the name of the
    first pass that broke the kernel — a pass-author debugging aid. *)
