type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  if List.length cells <> width t then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align w s =
  let n = String.length s in
  if n >= w then s
  else
    let fill = String.make (w - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cs -> max acc (String.length (List.nth cs i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line (List.map (fun _ -> Left) t.headers) t.headers;
  rule ();
  List.iter
    (fun row -> match row with Separator -> rule () | Cells cs -> line t.aligns cs)
    rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_int n = string_of_int n
