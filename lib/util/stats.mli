(** Descriptive statistics over float samples, used by the benchmark harness
    and the simulator's counter reports. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
(** Arithmetic mean; 0.0 on the empty array. *)

val variance : float array -> float
(** Sample variance (n-1); 0.0 when fewer than two samples. *)

val stddev : float array -> float

val geomean : float array -> float
(** Geometric mean; requires all samples > 0.
    @raise Invalid_argument otherwise. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in \[0,100\], linear interpolation between
    order statistics.  @raise Invalid_argument on empty input or p outside
    the range. *)

val median : float array -> float

val summarize : float array -> summary
(** Full summary.  @raise Invalid_argument on the empty array. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline t] = baseline /. t.  @raise Invalid_argument if
    [t <= 0.]. *)
