type t = int

let max_lanes = 64

(* Encoding: bits 0..7 hold the base lane, bits 8..15 hold the length.
   The empty mask is the canonical 0 (len = 0 forces base = 0). *)

let empty = 0
let base m = m land 0xFF
let len m = (m lsr 8) land 0xFF
let make ~base ~len = if len = 0 then 0 else base lor (len lsl 8)

let full ~warp_size =
  if warp_size < 1 || warp_size > max_lanes then
    invalid_arg "Mask.full: warp size out of range";
  make ~base:0 ~len:warp_size

let lane i =
  if i < 0 || i >= max_lanes then invalid_arg "Mask.lane: lane out of range";
  make ~base:i ~len:1

let group ~warp_size ~group_size ~group_index =
  if warp_size < 1 || warp_size > max_lanes then
    invalid_arg "Mask.group: warp size out of range";
  if group_size < 1 || group_size > warp_size || warp_size mod group_size <> 0
  then invalid_arg "Mask.group: group_size must divide the warp";
  let groups = warp_size / group_size in
  if group_index < 0 || group_index >= groups then
    invalid_arg "Mask.group: group_index out of range";
  make ~base:(group_index * group_size) ~len:group_size

let mem m i = i >= base m && i < base m + len m
let popcount m = len m

let lowest m =
  if m = 0 then invalid_arg "Mask.lowest: empty mask";
  base m

let iter f m =
  for i = base m to base m + len m - 1 do
    f i
  done

let fold f init m =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) m;
  !acc

let to_list m = List.rev (fold (fun acc i -> i :: acc) [] m)

let union a b =
  if a = 0 then b
  else if b = 0 then a
  else begin
    let a0 = base a and a1 = base a + len a in
    let b0 = base b and b1 = base b + len b in
    if b0 > a1 || a0 > b1 then
      invalid_arg "Mask.union: result not contiguous";
    make ~base:(min a0 b0) ~len:(max a1 b1 - min a0 b0)
  end

let inter a b =
  let lo = max (base a) (base b) in
  let hi = min (base a + len a) (base b + len b) in
  if a = 0 || b = 0 || hi <= lo then 0 else make ~base:lo ~len:(hi - lo)

let disjoint a b = inter a b = 0

let subset a ~of_ =
  a = 0 || (base a >= base of_ && base a + len a <= base of_ + len of_)

let pp ppf m =
  if m = 0 then Format.fprintf ppf "[]"
  else Format.fprintf ppf "[%d,%d)" (base m) (base m + len m)
