type t = int

let warp_size = 32
let full = 0xFFFFFFFF
let empty = 0

let lane i =
  if i < 0 || i >= warp_size then invalid_arg "Mask.lane: lane out of range";
  1 lsl i

let valid_group_size size = size >= 1 && size <= warp_size && warp_size mod size = 0

let group ~group_size ~group_index =
  if not (valid_group_size group_size) then
    invalid_arg "Mask.group: group_size must divide the warp";
  let groups = warp_size / group_size in
  if group_index < 0 || group_index >= groups then
    invalid_arg "Mask.group: group_index out of range";
  let base = (1 lsl group_size) - 1 in
  base lsl (group_index * group_size)

let mem m i = m land (1 lsl i) <> 0

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let lowest m =
  if m = 0 then invalid_arg "Mask.lowest: empty mask";
  let rec go i = if m land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let iter f m =
  for i = 0 to warp_size - 1 do
    if mem m i then f i
  done

let fold f init m =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) m;
  !acc

let to_list m = List.rev (fold (fun acc i -> i :: acc) [] m)

let union = ( lor )
let inter = ( land )
let disjoint a b = a land b = 0
let subset a ~of_ = a land of_ = a

let pp ppf m = Format.fprintf ppf "0x%08x" m
