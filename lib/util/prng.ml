type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64: expands a seed into well-mixed 64-bit values, used to
   initialize xoshiro state (its own stream must never be all zero). *)
let splitmix64 state =
  state := Int64.add !state golden_gamma;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

(* Non-negative 62-bit int from the top bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = bits t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1.0p-53

let float t bound = uniform t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let normal t ~mu ~sigma =
  let rec nonzero () =
    let u = uniform t in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = uniform t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let rec nonzero () =
      let u = uniform t in
      if u = 0.0 then nonzero () else u
    in
    int_of_float (Float.floor (log (nonzero ()) /. log (1.0 -. p)))

(* Rejection-inversion sampling for the Zipf distribution (Hormann/Derflinger).
   Exact for all n >= 1 and s > 0, no precomputed tables. *)
let zipf t ~n ~s =
  if n < 1 then invalid_arg "Prng.zipf: n must be >= 1";
  if s <= 0.0 then invalid_arg "Prng.zipf: s must be > 0";
  if n = 1 then 1
  else
    let h x = if s = 1.0 then log x else (x ** (1.0 -. s) -. 1.0) /. (1.0 -. s) in
    let h_inv x = if s = 1.0 then exp x else (1.0 +. ((1.0 -. s) *. x)) ** (1.0 /. (1.0 -. s)) in
    let hx0 = h 0.5 -. 1.0 in
    let hn = h (float_of_int n +. 0.5) in
    let rec draw () =
      let u = hx0 +. (uniform t *. (hn -. hx0)) in
      let x = h_inv u in
      let k = int_of_float (Float.round x) in
      let k = if k < 1 then 1 else if k > n then n else k in
      let fk = float_of_int k in
      if u >= h (fk +. 0.5) -. (fk ** -.s) then k else draw ()
    in
    draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
