type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let geomean xs =
  if Array.exists (fun x -> x <= 0.0) xs then
    invalid_arg "Stats.geomean: all samples must be positive";
  let n = Array.length xs in
  if n = 0 then 0.0
  else exp (Array.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int n)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)

let median xs = percentile xs 50.0

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty input";
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = median xs;
  }

let speedup ~baseline t =
  if t <= 0.0 then invalid_arg "Stats.speedup: non-positive time";
  baseline /. t
