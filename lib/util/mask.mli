(** 32-bit lane masks, mirroring CUDA's [__activemask]/[__syncwarp(mask)]
    conventions.  Bit [i] set means lane [i] of the warp participates.

    SIMD groups in the runtime are identified by such masks: the mask of a
    group is a contiguous run of bits covering the group's lanes (cf. the
    paper's [simdmask] runtime function). *)

type t = int
(** Always within [0, 2^32). *)

val warp_size : int
(** 32; lane ids are in \[0, 32). *)

val full : t
(** All 32 lanes. *)

val empty : t

val lane : int -> t
(** Mask with only the given lane.  @raise Invalid_argument if out of
    range. *)

val group : group_size:int -> group_index:int -> t
(** [group ~group_size ~group_index] is the contiguous mask for the
    [group_index]-th group of [group_size] lanes within a warp: lanes
    \[group_index*group_size, (group_index+1)*group_size).  [group_size]
    must divide into the warp (1,2,4,8,16 or 32).
    @raise Invalid_argument otherwise. *)

val mem : t -> int -> bool
(** [mem m lane] tests lane membership. *)

val popcount : t -> int

val lowest : t -> int
(** Index of the lowest set lane.  @raise Invalid_argument on [empty]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate set lanes in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list

val union : t -> t -> t
val inter : t -> t -> t
val disjoint : t -> t -> bool
val subset : t -> of_:t -> bool

val pp : Format.formatter -> t -> unit
(** Hex rendering, e.g. [0x0000ff00]. *)
