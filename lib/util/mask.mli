(** Contiguous lane masks, mirroring CUDA's [__activemask]/[__syncwarp(mask)]
    conventions for the subsets the runtime actually forms.

    SIMD groups in the runtime are identified by such masks: the mask of a
    group is a contiguous run of lanes covering the group (cf. the paper's
    [simdmask] runtime function).  Because every mask the runtime builds is
    a contiguous aligned range (a group, a single lane, or a whole warp),
    masks are packed as a (base, length) pair in one immediate [int] — which
    is what lets warp widths beyond 32 (and up to {!max_lanes}) fit without
    boxing, where a raw bitmask would overflow OCaml's 63-bit ints at
    width 64. *)

type t = int
(** Packed range: bits 0..7 = base lane, bits 8..15 = lane count.  The
    empty mask is the canonical [0], so stores that used "mask 0" for
    "no warp mask" keep working. *)

val max_lanes : int
(** 64; lane ids are in \[0, 64). *)

val empty : t

val full : warp_size:int -> t
(** All lanes of a warp of the given width.
    @raise Invalid_argument when [warp_size] is outside \[1, max_lanes\]. *)

val lane : int -> t
(** Mask with only the given lane.  @raise Invalid_argument if out of
    range. *)

val group : warp_size:int -> group_size:int -> group_index:int -> t
(** [group ~warp_size ~group_size ~group_index] is the contiguous mask for
    the [group_index]-th group of [group_size] lanes within a warp of
    [warp_size] lanes: lanes \[group_index*group_size,
    (group_index+1)*group_size).  [group_size] must divide the warp.
    @raise Invalid_argument otherwise. *)

val mem : t -> int -> bool
(** [mem m lane] tests lane membership. *)

val popcount : t -> int

val lowest : t -> int
(** Index of the lowest set lane.  @raise Invalid_argument on [empty]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate set lanes in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list

val union : t -> t -> t
(** Union of two ranges.  Defined only when the result is itself
    contiguous (the ranges overlap, nest, or touch).
    @raise Invalid_argument otherwise. *)

val inter : t -> t -> t
val disjoint : t -> t -> bool
val subset : t -> of_:t -> bool

val pp : Format.formatter -> t -> unit
(** Range rendering, e.g. [[8,16)]; [[]] for the empty mask. *)
