(** Environment-variable readers with the repo-wide convention that an
    unset variable and a blank ([""] or whitespace-only) value both mean
    "default" — a shell's [VAR= cmd] and [Unix.putenv v ""] (the only
    way to "remove" a variable from inside the process) behave exactly
    like not setting the knob at all. *)

val var : string -> string option
(** [var name] is the trimmed value, or [None] when unset or blank. *)

val int : string -> default:int -> int
(** @raise Invalid_argument on a non-blank, non-integer value. *)

val float : string -> default:float -> float
(** @raise Invalid_argument on a non-blank, non-numeric value. *)

val flag : string -> default:bool -> bool
(** Accepts [1/on/true/yes] and [0/off/false/no].
    @raise Invalid_argument on any other non-blank value. *)
