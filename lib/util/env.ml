(* Environment-variable access with one shared convention: a variable
   that is unset OR set to a blank string means "use the default".
   Shells export empty strings readily (VAR= cmd), and Unix.putenv
   cannot remove a variable at all, so tests that want to restore the
   default can only set "" — every knob must therefore treat blank as
   unset, the way OMPSIMD_EVAL="" already did. *)

let var name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
      match String.trim s with "" -> None | trimmed -> Some trimmed)

let int name ~default =
  match var name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "%s must be an integer, got %S" name s))

let float name ~default =
  match var name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v -> v
      | None ->
          invalid_arg (Printf.sprintf "%s must be a number, got %S" name s))

let flag name ~default =
  match var name with
  | None -> default
  | Some ("1" | "on" | "true" | "yes") -> true
  | Some ("0" | "off" | "false" | "no") -> false
  | Some s ->
      invalid_arg
        (Printf.sprintf "%s must be a boolean (1/on/true/yes or 0/off/false/no), got %S"
           name s)
