(** ASCII table rendering for benchmark and experiment output.

    The benchmark harness prints the same rows/series the paper's figures
    report; this module does the layout. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Header row; each column carries its alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** Full table with box-drawing in plain ASCII. *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper (default 2 decimals). *)

val cell_int : int -> string
