(** Deterministic pseudo-random number generation.

    The simulator must be a pure function of (configuration, seed), so all
    randomness flows through an explicit generator state rather than the
    global [Random] module.  The implementation is splitmix64 for seeding and
    xoshiro256** for the stream, both well-studied generators that are cheap
    and have no measurable bias for the workload-generation purposes here. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a fresh, statistically independent
    generator.  Useful to give each workload component its own stream so that
    adding draws in one place does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in \[lo, hi\] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val uniform : t -> float
(** Uniform in \[0, 1). *)

val bool : t -> bool

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller. *)

val geometric : t -> p:float -> int
(** Geometric distribution (number of failures before first success),
    [0 < p <= 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution on \[1, n\] with exponent
    [s], via inverse-CDF on a precomputed table-free rejection scheme.  Used
    for power-law sparse-matrix row lengths. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
