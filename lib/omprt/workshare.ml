type schedule = Static | Chunked of int | Dynamic of int

let check_geometry_args ~id ~num ~trip =
  if num <= 0 then invalid_arg "Workshare: worker count must be positive";
  if id < 0 || id >= num then invalid_arg "Workshare: worker id out of range";
  if trip < 0 then invalid_arg "Workshare: negative trip count"

let iterations schedule ~id ~num ~trip =
  check_geometry_args ~id ~num ~trip;
  match schedule with
  | Dynamic _ -> invalid_arg "Workshare.iterations: dynamic has no static set"
  | Static ->
      let rec go i acc = if i >= trip then List.rev acc else go (i + num) (i :: acc) in
      go id []
  | Chunked chunk ->
      if chunk <= 0 then invalid_arg "Workshare: chunk must be positive";
      let rec chunks base acc =
        if base >= trip then List.rev acc
        else
          let hi = min trip (base + chunk) in
          let acc = List.rev_append (List.init (hi - base) (fun k -> base + k)) acc in
          chunks (base + (num * chunk)) acc
      in
      chunks (id * chunk) []


(* Per-iteration loop overhead: induction update + bound compare/branch. *)
let step_cost (ctx : Team.ctx) =
  let cost = ctx.team.Team.cfg.Gpusim.Config.cost in
  cost.Gpusim.Config.alu +. cost.Gpusim.Config.branch

(* One fetch-add on the team's shared loop counter.  In SPMD mode the
   whole SIMD group is one OpenMP thread, so the group's main grabs and
   broadcasts the base through scratch; in generic mode only mains execute
   loop code and grab directly. *)
let group_grab (ctx : Team.ctx) ~chunk =
  let team = ctx.Team.team in
  let cost = team.Team.cfg.Gpusim.Config.cost in
  let grab () =
    Gpusim.Thread.tick ctx.Team.th cost.Gpusim.Config.atomic;
    ctx.Team.th.Gpusim.Thread.counters.Gpusim.Counters.atomics <-
      ctx.Team.th.Gpusim.Thread.counters.Gpusim.Counters.atomics + 1;
    let base = team.Team.dyn_counter in
    team.Team.dyn_counter <- base + chunk;
    base
  in
  let g = Team.geometry team in
  let gs = Simd_group.get_simd_group_size g in
  let spmd_task =
    match team.Team.active_task with
    | Some task -> task.Team.task_mode = Mode.Spmd
    | None -> true
  in
  if gs = 1 || not spmd_task then grab ()
  else begin
    let tid = ctx.Team.th.Gpusim.Thread.tid in
    let group = Simd_group.get_simd_group g ~tid in
    let leader = Simd_group.leader_tid g ~group in
    if tid = leader then
      team.Team.red_scratch.(leader) <- float_of_int (grab ());
    Team.sync_warp ctx;
    let base = int_of_float team.Team.red_scratch.(leader) in
    Team.sync_warp ctx;
    base
  end

let dynamic_loop ctx ~chunk ~trip f =
  if chunk <= 0 then invalid_arg "Workshare: chunk must be positive";
  let team = ctx.Team.team in
  let overhead = step_cost ctx in
  (* entry: reset the shared counter once, fenced by region barriers *)
  Team.region_barrier_wait ctx;
  if ctx.Team.th.Gpusim.Thread.tid = 0 then team.Team.dyn_counter <- 0;
  (* while any OpenMP thread is grabbing chunks, simd loops run classic:
     the grab order is defined by round-level fiber interleaving *)
  team.Team.dyn_active <- team.Team.dyn_active + 1;
  Team.region_barrier_wait ctx;
  let rec work () =
    let base = group_grab ctx ~chunk in
    if base < trip then begin
      let hi = min trip (base + chunk) in
      for i = base to hi - 1 do
        Gpusim.Thread.tick ctx.Team.th overhead;
        f i
      done;
      work ()
    end
  in
  work ();
  team.Team.dyn_active <- team.Team.dyn_active - 1;
  (* the implicit barrier at the end of a worksharing loop, which also
     protects the counter for the next loop *)
  Team.region_barrier_wait ctx

let run_schedule ctx schedule ~id ~num ~trip f =
  check_geometry_args ~id ~num ~trip;
  let overhead = step_cost ctx in
  let run i =
    Gpusim.Thread.tick ctx.Team.th overhead;
    f i
  in
  (match schedule with
  | Dynamic chunk -> dynamic_loop ctx ~chunk ~trip f
  | Static ->
      let i = ref id in
      while !i < trip do
        run !i;
        i := !i + num
      done
  | Chunked chunk ->
      if chunk <= 0 then invalid_arg "Workshare: chunk must be positive";
      let base = ref (id * chunk) in
      while !base < trip do
        let hi = min trip (!base + chunk) in
        for i = !base to hi - 1 do
          run i
        done;
        base := !base + (num * chunk)
      done);
  (* trailing bound check that exits the loop *)
  Gpusim.Thread.tick ctx.Team.th overhead

(* distribute splits the iteration space into one contiguous chunk per
   team (LLVM's default distribute schedule: dist_schedule(static) with
   chunk = ceil(trip/teams)), which keeps small iteration spaces spread
   across all SMs. *)
let distribute_bounds ~trip ~num_teams block_id =
  let chunk = (trip + num_teams - 1) / num_teams in
  let base = min trip (block_id * chunk) in
  let stop = min trip (base + chunk) in
  (base, stop)

let team_chunk ctx ~trip =
  let team = ctx.Team.team in
  distribute_bounds ~trip ~num_teams:team.Team.params.Team.num_teams
    team.Team.block_id

(* Host-side mirror of [team_chunk], for declaring Device block classes:
   teams receiving equally long contiguous chunks of a uniform iteration
   space are equivalent blocks. *)
let distribute_extent ~trip ~num_teams block_id =
  let base, stop = distribute_bounds ~trip ~num_teams block_id in
  stop - base

let distribute ctx ?(schedule = Static) ~trip f =
  let base, stop = team_chunk ctx ~trip in
  match schedule with
  | Static | Dynamic _ ->
      (* dist_schedule is static; a dynamic request degrades gracefully *)
      run_schedule ctx Static ~id:0 ~num:1 ~trip:(stop - base)
        (fun i -> f (base + i))
  | Chunked _ ->
      run_schedule ctx schedule ~id:ctx.Team.team.Team.block_id
        ~num:ctx.Team.team.Team.params.Team.num_teams ~trip f

let omp_thread ctx =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  (Simd_group.get_simd_group g ~tid, g.Simd_group.num_groups)

let omp_for ctx ?(schedule = Static) ~trip f =
  let id, num = omp_thread ctx in
  run_schedule ctx schedule ~id ~num ~trip f

let distribute_parallel_for ctx ?(schedule = Static) ~trip f =
  (* combined construct: a contiguous team chunk, workshared across the
     team's OpenMP threads *)
  let base, stop = team_chunk ctx ~trip in
  let group, num_groups = omp_thread ctx in
  run_schedule ctx schedule ~id:group ~num:num_groups ~trip:(stop - base)
    (fun i -> f (base + i))

(* --- fused lockstep execution ------------------------------------------

   The classic simd loop parks every lane on a zero-cost alignment
   barrier after every round; with bodies of a few memory accesses the
   effect-continuation traffic (capture + two stack switches per lane per
   round) dominates the host time of the simd-heavy experiments.  The
   fused path keeps the entry [sync_warp] rendezvous — whose completing
   arriver the engine resumes *before* any released waiter — and turns
   the rounds into direct calls: every lane deposits its thread handle,
   loop closure and trip count in the team's fused-lockstep scratch, and
   the first lane through the rendezvous drives all lanes' iterations
   round-major in ascending lane order, replicating the per-lane
   tick/SIMT-factor/sanitizer sequence the classic rounds perform and
   aligning the group's clocks at each round boundary exactly as the
   zero-cost barrier release did.  Parked lanes wake to find the group's
   sequence number advanced and skip straight to the loop exit.

   Per-lane virtual-clock math is execution-order independent (each
   lane's own charges plus a commutative max-align per round), so fusing
   only changes which deterministic interleaving the order-sensitive
   models (coalescing window, L2 sessions) observe: the canonical
   ascending-lane round is the SIMT instruction the lockstep rounds
   model, where the classic order was an artifact of fiber scheduling.
   The warp's atomic epoch advances once per lane per round exactly as
   the per-lane barrier arrivals did, so atomic-contention accounting is
   unchanged by fusing.

   Fault-injected runs keep the classic path: stall faults park their
   victims at the per-round barriers, which the fused rounds never
   reach.  [OMPSIMD_LOCKSTEP=classic] restores the barrier-per-round
   execution for bisection. *)

let fused = ref true

let refresh_from_env () =
  match Ompsimd_util.Env.var "OMPSIMD_LOCKSTEP" with
  | None | Some "fused" -> fused := true
  | Some "classic" -> fused := false
  | Some s ->
      invalid_arg
        (Printf.sprintf "OMPSIMD_LOCKSTEP must be \"fused\" or \"classic\", got %S"
           s)

let drop_fn : int -> unit = fun _ -> ()
let drop_red : int -> float = fun _ -> 0.0

let deposit (team : Team.t) (th : Gpusim.Thread.t) ~tid ~trip =
  if Array.length team.Team.fused_ths = 0 then
    team.Team.fused_ths <- Array.make (Array.length team.Team.fused_trip) th;
  team.Team.fused_ths.(tid) <- th;
  team.Team.fused_trip.(tid) <- trip

(* A group whose lanes disagree on the trip count cannot be driven — and
   must not be: under classic execution divergent trips deadlock at the
   lockstep barriers with sanitizer findings attached, which is exactly
   the surface tests and users rely on.  The driver declines and every
   lane falls back to its own classic rounds. *)
let uniform_trip (team : Team.t) ~base ~num ~trip =
  let ok = ref true in
  for l = 0 to num - 1 do
    if team.Team.fused_trip.(base + l) <> trip then ok := false
  done;
  !ok

(* One round boundary, driver-side: the group's clocks align to the
   round maximum (the lockstep barrier's cost is 0.0, so alignment is
   the entire release).  The per-lane atomic-epoch bumps happen in the
   lane loop, where each classic arrival performed them. *)
let align_round (ths : Gpusim.Thread.t array) ~base ~num =
  let lead = ths.(base) in
  let tmax = ref (Gpusim.Thread.clock lead) in
  for l = 1 to num - 1 do
    let c = Gpusim.Thread.clock ths.(base + l) in
    if c > !tmax then tmax := c
  done;
  for l = 0 to num - 1 do
    Gpusim.Thread.align_clock ths.(base + l) !tmax
  done

(* Sanitizer bracket around a driven loop: per-tid attribution while the
   driver executes other lanes' iterations (the classic path's
   [set_actor] on loop entry), restored on exit. *)
let san_set_actors (team : Team.t) ~base ~num =
  let ths = team.Team.fused_ths in
  for l = 0 to num - 1 do
    team.Team.fused_actor.(base + l) <-
      Gpusim.Ompsan.set_actor ths.(base + l) (base + l)
  done

let san_restore_actors (team : Team.t) ~base ~num =
  let ths = team.Team.fused_ths in
  for l = 0 to num - 1 do
    ignore (Gpusim.Ompsan.set_actor ths.(base + l) team.Team.fused_actor.(base + l))
  done

let san_round (team : Team.t) g ~base ~num =
  let ths = team.Team.fused_ths in
  let mask = Simd_group.simdmask g ~tid:base in
  let bar = Team.lockstep_barrier team ths.(base) ~mask in
  for l = 0 to num - 1 do
    Team.san_warp_arrive ths.(base + l) ~mask bar
  done

let drive_simd ctx g ~group ~num ~trip =
  let team = ctx.Team.team in
  let base = Simd_group.leader_tid g ~group in
  let ths = team.Team.fused_ths in
  let fns = team.Team.fused_fns in
  let overhead = step_cost ctx in
  let san = !Gpusim.Ompsan.enabled in
  if san then san_set_actors team ~base ~num;
  let rounds = (trip + num - 1) / num in
  for r = 0 to rounds - 1 do
    let rbase = r * num in
    let rem = trip - rbase in
    let active = if rem >= num then num else rem in
    for l = 0 to num - 1 do
      let th = ths.(base + l) in
      Gpusim.Thread.tick th overhead;
      let iv = rbase + l in
      if iv < trip then
        if active = num then fns.(base + l) iv
        else begin
          let saved = Gpusim.Thread.simt_factor th in
          Gpusim.Thread.set_simt_factor th
            (saved *. (float_of_int num /. float_of_int active));
          fns.(base + l) iv;
          Gpusim.Thread.set_simt_factor th saved
        end;
      (* the lane's classic barrier arrival bumped the warp's atomic
         epoch right after its body; keep that wipe structure *)
      let w = th.Gpusim.Thread.warp in
      w.Gpusim.Thread.atomic_gen <- w.Gpusim.Thread.atomic_gen + 1
    done;
    if san then san_round team g ~base ~num;
    align_round ths ~base ~num
  done;
  if san then san_restore_actors team ~base ~num;
  for l = 0 to num - 1 do
    Gpusim.Thread.tick ths.(base + l) overhead
  done

let drive_fold ctx g ~group ~num ~trip =
  let team = ctx.Team.team in
  let base = Simd_group.leader_tid g ~group in
  let ths = team.Team.fused_ths in
  let reds = team.Team.fused_reds in
  let acc = team.Team.fused_acc in
  let overhead = step_cost ctx in
  let san = !Gpusim.Ompsan.enabled in
  if san then san_set_actors team ~base ~num;
  for l = 0 to num - 1 do
    acc.(base + l) <- 0.0
  done;
  let rounds = (trip + num - 1) / num in
  for r = 0 to rounds - 1 do
    let rbase = r * num in
    let rem = trip - rbase in
    let active = if rem >= num then num else rem in
    for l = 0 to num - 1 do
      let th = ths.(base + l) in
      Gpusim.Thread.tick th overhead;
      let iv = rbase + l in
      if iv < trip then
        if active = num then acc.(base + l) <- acc.(base + l) +. reds.(base + l) iv
        else begin
          let saved = Gpusim.Thread.simt_factor th in
          Gpusim.Thread.set_simt_factor th
            (saved *. (float_of_int num /. float_of_int active));
          let v = reds.(base + l) iv in
          Gpusim.Thread.set_simt_factor th saved;
          acc.(base + l) <- acc.(base + l) +. v
        end;
      let w = th.Gpusim.Thread.warp in
      w.Gpusim.Thread.atomic_gen <- w.Gpusim.Thread.atomic_gen + 1
    done;
    if san then san_round team g ~base ~num;
    align_round ths ~base ~num
  done;
  if san then san_restore_actors team ~base ~num;
  for l = 0 to num - 1 do
    Gpusim.Thread.tick ths.(base + l) overhead
  done

(* The classic barrier-per-round execution, starting after the entry
   rendezvous: each lane steps through its own rounds, parking on the
   zero-cost lockstep barrier after every one.  Runs under
   [OMPSIMD_LOCKSTEP=classic], under fault injection, and as the
   fallback when a group's lanes diverge on the trip count. *)
let classic_simd_rounds ctx ~id ~num ~trip f =
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  (* Simd-loop iterations belong to the executing lane itself, not to
     the SPMD region's logical thread: restore per-tid attribution so
     the sanitizer can see lanes of one group racing on a cell. *)
  let prev_actor =
    if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_actor ctx.Team.th tid
    else tid
  in
  (* Lockstep rounds: every lane steps through ceil(trip/num) rounds,
     masked off when its iteration number falls beyond the trip count —
     this is both how SIMT hardware executes the loop and what makes
     idle-lane waste (trip not divisible by the group size) visible. *)
  let overhead = step_cost ctx in
  let rounds = (trip + num - 1) / num in
  for r = 0 to rounds - 1 do
    let iv = id + (r * num) in
    Gpusim.Thread.tick ctx.Team.th overhead;
    if iv < trip then begin
      (* In a remainder round the masked-off lanes still occupy their
         issue slots, so the active lanes carry the whole group's
         width: this is the idle-thread waste of a trip count that the
         group size does not divide (S6.5). *)
      let active = min num (trip - (r * num)) in
      if active = num then f iv
      else
        Gpusim.Thread.with_simt_factor ctx.Team.th
          (Gpusim.Thread.simt_factor ctx.Team.th
          *. (float_of_int num /. float_of_int active))
          (fun () -> f iv)
    end;
    Team.lockstep_align ctx
  done;
  if !Gpusim.Ompsan.enabled then
    ignore (Gpusim.Ompsan.set_actor ctx.Team.th prev_actor);
  Gpusim.Thread.tick ctx.Team.th overhead

let classic_fold_rounds ctx ~id ~num ~trip (f : int -> float) =
  let th = ctx.Team.th in
  let tid = th.Gpusim.Thread.tid in
  let prev_actor =
    if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_actor th tid else tid
  in
  let overhead = step_cost ctx in
  let rounds = (trip + num - 1) / num in
  let acc = ref 0.0 in
  for r = 0 to rounds - 1 do
    let iv = id + (r * num) in
    Gpusim.Thread.tick th overhead;
    if iv < trip then begin
      let active = min num (trip - (r * num)) in
      if active = num then acc := !acc +. f iv
      else begin
        (* hand-inlined [with_simt_factor]: its thunk would capture
           [acc] and force the accumulator into a heap cell *)
        let saved = Gpusim.Thread.simt_factor th in
        Gpusim.Thread.set_simt_factor th
          (saved *. (float_of_int num /. float_of_int active));
        let v = f iv in
        Gpusim.Thread.set_simt_factor th saved;
        acc := !acc +. v
      end
    end;
    Team.lockstep_align ctx
  done;
  if !Gpusim.Ompsan.enabled then
    ignore (Gpusim.Ompsan.set_actor th prev_actor);
  Gpusim.Thread.tick th overhead;
  !acc

let fused_simd_loop ctx g ~tid ~id ~trip ~num f =
  let team = ctx.Team.team in
  deposit team ctx.Team.th ~tid ~trip;
  team.Team.fused_fns.(tid) <- f;
  let group = Simd_group.get_simd_group g ~tid in
  let my_seq = team.Team.fused_seq.(group) in
  Team.sync_warp ctx;
  if
    team.Team.fused_seq.(group) = my_seq
    && uniform_trip team ~base:(Simd_group.leader_tid g ~group) ~num ~trip
  then begin
    team.Team.fused_seq.(group) <- my_seq + 1;
    drive_simd ctx g ~group ~num ~trip
  end;
  if team.Team.fused_seq.(group) = my_seq then
    (* divergent trip counts: the driver declined; every lane runs its
       own classic rounds so the divergence surfaces (deadlock, with
       sanitizer findings) exactly as under classic execution *)
    classic_simd_rounds ctx ~id ~num ~trip f;
  (* drop the deposited closure so its captures don't outlive the loop *)
  team.Team.fused_fns.(tid) <- drop_fn

let fused_simd_fold ctx g ~tid ~id ~trip ~num f =
  let team = ctx.Team.team in
  deposit team ctx.Team.th ~tid ~trip;
  team.Team.fused_reds.(tid) <- f;
  let group = Simd_group.get_simd_group g ~tid in
  let my_seq = team.Team.fused_seq.(group) in
  Team.sync_warp ctx;
  if
    team.Team.fused_seq.(group) = my_seq
    && uniform_trip team ~base:(Simd_group.leader_tid g ~group) ~num ~trip
  then begin
    team.Team.fused_seq.(group) <- my_seq + 1;
    drive_fold ctx g ~group ~num ~trip
  end;
  if team.Team.fused_seq.(group) = my_seq then begin
    let r = classic_fold_rounds ctx ~id ~num ~trip f in
    team.Team.fused_reds.(tid) <- drop_red;
    r
  end
  else begin
    team.Team.fused_reds.(tid) <- drop_red;
    team.Team.fused_acc.(tid)
  end

let simd_loop ctx ~trip f =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  let id = Simd_group.get_simd_group_id g ~tid in
  let num = Simd_group.get_simd_group_size g in
  if num = 1 then run_schedule ctx Static ~id:0 ~num:1 ~trip f
  else if !fused && team.Team.dyn_active = 0 && not !Gpusim.Fault.armed then
    fused_simd_loop ctx g ~tid ~id ~trip ~num f
  else begin
    Team.sync_warp ctx;
    classic_simd_rounds ctx ~id ~num ~trip f
  end

let sequential_loop ctx ~trip f = run_schedule ctx Static ~id:0 ~num:1 ~trip f

(* Sum-specialized folds over the two loop shapes above.  The generic
   reduction path accumulates through a [ref] captured by a closure and
   an [op.combine] closure call, which boxes a float per element; these
   keep the running sum in a local (register-allocated) accumulator.
   The tick sequence is identical to running the generic loop with a
   body doing the same work, so simulated reports do not change. *)
let sequential_fold_sum ctx ~trip (f : int -> float) =
  check_geometry_args ~id:0 ~num:1 ~trip;
  let overhead = step_cost ctx in
  let th = ctx.Team.th in
  let acc = ref 0.0 in
  for i = 0 to trip - 1 do
    Gpusim.Thread.tick th overhead;
    acc := !acc +. f i
  done;
  Gpusim.Thread.tick th overhead;
  !acc

let simd_fold_sum ctx ~trip (f : int -> float) =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  let id = Simd_group.get_simd_group_id g ~tid in
  let num = Simd_group.get_simd_group_size g in
  if num = 1 then sequential_fold_sum ctx ~trip f
  else if !fused && team.Team.dyn_active = 0 && not !Gpusim.Fault.armed then
    fused_simd_fold ctx g ~tid ~id ~trip ~num f
  else begin
    Team.sync_warp ctx;
    classic_fold_rounds ctx ~id ~num ~trip f
  end

(* The executing lane for single/master: OpenMP thread 0's SIMD main —
   i.e. tid 0, which executes region code in both modes. *)
let master ctx f =
  if ctx.Team.th.Gpusim.Thread.tid = 0 then f ()

let single ctx f =
  master ctx f;
  Team.region_barrier_wait ctx
