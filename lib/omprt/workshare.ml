type schedule = Static | Chunked of int | Dynamic of int

let check_geometry_args ~id ~num ~trip =
  if num <= 0 then invalid_arg "Workshare: worker count must be positive";
  if id < 0 || id >= num then invalid_arg "Workshare: worker id out of range";
  if trip < 0 then invalid_arg "Workshare: negative trip count"

let iterations schedule ~id ~num ~trip =
  check_geometry_args ~id ~num ~trip;
  match schedule with
  | Dynamic _ -> invalid_arg "Workshare.iterations: dynamic has no static set"
  | Static ->
      let rec go i acc = if i >= trip then List.rev acc else go (i + num) (i :: acc) in
      go id []
  | Chunked chunk ->
      if chunk <= 0 then invalid_arg "Workshare: chunk must be positive";
      let rec chunks base acc =
        if base >= trip then List.rev acc
        else
          let hi = min trip (base + chunk) in
          let acc = List.rev_append (List.init (hi - base) (fun k -> base + k)) acc in
          chunks (base + (num * chunk)) acc
      in
      chunks (id * chunk) []


(* Per-iteration loop overhead: induction update + bound compare/branch. *)
let step_cost (ctx : Team.ctx) =
  let cost = ctx.team.Team.cfg.Gpusim.Config.cost in
  cost.Gpusim.Config.alu +. cost.Gpusim.Config.branch

(* One fetch-add on the team's shared loop counter.  In SPMD mode the
   whole SIMD group is one OpenMP thread, so the group's main grabs and
   broadcasts the base through scratch; in generic mode only mains execute
   loop code and grab directly. *)
let group_grab (ctx : Team.ctx) ~chunk =
  let team = ctx.Team.team in
  let cost = team.Team.cfg.Gpusim.Config.cost in
  let grab () =
    Gpusim.Thread.tick ctx.Team.th cost.Gpusim.Config.atomic;
    ctx.Team.th.Gpusim.Thread.counters.Gpusim.Counters.atomics <-
      ctx.Team.th.Gpusim.Thread.counters.Gpusim.Counters.atomics + 1;
    let base = team.Team.dyn_counter in
    team.Team.dyn_counter <- base + chunk;
    base
  in
  let g = Team.geometry team in
  let gs = Simd_group.get_simd_group_size g in
  let spmd_task =
    match team.Team.active_task with
    | Some task -> task.Team.task_mode = Mode.Spmd
    | None -> true
  in
  if gs = 1 || not spmd_task then grab ()
  else begin
    let tid = ctx.Team.th.Gpusim.Thread.tid in
    let group = Simd_group.get_simd_group g ~tid in
    let leader = Simd_group.leader_tid g ~group in
    if tid = leader then
      team.Team.red_scratch.(leader) <- float_of_int (grab ());
    Team.sync_warp ctx;
    let base = int_of_float team.Team.red_scratch.(leader) in
    Team.sync_warp ctx;
    base
  end

let dynamic_loop ctx ~chunk ~trip f =
  if chunk <= 0 then invalid_arg "Workshare: chunk must be positive";
  let team = ctx.Team.team in
  let overhead = step_cost ctx in
  (* entry: reset the shared counter once, fenced by region barriers *)
  Team.region_barrier_wait ctx;
  if ctx.Team.th.Gpusim.Thread.tid = 0 then team.Team.dyn_counter <- 0;
  Team.region_barrier_wait ctx;
  let rec work () =
    let base = group_grab ctx ~chunk in
    if base < trip then begin
      let hi = min trip (base + chunk) in
      for i = base to hi - 1 do
        Gpusim.Thread.tick ctx.Team.th overhead;
        f i
      done;
      work ()
    end
  in
  work ();
  (* the implicit barrier at the end of a worksharing loop, which also
     protects the counter for the next loop *)
  Team.region_barrier_wait ctx

let run_schedule ctx schedule ~id ~num ~trip f =
  check_geometry_args ~id ~num ~trip;
  let overhead = step_cost ctx in
  let run i =
    Gpusim.Thread.tick ctx.Team.th overhead;
    f i
  in
  (match schedule with
  | Dynamic chunk -> dynamic_loop ctx ~chunk ~trip f
  | Static ->
      let i = ref id in
      while !i < trip do
        run !i;
        i := !i + num
      done
  | Chunked chunk ->
      if chunk <= 0 then invalid_arg "Workshare: chunk must be positive";
      let base = ref (id * chunk) in
      while !base < trip do
        let hi = min trip (!base + chunk) in
        for i = !base to hi - 1 do
          run i
        done;
        base := !base + (num * chunk)
      done);
  (* trailing bound check that exits the loop *)
  Gpusim.Thread.tick ctx.Team.th overhead

(* distribute splits the iteration space into one contiguous chunk per
   team (LLVM's default distribute schedule: dist_schedule(static) with
   chunk = ceil(trip/teams)), which keeps small iteration spaces spread
   across all SMs. *)
let distribute_bounds ~trip ~num_teams block_id =
  let chunk = (trip + num_teams - 1) / num_teams in
  let base = min trip (block_id * chunk) in
  let stop = min trip (base + chunk) in
  (base, stop)

let team_chunk ctx ~trip =
  let team = ctx.Team.team in
  distribute_bounds ~trip ~num_teams:team.Team.params.Team.num_teams
    team.Team.block_id

(* Host-side mirror of [team_chunk], for declaring Device block classes:
   teams receiving equally long contiguous chunks of a uniform iteration
   space are equivalent blocks. *)
let distribute_extent ~trip ~num_teams block_id =
  let base, stop = distribute_bounds ~trip ~num_teams block_id in
  stop - base

let distribute ctx ?(schedule = Static) ~trip f =
  let base, stop = team_chunk ctx ~trip in
  match schedule with
  | Static | Dynamic _ ->
      (* dist_schedule is static; a dynamic request degrades gracefully *)
      run_schedule ctx Static ~id:0 ~num:1 ~trip:(stop - base)
        (fun i -> f (base + i))
  | Chunked _ ->
      run_schedule ctx schedule ~id:ctx.Team.team.Team.block_id
        ~num:ctx.Team.team.Team.params.Team.num_teams ~trip f

let omp_thread ctx =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  (Simd_group.get_simd_group g ~tid, g.Simd_group.num_groups)

let omp_for ctx ?(schedule = Static) ~trip f =
  let id, num = omp_thread ctx in
  run_schedule ctx schedule ~id ~num ~trip f

let distribute_parallel_for ctx ?(schedule = Static) ~trip f =
  (* combined construct: a contiguous team chunk, workshared across the
     team's OpenMP threads *)
  let base, stop = team_chunk ctx ~trip in
  let group, num_groups = omp_thread ctx in
  run_schedule ctx schedule ~id:group ~num:num_groups ~trip:(stop - base)
    (fun i -> f (base + i))

let simd_loop ctx ~trip f =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  let id = Simd_group.get_simd_group_id g ~tid in
  let num = Simd_group.get_simd_group_size g in
  if num = 1 then run_schedule ctx Static ~id:0 ~num:1 ~trip f
  else begin
    Team.sync_warp ctx;
    (* Simd-loop iterations belong to the executing lane itself, not to
       the SPMD region's logical thread: restore per-tid attribution so
       the sanitizer can see lanes of one group racing on a cell. *)
    let prev_actor =
      if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_actor ctx.Team.th tid
      else tid
    in
    (* Lockstep rounds: every lane steps through ceil(trip/num) rounds,
       masked off when its iteration number falls beyond the trip count —
       this is both how SIMT hardware executes the loop and what makes
       idle-lane waste (trip not divisible by the group size) visible. *)
    let overhead = step_cost ctx in
    let rounds = (trip + num - 1) / num in
    for r = 0 to rounds - 1 do
      let iv = id + (r * num) in
      Gpusim.Thread.tick ctx.Team.th overhead;
      if iv < trip then begin
        (* In a remainder round the masked-off lanes still occupy their
           issue slots, so the active lanes carry the whole group's
           width: this is the idle-thread waste of a trip count that the
           group size does not divide (S6.5). *)
        let active = min num (trip - (r * num)) in
        if active = num then f iv
        else
          Gpusim.Thread.with_simt_factor ctx.Team.th
            (Gpusim.Thread.simt_factor ctx.Team.th
            *. (float_of_int num /. float_of_int active))
            (fun () -> f iv)
      end;
      Team.lockstep_align ctx
    done;
    if !Gpusim.Ompsan.enabled then
      ignore (Gpusim.Ompsan.set_actor ctx.Team.th prev_actor);
    Gpusim.Thread.tick ctx.Team.th overhead
  end

let sequential_loop ctx ~trip f = run_schedule ctx Static ~id:0 ~num:1 ~trip f

(* Sum-specialized folds over the two loop shapes above.  The generic
   reduction path accumulates through a [ref] captured by a closure and
   an [op.combine] closure call, which boxes a float per element; these
   keep the running sum in a local (register-allocated) accumulator.
   The tick sequence is identical to running the generic loop with a
   body doing the same work, so simulated reports do not change. *)
let sequential_fold_sum ctx ~trip (f : int -> float) =
  check_geometry_args ~id:0 ~num:1 ~trip;
  let overhead = step_cost ctx in
  let th = ctx.Team.th in
  let acc = ref 0.0 in
  for i = 0 to trip - 1 do
    Gpusim.Thread.tick th overhead;
    acc := !acc +. f i
  done;
  Gpusim.Thread.tick th overhead;
  !acc

let simd_fold_sum ctx ~trip (f : int -> float) =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  let id = Simd_group.get_simd_group_id g ~tid in
  let num = Simd_group.get_simd_group_size g in
  if num = 1 then sequential_fold_sum ctx ~trip f
  else begin
    let th = ctx.Team.th in
    Team.sync_warp ctx;
    let prev_actor =
      if !Gpusim.Ompsan.enabled then Gpusim.Ompsan.set_actor th tid else tid
    in
    let overhead = step_cost ctx in
    let rounds = (trip + num - 1) / num in
    let acc = ref 0.0 in
    for r = 0 to rounds - 1 do
      let iv = id + (r * num) in
      Gpusim.Thread.tick th overhead;
      if iv < trip then begin
        let active = min num (trip - (r * num)) in
        if active = num then acc := !acc +. f iv
        else begin
          (* hand-inlined [with_simt_factor]: its thunk would capture
             [acc] and force the accumulator into a heap cell *)
          let saved = Gpusim.Thread.simt_factor th in
          Gpusim.Thread.set_simt_factor th
            (saved *. (float_of_int num /. float_of_int active));
          let v = f iv in
          Gpusim.Thread.set_simt_factor th saved;
          acc := !acc +. v
        end
      end;
      Team.lockstep_align ctx
    done;
    if !Gpusim.Ompsan.enabled then
      ignore (Gpusim.Ompsan.set_actor th prev_actor);
    Gpusim.Thread.tick th overhead;
    !acc
  end

(* The executing lane for single/master: OpenMP thread 0's SIMD main —
   i.e. tid 0, which executes region code in both modes. *)
let master ctx f =
  if ctx.Team.th.Gpusim.Thread.tid = 0 then f ()

let single ctx f =
  master ctx f;
  Team.region_barrier_wait ctx
