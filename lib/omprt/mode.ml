type t = Generic | Spmd

let equal a b = match (a, b) with Generic, Generic | Spmd, Spmd -> true | _ -> false
let is_spmd = function Spmd -> true | Generic -> false
let to_string = function Generic -> "generic" | Spmd -> "spmd"
let pp ppf t = Format.pp_print_string ppf (to_string t)
