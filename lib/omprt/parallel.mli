(** The [__parallel] runtime entry point (§5.2, Fig 3).

    [parallel] is reached by the team main thread alone when the teams
    region runs in generic mode (the workers are idling in the team state
    machine and get signalled), or by every thread when the teams region
    runs in SPMD mode.  Within the region there is a second mode choice:
    an SPMD parallel region is executed by all threads of every SIMD
    group; a generic one only by each group's SIMD main, with the group's
    workers entering the SIMD state machine. *)

val parallel :
  Team.ctx ->
  mode:Mode.t ->
  simd_len:int ->
  ?payload:Payload.t ->
  ?fn_id:int ->
  Team.microtask ->
  unit
(** Open a parallel region with the given mode and SIMD group size.

    [simd_len = 1] always executes as SPMD with singleton groups — the
    paper's two-level compatibility mode (§5.4).  On a device without
    warp-level barriers, a request for a generic region forces
    [simd_len = 1] (§5.4.1), making every simd loop sequential.

    @raise Invalid_argument if [simd_len] does not divide the warp size
    or the team's worker count. *)

val exec_on_thread : Team.ctx -> Team.parallel_task -> unit
(** Per-thread body of [__parallel] (Fig 3) — exposed for the team state
    machine in {!Target} and for tests. *)
