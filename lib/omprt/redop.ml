type t = { identity : float; combine : float -> float -> float }

let sum = { identity = 0.0; combine = ( +. ) }
let max = { identity = Float.neg_infinity; combine = Float.max }
let min = { identity = Float.infinity; combine = Float.min }
