(** Offloaded-region entry: [__target_init], the team state machine, and
    the kernel launcher (§5.2, Fig 5).

    In SPMD teams mode every thread returns from initialization straight
    into the target-region body.  In generic teams mode only the team main
    thread (lane 0 of the extra warp, Fig 2) runs the body; worker threads
    enter the team state machine where they idle at the team barrier until
    the main thread publishes a parallel region, and the remaining lanes of
    the main warp retire immediately. *)

val launch :
  cfg:Gpusim.Config.t ->
  ?pool:Gpusim.Pool.t ->
  ?trace:Gpusim.Trace.t ->
  ?block_class:(int -> int) ->
  params:Team.params ->
  ?dispatch_table_size:int ->
  (Team.ctx -> unit) ->
  Gpusim.Device.report
(** [launch ~cfg ~params body] runs the target region [body] on
    [params.num_teams] teams of [params.num_threads] worker threads.
    [dispatch_table_size] is the number of outlined regions the compiler
    put in the if-cascade dispatcher (§5.5); ids beyond it pay the
    indirect-call penalty.  The returned report carries the simulated
    kernel time and merged counters.  [pool] and [block_class] are
    forwarded to {!Gpusim.Device.launch}: the former simulates teams on
    several host domains, the latter deduplicates equivalent teams —
    both preserve the report bit-for-bit (see the Device determinism
    contract). *)

val team_state_machine : (Team.ctx -> unit) -> Team.ctx -> unit
(** Worker-thread loop for generic teams mode — exposed for tests.  The
    first argument is unused by workers (they receive outlined functions
    through the signal slot) but keeps the signature parallel to the main
    path. *)
