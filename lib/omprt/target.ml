let target_init (ctx : Team.ctx) =
  (* Shared team-state initialization: a small fixed cost per thread. *)
  let cost = ctx.Team.team.Team.cfg.Gpusim.Config.cost in
  Gpusim.Thread.tick ctx.Team.th cost.Gpusim.Config.call;
  Gpusim.Thread.trace ctx.Team.th ~tag:"target_init" ""

let team_state_machine _body (ctx : Team.ctx) =
  let team = ctx.Team.team in
  let rec idle () =
    (* Workers immediately encounter a thread barrier and remain idle
       until the main thread publishes a parallel region (§3.1). *)
    Team.team_barrier_wait ctx;
    match team.Team.parallel_signal with
    | None -> () (* kernel termination *)
    | Some task ->
        Gpusim.Counters.bump ctx.Team.th.Gpusim.Thread.counters
          "target.state_machine_wakeups" 1.0;
        Sharing.fetch ~sharers:team.Team.num_workers team.Team.sharing
          ctx.Team.th task.Team.payload_location task.Team.payload;
        Payload.unpack ctx.Team.th task.Team.payload;
        Parallel.exec_on_thread ctx task;
        Team.team_barrier_wait ctx;
        idle ()
  in
  idle ()

let target_deinit (ctx : Team.ctx) =
  let team = ctx.Team.team in
  match team.Team.params.Team.teams_mode with
  | Mode.Spmd -> ()
  | Mode.Generic ->
      (* Publish the termination signal and release the workers. *)
      team.Team.parallel_signal <- None;
      Team.team_barrier_wait ctx

let thread_main body team (th : Gpusim.Thread.t) =
  let ctx = { Team.th; team } in
  target_init ctx;
  match Team.role team ~tid:th.Gpusim.Thread.tid with
  | Team.Worker -> (
      match team.Team.params.Team.teams_mode with
      | Mode.Spmd ->
          (* In teams-SPMD every worker redundantly runs the top-level
             body as the (single logical) team main; attribute those
             accesses to one actor so the sanitizer ignores the
             redundancy. *)
          if !Gpusim.Ompsan.enabled then ignore (Gpusim.Ompsan.set_actor th 0);
          body ctx
      | Mode.Generic -> team_state_machine body ctx)
  | Team.Team_main ->
      (* The team main runs alone in the extra warp: every instruction it
         issues occupies a full warp's issue slots (§5.1 / Fig 2). *)
      Gpusim.Thread.with_simt_factor th
        (float_of_int team.Team.cfg.Gpusim.Config.warp_size) (fun () ->
          body ctx;
          target_deinit ctx)
  | Team.Inactive_main_lane -> ()

let launch ~cfg ?pool ?trace ?block_class ~params ?(dispatch_table_size = 0)
    body =
  Workshare.refresh_from_env ();
  let block = Team.block_threads ~cfg params in
  Gpusim.Device.launch ~cfg ?pool ?trace ?block_class
    ~grid:params.Team.num_teams ~block
    ~init:(fun ~block_id arena ->
      let team = Team.create ~cfg ~arena ~params ~block_id in
      team.Team.dispatch_table_size <- dispatch_table_size;
      team)
    ~body:(thread_main body) ()
