(* The variable-sharing space (§5.3.1), as a dynamic per-team allocator.

   The previous implementation statically split the slab into
   [total / (num_groups + 1)] slices, so a team with few live publishers
   wasted most of the slab and a payload one byte over the slice fell
   back to global memory even when the slab was nearly empty.  This
   version allocates variable-size slices on demand, scoped to the
   parallel/SIMD region that acquired them (cf. Bercea et al.,
   "Implementing implicit OpenMP data sharing on GPUs"):

   - the common, properly nested case is a bump-pointer stack: acquire
     pushes at [top], releasing the top frame pops it;
   - concurrent SIMD mains release out of stack order, so a freed inner
     frame goes onto a first-fit free list (coalesced with neighbours,
     folded back into [top] when it becomes trailing) that the next
     acquire reuses before growing the stack — under the steady state of
     N leaders cycling equal-size payloads this recycles exactly, no
     fragmentation, no leak;
   - when neither the free list nor the remaining slab can hold the
     payload (or the exhaust fault is armed), the acquire falls back to
     a pooled global-memory buffer: the *first* acquisition of a pool
     slot pays the device-malloc round-trip, a reuse pays only the
     freelist access — the production design's team malloc cache. *)

type location =
  | Shared_space of { offset : int; bytes : int; vbase : int }
  | Global_fallback of { slot : int; bytes : int }

(* Placeholder for location-typed fields before any acquire; never
   released or copied through. *)
let none = Shared_space { offset = 0; bytes = 0; vbase = 0 }

type t = {
  arena_id : int;  (* sanitizer shadow key for the backing arena *)
  total_bytes : int;
  mutable nominal_groups : int;
      (* last [configure]: only feeds the nominal per-publisher slice
         reported by [slice_bytes] (the E3 ablation's table column) *)
  (* --- slab stack + free list (offsets into the reservation) --- *)
  mutable top : int;
  mutable free_off : int array;  (* sorted by offset, coalesced *)
  mutable free_len : int array;
  mutable nfree : int;
  mutable live : int;
  (* --- pooled global fallback --- *)
  mutable pool_cap : int array;  (* slot -> buffer capacity in bytes *)
  mutable pool_free : bool array;
  mutable npool : int;
  (* --- sanitizer virtual addressing --- *)
  mutable next_vbase : int;
      (* every grant gets a fresh shadow address range: physical offsets
         are recycled across region lifetimes, and reusing shadow
         addresses would make two well-synchronized regions that merely
         reused the same slab bytes look like a data race *)
  (* --- statistics --- *)
  mutable shared_grants : int;
  mutable global_fallbacks : int;
  mutable pool_reuses : int;
  mutable high_water : int;
}

let default_bytes = 2048
let min_bytes = 256

let create ~arena ~bytes =
  match Gpusim.Shared.alloc arena ~bytes with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Sharing.create: %d B sharing space exceeds block shared memory"
           bytes)
  | Some (_ : int) ->
      {
        arena_id = Gpusim.Shared.id arena;
        total_bytes = bytes;
        nominal_groups = 0;
        top = 0;
        free_off = Array.make 8 0;
        free_len = Array.make 8 0;
        nfree = 0;
        live = 0;
        pool_cap = Array.make 4 0;
        pool_free = Array.make 4 false;
        npool = 0;
        next_vbase = 0;
        shared_grants = 0;
        global_fallbacks = 0;
        pool_reuses = 0;
        high_water = 0;
      }

let total_bytes t = t.total_bytes

let configure t ~num_groups =
  if num_groups < 0 then invalid_arg "Sharing.configure: num_groups";
  t.nominal_groups <- num_groups;
  (* Safety net only: paired acquire/release drains the stack by itself.
     Threads re-enter [__parallel] redundantly and unsynchronized, so a
     reset must never fire while a faster sibling already holds a slice
     of the new region. *)
  if t.live = 0 then begin
    t.top <- 0;
    t.nfree <- 0
  end

(* The nominal even split (§5.3.1): what each publisher would get under
   the old static partition.  Reported by the E3 ablation as a baseline
   column; the allocator itself is not bound by it. *)
let slice_bytes t = t.total_bytes / (t.nominal_groups + 1)

let used_bytes t =
  let freed = ref 0 in
  for i = 0 to t.nfree - 1 do
    freed := !freed + t.free_len.(i)
  done;
  t.top - !freed

let live_slices t = t.live
let pool_slots t = t.npool
let high_water t = t.high_water

let global_access_cost (th : Gpusim.Thread.t) =
  let cost = th.Gpusim.Thread.cfg.Gpusim.Config.cost in
  cost.Gpusim.Config.mem_issue +. cost.Gpusim.Config.mem_miss_latency

(* --- free-list helpers (arrays sorted by offset, entries coalesced) --- *)

let free_list_insert t off len =
  if len > 0 then begin
    if t.nfree = Array.length t.free_off then begin
      let cap = 2 * t.nfree in
      let no = Array.make cap 0 and nl = Array.make cap 0 in
      Array.blit t.free_off 0 no 0 t.nfree;
      Array.blit t.free_len 0 nl 0 t.nfree;
      t.free_off <- no;
      t.free_len <- nl
    end;
    (* find insertion point (list is tiny: at most one entry per live
       publisher) *)
    let i = ref t.nfree in
    while !i > 0 && t.free_off.(!i - 1) > off do
      t.free_off.(!i) <- t.free_off.(!i - 1);
      t.free_len.(!i) <- t.free_len.(!i - 1);
      decr i
    done;
    t.free_off.(!i) <- off;
    t.free_len.(!i) <- len;
    t.nfree <- t.nfree + 1;
    (* coalesce with the successor, then the predecessor *)
    let i = !i in
    if i + 1 < t.nfree && t.free_off.(i) + t.free_len.(i) = t.free_off.(i + 1)
    then begin
      t.free_len.(i) <- t.free_len.(i) + t.free_len.(i + 1);
      for j = i + 1 to t.nfree - 2 do
        t.free_off.(j) <- t.free_off.(j + 1);
        t.free_len.(j) <- t.free_len.(j + 1)
      done;
      t.nfree <- t.nfree - 1
    end;
    if i > 0 && t.free_off.(i - 1) + t.free_len.(i - 1) = t.free_off.(i)
    then begin
      t.free_len.(i - 1) <- t.free_len.(i - 1) + t.free_len.(i);
      for j = i to t.nfree - 2 do
        t.free_off.(j) <- t.free_off.(j + 1);
        t.free_len.(j) <- t.free_len.(j + 1)
      done;
      t.nfree <- t.nfree - 1
    end;
    (* a trailing free block folds back into the bump pointer *)
    if t.nfree > 0
       && t.free_off.(t.nfree - 1) + t.free_len.(t.nfree - 1) = t.top
    then begin
      t.top <- t.free_off.(t.nfree - 1);
      t.nfree <- t.nfree - 1
    end
  end

(* First-fit over the free list; splits when the hole is larger. *)
let free_list_take t bytes =
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < t.nfree do
    if t.free_len.(!i) >= bytes then found := !i;
    incr i
  done;
  if !found < 0 then -1
  else begin
    let i = !found in
    let off = t.free_off.(i) in
    if t.free_len.(i) > bytes then begin
      t.free_off.(i) <- off + bytes;
      t.free_len.(i) <- t.free_len.(i) - bytes
    end
    else begin
      for j = i to t.nfree - 2 do
        t.free_off.(j) <- t.free_off.(j + 1);
        t.free_len.(j) <- t.free_len.(j + 1)
      done;
      t.nfree <- t.nfree - 1
    end;
    off
  end

(* --- pool helpers --- *)

let pool_take t bytes =
  (* first-fit over free slots whose buffer is big enough *)
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < t.npool do
    if t.pool_free.(!i) && t.pool_cap.(!i) >= bytes then found := !i;
    incr i
  done;
  (match !found with
  | -1 -> ()
  | s -> t.pool_free.(s) <- false);
  !found

let pool_grow t bytes =
  if t.npool = Array.length t.pool_cap then begin
    let cap = 2 * t.npool in
    let nc = Array.make cap 0 and nf = Array.make cap false in
    Array.blit t.pool_cap 0 nc 0 t.npool;
    Array.blit t.pool_free 0 nf 0 t.npool;
    t.pool_cap <- nc;
    t.pool_free <- nf
  end;
  let s = t.npool in
  t.pool_cap.(s) <- bytes;
  t.pool_free.(s) <- false;
  t.npool <- s + 1;
  s

(* --- the allocator interface --- *)

let acquire t th ~bytes =
  if bytes < 0 then invalid_arg "Sharing.acquire: negative payload size";
  let hole = free_list_take t bytes in
  (* The exhaust fault pretends the slab is full: every acquire in the
     victim block takes the fallback below, which is exactly the path a
     too-small sharing space exercises for real.  [exhaust_here] counts
     its firings, so it is consulted at most once and only when the
     payload would otherwise fit. *)
  let fits = hole >= 0 || t.top + bytes <= t.total_bytes in
  if fits && not (!Gpusim.Fault.armed && Gpusim.Fault.exhaust_here ()) then begin
    let offset =
      if hole >= 0 then hole
      else begin
        let o = t.top in
        t.top <- t.top + bytes;
        if t.top > t.high_water then t.high_water <- t.top;
        o
      end
    in
    t.live <- t.live + 1;
    t.shared_grants <- t.shared_grants + 1;
    Gpusim.Counters.bump th.Gpusim.Thread.counters "sharing.shared_grants" 1.0;
    let vbase = t.next_vbase in
    t.next_vbase <- vbase + max 8 bytes;
    Shared_space { offset; bytes; vbase }
  end
  else begin
    (* the fault path must not leak a hole the first-fit already carved *)
    if hole >= 0 then free_list_insert t hole bytes;
    t.global_fallbacks <- t.global_fallbacks + 1;
    Gpusim.Counters.bump th.Gpusim.Thread.counters "sharing.global_fallbacks"
      1.0;
    match pool_take t bytes with
    | -1 ->
        (* A device-side malloc: runtime lock traffic plus the round-trip
           to set up the fresh global buffer — far costlier than the
           shared slab, which is the point of §5.3.1's sizing
           discussion. *)
        let slot = pool_grow t bytes in
        Gpusim.Thread.tick th (2.0 *. global_access_cost th);
        Gpusim.Thread.tick_wait th (6.0 *. global_access_cost th);
        Global_fallback { slot; bytes }
    | slot ->
        (* freelist pop: one uncached global access to the pool head, no
           malloc round-trip (Bercea et al.'s reuse path) *)
        t.pool_reuses <- t.pool_reuses + 1;
        Gpusim.Counters.bump th.Gpusim.Thread.counters "sharing.pool_reuses"
          1.0;
        Gpusim.Thread.tick_wait th (global_access_cost th);
        Global_fallback { slot; bytes }
  end

(* Free, like the production runtime's epilogue: the expensive part of a
   fallback is the malloc, already paid at acquire; returning either kind
   of slice is pointer arithmetic. *)
let release t location =
  match location with
  | Shared_space { offset; bytes; _ } ->
      t.live <- t.live - 1;
      if offset + bytes = t.top then begin
        (* LIFO fast path: pop, then fold any free block the pop made
           trailing *)
        t.top <- offset;
        while
          t.nfree > 0
          && t.free_off.(t.nfree - 1) + t.free_len.(t.nfree - 1) = t.top
        do
          t.top <- t.free_off.(t.nfree - 1);
          t.nfree <- t.nfree - 1
        done
      end
      else free_list_insert t offset bytes
  | Global_fallback { slot; _ } -> t.pool_free.(slot) <- true

let copy_cost ?(sharers = 1) ~kind t th location payload =
  let n = Payload.length payload in
  match location with
  | Shared_space { vbase; _ } ->
      (* Slot k lives at a fixed arena offset for the lifetime of the
         acquire: the sanitizer's shared-space shadow sees publishes as
         writes and fetches as reads of those cells.  Shadow addresses
         come from the acquire's virtual base, unique per grant, so slab
         bytes recycled across region lifetimes never alias. *)
      for k = 0 to n - 1 do
        Gpusim.Shared.touch th ~bytes:8;
        if !Gpusim.Ompsan.enabled then
          Gpusim.Ompsan.shared_access th ~aid:t.arena_id
            ~addr:(vbase + (k * 8))
            ~kind
      done
  | Global_fallback _ ->
      (* every slot is a real global-memory round trip, and the buffer is
         conservatively cold even when pooled: a reused buffer was last
         touched a region ago, far outside any warp-cache window, so its
         sectors hit DRAM *)
      let cfg = th.Gpusim.Thread.cfg in
      let c = th.Gpusim.Thread.counters in
      let sectors =
        (n * 8 / cfg.Gpusim.Config.line_bytes)
        + (if n * 8 mod cfg.Gpusim.Config.line_bytes = 0 then 0 else 1)
      in
      (* concurrent same-buffer copies by the group's lanes coalesce *)
      let share = float_of_int (max 1 sharers) in
      Gpusim.Counters.add_dram c
        (float_of_int (sectors * cfg.Gpusim.Config.line_bytes) /. share);
      Gpusim.Counters.add_lsu c (float_of_int sectors /. share);
      Gpusim.Thread.tick th
        (float_of_int n *. cfg.Gpusim.Config.cost.Gpusim.Config.mem_issue);
      Gpusim.Thread.tick_wait th (float_of_int n *. global_access_cost th)

let publish t th location payload =
  copy_cost ~kind:Gpusim.Ompsan.Write t th location payload

let fetch ?sharers t th location payload =
  copy_cost ?sharers ~kind:Gpusim.Ompsan.Read t th location payload

let global_fallbacks t = t.global_fallbacks
let shared_grants t = t.shared_grants
let pool_reuses t = t.pool_reuses
