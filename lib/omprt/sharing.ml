type location = Shared_space | Global_fallback

type t = {
  arena_id : int;  (* sanitizer shadow key for the backing arena *)
  total_bytes : int;
  mutable current_slice : int;
  mutable global_fallbacks : int;
  mutable shared_grants : int;
}

let default_bytes = 2048

let create ~arena ~bytes =
  match Gpusim.Shared.alloc arena ~bytes with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Sharing.create: %d B sharing space exceeds block shared memory"
           bytes)
  | Some (_ : int) ->
      {
        arena_id = Gpusim.Shared.id arena;
        total_bytes = bytes;
        current_slice = bytes;
        global_fallbacks = 0;
        shared_grants = 0;
      }

let total_bytes t = t.total_bytes

let configure t ~num_groups =
  if num_groups < 0 then invalid_arg "Sharing.configure: num_groups";
  (* The team main thread writes here too (§5.3.1), hence the +1 slice.
     [num_groups = 0] is the classic two-level configuration: no SIMD
     mains share the space, the team main keeps all of it. *)
  t.current_slice <- t.total_bytes / (num_groups + 1)

let slice_bytes t = t.current_slice

let global_access_cost (th : Gpusim.Thread.t) =
  let cost = th.Gpusim.Thread.cfg.Gpusim.Config.cost in
  cost.Gpusim.Config.mem_issue +. cost.Gpusim.Config.mem_miss_latency

let acquire t th ~nargs =
  (* The exhaust fault pretends the slice is full: every acquire in the
     victim block takes the fallback below, which is exactly the path a
     too-small sharing space exercises for real. *)
  if
    nargs * 8 <= t.current_slice
    && not (!Gpusim.Fault.armed && Gpusim.Fault.exhaust_here ())
  then begin
    t.shared_grants <- t.shared_grants + 1;
    Shared_space
  end
  else begin
    t.global_fallbacks <- t.global_fallbacks + 1;
    Gpusim.Counters.bump th.Gpusim.Thread.counters "sharing.global_fallbacks" 1.0;
    (* A device-side malloc: runtime lock traffic plus the round-trip to
       set up the fresh global buffer — far costlier than the shared
       slab, which is the point of §5.3.1's sizing discussion. *)
    Gpusim.Thread.tick th (2.0 *. global_access_cost th);
    Gpusim.Thread.tick_wait th (6.0 *. global_access_cost th);
    Global_fallback
  end

let copy_cost ?(sharers = 1) ?(slice = 0) ~kind t th location payload =
  let n = Payload.length payload in
  match location with
  | Shared_space ->
      (* Slot k of slice [slice] lives at a fixed arena offset: the
         sanitizer's shared-space shadow sees publishes as writes and
         fetches as reads of those cells.  Correctly configured slices
         are disjoint per main, so legal runs stay clean. *)
      let base = slice * t.current_slice in
      for k = 0 to n - 1 do
        Gpusim.Shared.touch th ~bytes:8;
        if !Gpusim.Ompsan.enabled then
          Gpusim.Ompsan.shared_access th ~aid:t.arena_id
            ~addr:(base + (k * 8))
            ~kind
      done
  | Global_fallback ->
      (* every slot is a real global-memory round trip, and the freshly
         allocated buffer is always cold: its sectors hit DRAM *)
      let cfg = th.Gpusim.Thread.cfg in
      let c = th.Gpusim.Thread.counters in
      let sectors =
        (n * 8 / cfg.Gpusim.Config.line_bytes)
        + (if n * 8 mod cfg.Gpusim.Config.line_bytes = 0 then 0 else 1)
      in
      (* concurrent same-buffer copies by the group's lanes coalesce *)
      let share = float_of_int (max 1 sharers) in
      Gpusim.Counters.add_dram c
        (float_of_int (sectors * cfg.Gpusim.Config.line_bytes) /. share);
      Gpusim.Counters.add_lsu c (float_of_int sectors /. share);
      Gpusim.Thread.tick th
        (float_of_int n *. cfg.Gpusim.Config.cost.Gpusim.Config.mem_issue);
      Gpusim.Thread.tick_wait th (float_of_int n *. global_access_cost th)

let publish ?slice t th location payload =
  copy_cost ?slice ~kind:Gpusim.Ompsan.Write t th location payload

let fetch ?sharers ?slice t th location payload =
  copy_cost ?sharers ?slice ~kind:Gpusim.Ompsan.Read t th location payload
let global_fallbacks t = t.global_fallbacks
let shared_grants t = t.shared_grants
