let bump ctx key =
  Gpusim.Counters.bump ctx.Team.th.Gpusim.Thread.counters key 1.0

let in_outlined_body ctx f =
  let team = ctx.Team.team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  team.Team.in_region.(tid) <- true;
  (* hand-rolled protect: this wraps every outlined-region call, and the
     Fun.protect it replaced allocated its finally closure per call *)
  match f () with
  | v ->
      team.Team.in_region.(tid) <- false;
      v
  | exception e ->
      team.Team.in_region.(tid) <- false;
      raise e

(* Region code in SPMD mode is executed redundantly by every lane of a
   SIMD group on behalf of one OpenMP thread; attribute those accesses
   to the group leader so the sanitizer sees one logical lane. *)
let with_region_actor ctx f =
  if !Gpusim.Ompsan.enabled then begin
    let th = ctx.Team.th in
    let g = Team.geometry ctx.Team.team in
    let group = Simd_group.get_simd_group g ~tid:th.Gpusim.Thread.tid in
    let prev = Gpusim.Ompsan.set_actor th (Simd_group.leader_tid g ~group) in
    match f () with
    | v ->
        ignore (Gpusim.Ompsan.set_actor th prev);
        v
    | exception e ->
        ignore (Gpusim.Ompsan.set_actor th prev);
        raise e
  end
  else f ()

let exec_on_thread ctx (task : Team.parallel_task) =
  let team = ctx.Team.team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  match task.Team.task_mode with
  | Mode.Spmd ->
      (* All threads execute the region in SPMD mode.  This is the
         region-dispatch hot path, so the bookkeeping is hand-inlined:
         the wrapper-combinator shape (in_outlined_body / with_region_actor
         / invoke_microtask thunks) allocated three closures per region
         call. *)
      team.Team.in_region.(tid) <- true;
      (match
         with_region_actor ctx (fun () ->
             Team.charge_microtask ctx ~fn_id:task.Team.fn_id;
             task.Team.fn ctx task.Team.payload)
       with
      | () -> team.Team.in_region.(tid) <- false
      | exception e ->
          team.Team.in_region.(tid) <- false;
          raise e)
  | Mode.Generic ->
      let g = Team.geometry team in
      if Simd_group.is_simd_group_leader g ~tid then begin
        (* Only simd mains execute the region in generic mode; one active
           lane per [group_size] still costs a full warp's issue slots. *)
        Gpusim.Thread.trace ctx.Team.th ~tag:"parallel.leader" "";
        (* A generic-mode leader acts alone for its group; undo any
           enclosing SPMD attribution so distinct leaders stay distinct
           actors. *)
        let prev =
          if !Gpusim.Ompsan.enabled then
            Gpusim.Ompsan.set_actor ctx.Team.th tid
          else tid
        in
        (match
           in_outlined_body ctx (fun () ->
               Gpusim.Thread.with_simt_factor ctx.Team.th
                 (float_of_int task.Team.group_size) (fun () ->
                   Team.invoke_microtask ctx ~fn_id:task.Team.fn_id
                     (fun () -> task.Team.fn ctx task.Team.payload)))
         with
        | () ->
            if !Gpusim.Ompsan.enabled then
              ignore (Gpusim.Ompsan.set_actor ctx.Team.th prev)
        | exception e ->
            if !Gpusim.Ompsan.enabled then
              ignore (Gpusim.Ompsan.set_actor ctx.Team.th prev);
            raise e);
        (* Send the termination signal to the simd workers. *)
        Simd.signal_termination ctx
      end
      else
        (* Simd workers enter the state machine. *)
        Simd.state_machine ctx

let effective_task team ~mode ~simd_len ~payload ~fn_id fn =
  let cfg = team.Team.cfg in
  let ws = cfg.Gpusim.Config.warp_size in
  (* §5.4.1: no warp barrier at all means generic-mode groups cannot
     rendezvous; degrade to singleton groups (sequential simd loops).  A
     software-emulated barrier keeps generic mode functional — just
     costlier per rendezvous. *)
  let simd_len =
    if
      Mode.equal mode Mode.Generic
      && cfg.Gpusim.Config.barrier_impl = Gpusim.Config.No_barrier
    then 1
    else simd_len
  in
  if simd_len <= 0 || simd_len > ws || ws mod simd_len <> 0 then
    invalid_arg "Parallel.parallel: simd_len must divide the warp size";
  if team.Team.num_workers mod simd_len <> 0 then
    invalid_arg "Parallel.parallel: simd_len must divide the worker count";
  (* §5.4: without simd groups (size one) the region always runs SPMD. *)
  let task_mode = if simd_len = 1 then Mode.Spmd else mode in
  {
    Team.fn;
    fn_id;
    payload;
    task_mode;
    group_size = simd_len;
    payload_location = Sharing.none;
  }

let enter_region ctx task =
  let team = ctx.Team.team in
  let geom =
    Simd_group.make
      ~warp_size:team.Team.cfg.Gpusim.Config.warp_size
      ~num_workers:team.Team.num_workers ~group_size:task.Team.group_size
  in
  team.Team.active_geometry <- Some geom;
  team.Team.active_task <- Some task;
  (* SIMD mains only consume sharing-space slices in generic mode; an
     SPMD region's payloads stay thread-local (§5.4). *)
  let sharing_groups =
    match task.Team.task_mode with
    | Mode.Generic -> geom.Simd_group.num_groups
    | Mode.Spmd -> 0
  in
  Sharing.configure team.Team.sharing ~num_groups:sharing_groups

let leave_region team =
  team.Team.active_geometry <- None;
  team.Team.active_task <- None

let parallel ctx ~mode ~simd_len ?(payload = Payload.empty) ?(fn_id = -1) fn =
  let team = ctx.Team.team in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  if tid < team.Team.num_workers && team.Team.in_region.(tid) then
    failwith
      "Parallel.parallel: nested parallel regions are not supported on the \
       device (LLVM serializes them); restructure the kernel or inline the \
       nested body";
  let task = effective_task team ~mode ~simd_len ~payload ~fn_id fn in
  match Team.role team ~tid with
  | Team.Team_main ->
      (* Teams-generic: signal the workers, wait for them to finish. *)
      bump ctx "parallel.regions";
      if Gpusim.Thread.tracing ctx.Team.th then
        Gpusim.Thread.trace ctx.Team.th ~tag:"parallel.signal"
          (Printf.sprintf "fn=%d mode=%s gs=%d" task.Team.fn_id
             (Mode.to_string task.Team.task_mode)
             task.Team.group_size);
      enter_region ctx task;
      Payload.pack ctx.Team.th payload;
      let location =
        Sharing.acquire team.Team.sharing ctx.Team.th
          ~bytes:(Payload.bytes payload)
      in
      Sharing.publish team.Team.sharing ctx.Team.th location payload;
      task.Team.payload_location <- location;
      team.Team.parallel_signal <- Some task;
      Team.team_barrier_wait ctx;
      (* workers execute the region here *)
      Team.team_barrier_wait ctx;
      (* past the closing barrier every worker has fetched: the region's
         slice can go back to the allocator *)
      Sharing.release team.Team.sharing location;
      team.Team.parallel_signal <- None;
      leave_region team
  | Team.Worker ->
      (* Teams-SPMD: every thread reaches the same __parallel call. *)
      if tid = 0 then bump ctx "parallel.regions";
      (* Every thread re-enters redundantly (same values); the state is
         left in place after the closing barrier because a slower sibling
         may still be returning while a faster one has already opened the
         next region — clearing here would race with its enter. *)
      enter_region ctx task;
      Payload.pack ctx.Team.th payload;
      exec_on_thread ctx task;
      Team.team_barrier_wait ctx
  | Team.Inactive_main_lane ->
      failwith "Parallel.parallel: inactive main-warp lane reached __parallel"
