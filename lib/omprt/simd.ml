let bump ctx key =
  Gpusim.Counters.bump ctx.Team.th.Gpusim.Thread.counters key 1.0

let my_group ctx =
  let g = Team.geometry ctx.Team.team in
  (g, Simd_group.get_simd_group g ~tid:ctx.Team.th.Gpusim.Thread.tid)

let active_mode ctx =
  match ctx.Team.team.Team.active_task with
  | Some task -> task.Team.task_mode
  | None -> failwith "Simd.simd: no active parallel region"

(* In SPMD mode (and for singleton groups) the outlined function is
   statically known at the call site, so the compiler emits a direct —
   typically inlined — call; the if-cascade/indirect dispatch of §5.5
   only exists on the dynamic paths, where a worker resolves a function
   pointer published by its SIMD main. *)
let charge_static ctx =
  let cost = ctx.Team.team.Team.cfg.Gpusim.Config.cost in
  Gpusim.Thread.tick ctx.Team.th cost.Gpusim.Config.branch;
  ctx.Team.th.Gpusim.Thread.counters.Gpusim.Counters.calls <-
    ctx.Team.th.Gpusim.Thread.counters.Gpusim.Counters.calls + 1

let static_call ctx run =
  charge_static ctx;
  run ()

(* Both loop drivers hand-inline [with_simt_factor] (inside the workshare
   loop the whole SIMD group executes in lockstep, so the surrounding
   region's divergence factor does not apply to the loop body) and charge
   the call cost directly: the thunk chain the previous shape threaded
   through [invoke_microtask] allocated three closures per region call,
   and on the reduction path its captured accumulator boxed a float per
   loop element. *)
let run_loop ctx ~dispatch ~fn_id ~trip body payload =
  let th = ctx.Team.th in
  let saved = Gpusim.Thread.simt_factor th in
  Gpusim.Thread.set_simt_factor th 1.0;
  if dispatch then Team.charge_microtask ctx ~fn_id else charge_static ctx;
  Workshare.simd_loop ctx ~trip (fun iv -> body ctx iv payload);
  Gpusim.Thread.set_simt_factor th saved

let accumulate_loop ctx ~dispatch ~op ~fn_id ~trip red payload =
  let th = ctx.Team.th in
  let saved = Gpusim.Thread.simt_factor th in
  Gpusim.Thread.set_simt_factor th 1.0;
  if dispatch then Team.charge_microtask ctx ~fn_id else charge_static ctx;
  let acc =
    if op == Redop.sum then
      (* the common case: fold with a register accumulator *)
      Workshare.simd_fold_sum ctx ~trip (fun iv -> red ctx iv payload)
    else begin
      let acc = ref op.Redop.identity in
      Workshare.simd_loop ctx ~trip (fun iv ->
          acc := op.Redop.combine !acc (red ctx iv payload));
      !acc
    end
  in
  Gpusim.Thread.set_simt_factor th saved;
  acc

let simd ctx ?(payload = Payload.empty) ?(fn_id = -1) ~trip body =
  let team = ctx.Team.team in
  let g, group = my_group ctx in
  let gs = Simd_group.get_simd_group_size g in
  if gs = 1 then begin
    (* Two-level behaviour (§5.4): the loop runs sequentially in-thread. *)
    bump ctx "simd.sequential";
    ignore fn_id;
    static_call ctx (fun () ->
        Workshare.sequential_loop ctx ~trip (fun iv -> body ctx iv payload))
  end
  else
    match active_mode ctx with
    | Mode.Spmd ->
        (* Fig 4, SPMD path: trip count and payload are thread-local. *)
        if Simd_group.is_simd_group_leader g ~tid:ctx.Team.th.Gpusim.Thread.tid
        then bump ctx "simd.spmd_regions";
        run_loop ctx ~dispatch:false ~fn_id ~trip body payload;
        Team.sync_warp ctx
    | Mode.Generic ->
        (* Fig 4, generic path: the caller is the SIMD main. *)
        bump ctx "simd.generic_regions";
        let slot = Team.slot team ~group in
        slot.Team.simd_fn <- Some body;
        slot.Team.simd_red_fn <- None;
        slot.Team.simd_fn_id <- fn_id;
        slot.Team.simd_trip <- trip;
        slot.Team.simd_args <- payload;
        Payload.pack ctx.Team.th payload;
        let location =
          Sharing.acquire team.Team.sharing ctx.Team.th
            ~bytes:(Payload.bytes payload)
        in
        slot.Team.simd_args_location <- location;
        Sharing.publish team.Team.sharing ctx.Team.th location payload;
        Team.sync_warp ctx;
        (* the SIMD main participates in the loop: its group id is 0 *)
        run_loop ctx ~dispatch:false ~fn_id ~trip body payload;
        Team.sync_warp ctx;
        (* workers are past the loop, hence past their fetch: the slice
           is dead and the next region in this group can recycle it *)
        Sharing.release team.Team.sharing location

let simd_reduce ctx ?(payload = Payload.empty) ?(fn_id = -1) ~op ~trip red =
  let team = ctx.Team.team in
  let g, group = my_group ctx in
  let gs = Simd_group.get_simd_group_size g in
  if gs = 1 then begin
    bump ctx "simd.sequential";
    ignore fn_id;
    charge_static ctx;
    if op == Redop.sum then
      Workshare.sequential_fold_sum ctx ~trip (fun iv -> red ctx iv payload)
    else begin
      let acc = ref op.Redop.identity in
      Workshare.sequential_loop ctx ~trip (fun iv ->
          acc := op.Redop.combine !acc (red ctx iv payload));
      !acc
    end
  end
  else
    match active_mode ctx with
    | Mode.Spmd ->
        let acc = accumulate_loop ctx ~dispatch:false ~op ~fn_id ~trip red payload in
        let total = Reduction.simd_reduce ctx op acc in
        Team.sync_warp ctx;
        total
    | Mode.Generic ->
        bump ctx "simd.generic_regions";
        let slot = Team.slot team ~group in
        slot.Team.simd_fn <- None;
        slot.Team.simd_red_fn <- Some red;
        slot.Team.simd_red_op <- op;
        slot.Team.simd_fn_id <- fn_id;
        slot.Team.simd_trip <- trip;
        slot.Team.simd_args <- payload;
        Payload.pack ctx.Team.th payload;
        let location =
          Sharing.acquire team.Team.sharing ctx.Team.th
            ~bytes:(Payload.bytes payload)
        in
        slot.Team.simd_args_location <- location;
        Sharing.publish team.Team.sharing ctx.Team.th location payload;
        Team.sync_warp ctx;
        let acc = accumulate_loop ctx ~dispatch:false ~op ~fn_id ~trip red payload in
        let total = Reduction.simd_reduce ctx op acc in
        Team.sync_warp ctx;
        Sharing.release team.Team.sharing location;
        total

let simd_sum ctx ?payload ?fn_id ~trip red =
  simd_reduce ctx ?payload ?fn_id ~op:Redop.sum ~trip red

let state_machine ctx =
  let team = ctx.Team.team in
  let _, group = my_group ctx in
  let slot = Team.slot team ~group in
  let g, _ = my_group ctx in
  let fetch_args () =
    let sharers = Simd_group.get_simd_group_size g - 1 in
    Sharing.fetch ~sharers team.Team.sharing ctx.Team.th
      slot.Team.simd_args_location slot.Team.simd_args;
    Payload.unpack ctx.Team.th slot.Team.simd_args
  in
  let rec wait_for_work () =
    Team.sync_warp ctx;
    match (slot.Team.simd_fn, slot.Team.simd_red_fn) with
    | None, None -> () (* termination: end of the parallel region *)
    | Some fn, _ ->
        bump ctx "simd.state_machine_rounds";
        if Gpusim.Thread.tracing ctx.Team.th then
          Gpusim.Thread.trace ctx.Team.th ~tag:"simd.wake"
            (Printf.sprintf "fn=%d trip=%d" slot.Team.simd_fn_id
               slot.Team.simd_trip);
        fetch_args ();
        (* workers resolve a published pointer: the §5.5 dispatch *)
        run_loop ctx ~dispatch:true ~fn_id:slot.Team.simd_fn_id
          ~trip:slot.Team.simd_trip fn slot.Team.simd_args;
        Team.sync_warp ctx;
        wait_for_work ()
    | None, Some red ->
        bump ctx "simd.state_machine_rounds";
        fetch_args ();
        let op = slot.Team.simd_red_op in
        let acc =
          accumulate_loop ctx ~dispatch:true ~op ~fn_id:slot.Team.simd_fn_id
            ~trip:slot.Team.simd_trip red slot.Team.simd_args
        in
        let (_ : float) = Reduction.simd_reduce ctx op acc in
        Team.sync_warp ctx;
        wait_for_work ()
  in
  (* The hand-off waits below are the `__simd` state-machine rendezvous:
     they advance the sanitizer's epochs like any warp barrier, but the
     worker is exempted from the divergence check — its main legitimately
     crosses block-scope barriers while the worker idles here. *)
  let th = ctx.Team.th in
  let prev_actor =
    if !Gpusim.Ompsan.enabled then begin
      Gpusim.Ompsan.enter_state_machine th;
      (* Workers only ever run simd-loop bodies — their own lane's work;
         undo any enclosing SPMD attribution. *)
      Gpusim.Ompsan.set_actor th th.Gpusim.Thread.tid
    end
    else th.Gpusim.Thread.tid
  in
  Fun.protect
    ~finally:(fun () ->
      if !Gpusim.Ompsan.enabled then begin
        ignore (Gpusim.Ompsan.set_actor th prev_actor);
        Gpusim.Ompsan.leave_state_machine th
      end)
    wait_for_work

let signal_termination ctx =
  Gpusim.Thread.trace ctx.Team.th ~tag:"simd.terminate" "";
  let team = ctx.Team.team in
  let _, group = my_group ctx in
  let slot = Team.slot team ~group in
  slot.Team.simd_fn <- None;
  slot.Team.simd_red_fn <- None;
  slot.Team.simd_fn_id <- -1;
  Team.sync_warp ctx
