(** SIMD-group geometry (§5.1).

    A team's worker threads are evenly divided into SIMD groups; every
    group lives inside a single warp (the implementation "does not allow
    SIMD groups to encompass multiple warps as it extensively utilizes
    warp-level thread barriers").  One thread per group — lane offset 0 —
    is the SIMD main.

    These are the pure counterparts of the paper's runtime mapping
    functions: [getSimdGroup], [getSimdGroupId], [getSimdGroupSize],
    [isSimdGroupLeader] and [simdmask]. *)

type t = private {
  warp_size : int;  (** lanes per warp on the device the team runs on *)
  group_size : int;  (** threads per group; divides the warp size *)
  num_groups : int;  (** groups in the team *)
  groups_per_warp : int;
}

val make : warp_size:int -> num_workers:int -> group_size:int -> t
(** @raise Invalid_argument when [group_size] does not divide [warp_size],
    or [num_workers] is not a positive multiple of [group_size]. *)

val get_simd_group : t -> tid:int -> int
(** Which group the thread belongs to (paper: getSimdGroup). *)

val get_simd_group_id : t -> tid:int -> int
(** The thread's id within its group; mains have id 0 (getSimdGroupId). *)

val get_simd_group_size : t -> int

val is_simd_group_leader : t -> tid:int -> bool

val simdmask : t -> tid:int -> Ompsimd_util.Mask.t
(** Warp bit-mask of the lanes sharing the thread's group (simdmask). *)

val leader_tid : t -> group:int -> int
(** Team-local tid of a group's SIMD main. *)

val valid_group_sizes : warp_size:int -> int list
(** Divisors of the warp size, ascending — the legal [simdlen] values. *)
