(** The variable-sharing space (§5.3.1).

    A static slab of GPU shared memory (paper default grown from 1024 to
    2048 bytes) through which main threads publish outlined-function
    arguments to their workers.  On entry to a parallel region the slab is
    divided evenly among the SIMD groups plus the team main thread; a group
    whose payload does not fit its slice falls back to a fresh global-memory
    allocation, freed at the end of the region. *)

type location =
  | Shared_space  (** payload fits the group's slice of the slab *)
  | Global_fallback  (** overflow: per-group global allocation *)

type t

val default_bytes : int
(** 2048 — the paper's enlarged reservation. *)

val create : arena:Gpusim.Shared.arena -> bytes:int -> t
(** Statically reserve [bytes] of the block's shared memory.
    @raise Invalid_argument if the arena cannot fit the reservation. *)

val total_bytes : t -> int

val configure : t -> num_groups:int -> unit
(** Called on parallel-region entry: split the slab across [num_groups]
    SIMD groups plus the team main.  Zero groups means a classic
    (SPMD / no-simd) region where only the team main publishes and keeps
    the whole slab.  @raise Invalid_argument on negative [num_groups]. *)

val slice_bytes : t -> int
(** Bytes available to each main thread under the current configuration. *)

val acquire : t -> Gpusim.Thread.t -> nargs:int -> location
(** Decide where a payload of [nargs] pointer-sized slots lives.  A global
    fallback charges an allocation round-trip and is counted. *)

val publish : ?slice:int -> t -> Gpusim.Thread.t -> location -> Payload.t -> unit
(** Main-side copy of the payload into the sharing location (per-slot
    shared-memory or global-memory store costs).  [slice] identifies the
    publisher's slice of the slab (its SIMD-group index, or the group
    count for the team main) so the sanitizer's shared-space shadow sees
    the slot cells each write lands in. *)

val fetch :
  ?sharers:int ->
  ?slice:int ->
  t ->
  Gpusim.Thread.t ->
  location ->
  Payload.t ->
  unit
(** Worker-side fetch of a published payload.  [sharers] is how many
    threads fetch the same buffer concurrently — their global-memory
    traffic coalesces.  [slice] as in {!publish}. *)

val global_fallbacks : t -> int
(** How many acquires overflowed to global memory since creation. *)

val shared_grants : t -> int
