(** The variable-sharing space (§5.3.1), as a dynamic per-team allocator.

    A slab of GPU shared memory (paper default grown from 1024 to 2048
    bytes) through which main threads publish outlined-function arguments
    to their workers.  Instead of statically splitting the slab into
    even per-group slices, the runtime allocates variable-size slices on
    demand, scoped to the parallel/SIMD region that acquired them: the
    properly nested case is a bump-pointer stack (acquire pushes,
    releasing the most recent slice pops), and slices released out of
    stack order are recycled through a coalescing first-fit free list.
    A payload that fits neither a recycled hole nor the remaining slab
    falls back to a pooled global-memory buffer; the first acquisition of
    a pool slot pays the device-malloc round-trip, a later reuse pays
    only the freelist access (cf. Bercea et al., "Implementing implicit
    OpenMP data sharing on GPUs"). *)

type location =
  | Shared_space of { offset : int; bytes : int; vbase : int }
      (** A slice of the slab.  [offset] is its physical arena offset,
          [vbase] the sanitizer's virtual shadow base — unique per grant,
          so slab bytes recycled across region lifetimes never alias in
          the race detector. *)
  | Global_fallback of { slot : int; bytes : int }
      (** Overflow: a buffer from the team's global-memory pool. *)

type t

val none : location
(** Placeholder for location-typed fields before any acquire (a zero-byte
    shared slice).  Never pass it to {!release}. *)

val default_bytes : int
(** 2048 — the paper's enlarged reservation. *)

val min_bytes : int
(** 256 — floor applied by the dynamic-sizing heuristic in
    [Openmp.Offload] so a tiny kernel still has room for runtime-internal
    publishes. *)

val create : arena:Gpusim.Shared.arena -> bytes:int -> t
(** Statically reserve [bytes] of the block's shared memory.
    @raise Invalid_argument if the arena cannot fit the reservation. *)

val total_bytes : t -> int

val configure : t -> num_groups:int -> unit
(** Called on parallel-region entry with the region's SIMD-group count
    (zero for a classic SPMD / no-simd region).  Feeds the nominal
    {!slice_bytes} report and, when no slice is live, resets the
    allocator — a belt-and-braces measure only, since paired
    acquire/release drains the stack by itself.
    @raise Invalid_argument on negative [num_groups]. *)

val slice_bytes : t -> int
(** The nominal even split [total / (num_groups + 1)] of the last
    {!configure} — what each publisher would get under a static
    partition.  Reporting only; the allocator is not bound by it. *)

val acquire : t -> Gpusim.Thread.t -> bytes:int -> location
(** Allocate a slice for a payload of [bytes] bytes (callers pass
    [Payload.bytes], so a payload is judged by its real footprint).
    Grants from the slab are free; a global fallback charges the
    device-malloc round-trip for a fresh pool slot or a single global
    access for a reused one, and is counted.
    @raise Invalid_argument on negative [bytes]. *)

val release : t -> location -> unit
(** Return a slice at the end of its region.  Releasing the most recent
    slab slice pops the stack; out-of-order releases are recycled via the
    free list.  A fallback's buffer returns to the pool for reuse.
    Free of simulated cost: the expensive part of a fallback was paid at
    acquire. *)

val publish : t -> Gpusim.Thread.t -> location -> Payload.t -> unit
(** Main-side copy of the payload into the sharing location (per-slot
    shared-memory or global-memory store costs). *)

val fetch : ?sharers:int -> t -> Gpusim.Thread.t -> location -> Payload.t -> unit
(** Worker-side fetch of a published payload.  [sharers] is how many
    threads fetch the same buffer concurrently — their global-memory
    traffic coalesces. *)

val global_fallbacks : t -> int
(** How many acquires overflowed to global memory since creation. *)

val shared_grants : t -> int
val pool_reuses : t -> int
(** How many fallbacks were served from the pool instead of a fresh
    device malloc. *)

val used_bytes : t -> int
(** Live slab bytes (stack extent minus recycled holes). *)

val live_slices : t -> int
val pool_slots : t -> int
val high_water : t -> int
(** Deepest stack extent ever observed. *)
