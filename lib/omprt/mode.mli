(** Execution modes for [teams] and [parallel] regions (§3.1, §3.2).

    [Generic] is the CPU-centric model: one main thread runs region code,
    the rest idle in a state machine until signalled with an outlined
    function.  [Spmd] is the GPU-centric model: every thread executes the
    region redundantly, assuming no side effects, and no signalling is
    needed. *)

type t = Generic | Spmd

val equal : t -> t -> bool
val is_spmd : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
