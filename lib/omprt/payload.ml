type value =
  | Int of int ref
  | Float of float ref
  | Farr of Gpusim.Memory.farray
  | Iarr of Gpusim.Memory.iarray

type t = value array

exception Type_error of string

let empty = [||]
let of_list = Array.of_list
let length = Array.length

let slot name t i =
  if i < 0 || i >= Array.length t then
    raise (Type_error (Printf.sprintf "payload slot %d out of range for %s" i name));
  t.(i)

let int_ref t i =
  match slot "int_ref" t i with
  | Int r -> r
  | Float _ | Farr _ | Iarr _ ->
      raise (Type_error (Printf.sprintf "slot %d is not an int ref" i))

let float_ref t i =
  match slot "float_ref" t i with
  | Float r -> r
  | Int _ | Farr _ | Iarr _ ->
      raise (Type_error (Printf.sprintf "slot %d is not a float ref" i))

let farr t i =
  match slot "farr" t i with
  | Farr a -> a
  | Int _ | Float _ | Iarr _ ->
      raise (Type_error (Printf.sprintf "slot %d is not a float array" i))

let iarr t i =
  match slot "iarr" t i with
  | Iarr a -> a
  | Int _ | Float _ | Farr _ ->
      raise (Type_error (Printf.sprintf "slot %d is not an int array" i))

let bytes t = 8 * Array.length t

let charge_per_slot (th : Gpusim.Thread.t) t =
  let cost = th.Gpusim.Thread.cfg.Gpusim.Config.cost in
  Gpusim.Thread.tick th
    (float_of_int (Array.length t) *. cost.Gpusim.Config.alu)

let pack = charge_per_slot
let unpack = charge_per_slot
