(** The [__simd] runtime entry point and the SIMD worker state machine
    (§5.2 Fig 4, §5.3 Fig 6).

    In an SPMD parallel region every lane of the SIMD group reaches
    [simd] with the trip count and payload already local, so the group
    drops straight into the workshare loop.  In a generic parallel region
    only the SIMD main reaches [simd]: it publishes the outlined function,
    trip count and arguments in its group's slot (arguments through the
    sharing space), releases the workers from their warp-level barrier,
    joins the loop itself, and re-synchronizes at the end. *)

val simd :
  Team.ctx ->
  ?payload:Payload.t ->
  ?fn_id:int ->
  trip:int ->
  Team.simd_body ->
  unit
(** Execute a [simd] loop from inside a parallel region.  Degrades to
    sequential execution when the SIMD group is a singleton — which is
    also how generic mode behaves on a device without warp barriers
    (§5.4.1), because {!Parallel.parallel} forces [simdlen = 1] there.
    @raise Failure outside a parallel region. *)

val simd_reduce :
  Team.ctx ->
  ?payload:Payload.t ->
  ?fn_id:int ->
  op:Redop.t ->
  trip:int ->
  Team.simd_reducer ->
  float
(** Extension (§7): a simd loop with a reduction over an arbitrary float
    monoid.  Each lane accumulates its share of the iterations locally,
    then the group combines through a warp-shuffle tree; the callers (the
    SIMD main in generic mode, every lane in SPMD mode) receive the total.
    Workers participate from inside the state machine. *)

val simd_sum :
  Team.ctx ->
  ?payload:Payload.t ->
  ?fn_id:int ->
  trip:int ->
  Team.simd_reducer ->
  float
(** [simd_reduce ~op:Redop.sum]. *)

val state_machine : Team.ctx -> unit
(** The SIMD worker loop (Fig 6): wait on the group's warp barrier; fetch
    the published function pointer; [None] means the parallel region ended
    — return; otherwise fetch the shared arguments, run the workshare
    loop, synchronize, repeat. *)

val signal_termination : Team.ctx -> unit
(** Called by the SIMD main at the end of a generic parallel region:
    publish a null function pointer and release the workers (Fig 3). *)
