(** Reduction operators over floats — shared by the warp-shuffle
    reductions and the simd-loop reduction protocol.  A record rather
    than a variant so user code can bring its own monoid. *)

type t = { identity : float; combine : float -> float -> float }

val sum : t
val max : t
val min : t
