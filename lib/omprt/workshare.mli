(** Worksharing-loop schedulers.

    [distribute] splits iterations across the league of teams, [omp_for]
    across the OpenMP threads of the enclosing parallel region, and
    [simd_loop] across the lanes of a SIMD group (§5.5 / Fig 8).

    With three-level parallelism an "OpenMP thread" is a whole SIMD group:
    in generic mode only the group's main executes region code, in SPMD
    mode every lane executes it redundantly, and either way the group is
    one worker from the worksharing loop's point of view.  When
    [simdlen = 1] each group is a single thread and the classic two-level
    behaviour falls out. *)

type schedule =
  | Static  (** round-robin single iterations (stride = #workers) *)
  | Chunked of int  (** round-robin chunks of the given size *)
  | Dynamic of int
      (** [schedule(dynamic,chunk)]: OpenMP threads grab chunks from a
          shared counter with atomic fetch-adds — pays synchronization but
          absorbs iteration imbalance.  Supported within a team ([omp for]
          and the within-team half of the combined construct); the
          across-teams distribution stays static, as LLVM's
          [dist_schedule] does. *)

val iterations : schedule -> id:int -> num:int -> trip:int -> int list
(** The iteration set worker [id] of [num] receives under a {e static}
    schedule — exposed for tests; the property suite checks these sets
    partition \[0, trip).  [Dynamic] has no static iteration set.
    @raise Invalid_argument on invalid id/num/trip, chunk <= 0, or a
    dynamic schedule. *)

val distribute :
  Team.ctx -> ?schedule:schedule -> trip:int -> (int -> unit) -> unit
(** Split across teams.  The static schedule assigns one contiguous chunk
    of [ceil(trip/teams)] iterations per team (LLVM's default
    [dist_schedule]); [Chunked] round-robins chunks across teams. *)

val distribute_bounds : trip:int -> num_teams:int -> int -> int * int
(** [distribute_bounds ~trip ~num_teams block_id] is the [(base, stop)]
    half-open chunk the static {!distribute} schedule hands to team
    [block_id] — the host-side mirror of the device-side split. *)

val distribute_extent : trip:int -> num_teams:int -> int -> int
(** [distribute_extent ~trip ~num_teams block_id] is the length of the
    contiguous chunk the static {!distribute} schedule hands to team
    [block_id] — the host-side mirror of the device-side split.  For a
    workload that is uniform per iteration this extent is a sound
    [block_class] key for {!Gpusim.Device.launch}: teams with equal
    chunk lengths are equivalent blocks. *)

val omp_for :
  Team.ctx -> ?schedule:schedule -> trip:int -> (int -> unit) -> unit
(** Split across the active parallel region's OpenMP threads (= SIMD
    groups).  @raise Failure outside a parallel region. *)

val distribute_parallel_for :
  Team.ctx -> ?schedule:schedule -> trip:int -> (int -> unit) -> unit
(** Combined construct: split across (team, OpenMP-thread) pairs. *)

val simd_loop : Team.ctx -> trip:int -> (int -> unit) -> unit
(** The paper's [__simd_loop] (Fig 8): a warp-synchronized round-robin of
    the iteration space over the lanes of the calling thread's SIMD group
    ([iv = getSimdGroupId(); iv += getSimdGroupSize()]).

    By default the lockstep rounds run {e fused}: after the entry
    rendezvous a single lane executes every lane's iterations round-major
    in ascending lane order, replicating the per-lane cost accounting and
    aligning the group's clocks at each round boundary, instead of
    parking each lane on a zero-cost barrier per round.  This removes the
    dominant fiber-switch traffic of simd-heavy kernels; the simulated
    schedule is the canonical SIMT instruction order (same-round accesses
    share the coalescing window and the warp's atomic epoch).
    [OMPSIMD_LOCKSTEP=classic] restores barrier-per-round execution;
    fault-injected runs always use it so stall faults keep their park
    points. *)

val refresh_from_env : unit -> unit
(** Re-read [OMPSIMD_LOCKSTEP] ("fused", default, or "classic"); called
    at every launch.
    @raise Invalid_argument on any other value. *)

val sequential_loop : Team.ctx -> trip:int -> (int -> unit) -> unit
(** Plain sequential execution with loop-overhead costing; the degradation
    path for singleton groups and AMD generic mode (§5.4.1). *)

val simd_fold_sum : Team.ctx -> trip:int -> (int -> float) -> float
val sequential_fold_sum : Team.ctx -> trip:int -> (int -> float) -> float
(** Sum-specialized counterparts of {!simd_loop}/{!sequential_loop}: the
    per-iteration results are added into an accumulator that stays in a
    register instead of flowing through a boxed [ref]/[combine] closure
    pair.  The tick sequence is identical to the generic loops, so
    simulated reports are unchanged. *)

val single : Team.ctx -> (unit -> unit) -> unit
(** [omp single]: the block runs on exactly one lane of the region (the
    first OpenMP thread's SIMD main), followed by the construct's implicit
    barrier over the executing threads. *)

val master : Team.ctx -> (unit -> unit) -> unit
(** [omp master]: like {!single} but without the barrier, as the standard
    specifies. *)
