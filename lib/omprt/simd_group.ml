module Mask = Ompsimd_util.Mask

type t = {
  warp_size : int;
  group_size : int;
  num_groups : int;
  groups_per_warp : int;
}

let make ~warp_size ~num_workers ~group_size =
  if group_size <= 0 || group_size > warp_size || warp_size mod group_size <> 0
  then
    invalid_arg
      (Printf.sprintf "Simd_group.make: group size %d does not divide warp %d"
         group_size warp_size);
  if num_workers <= 0 || num_workers mod group_size <> 0 then
    invalid_arg
      (Printf.sprintf
         "Simd_group.make: %d workers not a positive multiple of group %d"
         num_workers group_size);
  {
    warp_size;
    group_size;
    num_groups = num_workers / group_size;
    groups_per_warp = warp_size / group_size;
  }

let get_simd_group t ~tid = tid / t.group_size
let get_simd_group_id t ~tid = tid mod t.group_size
let get_simd_group_size t = t.group_size
let is_simd_group_leader t ~tid = get_simd_group_id t ~tid = 0

let simdmask t ~tid =
  let group_in_warp = get_simd_group t ~tid mod t.groups_per_warp in
  Mask.group ~warp_size:t.warp_size ~group_size:t.group_size
    ~group_index:group_in_warp

let leader_tid t ~group =
  if group < 0 || group >= t.num_groups then
    invalid_arg "Simd_group.leader_tid: group out of range";
  group * t.group_size

let valid_group_sizes ~warp_size =
  List.filter (fun d -> warp_size mod d = 0) (List.init warp_size (fun i -> i + 1))
