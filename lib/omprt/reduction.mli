(** Data reductions — the paper's stated future work (§6.2, §7),
    implemented here as an extension.

    [simd_*] reduce a per-lane value across the calling thread's SIMD
    group using a register-shuffle tree (log2(group) combining steps plus
    the group's warp barrier), which is what the missing feature would
    compile to on NVIDIA hardware.  [team_*] reduce across the OpenMP
    threads of the parallel region through shared-memory scratch and two
    team barriers.

    Experiment E6 compares [simd_sum] against the atomic-update workaround
    the paper had to use in sparse_matvec. *)

type 'a op = 'a constraint 'a = Redop.t
(** Deprecated alias surface: use {!Redop.t}. *)

val sum : Redop.t
val max_op : Redop.t
val min_op : Redop.t

val simd_reduce : Team.ctx -> Redop.t -> float -> float
(** Combine each lane's contribution across the SIMD group; every lane
    receives the result.  Deterministic combining order (lane 0 upward).
    @raise Failure outside a parallel region. *)

val simd_sum : Team.ctx -> float -> float

val team_reduce : Team.ctx -> Redop.t -> float -> float
(** Combine one contribution per OpenMP thread (SIMD group) across the
    team.  Must be called by every executing thread of the region, like an
    OpenMP reduction clause on a worksharing loop.  In generic mode the
    callers are the SIMD mains; in SPMD mode all lanes call and the lanes
    of a group must pass equal values (checked). *)

val team_sum : Team.ctx -> float -> float
