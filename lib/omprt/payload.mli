(** Outlined-function argument payloads (§4.1).

    Captured variables are aggregated into one payload, packed before the
    runtime call and unpacked inside the outlined function — the OCaml
    analogue of LLVM's `void **args`.  Each slot is "pointer-sized": the
    sharing space accounts 8 bytes per argument. *)

type value =
  | Int of int ref
  | Float of float ref
  | Farr of Gpusim.Memory.farray
  | Iarr of Gpusim.Memory.iarray

type t = value array

exception Type_error of string
(** Raised by the typed accessors on slot/type mismatch — the moral
    equivalent of a miscompiled payload unpack. *)

val empty : t
val of_list : value list -> t
val length : t -> int

val int_ref : t -> int -> int ref
val float_ref : t -> int -> float ref
val farr : t -> int -> Gpusim.Memory.farray
val iarr : t -> int -> Gpusim.Memory.iarray

val bytes : t -> int
(** 8 bytes per argument slot. *)

val pack : Gpusim.Thread.t -> t -> unit
(** Charge the cost of aggregating the payload (one ALU op per slot). *)

val unpack : Gpusim.Thread.t -> t -> unit
(** Charge the cost of unpacking inside the outlined function. *)
