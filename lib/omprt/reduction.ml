type 'a op = 'a constraint 'a = Redop.t

let sum = Redop.sum
let max_op = Redop.max
let min_op = Redop.min

let log2i n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* Cost of one shuffle-combine step per lane: a register exchange plus
   the combine ALU op. *)
let shuffle_step_cost (ctx : Team.ctx) =
  let cost = ctx.Team.th.Gpusim.Thread.cfg.Gpusim.Config.cost in
  cost.Gpusim.Config.alu +. cost.Gpusim.Config.flop

let simd_reduce ctx (op : Redop.t) v =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let gs = Simd_group.get_simd_group_size g in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  if gs = 1 then v
  else begin
    let scratch = team.Team.red_scratch in
    scratch.(tid) <- v;
    Team.sync_warp ctx;
    (* Tree depth in cost, deterministic sequential fold in value. *)
    Gpusim.Thread.tick ctx.Team.th
      (float_of_int (log2i gs) *. shuffle_step_cost ctx);
    let group = Simd_group.get_simd_group g ~tid in
    let base = group * gs in
    let acc =
      if op == sum then begin
        (* same left fold from the same 0.0 identity, but the float
           accumulator stays unboxed with no closure call per lane *)
        let acc = ref 0.0 in
        for lane = 0 to gs - 1 do
          acc := !acc +. scratch.(base + lane)
        done;
        !acc
      end
      else begin
        let acc = ref op.Redop.identity in
        for lane = 0 to gs - 1 do
          acc := op.Redop.combine !acc scratch.(base + lane)
        done;
        !acc
      end
    in
    Team.sync_warp ctx;
    acc
  end

let simd_sum ctx v = simd_reduce ctx sum v

let team_reduce ctx (op : Redop.t) v =
  let team = ctx.Team.team in
  let g = Team.geometry team in
  let gs = Simd_group.get_simd_group_size g in
  let tid = ctx.Team.th.Gpusim.Thread.tid in
  let scratch = team.Team.red_scratch in
  (* One contribution per OpenMP thread: lane 0 of each group writes. *)
  scratch.(tid) <- v;
  Gpusim.Shared.touch ctx.Team.th ~bytes:8;
  Team.region_barrier_wait ctx;
  let num_groups = g.Simd_group.num_groups in
  Gpusim.Thread.tick ctx.Team.th
    (float_of_int (log2i (max 2 num_groups)) *. shuffle_step_cost ctx);
  let acc = ref op.Redop.identity in
  for group = 0 to num_groups - 1 do
    let leader = Simd_group.leader_tid g ~group in
    (* SPMD lanes of one group must agree on their contribution. *)
    if not (Simd_group.is_simd_group_leader g ~tid) then
      assert (scratch.(tid) = scratch.(tid / gs * gs));
    acc := op.Redop.combine !acc scratch.(leader)
  done;
  Gpusim.Shared.touch ctx.Team.th ~bytes:(8 * num_groups);
  Team.region_barrier_wait ctx;
  !acc

let team_sum ctx v = team_reduce ctx sum v
