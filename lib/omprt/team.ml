module Mask = Ompsimd_util.Mask

type params = {
  num_teams : int;
  num_threads : int;
  teams_mode : Mode.t;
  sharing_bytes : int;
}

let default_params =
  {
    num_teams = 1;
    num_threads = 32;
    teams_mode = Mode.Spmd;
    sharing_bytes = Sharing.default_bytes;
  }

type ctx = { th : Gpusim.Thread.t; team : t }
and microtask = ctx -> Payload.t -> unit
and simd_body = ctx -> int -> Payload.t -> unit

and parallel_task = {
  fn : microtask;
  fn_id : int;
  payload : Payload.t;
  task_mode : Mode.t;
  group_size : int;
  mutable payload_location : Sharing.location;
}

and simd_reducer = ctx -> int -> Payload.t -> float

and simd_slot = {
  mutable simd_fn : simd_body option;
  mutable simd_red_fn : simd_reducer option;
  mutable simd_red_op : Redop.t;
  mutable simd_fn_id : int;
  mutable simd_trip : int;
  mutable simd_args : Payload.t;
  mutable simd_args_location : Sharing.location;
}

and t = {
  cfg : Gpusim.Config.t;
  block_id : int;
  params : params;
  num_workers : int;
  main_tid : int option;
  team_barrier : Gpusim.Barrier.t;
  warp_barriers : (int, Gpusim.Barrier.t) Hashtbl.t;
  region_barriers : (int, Gpusim.Barrier.t) Hashtbl.t;
  lockstep_barriers : (int, Gpusim.Barrier.t) Hashtbl.t;
  (* per-tid last-key memos over the two tables above, backed by a
     per-warp layer: the 32 lanes of a warp share each (warp, mask)
     barrier, so after the first lane's table lookup its siblings
     resolve without touching the Hashtbl at all *)
  wb_memo_key : int array;
  wb_memo_bar : Gpusim.Barrier.t option array;
  ls_memo_key : int array;
  ls_memo_bar : Gpusim.Barrier.t option array;
  wb_warp_key : int array;
  wb_warp_bar : Gpusim.Barrier.t option array;
  ls_warp_key : int array;
  ls_warp_bar : Gpusim.Barrier.t option array;
  sharing : Sharing.t;
  simd_slots : simd_slot array;
  mutable parallel_signal : parallel_task option;
  mutable active_geometry : Simd_group.t option;
  mutable active_task : parallel_task option;
  mutable dispatch_table_size : int;
  red_scratch : float array;
  mutable dyn_counter : int;
  mutable dyn_active : int;
  in_region : bool array;
  (* Fused-lockstep scratch (see Workshare.simd_loop): each lane deposits
     its thread handle, loop body and trip count before the entry
     rendezvous; the lane the engine resumes first drives every lane's
     rounds directly and bumps the group's sequence number so the parked
     lanes skip execution when they wake.  [fused_ths] is sized lazily on
     first use (Barrier-style) because a dummy Thread.t is not
     constructible here. *)
  mutable fused_ths : Gpusim.Thread.t array;
  fused_fns : (int -> unit) array;
  fused_reds : (int -> float) array;
  fused_acc : float array;
  fused_trip : int array;
  fused_actor : int array;
  fused_seq : int array;
}

let block_threads ~(cfg : Gpusim.Config.t) params =
  match params.teams_mode with
  | Mode.Spmd -> params.num_threads
  | Mode.Generic -> params.num_threads + cfg.Gpusim.Config.warp_size

let create ~cfg ~arena ~params ~block_id =
  let ws = cfg.Gpusim.Config.warp_size in
  if params.num_threads <= 0 || params.num_threads mod ws <> 0 then
    invalid_arg "Team.create: num_threads must be a positive warp multiple";
  let total = block_threads ~cfg params in
  if total > cfg.Gpusim.Config.max_threads_per_block then
    invalid_arg "Team.create: block exceeds max_threads_per_block";
  let num_workers = params.num_threads in
  let main_tid =
    match params.teams_mode with
    | Mode.Generic -> Some num_workers
    | Mode.Spmd -> None
  in
  let expected = num_workers + (match main_tid with Some _ -> 1 | None -> 0) in
  let fresh_slot () =
    {
      simd_fn = None;
      simd_red_fn = None;
      simd_red_op = Redop.sum;
      simd_fn_id = -1;
      simd_trip = 0;
      simd_args = Payload.empty;
      simd_args_location = Sharing.none;
    }
  in
  {
    cfg;
    block_id;
    params;
    num_workers;
    main_tid;
    team_barrier =
      Gpusim.Barrier.create
        ~name:(Printf.sprintf "team%d" block_id)
        ~expected
        ~cost:cfg.Gpusim.Config.cost.Gpusim.Config.block_barrier ();
    warp_barriers = Hashtbl.create 16;
    region_barriers = Hashtbl.create 4;
    lockstep_barriers = Hashtbl.create 16;
    wb_memo_key = Array.make total min_int;
    wb_memo_bar = Array.make total None;
    ls_memo_key = Array.make total min_int;
    ls_memo_bar = Array.make total None;
    wb_warp_key = Array.make ((total + ws - 1) / ws) min_int;
    wb_warp_bar = Array.make ((total + ws - 1) / ws) None;
    ls_warp_key = Array.make ((total + ws - 1) / ws) min_int;
    ls_warp_bar = Array.make ((total + ws - 1) / ws) None;
    sharing = Sharing.create ~arena ~bytes:params.sharing_bytes;
    simd_slots = Array.init num_workers (fun _ -> fresh_slot ());
    parallel_signal = None;
    active_geometry = None;
    active_task = None;
    dispatch_table_size = 0;
    red_scratch = Array.make num_workers 0.0;
    dyn_counter = 0;
    dyn_active = 0;
    in_region = Array.make num_workers false;
    fused_ths = [||];
    fused_fns = Array.make total (fun (_ : int) -> ());
    fused_reds = Array.make total (fun (_ : int) -> 0.0);
    fused_acc = Array.make total 0.0;
    fused_trip = Array.make total 0;
    fused_actor = Array.make total 0;
    fused_seq = Array.make num_workers 0;
  }

type role = Team_main | Worker | Inactive_main_lane

let role t ~tid =
  if tid < t.num_workers then Worker
  else
    match t.main_tid with
    | Some m when tid = m -> Team_main
    | Some _ | None -> Inactive_main_lane

let geometry t =
  match t.active_geometry with
  | Some g -> g
  | None -> failwith "Team.geometry: no parallel region is active"

let slot t ~group =
  if group < 0 || group >= Array.length t.simd_slots then
    invalid_arg "Team.slot: group out of range";
  t.simd_slots.(group)

(* Sanitizer taps: every rendezvous the runtime performs is reported to
   Ompsan *before* the engine wait, with the participant set the barrier
   expects, so the shadow epochs advance exactly where real
   synchronization happens.  One load-and-branch when disabled. *)
let san_warp_arrive (th : Gpusim.Thread.t) ~mask bar =
  if !Gpusim.Ompsan.enabled then begin
    let ws = th.Gpusim.Thread.cfg.Gpusim.Config.warp_size in
    let warp = th.Gpusim.Thread.warp.Gpusim.Thread.warp_index in
    let participants = List.map (fun l -> (warp * ws) + l) (Mask.to_list mask) in
    Gpusim.Ompsan.barrier_arrive th ~block_scope:false ~mask
      ~bar_id:(Gpusim.Barrier.id bar)
      ~bar_name:(Gpusim.Barrier.name bar)
      ~expected:(Gpusim.Barrier.expected bar)
      ~participants
  end

let san_block_arrive (th : Gpusim.Thread.t) ~participants bar =
  if !Gpusim.Ompsan.enabled then
    Gpusim.Ompsan.barrier_arrive th ~block_scope:true ~mask:0
      ~bar_id:(Gpusim.Barrier.id bar)
      ~bar_name:(Gpusim.Barrier.name bar)
      ~expected:(Gpusim.Barrier.expected bar)
      ~participants:(participants ())

let warp_barrier_for t (th : Gpusim.Thread.t) ~mask =
  let tid = th.Gpusim.Thread.tid in
  let warp = th.Gpusim.Thread.warp.Gpusim.Thread.warp_index in
  let key = (warp * 0x1_0000_0000) lor mask in
  match t.wb_memo_bar.(tid) with
  | Some b when t.wb_memo_key.(tid) = key -> b
  | _ ->
      let b =
        match t.wb_warp_bar.(warp) with
        | Some b when t.wb_warp_key.(warp) = key -> b
        | _ ->
            let b =
              match Hashtbl.find_opt t.warp_barriers key with
              | Some b -> b
              | None ->
                  let b =
                    let participants = Mask.popcount mask in
                    Gpusim.Barrier.create
                      ~name:(Printf.sprintf "warp%d:%08x" warp mask)
                      ~spin:(Gpusim.Config.warp_barrier_spins t.cfg)
                      ~expected:participants
                      ~cost:
                        (Gpusim.Config.warp_barrier_cost t.cfg ~participants)
                      ()
                  in
                  Hashtbl.add t.warp_barriers key b;
                  b
            in
            t.wb_warp_key.(warp) <- key;
            t.wb_warp_bar.(warp) <- Some b;
            b
      in
      t.wb_memo_key.(tid) <- key;
      t.wb_memo_bar.(tid) <- Some b;
      b

let lockstep_barrier t (th : Gpusim.Thread.t) ~mask =
  let tid = th.Gpusim.Thread.tid in
  let warp = th.Gpusim.Thread.warp.Gpusim.Thread.warp_index in
  let key = (warp * 0x1_0000_0000) lor mask in
  match t.ls_memo_bar.(tid) with
  | Some b when t.ls_memo_key.(tid) = key -> b
  | _ ->
      let b =
        match t.ls_warp_bar.(warp) with
        | Some b when t.ls_warp_key.(warp) = key -> b
        | _ ->
            let b =
              match Hashtbl.find_opt t.lockstep_barriers key with
              | Some b -> b
              | None ->
                  let b =
                    Gpusim.Barrier.create
                      ~name:(Printf.sprintf "lockstep%d:%08x" warp mask)
                      ~expected:(Ompsimd_util.Mask.popcount mask)
                      ~cost:0.0 ()
                  in
                  Hashtbl.add t.lockstep_barriers key b;
                  b
            in
            t.ls_warp_key.(warp) <- key;
            t.ls_warp_bar.(warp) <- Some b;
            b
      in
      t.ls_memo_key.(tid) <- key;
      t.ls_memo_bar.(tid) <- Some b;
      b

let lockstep_align ctx =
  let g = geometry ctx.team in
  if Simd_group.get_simd_group_size g > 1 then begin
    let tid = ctx.th.Gpusim.Thread.tid in
    let mask = Simd_group.simdmask g ~tid in
    let bar = lockstep_barrier ctx.team ctx.th ~mask in
    san_warp_arrive ctx.th ~mask bar;
    Gpusim.Engine.barrier_wait bar ctx.th
  end

let sync_warp ctx =
  let g = geometry ctx.team in
  if Simd_group.get_simd_group_size g > 1 then
    match ctx.team.cfg.Gpusim.Config.barrier_impl with
    | Gpusim.Config.Hw_barrier | Gpusim.Config.Sw_barrier ->
        (* Hardware masked sync, or its software emulation (spin on
           shared-memory flags) — either way a real blocking rendezvous;
           they differ only in cost shape (see Config.warp_barrier_cost). *)
        let mask = Simd_group.simdmask g ~tid:ctx.th.Gpusim.Thread.tid in
        let bar = warp_barrier_for ctx.team ctx.th ~mask in
        ctx.th.Gpusim.Thread.counters.Gpusim.Counters.warp_barriers <-
          ctx.th.Gpusim.Thread.counters.Gpusim.Counters.warp_barriers + 1;
        san_warp_arrive ctx.th ~mask bar;
        Gpusim.Engine.barrier_wait bar ctx.th
    | Gpusim.Config.No_barrier ->
        (* No explicit wavefront barrier (§5.4.1), but AMD wavefronts are
           implicitly lockstep, which is all the SPMD path needs; the
           generic state machine — which needs a *blocking* rendezvous —
           was already degraded to singleton groups by __parallel. *)
        lockstep_align ctx

let team_barrier_wait ctx =
  ctx.th.Gpusim.Thread.counters.Gpusim.Counters.block_barriers <-
    ctx.th.Gpusim.Thread.counters.Gpusim.Counters.block_barriers + 1;
  san_block_arrive ctx.th
    ~participants:(fun () ->
      let workers = List.init ctx.team.num_workers Fun.id in
      match ctx.team.main_tid with
      | Some m -> workers @ [ m ]
      | None -> workers)
    ctx.team.team_barrier;
  Gpusim.Engine.barrier_wait ctx.team.team_barrier ctx.th

let executing_threads t =
  match t.active_task with
  | None -> failwith "Team.executing_threads: no parallel region is active"
  | Some task -> (
      match task.task_mode with
      | Mode.Spmd -> t.num_workers
      | Mode.Generic -> (geometry t).Simd_group.num_groups)

let region_barrier_wait ctx =
  let expected = executing_threads ctx.team in
  if expected > 1 then begin
    let bar =
      match Hashtbl.find_opt ctx.team.region_barriers expected with
      | Some b -> b
      | None ->
          let b =
            Gpusim.Barrier.create
              ~name:(Printf.sprintf "region%d/%d" ctx.team.block_id expected)
              ~expected
              ~cost:ctx.team.cfg.Gpusim.Config.cost.Gpusim.Config.block_barrier
              ()
          in
          Hashtbl.add ctx.team.region_barriers expected b;
          b
    in
    ctx.th.Gpusim.Thread.counters.Gpusim.Counters.block_barriers <-
      ctx.th.Gpusim.Thread.counters.Gpusim.Counters.block_barriers + 1;
    san_block_arrive ctx.th
      ~participants:(fun () ->
        match (Option.get ctx.team.active_task).task_mode with
        | Mode.Spmd -> List.init ctx.team.num_workers Fun.id
        | Mode.Generic ->
            let g = geometry ctx.team in
            List.init g.Simd_group.num_groups (fun group ->
                Simd_group.leader_tid g ~group))
      bar;
    Gpusim.Engine.barrier_wait bar ctx.th
  end

let charge ctx cost n =
  if n < 0 then invalid_arg "Team.charge: negative count";
  Gpusim.Thread.tick ctx.th (float_of_int n *. cost)

let charge_flops ctx n =
  charge ctx ctx.team.cfg.Gpusim.Config.cost.Gpusim.Config.flop n

let charge_alu ctx n =
  charge ctx ctx.team.cfg.Gpusim.Config.cost.Gpusim.Config.alu n

let charge_special ctx n =
  charge ctx ctx.team.cfg.Gpusim.Config.cost.Gpusim.Config.special n

(* Charge-only half of [invoke_microtask], so hot callers can charge the
   dispatch and then make a direct call instead of threading a thunk. *)
let charge_microtask ctx ~fn_id =
  let cfg = ctx.team.cfg in
  let cost = cfg.Gpusim.Config.cost in
  let c =
    if fn_id >= 0 && fn_id < ctx.team.dispatch_table_size then
      (* if-cascade: one compare per entry scanned, then a direct call *)
      (float_of_int (fn_id + 1) *. cost.Gpusim.Config.icmp_cascade)
      +. cost.Gpusim.Config.call
    else cost.Gpusim.Config.indirect_call
  in
  Gpusim.Thread.tick ctx.th c;
  ctx.th.Gpusim.Thread.counters.Gpusim.Counters.calls <-
    ctx.th.Gpusim.Thread.counters.Gpusim.Counters.calls + 1

let invoke_microtask ctx ~fn_id run =
  charge_microtask ctx ~fn_id;
  run ()
