(** Per-team runtime state (§5).

    One value of type {!t} is shared by all threads of a block: it carries
    the execution modes, the signal slots through which main threads hand
    outlined functions to their workers, the variable-sharing space, and
    the team's barriers.  The record is exposed concretely because the
    runtime's behaviour modules ([Parallel], [Simd], [Target]) are its
    co-implementors; user code goes through the [Openmp] frontend and never
    touches it. *)

type params = {
  num_teams : int;
  num_threads : int;  (** worker threads per team; a warp multiple *)
  teams_mode : Mode.t;
  sharing_bytes : int;  (** static sharing-space reservation *)
}

val default_params : params
(** 1 team x 1 warp, SPMD, 2048-byte sharing space. *)

type ctx = { th : Gpusim.Thread.t; team : t }
(** What an executing thread sees: its lane and its team. *)

and microtask = ctx -> Payload.t -> unit
(** An outlined [parallel]-region body. *)

and simd_body = ctx -> int -> Payload.t -> unit
(** An outlined [simd] loop body; the [int] is the iteration number. *)

and parallel_task = {
  fn : microtask;
  fn_id : int;  (** outlined-region id for dispatch-cost modelling (§5.5) *)
  payload : Payload.t;
  task_mode : Mode.t;  (** mode of this parallel region *)
  group_size : int;  (** SIMD group size for this region *)
  mutable payload_location : Sharing.location;
      (** where the team main published the payload (generic teams mode) *)
}

and simd_reducer = ctx -> int -> Payload.t -> float
(** A simd loop body contributing one summand per iteration (extension). *)

and simd_slot = {
  mutable simd_fn : simd_body option;
  mutable simd_red_fn : simd_reducer option;
      (** set instead of [simd_fn] for reducing loops: workers must join
          the group reduction after their share of the iterations *)
  mutable simd_red_op : Redop.t;
      (** the monoid of the current reducing loop *)
  mutable simd_fn_id : int;
  mutable simd_trip : int;
  mutable simd_args : Payload.t;
  mutable simd_args_location : Sharing.location;
}

and t = {
  cfg : Gpusim.Config.t;
  block_id : int;
  params : params;
  num_workers : int;
  main_tid : int option;  (** the extra warp's lane 0, generic mode only *)
  team_barrier : Gpusim.Barrier.t;
  warp_barriers : (int, Gpusim.Barrier.t) Hashtbl.t;
  region_barriers : (int, Gpusim.Barrier.t) Hashtbl.t;
      (** barriers over the threads executing the current parallel region,
          keyed by participant count *)
  lockstep_barriers : (int, Gpusim.Barrier.t) Hashtbl.t;
      (** zero-cost alignment barriers modelling the implicit SIMT
          lockstep of a group's lanes inside a simd loop *)
  wb_memo_key : int array;
  wb_memo_bar : Gpusim.Barrier.t option array;
  ls_memo_key : int array;
  ls_memo_bar : Gpusim.Barrier.t option array;
  wb_warp_key : int array;
  wb_warp_bar : Gpusim.Barrier.t option array;
  ls_warp_key : int array;
  ls_warp_bar : Gpusim.Barrier.t option array;
      (** per-tid last (warp, mask) → barrier memos for the two tables
          above: a lane re-syncing on the same mask (every simd round)
          skips the hash lookup *)
  sharing : Sharing.t;
  simd_slots : simd_slot array;  (** indexed by SIMD group *)
  mutable parallel_signal : parallel_task option;
      (** the team main's signal to workers in teams-generic mode *)
  mutable active_geometry : Simd_group.t option;
      (** set while a parallel region executes *)
  mutable active_task : parallel_task option;
      (** the parallel region currently executing (any teams mode) *)
  mutable dispatch_table_size : int;
      (** outlined regions known to the if-cascade dispatcher (§5.5) *)
  red_scratch : float array;
      (** per-worker reduction scratch (one slot per tid), extension §7 *)
  mutable dyn_counter : int;
      (** shared iteration counter for dynamically-scheduled worksharing
          loops (extension): OpenMP threads grab chunks with an atomic
          fetch-add *)
  mutable dyn_active : int;
      (** OpenMP threads currently inside a dynamically-scheduled
          worksharing loop.  While non-zero, simd loops keep the classic
          barrier-per-round execution: the dynamic chunk-assignment
          policy is defined by the engine's round-level fiber
          interleaving (threads with longer chunks park more often and
          grab fewer), which fused rounds would collapse. *)
  in_region : bool array;
      (** per-worker flag: inside a parallel region's outlined body.
          Used to reject nested [parallel] with a clear error (LLVM
          serializes nested regions; this runtime asks the program to
          restructure instead). *)
  mutable fused_ths : Gpusim.Thread.t array;
      (** fused-lockstep deposit slots, per tid (see [Workshare]): the
          thread handles of the lanes whose simd rounds the driving lane
          executes.  Lazily sized on first use. *)
  fused_fns : (int -> unit) array;  (** per-tid deposited loop bodies *)
  fused_reds : (int -> float) array;
      (** per-tid deposited reducing bodies *)
  fused_acc : float array;
      (** per-tid fold accumulators written by the driving lane *)
  fused_trip : int array;  (** per-tid deposited trip counts *)
  fused_actor : int array;
      (** per-tid saved sanitizer actors across a driven loop *)
  fused_seq : int array;
      (** per-group fused-loop sequence numbers: the driving lane bumps
          the count so woken lanes know their rounds already ran *)
}

val create :
  cfg:Gpusim.Config.t ->
  arena:Gpusim.Shared.arena ->
  params:params ->
  block_id:int ->
  t
(** Build the team state and statically reserve the sharing space.
    @raise Invalid_argument if [num_threads] is not a positive warp
    multiple, or the block would exceed device limits. *)

val block_threads : cfg:Gpusim.Config.t -> params -> int
(** Threads the block must launch with: [num_threads], plus one extra warp
    for the team main in generic mode (§5.1 / Fig 2). *)

type role =
  | Team_main  (** lane 0 of the extra warp (generic mode) *)
  | Worker
  | Inactive_main_lane  (** remaining lanes of the extra warp *)

val role : t -> tid:int -> role

val geometry : t -> Simd_group.t
(** Geometry of the active parallel region.
    @raise Failure when no parallel region is active. *)

val slot : t -> group:int -> simd_slot

val sync_warp : ctx -> unit
(** Masked warp-level barrier over the calling thread's SIMD group
    (CUDA [__syncwarp(simdmask())]).  A no-op for singleton groups.  On a
    device without explicit wavefront barriers (§5.4.1) it degrades to
    the implicit-lockstep alignment, which suffices for the SPMD path;
    generic-mode signalling cannot use it and is degraded to singleton
    groups by {!Parallel.parallel} before ever reaching here. *)

val team_barrier_wait : ctx -> unit
(** Block-wide barrier over workers + team main. *)

val lockstep_barrier : t -> Gpusim.Thread.t -> mask:int -> Gpusim.Barrier.t
(** The zero-cost alignment barrier for [th]'s (warp, mask) pair —
    {!lockstep_align}'s barrier resolution, exposed so the fused
    lockstep executor can feed the same barrier identity to the
    sanitizer taps without parking on it. *)

val san_warp_arrive : Gpusim.Thread.t -> mask:int -> Gpusim.Barrier.t -> unit
(** Report a warp-scope rendezvous on [bar] to Ompsan for one lane.  A
    load-and-branch when the sanitizer is disabled.  The runtime calls
    this before every engine wait; the fused lockstep executor calls it
    per lane at each round boundary so the shadow epochs advance exactly
    as they would under real barriers. *)

val lockstep_align : ctx -> unit
(** Align the SIMD group's virtual clocks without cost or counter
    traffic.  Models the implicit instruction-level lockstep of the
    lanes inside a simd workshare loop — on hardware the lanes of a warp
    advance together; the fiber engine runs them to completion one at a
    time, so without realignment their clocks would drift and
    same-instruction accesses would stop looking concurrent to the
    coalescing model.  A no-op for singleton groups. *)

val executing_threads : t -> int
(** How many threads execute the active parallel region's code: all
    workers in SPMD mode, one SIMD main per group in generic mode.
    @raise Failure when no region is active. *)

val region_barrier_wait : ctx -> unit
(** Barrier over exactly the threads executing the current region — what
    an [omp barrier] or a reduction inside the region compiles to.  Every
    executing thread must call it the same number of times. *)

val charge_flops : ctx -> int -> unit
(** Account floating-point work done by a kernel body written against the
    direct (closure) API — the IR evaluator does this automatically, but a
    hand-written body's arithmetic is invisible to the simulator without
    it. *)

val charge_alu : ctx -> int -> unit
val charge_special : ctx -> int -> unit
(** Square roots, exponentials, divisions. *)

val invoke_microtask : ctx -> fn_id:int -> (unit -> unit) -> unit
(** Run an outlined region, charging the §5.5 dispatch cost: an if-cascade
    compare per known region when the id is in the table, the indirect-call
    penalty otherwise. *)

val charge_microtask : ctx -> fn_id:int -> unit
(** Charge the {!invoke_microtask} dispatch cost without running anything,
    for callers that follow up with a direct call. *)
