(* Deterministic synthetic traffic for the fleet.

   Everything a production serve tier gets hit with, in virtual time
   and from one seed: heavy-tailed (bounded-Pareto) inter-arrival gaps,
   periodic bursts, a diurnal sine wave modulating the arrival rate,
   and flash crowds — a pile of near-simultaneous requests for the
   {e same} content, which is exactly what launch batching and the
   compile cache exist for.  Tenants are Zipf-hot: a couple of heavy
   clients and a long light tail, so weighted-fair admission has
   something to defend against.

   The generator is a pure function of the profile: same profile, same
   trace, byte for byte.  It never reads the environment or the host
   clock, and it draws from a single {!Ompsimd_util.Prng} stream in
   arrival order, so adding requests at the end never perturbs the
   front of the trace. *)

module Prng = Ompsimd_util.Prng

type profile = {
  n : int;
  seed : int;
  tenants : string list;  (* Zipf-hot: first is heaviest; [] = all "-" *)
  mean_gap : float;  (* mean inter-arrival gap, virtual ticks *)
  tail_alpha : float;  (* bounded-Pareto shape; smaller = heavier tail *)
  burst_every : int;  (* every k-th request opens a burst; 0 = off *)
  burst_size : int;  (* extra requests at ~zero gap *)
  diurnal_period : float;  (* sine wave over arrival time; 0 = off *)
  diurnal_amp : float;  (* 0..1: rate swing around the mean *)
  flash_every : int;  (* every k-th request opens a flash crowd; 0 = off *)
  flash_size : int;  (* same-content requests an arrival tick apart *)
  deadline_frac : float;  (* fraction of requests carrying a deadline *)
  sizes : int list;  (* problem sizes to draw from *)
}

let preset name ~n ~seed =
  let base =
    {
      n;
      seed;
      tenants = [ "alpha"; "beta"; "gamma"; "delta" ];
      mean_gap = 900.0;
      tail_alpha = 1.6;
      burst_every = 0;
      burst_size = 0;
      diurnal_period = 0.0;
      diurnal_amp = 0.0;
      flash_every = 0;
      flash_size = 0;
      deadline_frac = 0.0;
      sizes = [ 16; 24; 32; 48 ];
    }
  in
  match name with
  | "steady" -> base
  | "bursty" -> { base with burst_every = 19; burst_size = 6; mean_gap = 1100.0 }
  | "diurnal" ->
      { base with diurnal_period = 60_000.0; diurnal_amp = 0.7; mean_gap = 800.0 }
  | "flash" -> { base with flash_every = 37; flash_size = 8; mean_gap = 1000.0 }
  | "mixed" ->
      {
        base with
        burst_every = 23;
        burst_size = 5;
        diurnal_period = 80_000.0;
        diurnal_amp = 0.5;
        flash_every = 41;
        flash_size = 6;
        deadline_frac = 0.1;
      }
  | other -> Printf.ksprintf failwith "Traffic.preset: unknown profile %S" other

let preset_names = [ "steady"; "bursty"; "diurnal"; "flash"; "mixed" ]

(* Bounded Pareto on [1, 64) — the heavy tail without unbounded gaps
   (an unbounded draw could push one request past everything else and
   make makespan a lottery).  Mean of the raw draw is normalized out so
   [mean_gap] stays the profile's actual mean gap. *)
let pareto_gap rng ~alpha ~mean =
  let u = Prng.uniform rng in
  let u = if u >= 0.999999 then 0.999999 else u in
  let raw = (1.0 -. u) ** (-1.0 /. alpha) in
  let raw = if raw > 64.0 then 64.0 else raw in
  (* alpha/(alpha-1) is the raw mean for alpha > 1; dividing keeps the
     configured mean *)
  let norm = if alpha > 1.0 then alpha /. (alpha -. 1.0) else 2.0 in
  mean *. raw /. norm

let pick_tenant rng = function
  | [] -> "-"
  | tenants ->
      let n = List.length tenants in
      let k = Prng.zipf rng ~n ~s:1.1 in
      List.nth tenants (k - 1)

let templates = [| "rowsum"; "saxpy"; "stencil"; "hist"; "chain" |]

let generate (p : profile) =
  if p.n < 0 then invalid_arg "Traffic.generate: negative n";
  if p.mean_gap <= 0.0 then invalid_arg "Traffic.generate: mean_gap must be positive";
  let sizes = Array.of_list (if p.sizes = [] then [ 32 ] else p.sizes) in
  let rng = Prng.create ~seed:(0x7aff1c + p.seed) in
  let specs = ref [] in
  let id = ref 0 in
  let now = ref 0.0 in
  let emit ?(gap = 0.0) ?like () =
    now := !now +. gap;
    let spec =
      match like with
      | Some (s : Request.spec) ->
          (* a flash-crowd follower: same content and geometry, its own
             identity and arrival tick *)
          { s with Request.id = !id; at = !now; tenant = pick_tenant rng p.tenants }
      | None ->
          let kernel = templates.(Prng.zipf rng ~n:(Array.length templates) ~s:1.2 - 1) in
          let size = sizes.(Prng.int rng (Array.length sizes)) in
          let deadline =
            if p.deadline_frac > 0.0 && Prng.uniform rng < p.deadline_frac then
              Some (!now +. 20_000.0 +. Prng.float rng 60_000.0)
            else None
          in
          {
            Request.id = !id;
            at = !now;
            kernel;
            size;
            teams = 2;
            threads = 32;
            simdlen = (if Prng.bool rng then 8 else 4);
            guardize = Prng.int rng 8 = 0;
            deadline;
            priority = (if Prng.int rng 10 = 0 then 1 else 0);
            seed = 1 + Prng.int rng 5;
            tenant = pick_tenant rng p.tenants;
            device = None;
          }
    in
    incr id;
    specs := spec :: !specs;
    spec
  in
  let k = ref 0 in
  while !id < p.n do
    incr k;
    let gap = pareto_gap rng ~alpha:p.tail_alpha ~mean:p.mean_gap in
    (* the diurnal wave stretches or squeezes the gap by where the
       arrival lands in the period *)
    let gap =
      if p.diurnal_period > 0.0 then begin
        let phase = 2.0 *. Float.pi *. !now /. p.diurnal_period in
        let rate = 1.0 +. (p.diurnal_amp *. sin phase) in
        let rate = if rate < 0.1 then 0.1 else rate in
        gap /. rate
      end
      else gap
    in
    let leader = emit ~gap () in
    if p.flash_every > 0 && !k mod p.flash_every = 0 then
      for _ = 2 to min p.flash_size (p.n - !id + 1) do
        ignore (emit ~gap:1.0 ~like:leader () : Request.spec)
      done
    else if p.burst_every > 0 && !k mod p.burst_every = 0 then
      for _ = 2 to min p.burst_size (p.n - !id + 1) do
        ignore (emit ~gap:2.0 () : Request.spec)
      done
  done;
  List.rev !specs
