(* The request scheduler: a discrete-event simulation of a persistent
   kernel-launch service running in virtual time.

   Requests arrive at trace-defined ticks.  Admission is a bounded
   queue: a full queue rejects (no retry policy) or schedules a
   retry-with-exponential-backoff re-arrival; requests that exhaust
   their retries are shed.  [servers] virtual executors dispatch the
   queue highest-priority-first (FIFO within a priority, ids break
   ties).  Service time for a request is

     compile component + execution component

   where the execution component is the launch's simulated device time
   ([Gpusim.Device.report.time_cycles] — bit-identical across engines
   and pool sizes by the simulator's determinism contract), and the
   compile component models staged compilation against the cache:
   a miss charges a cost proportional to the kernel's structural weight
   and registers the compile as in flight; a request for the same key
   dispatched before the in-flight compile's virtual completion waits
   for it (single flight: one compile charged, late requests pay only
   the residual wait); a hit after that is free.  Host-side the
   artifact is compiled once per key through {!Cache.find_or_compile} —
   that is the real, wall-clock amortization the bench measures.

   Nothing reads the host clock and every tie in the event queue is
   broken by a deterministic sequence number, so a replay of the same
   trace is bit-identical — the property tools/serve_smoke.sh enforces. *)

module Offload = Openmp.Offload
module Clause = Openmp.Clause

type outcome =
  | Completed
  | Rejected
  | Shed
  | Shed_slo
  | Timed_out
  | Failed
  | Degraded

let outcome_to_string = function
  | Completed -> "completed"
  | Rejected -> "rejected"
  | Shed -> "shed"
  | Shed_slo -> "shed-slo"
  | Timed_out -> "timed-out"
  | Failed -> "failed"
  | Degraded -> "degraded"

type cache_status = C_hit | C_miss | C_join | C_none

let cache_status_to_string = function
  | C_hit -> "hit"
  | C_miss -> "miss"
  | C_join -> "join"
  | C_none -> "-"

type rq_report = {
  spec : Request.spec;
  outcome : outcome;
  attempts : int;
  launches : int;  (* device launches performed; 0 = never ran *)
  start : float;  (* -1 when the request never dispatched *)
  finish : float;
  latency : float;  (* finish - arrival *)
  compile_ticks : float;
  exec_ticks : float;
  cache : cache_status;
  checksum : float;  (* 0 when the kernel never ran *)
}

type config = {
  cfg : Gpusim.Config.t;
  queue_bound : int;
  servers : int;
  cache_capacity : int;
  max_retries : int;
  backoff : float;  (* base ticks; attempt k waits backoff * 2^(k-1) *)
  breaker : int;  (* consecutive device failures that open it; 0 = off *)
  slo : float option;
      (* latency SLO in virtual ticks; arms SLO-aware admission (and,
         in the fleet, the autoscaler); None = no SLO *)
  window : float;  (* telemetry/SLO evaluation window, virtual ticks *)
  knobs : Offload.knobs;  (* guardize is overridden per request *)
}

module Env = Ompsimd_util.Env

(* OMPSIMD_SERVE_SLO_MS speaks milliseconds of virtual time (1 ms =
   1000 ticks) — SLOs are operator-facing, ticks are not. *)
let slo_of_env () =
  match Env.var "OMPSIMD_SERVE_SLO_MS" with
  | None -> None
  | Some s -> (
      match float_of_string_opt s with
      | Some ms when ms > 0.0 -> Some (ms *. 1000.0)
      | _ ->
          invalid_arg
            (Printf.sprintf
               "OMPSIMD_SERVE_SLO_MS must be a positive number, got %S" s))

let config_of_env ~cfg () =
  {
    cfg;
    queue_bound = Env.int "OMPSIMD_SERVE_QUEUE" ~default:16;
    servers = Env.int "OMPSIMD_SERVE_CONC" ~default:2;
    cache_capacity = Env.int "OMPSIMD_SERVE_CACHE" ~default:32;
    max_retries = Env.int "OMPSIMD_SERVE_RETRIES" ~default:2;
    backoff = Env.float "OMPSIMD_SERVE_BACKOFF" ~default:500.0;
    breaker = Env.int "OMPSIMD_SERVE_BREAKER" ~default:4;
    slo = slo_of_env ();
    window = Env.float "OMPSIMD_SERVE_WINDOW" ~default:20_000.0;
    knobs = Offload.default_knobs;
  }

(* Virtual compile cost: purely structural, so it is identical on every
   host.  25 ticks per IR node on a 200-tick floor lands small kernels
   in the same decade as their launch times on the small device. *)
let compile_cost kernel =
  200.0 +. (25.0 *. float_of_int (Ompir.Kdigest.weight kernel))

(* --- event queue ------------------------------------------------------- *)

(* [attempts] counts admissions (the queue-bound retry policy);
   [launches] counts device launches performed, so the relaunch budget
   after device failures is independent of admission history. *)
type pending = { spec : Request.spec; attempts : int; launches : int }

type running = {
  pending : pending;  (* launches already includes the one in flight *)
  started : float;
  r_compile : float;
  r_exec : float;
  r_cache : cache_status;
  r_checksum : float;
  r_key : string;  (* cache key = breaker key *)
  r_failed : bool;  (* the launch came back with failed blocks (or hung) *)
}

(* Relaunch re-enters dispatch exempt from the admission bound: the
   request was already admitted once, recovery must not lose it. *)
type event = Arrive of pending | Finish of running | Relaunch of pending

(* --- per-kernel-digest circuit breaker ---------------------------------
   Closed counts consecutive device failures; at [conf.breaker] of them
   it opens and sheds every dispatch of that key as Degraded.  After a
   cooldown of [8 * backoff] ticks the next dispatch goes through as the
   single half-open probe: success closes, failure reopens. *)
type breaker_state = Br_closed | Br_open of float (* opened at *) | Br_probing

type breaker = { mutable consecutive : int; mutable br : breaker_state }

(* The event queue lives in {!Eheap}, shared with the fleet scheduler:
   a (time, rank, seq) min-heap where completions (rank 0) beat
   arrivals (rank 1) at the same tick and the sequence number makes
   every comparison strict. *)
module Heap = Eheap

(* --- the service loop -------------------------------------------------- *)

let run conf ?pool specs =
  if conf.servers < 1 then invalid_arg "Scheduler.run: servers must be >= 1";
  if conf.queue_bound < 0 then invalid_arg "Scheduler.run: negative queue bound";
  if conf.breaker < 0 then invalid_arg "Scheduler.run: negative breaker threshold";
  if conf.window <= 0.0 then invalid_arg "Scheduler.run: window must be > 0";
  (* Arm (or disarm) fault injection for the whole replay and rewind the
     launch nonce: a replay of the same trace under the same fault seed
     must inject the same faults into the same launches. *)
  Gpusim.Fault.refresh_from_env ();
  Gpusim.Fault.reset ();
  let cache = Cache.create ~capacity:conf.cache_capacity in
  let heap = Heap.create () in
  let queue : pending list ref = ref [] in
  let free = ref conf.servers in
  let reports = ref [] in
  let retries = ref 0 in
  let queue_max = ref 0 in
  let inflight_max = ref 0 in
  let launches = ref 0 in
  let blocks = ref 0 in
  let sim_cycles = ref 0.0 in
  let global_loads = ref 0 in
  let global_stores = ref 0 in
  let atomics = ref 0 in
  let device_failures = ref 0 in
  let relaunches = ref 0 in
  let recovered = ref 0 in
  let breaker_opens = ref 0 in
  let fault_stats = ref Gpusim.Fault.zero_stats in
  let last_time = ref 0.0 in
  (* --- SLO-aware admission (when conf.slo is set) ----------------------
     Completion latencies accumulate per window; at each boundary the
     windowed p99 decides whether admission is in shedding mode for the
     next window.  A window with no completions carries the previous
     p99 forward unless the service is fully idle — a saturated
     scheduler that completes nothing must not be mistaken for a
     healthy one.  In shedding mode, lowest-priority arrivals take the
     explicit Shed_slo outcome instead of a queue slot. *)
  let slo_violations = ref 0 in
  let shedding = ref false in
  let wlat = ref [] in
  let wstart = ref 0.0 in
  let carry_p99 = ref 0.0 in
  let advance_window now =
    match conf.slo with
    | None -> ()
    | Some slo ->
        while now >= !wstart +. conf.window do
          (match !wlat with
          | [] ->
              if !queue = [] && !free = conf.servers then carry_p99 := 0.0
          | l ->
              carry_p99 :=
                Ompsimd_util.Stats.percentile (Array.of_list l) 99.0);
          shedding := !carry_p99 > slo;
          wlat := [];
          wstart := !wstart +. conf.window
        done
  in
  let observe_completion latency =
    match conf.slo with
    | None -> ()
    | Some slo ->
        wlat := latency :: !wlat;
        if latency > slo then incr slo_violations
  in
  (* virtual single-flight bookkeeping: key -> tick at which the
     in-flight compile completes *)
  let compiling : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let breakers : (string, breaker) Hashtbl.t = Hashtbl.create 16 in
  let breaker_for key =
    match Hashtbl.find_opt breakers key with
    | Some b -> b
    | None ->
        let b = { consecutive = 0; br = Br_closed } in
        Hashtbl.add breakers key b;
        b
  in
  let breaker_cooldown = 8.0 *. conf.backoff in
  (* false = shed this dispatch (open, or another probe is in flight) *)
  let breaker_admit key now =
    conf.breaker = 0
    ||
    let b = breaker_for key in
    match b.br with
    | Br_closed -> true
    | Br_probing -> false
    | Br_open opened_at ->
        if now >= opened_at +. breaker_cooldown then begin
          b.br <- Br_probing;
          true
        end
        else false
  in
  let breaker_ok key =
    if conf.breaker > 0 then begin
      let b = breaker_for key in
      b.consecutive <- 0;
      b.br <- Br_closed
    end
  in
  let breaker_fail key now =
    if conf.breaker > 0 then begin
      let b = breaker_for key in
      b.consecutive <- b.consecutive + 1;
      match b.br with
      | Br_probing ->
          b.br <- Br_open now;
          incr breaker_opens
      | Br_closed when b.consecutive >= conf.breaker ->
          b.br <- Br_open now;
          incr breaker_opens
      | Br_closed | Br_open _ -> ()
    end
  in
  let record r = reports := r :: !reports in
  let never_ran spec attempts launches outcome now =
    {
      spec;
      outcome;
      attempts;
      launches;
      start = -1.0;
      finish = now;
      latency = now -. spec.at;
      compile_ticks = 0.0;
      exec_ticks = 0.0;
      cache = C_none;
      checksum = 0.0;
    }
  in
  (* Start a request on a free server; false when it terminated without
     consuming one (compile failure, or the breaker shed it). *)
  let start now (p : pending) =
    let spec = p.spec in
    let kernel, bindings, out = Request.instantiate spec in
    let knobs = { conf.knobs with Offload.guardize = spec.guardize } in
    let key = Offload.cache_key ~knobs kernel in
    if not (breaker_admit key now) then begin
      record (never_ran spec p.attempts p.launches Degraded now);
      false
    end
    else
      let status, result =
        Cache.find_or_compile cache ~key ~compile:(fun () ->
            Offload.compile_with ~knobs kernel)
      in
      match result with
      | Error _ ->
          record (never_ran spec p.attempts p.launches Failed now);
          false
      | Ok compiled ->
          let r_cache, r_compile =
            match status with
            | `Miss ->
                let c = compile_cost kernel in
                Hashtbl.replace compiling key (now +. c);
                (C_miss, c)
            | `Hit | `Joined -> (
                (* joined at the host level can still be a plain hit in
                   virtual time (the compile completed ticks ago) *)
                match Hashtbl.find_opt compiling key with
                | Some done_at when done_at > now -> (C_join, done_at -. now)
                | _ -> (C_hit, 0.0))
          in
          let clauses =
            Clause.(
              none
              |> num_teams spec.teams
              |> num_threads spec.threads
              |> simdlen spec.simdlen)
          in
          (* A device failure is data, not an exception: launches with an
             armed fault plan report failed blocks, and an escaped
             deadlock (divergence with capture disarmed) must not crash
             the service either. *)
          let launch_result =
            match
              Offload.run ~cfg:conf.cfg ?pool ~clauses ~bindings compiled
            with
            | report -> `Report report
            | exception Gpusim.Engine.Deadlock _ -> `Hung
          in
          incr launches;
          let r_exec, r_failed =
            match launch_result with
            | `Report report ->
                blocks := !blocks + report.Gpusim.Device.grid;
                sim_cycles := !sim_cycles +. report.Gpusim.Device.time_cycles;
                let c = report.Gpusim.Device.counters in
                global_loads := !global_loads + c.Gpusim.Counters.global_loads;
                global_stores :=
                  !global_stores + c.Gpusim.Counters.global_stores;
                atomics := !atomics + c.Gpusim.Counters.atomics;
                fault_stats :=
                  Gpusim.Fault.add_stats !fault_stats
                    report.Gpusim.Device.faults;
                ( report.Gpusim.Device.time_cycles,
                  report.Gpusim.Device.failures <> [] )
            | `Hung -> (0.0, true)
          in
          if r_failed then incr device_failures;
          free := !free - 1;
          inflight_max := max !inflight_max (conf.servers - !free);
          Heap.push heap
            (now +. r_compile +. r_exec)
            0
            (Finish
               {
                 pending = { p with launches = p.launches + 1 };
                 started = now;
                 r_compile;
                 r_exec;
                 r_cache;
                 r_checksum = Request.checksum out;
                 r_key = key;
                 r_failed;
               });
          true
  in
  (* Highest priority first, then earliest arrival, then lowest id. *)
  let pop_queue () =
    match !queue with
    | [] -> None
    | first :: rest ->
        let best =
          List.fold_left
            (fun best p ->
              let b = best.spec and s = p.spec in
              if
                s.Request.priority > b.Request.priority
                || (s.Request.priority = b.Request.priority
                   && (s.Request.at < b.Request.at
                      || (s.Request.at = b.Request.at && s.Request.id < b.Request.id)))
              then p
              else best)
            first rest
        in
        queue := List.filter (fun p -> p != best) !queue;
        Some best
  in
  let rec dispatch now =
    if !free > 0 then
      match pop_queue () with
      | None -> ()
      | Some p ->
          (match p.spec.Request.deadline with
          | Some d when now >= d ->
              (* expired while queued: never launch *)
              record (never_ran p.spec p.attempts p.launches Timed_out now)
          | _ -> ignore (start now p : bool));
          dispatch now
  in
  let arrive now (p : pending) =
    if !shedding && p.spec.Request.priority <= 0 then
      (* SLO admission: the windowed p99 is over target, so the lowest
         priority class is turned away explicitly — counted, terminal,
         never a silent drop *)
      record (never_ran p.spec p.attempts p.launches Shed_slo now)
    else if !free > 0 && !queue = [] then
      (* a compile failure or breaker shed records its outcome and
         leaves the server free *)
      ignore (start now p : bool)
    else if List.length !queue < conf.queue_bound then begin
      queue := p :: !queue;
      queue_max := max !queue_max (List.length !queue)
    end
    else if p.attempts <= conf.max_retries then begin
      (* transient admission failure: retry with exponential backoff *)
      incr retries;
      let wait = conf.backoff *. (2.0 ** float_of_int (p.attempts - 1)) in
      Heap.push heap (now +. wait) 1 (Arrive { p with attempts = p.attempts + 1 })
    end
    else
      record
        (never_ran p.spec p.attempts p.launches
           (if conf.max_retries = 0 then Rejected else Shed)
           now)
  in
  (* A relaunch was admitted once already: it re-enters dispatch past
     the admission bound (and its backoff-retry policy) — recovery may
     queue behind other work but never loses the request. *)
  let relaunch now (p : pending) =
    match p.spec.Request.deadline with
    | Some d when now >= d ->
        record (never_ran p.spec p.attempts p.launches Timed_out now)
    | _ ->
        if !free > 0 && !queue = [] then ignore (start now p : bool)
        else begin
          queue := p :: !queue;
          queue_max := max !queue_max (List.length !queue)
        end
  in
  List.iter
    (fun (spec : Request.spec) ->
      Heap.push heap spec.Request.at 1 (Arrive { spec; attempts = 1; launches = 0 }))
    specs;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (now, ev) ->
        last_time := max !last_time now;
        advance_window now;
        (match ev with
        | Arrive p -> arrive now p
        | Relaunch p -> relaunch now p
        | Finish r ->
            free := !free + 1;
            let spec = r.pending.spec in
            let finished outcome =
              record
                {
                  spec;
                  outcome;
                  attempts = r.pending.attempts;
                  launches = r.pending.launches;
                  start = r.started;
                  finish = now;
                  latency = now -. spec.Request.at;
                  compile_ticks = r.r_compile;
                  exec_ticks = r.r_exec;
                  cache = r.r_cache;
                  checksum = r.r_checksum;
                }
            in
            let past_deadline =
              match spec.Request.deadline with
              | Some d when now > d -> true
              | _ -> false
            in
            if not r.r_failed then begin
              breaker_ok r.r_key;
              if r.pending.launches > 1 && not past_deadline then
                incr recovered;
              if not past_deadline then observe_completion (now -. spec.Request.at);
              finished (if past_deadline then Timed_out else Completed)
            end
            else begin
              breaker_fail r.r_key now;
              if past_deadline then
                (* the deadline says stop: no point relaunching *)
                finished Timed_out
              else if r.pending.launches <= conf.max_retries then begin
                (* relaunch with backoff; the cached compile artifact is
                   reused (launches are idempotent: a relaunch
                   re-instantiates its data from the request seed) *)
                incr relaunches;
                let wait =
                  conf.backoff
                  *. (2.0 ** float_of_int (r.pending.launches - 1))
                in
                Heap.push heap (now +. wait) 1 (Relaunch r.pending)
              end
              else finished Degraded
            end;
            dispatch now);
        loop ()
  in
  loop ();
  let reports =
    List.sort
      (fun (a : rq_report) (b : rq_report) ->
        compare a.spec.Request.id b.spec.Request.id)
      !reports
  in
  let count o = List.length (List.filter (fun r -> r.outcome = o) reports) in
  let latencies =
    reports
    |> List.filter (fun r -> r.outcome = Completed)
    |> List.map (fun r -> r.latency)
    |> Array.of_list
  in
  let mean, p50, p95, p99 = Metrics.percentiles latencies in
  (* cache counters come from the virtual statuses, not {!Cache.stats}:
     the event loop is single-threaded host-side, so the host cache
     never observes a join — the service-level picture is the requests
     that arrived inside another request's compile window (C_join).
     Evictions only happen in the host table, so those we take from it. *)
  let cstat s = List.length (List.filter (fun r -> r.cache = s) reports) in
  let metrics =
    {
      Metrics.requests = List.length specs;
      completed = count Completed;
      rejected = count Rejected;
      shed = count Shed;
      shed_slo = count Shed_slo;
      timed_out = count Timed_out;
      failed = count Failed;
      retries = !retries;
      queue_max = !queue_max;
      inflight_max = !inflight_max;
      cache_hits = cstat C_hit;
      cache_misses = cstat C_miss;
      cache_evictions = (Cache.stats cache).Cache.evictions;
      cache_joins = cstat C_join;
      latency_mean = mean;
      latency_p50 = p50;
      latency_p95 = p95;
      latency_p99 = p99;
      makespan = !last_time;
      sim_cycles = !sim_cycles;
      launches = !launches;
      blocks = !blocks;
      global_loads = !global_loads;
      global_stores = !global_stores;
      atomics = !atomics;
      device_failures = !device_failures;
      relaunches = !relaunches;
      recovered = !recovered;
      degraded = count Degraded;
      breaker_opens = !breaker_opens;
      slo_violations = !slo_violations;
      autoscale_grows = 0;
      autoscale_shrinks = 0;
      breaker_reopens = 0;
      faults_corrected = !fault_stats.Gpusim.Fault.corrected;
      faults_fatal = !fault_stats.Gpusim.Fault.fatal;
      faults_stalls = !fault_stats.Gpusim.Fault.stalls;
      faults_exhausts = !fault_stats.Gpusim.Fault.exhausts;
      faults_watchdogs = !fault_stats.Gpusim.Fault.watchdogs;
    }
  in
  (reports, metrics)

(* --- rendering --------------------------------------------------------- *)

let report_line (r : rq_report) =
  let spec = r.spec in
  Printf.sprintf
    "req %3d %-8s size=%-3d prio=%d tenant=%-6s %-9s attempts=%d launches=%d cache=%-4s arrive=%.1f start=%.1f finish=%.1f latency=%.1f compile=%.1f exec=%.1f checksum=%Lx"
    spec.Request.id spec.Request.kernel spec.Request.size spec.Request.priority
    spec.Request.tenant
    (outcome_to_string r.outcome)
    r.attempts r.launches
    (cache_status_to_string r.cache)
    spec.Request.at r.start r.finish r.latency r.compile_ticks r.exec_ticks
    (Int64.bits_of_float r.checksum)

let report_json (r : rq_report) =
  let spec = r.spec in
  Printf.sprintf
    "{\"id\": %d, \"kernel\": \"%s\", \"size\": %d, \"prio\": %d, \"tenant\": \"%s\", \"outcome\": \"%s\", \"attempts\": %d, \"launches\": %d, \"cache\": \"%s\", \"arrive\": %.3f, \"start\": %.3f, \"finish\": %.3f, \"latency\": %.3f, \"compile\": %.3f, \"exec\": %.3f, \"checksum\": \"%Lx\"}"
    spec.Request.id spec.Request.kernel spec.Request.size spec.Request.priority
    spec.Request.tenant
    (outcome_to_string r.outcome)
    r.attempts r.launches
    (cache_status_to_string r.cache)
    spec.Request.at r.start r.finish r.latency r.compile_ticks r.exec_ticks
    (Int64.bits_of_float r.checksum)

(* The full machine-readable snapshot.  Deliberately excludes the
   engine and the pool width: the simulator's bit-identity contract
   makes every field below independent of both, so snapshots from any
   OMPSIMD_EVAL / OMPSIMD_DOMAINS combination must diff clean — the
   serve smoke test checks exactly that. *)
let snapshot_json conf reports metrics =
  let b = Buffer.create 4096 in
  Printf.ksprintf (Buffer.add_string b)
    "{\n\"config\": {\"device\": \"%s\", \"queue_bound\": %d, \"servers\": %d, \"cache_capacity\": %d, \"max_retries\": %d, \"backoff\": %.3f, \"breaker\": %d, \"slo\": %s, \"window\": %.3f},\n"
    conf.cfg.Gpusim.Config.name conf.queue_bound conf.servers
    conf.cache_capacity conf.max_retries conf.backoff conf.breaker
    (match conf.slo with
    | None -> "null"
    | Some s -> Printf.sprintf "%.3f" s)
    conf.window;
  Buffer.add_string b "\"requests\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (report_json r))
    reports;
  Buffer.add_string b "\n],\n\"metrics\": ";
  Buffer.add_string b (Metrics.to_json metrics);
  Buffer.add_string b "\n}\n";
  Buffer.contents b
