(** Streaming telemetry: windowed fleet metrics sampled in virtual time.

    The fleet feeds observations into per-shard ring-buffered window
    accumulators; {!advance} closes every window the event clock has
    crossed and hands it to the caller — the autoscaler and the
    SLO-aware admission gate evaluate on exactly these boundaries.

    With [emit] on, each closed window renders as deterministic JSONL:
    one line per shard with activity, ordered by the shard's member
    label (device name + index within its device group — never a shard
    id, which is what keeps the stream invariant under device
    shuffles), plus one fleet/control line appended by the caller via
    {!emit_control} once its window decisions are made.  Nothing reads
    the host clock: the stream is byte-identical across [OMPSIMD_EVAL],
    [OMPSIMD_DOMAINS] and shuffles of the device multiset, like the
    snapshot JSON. *)

type config = {
  window : float;  (** virtual ticks per window *)
  ring : int;  (** latency samples retained per shard per window *)
  emit : bool;  (** collect the JSONL stream (observation is always on) *)
}

type sample = {
  sq_depth : int;  (** queued entries at the boundary *)
  sq_conc : int;  (** concurrency target (autoscaler-adjusted) *)
  sq_busy : int;  (** servers occupied at the boundary *)
  sq_breakers_open : int;  (** breakers not closed (open or probing) *)
}
(** Live shard state, sampled by the fleet at each window close. *)

type shard_window = {
  w_shard : int;
  w_label : string;
  w_completed : int;
  w_shed : int;
  w_shed_slo : int;
  w_timed_out : int;
  w_failed : int;
  w_degraded : int;
  w_launches : int;
  w_dev_failures : int;
  w_relaunches : int;
  w_steals : int;
  w_lookups : int;
  w_hits : int;
  w_queue_peak : int;
  w_violations : int;  (** completions over the SLO inside the window *)
  w_samples : int;
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;
  w_sample : sample;
}

type window = {
  index : int;
  t0 : float;
  t1 : float;
  per_shard : shard_window array;  (** in shard-id order *)
  f_samples : int;
  f_p99 : float;  (** fleet-wide, over every shard's retained samples *)
  f_active : bool;  (** at least one shard line had activity *)
}

type t

val create : config -> labels:string array -> base_conc:int -> t
(** One accumulator per shard; [labels.(sid)] is the shard's member
    label and fixes the emission order. [base_conc] is the unscaled
    per-shard concurrency (a shard whose target differs from it counts
    as active even when idle).
    @raise Invalid_argument on a non-positive window or ring. *)

val observe_terminal :
  t -> shard:int -> Scheduler.outcome -> latency:float -> slo:float option -> unit
(** A request reached its terminal outcome on [shard]; completions feed
    the latency ring and, when over [slo], the violation counter. *)

val observe_launch : t -> shard:int -> failed:bool -> unit
val observe_relaunch : t -> shard:int -> unit
val observe_steal : t -> shard:int -> unit
val observe_cache : t -> shard:int -> hit:bool -> unit

val observe_queue_depth : t -> shard:int -> int -> unit
(** Track the deepest queue seen inside the current window. *)

val advance :
  t -> float -> sample:(int -> sample) -> on_close:(window -> unit) -> unit
(** Close every window whose end is <= the event clock, invoking
    [on_close] per window in order; [sample] reads the live state of a
    shard at the boundary. Call before processing each event. *)

val finish :
  t -> sample:(int -> sample) -> on_close:(window -> unit) -> unit
(** Close the final partial window, if it saw any activity. *)

val emit_control :
  t ->
  window ->
  shedding:bool ->
  grows:int ->
  shrinks:int ->
  reopens:int ->
  conc:int ->
  pool_left:int ->
  queued:int ->
  tenants:(string * int) list ->
  unit
(** Append the window's fleet/control line (SLO admission state and
    autoscaler actions); [tenants] is the fleet-wide queued occupancy,
    already sorted by name. *)

val jsonl : t -> string
(** The accumulated JSONL stream; empty when [emit] is off. *)
