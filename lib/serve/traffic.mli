(** Deterministic synthetic traffic for the fleet soak harness.

    A {!profile} describes an arrival process in virtual time:
    heavy-tailed (bounded-Pareto) inter-arrival gaps, periodic bursts,
    a diurnal sine wave modulating the rate, and flash crowds —
    near-simultaneous requests for the {e same} content, the case
    launch batching and the compile cache exist for.  Tenants are
    Zipf-hot so weighted-fair admission has heavy clients to contain.

    {!generate} is a pure function of the profile: same profile, same
    trace, byte for byte — it never reads the environment or the host
    clock.  That makes 100k-request soaks replayable: the fleet
    snapshot of a seeded soak is bit-identical on every machine. *)

type profile = {
  n : int;  (** requests to generate *)
  seed : int;
  tenants : string list;
      (** Zipf-hot tenant pool, heaviest first; [[]] bills all to ["-"] *)
  mean_gap : float;  (** mean inter-arrival gap, virtual ticks *)
  tail_alpha : float;  (** bounded-Pareto shape; smaller = heavier tail *)
  burst_every : int;  (** every k-th request opens a burst; 0 = off *)
  burst_size : int;  (** extra requests at ~zero gap per burst *)
  diurnal_period : float;  (** sine period over arrival time; 0 = off *)
  diurnal_amp : float;  (** 0..1, rate swing around the mean *)
  flash_every : int;  (** every k-th request opens a flash crowd; 0 = off *)
  flash_size : int;  (** same-content requests an arrival tick apart *)
  deadline_frac : float;  (** fraction of requests carrying a deadline *)
  sizes : int list;  (** problem sizes to draw from *)
}

val preset : string -> n:int -> seed:int -> profile
(** [steady], [bursty], [diurnal], [flash] or [mixed] (everything at
    once, plus occasional deadlines).  @raise Failure on an unknown
    name. *)

val preset_names : string list

val generate : profile -> Request.spec list
(** The trace: [profile.n] specs with ids [0 .. n-1] in arrival order.
    @raise Invalid_argument on a negative [n] or non-positive
    [mean_gap]. *)
