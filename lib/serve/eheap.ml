(* The discrete-event queue shared by the single-device scheduler and
   the fleet: a binary min-heap on (time, rank, seq).  Completions
   (rank 0) sort before arrivals (rank 1) at the same tick — a freed
   server picks up the simultaneous arrival instead of bouncing it to
   the queue — and the insertion sequence number makes every comparison
   strict, so replay order never depends on heap internals. *)

type 'a t = {
  mutable a : (float * int * int * 'a) array;
  mutable n : int;
  mutable seq : int;
}

let create () = { a = [||]; n = 0; seq = 0 }

let less (t1, r1, s1, _) (t2, r2, s2, _) =
  t1 < t2 || (t1 = t2 && (r1 < r2 || (r1 = r2 && s1 < s2)))

let push h time rank v =
  h.seq <- h.seq + 1;
  let item = (time, rank, h.seq, v) in
  if h.n = Array.length h.a then begin
    let cap = max 16 (2 * h.n) in
    let a = Array.make cap item in
    Array.blit h.a 0 a 0 h.n;
    h.a <- a
  end;
  h.a.(h.n) <- item;
  h.n <- h.n + 1;
  let rec sift_up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less h.a.(i) h.a.(p) then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(i);
        h.a.(i) <- tmp;
        sift_up p
      end
    end
  in
  sift_up (h.n - 1)

let pop h =
  if h.n = 0 then None
  else begin
    let (time, _, _, v) = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.n && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    Some (time, v)
  end
