(* Streaming telemetry for the serve fleet: windowed metrics sampled
   in virtual time.

   The fleet feeds per-shard observations (terminal outcomes, launch
   results, cache lookups, queue depths) into ring-buffered window
   accumulators; whenever the event clock crosses a window boundary the
   collector closes the elapsed windows, computes the windowed latency
   percentiles, and hands each closed window to the caller — the
   autoscaler and the SLO admission gate both evaluate on exactly these
   boundaries, so every control decision is a pure function of virtual
   time and the trace.

   When emission is on, each closed window renders as JSONL: one line
   per shard with activity, ordered by the shard's *member label*
   (device name + index within its device group), never by shard id —
   plus one fleet/control line appended by the caller once its window
   decisions are made.  Labelling by group member is what extends the
   fleet's device-shuffle invariance to the telemetry stream: shuffling
   the device multiset over shard ids renames no label and moves no
   byte.  Nothing here reads the host clock, so the stream is also
   byte-identical across engines and pool widths, like the snapshot
   JSON. *)

module Stats = Ompsimd_util.Stats

type config = {
  window : float;  (* virtual ticks per window *)
  ring : int;  (* latency samples retained per shard per window *)
  emit : bool;  (* collect the JSONL stream (observation is always on) *)
}

(* Live state of a shard, sampled by the fleet at each window close. *)
type sample = {
  sq_depth : int;  (* queued entries at the boundary *)
  sq_conc : int;  (* current concurrency target (autoscaler-adjusted) *)
  sq_busy : int;  (* servers occupied at the boundary *)
  sq_breakers_open : int;  (* breakers not closed (open or probing) *)
}

type shard_window = {
  w_shard : int;
  w_label : string;
  w_completed : int;
  w_shed : int;  (* rejected + shed: admission losses *)
  w_shed_slo : int;
  w_timed_out : int;
  w_failed : int;
  w_degraded : int;
  w_launches : int;
  w_dev_failures : int;
  w_relaunches : int;
  w_steals : int;
  w_lookups : int;
  w_hits : int;
  w_queue_peak : int;  (* deepest queue observed inside the window *)
  w_violations : int;  (* completions over the SLO inside the window *)
  w_samples : int;  (* latency samples (completions) in the window *)
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;
  w_sample : sample;  (* live state at the boundary *)
}

type window = {
  index : int;
  t0 : float;
  t1 : float;
  per_shard : shard_window array;  (* in shard-id order *)
  f_samples : int;
  f_p99 : float;  (* over every shard's retained samples *)
  f_active : bool;  (* any shard line had activity *)
}

type acc = {
  label : string;
  mutable a_completed : int;
  mutable a_shed : int;
  mutable a_shed_slo : int;
  mutable a_timed_out : int;
  mutable a_failed : int;
  mutable a_degraded : int;
  mutable a_launches : int;
  mutable a_dev_failures : int;
  mutable a_relaunches : int;
  mutable a_steals : int;
  mutable a_lookups : int;
  mutable a_hits : int;
  mutable a_queue_peak : int;
  mutable a_violations : int;
  lat : float array;  (* ring buffer; wraps past [config.ring] *)
  mutable lat_n : int;  (* total pushed (not capped) *)
}

type t = {
  conf : config;
  base_conc : int;
  accs : acc array;
  order : int array;  (* shard ids in label order: the emission order *)
  mutable wstart : float;
  mutable windex : int;
  buf : Buffer.t;
}

let create conf ~labels ~base_conc =
  if conf.window <= 0.0 then invalid_arg "Telemetry.create: window must be > 0";
  if conf.ring < 1 then invalid_arg "Telemetry.create: ring must be >= 1";
  let accs =
    Array.map
      (fun label ->
        {
          label;
          a_completed = 0;
          a_shed = 0;
          a_shed_slo = 0;
          a_timed_out = 0;
          a_failed = 0;
          a_degraded = 0;
          a_launches = 0;
          a_dev_failures = 0;
          a_relaunches = 0;
          a_steals = 0;
          a_lookups = 0;
          a_hits = 0;
          a_queue_peak = 0;
          a_violations = 0;
          lat = Array.make conf.ring 0.0;
          lat_n = 0;
        })
      labels
  in
  let order = Array.init (Array.length labels) Fun.id in
  Array.sort
    (fun a b -> String.compare labels.(a) labels.(b))
    order;
  {
    conf;
    base_conc;
    accs;
    order;
    wstart = 0.0;
    windex = 0;
    buf = Buffer.create (if conf.emit then 4096 else 16);
  }

(* --- observations ------------------------------------------------------- *)

let observe_terminal t ~shard (outcome : Scheduler.outcome) ~latency ~slo =
  let a = t.accs.(shard) in
  match outcome with
  | Scheduler.Completed ->
      a.a_completed <- a.a_completed + 1;
      a.lat.(a.lat_n mod t.conf.ring) <- latency;
      a.lat_n <- a.lat_n + 1;
      (match slo with
      | Some s when latency > s -> a.a_violations <- a.a_violations + 1
      | _ -> ())
  | Scheduler.Rejected | Scheduler.Shed -> a.a_shed <- a.a_shed + 1
  | Scheduler.Shed_slo -> a.a_shed_slo <- a.a_shed_slo + 1
  | Scheduler.Timed_out -> a.a_timed_out <- a.a_timed_out + 1
  | Scheduler.Failed -> a.a_failed <- a.a_failed + 1
  | Scheduler.Degraded -> a.a_degraded <- a.a_degraded + 1

let observe_launch t ~shard ~failed =
  let a = t.accs.(shard) in
  a.a_launches <- a.a_launches + 1;
  if failed then a.a_dev_failures <- a.a_dev_failures + 1

let observe_relaunch t ~shard =
  let a = t.accs.(shard) in
  a.a_relaunches <- a.a_relaunches + 1

let observe_steal t ~shard =
  let a = t.accs.(shard) in
  a.a_steals <- a.a_steals + 1

let observe_cache t ~shard ~hit =
  let a = t.accs.(shard) in
  a.a_lookups <- a.a_lookups + 1;
  if hit then a.a_hits <- a.a_hits + 1

let observe_queue_depth t ~shard depth =
  let a = t.accs.(shard) in
  if depth > a.a_queue_peak then a.a_queue_peak <- depth

(* --- window close ------------------------------------------------------- *)

let retained (a : acc) = Array.sub a.lat 0 (min a.lat_n (Array.length a.lat))

let percentile_of samples p =
  if Array.length samples = 0 then 0.0 else Stats.percentile samples p

let active t (sw : shard_window) =
  sw.w_completed > 0 || sw.w_shed > 0 || sw.w_shed_slo > 0
  || sw.w_timed_out > 0 || sw.w_failed > 0 || sw.w_degraded > 0
  || sw.w_launches > 0 || sw.w_relaunches > 0 || sw.w_steals > 0
  || sw.w_lookups > 0 || sw.w_queue_peak > 0
  || sw.w_sample.sq_depth > 0 || sw.w_sample.sq_busy > 0
  || sw.w_sample.sq_breakers_open > 0
  || sw.w_sample.sq_conc <> t.base_conc

let jf x = Printf.sprintf "%.3f" x

let shard_line w (sw : shard_window) =
  Printf.sprintf
    "{\"w\": %d, \"t0\": %s, \"t1\": %s, \"shard\": \"%s\", \"completed\": %d, \"shed\": %d, \"shed_slo\": %d, \"timed_out\": %d, \"failed\": %d, \"degraded\": %d, \"launches\": %d, \"device_failures\": %d, \"relaunches\": %d, \"steals\": %d, \"cache\": {\"lookups\": %d, \"hits\": %d}, \"latency\": {\"p50\": %s, \"p95\": %s, \"p99\": %s, \"samples\": %d}, \"queue\": {\"depth\": %d, \"peak\": %d}, \"conc\": %d, \"busy\": %d, \"breakers_open\": %d, \"slo_violations\": %d}\n"
    w.index (jf w.t0) (jf w.t1) sw.w_label sw.w_completed sw.w_shed
    sw.w_shed_slo sw.w_timed_out sw.w_failed sw.w_degraded sw.w_launches
    sw.w_dev_failures sw.w_relaunches sw.w_steals sw.w_lookups sw.w_hits
    (jf sw.w_p50) (jf sw.w_p95) (jf sw.w_p99) sw.w_samples
    sw.w_sample.sq_depth sw.w_queue_peak sw.w_sample.sq_conc
    sw.w_sample.sq_busy sw.w_sample.sq_breakers_open sw.w_violations

let close t ~sample =
  let t0 = t.wstart and t1 = t.wstart +. t.conf.window in
  let per_shard =
    Array.mapi
      (fun i (a : acc) ->
        let s = sample i in
        let samples = retained a in
        {
          w_shard = i;
          w_label = a.label;
          w_completed = a.a_completed;
          w_shed = a.a_shed;
          w_shed_slo = a.a_shed_slo;
          w_timed_out = a.a_timed_out;
          w_failed = a.a_failed;
          w_degraded = a.a_degraded;
          w_launches = a.a_launches;
          w_dev_failures = a.a_dev_failures;
          w_relaunches = a.a_relaunches;
          w_steals = a.a_steals;
          w_lookups = a.a_lookups;
          w_hits = a.a_hits;
          w_queue_peak = a.a_queue_peak;
          w_violations = a.a_violations;
          w_samples = Array.length samples;
          w_p50 = percentile_of samples 50.0;
          w_p95 = percentile_of samples 95.0;
          w_p99 = percentile_of samples 99.0;
          w_sample = s;
        })
      t.accs
  in
  let all = Array.concat (Array.to_list (Array.map retained t.accs)) in
  let f_active = Array.exists (active t) per_shard in
  let w =
    {
      index = t.windex;
      t0;
      t1;
      per_shard;
      f_samples = Array.length all;
      f_p99 = percentile_of all 99.0;
      f_active;
    }
  in
  (* reset the accumulators for the next window *)
  Array.iter
    (fun (a : acc) ->
      a.a_completed <- 0;
      a.a_shed <- 0;
      a.a_shed_slo <- 0;
      a.a_timed_out <- 0;
      a.a_failed <- 0;
      a.a_degraded <- 0;
      a.a_launches <- 0;
      a.a_dev_failures <- 0;
      a.a_relaunches <- 0;
      a.a_steals <- 0;
      a.a_lookups <- 0;
      a.a_hits <- 0;
      a.a_queue_peak <- 0;
      a.a_violations <- 0;
      a.lat_n <- 0)
    t.accs;
  t.wstart <- t1;
  t.windex <- t.windex + 1;
  if t.conf.emit && f_active then
    Array.iter
      (fun sid ->
        let sw = per_shard.(sid) in
        if active t sw then Buffer.add_string t.buf (shard_line w sw))
      t.order;
  w

let advance t now ~sample ~on_close =
  while now >= t.wstart +. t.conf.window do
    on_close (close t ~sample)
  done

(* Close the final partial window (if anything happened in it) once the
   event heap drains; its [t1] stays on the window grid so the stream
   is a pure function of the trace, not of when it ended. *)
let finish t ~sample ~on_close =
  let dirty =
    Array.exists
      (fun (a : acc) ->
        a.a_completed > 0 || a.a_shed > 0 || a.a_shed_slo > 0
        || a.a_timed_out > 0 || a.a_failed > 0 || a.a_degraded > 0
        || a.a_launches > 0 || a.a_relaunches > 0 || a.a_steals > 0
        || a.a_lookups > 0 || a.a_queue_peak > 0 || a.lat_n > 0)
      t.accs
  in
  if dirty then on_close (close t ~sample)

(* The fleet/control line: appended by the caller after its
   window-boundary decisions (shedding flag, autoscale actions), so
   the stream records not just what the fleet saw but what the control
   plane did about it. *)
let emit_control t (w : window) ~shedding ~grows ~shrinks ~reopens ~conc
    ~pool_left ~queued ~tenants =
  if t.conf.emit && (w.f_active || grows + shrinks + reopens > 0 || shedding)
  then begin
    let b = Buffer.create 256 in
    Printf.ksprintf (Buffer.add_string b)
      "{\"w\": %d, \"fleet\": {\"p99\": %s, \"samples\": %d, \"queued\": %d, \"conc\": %d, \"pool_left\": %d, \"shedding\": %b, \"grows\": %d, \"shrinks\": %d, \"reopens\": %d, \"tenants\": {"
      w.index (jf w.f_p99) w.f_samples queued conc pool_left shedding grows
      shrinks reopens;
    List.iteri
      (fun i (name, occ) ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.ksprintf (Buffer.add_string b) "\"%s\": %d" name occ)
      tenants;
    Buffer.add_string b "}}}\n";
    Buffer.add_buffer t.buf b
  end

let jsonl t = Buffer.contents t.buf
