(* Launch requests and where they come from: a deterministic trace file
   (replayable, diffable) or a seeded synthetic open-loop generator.

   A request names a kernel *template* from the built-in catalog plus a
   problem size; instantiation builds the IR (so the content digest —
   the cache identity — is computed from what will actually compile)
   and allocates fresh device arrays seeded from the request's own
   seed.  Each request gets its own memory space: requests share no
   simulator state, which is what makes the replay order-independent of
   host parallelism. *)

module Ir = Ompir.Ir
module Prng = Ompsimd_util.Prng

type spec = {
  id : int;  (* position in the trace, 0-based *)
  at : float;  (* arrival, virtual ticks *)
  kernel : string;  (* catalog template name *)
  size : int;
  teams : int;
  threads : int;
  simdlen : int;
  guardize : bool;
  deadline : float option;  (* absolute ticks (trace syntax is relative) *)
  priority : int;  (* higher dispatches first *)
  seed : int;  (* binding-data seed *)
  tenant : string;  (* fair-admission identity; "-" = the default tenant *)
  device : string option;
      (* zoo-name placement pin for heterogeneous fleets; ignored when
         no shard carries that device *)
}

(* --- the kernel-template catalog -------------------------------------- *)

let width = 8

(* rowsum: the examples/rowsum.omp shape — simd reduction per row plus a
   sequential per-row store (exercises sharing and, under --guardize,
   the S7 transform). *)
let rowsum_kernel size =
  let open Ir in
  kernel ~name:"rowsum"
    ~params:
      [
        { pname = "a"; pty = P_farray };
        { pname = "sums"; pty = P_farray };
        { pname = "scale"; pty = P_farray };
        { pname = "rows"; pty = P_int };
        { pname = "w"; pty = P_int };
      ]
    [
      distribute_parallel_for ~var:"r" ~lo:(i 0) ~hi:(v "rows")
        [
          Store
            ( "scale",
              v "r",
              Float_lit 1.0
              + Unop (To_float, Binop (Mod, v "r", Int_lit 3)) );
          Decl { name = "total"; ty = Tfloat; init = f 0.0 };
          simd_sum ~acc:"total" ~var:"k" ~lo:(i 0) ~hi:(v "w")
            ~value:(Load ("a", (v "r" * v "w") + v "k"))
            [];
          Store ("sums", v "r", v "total" * Load ("scale", v "r"));
        ];
    ]
  |> fun k -> (k, size)

let saxpy_kernel size =
  let open Ir in
  kernel ~name:"saxpy"
    ~params:
      [
        { pname = "x"; pty = P_farray };
        { pname = "y"; pty = P_farray };
        { pname = "alpha"; pty = P_float };
        { pname = "n"; pty = P_int };
        { pname = "w"; pty = P_int };
      ]
    [
      distribute_parallel_for ~var:"i" ~lo:(i 0) ~hi:(v "n")
        [
          simd ~var:"j" ~lo:(i 0) ~hi:(v "w")
            [
              Store
                ( "y",
                  (v "i" * v "w") + v "j",
                  (v "alpha" * Load ("x", (v "i" * v "w") + v "j"))
                  + Load ("y", (v "i" * v "w") + v "j") );
            ];
        ];
    ]
  |> fun k -> (k, size)

(* stencil: gather-with-wraparound into a simd reduction — uncoalesced
   reads, so the memory system dominates. *)
let stencil_kernel size =
  let open Ir in
  kernel ~name:"stencil"
    ~params:
      [
        { pname = "src"; pty = P_farray };
        { pname = "out"; pty = P_farray };
        { pname = "n"; pty = P_int };
        { pname = "w"; pty = P_int };
      ]
    [
      distribute_parallel_for ~var:"i" ~lo:(i 0) ~hi:(v "n")
        [
          Decl { name = "acc"; ty = Tfloat; init = f 0.0 };
          simd_sum ~acc:"acc" ~var:"j" ~lo:(i 0) ~hi:(v "w")
            ~value:(Load ("src", Binop (Mod, v "i" + (v "j" * v "j"), v "n")))
            [];
          Store ("out", v "i", v "acc" / Unop (To_float, v "w"));
        ];
    ]
  |> fun k -> (k, size)

(* hist: atomic scatter into a small bin array — the contention path. *)
let hist_kernel size =
  let open Ir in
  kernel ~name:"hist"
    ~params:
      [
        { pname = "src"; pty = P_farray };
        { pname = "bins"; pty = P_farray };
        { pname = "n"; pty = P_int };
      ]
    [
      distribute_parallel_for ~var:"i" ~lo:(i 0) ~hi:(v "n")
        [ Atomic_add ("bins", Binop (Mod, v "i", Int_lit 64), Load ("src", v "i")) ];
    ]
  |> fun k -> (k, size)

(* chain: a size-dependent unrolled dependency chain — kernels of
   different sizes are structurally different (distinct digests), and
   the fat body over a deliberately narrow grid (see [chain_trip] in
   {!instantiate}) makes compile cost visible next to a small launch:
   the deep-pipeline/little-data shape where a compile cache pays. *)
let chain_kernel size =
  let open Ir in
  let links = max 4 (min 1024 size) in
  let body =
    Decl { name = "t0"; ty = Tfloat; init = Load ("src", v "i") }
    :: List.concat
         (List.init links (fun l ->
              [
                Decl
                  {
                    name = Printf.sprintf "t%d" (succ l);
                    ty = Tfloat;
                    init =
                      Unop
                        ( Abs,
                          (Var (Printf.sprintf "t%d" l) * f 0.5)
                          + Load ("src", Binop (Mod, v "i" + i (succ l), v "n")) );
                  };
              ]))
    @ [ Store ("out", v "i", Var (Printf.sprintf "t%d" links)) ]
  in
  kernel ~name:"chain"
    ~params:
      [
        { pname = "src"; pty = P_farray };
        { pname = "out"; pty = P_farray };
        { pname = "n"; pty = P_int };
      ]
    [ distribute_parallel_for ~var:"i" ~lo:(i 0) ~hi:(v "n") body ]
  |> fun k -> (k, size)

let catalog_names = [ "rowsum"; "saxpy"; "stencil"; "hist"; "chain" ]

let kernel_of_spec spec =
  let build =
    match spec.kernel with
    | "rowsum" -> rowsum_kernel
    | "saxpy" -> saxpy_kernel
    | "stencil" -> stencil_kernel
    | "hist" -> hist_kernel
    | "chain" -> chain_kernel
    | other ->
        failwith
          (Printf.sprintf "serve: unknown kernel template %S (known: %s)" other
             (String.concat ", " catalog_names))
  in
  fst (build spec.size)

(* Bindings: fresh space per request, data filled from the request seed
   (mixed with the template name so equal seeds on different templates
   still decorrelate). *)
let instantiate spec =
  let module Memory = Gpusim.Memory in
  let kernel = kernel_of_spec spec in
  let space = Memory.space () in
  let g =
    Prng.create ~seed:(spec.seed + (1021 * String.length spec.kernel)
                       + Char.code spec.kernel.[0])
  in
  let farr len =
    Memory.of_float_array space
      (Array.init len (fun _ -> Prng.float g 2.0 -. 1.0))
  in
  let n = max 1 spec.size in
  let open Ompir.Eval in
  match spec.kernel with
  | "rowsum" ->
      let sums = Memory.falloc space n in
      ( kernel,
        [
          ("a", B_farr (farr (n * width)));
          ("sums", B_farr sums);
          ("scale", B_farr (Memory.falloc space n));
          ("rows", B_int n);
          ("w", B_int width);
        ],
        sums )
  | "saxpy" ->
      let y = farr (n * width) in
      ( kernel,
        [
          ("x", B_farr (farr (n * width)));
          ("y", B_farr y);
          ("alpha", B_float (Prng.float g 2.0));
          ("n", B_int n);
          ("w", B_int width);
        ],
        y )
  | "stencil" ->
      let out = Memory.falloc space n in
      ( kernel,
        [
          ("src", B_farr (farr n));
          ("out", B_farr out);
          ("n", B_int n);
          ("w", B_int width);
        ],
        out )
  | "hist" ->
      let bins = Memory.falloc space 64 in
      ( kernel,
        [ ("src", B_farr (farr n)); ("bins", B_farr bins); ("n", B_int n) ],
        bins )
  | "chain" ->
      (* narrow grid: size fattens the body, not the data — the launch
         touches at most 16 elements however deep the chain gets *)
      let trip = min 16 n in
      let out = Memory.falloc space trip in
      ( kernel,
        [ ("src", B_farr (farr trip)); ("out", B_farr out); ("n", B_int trip) ],
        out )
  | _ -> assert false (* kernel_of_spec already rejected it *)

let checksum arr =
  let module Memory = Gpusim.Memory in
  let acc = ref 0.0 in
  for idx = 0 to Memory.flength arr - 1 do
    acc := !acc +. Memory.host_get arr idx
  done;
  !acc

(* --- trace files ------------------------------------------------------- *)

(* One request per line, [#] comments, whitespace-separated key=value
   tokens.  [kernel=] is required; everything else defaults.  [at] and
   [deadline] are in virtual ticks; [deadline] is relative to [at].

     kernel=rowsum size=64 at=0 teams=2 threads=64 simdlen=8 \
       deadline=500000 prio=1 seed=3 guardize=1 tenant=alice          *)

let default_spec =
  {
    id = 0;
    at = 0.0;
    kernel = "";
    size = 32;
    teams = 2;
    threads = 64;
    simdlen = 8;
    guardize = false;
    deadline = None;
    priority = 0;
    seed = 1;
    tenant = "-";
    device = None;
  }

let spec_of_tokens ~id ~line_no tokens =
  let fail fmt =
    Printf.ksprintf
      (fun m -> failwith (Printf.sprintf "trace line %d: %s" line_no m))
      fmt
  in
  let parse_kv spec token =
    match String.index_opt token '=' with
    | None -> fail "expected key=value, got %S" token
    | Some eq -> (
        let key = String.sub token 0 eq in
        let value = String.sub token (eq + 1) (String.length token - eq - 1) in
        let int () =
          match int_of_string_opt value with
          | Some v -> v
          | None -> fail "%s wants an integer, got %S" key value
        in
        let ticks () =
          match float_of_string_opt value with
          | Some v when v >= 0.0 -> v
          | _ -> fail "%s wants non-negative ticks, got %S" key value
        in
        match key with
        | "kernel" -> { spec with kernel = value }
        | "size" -> { spec with size = int () }
        | "at" -> { spec with at = ticks () }
        | "teams" -> { spec with teams = int () }
        | "threads" -> { spec with threads = int () }
        | "simdlen" -> { spec with simdlen = int () }
        | "deadline" -> { spec with deadline = Some (ticks ()) }
        | "prio" -> { spec with priority = int () }
        | "seed" -> { spec with seed = int () }
        | "guardize" -> { spec with guardize = int () <> 0 }
        | "tenant" ->
            if value = "" then fail "tenant wants a non-empty name"
            else { spec with tenant = value }
        | "device" ->
            if value = "" then fail "device wants a zoo name"
            else { spec with device = Some value }
        | _ -> fail "unknown key %S" key)
  in
  let spec = List.fold_left parse_kv { default_spec with id } tokens in
  if spec.kernel = "" then fail "missing kernel=";
  if not (List.mem spec.kernel catalog_names) then
    fail "unknown kernel template %S (known: %s)" spec.kernel
      (String.concat ", " catalog_names);
  if spec.size < 1 then fail "size must be >= 1";
  (* deadline was parsed relative to arrival *)
  { spec with deadline = Option.map (fun d -> spec.at +. d) spec.deadline }

let parse_trace text =
  let specs = ref [] in
  let id = ref 0 in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some h -> String.sub line 0 h
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      with
      | [] -> ()
      | tokens ->
          specs := spec_of_tokens ~id:!id ~line_no:(i + 1) tokens :: !specs;
          incr id)
    (String.split_on_char '\n' text);
  List.rev !specs

let load_trace path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_trace text

(* --- synthetic open-loop generator ------------------------------------ *)

(* Arrivals are open-loop (independent of service progress) with
   uniform inter-arrival gaps of mean [gap]; templates are drawn
   Zipf-skewed so a warm cache sees realistic repeat traffic; sizes come
   from a small set so repeats really do collide on the same digest. *)
let synthetic ~n ~seed ?(gap = 2000.0) () =
  if n < 0 then invalid_arg "Request.synthetic: negative n";
  let g = Prng.create ~seed in
  let templates = Array.of_list catalog_names in
  let sizes = [| 16; 24; 32; 48 |] in
  let t = ref 0.0 in
  List.init n (fun id ->
      t := !t +. Prng.float g (2.0 *. gap);
      let kernel = templates.(Prng.zipf g ~n:(Array.length templates) ~s:1.1 - 1) in
      let size = sizes.(Prng.int g (Array.length sizes)) in
      let deadline =
        if Prng.int g 4 = 0 then Some (!t +. 2.0e6) else None
      in
      {
        default_spec with
        id;
        at = !t;
        kernel;
        size;
        priority = Prng.int g 3;
        seed = 1 + Prng.int g 5;
        deadline;
      })
