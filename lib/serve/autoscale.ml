(* The fleet autoscaler: a deterministic control loop over telemetry
   windows.

   Capacity never comes from mid-run allocation: the fleet pre-creates
   a pooled budget of [budget] executor tokens, and every scale-up
   moves one token from the pool onto a shard (every scale-down returns
   one).  The control law is a banded hysteresis with a per-shard
   cooldown:

     grow    when the shard's windowed p99 is over the SLO (or the
             window completed nothing while work is queued past the
             concurrency target — a stalled shard has no percentiles),
             the shard is under its extra-server cap, and the pool has
             a token;
     shrink  when the queue is empty and the windowed p99 is under
             [down] x SLO, returning the token;
     hold    otherwise — the dead band between [down] x SLO and the
             SLO is what keeps a square-wave load from oscillating the
             target, and the cooldown spaces actions so one burst
             triggers at most one step.

   Shards are evaluated in the caller's [order] — the fleet passes
   member-label order, never shard-id order, so pool-token contention
   resolves identically under device shuffles.  Everything is a pure
   function of the window stats, which are themselves pure functions
   of virtual time: the scaling schedule replays byte-identically. *)

module Env = Ompsimd_util.Env

type config = {
  enabled : bool;
  slo : float;  (* virtual ticks; the latency target it scales against *)
  budget : int;  (* pooled extra executor tokens, fleet-wide *)
  max_extra : int;  (* cap on pool tokens held by one shard *)
  down : float;  (* shrink band: p99 below [down * slo] releases a token *)
  cooldown : int;  (* windows a shard holds still after an action *)
}

let disabled =
  { enabled = false; slo = 0.0; budget = 0; max_extra = 0; down = 0.5; cooldown = 2 }

let config_of_env ~slo ~shards ~servers () =
  match slo with
  | None -> disabled
  | Some slo ->
      {
        enabled = Env.flag "OMPSIMD_SERVE_AUTOSCALE" ~default:true;
        slo;
        budget = Env.int "OMPSIMD_SERVE_BUDGET" ~default:(2 * shards);
        max_extra = 3 * servers;
        down = 0.5;
        cooldown = Env.int "OMPSIMD_SERVE_COOLDOWN" ~default:2;
      }

type verdict = Grow | Shrink | Hold

type stat = {
  p99 : float;  (* effective windowed p99 (carried forward when stale) *)
  queued : int;  (* queue depth at the window boundary *)
  conc : int;  (* current concurrency target *)
}

(* The pure control law, before budget/cap/cooldown bookkeeping. *)
let decide conf (s : stat) =
  if s.p99 > conf.slo || (s.p99 = 0.0 && s.queued > s.conc) then Grow
  else if s.queued = 0 && s.p99 < conf.down *. conf.slo then Shrink
  else Hold

type t = {
  conf : config;
  extra : int array;  (* pool tokens currently held per shard *)
  last : int array;  (* window index of the shard's last action *)
  mutable pool : int;
}

let create conf ~shards =
  if conf.budget < 0 then invalid_arg "Autoscale.create: negative budget";
  {
    conf;
    extra = Array.make shards 0;
    (* just far enough in the past that window 0 is already actionable;
       [-max_int] would overflow the [window - last] cooldown check *)
    last = Array.make shards (-conf.cooldown - 1);
    pool = conf.budget;
  }

let pool_left t = t.pool
let extra t sid = t.extra.(sid)

type action = { a_shard : int; a_verdict : verdict }

let step t ~window ~order ~stats =
  if not t.conf.enabled then []
  else begin
    let actions = ref [] in
    Array.iter
      (fun sid ->
        if window - t.last.(sid) >= t.conf.cooldown then
          match decide t.conf stats.(sid) with
          | Grow when t.pool > 0 && t.extra.(sid) < t.conf.max_extra ->
              t.pool <- t.pool - 1;
              t.extra.(sid) <- t.extra.(sid) + 1;
              t.last.(sid) <- window;
              actions := { a_shard = sid; a_verdict = Grow } :: !actions
          | Shrink when t.extra.(sid) > 0 ->
              t.pool <- t.pool + 1;
              t.extra.(sid) <- t.extra.(sid) - 1;
              t.last.(sid) <- window;
              actions := { a_shard = sid; a_verdict = Shrink } :: !actions
          | Grow | Shrink | Hold -> ())
      order;
    List.rev !actions
  end
