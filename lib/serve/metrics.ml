(* Service metrics snapshot.  Everything here is derived from virtual
   (simulated) time and deterministic counters — never the host clock —
   so a replay of the same trace under the same seed produces a
   bit-identical snapshot, pooled or sequential, either engine. *)

module Stats = Ompsimd_util.Stats

type t = {
  requests : int;  (* trace length *)
  completed : int;
  rejected : int;  (* admission failure, no retry policy *)
  shed : int;  (* dropped after exhausting retries *)
  timed_out : int;
  failed : int;  (* compile errors *)
  retries : int;  (* re-arrivals scheduled by the backoff policy *)
  queue_max : int;
  inflight_max : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_joins : int;
  latency_mean : float;
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  makespan : float;  (* virtual ticks, first arrival to last event *)
  sim_cycles : float;  (* total simulated device cycles across launches *)
  launches : int;
  blocks : int;  (* total blocks launched *)
  global_loads : int;
  global_stores : int;
  atomics : int;
  device_failures : int;  (* launches that came back with failed blocks *)
  relaunches : int;  (* recovery launches scheduled after device failures *)
  recovered : int;  (* requests completed after >= 1 device failure *)
  degraded : int;  (* outcome Degraded: retries exhausted or breaker open *)
  breaker_opens : int;  (* closed/half-open -> open transitions *)
  faults_corrected : int;  (* ECC-corrected flips across launches *)
  faults_fatal : int;  (* injected aborts + uncorrectable flips *)
  faults_stalls : int;  (* barrier-stall failures *)
  faults_exhausts : int;  (* sharing acquires forced onto the fallback *)
  faults_watchdogs : int;  (* blocks over the watchdog budget *)
}

let cache_hit_rate m =
  let total = m.cache_hits + m.cache_joins + m.cache_misses in
  if total = 0 then 0.0
  else float_of_int (m.cache_hits + m.cache_joins) /. float_of_int total

let percentiles latencies =
  match Array.length latencies with
  | 0 -> (0.0, 0.0, 0.0, 0.0)
  | _ ->
      ( Stats.mean latencies,
        Stats.percentile latencies 50.0,
        Stats.percentile latencies 95.0,
        Stats.percentile latencies 99.0 )

let throughput m =
  if m.makespan <= 0.0 then 0.0
  else float_of_int m.completed /. (m.makespan /. 1.0e6)

let to_text m =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "service metrics (virtual time)\n";
  p "  requests    %6d  (completed %d, rejected %d, shed %d, timed-out %d, failed %d)\n"
    m.requests m.completed m.rejected m.shed m.timed_out m.failed;
  p "  retries     %6d   queue max %d   in-flight max %d\n" m.retries
    m.queue_max m.inflight_max;
  p "  cache       hits %d  joins %d  misses %d  evictions %d  (hit rate %.1f%%)\n"
    m.cache_hits m.cache_joins m.cache_misses m.cache_evictions
    (100.0 *. cache_hit_rate m);
  p "  latency     mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f ticks\n"
    m.latency_mean m.latency_p50 m.latency_p95 m.latency_p99;
  p "  makespan    %.1f ticks   throughput %.2f req/Mtick\n" m.makespan
    (throughput m);
  p "  device      %d launches, %d blocks, %.0f cycles, %d loads, %d stores, %d atomics\n"
    m.launches m.blocks m.sim_cycles m.global_loads m.global_stores m.atomics;
  p "  recovery    device-failures %d  relaunches %d  recovered %d  degraded %d  breaker-opens %d\n"
    m.device_failures m.relaunches m.recovered m.degraded m.breaker_opens;
  p "  faults      corrected %d  fatal %d  stalls %d  exhausts %d  watchdogs %d\n"
    m.faults_corrected m.faults_fatal m.faults_stalls m.faults_exhausts
    m.faults_watchdogs;
  Buffer.contents b

(* Fixed three-decimal rendering: enough for tick quantities, and a
   stable text form — the smoke test diffs these files byte-for-byte. *)
let jf x = Printf.sprintf "%.3f" x

let to_json m =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{";
  p "\"requests\": %d, " m.requests;
  p "\"completed\": %d, " m.completed;
  p "\"rejected\": %d, " m.rejected;
  p "\"shed\": %d, " m.shed;
  p "\"timed_out\": %d, " m.timed_out;
  p "\"failed\": %d, " m.failed;
  p "\"retries\": %d, " m.retries;
  p "\"queue_max\": %d, " m.queue_max;
  p "\"inflight_max\": %d, " m.inflight_max;
  p "\"cache\": {\"hits\": %d, \"joins\": %d, \"misses\": %d, \"evictions\": %d, \"hit_rate\": %s}, "
    m.cache_hits m.cache_joins m.cache_misses m.cache_evictions
    (jf (cache_hit_rate m));
  p "\"latency\": {\"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}, "
    (jf m.latency_mean) (jf m.latency_p50) (jf m.latency_p95)
    (jf m.latency_p99);
  p "\"makespan\": %s, " (jf m.makespan);
  p "\"device\": {\"launches\": %d, \"blocks\": %d, \"sim_cycles\": %s, \"global_loads\": %d, \"global_stores\": %d, \"atomics\": %d}, "
    m.launches m.blocks (jf m.sim_cycles) m.global_loads m.global_stores
    m.atomics;
  p "\"recovery\": {\"device_failures\": %d, \"relaunches\": %d, \"recovered\": %d, \"degraded\": %d, \"breaker_opens\": %d}, "
    m.device_failures m.relaunches m.recovered m.degraded m.breaker_opens;
  p "\"faults\": {\"corrected\": %d, \"fatal\": %d, \"stalls\": %d, \"exhausts\": %d, \"watchdogs\": %d}"
    m.faults_corrected m.faults_fatal m.faults_stalls m.faults_exhausts
    m.faults_watchdogs;
  p "}";
  Buffer.contents b
