(* Service metrics snapshot.  Everything here is derived from virtual
   (simulated) time and deterministic counters — never the host clock —
   so a replay of the same trace under the same seed produces a
   bit-identical snapshot, pooled or sequential, either engine. *)

module Stats = Ompsimd_util.Stats

type t = {
  requests : int;  (* trace length *)
  completed : int;
  rejected : int;  (* admission failure, no retry policy *)
  shed : int;  (* dropped after exhausting retries *)
  shed_slo : int;  (* shed by SLO admission while the windowed p99 was over *)
  timed_out : int;
  failed : int;  (* compile errors *)
  retries : int;  (* re-arrivals scheduled by the backoff policy *)
  queue_max : int;
  inflight_max : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_joins : int;
  latency_mean : float;
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  makespan : float;  (* virtual ticks, first arrival to last event *)
  sim_cycles : float;  (* total simulated device cycles across launches *)
  launches : int;
  blocks : int;  (* total blocks launched *)
  global_loads : int;
  global_stores : int;
  atomics : int;
  device_failures : int;  (* launches that came back with failed blocks *)
  relaunches : int;  (* recovery launches scheduled after device failures *)
  recovered : int;  (* requests completed after >= 1 device failure *)
  degraded : int;  (* outcome Degraded: retries exhausted or breaker open *)
  breaker_opens : int;  (* closed/half-open -> open transitions *)
  slo_violations : int;  (* completions whose latency exceeded the SLO *)
  autoscale_grows : int;  (* pool tokens granted to shards *)
  autoscale_shrinks : int;  (* pool tokens returned by shards *)
  breaker_reopens : int;  (* open breakers fast-forwarded after a clean window *)
  faults_corrected : int;  (* ECC-corrected flips across launches *)
  faults_fatal : int;  (* injected aborts + uncorrectable flips *)
  faults_stalls : int;  (* barrier-stall failures *)
  faults_exhausts : int;  (* sharing acquires forced onto the fallback *)
  faults_watchdogs : int;  (* blocks over the watchdog budget *)
}

let cache_hit_rate m =
  let total = m.cache_hits + m.cache_joins + m.cache_misses in
  if total = 0 then 0.0
  else float_of_int (m.cache_hits + m.cache_joins) /. float_of_int total

let percentiles latencies =
  match Array.length latencies with
  | 0 -> (0.0, 0.0, 0.0, 0.0)
  | _ ->
      ( Stats.mean latencies,
        Stats.percentile latencies 50.0,
        Stats.percentile latencies 95.0,
        Stats.percentile latencies 99.0 )

let throughput m =
  if m.makespan <= 0.0 then 0.0
  else float_of_int m.completed /. (m.makespan /. 1.0e6)

let to_text m =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "service metrics (virtual time)\n";
  p "  requests    %6d  (completed %d, rejected %d, shed %d, shed-slo %d, timed-out %d, failed %d)\n"
    m.requests m.completed m.rejected m.shed m.shed_slo m.timed_out m.failed;
  p "  retries     %6d   queue max %d   in-flight max %d\n" m.retries
    m.queue_max m.inflight_max;
  p "  cache       hits %d  joins %d  misses %d  evictions %d  (hit rate %.1f%%)\n"
    m.cache_hits m.cache_joins m.cache_misses m.cache_evictions
    (100.0 *. cache_hit_rate m);
  p "  latency     mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f ticks\n"
    m.latency_mean m.latency_p50 m.latency_p95 m.latency_p99;
  p "  makespan    %.1f ticks   throughput %.2f req/Mtick\n" m.makespan
    (throughput m);
  p "  device      %d launches, %d blocks, %.0f cycles, %d loads, %d stores, %d atomics\n"
    m.launches m.blocks m.sim_cycles m.global_loads m.global_stores m.atomics;
  p "  recovery    device-failures %d  relaunches %d  recovered %d  degraded %d  breaker-opens %d\n"
    m.device_failures m.relaunches m.recovered m.degraded m.breaker_opens;
  p "  slo         violations %d  shed-slo %d   autoscale grows %d  shrinks %d  breaker-reopens %d\n"
    m.slo_violations m.shed_slo m.autoscale_grows m.autoscale_shrinks
    m.breaker_reopens;
  p "  faults      corrected %d  fatal %d  stalls %d  exhausts %d  watchdogs %d\n"
    m.faults_corrected m.faults_fatal m.faults_stalls m.faults_exhausts
    m.faults_watchdogs;
  Buffer.contents b

(* Fixed three-decimal rendering: enough for tick quantities, and a
   stable text form — the smoke test diffs these files byte-for-byte. *)
let jf x = Printf.sprintf "%.3f" x

let to_json m =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{";
  p "\"requests\": %d, " m.requests;
  p "\"completed\": %d, " m.completed;
  p "\"rejected\": %d, " m.rejected;
  p "\"shed\": %d, " m.shed;
  p "\"shed_slo\": %d, " m.shed_slo;
  p "\"timed_out\": %d, " m.timed_out;
  p "\"failed\": %d, " m.failed;
  p "\"retries\": %d, " m.retries;
  p "\"queue_max\": %d, " m.queue_max;
  p "\"inflight_max\": %d, " m.inflight_max;
  p "\"cache\": {\"hits\": %d, \"joins\": %d, \"misses\": %d, \"evictions\": %d, \"hit_rate\": %s}, "
    m.cache_hits m.cache_joins m.cache_misses m.cache_evictions
    (jf (cache_hit_rate m));
  p "\"latency\": {\"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}, "
    (jf m.latency_mean) (jf m.latency_p50) (jf m.latency_p95)
    (jf m.latency_p99);
  p "\"makespan\": %s, " (jf m.makespan);
  p "\"device\": {\"launches\": %d, \"blocks\": %d, \"sim_cycles\": %s, \"global_loads\": %d, \"global_stores\": %d, \"atomics\": %d}, "
    m.launches m.blocks (jf m.sim_cycles) m.global_loads m.global_stores
    m.atomics;
  p "\"recovery\": {\"device_failures\": %d, \"relaunches\": %d, \"recovered\": %d, \"degraded\": %d, \"breaker_opens\": %d}, "
    m.device_failures m.relaunches m.recovered m.degraded m.breaker_opens;
  p "\"slo\": {\"violations\": %d, \"shed\": %d}, " m.slo_violations m.shed_slo;
  p "\"autoscale\": {\"grows\": %d, \"shrinks\": %d, \"breaker_reopens\": %d}, "
    m.autoscale_grows m.autoscale_shrinks m.breaker_reopens;
  p "\"faults\": {\"corrected\": %d, \"fatal\": %d, \"stalls\": %d, \"exhausts\": %d, \"watchdogs\": %d}"
    m.faults_corrected m.faults_fatal m.faults_stalls m.faults_exhausts
    m.faults_watchdogs;
  p "}";
  Buffer.contents b

(* --- fleet breakdowns --------------------------------------------------
   Per-shard and per-tenant slices of the same snapshot, produced by
   {!Fleet.run}.  The scalar record above stays the fleet-wide
   aggregate; these are the isolation picture: which virtual device
   absorbed what, and which client paid for it. *)

type shard_stats = {
  shard : int;
  s_device : string;  (* the shard's device config name *)
  s_placed : int;  (* requests the ring routed here (first arrival) *)
  s_completed : int;
  s_shed : int;  (* rejected + shed + fair-admission evictions resolved here *)
  s_shed_slo : int;  (* SLO admission sheds attributed to this home shard *)
  s_timed_out : int;
  s_degraded : int;
  s_launches : int;  (* member launches executed on this shard *)
  s_batches : int;  (* merged-grid launches (batch size >= 2) *)
  s_batched_requests : int;  (* members that rode a merged grid *)
  s_steals : int;  (* requests this shard pulled from a neighbour's queue *)
  s_queue_max : int;
  s_breaker_opens : int;
  s_breakers_open : int;  (* breakers not closed (open/probing) at end of run *)
  s_retries : int;  (* backoff re-arrivals scheduled off this shard's queue *)
  s_relaunches : int;  (* recovery relaunches scheduled on this shard *)
  s_conc : int;  (* final concurrency target (servers + autoscaled extra) *)
}

type tenant_stats = {
  tenant : string;
  weight : int;
  t_requests : int;
  t_completed : int;
  t_shed : int;  (* rejected + shed: admission losses *)
  t_shed_slo : int;  (* shed by SLO admission *)
  t_timed_out : int;
  t_degraded : int;
  t_evicted : int;  (* queue slots reclaimed from this tenant by fair admission *)
  t_latency_mean : float;  (* over its completed requests *)
}

let shard_stats_to_json s =
  Printf.sprintf
    "{\"shard\": %d, \"device\": \"%s\", \"placed\": %d, \"completed\": %d, \"shed\": %d, \"shed_slo\": %d, \"timed_out\": %d, \"degraded\": %d, \"launches\": %d, \"batches\": %d, \"batched_requests\": %d, \"steals\": %d, \"queue_max\": %d, \"breaker_opens\": %d, \"breakers_open\": %d, \"retries\": %d, \"relaunches\": %d, \"conc\": %d}"
    s.shard s.s_device s.s_placed s.s_completed s.s_shed s.s_shed_slo
    s.s_timed_out s.s_degraded
    s.s_launches s.s_batches s.s_batched_requests s.s_steals s.s_queue_max
    s.s_breaker_opens s.s_breakers_open s.s_retries s.s_relaunches s.s_conc

let tenant_stats_to_json t =
  Printf.sprintf
    "{\"tenant\": \"%s\", \"weight\": %d, \"requests\": %d, \"completed\": %d, \"shed\": %d, \"shed_slo\": %d, \"timed_out\": %d, \"degraded\": %d, \"evicted\": %d, \"latency_mean\": %s}"
    t.tenant t.weight t.t_requests t.t_completed t.t_shed t.t_shed_slo
    t.t_timed_out t.t_degraded t.t_evicted (jf t.t_latency_mean)

let shard_stats_line s =
  Printf.sprintf
    "shard %2d [%s] placed=%d completed=%d shed=%d shed-slo=%d timed-out=%d degraded=%d launches=%d batches=%d batched=%d steals=%d queue-max=%d breaker-opens=%d breakers-open=%d retries=%d relaunches=%d conc=%d"
    s.shard s.s_device s.s_placed s.s_completed s.s_shed s.s_shed_slo
    s.s_timed_out s.s_degraded
    s.s_launches s.s_batches s.s_batched_requests s.s_steals s.s_queue_max
    s.s_breaker_opens s.s_breakers_open s.s_retries s.s_relaunches s.s_conc

let tenant_stats_line t =
  Printf.sprintf
    "tenant %-8s weight=%d requests=%d completed=%d shed=%d shed-slo=%d timed-out=%d degraded=%d evicted=%d latency-mean=%.1f"
    t.tenant t.weight t.t_requests t.t_completed t.t_shed t.t_shed_slo
    t.t_timed_out t.t_degraded t.t_evicted t.t_latency_mean
