(* The serve fleet: N virtual devices behind one admission plane.

   Each shard is a full copy of the single-device scheduler's machinery
   — its own bounded queue, its own executors, its own per-kernel
   circuit breakers — driven by one global discrete-event heap in
   virtual time.  Three mechanisms turn the copies into a fleet:

   * {b Placement} is a consistent-hash ring over the request's
     engine-free content identity ({!Ompir.Kdigest} of the instantiated
     template, plus the guardize flag and the resolved pass spec).
     Same content, same shard: compile artifacts and batch partners
     concentrate where their cache entry lives, and adding a shard
     moves only the keys that hash next to it.  The identity
     deliberately excludes the evaluation engine so a replay places
     identically under [OMPSIMD_EVAL=walk] and [=compile].

   * {b Work stealing}: a shard whose queue is empty but whose server
     just freed pulls the best request from the deepest neighbour
     queue (ties to the lowest shard id) — placement optimizes for
     locality, stealing keeps the fleet work-conserving when the hash
     is momentarily unlucky.  Stolen requests run solo (batching is a
     home-queue affair) and their recovery stays on the thief, whose
     breaker observed the launch.

   * {b Launch batching}: when a shard dispatches a request and
     [batch > 1], it drains up to [batch - 1] more queued requests
     with the same content identity and launch geometry into one
     merged grid occupying one server.  Requests share no simulator
     state (each instantiates its own memory space), so the merged
     grid's per-request sub-reports are computed exactly — counters,
     checksums and injected-fault sections attribute to the member
     they belong to, and splitting the merged report is lossless by
     construction.  The batch pays one compile charge and a merged
     execution window of max(member cycles) + a per-member merge
     overhead: the throughput win is that members ride side by side
     instead of serializing.

   Fault injection stays deterministic under all of this because every
   member launch pins its {!Gpusim.Fault} nonce to (request id,
   attempt): the faults a request draws are a pure function of the
   plan and the request, not of where the fleet placed it or what
   launched before it.  That is what makes the batching-equivalence
   and shard-invariance properties hold byte-exactly under chaos
   plans.

   Admission is per-tenant weighted-fair: when a shard's queue is
   full, the most over-share tenant — occupancy divided by weight —
   loses a slot, and a newcomer already over its own share is the one
   turned away.  A hot tenant therefore sheds first; light tenants
   keep their seats.  Evicted requests re-enter the normal
   retry-with-backoff path, so fairness never silently loses a
   request: the no-lost-request invariant holds fleet-wide.

   Repeated identical requests (same template, size, geometry, data
   seed) are idempotent — bindings are a pure function of the spec —
   so with faults disarmed the fleet memoizes launch results by
   content.  A million-request soak with a bounded spec space costs a
   few hundred real launches; the memo never changes a single report
   byte, only host time, and it disables itself while a fault plan is
   armed (relaunches must draw fresh faults). *)

module Offload = Openmp.Offload
module Clause = Openmp.Clause
module Env = Ompsimd_util.Env
module Counters = Gpusim.Counters

type config = {
  base : Scheduler.config;
      (* per-shard queue bound / servers / retries / backoff / breaker,
         plus the device, the fleet-wide compile-cache capacity and the
         compile knobs *)
  shards : int;
  batch : int;  (* max members per merged grid; 1 disables batching *)
  steal : bool;
  memo : bool;  (* content-memoize idempotent launches (disarmed runs only) *)
  tenants : (string * int) list;  (* fair-admission weights; absent = 1 *)
  devices : Gpusim.Config.t list;
      (* per-shard device configs, cycled across shard ids; [] means
         every shard runs the base device (the pre-zoo fleet) *)
  affinity : bool;  (* content->config affinity placement (hetero only) *)
  telemetry : bool;  (* collect the windowed JSONL telemetry stream *)
  shed : bool;  (* SLO-aware admission shedding (armed when base.slo is set) *)
  autoscale : Autoscale.config;  (* window-boundary concurrency control *)
  decay : int;
      (* affinity cost-table horizon in windows: observed minima older
         than this age back toward "unmeasured" so a nonstationary
         trace re-explores; 0 = remember forever (the pre-decay table) *)
}

let parse_tenants spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           match String.index_opt tok '=' with
           | None -> Some (tok, 1)
           | Some i -> (
               let name = String.sub tok 0 i in
               let v = String.sub tok (i + 1) (String.length tok - i - 1) in
               match int_of_string_opt v with
               | Some w when w >= 1 && name <> "" -> Some (name, w)
               | _ ->
                   invalid_arg
                     (Printf.sprintf
                        "OMPSIMD_SERVE_TENANTS: token %S is not name=weight"
                        tok)))

(* OMPSIMD_FLEET_DEVICES is a comma-separated list of zoo names (no
   key=value overrides — a comma already separates shards), resolved
   and validated up front so a misspelt device fails the replay before
   any request moves. *)
let parse_devices spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           match Gpusim.Zoo.resolve tok with
           | Ok cfg -> Some cfg
           | Error msg ->
               invalid_arg (Printf.sprintf "OMPSIMD_FLEET_DEVICES: %s" msg))

let config_of_env ~cfg () =
  let base = Scheduler.config_of_env ~cfg () in
  let shards = Env.int "OMPSIMD_SERVE_SHARDS" ~default:4 in
  {
    base;
    shards;
    batch = Env.int "OMPSIMD_SERVE_BATCH" ~default:8;
    steal = Env.flag "OMPSIMD_SERVE_STEAL" ~default:true;
    memo = Env.flag "OMPSIMD_SERVE_MEMO" ~default:true;
    tenants =
      (match Env.var "OMPSIMD_SERVE_TENANTS" with
      | None -> []
      | Some spec -> parse_tenants spec);
    devices =
      (match Env.var "OMPSIMD_FLEET_DEVICES" with
      | None -> []
      | Some spec -> parse_devices spec);
    affinity = Env.flag "OMPSIMD_FLEET_AFFINITY" ~default:true;
    (* the env knob carries the stream's destination path (the CLI
       writes it); its presence is what turns collection on *)
    telemetry = Env.var "OMPSIMD_SERVE_TELEMETRY" <> None;
    shed = Env.flag "OMPSIMD_SERVE_SHED" ~default:true;
    autoscale =
      Autoscale.config_of_env ~slo:base.Scheduler.slo ~shards
        ~servers:base.Scheduler.servers ();
    decay = Env.int "OMPSIMD_FLEET_DECAY" ~default:0;
  }

let weight_of conf tenant =
  match List.assoc_opt tenant conf.tenants with
  | Some w -> max 1 w
  | None -> 1

(* --- consistent-hash placement ----------------------------------------- *)

(* 64 virtual points per shard on an MD5 ring.  MD5 is stable across
   hosts and OCaml versions, so placement is part of the deterministic
   replay contract. *)
let ring_points = 64

let hash_pos s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

(* A ring over an arbitrary shard-id subset: the vnode labels depend
   only on the shard id, so the sub-ring of a device group is literally
   the full ring with the other shards' points removed — membership
   changes move only the keys whose successor point left. *)
let make_ring_of sids =
  let sids = Array.of_list sids in
  let a =
    Array.init (Array.length sids * ring_points) (fun i ->
        let s = sids.(i / ring_points) and v = i mod ring_points in
        (hash_pos (Printf.sprintf "ompserve-shard-%d-vnode-%d" s v), s))
  in
  Array.sort compare a;
  a

let make_ring shards = make_ring_of (List.init shards Fun.id)

let place ring key =
  let h = hash_pos key in
  let n = Array.length ring in
  (* successor point on the ring (clockwise), wrapping at the top *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let pos, _ = ring.(mid) in
    if pos < h then lo := mid + 1 else hi := mid
  done;
  let _, shard = ring.(if !lo = n then 0 else !lo) in
  shard

(* The engine-free content identity: placement, batching compatibility
   and the launch memo all key on it (the cache key proper adds the
   engine, which must never influence where a request lands). *)
let content_key ~knobs (spec : Request.spec) =
  let kernel = Request.kernel_of_spec spec in
  let knobs = { knobs with Offload.guardize = spec.guardize } in
  Printf.sprintf "%s|%c|%s"
    (Ompir.Kdigest.hex kernel)
    (if spec.guardize then 'g' else '-')
    (Offload.effective_passes knobs)

(* --- bookkeeping types -------------------------------------------------- *)

type pending = {
  spec : Request.spec;
  attempts : int;  (* admissions, as in the single-device scheduler *)
  launches : int;  (* device launches performed *)
  home : int;  (* the shard the ring placed it on *)
  ckey : string;  (* content identity (placement) *)
  bkey : string;  (* ckey + launch geometry (batching compatibility) *)
  mkey : string;  (* bkey + size + data seed (launch memo) *)
  stolen : bool;  (* executing (or last executed) on a foreign shard *)
  relaunched : bool;  (* recovery re-entry: exempt from bound and eviction *)
}

(* One member's exact sub-report, split out of the merged grid. *)
type member = {
  m_pending : pending;  (* launches already includes the one in flight *)
  m_exec : float;  (* its own simulated device cycles; 0 when hung *)
  m_failed : bool;
  m_checksum : float;
  m_grid : int;
  m_counters : Counters.t;
  m_faults : Gpusim.Fault.stats;
}

type batch_run = {
  b_shard : int;
  b_members : member list;  (* dispatch order: leader first *)
  b_started : float;
  b_compile : float;
  b_cache : Scheduler.cache_status;  (* the leader's; C_miss mates report C_join *)
  b_key : string;  (* cache key = breaker key *)
}

type event = Arrive of pending | Relaunch of int * pending | Finish of batch_run

type breaker_state = Br_closed | Br_open of float | Br_probing

type breaker = { mutable consecutive : int; mutable br : breaker_state }

type shard_state = {
  sid : int;
  mutable queue : pending list;
  mutable conc : int;  (* concurrency target: servers + autoscaled extra *)
  mutable busy : int;  (* executors occupied; dispatch while busy < conc *)
  breakers : (string, breaker) Hashtbl.t;
  mutable s_placed : int;
  mutable s_queue_max : int;
  mutable s_launches : int;
  mutable s_batches : int;
  mutable s_batched_requests : int;
  mutable s_steals : int;
  mutable s_breaker_opens : int;
  mutable s_retries : int;
  mutable s_relaunches : int;
}

type rq_report = {
  spec : Request.spec;
  shard : int;  (* where the terminal event happened *)
  outcome : Scheduler.outcome;
  attempts : int;
  launches : int;
  batched : int;  (* members of its terminal merged grid; 0 = never ran *)
  stolen : bool;
  start : float;
  finish : float;
  latency : float;
  compile_ticks : float;
  exec_ticks : float;
  cache : Scheduler.cache_status;
  checksum : float;
  counters : Counters.t;  (* its own split of the merged report; zeros if never ran *)
}

type fleet_stats = {
  batches : int;
  batched_requests : int;
  steals : int;
  tenant_evictions : int;
  memo_hits : int;
  affinity_moves : int;
      (* first arrivals the device-affinity (or a device= pin) routed
         off the plain content ring; 0 on homogeneous fleets *)
}

type result = {
  reports : rq_report list;
  metrics : Metrics.t;
  shard_stats : Metrics.shard_stats list;
  tenant_stats : Metrics.tenant_stats list;
  fleet : fleet_stats;
  telemetry : string;  (* the windowed JSONL stream; "" unless collected *)
}

(* Virtual cost of folding one more member into a merged grid: the
   merged launch runs members side by side (their block sets are
   disjoint, the device schedules them together), so the batch window
   is the slowest member plus this per-member merge overhead —
   structural, host-independent, like {!Scheduler.compile_cost}. *)
let merge_overhead = 64.0

(* Fault identity of a member launch: a pure function of (request,
   attempt), pinned via {!Gpusim.Fault.with_nonce} so placement, batch
   shape and dispatch order can never change what a request draws. *)
let nonce_for (spec : Request.spec) ~launches = 1 + (spec.Request.id * 1021) + launches

(* --- the fleet loop ----------------------------------------------------- *)

let run conf ?pool specs =
  if conf.shards < 1 then invalid_arg "Fleet.run: shards must be >= 1";
  if conf.batch < 1 then invalid_arg "Fleet.run: batch must be >= 1";
  let base = conf.base in
  if base.Scheduler.servers < 1 then
    invalid_arg "Fleet.run: servers must be >= 1";
  if base.Scheduler.queue_bound < 0 then
    invalid_arg "Fleet.run: negative queue bound";
  if base.Scheduler.breaker < 0 then
    invalid_arg "Fleet.run: negative breaker threshold";
  if base.Scheduler.window <= 0.0 then
    invalid_arg "Fleet.run: window must be > 0";
  if conf.decay < 0 then invalid_arg "Fleet.run: negative affinity decay";
  Gpusim.Fault.refresh_from_env ();
  Gpusim.Fault.reset ();
  (* heterogeneity: each shard carries a device config, the [devices]
     list cycled across shard ids; [] keeps the pre-zoo homogeneous
     fleet on the base device.  Every config re-validates here so a
     hand-built impossible device fails before any request moves. *)
  List.iter
    (fun d -> ignore (Gpusim.Config.checked d : Gpusim.Config.t))
    conf.devices;
  let devs =
    let n = List.length conf.devices in
    Array.init conf.shards (fun sid ->
        if n = 0 then base.Scheduler.cfg else List.nth conf.devices (sid mod n))
  in
  let devnames =
    (* distinct device names, sorted: the affinity cost table and the
       exploration hash are keyed on names, never shard ids, so every
       placement decision is invariant under permuting the device
       multiset across shards *)
    List.sort_uniq String.compare
      (Array.to_list (Array.map (fun (d : Gpusim.Config.t) -> d.Gpusim.Config.name) devs))
  in
  let hetero = List.length devnames > 1 in
  let ring = make_ring conf.shards in
  (* Device-group sub-rings label their vnodes by (device name, member
     index within the group), not by raw shard id: the content ->
     group-member mapping is then invariant under shuffling the device
     multiset across shard ids, which is what makes heterogeneous
     results shuffle-invariant (the member's id changes, its workload
     does not). *)
  let group_points dn =
    let sids =
      Array.of_list
        (List.filter
           (fun sid -> devs.(sid).Gpusim.Config.name = dn)
           (List.init conf.shards Fun.id))
    in
    Array.init
      (Array.length sids * ring_points)
      (fun i ->
        let j = i / ring_points and v = i mod ring_points in
        ( hash_pos
            (Printf.sprintf "ompserve-dev-%s-member-%d-vnode-%d" dn j v),
          sids.(j) ))
  in
  let subrings : (string, (int * int) array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun dn ->
      let a = group_points dn in
      Array.sort compare a;
      Hashtbl.add subrings dn a)
    devnames;
  let subring dn = Hashtbl.find subrings dn in
  let dev_by_name : (string, Gpusim.Config.t) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (d : Gpusim.Config.t) ->
      if not (Hashtbl.mem dev_by_name d.Gpusim.Config.name) then
        Hashtbl.add dev_by_name d.Gpusim.Config.name d)
    devs;
  (* A device can host a request only if the launch geometry fits: the
     thread count must be a positive multiple of ITS warp width (warp
     widths differ across the zoo) within its block limit.  Placement
     and stealing both respect this, so a 32-thread request never lands
     on a 64-lane wavefront device that would reject the launch. *)
  let fits (cfg : Gpusim.Config.t) (spec : Request.spec) =
    spec.Request.threads > 0
    && spec.Request.threads mod cfg.Gpusim.Config.warp_size = 0
    && spec.Request.threads <= cfg.Gpusim.Config.max_threads_per_block
  in
  let fits_name dn spec = fits (Hashtbl.find dev_by_name dn) spec in
  (* rings over unions of device groups (for hetero fleets with
     affinity off, or when geometry rules out some groups): the union
     of the groups' member-labelled points, so these too are invariant
     under device shuffles; built lazily, memoized by the name list *)
  let union_rings : (string, (int * int) array) Hashtbl.t = Hashtbl.create 4 in
  let ring_for names =
    let key = String.concat "," names in
    match Hashtbl.find_opt union_rings key with
    | Some r -> r
    | None ->
        let r = Array.concat (List.map group_points names) in
        Array.sort compare r;
        Hashtbl.add union_rings key r;
        r
  in
  (* Member labels: a shard is named by its device and its index within
     that device's group (in shard-id order) — "smX/j", the same j that
     labels the group sub-ring's vnodes.  Telemetry emits and the
     autoscaler contends for pool tokens in label order, never shard-id
     order, so both replay byte-identically under device shuffles. *)
  let labels =
    let seen : (string, int) Hashtbl.t = Hashtbl.create 8 in
    Array.map
      (fun (d : Gpusim.Config.t) ->
        let dn = d.Gpusim.Config.name in
        let j = Option.value ~default:0 (Hashtbl.find_opt seen dn) in
        Hashtbl.replace seen dn (j + 1);
        Printf.sprintf "%s/%d" dn j)
      devs
  in
  let label_order =
    let o = Array.init conf.shards Fun.id in
    Array.sort (fun a b -> String.compare labels.(a) labels.(b)) o;
    o
  in
  let slo = base.Scheduler.slo in
  (* 512 retained latency samples per shard per window: enough for a
     stable windowed p99 at serve rates, bounded so a flash crowd can't
     grow the collector *)
  let tele =
    Telemetry.create
      {
        Telemetry.window = base.Scheduler.window;
        ring = 512;
        emit = conf.telemetry;
      }
      ~labels ~base_conc:base.Scheduler.servers
  in
  let asc = Autoscale.create conf.autoscale ~shards:conf.shards in
  (* Effective p99 per shard / fleet-wide, carried across sample-less
     windows: a saturated shard that completed nothing keeps its last
     measured percentile (it did not get healthier by stalling); only a
     genuinely idle one (empty queue, no busy executor) resets to 0. *)
  let carry = Array.make conf.shards 0.0 in
  let carry_fleet = ref 0.0 in
  let shedding = ref false in
  (* per-(content, device-name) observed member cycles; the affinity
     estimator is the *minimum* observed exec, not a moving average:
     min is commutative and idempotent, so the table's state at any
     virtual instant is a pure function of the set of finishes before
     it — simultaneous finishes can process in any order without
     perturbing a single placement decision.  With [decay] > 0 the
     minima are kept per telemetry window and entries older than the
     horizon expire lazily: a device unmeasured for [decay] windows
     costs 0.0 again and gets re-explored, so a nonstationary trace
     can walk away from a stale optimum.  The window index is a pure
     function of virtual time, so expiry preserves every determinism
     and shuffle-invariance property of the all-time table. *)
  let aff : (string, (int * float) list ref) Hashtbl.t = Hashtbl.create 64 in
  let aff_key ckey dn = ckey ^ "\x00" ^ dn in
  let wix now =
    if conf.decay = 0 then 0
    else int_of_float (now /. base.Scheduler.window)
  in
  let prune_entries now l =
    if conf.decay = 0 then l
    else
      let cur = wix now in
      List.filter (fun (w, _) -> w > cur - conf.decay) l
  in
  let observe_exec now ckey dn exec =
    let k = aff_key ckey dn in
    let w = wix now in
    let r =
      match Hashtbl.find_opt aff k with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add aff k r;
          r
    in
    let live = prune_entries now !r in
    r :=
      (match List.assoc_opt w live with
      | Some c when c <= exec -> live
      | Some _ -> (w, exec) :: List.remove_assoc w live
      | None -> (w, exec) :: live)
  in
  let aff_cost now ckey dn =
    match Hashtbl.find_opt aff (aff_key ckey dn) with
    | None -> 0.0
    | Some r -> (
        match prune_entries now !r with
        | [] -> 0.0
        | live ->
            r := live;
            List.fold_left (fun acc (_, c) -> Float.min acc c) infinity live)
  in
  let cache = Cache.create ~capacity:base.Scheduler.cache_capacity in
  let heap = Eheap.create () in
  let shards =
    Array.init conf.shards (fun sid ->
        {
          sid;
          queue = [];
          conc = base.Scheduler.servers;
          busy = 0;
          breakers = Hashtbl.create 16;
          s_placed = 0;
          s_queue_max = 0;
          s_launches = 0;
          s_batches = 0;
          s_batched_requests = 0;
          s_steals = 0;
          s_breaker_opens = 0;
          s_retries = 0;
          s_relaunches = 0;
        })
  in
  let reports = ref [] in
  let retries = ref 0 in
  let inflight_max = ref 0 in
  let launches = ref 0 in
  let blocks = ref 0 in
  let sim_cycles = ref 0.0 in
  let global_loads = ref 0 in
  let global_stores = ref 0 in
  let atomics = ref 0 in
  let device_failures = ref 0 in
  let relaunches = ref 0 in
  let recovered = ref 0 in
  let breaker_opens = ref 0 in
  let autoscale_grows = ref 0 in
  let autoscale_shrinks = ref 0 in
  let breaker_reopens = ref 0 in
  let fault_stats = ref Gpusim.Fault.zero_stats in
  let last_time = ref 0.0 in
  let memo_hits = ref 0 in
  let affinity_moves = ref 0 in
  let tenant_evictions = ref 0 in
  let evictions_by_tenant : (string, int) Hashtbl.t = Hashtbl.create 8 in
  (* virtual single-flight: the compile service is fleet-shared, like
     the host artifact cache — a shard can join a neighbour's window *)
  let compiling : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (* content-keyed launch memo; only consulted with faults disarmed *)
  let memo : (string, member) Hashtbl.t = Hashtbl.create 64 in
  let memo_armed () = !Gpusim.Fault.armed in
  (* Key strings are pure functions of (template, size, guardize) under
     this run's fixed knobs, but computing one rebuilds and re-digests
     the instantiated IR — which unrolls with the size on chain-style
     kernels and dominates host time on repeat-heavy traces if paid per
     placement and per breaker lookup.  Caching the strings changes no
     bytes: the keys are identical, just not recomputed. *)
  let ckey_memo : (string * int * bool, string) Hashtbl.t = Hashtbl.create 16 in
  let ckey_of (spec : Request.spec) =
    let k = (spec.Request.kernel, spec.Request.size, spec.Request.guardize) in
    match Hashtbl.find_opt ckey_memo k with
    | Some c -> c
    | None ->
        let c = content_key ~knobs:base.Scheduler.knobs spec in
        Hashtbl.add ckey_memo k c;
        c
  in
  let okey_memo : (string * int * bool, string) Hashtbl.t = Hashtbl.create 16 in
  let okey_of (spec : Request.spec) =
    let k = (spec.Request.kernel, spec.Request.size, spec.Request.guardize) in
    match Hashtbl.find_opt okey_memo k with
    | Some key -> key
    | None ->
        let knobs =
          { base.Scheduler.knobs with Offload.guardize = spec.Request.guardize }
        in
        let key = Offload.cache_key ~knobs (Request.kernel_of_spec spec) in
        Hashtbl.add okey_memo k key;
        key
  in
  (* every record call is a terminal outcome: the report list and the
     telemetry stream see exactly the same events *)
  let record r =
    reports := r :: !reports;
    Telemetry.observe_terminal tele ~shard:r.shard r.outcome ~latency:r.latency
      ~slo
  in
  let zero_counters = Counters.create () in
  let never_ran ~shard (p : pending) outcome now =
    {
      spec = p.spec;
      shard;
      outcome;
      attempts = p.attempts;
      launches = p.launches;
      batched = 0;
      stolen = p.stolen;
      start = -1.0;
      finish = now;
      latency = now -. p.spec.Request.at;
      compile_ticks = 0.0;
      exec_ticks = 0.0;
      cache = Scheduler.C_none;
      checksum = 0.0;
      counters = zero_counters;
    }
  in
  (* --- per-shard breakers (same policy as the single-device
     scheduler, but the table is the shard's own: a flaky kernel opens
     its breaker where it runs, neighbours keep serving it) *)
  let breaker_for (s : shard_state) key =
    match Hashtbl.find_opt s.breakers key with
    | Some b -> b
    | None ->
        let b = { consecutive = 0; br = Br_closed } in
        Hashtbl.add s.breakers key b;
        b
  in
  let breaker_cooldown = 8.0 *. base.Scheduler.backoff in
  (* `Admit = closed; `Probe = the half-open probe (launch solo);
     `Shed = open or another probe in flight *)
  let breaker_admit (s : shard_state) key now =
    if base.Scheduler.breaker = 0 then `Admit
    else
      let b = breaker_for s key in
      match b.br with
      | Br_closed -> `Admit
      | Br_probing -> `Shed
      | Br_open opened_at ->
          if now >= opened_at +. breaker_cooldown then begin
            b.br <- Br_probing;
            `Probe
          end
          else `Shed
  in
  let breaker_ok (s : shard_state) key =
    if base.Scheduler.breaker > 0 then begin
      let b = breaker_for s key in
      b.consecutive <- 0;
      b.br <- Br_closed
    end
  in
  let breaker_fail (s : shard_state) key now =
    if base.Scheduler.breaker > 0 then begin
      let b = breaker_for s key in
      b.consecutive <- b.consecutive + 1;
      match b.br with
      | Br_probing ->
          b.br <- Br_open now;
          incr breaker_opens;
          s.s_breaker_opens <- s.s_breaker_opens + 1
      | Br_closed when b.consecutive >= base.Scheduler.breaker ->
          b.br <- Br_open now;
          incr breaker_opens;
          s.s_breaker_opens <- s.s_breaker_opens + 1
      | Br_closed | Br_open _ -> ()
    end
  in
  (* --- queue plumbing --------------------------------------------------- *)
  let better (a : pending) (b : pending) =
    let x = a.spec and y = b.spec in
    x.Request.priority > y.Request.priority
    || (x.Request.priority = y.Request.priority
       && (x.Request.at < y.Request.at
          || (x.Request.at = y.Request.at && x.Request.id < y.Request.id)))
  in
  let pop_queue_where pred (s : shard_state) =
    match List.filter pred s.queue with
    | [] -> None
    | first :: rest ->
        let best =
          List.fold_left (fun best p -> if better p best then p else best) first rest
        in
        s.queue <- List.filter (fun p -> p != best) s.queue;
        Some best
  in
  let pop_queue s = pop_queue_where (fun _ -> true) s in
  let enqueue (s : shard_state) p =
    s.queue <- p :: s.queue;
    let depth = List.length s.queue in
    s.s_queue_max <- max s.s_queue_max depth;
    Telemetry.observe_queue_depth tele ~shard:s.sid depth
  in
  let expired (p : pending) now =
    match p.spec.Request.deadline with Some d when now >= d -> true | _ -> false
  in
  (* admission failure (full queue / fairness loss): the scheduler's
     retry-with-backoff policy, shared by newcomers and evictees *)
  let retry_or_drop ~shard now (p : pending) =
    if p.attempts <= base.Scheduler.max_retries then begin
      incr retries;
      shards.(shard).s_retries <- shards.(shard).s_retries + 1;
      let wait =
        base.Scheduler.backoff *. (2.0 ** float_of_int (p.attempts - 1))
      in
      Eheap.push heap (now +. wait) 1 (Arrive { p with attempts = p.attempts + 1 })
    end
    else
      record
        (never_ran ~shard p
           (if base.Scheduler.max_retries = 0 then Scheduler.Rejected
            else Scheduler.Shed)
           now)
  in
  (* --- weighted-fair eviction ------------------------------------------ *)
  (* Occupancy of tenant t on this queue, over its weight: the tenant
     maximizing occ/weight is the hog.  Integer cross-multiplication
     keeps the comparison exact; ties break toward the lexicographically
     greater name so the decision is total. *)
  let fair_victim_tenant (s : shard_state) =
    let occ : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (p : pending) ->
        let t = p.spec.Request.tenant in
        Hashtbl.replace occ t (1 + Option.value ~default:0 (Hashtbl.find_opt occ t)))
      s.queue;
    Hashtbl.fold
      (fun t o best ->
        let w = weight_of conf t in
        match best with
        | None -> Some (t, o, w)
        | Some (bt, bo, bw) ->
            if
              o * bw > bo * w
              || (o * bw = bo * w && String.compare t bt > 0)
            then Some (t, o, w)
            else best)
      occ None
  in
  (* the newest non-relaunched entry of the victim tenant (the queue
     list is push-front, so the first match from the head is newest) *)
  let evict_newest_of (s : shard_state) tenant =
    let rec split acc = function
      | [] -> None
      | (p : pending) :: rest ->
          if p.spec.Request.tenant = tenant && not p.relaunched then begin
            s.queue <- List.rev_append acc rest;
            Some p
          end
          else split (p :: acc) rest
    in
    split [] s.queue
  in
  (* --- placement --------------------------------------------------------- *)
  (* Where a (re-)arrival lands.  A [device=] pin wins when some shard
     carries it; then the affinity table picks the device name whose
     observed cost for this content is lowest (unmeasured devices cost
     0.0, so every device gets explored before any is ruled out), and
     the device group's sub-ring picks the shard.  Exploration ties
     break by hashing the content key over the tied *names* — never a
     shard id — so the request->device assignment, and with it every
     launch result, is invariant under shuffling the device multiset
     across shard ids. *)
  let place_for now (p : pending) =
    if not hetero then place ring p.ckey
    else begin
      let cands = List.filter (fun dn -> fits_name dn p.spec) devnames in
      (* no device fits: fall through to the plain ring and let the
         launch fail exactly as a homogeneous fleet would *)
      let cands = if cands = [] then devnames else cands in
      let pinned =
        match p.spec.Request.device with
        | Some dn when List.mem dn cands -> Some dn
        | _ -> None
      in
      match pinned with
      | Some dn -> place (subring dn) p.ckey
      | None ->
          if not conf.affinity then place (ring_for cands) p.ckey
          else begin
            let costs =
              List.map (fun dn -> (dn, aff_cost now p.ckey dn)) cands
            in
            let best =
              List.fold_left (fun acc (_, c) -> Float.min acc c) infinity costs
            in
            let tied = List.filter (fun (_, c) -> c = best) costs in
            let dn, _ = List.nth tied (hash_pos p.ckey mod List.length tied) in
            place (subring dn) p.ckey
          end
    end
  in
  (* --- launching -------------------------------------------------------- *)
  let real_launch ~cfg compiled (p : pending) =
    let _kernel, bindings, out = Request.instantiate p.spec in
    let spec = p.spec in
    let clauses =
      Clause.(
        none
        |> num_teams spec.Request.teams
        |> num_threads spec.Request.threads
        |> simdlen spec.Request.simdlen)
    in
    let launch () =
      match Offload.run ~cfg ?pool ~clauses ~bindings compiled with
      | report -> `Report report
      | exception Gpusim.Engine.Deadlock _ -> `Hung
    in
    match Gpusim.Fault.with_nonce (nonce_for spec ~launches:p.launches) launch with
    | `Report report ->
        {
          m_pending = { p with launches = p.launches + 1 };
          m_exec = report.Gpusim.Device.time_cycles;
          m_failed = report.Gpusim.Device.failures <> [];
          m_checksum = Request.checksum out;
          m_grid = report.Gpusim.Device.grid;
          m_counters = report.Gpusim.Device.counters;
          m_faults = report.Gpusim.Device.faults;
        }
    | `Hung ->
        {
          m_pending = { p with launches = p.launches + 1 };
          m_exec = 0.0;
          m_failed = true;
          m_checksum = 0.0;
          m_grid = 0;
          m_counters = zero_counters;
          m_faults = Gpusim.Fault.zero_stats;
        }
  in
  let launch_member (s : shard_state) compiled (p : pending) =
    let cfg = devs.(s.sid) in
    (* the memo keys on content *and* device: exec cycles (and under a
       zoo config, occupancy and counters) are functions of the device,
       so a result observed on one config must never serve another *)
    let mkey = p.mkey ^ "|" ^ cfg.Gpusim.Config.name in
    if conf.memo && not (memo_armed ()) then
      match Hashtbl.find_opt memo mkey with
      | Some m ->
          incr memo_hits;
          (* the memo stores content results; pending bookkeeping
             (attempts, shard, steal provenance) is this request's own *)
          { m with m_pending = { p with launches = p.launches + 1 } }
      | None ->
          let m = real_launch ~cfg compiled p in
          (* a failed result is still memoizable: with no fault plan
             armed, failure (watchdog, genuine deadlock) is as
             deterministic as success *)
          Hashtbl.add memo mkey m;
          m
    else real_launch ~cfg compiled p
  in
  let account (s : shard_state) (m : member) =
    incr launches;
    s.s_launches <- s.s_launches + 1;
    Telemetry.observe_launch tele ~shard:s.sid ~failed:m.m_failed;
    blocks := !blocks + m.m_grid;
    sim_cycles := !sim_cycles +. m.m_exec;
    global_loads := !global_loads + m.m_counters.Counters.global_loads;
    global_stores := !global_stores + m.m_counters.Counters.global_stores;
    atomics := !atomics + m.m_counters.Counters.atomics;
    fault_stats := Gpusim.Fault.add_stats !fault_stats m.m_faults;
    if m.m_failed then incr device_failures
  in
  (* Dispatch [members] (leader first) as one merged grid on [s].
     Consumes one server; false when the batch terminated without one
     (compile failure). *)
  let start_batch now (s : shard_state) (members_p : pending list) =
    let leader = List.hd members_p in
    let knobs =
      { base.Scheduler.knobs with Offload.guardize = leader.spec.Request.guardize }
    in
    (* the IR is only needed to compile (a miss) or to price the compile
       charge (also a miss); warm dispatches go through the memoized key *)
    let kernel = lazy (Request.kernel_of_spec leader.spec) in
    let key = okey_of leader.spec in
    let status, result =
      Cache.find_or_compile cache ~key ~compile:(fun () ->
          Offload.compile_with ~knobs (Lazy.force kernel))
    in
    match result with
    | Error _ ->
        List.iter
          (fun p -> record (never_ran ~shard:s.sid p Scheduler.Failed now))
          members_p;
        false
    | Ok compiled ->
        let b_cache, b_compile =
          match status with
          | `Miss ->
              let c = Scheduler.compile_cost (Lazy.force kernel) in
              Hashtbl.replace compiling key (now +. c);
              (Scheduler.C_miss, c)
          | `Hit | `Joined -> (
              match Hashtbl.find_opt compiling key with
              | Some done_at when done_at > now ->
                  (Scheduler.C_join, done_at -. now)
              | _ -> (Scheduler.C_hit, 0.0))
        in
        Telemetry.observe_cache tele ~shard:s.sid
          ~hit:(b_cache <> Scheduler.C_miss);
        let members = List.map (launch_member s compiled) members_p in
        List.iter (account s) members;
        let k = List.length members in
        if k >= 2 then begin
          s.s_batches <- s.s_batches + 1;
          s.s_batched_requests <- s.s_batched_requests + k
        end;
        let b_exec =
          List.fold_left (fun acc m -> max acc m.m_exec) 0.0 members
          +. (merge_overhead *. float_of_int (k - 1))
        in
        s.busy <- s.busy + 1;
        let busy = Array.fold_left (fun acc sh -> acc + sh.busy) 0 shards in
        inflight_max := max !inflight_max busy;
        Eheap.push heap
          (now +. b_compile +. b_exec)
          0
          (Finish
             {
               b_shard = s.sid;
               b_members = members;
               b_started = now;
               b_compile;
               b_cache;
               b_key = key;
             });
        true
  in
  (* Pull up to [batch - 1] same-content same-geometry mates out of the
     shard's own queue, best-first; deadline-expired entries are left
     behind for their own dispatch to time out. *)
  let take_batch (s : shard_state) (leader : pending) now =
    if conf.batch <= 1 then []
    else begin
      let compatible, rest =
        List.partition
          (fun (p : pending) -> p.bkey = leader.bkey && not (expired p now))
          s.queue
      in
      let ordered = List.sort (fun a b -> if better a b then -1 else 1) compatible in
      let rec take n = function
        | [] -> ([], [])
        | p :: tl ->
            if n = 0 then ([], p :: tl)
            else
              let got, left = take (n - 1) tl in
              (p :: got, left)
      in
      let mates, overflow = take (conf.batch - 1) ordered in
      s.queue <- overflow @ rest;
      mates
    end
  in
  (* The deepest neighbour queue, ties to the lowest shard id.  On a
     heterogeneous fleet stealing is a device-group affair: a thief
     only raids shards carrying its own device — a foreign-width warp
     could not launch the work anyway, and a cross-device steal would
     make the executing device (and so the request's cycles) depend on
     shard numbering, breaking shuffle invariance. *)
  let steal_from (s : shard_state) =
    if not conf.steal then None
    else begin
      let raidable (v : shard_state) =
        (not hetero)
        || devs.(v.sid).Gpusim.Config.name = devs.(s.sid).Gpusim.Config.name
      in
      let victim = ref None in
      Array.iter
        (fun (v : shard_state) ->
          if v.sid <> s.sid && raidable v then
            let depth = List.length v.queue in
            if depth > 0 then
              match !victim with
              | Some (_, best) when best >= depth -> ()
              | _ -> victim := Some (v, depth))
        shards;
      match !victim with
      | None -> None
      | Some (v, _) -> (
          match pop_queue v with
          | None -> None
          | Some p ->
              s.s_steals <- s.s_steals + 1;
              Telemetry.observe_steal tele ~shard:s.sid;
              Some { p with stolen = true })
    end
  in
  let rec dispatch now (s : shard_state) =
    if s.busy < s.conc then begin
      let candidate =
        match pop_queue s with Some p -> Some p | None -> steal_from s
      in
      match candidate with
      | None -> ()
      | Some p ->
          (if expired p now then
             record (never_ran ~shard:s.sid p Scheduler.Timed_out now)
           else
             let key = okey_of p.spec in
             match breaker_admit s key now with
             | `Shed -> record (never_ran ~shard:s.sid p Scheduler.Degraded now)
             | `Probe ->
                 (* the half-open probe flies alone: one launch decides
                    whether the breaker closes, a full batch should not
                    ride on it *)
                 ignore (start_batch now s [ p ] : bool)
             | `Admit ->
                 let mates = if p.stolen then [] else take_batch s p now in
                 ignore (start_batch now s (p :: mates) : bool));
          dispatch now s
    end
  in
  (* Is the newcomer's tenant already over its weighted share of its
     home queue?  occ / depth > weight / total-weight, cross-multiplied
     exact, over the tenants actually queued. *)
  let over_share (s : shard_state) (p : pending) =
    let depth = List.length s.queue in
    depth > 0
    &&
    let t = p.spec.Request.tenant in
    let occ =
      List.length
        (List.filter (fun (q : pending) -> q.spec.Request.tenant = t) s.queue)
    in
    occ > 0
    &&
    let names =
      List.sort_uniq String.compare
        (List.map (fun (q : pending) -> q.spec.Request.tenant) s.queue)
    in
    let total_w = List.fold_left (fun a n -> a + weight_of conf n) 0 names in
    occ * total_w > weight_of conf t * depth
  in
  let arrive now (p : pending) =
    (* placement happens at arrival-processing time, not trace-seed
       time: a retry re-places, so a content key whose cheap device was
       discovered between attempts migrates on its next arrival *)
    let home = place_for now p in
    if p.attempts = 1 && not p.relaunched then begin
      shards.(home).s_placed <- shards.(home).s_placed + 1;
      if home <> place ring p.ckey then incr affinity_moves
    end;
    let p = { p with home } in
    let s = shards.(p.home) in
    (* SLO-aware admission: while the fleet's windowed p99 is over the
       target, the lowest-priority class — and any tenant already over
       its fair share of its home queue — is turned away with the
       explicit Shed_slo outcome.  Relaunches are exempt: recovery
       never loses an accepted request. *)
    if
      !shedding
      && (not p.relaunched)
      && (p.spec.Request.priority <= 0 || over_share s p)
    then record (never_ran ~shard:s.sid p Scheduler.Shed_slo now)
      (* executor headroom + empty queue: admit past the bound — the
         sweep below dispatches it immediately, so it never really
         queues *)
    else if s.busy < s.conc && s.queue = [] then enqueue s p
    else if List.length s.queue < base.Scheduler.queue_bound then enqueue s p
    else begin
      (* full queue: the weighted-fair decision *)
      match fair_victim_tenant s with
      | None -> retry_or_drop ~shard:s.sid now p
      | Some (vt, vo, vw) ->
          let nt = p.spec.Request.tenant in
          let nw = weight_of conf nt in
          let n_occ =
            1
            + List.length
                (List.filter
                   (fun (q : pending) -> q.spec.Request.tenant = nt)
                   s.queue)
          in
          (* the newcomer (with its prospective slot) at least as
             over-share as the hog: it is the hog — turn it away *)
          if n_occ * vw >= vo * nw then retry_or_drop ~shard:s.sid now p
          else begin
            match evict_newest_of s vt with
            | None -> retry_or_drop ~shard:s.sid now p
            | Some victim ->
                incr tenant_evictions;
                Hashtbl.replace evictions_by_tenant vt
                  (1
                  + Option.value ~default:0
                      (Hashtbl.find_opt evictions_by_tenant vt));
                retry_or_drop ~shard:s.sid now victim;
                enqueue s p
          end
    end
  in
  let relaunch now sid (p : pending) =
    let s = shards.(sid) in
    if expired p now then record (never_ran ~shard:sid p Scheduler.Timed_out now)
    else
      (* recovery re-enters past the admission bound, like the
         single-device scheduler: the request was already accepted *)
      enqueue s { p with relaunched = true }
  in
  let finish now (b : batch_run) =
    let s = shards.(b.b_shard) in
    s.busy <- s.busy - 1;
    (* feed the affinity table: each healthy member's own cycles on
       this shard's device (memo replays feed the same value back —
       min is idempotent) *)
    let dn = devs.(b.b_shard).Gpusim.Config.name in
    List.iter
      (fun (m : member) ->
        if not m.m_failed then observe_exec now m.m_pending.ckey dn m.m_exec)
      b.b_members;
    let k = List.length b.b_members in
    List.iteri
      (fun i (m : member) ->
        let p = m.m_pending in
        let spec = p.spec in
        let cache_status =
          if i > 0 && b.b_cache = Scheduler.C_miss then Scheduler.C_join
          else b.b_cache
        in
        let finished outcome =
          record
            {
              spec;
              shard = s.sid;
              outcome;
              attempts = p.attempts;
              launches = p.launches;
              batched = k;
              stolen = p.stolen;
              start = b.b_started;
              finish = now;
              latency = now -. spec.Request.at;
              compile_ticks = b.b_compile;
              exec_ticks = m.m_exec;
              cache = cache_status;
              checksum = m.m_checksum;
              counters = m.m_counters;
            }
        in
        let past_deadline =
          match spec.Request.deadline with
          | Some d when now > d -> true
          | _ -> false
        in
        if not m.m_failed then begin
          breaker_ok s b.b_key;
          if p.launches > 1 && not past_deadline then incr recovered;
          finished (if past_deadline then Scheduler.Timed_out else Scheduler.Completed)
        end
        else begin
          breaker_fail s b.b_key now;
          if past_deadline then finished Scheduler.Timed_out
          else if p.launches <= base.Scheduler.max_retries then begin
            incr relaunches;
            s.s_relaunches <- s.s_relaunches + 1;
            Telemetry.observe_relaunch tele ~shard:s.sid;
            let wait =
              base.Scheduler.backoff *. (2.0 ** float_of_int (p.launches - 1))
            in
            Eheap.push heap (now +. wait) 1 (Relaunch (s.sid, p))
          end
          else finished Scheduler.Degraded
        end)
      b.b_members
  in
  (* --- seed the heap and drain it --------------------------------------- *)
  List.iter
    (fun (spec : Request.spec) ->
      let ckey = ckey_of spec in
      let bkey =
        Printf.sprintf "%s|%dx%dx%d" ckey spec.Request.teams
          spec.Request.threads spec.Request.simdlen
      in
      let mkey =
        Printf.sprintf "%s|%d|%d" bkey spec.Request.size spec.Request.seed
      in
      let home = place ring ckey in
      Eheap.push heap spec.Request.at 1
        (Arrive
           {
             spec;
             attempts = 1;
             launches = 0;
             home;
             ckey;
             bkey;
             mkey;
             stolen = false;
             relaunched = false;
           }))
    specs;
  (* Live shard state at a window boundary.  [advance] runs before the
     boundary-crossing event is processed, and every event strictly
     before the boundary already ran — so this is exactly the fleet's
     state at the boundary instant. *)
  let sample sid =
    let s = shards.(sid) in
    {
      Telemetry.sq_depth = List.length s.queue;
      sq_conc = s.conc;
      sq_busy = s.busy;
      sq_breakers_open =
        Hashtbl.fold
          (fun _ (b : breaker) n ->
            match b.br with Br_closed -> n | Br_open _ | Br_probing -> n + 1)
          s.breakers 0;
    }
  in
  (* The control plane, evaluated once per closed telemetry window:
     effective-p99 carry, the SLO shedding flag, the autoscaler step,
     and the post-burst breaker fast-forward — then the window's
     fleet/control line, after the decisions it records. *)
  let on_close (w : Telemetry.window) =
    Array.iteri
      (fun sid (sw : Telemetry.shard_window) ->
        if sw.Telemetry.w_samples > 0 then carry.(sid) <- sw.Telemetry.w_p99
        else if
          sw.Telemetry.w_sample.Telemetry.sq_depth = 0
          && sw.Telemetry.w_sample.Telemetry.sq_busy = 0
        then carry.(sid) <- 0.0)
      w.Telemetry.per_shard;
    (match slo with
    | None -> ()
    | Some slo_v ->
        (if w.Telemetry.f_samples > 0 then carry_fleet := w.Telemetry.f_p99
         else if
           Array.for_all
             (fun (sw : Telemetry.shard_window) ->
               sw.Telemetry.w_sample.Telemetry.sq_depth = 0
               && sw.Telemetry.w_sample.Telemetry.sq_busy = 0)
             w.Telemetry.per_shard
         then carry_fleet := 0.0);
        shedding := conf.shed && !carry_fleet > slo_v);
    let grows = ref 0 and shrinks = ref 0 in
    let stats =
      Array.init conf.shards (fun sid ->
          {
            Autoscale.p99 = carry.(sid);
            queued = w.Telemetry.per_shard.(sid).Telemetry.w_sample.Telemetry.sq_depth;
            conc = shards.(sid).conc;
          })
    in
    List.iter
      (fun (a : Autoscale.action) ->
        let s = shards.(a.Autoscale.a_shard) in
        match a.Autoscale.a_verdict with
        | Autoscale.Grow ->
            s.conc <- s.conc + 1;
            incr grows;
            incr autoscale_grows
        | Autoscale.Shrink ->
            s.conc <- s.conc - 1;
            incr shrinks;
            incr autoscale_shrinks
        | Autoscale.Hold -> ())
      (Autoscale.step asc ~window:w.Telemetry.index ~order:label_order ~stats);
    (* A breaker-isolated fault burst that has passed leaves open
       breakers waiting out their full cooldown on a now-healthy shard.
       A window with zero device failures is the all-clear: fast-forward
       the shard's open breakers so their next dispatch is the half-open
       probe — success reopens the path immediately, failure re-opens
       the breaker as usual.  (Per-entry mutation + a count: iteration
       order over the table cannot matter.) *)
    let reopens = ref 0 in
    if base.Scheduler.breaker > 0 then
      Array.iteri
        (fun sid (sw : Telemetry.shard_window) ->
          if sw.Telemetry.w_dev_failures = 0 then
            Hashtbl.iter
              (fun _ (b : breaker) ->
                match b.br with
                | Br_open opened_at
                  when opened_at +. breaker_cooldown > w.Telemetry.t1 ->
                    b.br <-
                      Br_open (w.Telemetry.t1 -. breaker_cooldown -. 1.0);
                    incr reopens;
                    incr breaker_reopens
                | Br_open _ | Br_closed | Br_probing -> ())
              shards.(sid).breakers)
        w.Telemetry.per_shard;
    let conc_total = Array.fold_left (fun a s -> a + s.conc) 0 shards in
    let queued_total =
      Array.fold_left (fun a s -> a + List.length s.queue) 0 shards
    in
    let tenants_occ =
      let occ : (string, int) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun s ->
          List.iter
            (fun (p : pending) ->
              let t = p.spec.Request.tenant in
              Hashtbl.replace occ t
                (1 + Option.value ~default:0 (Hashtbl.find_opt occ t)))
            s.queue)
        shards;
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) occ [])
    in
    Telemetry.emit_control tele w ~shedding:!shedding ~grows:!grows
      ~shrinks:!shrinks ~reopens:!reopens ~conc:conc_total
      ~pool_left:(Autoscale.pool_left asc) ~queued:queued_total
      ~tenants:tenants_occ
  in
  let rec loop () =
    match Eheap.pop heap with
    | None -> ()
    | Some (now, ev) ->
        last_time := max !last_time now;
        (* close every window the clock has crossed before the event
           runs: control decisions land exactly on the boundary *)
        Telemetry.advance tele now ~sample ~on_close;
        (match ev with
        | Arrive p -> arrive now p
        | Relaunch (sid, p) -> relaunch now sid p
        | Finish b -> finish now b);
        (* the work-conserving sweep: every event is a dispatch
           opportunity for the whole fleet, in shard order — an idle
           shard only ever sees foreign queues through this, so without
           it stealing could never fire (no shard gets events of its
           own while its queue is empty) *)
        Array.iter (dispatch now) shards;
        loop ()
  in
  loop ();
  Telemetry.finish tele ~sample ~on_close;
  let reports =
    List.sort
      (fun (a : rq_report) (b : rq_report) ->
        compare a.spec.Request.id b.spec.Request.id)
      !reports
  in
  (* --- aggregates -------------------------------------------------------- *)
  let count o = List.length (List.filter (fun r -> r.outcome = o) reports) in
  let latencies =
    reports
    |> List.filter (fun r -> r.outcome = Scheduler.Completed)
    |> List.map (fun r -> r.latency)
    |> Array.of_list
  in
  let mean, p50, p95, p99 = Metrics.percentiles latencies in
  let cstat st = List.length (List.filter (fun r -> r.cache = st) reports) in
  let queue_max =
    Array.fold_left (fun acc s -> max acc s.s_queue_max) 0 shards
  in
  let metrics =
    {
      Metrics.requests = List.length specs;
      completed = count Scheduler.Completed;
      rejected = count Scheduler.Rejected;
      shed = count Scheduler.Shed;
      shed_slo = count Scheduler.Shed_slo;
      timed_out = count Scheduler.Timed_out;
      failed = count Scheduler.Failed;
      retries = !retries;
      queue_max;
      inflight_max = !inflight_max;
      cache_hits = cstat Scheduler.C_hit;
      cache_misses = cstat Scheduler.C_miss;
      cache_evictions = (Cache.stats cache).Cache.evictions;
      cache_joins = cstat Scheduler.C_join;
      latency_mean = mean;
      latency_p50 = p50;
      latency_p95 = p95;
      latency_p99 = p99;
      makespan = !last_time;
      sim_cycles = !sim_cycles;
      launches = !launches;
      blocks = !blocks;
      global_loads = !global_loads;
      global_stores = !global_stores;
      atomics = !atomics;
      device_failures = !device_failures;
      relaunches = !relaunches;
      recovered = !recovered;
      degraded = count Scheduler.Degraded;
      breaker_opens = !breaker_opens;
      slo_violations =
        (match slo with
        | None -> 0
        | Some s ->
            List.length
              (List.filter
                 (fun r -> r.outcome = Scheduler.Completed && r.latency > s)
                 reports));
      autoscale_grows = !autoscale_grows;
      autoscale_shrinks = !autoscale_shrinks;
      breaker_reopens = !breaker_reopens;
      faults_corrected = !fault_stats.Gpusim.Fault.corrected;
      faults_fatal = !fault_stats.Gpusim.Fault.fatal;
      faults_stalls = !fault_stats.Gpusim.Fault.stalls;
      faults_exhausts = !fault_stats.Gpusim.Fault.exhausts;
      faults_watchdogs = !fault_stats.Gpusim.Fault.watchdogs;
    }
  in
  let shard_stats =
    Array.to_list
      (Array.map
         (fun (s : shard_state) ->
           let on_shard o =
             List.length
               (List.filter (fun r -> r.shard = s.sid && r.outcome = o) reports)
           in
           {
             Metrics.shard = s.sid;
             s_device = devs.(s.sid).Gpusim.Config.name;
             s_placed = s.s_placed;
             s_completed = on_shard Scheduler.Completed;
             s_shed = on_shard Scheduler.Rejected + on_shard Scheduler.Shed;
             s_shed_slo = on_shard Scheduler.Shed_slo;
             s_timed_out = on_shard Scheduler.Timed_out;
             s_degraded = on_shard Scheduler.Degraded;
             s_launches = s.s_launches;
             s_batches = s.s_batches;
             s_batched_requests = s.s_batched_requests;
             s_steals = s.s_steals;
             s_queue_max = s.s_queue_max;
             s_breaker_opens = s.s_breaker_opens;
             s_breakers_open =
               Hashtbl.fold
                 (fun _ (b : breaker) n ->
                   match b.br with
                   | Br_closed -> n
                   | Br_open _ | Br_probing -> n + 1)
                 s.breakers 0;
             s_retries = s.s_retries;
             s_relaunches = s.s_relaunches;
             s_conc = s.conc;
           })
         shards)
  in
  let tenant_names =
    List.sort_uniq String.compare
      (List.map (fun (r : rq_report) -> r.spec.Request.tenant) reports
      @ List.map fst conf.tenants)
  in
  let tenant_stats =
    List.map
      (fun t ->
        let mine = List.filter (fun r -> r.spec.Request.tenant = t) reports in
        let n o = List.length (List.filter (fun r -> r.outcome = o) mine) in
        let completed_lat =
          mine
          |> List.filter (fun r -> r.outcome = Scheduler.Completed)
          |> List.map (fun r -> r.latency)
        in
        let lat_mean =
          match completed_lat with
          | [] -> 0.0
          | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
        in
        {
          Metrics.tenant = t;
          weight = weight_of conf t;
          t_requests = List.length mine;
          t_completed = n Scheduler.Completed;
          t_shed = n Scheduler.Rejected + n Scheduler.Shed;
          t_shed_slo = n Scheduler.Shed_slo;
          t_timed_out = n Scheduler.Timed_out;
          t_degraded = n Scheduler.Degraded;
          t_evicted =
            Option.value ~default:0 (Hashtbl.find_opt evictions_by_tenant t);
          t_latency_mean = lat_mean;
        })
      tenant_names
  in
  let fleet =
    {
      batches = Array.fold_left (fun a s -> a + s.s_batches) 0 shards;
      batched_requests =
        Array.fold_left (fun a s -> a + s.s_batched_requests) 0 shards;
      steals = Array.fold_left (fun a s -> a + s.s_steals) 0 shards;
      tenant_evictions = !tenant_evictions;
      memo_hits = !memo_hits;
      affinity_moves = !affinity_moves;
    }
  in
  {
    reports;
    metrics;
    shard_stats;
    tenant_stats;
    fleet;
    telemetry = Telemetry.jsonl tele;
  }

(* --- rendering ---------------------------------------------------------- *)

let report_line (r : rq_report) =
  let spec = r.spec in
  Printf.sprintf
    "req %3d %-8s size=%-3d prio=%d tenant=%-6s shard=%d%s batch=%d %-9s attempts=%d launches=%d cache=%-4s arrive=%.1f start=%.1f finish=%.1f latency=%.1f compile=%.1f exec=%.1f checksum=%Lx"
    spec.Request.id spec.Request.kernel spec.Request.size spec.Request.priority
    spec.Request.tenant r.shard
    (if r.stolen then "*" else "")
    r.batched
    (Scheduler.outcome_to_string r.outcome)
    r.attempts r.launches
    (Scheduler.cache_status_to_string r.cache)
    spec.Request.at r.start r.finish r.latency r.compile_ticks r.exec_ticks
    (Int64.bits_of_float r.checksum)

let report_json (r : rq_report) =
  let spec = r.spec in
  Printf.sprintf
    "{\"id\": %d, \"kernel\": \"%s\", \"size\": %d, \"prio\": %d, \"tenant\": \"%s\", \"shard\": %d, \"stolen\": %b, \"batch\": %d, \"outcome\": \"%s\", \"attempts\": %d, \"launches\": %d, \"cache\": \"%s\", \"arrive\": %.3f, \"start\": %.3f, \"finish\": %.3f, \"latency\": %.3f, \"compile\": %.3f, \"exec\": %.3f, \"checksum\": \"%Lx\"}"
    spec.Request.id spec.Request.kernel spec.Request.size spec.Request.priority
    spec.Request.tenant r.shard r.stolen r.batched
    (Scheduler.outcome_to_string r.outcome)
    r.attempts r.launches
    (Scheduler.cache_status_to_string r.cache)
    spec.Request.at r.start r.finish r.latency r.compile_ticks r.exec_ticks
    (Int64.bits_of_float r.checksum)

(* The placement/batch/steal-invariant core of a replay: what each
   request computed and how it ended, with no timing and no shard
   assignment.  For configs that lose no requests to admission (ample
   queues, no deadlines) this is byte-identical across shard counts
   and batch limits — the fleet's analogue of the single-device
   engine/pool invariance. *)
let result_json (r : rq_report) =
  Printf.sprintf
    "{\"id\": %d, \"tenant\": \"%s\", \"outcome\": \"%s\", \"launches\": %d, \"exec\": %.3f, \"checksum\": \"%Lx\"}"
    r.spec.Request.id r.spec.Request.tenant
    (Scheduler.outcome_to_string r.outcome)
    r.launches r.exec_ticks
    (Int64.bits_of_float r.checksum)

let results_json reports =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"results\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (result_json r))
    reports;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let fleet_stats_json f =
  Printf.sprintf
    "{\"batches\": %d, \"batched_requests\": %d, \"steals\": %d, \"tenant_evictions\": %d, \"memo_hits\": %d, \"affinity_moves\": %d}"
    f.batches f.batched_requests f.steals f.tenant_evictions f.memo_hits
    f.affinity_moves

let snapshot_json conf (res : result) =
  let b = Buffer.create 8192 in
  let base = conf.base in
  Printf.ksprintf (Buffer.add_string b)
    "{\n\
     \"config\": {\"device\": \"%s\", \"devices\": \"%s\", \"affinity\": %b, \"decay\": %d, \"shards\": %d, \"batch\": %d, \"steal\": %b, \"memo\": %b, \"tenants\": \"%s\", \"queue_bound\": %d, \"servers\": %d, \"cache_capacity\": %d, \"max_retries\": %d, \"backoff\": %.3f, \"breaker\": %d, \"slo\": %s, \"window\": %.3f, \"shed\": %b, \"autoscale\": %b, \"budget\": %d, \"cooldown\": %d},\n"
    base.Scheduler.cfg.Gpusim.Config.name
    (String.concat ","
       (List.map (fun (d : Gpusim.Config.t) -> d.Gpusim.Config.name) conf.devices))
    conf.affinity conf.decay conf.shards conf.batch conf.steal conf.memo
    (String.concat ","
       (List.map (fun (t, w) -> Printf.sprintf "%s=%d" t w) conf.tenants))
    base.Scheduler.queue_bound base.Scheduler.servers
    base.Scheduler.cache_capacity base.Scheduler.max_retries
    base.Scheduler.backoff base.Scheduler.breaker
    (match base.Scheduler.slo with
    | None -> "null"
    | Some s -> Printf.sprintf "%.3f" s)
    base.Scheduler.window conf.shed conf.autoscale.Autoscale.enabled
    conf.autoscale.Autoscale.budget conf.autoscale.Autoscale.cooldown;
  Buffer.add_string b "\"requests\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (report_json r))
    res.reports;
  Buffer.add_string b "\n],\n\"shards\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Metrics.shard_stats_to_json s))
    res.shard_stats;
  Buffer.add_string b "\n],\n\"tenants\": [\n";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Metrics.tenant_stats_to_json t))
    res.tenant_stats;
  Buffer.add_string b "\n],\n\"fleet\": ";
  Buffer.add_string b (fleet_stats_json res.fleet);
  Buffer.add_string b ",\n\"metrics\": ";
  Buffer.add_string b (Metrics.to_json res.metrics);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let to_text (res : result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Metrics.to_text res.metrics);
  let f = res.fleet in
  Printf.ksprintf (Buffer.add_string b)
    "  fleet       batches %d (members %d)  steals %d  tenant-evictions %d  memo-hits %d  affinity-moves %d\n"
    f.batches f.batched_requests f.steals f.tenant_evictions f.memo_hits
    f.affinity_moves;
  List.iter
    (fun s ->
      Buffer.add_string b "  ";
      Buffer.add_string b (Metrics.shard_stats_line s);
      Buffer.add_char b '\n')
    res.shard_stats;
  List.iter
    (fun t ->
      Buffer.add_string b "  ";
      Buffer.add_string b (Metrics.tenant_stats_line t);
      Buffer.add_char b '\n')
    res.tenant_stats;
  Buffer.contents b
