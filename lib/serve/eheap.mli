(** Discrete-event queue for the virtual-time schedulers: a binary
    min-heap on (time, rank, seq).  Rank 0 events (completions) sort
    before rank 1 events (arrivals) at the same tick, and the internal
    insertion sequence number breaks every remaining tie, so event
    order is total and deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> int -> 'a -> unit
(** [push h time rank v] schedules [v] at [time]; lower [rank] wins a
    same-tick tie, then earlier insertion. *)

val pop : 'a t -> (float * 'a) option
(** The earliest event, or [None] when the simulation is drained. *)
