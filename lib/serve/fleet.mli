(** The serve fleet: N virtual devices behind one admission plane.

    Each shard replicates the single-device {!Scheduler} machinery — a
    bounded admission queue, [servers] executors, per-kernel circuit
    breakers — all driven by one global event heap in virtual time.
    Requests are placed by a consistent-hash ring over their engine-free
    content identity ({!Ompir.Kdigest} + guardize + resolved pass spec),
    idle shards steal from the deepest neighbour queue, and a dispatching
    shard drains same-content same-geometry queue mates into one merged
    grid ({i launch batching}): one compile charge, one server, a merged
    execution window, and exact per-request sub-reports (requests share
    no simulator state, so splitting the merged report is lossless by
    construction).

    Admission is per-tenant weighted-fair: on a full queue the most
    over-share tenant (queue occupancy over weight) loses its newest
    slot to an under-share newcomer; the evictee re-enters the normal
    retry-with-backoff path, so fairness never loses a request.

    Heterogeneous fleets give each shard its own device config (the
    [devices] list, usually {!Gpusim.Zoo} entries, cycled across shard
    ids).  Placement then becomes (content, device)-aware: the fleet
    tracks the minimum observed member cycles per (content key, device
    name) and routes each arrival to the cheapest device's sub-ring —
    hot kernels migrate to the architecture that runs them fastest,
    and a trace can pin a request with [device=<zoo name>].  The
    affinity estimator is deliberately a minimum, not a moving
    average: min is order-insensitive, so placement stays deterministic
    under simultaneous finishes.

    Determinism: nothing reads the host clock, placement hashes MD5,
    and every member launch pins its {!Gpusim.Fault} nonce to (request
    id, attempt) — injected faults are a pure function of the plan and
    the request, independent of shard count, batch shape and dispatch
    order.  A replay of the same trace under the same environment is
    bit-identical; {!results_json} is additionally invariant across
    shard counts and batch limits for configs that lose no requests to
    admission, and — because affinity keys on device {e names}, never
    shard ids — across shuffles of the device multiset over shard
    ids. *)

type config = {
  base : Scheduler.config;
      (** per-shard queue bound / servers / retries / backoff / breaker,
          plus the device, compile knobs and the fleet-wide compile-cache
          capacity *)
  shards : int;
  batch : int;  (** max members per merged grid; 1 disables batching *)
  steal : bool;  (** idle shards pull from the deepest neighbour queue *)
  memo : bool;
      (** memoize idempotent launch results by content (same template,
          size, geometry, data seed); automatically bypassed while a
          fault plan is armed, and never changes a report byte — only
          host time *)
  tenants : (string * int) list;
      (** fair-admission weights, e.g. [("alice", 3)]; absent tenants
          weigh 1 *)
  devices : Gpusim.Config.t list;
      (** per-shard device configs (usually {!Gpusim.Zoo} entries),
          cycled across shard ids; [[]] keeps the homogeneous fleet on
          the base device.  Each config is re-validated at [run]. *)
  affinity : bool;
      (** content->device affinity placement on heterogeneous fleets:
          requests route to the device whose minimum observed member
          cycles for their content key is lowest (unmeasured devices
          cost 0, so all get explored), then to a shard of that device
          by the device group's sub-ring.  No effect when every shard
          carries the same device. *)
  telemetry : bool;
      (** collect the windowed JSONL telemetry stream into
          [result.telemetry].  Observation (and the control loops it
          drives) is always on; this only controls emission. *)
  shed : bool;
      (** SLO-aware admission: while the fleet's windowed p99 is over
          [base.slo], shed lowest-priority arrivals (and over-share
          tenants) as {!Scheduler.Shed_slo}.  Inert without an SLO. *)
  autoscale : Autoscale.config;
      (** the window-boundary concurrency control loop; see
          {!Autoscale}.  [Autoscale.disabled] pins every shard at
          [base.servers]. *)
  decay : int;
      (** affinity cost-table horizon in telemetry windows: per-window
          observed minima older than this expire, aging unvisited
          devices back toward "unmeasured" (cost 0) so nonstationary
          traffic re-explores; 0 keeps the all-time minima *)
}

val parse_tenants : string -> (string * int) list
(** Parse ["alice=3,bob=1"] (a bare name means weight 1).
    @raise Invalid_argument on a malformed token. *)

val parse_devices : string -> Gpusim.Config.t list
(** Parse a comma-separated list of {!Gpusim.Zoo} names
    (["w32-hw,w64-sw"]) into per-shard device configs.
    @raise Invalid_argument naming the unknown device. *)

val config_of_env : cfg:Gpusim.Config.t -> unit -> config
(** {!Scheduler.config_of_env} plus [OMPSIMD_SERVE_SHARDS] (default 4),
    [OMPSIMD_SERVE_BATCH] (8), [OMPSIMD_SERVE_STEAL] (1),
    [OMPSIMD_SERVE_MEMO] (1), [OMPSIMD_SERVE_TENANTS] (empty),
    [OMPSIMD_FLEET_DEVICES] (empty = homogeneous),
    [OMPSIMD_FLEET_AFFINITY] (1), [OMPSIMD_FLEET_DECAY] (0),
    [OMPSIMD_SERVE_TELEMETRY] (unset; its presence — the CLI treats the
    value as the stream's destination path — turns collection on),
    [OMPSIMD_SERVE_SHED] (1) and the {!Autoscale.config_of_env} knobs
    derived from the base config's [OMPSIMD_SERVE_SLO_MS]. *)

val weight_of : config -> string -> int
(** The tenant's fair-admission weight (>= 1; unknown tenants weigh 1). *)

val content_key : knobs:Openmp.Offload.knobs -> Request.spec -> string
(** The engine-free content identity placement and batching key on:
    kernel digest, guardize flag, resolved pass spec.  Unlike
    {!Openmp.Offload.cache_key} it excludes the evaluation engine, so a
    replay places identically under either [OMPSIMD_EVAL]. *)

val make_ring : int -> (int * int) array
val place : (int * int) array -> string -> int
(** The consistent-hash ring: 64 MD5 points per shard, sorted;
    [place ring key] is the shard owning [key]'s clockwise successor
    point.  Exposed for the placement-stability tests. *)

type rq_report = {
  spec : Request.spec;
  shard : int;  (** where the terminal event happened *)
  outcome : Scheduler.outcome;
  attempts : int;
  launches : int;
  batched : int;  (** members of its terminal merged grid; 0 = never ran *)
  stolen : bool;  (** last executed on a foreign shard *)
  start : float;  (** -1 when the request never dispatched *)
  finish : float;
  latency : float;
  compile_ticks : float;
  exec_ticks : float;  (** its own member cycles, not the batch window *)
  cache : Scheduler.cache_status;
      (** the batch leader's status; mates of a miss report [C_join] *)
  checksum : float;
  counters : Gpusim.Counters.t;
      (** its own exact split of the merged report; zeros if it never ran *)
}

type fleet_stats = {
  batches : int;  (** merged-grid launches with >= 2 members *)
  batched_requests : int;  (** members that rode a merged grid *)
  steals : int;
  tenant_evictions : int;  (** queue slots reclaimed by fair admission *)
  memo_hits : int;  (** launches served from the content memo *)
  affinity_moves : int;
      (** first arrivals that device affinity (or a [device=] pin)
          routed off the plain content ring; always 0 on a homogeneous
          fleet *)
}

type result = {
  reports : rq_report list;  (** sorted by request id *)
  metrics : Metrics.t;  (** the fleet-wide aggregate *)
  shard_stats : Metrics.shard_stats list;
  tenant_stats : Metrics.tenant_stats list;
  fleet : fleet_stats;
  telemetry : string;
      (** the windowed JSONL stream (see {!Telemetry}); [""] unless
          [config.telemetry] was set.  Byte-identical across
          [OMPSIMD_EVAL], [OMPSIMD_DOMAINS] and shuffles of the device
          multiset over shard ids. *)
}

val merge_overhead : float
(** Virtual cycles added to a merged grid's window per extra member. *)

val nonce_for : Request.spec -> launches:int -> int
(** The pinned fault nonce of a member launch: a pure function of
    (request id, prior launches). *)

val run : config -> ?pool:Gpusim.Pool.t -> Request.spec list -> result
(** Replay a trace through the fleet.  @raise Invalid_argument on a
    non-positive shard or batch count (and the base config checks). *)

val report_line : rq_report -> string
val report_json : rq_report -> string

val results_json : rq_report list -> string
(** The placement/batch/steal-invariant core of a replay: per request
    its tenant, outcome, launch count, own execution cycles and
    checksum — no timing, no shard assignment.  For configs that lose
    no requests to admission (ample queues, no deadlines) this is
    byte-identical across shard counts and batch limits. *)

val fleet_stats_json : fleet_stats -> string

val snapshot_json : config -> result -> string
(** The full machine-readable snapshot: config, per-request reports,
    per-shard and per-tenant breakdowns, fleet counters, aggregate
    metrics.  Bit-identical across [OMPSIMD_EVAL] and
    [OMPSIMD_DOMAINS], like the single-device snapshot. *)

val to_text : result -> string
(** Aggregate metrics plus fleet, per-shard and per-tenant lines. *)
