(** The fleet autoscaler: a deterministic hysteresis control loop
    evaluated on telemetry-window boundaries.

    Scale-up never allocates: a pre-created pooled budget of executor
    tokens is moved between the pool and the shards.  A shard grows
    when its windowed p99 exceeds the SLO (or it stalls with queued
    work past its target), shrinks only when idle below [down] x SLO —
    the dead band in between, plus a per-shard cooldown, is what keeps
    a square-wave load from oscillating the target.  Shards are
    evaluated in the caller-supplied order (the fleet passes
    member-label order), so pool contention resolves identically under
    device shuffles, and every decision is a pure function of the
    window stats — the scaling schedule replays byte-identically. *)

type config = {
  enabled : bool;
  slo : float;  (** virtual ticks *)
  budget : int;  (** pooled extra executor tokens, fleet-wide *)
  max_extra : int;  (** cap on pool tokens held by one shard *)
  down : float;  (** shrink band: p99 below [down * slo] releases a token *)
  cooldown : int;  (** windows a shard holds still after an action *)
}

val disabled : config

val config_of_env :
  slo:float option -> shards:int -> servers:int -> unit -> config
(** [disabled] when no SLO is set; otherwise enabled unless
    [OMPSIMD_SERVE_AUTOSCALE=0], with [OMPSIMD_SERVE_BUDGET] pool
    tokens (default [2 * shards]), a [3 * servers] per-shard cap and an
    [OMPSIMD_SERVE_COOLDOWN]-window cooldown (default 2). *)

type verdict = Grow | Shrink | Hold

type stat = {
  p99 : float;  (** effective windowed p99 (carried forward when stale) *)
  queued : int;  (** queue depth at the window boundary *)
  conc : int;  (** current concurrency target *)
}

val decide : config -> stat -> verdict
(** The pure control law, before budget/cap/cooldown bookkeeping. *)

type t

val create : config -> shards:int -> t
(** Fresh state: every shard at zero extra, the pool full.
    @raise Invalid_argument on a negative budget. *)

val pool_left : t -> int
val extra : t -> int -> int

type action = { a_shard : int; a_verdict : verdict }

val step : t -> window:int -> order:int array -> stats:stat array -> action list
(** One control-loop evaluation at a window boundary: applies
    {!decide} per shard in [order] under the cooldown, the per-shard
    cap and the pooled budget, mutating the held-token state and
    returning the actions taken (in [order]).  Empty when disabled. *)
