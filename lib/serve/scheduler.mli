(** The request scheduler: a discrete-event simulation of the
    persistent kernel-launch service, in virtual time.

    Admission is a bounded queue with explicit {!Rejected} / {!Shed}
    outcomes and a retry-with-exponential-backoff policy for transient
    admission failures; dispatch is highest-priority-first over
    [servers] virtual executors; per-request deadlines are enforced
    both while queued (an expired request never launches) and at
    completion (a late finish reports {!Timed_out}).  A request's
    service time is its launch's simulated device cycles plus a
    structural compile cost charged once per cache key (single-flight:
    requests dispatched during an in-flight compile pay only the
    residual wait).  Host-side, compilation runs once per key through
    {!Cache} — the real wall-clock amortization.

    Nothing reads the host clock: replaying a trace yields bit-identical
    reports and metrics for any [OMPSIMD_DOMAINS] and either engine. *)

type outcome =
  | Completed
  | Rejected  (** admission failed and the config allows no retries *)
  | Shed  (** dropped after exhausting its retry budget *)
  | Shed_slo
      (** turned away by SLO-aware admission: the windowed p99 was over
          the latency target, so the lowest-priority class is shed
          explicitly — counted, terminal, never a silent drop *)
  | Timed_out  (** deadline expired (while queued, or finished late) *)
  | Failed  (** the kernel did not compile *)
  | Degraded
      (** device failures exhausted the relaunch budget, or the
          kernel's circuit breaker was open — distinct from admission
          loss ({!Rejected}/{!Shed}): the service gave up on a request
          it had accepted *)

val outcome_to_string : outcome -> string

type cache_status = C_hit | C_miss | C_join | C_none

val cache_status_to_string : cache_status -> string

type rq_report = {
  spec : Request.spec;
  outcome : outcome;
  attempts : int;  (** admission attempts, 1 = admitted first try *)
  launches : int;
      (** device launches performed; 0 = never ran, > 1 = recovery
          relaunched after device failures *)
  start : float;  (** tick of the terminal launch; -1 when never dispatched *)
  finish : float;  (** terminal-event tick *)
  latency : float;  (** finish - arrival *)
  compile_ticks : float;  (** virtual compile component (miss/join) *)
  exec_ticks : float;  (** the launch's simulated device cycles *)
  cache : cache_status;
  checksum : float;  (** output-array checksum; 0 when never ran *)
}

type config = {
  cfg : Gpusim.Config.t;
  queue_bound : int;
  servers : int;
  cache_capacity : int;  (** 0 disables the cache *)
  max_retries : int;
      (** budget shared by admission retries and device-failure
          relaunches (counted separately: admissions vs launches) *)
  backoff : float;  (** base ticks; attempt k waits backoff * 2^(k-1) *)
  breaker : int;
      (** consecutive device failures of one cache key that open its
          circuit breaker; 0 disables the breaker.  Open sheds that
          kernel's dispatches as {!Degraded}; after a cooldown of
          [8 * backoff] ticks one half-open probe goes through —
          success closes the breaker, failure reopens it. *)
  slo : float option;
      (** latency SLO in virtual ticks; arms SLO-aware admission (and,
          in the fleet, the autoscaler and telemetry SLO tracking);
          [None] disables all of it *)
  window : float;
      (** telemetry/SLO evaluation window in virtual ticks: completion
          latencies are aggregated per window and the windowed p99
          drives the shedding decision for the next window *)
  knobs : Openmp.Offload.knobs;  (** guardize is overridden per request *)
}

val config_of_env : cfg:Gpusim.Config.t -> unit -> config
(** Defaults overridable by the [OMPSIMD_SERVE_QUEUE] (16),
    [OMPSIMD_SERVE_CONC] (2), [OMPSIMD_SERVE_CACHE] (32),
    [OMPSIMD_SERVE_RETRIES] (2), [OMPSIMD_SERVE_BACKOFF] (500),
    [OMPSIMD_SERVE_BREAKER] (4), [OMPSIMD_SERVE_SLO_MS] (unset; a
    positive millisecond value, 1 ms = 1000 ticks) and
    [OMPSIMD_SERVE_WINDOW] (20000 ticks) environment knobs — blank
    values mean default, as everywhere. *)

val compile_cost : Ompir.Ir.kernel -> float
(** The virtual compile charge: 200 + 25 ticks per IR node. *)

val run :
  config ->
  ?pool:Gpusim.Pool.t ->
  Request.spec list ->
  rq_report list * Metrics.t
(** Replay the trace to completion.  Reports come back in request-id
    order.

    Device failures (failed blocks in a launch report under an armed
    [OMPSIMD_FAULTS] plan, an over-budget [OMPSIMD_WATCHDOG] finding,
    or an escaped divergence deadlock) are retryable: the request is
    relaunched with exponential backoff — reusing the cached compile
    artifact and bypassing the admission bound — until it completes or
    exhausts [max_retries] launches, when it reports {!Degraded}.  A
    replay re-arms {!Gpusim.Fault} from the environment and rewinds its
    launch nonce, so the same trace under the same fault seed injects
    the identical fault sequence — bit-identical reports and metrics
    across engines and pool widths.

    With [slo] set, completions feed a windowed p99 and arrivals of the
    lowest priority class are shed as {!Shed_slo} while the previous
    window's p99 was over the target.

    @raise Invalid_argument on [servers < 1], a negative queue bound,
    a negative breaker threshold or a non-positive window. *)

val report_line : rq_report -> string
(** One fixed-format text line per request (checksum as IEEE bits so
    equality is exact). *)

val report_json : rq_report -> string

val snapshot_json : config -> rq_report list -> Metrics.t -> string
(** The whole replay as JSON: config, per-request reports, metrics.
    Field order and float rendering are fixed, and the engine / pool
    width are deliberately excluded — snapshots from any
    [OMPSIMD_EVAL] x [OMPSIMD_DOMAINS] combination diff clean. *)
