(** Bounded compiled-kernel cache with LRU eviction and single-flight
    deduplication.

    Keys come from {!Openmp.Offload.cache_key}: the content digest of
    the checked IR plus the compile-relevant knobs and the evaluation
    engine.  With [capacity = 0] the cache stores nothing (every lookup
    compiles — the "recompile per request" baseline the bench measures
    against); compile failures are never cached. *)

type t

type stats = {
  hits : int;  (** lookups served from the table *)
  misses : int;  (** lookups that ran the [compile] thunk *)
  evictions : int;  (** entries dropped to stay within capacity *)
  joins : int;
      (** single-flight lookups that blocked on another caller's
          in-flight compile and were served by its result *)
}

val create : capacity:int -> t
(** @raise Invalid_argument on a negative capacity. *)

val capacity : t -> int
val size : t -> int
val stats : t -> stats

val find_or_compile :
  t ->
  key:string ->
  compile:(unit -> (Openmp.Offload.compiled, Ompir.Check.error list) result) ->
  [ `Hit | `Miss | `Joined ]
  * (Openmp.Offload.compiled, Ompir.Check.error list) result
(** Look up [key]; on a miss run [compile] (exactly once across all
    concurrent callers of the same key — late callers block and return
    [`Joined] with the winner's result).  Thread-safe. *)
