(** Launch requests: the unit of work the service schedules.

    A request names a kernel template from the built-in catalog plus a
    problem size and launch geometry; {!instantiate} builds the actual
    IR (the digest the cache keys on is computed from exactly what will
    compile) and fresh, seed-deterministic device bindings in a private
    memory space — requests share no simulator state. *)

type spec = {
  id : int;  (** position in the trace, 0-based *)
  at : float;  (** arrival time, virtual ticks *)
  kernel : string;  (** catalog template name *)
  size : int;
  teams : int;
  threads : int;  (** must be a warp multiple, as everywhere *)
  simdlen : int;
  guardize : bool;  (** compile with the S7 guardize transform *)
  deadline : float option;  (** absolute completion deadline, ticks *)
  priority : int;  (** higher dispatches first *)
  seed : int;  (** binding-data seed *)
  tenant : string;
      (** the client this request bills to — the identity the fleet's
          weighted-fair admission protects neighbours from; ["-"] is
          the default tenant *)
  device : string option;
      (** placement pin for heterogeneous fleets: a {!Gpusim.Zoo} name
          (trace token [device=w64-sw]).  The fleet routes the request
          to a shard carrying that device; a pin no fleet shard
          satisfies is ignored rather than failed, so one trace replays
          under any fleet makeup *)
}

val default_spec : spec
(** The trace parser's baseline: id 0, [saxpy] at size 32, one team of
    32 threads, simdlen 8, no deadline, priority 0, seed 1, tenant
    ["-"].  Convenient for [{ default_spec with ... }] construction in
    generators. *)

val catalog_names : string list
(** [rowsum; saxpy; stencil; hist; chain] — reduction, streaming,
    gather, atomic-contention and fat-body shapes. *)

val kernel_of_spec : spec -> Ompir.Ir.kernel
(** The template instantiated at the request's size (sizes may change
    kernel structure — [chain] unrolls — so different sizes can have
    different digests).  @raise Failure on an unknown template. *)

val instantiate :
  spec ->
  Ompir.Ir.kernel
  * (string * Ompir.Eval.binding) list
  * Gpusim.Memory.farray
(** Kernel, bindings in a fresh memory space (data from [seed]), and
    the output array to checksum for the per-request report. *)

val checksum : Gpusim.Memory.farray -> float
(** Plain sum of the array — enough to witness bit-identical results. *)

val parse_trace : string -> spec list
(** Parse a trace: one request per line of [key=value] tokens ([kernel=]
    required; [at]/[deadline] in ticks, deadline relative to arrival;
    [#] comments).  @raise Failure with the offending line number. *)

val load_trace : string -> spec list
(** {!parse_trace} over a file's contents. *)

val synthetic : n:int -> seed:int -> ?gap:float -> unit -> spec list
(** Deterministic open-loop trace: [n] requests with uniform
    inter-arrival gaps of mean [gap] ticks (default 2000), Zipf-skewed
    template choice (so caches see repeat traffic), occasional
    deadlines.  Same [seed] — same trace, always. *)
