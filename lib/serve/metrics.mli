(** Service metrics snapshot — queue/admission outcomes, cache counters,
    latency percentiles and folded per-launch device counters.

    All quantities are in virtual (simulated) time or deterministic
    counters: a replay of the same trace with the same seed yields a
    bit-identical snapshot regardless of [OMPSIMD_DOMAINS] or the
    evaluation engine. *)

type t = {
  requests : int;
  completed : int;
  rejected : int;
  shed : int;
  shed_slo : int;
      (** shed by SLO-aware admission while the windowed p99 was over
          the target — an explicit terminal outcome, never silent *)
  timed_out : int;
  failed : int;
  retries : int;
  queue_max : int;
  inflight_max : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_joins : int;
  latency_mean : float;
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  makespan : float;
  sim_cycles : float;
  launches : int;
  blocks : int;
  global_loads : int;
  global_stores : int;
  atomics : int;
  device_failures : int;
      (** launches that came back with failed blocks (or hung) *)
  relaunches : int;  (** recovery launches scheduled after device failures *)
  recovered : int;  (** requests completed after >= 1 device failure *)
  degraded : int;  (** retries exhausted on device failures, or breaker shed *)
  breaker_opens : int;  (** circuit-breaker closed/half-open -> open *)
  slo_violations : int;  (** completions whose latency exceeded the SLO *)
  autoscale_grows : int;  (** pool tokens granted to shards *)
  autoscale_shrinks : int;  (** pool tokens returned by shards *)
  breaker_reopens : int;
      (** open breakers fast-forwarded to their half-open probe after a
          failure-free telemetry window *)
  faults_corrected : int;
  faults_fatal : int;
  faults_stalls : int;
  faults_exhausts : int;
  faults_watchdogs : int;
      (** fault totals folded from every launch's {!Gpusim.Device.report} *)
}

val cache_hit_rate : t -> float
(** (hits + joins) / lookups; 0 when there were none. *)

val throughput : t -> float
(** Completed requests per million virtual ticks. *)

val percentiles : float array -> float * float * float * float
(** (mean, p50, p95, p99); zeros on an empty array. *)

val to_text : t -> string
val to_json : t -> string
(** Single-line JSON object with a fixed field order and fixed decimal
    rendering — byte-diffable across replays. *)

(** {2 Fleet breakdowns}

    Per-shard and per-tenant slices of a fleet replay, produced by
    {!Fleet.run} alongside the aggregate record above. *)

type shard_stats = {
  shard : int;
  s_device : string;
      (** the shard's device config name (heterogeneous fleets differ
          per shard; homogeneous fleets repeat the base device) *)
  s_placed : int;  (** requests the placement ring routed here *)
  s_completed : int;
  s_shed : int;
      (** rejected + shed + fair-admission evictions resolved on this
          shard's queue *)
  s_shed_slo : int;  (** SLO admission sheds attributed to this home shard *)
  s_timed_out : int;
  s_degraded : int;
  s_launches : int;  (** member launches executed on this shard *)
  s_batches : int;  (** merged-grid launches (batch size >= 2) *)
  s_batched_requests : int;  (** members that rode a merged grid *)
  s_steals : int;  (** requests this shard pulled from a neighbour *)
  s_queue_max : int;
  s_breaker_opens : int;
  s_breakers_open : int;
      (** breakers not closed (open or probing) when the replay drained *)
  s_retries : int;  (** backoff re-arrivals scheduled off this shard's queue *)
  s_relaunches : int;  (** recovery relaunches scheduled on this shard *)
  s_conc : int;  (** final concurrency target (servers + autoscaled extra) *)
}

type tenant_stats = {
  tenant : string;
  weight : int;  (** fair-admission weight (default 1) *)
  t_requests : int;
  t_completed : int;
  t_shed : int;  (** rejected + shed: admission losses *)
  t_shed_slo : int;  (** shed by SLO admission *)
  t_timed_out : int;
  t_degraded : int;
  t_evicted : int;
      (** queue slots reclaimed from this tenant by weighted-fair
          admission (each eviction re-enters the retry path) *)
  t_latency_mean : float;  (** over its completed requests *)
}

val shard_stats_to_json : shard_stats -> string
val tenant_stats_to_json : tenant_stats -> string
val shard_stats_line : shard_stats -> string
val tenant_stats_line : tenant_stats -> string
