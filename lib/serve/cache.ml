(* Compiled-kernel cache: the piece that turns the batch pipeline into
   a service.  Keyed by {!Openmp.Offload.cache_key} (content digest of
   the IR plus compile-relevant knobs plus engine); bounded, with LRU
   eviction and single-flight deduplication — when several requests for
   the same key arrive while the first is still compiling, exactly one
   [compile] thunk runs and the others block until its result is
   published.

   The structure is thread-safe (Mutex + Condition) even though the
   deterministic service replay drives it from a single domain: the
   single-flight contract is part of the subsystem's API, and the test
   suite exercises it from concurrent domains. *)

type entry = {
  value : Openmp.Offload.compiled;
  mutable last_use : int;  (* logical clock tick of the last hit *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  joins : int;  (* single-flight waits resolved by another's compile *)
}

type t = {
  capacity : int;
  mu : Mutex.t;
  published : Condition.t;  (* signalled when an in-flight compile lands *)
  table : (string, entry) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable joins : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    capacity;
    mu = Mutex.create ();
    published = Condition.create ();
    table = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    joins = 0;
  }

let capacity t = t.capacity

let stats t =
  Mutex.lock t.mu;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions; joins = t.joins }
  in
  Mutex.unlock t.mu;
  s

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mu;
  n

(* Evict the least-recently-used entry.  Linear scan: service caches
   are tens of entries, and the deterministic scan (ties cannot happen,
   ticks are unique) keeps eviction order reproducible. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, best) when best.last_use <= e.last_use -> ()
      | _ -> victim := Some (key, e))
    t.table;
  match !victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1

let find_or_compile t ~key ~compile =
  Mutex.lock t.mu;
  let rec lookup ~joined =
    match Hashtbl.find_opt t.table key with
    | Some e ->
        t.tick <- t.tick + 1;
        e.last_use <- t.tick;
        if joined then t.joins <- t.joins + 1 else t.hits <- t.hits + 1;
        Mutex.unlock t.mu;
        ((if joined then `Joined else `Hit), Ok e.value)
    | None ->
        if Hashtbl.mem t.inflight key then begin
          (* single flight: somebody is compiling this key right now *)
          Condition.wait t.published t.mu;
          lookup ~joined:true
        end
        else begin
          Hashtbl.replace t.inflight key ();
          t.misses <- t.misses + 1;
          Mutex.unlock t.mu;
          let result =
            match compile () with
            | result -> result
            | exception e ->
                (* never leave the key marked in-flight *)
                Mutex.lock t.mu;
                Hashtbl.remove t.inflight key;
                Condition.broadcast t.published;
                Mutex.unlock t.mu;
                raise e
          in
          Mutex.lock t.mu;
          Hashtbl.remove t.inflight key;
          (match result with
          | Ok value when t.capacity > 0 ->
              if Hashtbl.length t.table >= t.capacity then evict_lru t;
              t.tick <- t.tick + 1;
              Hashtbl.replace t.table key { value; last_use = t.tick }
          | Ok _ | Error _ -> ());
          Condition.broadcast t.published;
          Mutex.unlock t.mu;
          (`Miss, result)
        end
  in
  lookup ~joined:false
