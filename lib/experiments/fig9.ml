module Table = Ompsimd_util.Table
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv
module Su3 = Workloads.Su3
module Ideal = Workloads.Ideal

type row = {
  kernel : string;
  group_size : int;
  baseline_cycles : float;
  simd_cycles : float;
  speedup : float;
}

type t = { rows : row list; group_sizes : int list }

let group_sizes = [ 2; 4; 8; 16; 32 ]

(* On non-32-wide zoo devices the paper's sweep keeps its shape but only
   group sizes dividing the warp are legal (a group never spans warps). *)
let group_sizes_for (cfg : Gpusim.Config.t) =
  let ws = cfg.Gpusim.Config.warp_size in
  List.filter (fun g -> g <= ws && ws mod g = 0) [ 2; 4; 8; 16; 32; 64 ]

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

(* Problem sizes derive from the device so the sweep is shape-faithful on
   scaled-down configurations: enough work to fill every SM in the
   three-level variants, and a fixed team count across variants (§6.4's
   methodology applied to Fig 9 as well). *)
let teams_of (cfg : Gpusim.Config.t) = 4 * cfg.Gpusim.Config.num_sms
let lanes_of cfg = teams_of cfg * 128

(* sparse_matvec: two-level baseline is teams-generic distribute +
   32-thread parallel-for per row; the simd variant is teams-SPMD with a
   generic parallel region (§6.3). *)
(* The paper reports the average of 10 runs: caches are warm, so every
   measurement below is the second run over the same data (the first one
   warms the L2). *)
let warm_measure run =
  let (_ : Harness.run) = run ~reset_l2:true in
  Harness.time (run ~reset_l2:false)

let spmv_rows ~pool ~scale ~cfg ~group_sizes =
  (* the simd variants launch 8 blocks per SM (realistic occupancy for
     latency staggering); the 32-thread two-level teams are much smaller,
     so the original code launches proportionally more of them.  The
     matrix is sized to stay L2-resident across the averaged runs. *)
  let num_teams = 2 * teams_of cfg in
  let rows = scaled scale (num_teams * 64) in
  let shape =
    {
      Spmv.default_shape with
      Spmv.rows;
      cols = rows;
      profile = Spmv.Banded { mean = 24; spread = 16 };
    }
  in
  let t = Spmv.generate shape in
  (* the two-level code launches many small teams, as the original
     OpenACC-derived source does: ~32 rows per 32-thread team *)
  let baseline_teams = min rows (3 * num_teams) in
  let baseline_threads = max 32 cfg.Gpusim.Config.warp_size in
  let baseline =
    warm_measure (fun ~reset_l2 ->
        Spmv.run_two_level ~cfg ?pool ~reset_l2 ~num_teams:baseline_teams
          ~threads:baseline_threads t)
  in
  List.map
    (fun group_size ->
      let simd =
        warm_measure (fun ~reset_l2 ->
            Spmv.run_simd ~cfg ?pool ~reset_l2 ~num_teams ~threads:128
              ~mode3:(Harness.generic_simd ~group_size) t)
      in
      {
        kernel = "sparse_matvec";
        group_size;
        baseline_cycles = baseline;
        simd_cycles = simd;
        speedup = baseline /. simd;
      })
    group_sizes

(* su3_bench: teams and parallel both SPMD; baseline is the same kernel
   with the 36-iteration loop serial in each thread (group size 1). *)
let su3_rows ~pool ~dedup ~scale ~cfg ~group_sizes =
  let t = Su3.generate { Su3.sites = scaled scale (2 * lanes_of cfg); seed = 2 } in
  let num_teams = teams_of cfg in
  let baseline =
    Harness.time (Su3.run_two_level ~cfg ?pool ~dedup ~num_teams ~threads:128 t)
  in
  List.map
    (fun group_size ->
      let r =
        Su3.run ~cfg ?pool ~dedup ~num_teams ~threads:128
          ~mode3:(Harness.spmd_simd ~group_size) t
      in
      let simd = Harness.time r in
      {
        kernel = "su3_bench";
        group_size;
        baseline_cycles = baseline;
        simd_cycles = simd;
        speedup = baseline /. simd;
      })
    group_sizes

(* ideal kernel: teams SPMD, parallel generic (§6.3). *)
(* The ideal kernel's outer loop is deliberately too small to fill the
   device two-level (the §1 "thread level does not provide enough
   parallelism" scenario): the third level is what recovers occupancy. *)
let ideal_rows ~pool ~dedup ~scale ~cfg ~group_sizes =
  let t =
    Ideal.generate
      { Ideal.default_shape with Ideal.rows = scaled scale (lanes_of cfg / 4) }
  in
  let num_teams = teams_of cfg in
  let baseline =
    warm_measure (fun ~reset_l2 ->
        Ideal.run ~cfg ?pool ~dedup ~reset_l2 ~num_teams ~threads:128
          ~mode3:(Harness.spmd_simd ~group_size:1) t)
  in
  List.map
    (fun group_size ->
      let simd =
        warm_measure (fun ~reset_l2 ->
            Ideal.run ~cfg ?pool ~dedup ~reset_l2 ~num_teams ~threads:128
              ~mode3:(Harness.generic_simd ~group_size) t)
      in
      {
        kernel = "ideal_kernel";
        group_size;
        baseline_cycles = baseline;
        simd_cycles = simd;
        speedup = baseline /. simd;
      })
    group_sizes

let run ?(scale = 1.0) ?pool ?(dedup = false) ?group_sizes:gs ~cfg () =
  let group_sizes =
    match gs with Some l -> l | None -> group_sizes_for cfg
  in
  {
    rows =
      List.concat
        [
          spmv_rows ~pool ~scale ~cfg ~group_sizes;
          su3_rows ~pool ~dedup ~scale ~cfg ~group_sizes;
          ideal_rows ~pool ~dedup ~scale ~cfg ~group_sizes;
        ];
    group_sizes;
  }

let best t ~kernel =
  let candidates = List.filter (fun r -> r.kernel = kernel) t.rows in
  match candidates with
  | [] -> raise Not_found
  | first :: rest ->
      List.fold_left (fun acc r -> if r.speedup > acc.speedup then r else acc)
        first rest

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("kernel", Table.Left);
          ("group", Table.Right);
          ("baseline cyc", Table.Right);
          ("simd cyc", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let last_kernel = ref "" in
  List.iter
    (fun r ->
      if !last_kernel <> "" && !last_kernel <> r.kernel then
        Table.add_separator table;
      last_kernel := r.kernel;
      Table.add_row table
        [
          r.kernel;
          Table.cell_int r.group_size;
          Table.cell_float ~decimals:0 r.baseline_cycles;
          Table.cell_float ~decimals:0 r.simd_cycles;
          Table.cell_float r.speedup ^ "x";
        ])
    t.rows;
  table

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "kernel,group_size,baseline_cycles,simd_cycles,speedup\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%.0f,%.0f,%.4f\n" r.kernel r.group_size
           r.baseline_cycles r.simd_cycles r.speedup))
    t.rows;
  Buffer.contents buf

let print t =
  print_endline
    "Fig 9: speedup of three-level simd over the two-level baseline";
  Table.print (to_table t)
