module Table = Ompsimd_util.Table
module Mode = Omprt.Mode
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type row = { table_size : int; fn_id : int; cycles : float }
type t = { rows : row list }

let run_one ~pool ~cfg ~scale ~table_size ~fn_id =
  let num_teams = max 1 (int_of_float (64.0 *. scale)) in
  let threads = 128 in
  let regions = max 1 (int_of_float (float_of_int (threads * 8) *. scale)) in
  let params =
    {
      Team.num_teams;
      num_threads = threads;
      teams_mode = Mode.Spmd;
      sharing_bytes = Omprt.Sharing.default_bytes;
    }
  in
  let report =
    Target.launch ~cfg ?pool ~params ~dispatch_table_size:table_size (fun ctx ->
        Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:8 ~fn_id:0
          (fun ctx _ ->
            (* many tiny simd regions: dispatch dominates *)
            Workshare.distribute_parallel_for ctx ~trip:regions (fun _ ->
                Simd.simd ctx ~fn_id ~trip:8 (fun ctx _ _ ->
                    Team.charge_flops ctx 1))))
  in
  { table_size; fn_id; cycles = report.Gpusim.Device.time_cycles }

let run ?(scale = 1.0) ?pool ~cfg () =
  let rows =
    List.concat_map
      (fun table_size ->
        let positions =
          [ 0; table_size / 2; table_size - 1 ]
          |> List.sort_uniq compare
          |> List.filter (fun p -> p >= 0 && p < table_size)
        in
        List.map
          (fun fn_id -> run_one ~pool ~cfg ~scale ~table_size ~fn_id)
          positions
        @ [ run_one ~pool ~cfg ~scale ~table_size ~fn_id:(-1) ])
      [ 1; 8; 32 ]
  in
  { rows }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("cascade size", Table.Right);
          ("region position", Table.Left);
          ("cycles", Table.Right);
        ]
  in
  let last = ref (-1) in
  List.iter
    (fun r ->
      if !last >= 0 && !last <> r.table_size then Table.add_separator table;
      last := r.table_size;
      Table.add_row table
        [
          Table.cell_int r.table_size;
          (if r.fn_id < 0 then "indirect (not in table)"
           else Printf.sprintf "cascade entry %d" r.fn_id);
          Table.cell_float ~decimals:0 r.cycles;
        ])
    t.rows;
  table

let print t =
  print_endline "E4: outlined-region dispatch — if-cascade vs indirect call";
  Table.print (to_table t)
