(** Experiment E8 — §7's planned extension, implemented: SPMDization of
    parallel regions via thread guarding + variable broadcasting ([16]).

    A kernel whose parallel body carries sequential side effects (a
    per-row store before its simd loop) runs three ways:

    - {b generic}: the compiler's only safe choice without the transform —
      the SIMD state machine;
    - {b guarded SPMD}: the {!Ompir.Spmdize.guardize} transform wraps the
      side effects in guard blocks and the region runs SPMD;
    - {b tight SPMD}: the same kernel hand-restructured so the store moves
      inside the simd loop — the no-overhead upper bound.

    The paper's §6.5 prediction is the ordering
    [tight >= guarded > generic]: "even with proper SPMDization the
    included thread guarding and variable broadcasting would still see
    some amount of performance degradation". *)

type row = {
  variant : string;
  cycles : float;
  relative : float;  (** generic cycles / this variant's cycles *)
  guards : int;
}

type t = { rows : row list }

val run :
  ?scale:float -> ?pool:Gpusim.Pool.t -> cfg:Gpusim.Config.t -> unit -> t
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
