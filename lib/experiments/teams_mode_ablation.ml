module Table = Ompsimd_util.Table
module Mode = Omprt.Mode
module Harness = Workloads.Harness
module Su3 = Workloads.Su3

type row = {
  teams_mode : string;
  block_threads : int;
  resident_blocks : int;
  cycles : float;
  relative : float;
}

type t = { rows : row list }

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

let run ?(scale = 1.0) ?pool ~cfg () =
  let t = Su3.generate { Su3.sites = scaled scale 16384; seed = 2 } in
  let num_teams = scaled scale 128 in
  let threads = 128 in
  let run_mode teams_mode =
    Su3.run ~cfg ?pool ~num_teams ~threads
      ~mode3:{ Harness.teams_mode; parallel_mode = Mode.Spmd; group_size = 4 }
      t
  in
  let spmd = run_mode Mode.Spmd in
  let generic = run_mode Mode.Generic in
  let base = Harness.time spmd in
  let mk name (r : Harness.run) extra_warp =
    {
      teams_mode = name;
      block_threads = threads + (if extra_warp then cfg.Gpusim.Config.warp_size else 0);
      resident_blocks =
        r.Harness.report.Gpusim.Device.breakdown.Gpusim.Occupancy.resident_blocks;
      cycles = Harness.time r;
      relative = base /. Harness.time r;
    }
  in
  { rows = [ mk "spmd" spmd false; mk "generic" generic true ] }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("teams mode", Table.Left);
          ("block threads", Table.Right);
          ("resident blocks/SM", Table.Right);
          ("cycles", Table.Right);
          ("relative speedup", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.teams_mode;
          Table.cell_int r.block_threads;
          Table.cell_int r.resident_blocks;
          Table.cell_float ~decimals:0 r.cycles;
          Table.cell_float ~decimals:3 r.relative;
        ])
    t.rows;
  table

let print t =
  print_endline
    "E7: teams generic vs SPMD — the extra main warp's occupancy and \
     signalling cost (su3_bench, group size 4)";
  Table.print (to_table t)
