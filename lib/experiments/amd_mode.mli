(** Experiment E5 — §5.4.1: the AMD wavefront-barrier gap.

    LLVM/OpenMP provides no wavefront-level barrier on AMD GPUs, so the
    generic-SIMD mode cannot rendezvous a group and every generic-mode
    simd loop degrades to sequential execution (group size one), while
    SPMD-SIMD still works.  This experiment runs the Fig 9 kernels on the
    NVIDIA-like and AMD-like devices and reports the speedup over each
    device's own two-level baseline: the generic rows collapse to ~1x on
    AMD, the SPMD rows survive. *)

type row = {
  kernel : string;
  device : string;
  mode : string;  (** "generic-SIMD" or "SPMD-SIMD" *)
  group_size : int;
  speedup : float;  (** vs the same device's two-level baseline *)
}

type t = { rows : row list }

val run : ?scale:float -> ?pool:Gpusim.Pool.t -> unit -> t
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
