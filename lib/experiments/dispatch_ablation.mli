(** Experiment E4 — §5.5: outlined-region dispatch cost.

    LLVM/Clang turns the indirect call of an outlined function into an
    if-cascade over the known regions of the translation unit, falling
    back to a true indirect call for unknown pointers.  This ablation
    sweeps the region's position in the cascade (and the out-of-table
    case) on a kernel that launches many tiny simd regions, making the
    per-region dispatch cost visible. *)

type row = {
  table_size : int;
  fn_id : int;  (** -1 encodes "not in the table" (indirect fallback) *)
  cycles : float;
}

type t = { rows : row list }

val run :
  ?scale:float -> ?pool:Gpusim.Pool.t -> cfg:Gpusim.Config.t -> unit -> t
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
