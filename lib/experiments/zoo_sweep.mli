(** The device-zoo sweep — re-runs the paper's headline figures on every
    {!Gpusim.Zoo} entry and checks the *relative* claims per
    configuration:

    - ["fig9 simd>1"]: the three-level simd version beats the two-level
      baseline at some group size, for every fig9 kernel;
    - ["fig10 gen<=spmd"]: generic-mode simd never beats SPMD-mode simd;
    - ["E6 red>atomic"]: the simd reduction beats the atomic workaround.

    A configuration where a claim fails is an {e inversion}; the report
    names it rather than hiding it. *)

type verdict = {
  claim : string;
  holds : bool;
  detail : string;  (** the per-kernel numbers behind the verdict *)
}

type row = { device : string; verdicts : verdict list }
type t = { rows : row list }

val claims : string list
(** Claim labels, in verdict order. *)

val run :
  ?scale:float ->
  ?pool:Gpusim.Pool.t ->
  ?entries:Gpusim.Zoo.entry list ->
  unit ->
  t
(** Sweep the given entries (default: the full {!Gpusim.Zoo.sweep}).
    [scale] multiplies every figure's problem sizes as usual. *)

val inversions : t -> (string * string) list
(** [(device, claim)] pairs that failed, in sweep order. *)

val to_table : t -> Ompsimd_util.Table.t
val to_csv : t -> string
val print : t -> unit
