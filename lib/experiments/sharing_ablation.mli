(** Experiment E3 — §5.3.1: sizing the variable-sharing space.

    The paper grew the static reservation from 1024 to 2048 bytes because
    the space is now divided among all SIMD groups (plus the team main):
    with many groups, a slice can no longer hold a typical payload and the
    runtime must fall back to a global-memory allocation per region.

    This ablation sweeps reservation size x SIMD group size on a kernel
    with a 12-pointer payload and reports how often the fallback fires and
    what it costs. *)

type row = {
  sharing_bytes : int;
  group_size : int;
  num_groups : int;  (** per team *)
  slice_bytes : int;
  fallbacks : float;  (** global-memory fallbacks observed *)
  cycles : float;
}

type t = { rows : row list; payload_args : int }

val run :
  ?scale:float -> ?pool:Gpusim.Pool.t -> cfg:Gpusim.Config.t -> unit -> t
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
