(** Experiment E9 (extension) — loop schedules under row-length imbalance.

    The paper's sparse_matvec uses matrices whose inner trip count "varies
    based on the sparsity of the matrix".  With a static schedule the
    OpenMP thread that drew the heavy rows becomes the team's critical
    path; a dynamic schedule absorbs the imbalance at the price of a
    fetch-add per chunk.  This ablation sweeps schedules over a power-law
    matrix (heavy tail) and a uniform one (no imbalance — dynamic can only
    lose there). *)

type row = {
  matrix : string;  (** "power-law" or "uniform" *)
  schedule : string;
  cycles : float;
  relative : float;  (** static cycles / this schedule's cycles *)
}

type t = { rows : row list }

val run :
  ?scale:float -> ?pool:Gpusim.Pool.t -> cfg:Gpusim.Config.t -> unit -> t
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
