module Table = Ompsimd_util.Table
module Config = Gpusim.Config
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv
module Ideal = Workloads.Ideal

type row = {
  kernel : string;
  device : string;
  mode : string;
  group_size : int;
  speedup : float;
}

type t = { rows : row list }

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

let spmv_rows ?pool ~scale cfg =
  let shape =
    {
      Spmv.default_shape with
      Spmv.rows = scaled scale 8192;
      cols = scaled scale 8192;
    }
  in
  let t = Spmv.generate shape in
  let num_teams = min 256 shape.Spmv.rows in
  let baseline =
    Harness.time (Spmv.run_two_level ~cfg ?pool ~num_teams ~threads:32 t)
  in
  List.map
    (fun (mode_name, mk) ->
      let r =
        Spmv.run_simd ~cfg ?pool ~num_teams:(num_teams / 2) ~threads:128
          ~mode3:(mk ~group_size:8) t
      in
      {
        kernel = "sparse_matvec";
        device = cfg.Config.name;
        mode = mode_name;
        group_size = 8;
        speedup = baseline /. Harness.time r;
      })
    [ ("generic-SIMD", Harness.generic_simd); ("SPMD-SIMD", Harness.spmd_simd) ]

let ideal_rows ?pool ~scale cfg =
  let t =
    Ideal.generate { Ideal.default_shape with Ideal.rows = scaled scale 8192 }
  in
  let num_teams = scaled scale 128 in
  let baseline =
    Harness.time (Ideal.run_two_level ~cfg ?pool ~num_teams ~threads:128 t)
  in
  List.map
    (fun (mode_name, mk) ->
      let r =
        Ideal.run ~cfg ?pool ~num_teams ~threads:128 ~mode3:(mk ~group_size:32) t
      in
      {
        kernel = "ideal_kernel";
        device = cfg.Config.name;
        mode = mode_name;
        group_size = 32;
        speedup = baseline /. Harness.time r;
      })
    [ ("generic-SIMD", Harness.generic_simd); ("SPMD-SIMD", Harness.spmd_simd) ]

let run ?(scale = 1.0) ?pool () =
  let rows =
    List.concat_map
      (fun cfg -> spmv_rows ?pool ~scale cfg @ ideal_rows ?pool ~scale cfg)
      [ Config.a100; Config.amd_like ]
  in
  { rows }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("kernel", Table.Left);
          ("device", Table.Left);
          ("mode", Table.Left);
          ("group", Table.Right);
          ("speedup vs own baseline", Table.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.device then Table.add_separator table;
      last := r.device;
      Table.add_row table
        [
          r.kernel;
          r.device;
          r.mode;
          Table.cell_int r.group_size;
          Table.cell_float r.speedup ^ "x";
        ])
    t.rows;
  table

let print t =
  print_endline
    "E5: AMD degradation — generic-SIMD sequentializes without wavefront \
     barriers, SPMD-SIMD survives";
  Table.print (to_table t)
