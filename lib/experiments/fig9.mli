(** Experiment E1 — Fig 9 of the paper: speedup of the three-level simd
    implementation over the original two levels of parallelism, across all
    possible SIMD group sizes, for sparse_matvec, su3_bench and the ideal
    benchmarking kernel.

    Paper reference points: sparse_matvec peaks at ~3.5x with group size
    8; su3_bench at ~1.3x with group size 4 (2 and 8 close); the ideal
    kernel at ~2.15x with group size 32 (16 close). *)

type row = {
  kernel : string;
  group_size : int;
  baseline_cycles : float;
  simd_cycles : float;
  speedup : float;
}

type t = {
  rows : row list;
  group_sizes : int list;
}

val group_sizes : int list
(** 2, 4, 8, 16, 32 — the sweep of Fig 9 on the paper's 32-wide warp. *)

val group_sizes_for : Gpusim.Config.t -> int list
(** The sweep restricted to group sizes dividing the device's warp —
    identical to {!group_sizes} on 32-wide devices, extended to 64 on
    64-wide ones.  The default for {!run}. *)

val run :
  ?scale:float ->
  ?pool:Gpusim.Pool.t ->
  ?dedup:bool ->
  ?group_sizes:int list ->
  cfg:Gpusim.Config.t ->
  unit ->
  t
(** Run the full experiment.  [scale] multiplies the problem sizes
    (default 1.0; tests use small values); [pool] fans every launch's
    block simulation over host domains; [dedup] (default false) applies
    the homogeneous-grid fast path to the uniform su3 and ideal kernels.  Both
    keep the rows bit-identical to the plain sequential run (the sweep
    only reads reports, never kernel output). *)

val best : t -> kernel:string -> row
(** The row with the highest speedup for a kernel.
    @raise Not_found if the kernel is absent. *)

val to_table : t -> Ompsimd_util.Table.t
val to_csv : t -> string
(** Header + one row per (kernel, group size) — for external plotting. *)

val print : t -> unit
