module Table = Ompsimd_util.Table
module Memory = Gpusim.Memory
module Ir = Ompir.Ir

type row = { variant : string; cycles : float; relative : float; guards : int }
type t = { rows : row list }

(* out[r*w + j] = base(r) * in[r*w + j]; marks[r] = base(r).
   The marks store is the sequential side effect that blocks SPMD. *)
let kernel ~width =
  Ir.kernel ~name:"row_scale_marked"
    ~params:
      [
        { Ir.pname = "input"; pty = Ir.P_farray };
        { Ir.pname = "out"; pty = Ir.P_farray };
        { Ir.pname = "marks"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
        [
          Ir.Decl
            {
              name = "base";
              ty = Ir.Tfloat;
              init = Ir.(Binop (Add, f 1.0, Unop (To_float, Binop (Mod, v "r", i 7))));
            };
          Ir.Store ("marks", Ir.v "r", Ir.v "base");
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i width)
            [
              Ir.Decl
                {
                  name = "idx";
                  ty = Ir.Tint;
                  init = Ir.(Binop (Add, Binop (Mul, v "r", i width), v "j"));
                };
              Ir.Store
                ("out", Ir.v "idx",
                 Ir.(Binop (Mul, v "base", Load ("input", v "idx"))));
            ];
        ];
    ]

(* The tight variant: the store moved into the simd loop (executed by
   lane 0 of the group), leaving no sequential side effect. *)
let tight_kernel ~width =
  Ir.kernel ~name:"row_scale_tight"
    ~params:
      [
        { Ir.pname = "input"; pty = Ir.P_farray };
        { Ir.pname = "out"; pty = Ir.P_farray };
        { Ir.pname = "marks"; pty = Ir.P_farray };
        { Ir.pname = "n"; pty = Ir.P_int };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "n")
        [
          Ir.Decl
            {
              name = "base";
              ty = Ir.Tfloat;
              init = Ir.(Binop (Add, f 1.0, Unop (To_float, Binop (Mod, v "r", i 7))));
            };
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.i width)
            [
              Ir.If
                ( Ir.(Binop (Eq, v "j", i 0)),
                  [ Ir.Store ("marks", Ir.v "r", Ir.v "base") ],
                  [] );
              Ir.Decl
                {
                  name = "idx";
                  ty = Ir.Tint;
                  init = Ir.(Binop (Add, Binop (Mul, v "r", i width), v "j"));
                };
              Ir.Store
                ("out", Ir.v "idx",
                 Ir.(Binop (Mul, v "base", Load ("input", v "idx"))));
            ];
        ];
    ]

let run ?(scale = 1.0) ?pool ~cfg () =
  let width = 32 in
  let teams = 4 * cfg.Gpusim.Config.num_sms in
  let n =
    max 1 (int_of_float (float_of_int (teams * 128 / 4) *. scale))
  in
  let space = Memory.space () in
  let input =
    Memory.of_float_array space
      (Array.init (n * width) (fun i -> float_of_int (i mod 11)))
  in
  let out = Memory.falloc space (n * width) in
  let marks = Memory.falloc space n in
  let bindings =
    [
      ("input", Ompir.Eval.B_farr input);
      ("out", Ompir.Eval.B_farr out);
      ("marks", Ompir.Eval.B_farr marks);
      ("n", Ompir.Eval.B_int n);
    ]
  in
  let time ?(guardize = false) k =
    match Openmp.Offload.compile ~guardize k with
    | Error _ -> failwith "E8 kernel must compile"
    | Ok compiled ->
        Memory.fill out 0.0;
        Memory.fill marks 0.0;
        Memory.l2_reset space;
        let report =
          Openmp.Offload.run ~cfg ?pool
            ~clauses:
              Openmp.Clause.(none |> num_teams teams |> num_threads 128 |> simdlen 32)
            ~bindings compiled
        in
        (report.Gpusim.Device.time_cycles, compiled.Openmp.Offload.guards_inserted)
  in
  let generic_cycles, _ = time (kernel ~width) in
  let guarded_cycles, guards = time ~guardize:true (kernel ~width) in
  let tight_cycles, _ = time (tight_kernel ~width) in
  let mk variant cycles guards =
    { variant; cycles; relative = generic_cycles /. cycles; guards }
  in
  {
    rows =
      [
        mk "generic (state machine)" generic_cycles 0;
        mk "guarded SPMD (S7 / [16])" guarded_cycles guards;
        mk "tight SPMD (restructured)" tight_cycles 0;
      ];
  }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("variant", Table.Left);
          ("cycles", Table.Right);
          ("speedup vs generic", Table.Right);
          ("guards", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.variant;
          Table.cell_float ~decimals:0 r.cycles;
          Table.cell_float ~decimals:3 r.relative;
          Table.cell_int r.guards;
        ])
    t.rows;
  table

let print t =
  print_endline
    "E8: SPMDization of parallel regions (S7) — generic vs guarded SPMD vs \
     restructured tight SPMD";
  Table.print (to_table t)
