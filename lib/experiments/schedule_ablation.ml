module Table = Ompsimd_util.Table
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv

type row = { matrix : string; schedule : string; cycles : float; relative : float }
type t = { rows : row list }

let schedules =
  [
    ("static", Omprt.Workshare.Static);
    ("static,4", Omprt.Workshare.Chunked 4);
    ("dynamic,1", Omprt.Workshare.Dynamic 1);
    ("dynamic,4", Omprt.Workshare.Dynamic 4);
  ]

let matrix_rows ~pool ~cfg ~scale ~name ~profile =
  let teams = 4 * cfg.Gpusim.Config.num_sms in
  let rows = max 64 (int_of_float (float_of_int (teams * 128) *. scale)) in
  let t =
    Spmv.generate
      { Spmv.rows; cols = rows; profile; band = 512; seed = 7 }
  in
  let time schedule =
    (* warm L2 measurement, as in E1 *)
    let (_ : Harness.run) =
      Spmv.run_simd ~cfg ?pool ~reset_l2:true ~num_teams:teams ~threads:128 ~schedule
        ~mode3:(Harness.generic_simd ~group_size:8) t
    in
    Harness.time
      (Spmv.run_simd ~cfg ?pool ~reset_l2:false ~num_teams:teams ~threads:128
         ~schedule ~mode3:(Harness.generic_simd ~group_size:8) t)
  in
  let static_cycles = time Omprt.Workshare.Static in
  List.map
    (fun (label, schedule) ->
      let cycles =
        if schedule = Omprt.Workshare.Static then static_cycles
        else time schedule
      in
      { matrix = name; schedule = label; cycles; relative = static_cycles /. cycles })
    schedules

let run ?(scale = 1.0) ?pool ~cfg () =
  {
    rows =
      matrix_rows ~pool ~cfg ~scale ~name:"power-law"
        ~profile:(Spmv.Power_law { max_nnz = 256; s = 1.1 })
      @ matrix_rows ~pool ~cfg ~scale ~name:"uniform"
          ~profile:(Spmv.Uniform 24);
  }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("matrix", Table.Left);
          ("schedule", Table.Left);
          ("cycles", Table.Right);
          ("speedup vs static", Table.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.matrix then Table.add_separator table;
      last := r.matrix;
      Table.add_row table
        [
          r.matrix;
          r.schedule;
          Table.cell_float ~decimals:0 r.cycles;
          Table.cell_float ~decimals:3 r.relative;
        ])
    t.rows;
  table

let print t =
  print_endline
    "E9: loop schedules under row-length imbalance (sparse_matvec, \
     generic-SIMD, group size 8)";
  Table.print (to_table t)
