module Table = Ompsimd_util.Table
module Memory = Gpusim.Memory
module Counters = Gpusim.Counters
module Mode = Omprt.Mode
module Payload = Omprt.Payload
module Team = Omprt.Team
module Workshare = Omprt.Workshare
module Simd = Omprt.Simd
module Parallel = Omprt.Parallel
module Target = Omprt.Target

type row = {
  sharing_bytes : int;
  group_size : int;
  num_groups : int;
  slice_bytes : int;
  fallbacks : float;
  cycles : float;
}

type t = { rows : row list; payload_args : int }

let payload_args = 12

let run_one ~pool ~cfg ~scale ~sharing_bytes ~group_size =
  let threads = 128 in
  let num_teams = max 1 (int_of_float (64.0 *. scale)) in
  let rows_trip = max 1 (int_of_float (float_of_int (threads * 4) *. scale)) in
  let space = Memory.space () in
  let data = Memory.falloc space 64 in
  let payload =
    Payload.of_list (List.init payload_args (fun _ -> Payload.Farr data))
  in
  let params =
    { Team.num_teams; num_threads = threads; teams_mode = Mode.Spmd; sharing_bytes }
  in
  let report =
    Target.launch ~cfg ?pool ~params ~dispatch_table_size:2 (fun ctx ->
        Parallel.parallel ctx ~mode:Mode.Generic ~simd_len:group_size ~payload
          ~fn_id:0 (fun ctx _ ->
            Workshare.distribute_parallel_for ctx ~trip:rows_trip (fun i ->
                Simd.simd ctx ~payload ~fn_id:1 ~trip:32 (fun ctx j _ ->
                    (* a real load per element: memory latency makes the
                       SIMD groups genuinely overlap, so region-scoped
                       slices from the sharing space are live
                       concurrently — the regime the reservation has to
                       be sized for *)
                    let (_ : float) =
                      Memory.fget data ctx.Team.th ((i + j) land 63)
                    in
                    Team.charge_flops ctx 4))))
  in
  let num_groups = threads / group_size in
  {
    sharing_bytes;
    group_size;
    num_groups;
    slice_bytes = sharing_bytes / (num_groups + 1);
    fallbacks = Counters.get_extra report.Gpusim.Device.counters "sharing.global_fallbacks";
    cycles = report.Gpusim.Device.time_cycles;
  }

let run ?(scale = 1.0) ?pool ~cfg () =
  let rows =
    List.concat_map
      (fun sharing_bytes ->
        List.map
          (fun group_size -> run_one ~pool ~cfg ~scale ~sharing_bytes ~group_size)
          [ 2; 4; 8; 16; 32 ])
      (* 256 is genuinely undersized (the per-block wave of 96-byte
         payloads peaks above it); 1024 was too small for the old static
         split (a 12-arg payload overflowed its 1024/17-byte slice) but
         holds every live region under dynamic allocation; 2048 is the
         paper's enlarged reservation *)
      [ 256; 1024; 2048 ]
  in
  { rows; payload_args }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("reserved B", Table.Right);
          ("group", Table.Right);
          ("groups", Table.Right);
          ("slice B", Table.Right);
          ("fallbacks", Table.Right);
          ("cycles", Table.Right);
        ]
  in
  let last = ref (-1) in
  List.iter
    (fun r ->
      if !last >= 0 && !last <> r.sharing_bytes then Table.add_separator table;
      last := r.sharing_bytes;
      Table.add_row table
        [
          Table.cell_int r.sharing_bytes;
          Table.cell_int r.group_size;
          Table.cell_int r.num_groups;
          Table.cell_int r.slice_bytes;
          Table.cell_float ~decimals:0 r.fallbacks;
          Table.cell_float ~decimals:0 r.cycles;
        ])
    t.rows;
  table

let print t =
  Printf.printf
    "E3: variable-sharing space sizing (payload of %d pointer args)\n"
    t.payload_args;
  Table.print (to_table t)
