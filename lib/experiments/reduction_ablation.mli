(** Experiment E6 — the paper's stated future work (§6.2, §7): data
    reductions in the new loop API.

    sparse_matvec originally reduced the inner product but had to fall
    back to atomic updates because the prototype lacks reductions.  We
    implemented the warp-shuffle group reduction as an extension; this
    experiment quantifies what the paper lost, comparing the atomic-update
    kernel against the reduction kernel across SIMD group sizes. *)

type row = {
  group_size : int;
  atomic_cycles : float;
  reduction_cycles : float;
  improvement : float;  (** atomic / reduction *)
}

type t = { rows : row list }

val run :
  ?scale:float ->
  ?pool:Gpusim.Pool.t ->
  ?group_sizes:int list ->
  cfg:Gpusim.Config.t ->
  unit ->
  t
(** [group_sizes] defaults to {!Fig9.group_sizes_for}[ cfg]. *)
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
