module Table = Ompsimd_util.Table

(* The paper measures on one device shape; the zoo sweep re-runs its
   headline figures on every registry entry and checks the *relative*
   claims — the only ones a calibrated simulator can honestly export:

     C1 (fig9)  the three-level simd version beats the two-level
                baseline at some group size, for every kernel;
     C2 (fig10) generic-mode simd never beats SPMD-mode simd (the state
                machine and its synchronization cost something);
     C3 (E6)    the simd reduction beats the atomic-update workaround.

   A configuration where a claim fails is an *inversion* — reported, not
   hidden: that is the sweep's entire point (cf. the Vortex study, where
   warp-level features flip between hardware and software profitability
   across architectures). *)

type verdict = { claim : string; holds : bool; detail : string }
type row = { device : string; verdicts : verdict list }
type t = { rows : row list }

let claims = [ "fig9 simd>1"; "fig10 gen<=spmd"; "E6 red>atomic" ]

let fig9_verdict ~scale ~pool ~cfg =
  let r = Fig9.run ~scale ?pool ~cfg () in
  let kernels = [ "sparse_matvec"; "su3_bench"; "ideal_kernel" ] in
  let bests =
    List.map (fun k -> (k, (Fig9.best r ~kernel:k).Fig9.speedup)) kernels
  in
  {
    claim = List.nth claims 0;
    holds = List.for_all (fun (_, s) -> s > 1.0) bests;
    detail =
      String.concat " "
        (List.map (fun (k, s) -> Printf.sprintf "%s=%.2fx" k s) bests);
  }

let fig10_verdict ~scale ~pool ~cfg =
  let group_size = min 32 cfg.Gpusim.Config.warp_size in
  let r = Fig10.run ~scale ~group_size ?pool ~cfg () in
  let kernels = [ "laplace3d"; "muram_transpose"; "muram_interpol" ] in
  let gaps =
    List.map
      (fun k ->
        let spmd = Fig10.relative r ~kernel:k Fig10.Spmd_simd in
        let gen = Fig10.relative r ~kernel:k Fig10.Generic_simd in
        (k, spmd, gen))
      kernels
  in
  {
    claim = List.nth claims 1;
    holds = List.for_all (fun (_, spmd, gen) -> gen <= spmd) gaps;
    detail =
      String.concat " "
        (List.map
           (fun (k, spmd, gen) -> Printf.sprintf "%s=%.2f/%.2f" k spmd gen)
           gaps);
  }

let e6_verdict ~scale ~pool ~cfg =
  let r = Reduction_ablation.run ~scale ?pool ~cfg () in
  let best =
    List.fold_left
      (fun acc (row : Reduction_ablation.row) ->
        Float.max acc row.Reduction_ablation.improvement)
      0.0 r.Reduction_ablation.rows
  in
  {
    claim = List.nth claims 2;
    holds = best > 1.0;
    detail = Printf.sprintf "best=%.2fx" best;
  }

let run ?(scale = 1.0) ?pool ?entries () =
  let entries =
    match entries with Some e -> e | None -> Gpusim.Zoo.sweep
  in
  let rows =
    List.map
      (fun (e : Gpusim.Zoo.entry) ->
        let cfg = e.Gpusim.Zoo.config in
        {
          device = e.Gpusim.Zoo.name;
          verdicts =
            [
              fig9_verdict ~scale ~pool ~cfg;
              fig10_verdict ~scale ~pool ~cfg;
              e6_verdict ~scale ~pool ~cfg;
            ];
        })
      entries
  in
  { rows }

let inversions t =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun v -> if v.holds then None else Some (r.device, v.claim))
        r.verdicts)
    t.rows

let to_table t =
  let table =
    Table.create
      ~columns:
        (("device", Table.Left)
        :: List.map (fun c -> (c, Table.Left)) claims)
  in
  List.iter
    (fun r ->
      Table.add_row table
        (r.device
        :: List.map
             (fun v ->
               Printf.sprintf "%s %s"
                 (if v.holds then "holds" else "INVERTS")
                 v.detail)
             r.verdicts))
    t.rows;
  table

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "device,claim,holds,detail\n";
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%b,%s\n" r.device v.claim v.holds v.detail))
        r.verdicts)
    t.rows;
  Buffer.contents buf

let print t =
  print_endline
    "Device-zoo sweep: the paper's relative claims across architectures";
  Table.print (to_table t);
  match inversions t with
  | [] -> print_endline "all claims hold on every configuration"
  | invs ->
      Printf.printf "%d inversion(s):\n" (List.length invs);
      List.iter
        (fun (d, c) -> Printf.printf "  %-12s inverts %S\n" d c)
        invs
