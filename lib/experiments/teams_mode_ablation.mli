(** Experiment E7 — §6.3 (in-text): the cost of generic teams mode.

    Part of sparse_matvec's 3.5x came from the teams region becoming SPMD:
    "extra warps are not needed for the team main thread".  This ablation
    runs the same SPMD-friendly kernel (su3_bench) under both teams modes
    with identical worker counts, exposing the extra warp's occupancy cost
    and the team-level signalling overhead. *)

type row = {
  teams_mode : string;
  block_threads : int;  (** including the extra main warp, if any *)
  resident_blocks : int;
  cycles : float;
  relative : float;  (** SPMD cycles / this mode's cycles *)
}

type t = { rows : row list }

val run :
  ?scale:float -> ?pool:Gpusim.Pool.t -> cfg:Gpusim.Config.t -> unit -> t
val to_table : t -> Ompsimd_util.Table.t
val print : t -> unit
