module Table = Ompsimd_util.Table
module Harness = Workloads.Harness
module Laplace3d = Workloads.Laplace3d
module Muram = Workloads.Muram

type mode_kind = No_simd | Spmd_simd | Generic_simd

let mode_name = function
  | No_simd -> "No SIMD"
  | Spmd_simd -> "SPMD SIMD"
  | Generic_simd -> "generic SIMD"

type row = {
  kernel : string;
  mode : mode_kind;
  cycles : float;
  relative : float;
}

type t = { rows : row list }

let scaled scale n = max 3 (int_of_float (float_of_int n *. scale))

(* Keep the grid consistent across modes (§6.4) and sized so that the
   No-SIMD variant fills the device: one (i,j) column per OpenMP thread
   at group size one. *)
let teams_of (cfg : Gpusim.Config.t) = 2 * cfg.Gpusim.Config.num_sms

let mode3_of ~group_size = function
  | No_simd -> Harness.spmd_simd ~group_size:1
  | Spmd_simd -> Harness.spmd_simd ~group_size
  | Generic_simd -> Harness.generic_simd ~group_size

(* Cold-cache measurement: the production fields these kernels sweep are
   far larger than the L2, so the steady-state regime of the real runs is
   the cold (DRAM-streaming) one — unlike sparse_matvec, whose matrix is
   L2-resident across the paper's averaged runs. *)
let kernel_rows ~kernel ~runner ~group_size =
  let modes = [ No_simd; Spmd_simd; Generic_simd ] in
  let cycles =
    List.map
      (fun m -> (m, runner ~reset_l2:true (mode3_of ~group_size m)))
      modes
  in
  let base =
    match List.assoc_opt No_simd cycles with
    | Some c -> c
    | None -> assert false
  in
  List.map
    (fun (mode, c) -> { kernel; mode; cycles = c; relative = base /. c })
    cycles

let run ?(scale = 1.0) ?(group_size = 32) ?pool ~cfg () =
  (* The number of teams and threads-per-team is kept consistent across
     modes (§6.4); only the loop structure changes. *)
  let num_teams = teams_of cfg in
  let threads = 128 in
  let columns = scaled scale (num_teams * threads) in
  (* laplace iterates the interior only; muram the full box *)
  let interior = int_of_float (ceil (sqrt (float_of_int columns))) in
  let laplace = Laplace3d.generate { Laplace3d.n = interior + 2; seed = 4 } in
  let muram =
    Muram.generate { Muram.ni = interior; nj = interior; nk = 48; seed = 5 }
  in
  let rows =
    List.concat
      [
        kernel_rows ~kernel:"laplace3d" ~group_size ~runner:(fun ~reset_l2 mode3 ->
            Harness.time
              (Laplace3d.run ~cfg ?pool ~reset_l2 ~num_teams ~threads ~mode3 laplace));
        kernel_rows ~kernel:"muram_transpose" ~group_size
          ~runner:(fun ~reset_l2 mode3 ->
            Harness.time
              (Muram.run_transpose ~cfg ?pool ~reset_l2 ~num_teams ~threads ~mode3 muram));
        kernel_rows ~kernel:"muram_interpol" ~group_size
          ~runner:(fun ~reset_l2 mode3 ->
            Harness.time
              (Muram.run_interpol ~cfg ?pool ~reset_l2 ~num_teams ~threads ~mode3 muram));
      ]
  in
  { rows }

let relative t ~kernel mode =
  match
    List.find_opt (fun r -> r.kernel = kernel && r.mode = mode) t.rows
  with
  | Some r -> r.relative
  | None -> raise Not_found

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("kernel", Table.Left);
          ("mode", Table.Left);
          ("cycles", Table.Right);
          ("relative speedup", Table.Right);
        ]
  in
  let last_kernel = ref "" in
  List.iter
    (fun r ->
      if !last_kernel <> "" && !last_kernel <> r.kernel then
        Table.add_separator table;
      last_kernel := r.kernel;
      Table.add_row table
        [
          r.kernel;
          mode_name r.mode;
          Table.cell_float ~decimals:0 r.cycles;
          Table.cell_float ~decimals:3 r.relative;
        ])
    t.rows;
  table

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "kernel,mode,cycles,relative_speedup\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%.0f,%.4f\n" r.kernel (mode_name r.mode)
           r.cycles r.relative))
    t.rows;
  Buffer.contents buf

let print t =
  print_endline
    "Fig 10: relative speedup of simd execution modes vs the No-SIMD \
     two-level configuration (group size 32)";
  Table.print (to_table t)
