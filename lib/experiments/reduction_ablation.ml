module Table = Ompsimd_util.Table
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv

type row = {
  group_size : int;
  atomic_cycles : float;
  reduction_cycles : float;
  improvement : float;
}

type t = { rows : row list }

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

let run ?(scale = 1.0) ?pool ?group_sizes ~cfg () =
  let group_sizes =
    match group_sizes with
    | Some l -> l
    | None -> Fig9.group_sizes_for cfg
  in
  let shape =
    {
      Spmv.default_shape with
      Spmv.rows = scaled scale 16384;
      cols = scaled scale 16384;
    }
  in
  let t = Spmv.generate shape in
  let num_teams = min 128 shape.Spmv.rows in
  let rows =
    List.map
      (fun group_size ->
        let mode3 = Harness.generic_simd ~group_size in
        let atomic =
          Harness.time (Spmv.run_simd ~cfg ?pool ~num_teams ~threads:128 ~mode3 t)
        in
        let reduction =
          Harness.time
            (Spmv.run_simd_reduction ~cfg ?pool ~num_teams ~threads:128 ~mode3 t)
        in
        {
          group_size;
          atomic_cycles = atomic;
          reduction_cycles = reduction;
          improvement = atomic /. reduction;
        })
      group_sizes
  in
  { rows }

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("group", Table.Right);
          ("atomic cyc", Table.Right);
          ("reduction cyc", Table.Right);
          ("improvement", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_int r.group_size;
          Table.cell_float ~decimals:0 r.atomic_cycles;
          Table.cell_float ~decimals:0 r.reduction_cycles;
          Table.cell_float r.improvement ^ "x";
        ])
    t.rows;
  table

let print t =
  print_endline
    "E6: sparse_matvec inner product — atomic update (paper's workaround) \
     vs simd reduction (extension)";
  Table.print (to_table t)
