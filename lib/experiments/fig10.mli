(** Experiment E2 — Fig 10 of the paper: relative speedup of the simd
    execution modes over the "No SIMD" two-level configuration for
    laplace3d, muram_transpose and muram_interpol, at SIMD group size 32
    with identical team/thread counts.

    Paper reference points: "SPMD SIMD" performs like "No SIMD" (within a
    few percent, sometimes marginally faster); "generic SIMD" runs roughly
    15% slower — the price of the state machine and its synchronization. *)

type mode_kind = No_simd | Spmd_simd | Generic_simd

val mode_name : mode_kind -> string

type row = {
  kernel : string;
  mode : mode_kind;
  cycles : float;
  relative : float;  (** no-simd cycles / this mode's cycles *)
}

type t = { rows : row list }

val run :
  ?scale:float ->
  ?group_size:int ->
  ?pool:Gpusim.Pool.t ->
  cfg:Gpusim.Config.t ->
  unit ->
  t
(** [group_size] defaults to 32, as in the paper. *)

val relative : t -> kernel:string -> mode_kind -> float
(** @raise Not_found if absent. *)

val to_table : t -> Ompsimd_util.Table.t
val to_csv : t -> string
val print : t -> unit
