(* Compiler-pipeline demo — the §4 codegen path end to end.

   Run with:  dune exec examples/compiler_demo.exe

   A kernel with a non-trivial shape (per-row scalars captured by the
   simd loop) is written in the IR, type-checked, outlined into loop
   tasks, analyzed for globalization and SPMD-ization, printed back as
   pragma-annotated source, and finally executed on the simulated GPU
   under both execution modes. *)

module Memory = Gpusim.Memory
module Ir = Ompir.Ir
module Printer = Ompir.Printer
module Eval = Ompir.Eval
module Clause = Openmp.Clause
module Offload = Openmp.Offload

(* out[r*len + j] = scale[r] * (in[r*len + j] + shift) *)
let kernel =
  Ir.kernel ~name:"row_scale"
    ~params:
      [
        { Ir.pname = "input"; pty = Ir.P_farray };
        { Ir.pname = "scale"; pty = Ir.P_farray };
        { Ir.pname = "out"; pty = Ir.P_farray };
        { Ir.pname = "rows"; pty = Ir.P_int };
        { Ir.pname = "len"; pty = Ir.P_int };
        { Ir.pname = "shift"; pty = Ir.P_float };
      ]
    [
      Ir.distribute_parallel_for ~var:"r" ~lo:(Ir.i 0) ~hi:(Ir.v "rows")
        [
          (* a per-row scalar the simd loop captures: globalized in
             generic mode (§4.3) *)
          Ir.Decl
            { name = "s"; ty = Ir.Tfloat; init = Ir.Load ("scale", Ir.v "r") };
          Ir.simd ~var:"j" ~lo:(Ir.i 0) ~hi:(Ir.v "len")
            [
              Ir.Decl
                {
                  name = "idx";
                  ty = Ir.Tint;
                  init = Ir.(Binop (Add, Binop (Mul, v "r", v "len"), v "j"));
                };
              Ir.Store
                ( "out",
                  Ir.v "idx",
                  Ir.(
                    Binop
                      ( Mul,
                        v "s",
                        Binop (Add, Load ("input", v "idx"), v "shift") )) );
            ];
        ];
    ]

let () =
  let cfg = Gpusim.Config.a100_quarter in
  print_endline "=== source (reconstructed from the IR) ===";
  print_endline (Printer.kernel_to_string kernel);
  print_newline ();
  match Offload.compile kernel with
  | Error es ->
      List.iter
        (fun e -> Format.printf "error: %a@." Ompir.Check.pp_error e)
        es;
      exit 1
  | Ok compiled ->
      print_endline "=== compiler remarks ===";
      List.iter print_endline (Offload.remarks compiled);
      print_newline ();
      let rows = 512 and len = 24 in
      let space = Memory.space () in
      let input =
        Memory.of_float_array space
          (Array.init (rows * len) (fun i -> float_of_int (i mod 7)))
      in
      let scale =
        Memory.of_float_array space
          (Array.init rows (fun r -> 1.0 +. float_of_int (r mod 3)))
      in
      let out = Memory.falloc space (rows * len) in
      let bindings =
        [
          ("input", Eval.B_farr input);
          ("scale", Eval.B_farr scale);
          ("out", Eval.B_farr out);
          ("rows", Eval.B_int rows);
          ("len", Eval.B_int len);
          ("shift", Eval.B_float 0.5);
        ]
      in
      print_endline "=== execution ===";
      List.iter
        (fun (label, mode) ->
          Memory.fill out 0.0;
          let report =
            Offload.run ~cfg
              ~clauses:
                Clause.(
                  none |> num_threads 128 |> simdlen 8 |> parallel_mode mode)
              ~bindings compiled
          in
          (* verify *)
          let ok = ref true in
          for r = 0 to rows - 1 do
            for j = 0 to len - 1 do
              let idx = (r * len) + j in
              let expected =
                (1.0 +. float_of_int (r mod 3))
                *. (float_of_int (idx mod 7) +. 0.5)
              in
              if abs_float (Memory.host_get out idx -. expected) > 1e-9 then
                ok := false
            done
          done;
          Printf.printf "%-24s %10.0f cycles   %s\n" label
            report.Gpusim.Device.time_cycles
            (if !ok then "VERIFIED" else "WRONG RESULT"))
        [
          ("SPMD parallel region", Omprt.Mode.Spmd);
          ("generic parallel region", Omprt.Mode.Generic);
        ]
