(* Iterative Jacobi solver — a multi-kernel driver with reductions.

   Run with:  dune exec examples/jacobi.exe

   Solves a 1-D Poisson problem (u'' = f, Dirichlet boundaries) by Jacobi
   iteration, offloading every sweep as a three-level kernel and
   computing the residual norm with the simd reduction (the paper's §7
   feature).  Demonstrates buffer swapping across kernel launches on the
   same device data and convergence-driven iteration on the host. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Clause = Openmp.Clause
module Omp = Openmp.Omp

let () =
  let cfg = Gpusim.Config.a100_quarter in
  let n = 8192 in
  let width = 32 in
  let rows = n / width in
  let space = Memory.space () in
  (* f = -1 everywhere, u = 0 initially; the exact solution is a parabola *)
  let f = Memory.of_float_array space (Array.make n (-1.0)) in
  let u = ref (Memory.falloc space n) in
  let u_next = ref (Memory.falloc space n) in
  let residual = Memory.falloc space rows in
  let h2 = 1.0 /. float_of_int ((n + 1) * (n + 1)) in

  let clauses =
    Clause.(none |> num_threads 128 |> simdlen 32 |> parallel_mode Mode.Generic)
  in
  (* one Jacobi sweep + per-row residual contributions *)
  let sweep () =
    let src = !u and dst = !u_next in
    Omp.target_teams ~cfg ~clauses (fun ctx ->
        let th = ctx.Omprt.Team.th in
        Omp.distribute_parallel_for ctx ~trip:rows (fun r ->
            let row_residual =
              Omp.simd_sum ctx ~trip:width (fun j ->
                  let i = (r * width) + j in
                  let left = if i = 0 then 0.0 else Memory.fget src th (i - 1) in
                  let right =
                    if i = n - 1 then 0.0 else Memory.fget src th (i + 1)
                  in
                  let fi = Memory.fget f th i in
                  let updated = 0.5 *. (left +. right -. (h2 *. fi)) in
                  Omprt.Team.charge_flops ctx 8;
                  Memory.fset dst th i updated;
                  let d = updated -. Memory.fget src th i in
                  d *. d)
            in
            let geom = Omprt.Team.geometry ctx.Omprt.Team.team in
            if Omprt.Simd_group.is_simd_group_leader geom ~tid:th.Gpusim.Thread.tid
            then Memory.fset residual th r row_residual))
  in

  let total_cycles = ref 0.0 in
  let sweeps = 60 in
  let first_change = ref 0.0 in
  let last_change = ref 0.0 in
  for it = 1 to sweeps do
    let report = sweep () in
    total_cycles := !total_cycles +. report.Gpusim.Device.time_cycles;
    (* host-side reduction of the per-row residual contributions *)
    let change = ref 0.0 in
    for r = 0 to rows - 1 do
      change := !change +. Memory.host_get residual r
    done;
    if it = 1 then first_change := !change;
    last_change := !change;
    let tmp = !u in
    u := !u_next;
    u_next := tmp
  done;

  (* sanity: the iterate of u'' = -1 with zero boundaries is positive,
     symmetric, and the per-sweep change decays monotonically *)
  let near = Memory.host_get !u 1 in
  let sym = abs_float (Memory.host_get !u 1 -. Memory.host_get !u (n - 2)) in
  Printf.printf
    "jacobi 1-D Poisson, n=%d: %d sweeps, total %.0f simulated cycles\n" n
    sweeps !total_cycles;
  Printf.printf "  per-sweep delta^2: %.3e (first) -> %.3e (last)\n"
    !first_change !last_change;
  Printf.printf "  u(1)=%.6e  |asymmetry|=%.3e  %s\n" near sym
    (if near > 0.0 && sym < 1e-18 && !last_change < !first_change then
       "SHAPE OK"
     else "UNEXPECTED SHAPE")
