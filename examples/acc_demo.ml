(* OpenACC-flavoured demo — the paper's sparse_matvec ancestry (§6.3).

   Run with:  dune exec examples/acc_demo.exe

   The paper's sparse_matvec was "adapted from an OpenACC code"; OpenACC
   has had gang/worker/vector three-level parallelism for years (§1 maps
   gang→teams, worker→parallel threads, vector→simd lanes).  This demo
   writes the kernel against the OpenACC facade and sweeps the vector
   length, which is exactly the simdlen sweep of Fig 9. *)

module Memory = Gpusim.Memory
module Acc = Openacc.Acc

let () =
  let cfg = Gpusim.Config.a100_quarter in
  let rows = 6912 in
  let g = Ompsimd_util.Prng.create ~seed:9 in
  (* CSR matrix with data-dependent row lengths, as in the paper *)
  let lengths =
    Array.init rows (fun _ -> Ompsimd_util.Prng.int_in g ~lo:8 ~hi:40)
  in
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iteri (fun r l -> row_ptr.(r + 1) <- row_ptr.(r) + l) lengths;
  let nnz = row_ptr.(rows) in
  let col = Array.init nnz (fun _ -> Ompsimd_util.Prng.int g rows) in
  let values =
    Array.init nnz (fun _ -> Ompsimd_util.Prng.float g 2.0 -. 1.0)
  in
  let x = Array.init rows (fun i -> sin (float_of_int i)) in
  let expected =
    Array.init rows (fun r ->
        let acc = ref 0.0 in
        for k = row_ptr.(r) to row_ptr.(r + 1) - 1 do
          acc := !acc +. (values.(k) *. x.(col.(k)))
        done;
        !acc)
  in
  let space = Memory.space () in
  let d_row_ptr = Memory.of_int_array space row_ptr in
  let d_col = Memory.of_int_array space col in
  let d_values = Memory.of_float_array space values in
  let d_x = Memory.of_float_array space x in
  let d_y = Memory.falloc space rows in

  Printf.printf
    "OpenACC spmv: %d rows, %d nnz — vector-length sweep (gang/worker/vector \
     = teams/parallel/simd)\n"
    rows nnz;
  List.iter
    (fun vector_length ->
      Memory.fill d_y 0.0;
      Memory.l2_reset space;
      let report =
        Acc.parallel ~cfg ~num_gangs:108
          ~num_workers:(128 / vector_length)
          ~vector_length ~mode:Omprt.Mode.Generic
          (fun ctx ->
            let th = ctx.Omprt.Team.th in
            Acc.loop_gang_worker ctx ~trip:rows (fun r ->
                let lo = Memory.iget d_row_ptr th r in
                let hi = Memory.iget d_row_ptr th (r + 1) in
                let dot =
                  Acc.loop_vector_sum ctx ~trip:(hi - lo) (fun k ->
                      let kk = lo + k in
                      let v = Memory.fget d_values th kk in
                      let c = Memory.iget d_col th kk in
                      Omprt.Team.charge_flops ctx 2;
                      v *. Memory.fget d_x th c)
                in
                let geom = Omprt.Team.geometry ctx.Omprt.Team.team in
                if
                  Omprt.Simd_group.is_simd_group_leader geom
                    ~tid:th.Gpusim.Thread.tid
                then Memory.fset d_y th r dot))
      in
      (* verify *)
      let ok = ref true in
      for r = 0 to rows - 1 do
        let scale = Float.max 1.0 (abs_float expected.(r)) in
        if abs_float (Memory.host_get d_y r -. expected.(r)) > 1e-9 *. scale
        then ok := false
      done;
      Printf.printf "  vector(%2d): %9.0f cycles   %s\n" vector_length
        report.Gpusim.Device.time_cycles
        (if !ok then "VERIFIED" else "WRONG RESULT"))
    [ 2; 4; 8; 16; 32 ]
