(* laplace3d demo — execution-mode cost on a 7-point Jacobi sweep (§6.4).

   Run with:  dune exec examples/stencil_demo.exe

   The same stencil runs in the paper's three configurations: "No SIMD"
   (two levels, serial k loop), "SPMD SIMD", and "generic SIMD", plus the
   AMD-like device where generic mode degrades (§5.4.1).  Results are
   verified against the sequential sweep. *)

module Harness = Workloads.Harness
module Laplace3d = Workloads.Laplace3d

let run_mode cfg t label mode3 =
  let r = Laplace3d.run ~cfg ~num_teams:54 ~threads:128 ~mode3 t in
  (match Laplace3d.verify t r.Harness.output with
  | Ok () -> ()
  | Error msg -> failwith (label ^ ": " ^ msg));
  (label, Harness.time r)

let () =
  let cfg = Gpusim.Config.a100_quarter in
  let t = Laplace3d.generate { Laplace3d.n = 66; seed = 7 } in
  Printf.printf "laplace3d 66^3, one Jacobi sweep on %s\n" cfg.Gpusim.Config.name;
  let results =
    [
      run_mode cfg t "No SIMD (two-level)" (Harness.spmd_simd ~group_size:1);
      run_mode cfg t "SPMD SIMD (simdlen 32)" (Harness.spmd_simd ~group_size:32);
      run_mode cfg t "generic SIMD (simdlen 32)"
        (Harness.generic_simd ~group_size:32);
    ]
  in
  let base = snd (List.hd results) in
  List.iter
    (fun (label, cycles) ->
      Printf.printf "  %-28s %10.0f cycles   %.3fx\n" label cycles
        (base /. cycles))
    results;

  (* the AMD gap: generic-SIMD sequentializes, SPMD-SIMD survives *)
  let amd = Gpusim.Config.amd_like in
  let _, spmd_amd =
    run_mode amd t "amd spmd" (Harness.spmd_simd ~group_size:32)
  in
  let _, generic_amd =
    run_mode amd t "amd generic" (Harness.generic_simd ~group_size:32)
  in
  Printf.printf
    "on the AMD-like device (no wavefront barrier): SPMD-SIMD %.0f cycles, \
     generic-SIMD %.0f cycles (degraded to sequential simd loops)\n"
    spmd_amd generic_amd;
  print_endline "all configurations verified against the sequential reference"
