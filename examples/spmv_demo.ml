(* sparse_matvec demo — the paper's headline kernel (§6.3).

   Run with:  dune exec examples/spmv_demo.exe

   Builds a banded sparse matrix with data-dependent row lengths, runs
   the two-level baseline (teams distribute + 32-thread parallel for per
   row) and the three-level simd version across every SIMD group size,
   verifies each result against the sequential reference, and prints the
   speedup curve of Fig 9. *)

module Table = Ompsimd_util.Table
module Harness = Workloads.Harness
module Spmv = Workloads.Spmv

let () =
  let cfg = Gpusim.Config.a100_quarter in
  let rows = 8192 in
  let t =
    Spmv.generate
      {
        Spmv.rows;
        cols = rows;
        profile = Spmv.Banded { mean = 24; spread = 16 };
        band = 512;
        seed = 42;
      }
  in
  Printf.printf "sparse_matvec: %d rows, %d nonzeros (rows of %d..%d)\n" rows
    (Spmv.nnz t)
    (Array.fold_left min max_int (Spmv.row_lengths t))
    (Array.fold_left max 0 (Spmv.row_lengths t));

  let verify label (r : Harness.run) =
    match Spmv.verify t r.Harness.output with
    | Ok () -> ()
    | Error msg -> failwith (label ^ ": " ^ msg)
  in

  let baseline = Spmv.run_two_level ~cfg ~num_teams:162 ~threads:32 t in
  verify "two-level" baseline;
  let base_cycles = Harness.time baseline in

  let table =
    Table.create
      ~columns:
        [
          ("configuration", Table.Left);
          ("cycles", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  Table.add_row table
    [ "two-level baseline"; Table.cell_float ~decimals:0 base_cycles; "1.00x" ];
  Table.add_separator table;
  List.iter
    (fun group_size ->
      let r =
        Spmv.run_simd ~cfg ~num_teams:54 ~threads:128
          ~mode3:(Harness.generic_simd ~group_size) t
      in
      verify (Printf.sprintf "simd gs=%d" group_size) r;
      Table.add_row table
        [
          Printf.sprintf "three-level, simdlen(%d)" group_size;
          Table.cell_float ~decimals:0 (Harness.time r);
          Table.cell_float (base_cycles /. Harness.time r) ^ "x";
        ])
    [ 2; 4; 8; 16; 32 ];
  Table.print table;
  print_endline "all configurations verified against the sequential reference"
