(* Quickstart: SAXPY with three levels of parallelism.

   Run with:  dune exec examples/quickstart.exe

   The kernel is the OCaml rendering of

     #pragma omp target teams distribute parallel for simd simdlen(8)
     for (i = 0; i < n; i++) y[i] = a * x[i] + y[i];

   and is executed on the simulated GPU.  The demo runs it once in SPMD
   mode and once in generic mode and reports the simulated cycle counts,
   showing the state-machine overhead the paper measures in Fig 10. *)

module Memory = Gpusim.Memory
module Mode = Omprt.Mode
module Clause = Openmp.Clause
module Data_env = Openmp.Data_env
module Omp = Openmp.Omp

let () =
  let cfg = Gpusim.Config.a100_quarter in
  let n = 1 lsl 16 in
  let a = 2.5 in

  (* host data, mapped to the device as `omp target data map(...)` would *)
  let env = Data_env.create () in
  let x_host = Array.init n (fun i -> float_of_int (i mod 100)) in
  let y_host = Array.make n 1.0 in
  let x = Data_env.map_to env ~name:"x" x_host in
  let y = Data_env.map_to env ~name:"y" y_host in

  let saxpy ~mode =
    (* reset y between runs *)
    Array.iteri (fun i v -> Memory.host_set y.Data_env.device i v) y_host;
    Omp.target_teams ~cfg
      ~clauses:
        Clause.(
          none |> num_threads 128 |> simdlen 8 |> parallel_mode mode)
      (fun ctx ->
        let th = ctx.Omprt.Team.th in
        Omp.distribute_parallel_for ctx ~trip:(n / 8) (fun blk ->
            Omp.simd ctx ~trip:8 (fun j ->
                let i = (blk * 8) + j in
                let xi = Memory.fget x.Data_env.device th i in
                let yi = Memory.fget y.Data_env.device th i in
                Omprt.Team.charge_flops ctx 2;
                Memory.fset y.Data_env.device th i ((a *. xi) +. yi))))
  in

  let spmd = saxpy ~mode:Mode.Spmd in
  let result = Data_env.map_from env y in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if abs_float (v -. ((a *. x_host.(i)) +. 1.0)) > 1e-9 then ok := false)
    result;
  Printf.printf "SAXPY n=%d on %s: %s\n" n cfg.Gpusim.Config.name
    (if !ok then "VERIFIED" else "WRONG RESULT");

  let generic = saxpy ~mode:Mode.Generic in
  Printf.printf "  SPMD-SIMD   : %10.0f cycles\n"
    spmd.Gpusim.Device.time_cycles;
  Printf.printf "  generic-SIMD: %10.0f cycles  (state-machine overhead: %+.1f%%)\n"
    generic.Gpusim.Device.time_cycles
    (100.0
    *. ((generic.Gpusim.Device.time_cycles /. spmd.Gpusim.Device.time_cycles)
       -. 1.0));
  Printf.printf "  data movement: %.0f interconnect cycles (%d B h2d, %d B d2h)\n"
    (Data_env.transfer_cycles env)
    (Data_env.h2d_bytes env) (Data_env.d2h_bytes env)
